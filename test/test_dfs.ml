(* Tests for the distributed file service. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------------- File store ---------------- *)

let store_namespace () =
  let store = Dfs.File_store.create () in
  let root = Dfs.File_store.root store in
  let dir = Dfs.File_store.mkdir store ~dir:root ~name:"d" () in
  let f = Dfs.File_store.create_file store ~dir ~name:"f" () in
  let l = Dfs.File_store.symlink store ~dir ~name:"l" ~target:"/elsewhere" in
  check_int "lookup finds file" f (Dfs.File_store.lookup store ~dir ~name:"f");
  Alcotest.(check string) "readlink" "/elsewhere" (Dfs.File_store.readlink store l);
  Alcotest.(check (list (pair string int)))
    "readdir in insertion order"
    [ ("f", f); ("l", l) ]
    (Dfs.File_store.readdir store dir);
  check_bool "duplicate rejected" true
    (try
       ignore (Dfs.File_store.create_file store ~dir ~name:"f" ());
       false
     with Dfs.File_store.Name_exists _ -> true);
  check_bool "missing name" true
    (try
       ignore (Dfs.File_store.lookup store ~dir ~name:"zz");
       false
     with Dfs.File_store.No_such_file _ -> true);
  check_bool "readlink on file" true
    (try
       ignore (Dfs.File_store.readlink store f);
       false
     with Dfs.File_store.Not_a_symlink _ -> true)

let store_data_paths =
  QCheck.Test.make ~name:"file store write/read roundtrip" ~count:100
    QCheck.(pair (int_bound 30000) (string_of_size Gen.(1 -- 20000)))
    (fun (off, payload) ->
      let store = Dfs.File_store.create () in
      let root = Dfs.File_store.root store in
      let f = Dfs.File_store.create_file store ~dir:root ~name:"f" () in
      let data = Bytes.of_string payload in
      Dfs.File_store.write store f ~off data;
      let back = Dfs.File_store.read store f ~off ~count:(Bytes.length data) in
      Bytes.equal back data
      && (Dfs.File_store.getattr store f).Dfs.File_store.size
         = off + Bytes.length data)

let store_holes_and_eof () =
  let store = Dfs.File_store.create () in
  let root = Dfs.File_store.root store in
  let f = Dfs.File_store.create_file store ~dir:root ~name:"f" () in
  Dfs.File_store.write store f ~off:10000 (Bytes.of_string "end");
  (* The hole reads as zeros. *)
  Alcotest.(check bytes) "hole" (Bytes.make 8 '\000')
    (Dfs.File_store.read store f ~off:100 ~count:8);
  (* Reads past EOF are short. *)
  check_int "short read at EOF" 3
    (Bytes.length (Dfs.File_store.read store f ~off:10000 ~count:100))

let store_mutations () =
  let store = Dfs.File_store.create () in
  let root = Dfs.File_store.root store in
  let dir = Dfs.File_store.mkdir store ~dir:root ~name:"d" () in
  let f = Dfs.File_store.create_file store ~dir ~name:"f" () in
  Dfs.File_store.write store f ~off:0 (Bytes.make 10000 'x');
  (* set_attr truncation zeros the dropped tail. *)
  Dfs.File_store.set_attr store f ~size:5000 ();
  check_int "truncated" 5000 (Dfs.File_store.getattr store f).Dfs.File_store.size;
  Dfs.File_store.set_attr store f ~size:10000 ();
  Alcotest.(check bytes) "tail zeroed after re-extend" (Bytes.make 100 '\000')
    (Dfs.File_store.read store f ~off:5000 ~count:100);
  (* rename moves the entry. *)
  let dir2 = Dfs.File_store.mkdir store ~dir:root ~name:"d2" () in
  Dfs.File_store.rename store ~from_dir:dir ~from_name:"f" ~to_dir:dir2
    ~to_name:"g";
  check_int "reachable at new name" f (Dfs.File_store.lookup store ~dir:dir2 ~name:"g");
  check_bool "gone from old dir" true
    (try
       ignore (Dfs.File_store.lookup store ~dir ~name:"f");
       false
     with Dfs.File_store.No_such_file _ -> true);
  (* rmdir refuses non-empty, then succeeds. *)
  check_bool "rmdir non-empty" true
    (try
       Dfs.File_store.rmdir store ~dir:root ~name:"d2";
       false
     with Dfs.File_store.Not_empty _ -> true);
  Dfs.File_store.remove store ~dir:dir2 ~name:"g";
  Dfs.File_store.rmdir store ~dir:root ~name:"d2";
  check_bool "d2 gone" true
    (try
       ignore (Dfs.File_store.lookup store ~dir:root ~name:"d2");
       false
     with Dfs.File_store.No_such_file _ -> true);
  (* remove refuses directories. *)
  check_bool "remove on dir fails" true
    (try
       Dfs.File_store.remove store ~dir:root ~name:"d";
       false
     with Dfs.File_store.Not_a_file _ -> true)

let store_mtime_advances () =
  let store = Dfs.File_store.create () in
  let root = Dfs.File_store.root store in
  let f = Dfs.File_store.create_file store ~dir:root ~name:"f" () in
  let m1 = (Dfs.File_store.getattr store f).Dfs.File_store.mtime in
  Dfs.File_store.write store f ~off:0 (Bytes.make 4 'x');
  let m2 = (Dfs.File_store.getattr store f).Dfs.File_store.mtime in
  check_bool "mtime advanced" true (m2 > m1)

(* ---------------- Slot cache ---------------- *)

let slot_cache () =
  let space = Cluster.Address_space.create ~asid:3 () in
  Dfs.Slot_cache.create ~space ~base:0 { Dfs.Slot_cache.slots = 64; payload_bytes = 128 }

let slot_cache_basics () =
  let c = slot_cache () in
  check_bool "miss" true (Dfs.Slot_cache.lookup_local c ~key1:1 ~key2:2 = None);
  Dfs.Slot_cache.install c ~key1:1 ~key2:2 (Bytes.of_string "value");
  (match Dfs.Slot_cache.lookup_local c ~key1:1 ~key2:2 with
  | Some payload -> Alcotest.(check string) "hit" "value" (Bytes.to_string payload)
  | None -> Alcotest.fail "expected hit");
  (* A different key mapping to the same slot misses cleanly. *)
  Dfs.Slot_cache.invalidate c ~key1:1 ~key2:2;
  check_bool "invalidated" true
    (Dfs.Slot_cache.lookup_local c ~key1:1 ~key2:2 = None)

let slot_cache_addressing_pure =
  QCheck.Test.make ~name:"slot addressing matches cfg arithmetic" ~count:200
    QCheck.(pair (int_bound 100000) (int_bound 1000))
    (fun (key1, key2) ->
      let c = slot_cache () in
      let cfg = Dfs.Slot_cache.config c in
      Dfs.Slot_cache.offset_of_key c ~key1 ~key2
      = Dfs.Slot_cache.offset_of_key_cfg cfg ~key1 ~key2)

let slot_cache_decode_rejects () =
  let c = slot_cache () in
  Dfs.Slot_cache.install c ~key1:7 ~key2:8 (Bytes.of_string "data");
  let cfg = Dfs.Slot_cache.config c in
  let space = Cluster.Address_space.create ~asid:3 () in
  ignore space;
  let slot_bytes = Dfs.Slot_cache.slot_bytes cfg in
  ignore slot_bytes;
  (* Decoding with the wrong keys fails even on a valid slot image. *)
  let image = Dfs.Slot_cache.encode_slot c ~key1:7 ~key2:8 (Bytes.of_string "data") in
  check_bool "right keys" true
    (Dfs.Slot_cache.decode_slot image ~key1:7 ~key2:8 <> None);
  check_bool "wrong keys" true
    (Dfs.Slot_cache.decode_slot image ~key1:7 ~key2:9 = None)

(* ---------------- NFS op codecs ---------------- *)

let sample_attr =
  {
    Dfs.File_store.inode = 42;
    kind = Dfs.File_store.Regular;
    mode = 0o644;
    nlink = 1;
    uid = 10;
    gid = 20;
    size = 12345;
    atime = 1;
    mtime = 2;
    ctime = 3;
  }

let attr_roundtrip () =
  let back = Dfs.Nfs_ops.decode_attr (Dfs.Nfs_ops.encode_attr sample_attr) in
  check_bool "attr roundtrip" true (back = sample_attr);
  check_int "fattr is 68 bytes" 68
    (Bytes.length (Dfs.Nfs_ops.encode_attr sample_attr))

let op_gen =
  QCheck.Gen.(
    oneof
      [
        return Dfs.Nfs_ops.Null;
        return Dfs.Nfs_ops.Statfs;
        map (fun fh -> Dfs.Nfs_ops.Get_attr { fh }) (1 -- 10000);
        map (fun fh -> Dfs.Nfs_ops.Read_link { fh }) (1 -- 10000);
        map
          (fun (dir, name) -> Dfs.Nfs_ops.Lookup { dir; name })
          (tup2 (1 -- 1000) (string_size ~gen:(char_range 'a' 'z') (1 -- 30)));
        map
          (fun (fh, off, count) -> Dfs.Nfs_ops.Read { fh; off; count })
          (tup3 (1 -- 1000) (0 -- 100000) (0 -- 8192));
        map
          (fun (fh, count) -> Dfs.Nfs_ops.Read_dir { fh; count })
          (tup2 (1 -- 1000) (0 -- 4096));
        map
          (fun (fh, off, s) ->
            Dfs.Nfs_ops.Write { fh; off; data = Bytes.of_string s })
          (tup3 (1 -- 1000) (0 -- 100000) (string_size (0 -- 4096)));
        map
          (fun (fh, mode, size) -> Dfs.Nfs_ops.Set_attr { fh; mode; size })
          (tup3 (1 -- 1000) (0 -- 0o777) (0 -- 100000));
        map
          (fun (dir, name) -> Dfs.Nfs_ops.Create { dir; name })
          (tup2 (1 -- 1000) (string_size ~gen:(char_range 'a' 'z') (1 -- 30)));
        map
          (fun (dir, name) -> Dfs.Nfs_ops.Remove { dir; name })
          (tup2 (1 -- 1000) (string_size ~gen:(char_range 'a' 'z') (1 -- 30)));
        map
          (fun (dir, name) -> Dfs.Nfs_ops.Mkdir { dir; name })
          (tup2 (1 -- 1000) (string_size ~gen:(char_range 'a' 'z') (1 -- 30)));
        map
          (fun (dir, name) -> Dfs.Nfs_ops.Rmdir { dir; name })
          (tup2 (1 -- 1000) (string_size ~gen:(char_range 'a' 'z') (1 -- 30)));
        map
          (fun (from_dir, from_name, to_dir, to_name) ->
            Dfs.Nfs_ops.Rename { from_dir; from_name; to_dir; to_name })
          (tup4 (1 -- 1000)
             (string_size ~gen:(char_range 'a' 'z') (1 -- 20))
             (1 -- 1000)
             (string_size ~gen:(char_range 'a' 'z') (1 -- 20)));
      ])

let op_roundtrip =
  QCheck.Test.make ~name:"nfs op encode/decode roundtrip" ~count:300
    (QCheck.make op_gen) (fun op ->
      Dfs.Nfs_ops.decode_op (Dfs.Nfs_ops.encode_op op) = op)

let result_roundtrip () =
  let results =
    [
      Dfs.Nfs_ops.R_null;
      Dfs.Nfs_ops.R_attr sample_attr;
      Dfs.Nfs_ops.R_lookup { fh = 7; attr = sample_attr };
      Dfs.Nfs_ops.R_link "/target";
      Dfs.Nfs_ops.R_data (Bytes.of_string "contents");
      Dfs.Nfs_ops.R_entries (Bytes.of_string "packed");
      Dfs.Nfs_ops.R_statfs
        { Dfs.File_store.total_blocks = 1; free_blocks = 2; files = 3; block_size = 4 };
      Dfs.Nfs_ops.R_write sample_attr;
      Dfs.Nfs_ops.R_error 13;
    ]
  in
  List.iter
    (fun result ->
      check_bool "result roundtrip" true
        (Dfs.Nfs_ops.decode_result (Dfs.Nfs_ops.encode_result result) = result))
    results

let rpc_codec_roundtrip =
  QCheck.Test.make ~name:"rpc marshal/unmarshal roundtrip" ~count:200
    (QCheck.make op_gen) (fun op ->
      let x = Dfs.Rpc_codec.marshal_op op in
      let reader = Rpckit.Xdr.reader (Rpckit.Xdr.contents x) in
      Dfs.Rpc_codec.unmarshal_op ~proc:(Dfs.Rpc_codec.proc_of_op op) reader = op)

let traffic_classification () =
  let t = Dfs.Nfs_ops.request_traffic (Dfs.Nfs_ops.Get_attr { fh = 1 }) in
  check_int "getattr request: xid + fh" 36 t.Dfs.Nfs_ops.control;
  check_int "no data in request" 0 t.Dfs.Nfs_ops.data;
  let t = Dfs.Nfs_ops.reply_traffic (Dfs.Nfs_ops.R_attr sample_attr) in
  check_int "attr reply data" 68 t.Dfs.Nfs_ops.data;
  let t =
    Dfs.Nfs_ops.request_traffic
      (Dfs.Nfs_ops.Write { fh = 1; off = 0; data = Bytes.make 1000 'x' })
  in
  check_int "write request data" 1000 t.Dfs.Nfs_ops.data

(* ---------------- Server + clerk integration ---------------- *)

let fixture = lazy (Experiments.Fixture.create ~clients:1 ())

let mutations_through_all_schemes () =
  let fixture = Lazy.force fixture in
  let clerk = Experiments.Fixture.clerk fixture 0 in
  Experiments.Fixture.run fixture (fun () ->
      List.iter
        (fun scheme ->
          Dfs.Clerk.set_scheme clerk scheme;
          let tag = Dfs.Clerk.scheme_to_string scheme in
          let name = "made-" ^ tag in
          let root = Dfs.File_store.root fixture.Experiments.Fixture.store in
          (match
             Dfs.Clerk.perform clerk (Dfs.Nfs_ops.Create { dir = root; name })
           with
          | Dfs.Nfs_ops.R_lookup { fh; _ } ->
              (* Visible through a subsequent lookup and removable. *)
              (match
                 Dfs.Clerk.remote_fetch clerk
                   (Dfs.Nfs_ops.Lookup { dir = root; name })
               with
              | Dfs.Nfs_ops.R_lookup { fh = fh'; _ } ->
                  check_int (tag ^ ": lookup finds created file") fh fh'
              | _ -> Alcotest.fail (tag ^ ": lookup failed"));
              (match
                 Dfs.Clerk.perform clerk (Dfs.Nfs_ops.Remove { dir = root; name })
               with
              | Dfs.Nfs_ops.R_null -> ()
              | _ -> Alcotest.fail (tag ^ ": remove failed"))
          | _ -> Alcotest.fail (tag ^ ": create failed")))
        [ Dfs.Clerk.Dx; Dfs.Clerk.Hybrid1; Dfs.Clerk.Rpc_baseline ])


let schemes_agree () =
  let fixture = Lazy.force fixture in
  let clerk = Experiments.Fixture.clerk fixture 0 in
  Experiments.Fixture.run fixture (fun () ->
      List.iter
        (fun (_name, op) ->
          let results =
            List.map
              (fun scheme ->
                Dfs.Clerk.set_scheme clerk scheme;
                Dfs.Clerk.remote_fetch clerk op)
              [ Dfs.Clerk.Dx; Dfs.Clerk.Hybrid1; Dfs.Clerk.Rpc_baseline ]
          in
          match results with
          | [ dx; hy; rpc ] ->
              check_bool "dx = hy" true (dx = hy);
              check_bool "hy = rpc" true (hy = rpc)
          | _ -> assert false)
        (List.filter
           (fun (_, op) ->
             (* Writes mutate state between schemes; compare reads. *)
             match op with Dfs.Nfs_ops.Write _ -> false | _ -> true)
           (Experiments.Fixture.figure_ops fixture)))

let dx_matches_store_contents () =
  let fixture = Lazy.force fixture in
  let clerk = Experiments.Fixture.clerk fixture 0 in
  Experiments.Fixture.run fixture (fun () ->
      Dfs.Clerk.set_scheme clerk Dfs.Clerk.Dx;
      let fh = fixture.Experiments.Fixture.bench_file in
      match
        Dfs.Clerk.remote_fetch clerk (Dfs.Nfs_ops.Read { fh; off = 0; count = 64 })
      with
      | Dfs.Nfs_ops.R_data data ->
          let expected =
            Dfs.File_store.read fixture.Experiments.Fixture.store fh ~off:0
              ~count:64
          in
          check_bool "bytes match the store" true (Bytes.equal data expected)
      | _ -> Alcotest.fail "expected data")

let dx_miss_falls_back_to_control () =
  let fixture = Lazy.force fixture in
  let clerk = Experiments.Fixture.clerk fixture 0 in
  Experiments.Fixture.run fixture (fun () ->
      Dfs.Clerk.set_scheme clerk Dfs.Clerk.Dx;
      (* A file created after cache warming: the DX probe misses and the
         clerk transfers control, still returning the right answer. *)
      let store = fixture.Experiments.Fixture.store in
      let root = Dfs.File_store.root store in
      let fresh = Dfs.File_store.create_file store ~dir:root ~name:"fresh.dat" () in
      Dfs.File_store.write store fresh ~off:0 (Bytes.of_string "fresh!");
      let before =
        Metrics.Account.total_of (Dfs.Clerk.stats clerk) "dx misses -> control"
      in
      (match
         Dfs.Clerk.remote_fetch clerk (Dfs.Nfs_ops.Get_attr { fh = fresh })
       with
      | Dfs.Nfs_ops.R_attr attr -> check_int "size via fallback" 6 attr.Dfs.File_store.size
      | _ -> Alcotest.fail "expected attr");
      Alcotest.(check (float 0.01)) "fallback counted" (before +. 1.)
        (Metrics.Account.total_of (Dfs.Clerk.stats clerk) "dx misses -> control"))

let dx_read_crosses_blocks () =
  let fixture = Lazy.force fixture in
  let clerk = Experiments.Fixture.clerk fixture 0 in
  Experiments.Fixture.run fixture (fun () ->
      Experiments.Fixture.recache_bench fixture;
      Dfs.Clerk.set_scheme clerk Dfs.Clerk.Dx;
      let fh = fixture.Experiments.Fixture.bench_file in
      (* An unaligned read spanning the block-0/block-1 boundary. *)
      match
        Dfs.Clerk.remote_fetch clerk
          (Dfs.Nfs_ops.Read { fh; off = 8000; count = 1000 })
      with
      | Dfs.Nfs_ops.R_data data ->
          let expected =
            Dfs.File_store.read fixture.Experiments.Fixture.store fh ~off:8000
              ~count:1000
          in
          check_bool "cross-block bytes match" true (Bytes.equal data expected)
      | _ -> Alcotest.fail "expected data")

let write_push_and_writeback () =
  let fixture = Lazy.force fixture in
  let clerk = Experiments.Fixture.clerk fixture 0 in
  Experiments.Fixture.run fixture (fun () ->
      Dfs.Clerk.set_scheme clerk Dfs.Clerk.Dx;
      let fh = fixture.Experiments.Fixture.bench_file in
      let payload = Bytes.make 8192 'Q' in
      (match
         Dfs.Clerk.remote_fetch clerk
           (Dfs.Nfs_ops.Write { fh; off = 8192; data = payload })
       with
      | Dfs.Nfs_ops.R_write _ -> ()
      | _ -> Alcotest.fail "expected write ack");
      Sim.Proc.wait (Sim.Time.ms 5);
      Dfs.Server.writeback fixture.Experiments.Fixture.server ~fh ~block:1;
      let back =
        Dfs.File_store.read fixture.Experiments.Fixture.store fh ~off:8192
          ~count:8192
      in
      check_bool "pushed block applied" true (Bytes.equal back payload))

let concurrent_hybrid_clients () =
  (* Several clients' Hybrid-1 requests land in distinct request slots
     and are served serially by the notification handler without
     cross-talk. *)
  let fixture = Experiments.Fixture.create ~clients:3 () in
  Experiments.Fixture.run fixture (fun () ->
      let served_before =
        Dfs.Server.hybrid_served fixture.Experiments.Fixture.server
      in
      let finished = ref 0 in
      let all_done = Sim.Ivar.create () in
      for c = 0 to 2 do
        let clerk = Experiments.Fixture.clerk fixture c in
        Dfs.Clerk.set_scheme clerk Dfs.Clerk.Hybrid1;
        Cluster.Node.spawn (Dfs.Clerk.node clerk) (fun () ->
            for _ = 1 to 10 do
              match
                Dfs.Clerk.remote_fetch clerk
                  (Dfs.Nfs_ops.Get_attr
                     { fh = fixture.Experiments.Fixture.bench_file })
              with
              | Dfs.Nfs_ops.R_attr attr ->
                  check_int "right inode back"
                    fixture.Experiments.Fixture.bench_file
                    attr.Dfs.File_store.inode
              | _ -> Alcotest.fail "hybrid getattr failed"
            done;
            incr finished;
            if !finished = 3 then Sim.Ivar.fill all_done ())
      done;
      Sim.Ivar.read all_done;
      check_int "server answered all 30" (served_before + 30)
        (Dfs.Server.hybrid_served fixture.Experiments.Fixture.server))

let dx_readdir_multi_chunk () =
  (* A directory whose packed listing exceeds one 4 KB chunk: the DX
     path stitches chunks together and matches the HY answer. *)
  let fixture = Lazy.force fixture in
  let clerk = Experiments.Fixture.clerk fixture 0 in
  Experiments.Fixture.run fixture (fun () ->
      let store = fixture.Experiments.Fixture.store in
      let root = Dfs.File_store.root store in
      let wide = Dfs.File_store.mkdir store ~dir:root ~name:"very-wide" () in
      for i = 0 to 499 do
        ignore
          (Dfs.File_store.create_file store ~dir:wide
             ~name:(Printf.sprintf "e%04d" i) ()
            : int)
      done;
      Dfs.Server.cache_dir fixture.Experiments.Fixture.server wide;
      let op = Dfs.Nfs_ops.Read_dir { fh = wide; count = 7000 } in
      Dfs.Clerk.set_scheme clerk Dfs.Clerk.Dx;
      let dx = Dfs.Clerk.remote_fetch clerk op in
      Dfs.Clerk.set_scheme clerk Dfs.Clerk.Hybrid1;
      let hy = Dfs.Clerk.remote_fetch clerk op in
      match (dx, hy) with
      | Dfs.Nfs_ops.R_entries a, Dfs.Nfs_ops.R_entries b ->
          check_bool "multi-chunk DX matches HY" true (Bytes.equal a b);
          check_bool "crossed the chunk boundary" true (Bytes.length a > 4096)
      | _ -> Alcotest.fail "expected entries")

let clerk_local_cache_hits () =
  let fixture = Lazy.force fixture in
  let clerk = Experiments.Fixture.clerk fixture 0 in
  Experiments.Fixture.run fixture (fun () ->
      Dfs.Clerk.set_scheme clerk Dfs.Clerk.Dx;
      let op = Dfs.Nfs_ops.Get_attr { fh = fixture.Experiments.Fixture.bench_file } in
      let r1 = Dfs.Clerk.perform clerk op in
      let before =
        Metrics.Account.total_of (Dfs.Clerk.stats clerk) "local hits"
      in
      let r2 = Dfs.Clerk.perform clerk op in
      check_bool "same answer" true (r1 = r2);
      Alcotest.(check (float 0.01)) "second was a local hit" (before +. 1.)
        (Metrics.Account.total_of (Dfs.Clerk.stats clerk) "local hits"))

(* ---------------- Coherence ---------------- *)

let coherence_mutual_exclusion () =
  let testbed = Cluster.Testbed.create ~nodes:3 () in
  let rmems =
    Array.init 3 (fun i ->
        Rmem.Remote_memory.attach (Cluster.Testbed.node testbed i))
  in
  Cluster.Testbed.run testbed (fun () ->
      let names = Array.map Names.Clerk.create rmems in
      Array.iter Names.Clerk.serve_lookup_requests names;
      let manager = Dfs.Coherence.export_tokens ~names:names.(0) () in
      let c1 =
        Dfs.Coherence.connect ~names:names.(1)
          ~server:(Cluster.Node.addr (Cluster.Testbed.node testbed 0))
          ()
      in
      let c2 =
        Dfs.Coherence.connect ~names:names.(2)
          ~server:(Cluster.Node.addr (Cluster.Testbed.node testbed 0))
          ()
      in
      let in_section = ref false in
      let violations = ref 0 in
      let done_count = ref 0 in
      let all_done = Sim.Ivar.create () in
      let worker client id =
        Cluster.Node.spawn
          (Cluster.Testbed.node testbed id)
          (fun () ->
            for _ = 1 to 10 do
              Dfs.Coherence.acquire client ~token:0;
              if !in_section then incr violations;
              in_section := true;
              Sim.Proc.wait (Sim.Time.us 50);
              in_section := false;
              Dfs.Coherence.release client ~token:0
            done;
            incr done_count;
            if !done_count = 2 then Sim.Ivar.fill all_done ())
      in
      worker c1 1;
      worker c2 2;
      Sim.Ivar.read all_done;
      check_int "no mutual-exclusion violations" 0 !violations;
      check_int "token free at the end" 0 (Dfs.Coherence.holder_of manager ~token:0);
      check_bool "contention caused retries" true
        (Dfs.Coherence.retries c1 + Dfs.Coherence.retries c2 >= 0))

let delayed_revocation () =
  let testbed = Cluster.Testbed.create ~nodes:3 () in
  let rmems =
    Array.init 3 (fun i ->
        Rmem.Remote_memory.attach (Cluster.Testbed.node testbed i))
  in
  Cluster.Testbed.run testbed (fun () ->
      let names = Array.map Names.Clerk.create rmems in
      Array.iter Names.Clerk.serve_lookup_requests names;
      let (_ : Dfs.Coherence.manager) =
        Dfs.Coherence.export_tokens ~names:names.(0) ()
      in
      let server = Cluster.Node.addr (Cluster.Testbed.node testbed 0) in
      let holder = Dfs.Coherence.connect ~names:names.(1) ~server () in
      let contender = Dfs.Coherence.connect ~names:names.(2) ~server () in
      let engine = Cluster.Testbed.engine testbed in
      (* The holder takes the token on a long lease but honors
         revocation requests. *)
      Dfs.Coherence.acquire holder ~token:5;
      Cluster.Node.spawn
        (Cluster.Testbed.node testbed 1)
        (fun () ->
          Dfs.Coherence.hold_with_lease holder ~token:5 ~lease:(Sim.Time.ms 50));
      Sim.Proc.wait (Sim.Time.us 200);
      (* The contender asks for revocation after two failed CAS tries
         and must get the token long before the 50 ms lease expires. *)
      let t0 = Sim.Engine.now engine in
      Dfs.Coherence.acquire ~revoke_after:2 contender ~token:5;
      let waited = Sim.Time.to_ms (Sim.Time.diff (Sim.Engine.now engine) t0) in
      check_bool "acquired well before the lease expired" true (waited < 20.);
      check_int "holder honored one revocation" 1
        (Dfs.Coherence.revocations_honored holder);
      Dfs.Coherence.release contender ~token:5)

let lease_expires_without_revocation () =
  let testbed = Cluster.Testbed.create ~nodes:2 () in
  let rmems =
    Array.init 2 (fun i ->
        Rmem.Remote_memory.attach (Cluster.Testbed.node testbed i))
  in
  Cluster.Testbed.run testbed (fun () ->
      let names = Array.map Names.Clerk.create rmems in
      Array.iter Names.Clerk.serve_lookup_requests names;
      let manager = Dfs.Coherence.export_tokens ~names:names.(0) () in
      let client =
        Dfs.Coherence.connect ~names:names.(1)
          ~server:(Cluster.Node.addr (Cluster.Testbed.node testbed 0))
          ()
      in
      Dfs.Coherence.acquire client ~token:3;
      check_bool "held" true (Dfs.Coherence.holder_of manager ~token:3 <> 0);
      let engine = Cluster.Testbed.engine testbed in
      let t0 = Sim.Engine.now engine in
      Dfs.Coherence.hold_with_lease client ~token:3 ~lease:(Sim.Time.ms 5);
      let held_for = Sim.Time.to_ms (Sim.Time.diff (Sim.Engine.now engine) t0) in
      check_bool "held roughly the whole lease" true
        (held_for >= 4.5 && held_for < 8.);
      check_int "released at expiry" 0 (Dfs.Coherence.holder_of manager ~token:3);
      check_int "no revocations were honored" 0
        (Dfs.Coherence.revocations_honored client))

let coherence_release_requires_ownership () =
  let testbed = Cluster.Testbed.create ~nodes:2 () in
  let rmems =
    Array.init 2 (fun i ->
        Rmem.Remote_memory.attach (Cluster.Testbed.node testbed i))
  in
  Alcotest.(check bool) "foreign release fails" true
    (try
       Cluster.Testbed.run testbed (fun () ->
           let names = Array.map Names.Clerk.create rmems in
           Array.iter Names.Clerk.serve_lookup_requests names;
           let (_ : Dfs.Coherence.manager) =
             Dfs.Coherence.export_tokens ~names:names.(0) ()
           in
           let c =
             Dfs.Coherence.connect ~names:names.(1)
               ~server:(Cluster.Node.addr (Cluster.Testbed.node testbed 0))
               ()
           in
           Dfs.Coherence.release c ~token:0);
       false
     with Failure _ -> true)

let coherence_invariant_tracks_table () =
  let testbed = Cluster.Testbed.create ~nodes:3 () in
  let rmems =
    Array.init 3 (fun i ->
        Rmem.Remote_memory.attach (Cluster.Testbed.node testbed i))
  in
  Cluster.Testbed.run testbed (fun () ->
      let names = Array.map Names.Clerk.create rmems in
      Array.iter Names.Clerk.serve_lookup_requests names;
      let server = Cluster.Node.addr (Cluster.Testbed.node testbed 0) in
      let manager = Dfs.Coherence.export_tokens ~names:names.(0) () in
      let c1 = Dfs.Coherence.connect ~names:names.(1) ~server () in
      check_bool "empty client trivially coherent" true
        (Dfs.Coherence.invariant manager ~clients:[ c1 ]);
      Dfs.Coherence.acquire c1 ~token:0;
      check_bool "held token is published" true
        (Dfs.Coherence.invariant manager ~clients:[ c1 ]);
      (* A buggy third party frees the token behind the holder's back;
         the invariant must notice the drift. *)
      let thief = Names.Api.import ~hint:server names.(2) "dfs:tokens" in
      let me1 =
        Int32.of_int
          (Atm.Addr.to_int (Cluster.Node.addr (Cluster.Testbed.node testbed 1))
          + 1)
      in
      let stolen, _ =
        Rmem.Remote_memory.cas_wait rmems.(2) thief ~doff:0 ~old_value:me1
          ~new_value:0l ()
      in
      check_bool "steal succeeded" true stolen;
      check_bool "drift detected" false
        (Dfs.Coherence.invariant manager ~clients:[ c1 ]);
      let restored, _ =
        Rmem.Remote_memory.cas_wait rmems.(2) thief ~doff:0 ~old_value:0l
          ~new_value:me1 ()
      in
      check_bool "restored" true restored;
      Dfs.Coherence.release c1 ~token:0;
      check_bool "coherent after release" true
        (Dfs.Coherence.invariant manager ~clients:[ c1 ]))

let suite =
  [
    Alcotest.test_case "store namespace" `Quick store_namespace;
    Alcotest.test_case "store holes and EOF" `Quick store_holes_and_eof;
    Alcotest.test_case "store mtime advances" `Quick store_mtime_advances;
    Alcotest.test_case "store mutations" `Quick store_mutations;
    Alcotest.test_case "mutations through all schemes" `Quick
      mutations_through_all_schemes;
    Alcotest.test_case "slot cache basics" `Quick slot_cache_basics;
    Alcotest.test_case "slot cache decode validation" `Quick slot_cache_decode_rejects;
    Alcotest.test_case "attr codec" `Quick attr_roundtrip;
    Alcotest.test_case "result codec" `Quick result_roundtrip;
    Alcotest.test_case "traffic classification" `Quick traffic_classification;
    Alcotest.test_case "all schemes agree on results" `Quick schemes_agree;
    Alcotest.test_case "dx returns real store bytes" `Quick dx_matches_store_contents;
    Alcotest.test_case "dx miss transfers control" `Quick dx_miss_falls_back_to_control;
    Alcotest.test_case "dx read crosses blocks" `Quick dx_read_crosses_blocks;
    Alcotest.test_case "write push + writeback" `Quick write_push_and_writeback;
    Alcotest.test_case "clerk local cache hits" `Quick clerk_local_cache_hits;
    Alcotest.test_case "concurrent hybrid clients" `Slow concurrent_hybrid_clients;
    Alcotest.test_case "dx readdir multi-chunk" `Quick dx_readdir_multi_chunk;
    Alcotest.test_case "coherence mutual exclusion" `Quick coherence_mutual_exclusion;
    Alcotest.test_case "delayed revocation" `Quick delayed_revocation;
    Alcotest.test_case "lease expires without revocation" `Quick
      lease_expires_without_revocation;
    Alcotest.test_case "coherence foreign release" `Quick coherence_release_requires_ownership;
    Alcotest.test_case "coherence invariant tracks table" `Quick
      coherence_invariant_tracks_table;
    QCheck_alcotest.to_alcotest store_data_paths;
    QCheck_alcotest.to_alcotest slot_cache_addressing_pure;
    QCheck_alcotest.to_alcotest op_roundtrip;
    QCheck_alcotest.to_alcotest rpc_codec_roundtrip;
  ]

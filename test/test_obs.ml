(* Tests for the observability layer: span-tree shapes for each
   meta-instruction, the cluster-wide registry, histogram aggregation,
   composable LRPC monitors, and tracing's zero-perturbation guarantee. *)

let feps = Alcotest.float 1e-9

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  nn = 0 || at 0

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let assert_valid name trace =
  match Obs.Trace.validate trace with
  | Ok () -> ()
  | Error problems ->
      Alcotest.failf "%s: invalid trace: %s" name (String.concat "; " problems)

let root_named trace name =
  match
    List.filter
      (fun (s : Obs.Span.t) -> s.Obs.Span.name = name)
      (Obs.Trace.roots trace)
  with
  | s :: _ -> s
  | [] -> Alcotest.failf "no %s root span" name

let child_names trace root =
  List.sort_uniq compare
    (List.map
       (fun (s : Obs.Span.t) -> s.Obs.Span.name)
       (Obs.Trace.children trace root))

let sum_children trace root =
  List.fold_left
    (fun acc s -> acc +. Obs.Span.duration_us s)
    0.
    (Obs.Trace.children trace root)

(* Replays are deterministic; share one run per workload across tests. *)
let quickstart = lazy (Experiments.Traced.quickstart ())
let file_service = lazy (Experiments.Traced.file_service ())

(* ------------------------------------------------------------------ *)
(* Span-tree shapes.                                                   *)

let write_tree () =
  let run = Lazy.force quickstart in
  assert_valid "quickstart" run.Experiments.Traced.trace;
  let trace = run.Experiments.Traced.trace in
  let w = root_named trace "WRITE" in
  let children = Obs.Trace.children trace w in
  Alcotest.(check bool)
    "WRITE has >= 4 phase children" true
    (List.length children >= 4);
  let names = child_names trace w in
  List.iter
    (fun phase ->
      Alcotest.(check bool)
        (Printf.sprintf "WRITE has a %s phase" phase)
        true (List.mem phase names))
    [ "trap"; "nic"; "wire"; "serve"; "notify" ];
  (* Phases are contiguous: they tile the root's end-to-end latency. *)
  let e2e = Obs.Span.duration_us w in
  let sum = sum_children trace w in
  Alcotest.(check bool)
    (Printf.sprintf "phases (%.2f us) sum to e2e (%.2f us)" sum e2e)
    true
    (Float.abs (sum -. e2e) <= 0.01 *. e2e);
  (* Every child nests inside the root's interval. *)
  List.iter
    (fun (c : Obs.Span.t) ->
      Alcotest.(check bool) "child starts after root" true
        (Sim.Time.compare c.Obs.Span.start w.Obs.Span.start >= 0);
      Alcotest.(check bool) "child ends by root finish" true
        (Sim.Time.compare c.Obs.Span.finish w.Obs.Span.finish <= 0))
    children;
  (* The serve phase runs on the remote node. *)
  let serve =
    List.find (fun (s : Obs.Span.t) -> s.Obs.Span.name = "serve") children
  in
  Alcotest.(check bool) "serve runs on a different node" true
    (serve.Obs.Span.node <> w.Obs.Span.node)

let read_and_cas_trees () =
  let run = Lazy.force quickstart in
  let trace = run.Experiments.Traced.trace in
  List.iter
    (fun op ->
      let root = root_named trace op in
      let names = child_names trace root in
      List.iter
        (fun phase ->
          Alcotest.(check bool)
            (Printf.sprintf "%s has a %s phase" op phase)
            true (List.mem phase names))
        [ "trap"; "wire"; "serve"; "deliver" ];
      List.iter
        (fun (c : Obs.Span.t) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s child %s starts after root" op c.Obs.Span.name)
            true
            (Sim.Time.compare c.Obs.Span.start root.Obs.Span.start >= 0))
        (Obs.Trace.children trace root))
    [ "READ"; "CAS" ]

let file_service_scopes () =
  let run = Lazy.force file_service in
  assert_valid "file_service" run.Experiments.Traced.trace;
  let trace = run.Experiments.Traced.trace in
  let roots = Obs.Trace.roots trace in
  let scoped prefix op =
    List.exists
      (fun (s : Obs.Span.t) ->
        starts_with ~prefix s.Obs.Span.name
        && List.exists
             (fun (c : Obs.Span.t) -> c.Obs.Span.name = op)
             (Obs.Trace.children trace s))
      roots
  in
  (* DX fetches through remote READs; Hybrid-1 ships the request as a
     WRITE with notification. The clerk scope must enclose them. *)
  Alcotest.(check bool) "a DX scope encloses a READ" true (scoped "DX:" "READ");
  Alcotest.(check bool) "an HY scope encloses a WRITE" true
    (scoped "HY:" "WRITE")

let all_replays_validate () =
  List.iter
    (fun name ->
      let run = Experiments.Traced.replay name in
      let trace = run.Experiments.Traced.trace in
      assert_valid name trace;
      Alcotest.(check bool)
        (Printf.sprintf "%s records spans" name)
        true
        (Obs.Trace.span_count trace > 0);
      (* No orphans, same-trace parentage, monotone timestamps. *)
      let spans = Obs.Trace.spans trace in
      List.iter
        (fun (s : Obs.Span.t) ->
          Alcotest.(check bool) "finish >= start" true
            (Sim.Time.compare s.Obs.Span.finish s.Obs.Span.start >= 0);
          if not (Obs.Span.is_root s) then
            match Obs.Trace.find trace s.Obs.Span.parent with
            | None ->
                Alcotest.failf "%s: span %d orphaned (parent %d)" name
                  s.Obs.Span.id s.Obs.Span.parent
            | Some p ->
                Alcotest.(check int)
                  (Printf.sprintf "span %d shares its parent's trace"
                     s.Obs.Span.id)
                  p.Obs.Span.trace s.Obs.Span.trace)
        spans)
    Experiments.Traced.all

let chrome_export () =
  let run = Lazy.force quickstart in
  let json = Obs.Export.chrome_json run.Experiments.Traced.trace in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "json contains %s" needle)
        true (contains json needle))
    [
      "{\"traceEvents\":[";
      "\"ph\":\"X\"";
      "\"name\":\"WRITE\"";
      "\"ph\":\"M\"";
      "\"displayTimeUnit\"";
    ]

(* ------------------------------------------------------------------ *)
(* Span accounting agrees with direct engine-clock measurement.        *)

let decompose_agreement () =
  let d = Experiments.Table1a.decompose () in
  assert_valid "decompose" d.Experiments.Table1a.trace;
  List.iter
    (fun (r : Experiments.Table1a.phase_row) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: spans %.2f us agree with direct %.2f us"
           r.Experiments.Table1a.op r.Experiments.Table1a.span_us
           r.Experiments.Table1a.direct_us)
        true
        (Float.abs
           (r.Experiments.Table1a.span_us -. r.Experiments.Table1a.direct_us)
        <= 0.01 *. r.Experiments.Table1a.direct_us);
      Alcotest.(check bool)
        (Printf.sprintf "%s decomposes into phases" r.Experiments.Table1a.op)
        true
        (r.Experiments.Table1a.phases <> []))
    d.Experiments.Table1a.phase_rows

(* ------------------------------------------------------------------ *)
(* Zero perturbation: the same run, attached or detached, takes the    *)
(* same simulated time.                                                *)

let measure_with_tracer traced =
  let d = Rig.duo () in
  let trace =
    if traced then begin
      let t = Obs.Trace.create d.Rig.engine in
      Obs.Trace.attach t;
      Some t
    end
    else None
  in
  Fun.protect
    ~finally:(fun () -> if traced then Obs.Trace.detach ())
    (fun () ->
      let timings = ref [] in
      Rig.run d (fun () ->
          let _seg, desc = Rig.shared_segment d in
          let buf = Rig.buffer0 d in
          let (), w_us =
            Rig.elapsed_us d (fun () ->
                Rmem.Remote_memory.write d.Rig.rmem0 desc ~off:0
                  (Bytes.make 256 'x'))
          in
          let _n, r_us =
            Rig.elapsed_us d (fun () ->
                Rmem.Remote_memory.read_wait d.Rig.rmem0 desc ~soff:0
                  ~count:256 ~dst:buf ~doff:0 ())
          in
          let _swap, c_us =
            Rig.elapsed_us d (fun () ->
                Rmem.Remote_memory.cas_wait d.Rig.rmem0 desc ~doff:512
                  ~old_value:0l ~new_value:7l ())
          in
          timings := [ w_us; r_us; c_us ]);
      ignore trace;
      !timings)

let tracing_is_free () =
  let detached = measure_with_tracer false in
  let attached = measure_with_tracer true in
  List.iter2
    (fun a b -> Alcotest.check feps "same simulated latency" a b)
    detached attached

let table2_unperturbed () =
  let baseline = Experiments.Table2.run () in
  let t = Obs.Trace.create (Sim.Engine.create ()) in
  Obs.Trace.attach t;
  let traced =
    Fun.protect ~finally:Obs.Trace.detach (fun () -> Experiments.Table2.run ())
  in
  List.iter2
    (fun (b : Experiments.Table2.row) (tr : Experiments.Table2.row) ->
      Alcotest.(check string) "row name" b.Experiments.Table2.name
        tr.Experiments.Table2.name;
      Alcotest.check feps
        (Printf.sprintf "Table 2 %S unchanged under tracing"
           b.Experiments.Table2.name)
        b.Experiments.Table2.measured tr.Experiments.Table2.measured)
    baseline traced

(* ------------------------------------------------------------------ *)
(* Registry.                                                           *)

let registry_counters () =
  let r = Obs.Registry.create () in
  Alcotest.check feps "unset counter reads 0" 0. (Obs.Registry.counter r "x");
  Obs.Registry.incr r "frames";
  Obs.Registry.incr r "frames";
  Obs.Registry.incr r ~by:3. "bytes";
  Alcotest.check feps "frames" 2. (Obs.Registry.counter r "frames");
  Alcotest.check feps "bytes" 3. (Obs.Registry.counter r "bytes");
  Alcotest.(check (list string))
    "counters sorted by name" [ "bytes"; "frames" ]
    (List.map fst (Obs.Registry.counters r))

let registry_series_aggregate () =
  let r = Obs.Registry.create () in
  List.iter
    (fun v -> Obs.Registry.observe r ~node:1 ~seg:7 ~op:"WRITE" v)
    [ 10.; 20.; 30. ];
  List.iter
    (fun v -> Obs.Registry.observe r ~node:2 ~seg:7 ~op:"WRITE" v)
    [ 40.; 50. ];
  Obs.Registry.observe r ~node:1 ~seg:7 ~op:"READ" 99.;
  Alcotest.(check (list string))
    "ops" [ "READ"; "WRITE" ]
    (List.sort compare (Obs.Registry.ops r));
  (match Obs.Registry.histogram r ~node:1 ~seg:7 ~op:"WRITE" with
  | None -> Alcotest.fail "missing (1,7,WRITE) series"
  | Some h -> Alcotest.(check int) "node-1 samples" 3 (Metrics.Histogram.count h));
  (match Obs.Registry.aggregate r ~op:"WRITE" with
  | None -> Alcotest.fail "missing WRITE aggregate"
  | Some h ->
      Alcotest.(check int) "cluster-wide samples" 5 (Metrics.Histogram.count h));
  Alcotest.(check bool) "no such aggregate" true
    (Obs.Registry.aggregate r ~op:"CAS" = None);
  let report = Obs.Registry.report r in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "report mentions %s" needle)
        true (contains report needle))
    [ "WRITE"; "READ" ]

let registry_merge () =
  let a = Obs.Registry.create () and b = Obs.Registry.create () in
  Obs.Registry.incr a "ops";
  Obs.Registry.incr b ~by:4. "ops";
  Obs.Registry.observe a ~node:1 ~seg:1 ~op:"CAS" 5.;
  Obs.Registry.observe b ~node:1 ~seg:1 ~op:"CAS" 6.;
  Obs.Registry.observe b ~node:3 ~seg:1 ~op:"CAS" 7.;
  Obs.Registry.merge_into a b;
  Alcotest.check feps "counters fold" 5. (Obs.Registry.counter a "ops");
  match Obs.Registry.aggregate a ~op:"CAS" with
  | None -> Alcotest.fail "missing CAS aggregate"
  | Some h -> Alcotest.(check int) "series fold" 3 (Metrics.Histogram.count h)

let quickstart_feeds_registry () =
  let run = Lazy.force quickstart in
  let r = run.Experiments.Traced.registry in
  List.iter
    (fun op ->
      match Obs.Registry.aggregate r ~op with
      | None -> Alcotest.failf "no %s latency series" op
      | Some h ->
          Alcotest.(check bool)
            (Printf.sprintf "%s samples recorded" op)
            true
            (Metrics.Histogram.count h > 0))
    [ "WRITE"; "READ"; "CAS" ]

(* ------------------------------------------------------------------ *)
(* Histogram aggregation (satellite of the registry).                  *)

let histogram_percentile_bounds () =
  let h = Metrics.Histogram.create () in
  for i = 1 to 2000 do
    Metrics.Histogram.add h (float_of_int i)
  done;
  let _, growth, _ = Metrics.Histogram.params h in
  List.iter
    (fun (p, exact) ->
      let approx = Metrics.Histogram.percentile h p in
      Alcotest.(check bool)
        (Printf.sprintf "p%.0f: %.1f within one bucket above %.1f" p approx
           exact)
        true
        (approx >= exact && approx <= exact *. growth *. 1.000001))
    [ (50., 1000.); (95., 1900.); (99., 1980.) ]

let histogram_merge () =
  let build values =
    let h = Metrics.Histogram.create () in
    List.iter (Metrics.Histogram.add h) values;
    h
  in
  let xs = [ 1.; 5.; 120.; 120.; 4000. ] and ys = [ 0.5; 9.; 350. ] in
  let merged = Metrics.Histogram.merge (build xs) (build ys) in
  let whole = build (xs @ ys) in
  Alcotest.(check int) "count" (Metrics.Histogram.count whole)
    (Metrics.Histogram.count merged);
  List.iter
    (fun p ->
      Alcotest.check feps
        (Printf.sprintf "p%.0f equals concatenation" p)
        (Metrics.Histogram.percentile whole p)
        (Metrics.Histogram.percentile merged p))
    [ 10.; 50.; 90.; 99. ];
  Alcotest.(check bool) "buckets equal" true
    (Metrics.Histogram.buckets whole = Metrics.Histogram.buckets merged)

let histogram_merge_layout_mismatch () =
  let a = Metrics.Histogram.create () in
  let b = Metrics.Histogram.create ~growth:1.5 () in
  Alcotest.check_raises "layouts must match"
    (Invalid_argument "Histogram.merge: incompatible bucket layouts")
    (fun () -> ignore (Metrics.Histogram.merge a b))

let histogram_underflow () =
  let h = Metrics.Histogram.create ~least:0.1 () in
  Metrics.Histogram.add h 0.05;
  Metrics.Histogram.add h 1.0;
  Alcotest.(check int) "underflow tracked" 1 (Metrics.Histogram.underflow h)

(* ------------------------------------------------------------------ *)
(* Composable LRPC monitors (legacy slot + registrations).             *)

let lrpc_monitor_compose () =
  let d = Rig.duo () in
  let legacy = ref 0 and extra = ref 0 in
  Cluster.Lrpc.set_monitor (Some (fun _node -> incr legacy));
  let id = Cluster.Lrpc.add_monitor (fun _node -> incr extra) in
  Fun.protect
    ~finally:(fun () ->
      Cluster.Lrpc.set_monitor None;
      Cluster.Lrpc.remove_monitor id)
    (fun () ->
      Rig.run d (fun () ->
          ignore (Cluster.Lrpc.call d.Rig.node0 (fun x -> x + 1) 1));
      Alcotest.(check int) "legacy slot fired" 1 !legacy;
      Alcotest.(check int) "registered monitor fired" 1 !extra;
      Cluster.Lrpc.remove_monitor id;
      Rig.run d (fun () ->
          ignore (Cluster.Lrpc.call d.Rig.node0 (fun x -> x + 1) 2));
      Alcotest.(check int) "legacy still fires" 2 !legacy;
      Alcotest.(check int) "removed monitor silent" 1 !extra)

let suite =
  [
    Alcotest.test_case "WRITE span tree decomposes" `Quick write_tree;
    Alcotest.test_case "READ and CAS span trees" `Quick read_and_cas_trees;
    Alcotest.test_case "DX vs HY clerk scopes" `Quick file_service_scopes;
    Alcotest.test_case "all replays validate" `Quick all_replays_validate;
    Alcotest.test_case "chrome trace export" `Quick chrome_export;
    Alcotest.test_case "span accounting agrees with clock" `Quick
      decompose_agreement;
    Alcotest.test_case "tracing is free" `Quick tracing_is_free;
    Alcotest.test_case "table 2 unperturbed by tracing" `Quick
      table2_unperturbed;
    Alcotest.test_case "registry counters" `Quick registry_counters;
    Alcotest.test_case "registry series and aggregates" `Quick
      registry_series_aggregate;
    Alcotest.test_case "registry merge" `Quick registry_merge;
    Alcotest.test_case "replay feeds the registry" `Quick
      quickstart_feeds_registry;
    Alcotest.test_case "histogram percentile bounds" `Quick
      histogram_percentile_bounds;
    Alcotest.test_case "histogram merge" `Quick histogram_merge;
    Alcotest.test_case "histogram merge layout mismatch" `Quick
      histogram_merge_layout_mismatch;
    Alcotest.test_case "histogram underflow" `Quick histogram_underflow;
    Alcotest.test_case "lrpc monitors compose" `Quick lrpc_monitor_compose;
  ]

(* Tests for the observability layer: span-tree shapes for each
   meta-instruction, the cluster-wide registry, histogram aggregation,
   composable LRPC monitors, and tracing's zero-perturbation guarantee. *)

let feps = Alcotest.float 1e-9

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  nn = 0 || at 0

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let assert_valid name trace =
  match Obs.Trace.validate trace with
  | Ok () -> ()
  | Error problems ->
      Alcotest.failf "%s: invalid trace: %s" name (String.concat "; " problems)

let root_named trace name =
  match
    List.filter
      (fun (s : Obs.Span.t) -> s.Obs.Span.name = name)
      (Obs.Trace.roots trace)
  with
  | s :: _ -> s
  | [] -> Alcotest.failf "no %s root span" name

let child_names trace root =
  List.sort_uniq compare
    (List.map
       (fun (s : Obs.Span.t) -> s.Obs.Span.name)
       (Obs.Trace.children trace root))

let sum_children trace root =
  List.fold_left
    (fun acc s -> acc +. Obs.Span.duration_us s)
    0.
    (Obs.Trace.children trace root)

(* Replays are deterministic; share one run per workload across tests. *)
let quickstart = lazy (Experiments.Traced.quickstart ())
let file_service = lazy (Experiments.Traced.file_service ())

(* ------------------------------------------------------------------ *)
(* Span-tree shapes.                                                   *)

let write_tree () =
  let run = Lazy.force quickstart in
  assert_valid "quickstart" run.Experiments.Traced.trace;
  let trace = run.Experiments.Traced.trace in
  let w = root_named trace "WRITE" in
  let children = Obs.Trace.children trace w in
  Alcotest.(check bool)
    "WRITE has >= 4 phase children" true
    (List.length children >= 4);
  let names = child_names trace w in
  List.iter
    (fun phase ->
      Alcotest.(check bool)
        (Printf.sprintf "WRITE has a %s phase" phase)
        true (List.mem phase names))
    [ "trap"; "nic"; "wire"; "serve"; "notify" ];
  (* Phases are contiguous: they tile the root's end-to-end latency. *)
  let e2e = Obs.Span.duration_us w in
  let sum = sum_children trace w in
  Alcotest.(check bool)
    (Printf.sprintf "phases (%.2f us) sum to e2e (%.2f us)" sum e2e)
    true
    (Float.abs (sum -. e2e) <= 0.01 *. e2e);
  (* Every child nests inside the root's interval. *)
  List.iter
    (fun (c : Obs.Span.t) ->
      Alcotest.(check bool) "child starts after root" true
        (Sim.Time.compare c.Obs.Span.start w.Obs.Span.start >= 0);
      Alcotest.(check bool) "child ends by root finish" true
        (Sim.Time.compare c.Obs.Span.finish w.Obs.Span.finish <= 0))
    children;
  (* The serve phase runs on the remote node. *)
  let serve =
    List.find (fun (s : Obs.Span.t) -> s.Obs.Span.name = "serve") children
  in
  Alcotest.(check bool) "serve runs on a different node" true
    (serve.Obs.Span.node <> w.Obs.Span.node)

let read_and_cas_trees () =
  let run = Lazy.force quickstart in
  let trace = run.Experiments.Traced.trace in
  List.iter
    (fun op ->
      let root = root_named trace op in
      let names = child_names trace root in
      List.iter
        (fun phase ->
          Alcotest.(check bool)
            (Printf.sprintf "%s has a %s phase" op phase)
            true (List.mem phase names))
        [ "trap"; "wire"; "serve"; "deliver" ];
      List.iter
        (fun (c : Obs.Span.t) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s child %s starts after root" op c.Obs.Span.name)
            true
            (Sim.Time.compare c.Obs.Span.start root.Obs.Span.start >= 0))
        (Obs.Trace.children trace root))
    [ "READ"; "CAS" ]

let file_service_scopes () =
  let run = Lazy.force file_service in
  assert_valid "file_service" run.Experiments.Traced.trace;
  let trace = run.Experiments.Traced.trace in
  let roots = Obs.Trace.roots trace in
  let scoped prefix op =
    List.exists
      (fun (s : Obs.Span.t) ->
        starts_with ~prefix s.Obs.Span.name
        && List.exists
             (fun (c : Obs.Span.t) -> c.Obs.Span.name = op)
             (Obs.Trace.children trace s))
      roots
  in
  (* DX fetches through remote READs; Hybrid-1 ships the request as a
     WRITE with notification. The clerk scope must enclose them. *)
  Alcotest.(check bool) "a DX scope encloses a READ" true (scoped "DX:" "READ");
  Alcotest.(check bool) "an HY scope encloses a WRITE" true
    (scoped "HY:" "WRITE")

let all_replays_validate () =
  List.iter
    (fun name ->
      let run = Experiments.Traced.replay name in
      let trace = run.Experiments.Traced.trace in
      assert_valid name trace;
      Alcotest.(check bool)
        (Printf.sprintf "%s records spans" name)
        true
        (Obs.Trace.span_count trace > 0);
      (* No orphans, same-trace parentage, monotone timestamps. *)
      let spans = Obs.Trace.spans trace in
      List.iter
        (fun (s : Obs.Span.t) ->
          Alcotest.(check bool) "finish >= start" true
            (Sim.Time.compare s.Obs.Span.finish s.Obs.Span.start >= 0);
          if not (Obs.Span.is_root s) then
            match Obs.Trace.find trace s.Obs.Span.parent with
            | None ->
                Alcotest.failf "%s: span %d orphaned (parent %d)" name
                  s.Obs.Span.id s.Obs.Span.parent
            | Some p ->
                Alcotest.(check int)
                  (Printf.sprintf "span %d shares its parent's trace"
                     s.Obs.Span.id)
                  p.Obs.Span.trace s.Obs.Span.trace)
        spans)
    Experiments.Traced.all

let chrome_export () =
  let run = Lazy.force quickstart in
  let json = Obs.Export.chrome_json run.Experiments.Traced.trace in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "json contains %s" needle)
        true (contains json needle))
    [
      "{\"traceEvents\":[";
      "\"ph\":\"X\"";
      "\"name\":\"WRITE\"";
      "\"ph\":\"M\"";
      "\"displayTimeUnit\"";
    ]

(* ------------------------------------------------------------------ *)
(* Span accounting agrees with direct engine-clock measurement.        *)

let decompose_agreement () =
  let d = Experiments.Table1a.decompose () in
  assert_valid "decompose" d.Experiments.Table1a.trace;
  List.iter
    (fun (r : Experiments.Table1a.phase_row) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: spans %.2f us agree with direct %.2f us"
           r.Experiments.Table1a.op r.Experiments.Table1a.span_us
           r.Experiments.Table1a.direct_us)
        true
        (Float.abs
           (r.Experiments.Table1a.span_us -. r.Experiments.Table1a.direct_us)
        <= 0.01 *. r.Experiments.Table1a.direct_us);
      Alcotest.(check bool)
        (Printf.sprintf "%s decomposes into phases" r.Experiments.Table1a.op)
        true
        (r.Experiments.Table1a.phases <> []))
    d.Experiments.Table1a.phase_rows

(* ------------------------------------------------------------------ *)
(* Zero perturbation: the same run, attached or detached, takes the    *)
(* same simulated time.                                                *)

let measure_with_tracer traced =
  let d = Rig.duo () in
  let trace =
    if traced then begin
      let t = Obs.Trace.create d.Rig.engine in
      Obs.Trace.attach t;
      Some t
    end
    else None
  in
  Fun.protect
    ~finally:(fun () -> if traced then Obs.Trace.detach ())
    (fun () ->
      let timings = ref [] in
      Rig.run d (fun () ->
          let _seg, desc = Rig.shared_segment d in
          let buf = Rig.buffer0 d in
          let (), w_us =
            Rig.elapsed_us d (fun () ->
                Rmem.Remote_memory.write d.Rig.rmem0 desc ~off:0
                  (Bytes.make 256 'x'))
          in
          let _n, r_us =
            Rig.elapsed_us d (fun () ->
                Rmem.Remote_memory.read_wait d.Rig.rmem0 desc ~soff:0
                  ~count:256 ~dst:buf ~doff:0 ())
          in
          let _swap, c_us =
            Rig.elapsed_us d (fun () ->
                Rmem.Remote_memory.cas_wait d.Rig.rmem0 desc ~doff:512
                  ~old_value:0l ~new_value:7l ())
          in
          timings := [ w_us; r_us; c_us ]);
      ignore trace;
      !timings)

let tracing_is_free () =
  let detached = measure_with_tracer false in
  let attached = measure_with_tracer true in
  List.iter2
    (fun a b -> Alcotest.check feps "same simulated latency" a b)
    detached attached

let table2_unperturbed () =
  let baseline = Experiments.Table2.run () in
  let t = Obs.Trace.create (Sim.Engine.create ()) in
  Obs.Trace.attach t;
  let traced =
    Fun.protect ~finally:Obs.Trace.detach (fun () -> Experiments.Table2.run ())
  in
  List.iter2
    (fun (b : Experiments.Table2.row) (tr : Experiments.Table2.row) ->
      Alcotest.(check string) "row name" b.Experiments.Table2.name
        tr.Experiments.Table2.name;
      Alcotest.check feps
        (Printf.sprintf "Table 2 %S unchanged under tracing"
           b.Experiments.Table2.name)
        b.Experiments.Table2.measured tr.Experiments.Table2.measured)
    baseline traced

(* ------------------------------------------------------------------ *)
(* Registry.                                                           *)

let registry_counters () =
  let r = Obs.Registry.create () in
  Alcotest.check feps "unset counter reads 0" 0. (Obs.Registry.counter r "x");
  Obs.Registry.incr r "frames";
  Obs.Registry.incr r "frames";
  Obs.Registry.incr r ~by:3. "bytes";
  Alcotest.check feps "frames" 2. (Obs.Registry.counter r "frames");
  Alcotest.check feps "bytes" 3. (Obs.Registry.counter r "bytes");
  Alcotest.(check (list string))
    "counters sorted by name" [ "bytes"; "frames" ]
    (List.map fst (Obs.Registry.counters r))

let registry_series_aggregate () =
  let r = Obs.Registry.create () in
  List.iter
    (fun v -> Obs.Registry.observe r ~node:1 ~seg:7 ~op:"WRITE" v)
    [ 10.; 20.; 30. ];
  List.iter
    (fun v -> Obs.Registry.observe r ~node:2 ~seg:7 ~op:"WRITE" v)
    [ 40.; 50. ];
  Obs.Registry.observe r ~node:1 ~seg:7 ~op:"READ" 99.;
  Alcotest.(check (list string))
    "ops" [ "READ"; "WRITE" ]
    (List.sort compare (Obs.Registry.ops r));
  (match Obs.Registry.histogram r ~node:1 ~seg:7 ~op:"WRITE" with
  | None -> Alcotest.fail "missing (1,7,WRITE) series"
  | Some h -> Alcotest.(check int) "node-1 samples" 3 (Metrics.Histogram.count h));
  (match Obs.Registry.aggregate r ~op:"WRITE" with
  | None -> Alcotest.fail "missing WRITE aggregate"
  | Some h ->
      Alcotest.(check int) "cluster-wide samples" 5 (Metrics.Histogram.count h));
  Alcotest.(check bool) "no such aggregate" true
    (Obs.Registry.aggregate r ~op:"CAS" = None);
  let report = Obs.Registry.report r in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "report mentions %s" needle)
        true (contains report needle))
    [ "WRITE"; "READ" ]

let registry_merge () =
  let a = Obs.Registry.create () and b = Obs.Registry.create () in
  Obs.Registry.incr a "ops";
  Obs.Registry.incr b ~by:4. "ops";
  Obs.Registry.observe a ~node:1 ~seg:1 ~op:"CAS" 5.;
  Obs.Registry.observe b ~node:1 ~seg:1 ~op:"CAS" 6.;
  Obs.Registry.observe b ~node:3 ~seg:1 ~op:"CAS" 7.;
  Obs.Registry.merge_into a b;
  Alcotest.check feps "counters fold" 5. (Obs.Registry.counter a "ops");
  match Obs.Registry.aggregate a ~op:"CAS" with
  | None -> Alcotest.fail "missing CAS aggregate"
  | Some h -> Alcotest.(check int) "series fold" 3 (Metrics.Histogram.count h)

let quickstart_feeds_registry () =
  let run = Lazy.force quickstart in
  let r = run.Experiments.Traced.registry in
  List.iter
    (fun op ->
      match Obs.Registry.aggregate r ~op with
      | None -> Alcotest.failf "no %s latency series" op
      | Some h ->
          Alcotest.(check bool)
            (Printf.sprintf "%s samples recorded" op)
            true
            (Metrics.Histogram.count h > 0))
    [ "WRITE"; "READ"; "CAS" ]

(* ------------------------------------------------------------------ *)
(* Histogram aggregation (satellite of the registry).                  *)

let histogram_percentile_bounds () =
  let h = Metrics.Histogram.create () in
  for i = 1 to 2000 do
    Metrics.Histogram.add h (float_of_int i)
  done;
  let _, growth, _ = Metrics.Histogram.params h in
  List.iter
    (fun (p, exact) ->
      let approx = Metrics.Histogram.percentile h p in
      Alcotest.(check bool)
        (Printf.sprintf "p%.0f: %.1f within one bucket above %.1f" p approx
           exact)
        true
        (approx >= exact && approx <= exact *. growth *. 1.000001))
    [ (50., 1000.); (95., 1900.); (99., 1980.) ]

let histogram_merge () =
  let build values =
    let h = Metrics.Histogram.create () in
    List.iter (Metrics.Histogram.add h) values;
    h
  in
  let xs = [ 1.; 5.; 120.; 120.; 4000. ] and ys = [ 0.5; 9.; 350. ] in
  let merged = Metrics.Histogram.merge (build xs) (build ys) in
  let whole = build (xs @ ys) in
  Alcotest.(check int) "count" (Metrics.Histogram.count whole)
    (Metrics.Histogram.count merged);
  List.iter
    (fun p ->
      Alcotest.check feps
        (Printf.sprintf "p%.0f equals concatenation" p)
        (Metrics.Histogram.percentile whole p)
        (Metrics.Histogram.percentile merged p))
    [ 10.; 50.; 90.; 99. ];
  Alcotest.(check bool) "buckets equal" true
    (Metrics.Histogram.buckets whole = Metrics.Histogram.buckets merged)

let histogram_merge_layout_mismatch () =
  let a = Metrics.Histogram.create () in
  let b = Metrics.Histogram.create ~growth:1.5 () in
  Alcotest.check_raises "layouts must match"
    (Invalid_argument "Histogram.merge: incompatible bucket layouts")
    (fun () -> ignore (Metrics.Histogram.merge a b))

let histogram_underflow () =
  let h = Metrics.Histogram.create ~least:0.1 () in
  Metrics.Histogram.add h 0.05;
  Metrics.Histogram.add h 1.0;
  Alcotest.(check int) "underflow tracked" 1 (Metrics.Histogram.underflow h)

(* ------------------------------------------------------------------ *)
(* Composable LRPC monitors (legacy slot + registrations).             *)

let lrpc_monitor_compose () =
  let d = Rig.duo () in
  let legacy = ref 0 and extra = ref 0 in
  Cluster.Lrpc.set_monitor (Some (fun _node -> incr legacy));
  let id = Cluster.Lrpc.add_monitor (fun _node -> incr extra) in
  Fun.protect
    ~finally:(fun () ->
      Cluster.Lrpc.set_monitor None;
      Cluster.Lrpc.remove_monitor id)
    (fun () ->
      Rig.run d (fun () ->
          ignore (Cluster.Lrpc.call d.Rig.node0 (fun x -> x + 1) 1));
      Alcotest.(check int) "legacy slot fired" 1 !legacy;
      Alcotest.(check int) "registered monitor fired" 1 !extra;
      Cluster.Lrpc.remove_monitor id;
      Rig.run d (fun () ->
          ignore (Cluster.Lrpc.call d.Rig.node0 (fun x -> x + 1) 2));
      Alcotest.(check int) "legacy still fires" 2 !legacy;
      Alcotest.(check int) "removed monitor silent" 1 !extra)

(* ------------------------------------------------------------------ *)
(* Telemetry plane: time-series sampler, SLO gates, host profiling,    *)
(* and the JSON reader that round-trips the emitted artifacts.         *)

let timeseries_sampling () =
  let engine = Sim.Engine.create () in
  let ts =
    Obs.Timeseries.create
      ~config:{ Obs.Timeseries.interval = Sim.Time.us 10; capacity = 4 }
      engine
  in
  let v = ref 0. in
  Obs.Timeseries.register ts "g" (fun () -> !v);
  Obs.Timeseries.start ts;
  Sim.Proc.run engine (fun () ->
      for i = 1 to 10 do
        v := float_of_int i;
        Sim.Proc.wait (Sim.Time.us 10)
      done);
  let st = Option.get (Obs.Timeseries.stat ts "g") in
  Alcotest.(check bool) "sampled repeatedly" true (st.Obs.Timeseries.count >= 10);
  Alcotest.check feps "whole-run max survives ring eviction" 10.
    st.Obs.Timeseries.max;
  Alcotest.check feps "first sample predates the workload" 0.
    st.Obs.Timeseries.first;
  Alcotest.(check int)
    "ring keeps only capacity samples" 4
    (List.length (Obs.Timeseries.samples ts "g"));
  Alcotest.(check bool)
    "sampler parked itself at quiescence" false
    (Obs.Timeseries.running ts);
  Alcotest.(check bool)
    "sparkline renders" true
    (Obs.Timeseries.sparkline ts "g" <> "");
  Alcotest.(check bool)
    "report mentions the gauge" true
    (contains (Obs.Timeseries.report ts) "g")

let timeseries_window_and_rate () =
  let engine = Sim.Engine.create () in
  let ts =
    Obs.Timeseries.create
      ~config:{ Obs.Timeseries.interval = Sim.Time.us 10; capacity = 64 }
      engine
  in
  (* A gauge that reads the virtual clock in microseconds: its slope is
     exactly one million per second. *)
  Obs.Timeseries.register ts "clk" (fun () ->
      Sim.Time.to_us (Sim.Engine.now engine));
  Obs.Timeseries.start ts;
  Sim.Proc.run engine (fun () -> Sim.Proc.wait (Sim.Time.us 100));
  let rate = Option.get (Obs.Timeseries.rate ts "clk") in
  Alcotest.check (Alcotest.float 1.) "clock slope is 1e6/s" 1_000_000. rate;
  let windowed = Obs.Timeseries.window ts "clk" (Sim.Time.us 30) in
  Alcotest.(check int) "trailing 30us window holds 4 ticks" 4
    (List.length windowed);
  Alcotest.(check bool)
    "unknown gauge reads empty" true
    (Obs.Timeseries.samples ts "nope" = []
    && Obs.Timeseries.stat ts "nope" = None)

let slo_spec =
  String.concat "\n"
    [
      "# latency and counters from the registry";
      "p99 read < 400 us";
      "counter faults.drops <= 0";
      "max clk < 200";
      "last clk >= 100";
      "rate clk < 1500000 over 50 us";
    ]

let slo_context () =
  let engine = Sim.Engine.create () in
  let ts =
    Obs.Timeseries.create
      ~config:{ Obs.Timeseries.interval = Sim.Time.us 10; capacity = 64 }
      engine
  in
  Obs.Timeseries.register ts "clk" (fun () ->
      Sim.Time.to_us (Sim.Engine.now engine));
  Obs.Timeseries.start ts;
  Sim.Proc.run engine (fun () -> Sim.Proc.wait (Sim.Time.us 100));
  let registry = Obs.Registry.create () in
  Obs.Registry.observe registry ~node:0 ~seg:1 ~op:"read" 120.;
  Obs.Registry.observe registry ~node:1 ~seg:1 ~op:"read" 180.;
  {
    Obs.Slo.registry = Some registry;
    series = Some ts;
    duration = Sim.Time.us 100;
  }

let slo_parse_and_pass () =
  let spec =
    match Obs.Slo.parse slo_spec with
    | Ok s -> s
    | Error e -> Alcotest.failf "spec did not parse: %s" e
  in
  Alcotest.(check int) "five clauses" 5 (List.length spec);
  let verdicts = Obs.Slo.eval (slo_context ()) spec in
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "clause passes: %s (%s)"
           (Obs.Slo.clause_to_string v.Obs.Slo.clause)
           v.Obs.Slo.detail)
        true v.Obs.Slo.ok)
    verdicts;
  Alcotest.(check int) "no violations" 0
    (List.length (Obs.Slo.violations verdicts))

let slo_violations_and_fail_closed () =
  let ctx = slo_context () in
  let spec =
    match
      Obs.Slo.parse
        "p99 read < 100 us\nmax clk < 50\nmax never.sampled < 5\ncounter \
         untouched > 3\np50 unknown_op < 10 us"
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "spec did not parse: %s" e
  in
  let verdicts = Obs.Slo.eval ctx spec in
  Alcotest.(check int) "every clause violated" 5
    (List.length (Obs.Slo.violations verdicts));
  (* The last three are fail-closed: no measurement at all. *)
  List.iteri
    (fun i v ->
      if i >= 2 then
        Alcotest.(check bool)
          (Printf.sprintf "clause %d fails closed" i)
          true
          (v.Obs.Slo.value = None))
    verdicts;
  Alcotest.(check bool)
    "render marks failures" true
    (contains (Obs.Slo.render verdicts) "FAIL");
  (match Obs.Slo.parse "bogus clause here" with
  | Ok _ -> Alcotest.fail "nonsense parsed"
  | Error e ->
      Alcotest.(check bool) "parse error names the line" true
        (contains e "bogus"));
  match Obs.Slo.parse "counter x <= 0 over 5 ms" with
  | Ok _ -> Alcotest.fail "counter clause accepted a window"
  | Error _ -> ()

let profile_records_phases () =
  let p = Obs.Profile.create () in
  let n =
    Obs.Profile.record p "alloc" (fun () ->
        (* Minor-heap churn: boxed pairs, not one big major-heap array,
           so the precise minor-words counter is what moves. *)
        let l = ref [] in
        for i = 1 to 2048 do
          l := (i, i) :: !l
        done;
        List.length (Sys.opaque_identity !l) * 2)
  in
  Alcotest.(check int) "body result returned" 4096 n;
  (match Obs.Profile.phase p "alloc" with
  | None -> Alcotest.fail "phase not recorded"
  | Some s ->
      Alcotest.(check bool) "wall time non-negative" true (s.Obs.Profile.wall_s >= 0.);
      Alcotest.(check bool)
        "allocation observed" true
        (Obs.Profile.total_words s > 0.));
  Alcotest.(check bool)
    "exceptions still record" true
    (match Obs.Profile.record p "boom" (fun () -> failwith "x") with
    | exception Failure _ -> Obs.Profile.phase p "boom" <> None
    | _ -> false);
  Alcotest.(check int) "two phases" 2 (List.length (Obs.Profile.phases p));
  Alcotest.(check bool) "report lists them" true
    (contains (Obs.Profile.report p) "alloc")

let json_reader () =
  let src =
    "{\"a\": [1, 2.5, true, null, \"x\\u00e9\\n\"], \"b\": {\"c\": -3e2}}"
  in
  (match Metrics.Json.parse src with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok v ->
      Alcotest.(check (option (float 1e-9)))
        "nested number" (Some (-300.))
        (Option.bind (Metrics.Json.find v [ "b"; "c" ]) Metrics.Json.to_number);
      let a = Option.get (Metrics.Json.member "a" v) in
      Alcotest.(check int) "list length" 5
        (List.length (Option.get (Metrics.Json.to_list a)));
      Alcotest.(check (option string))
        "utf8 escape decodes"
        (Some "x\xc3\xa9\n")
        (Option.bind (Metrics.Json.index 4 a) Metrics.Json.to_string));
  List.iter
    (fun bad ->
      match Metrics.Json.parse bad with
      | Ok _ -> Alcotest.failf "accepted invalid %S" bad
      | Error _ -> ())
    [ "{"; "1 2"; "[1,]"; "\"unterminated"; "{\"a\" 1}"; "" ]

let chrome_trace_roundtrip () =
  let run = Lazy.force quickstart in
  let json = Obs.Export.chrome_json run.Experiments.Traced.trace in
  match Metrics.Json.parse json with
  | Error e -> Alcotest.failf "chrome trace is not valid JSON: %s" e
  | Ok v ->
      Alcotest.(check (option string))
        "displayTimeUnit" (Some "ns")
        (Option.bind
           (Metrics.Json.member "displayTimeUnit" v)
           Metrics.Json.to_string);
      let events =
        Option.get
          (Option.bind (Metrics.Json.member "traceEvents" v) Metrics.Json.to_list)
      in
      Alcotest.(check bool) "has events" true (events <> []);
      List.iter
        (fun e ->
          match
            Option.bind (Metrics.Json.member "ph" e) Metrics.Json.to_string
          with
          | Some ("X" | "M") -> ()
          | other ->
              Alcotest.failf "unexpected event phase %s"
                (Option.value ~default:"<none>" other))
        events

(* The tentpole contract: a chaos campaign's fault-plane digest — the
   replay witness — is bit-identical with the sampler on or off, and
   the sampler nevertheless observed the run. *)
let sampling_is_free () =
  let plan = Faults.Campaign.chaos_plan 0.05 in
  let base = Faults.Campaign.run ~plan ~seed:11 "producer_consumer" in
  let sampled =
    Faults.Campaign.run ~plan ~sampler:(Sim.Time.us 20) ~seed:11
      "producer_consumer"
  in
  Alcotest.(check int)
    "fault digest identical under sampling" base.Faults.Campaign.digest
    sampled.Faults.Campaign.digest;
  Alcotest.(check int)
    "same injected fault count" base.Faults.Campaign.events
    sampled.Faults.Campaign.events;
  Alcotest.(check bool)
    "same verdict" true
    (base.Faults.Campaign.survived = sampled.Faults.Campaign.survived
    && base.Faults.Campaign.converged = sampled.Faults.Campaign.converged);
  Alcotest.(check bool)
    "unsampled run carries no series" true
    (base.Faults.Campaign.timeseries = None);
  let ts = Option.get sampled.Faults.Campaign.timeseries in
  Alcotest.(check bool) "sampler ticked" true (Obs.Timeseries.ticks ts > 0);
  Alcotest.(check bool)
    "frames gauge saw traffic" true
    (match Obs.Timeseries.stat ts "faults.frames" with
    | Some st -> st.Obs.Timeseries.last > 0.
    | None -> false);
  Alcotest.(check bool)
    "sampling adds engine events" true
    (sampled.Faults.Campaign.engine_events > base.Faults.Campaign.engine_events)

let suite =
  [
    Alcotest.test_case "WRITE span tree decomposes" `Quick write_tree;
    Alcotest.test_case "READ and CAS span trees" `Quick read_and_cas_trees;
    Alcotest.test_case "DX vs HY clerk scopes" `Quick file_service_scopes;
    Alcotest.test_case "all replays validate" `Quick all_replays_validate;
    Alcotest.test_case "chrome trace export" `Quick chrome_export;
    Alcotest.test_case "span accounting agrees with clock" `Quick
      decompose_agreement;
    Alcotest.test_case "tracing is free" `Quick tracing_is_free;
    Alcotest.test_case "table 2 unperturbed by tracing" `Quick
      table2_unperturbed;
    Alcotest.test_case "registry counters" `Quick registry_counters;
    Alcotest.test_case "registry series and aggregates" `Quick
      registry_series_aggregate;
    Alcotest.test_case "registry merge" `Quick registry_merge;
    Alcotest.test_case "replay feeds the registry" `Quick
      quickstart_feeds_registry;
    Alcotest.test_case "histogram percentile bounds" `Quick
      histogram_percentile_bounds;
    Alcotest.test_case "histogram merge" `Quick histogram_merge;
    Alcotest.test_case "histogram merge layout mismatch" `Quick
      histogram_merge_layout_mismatch;
    Alcotest.test_case "histogram underflow" `Quick histogram_underflow;
    Alcotest.test_case "lrpc monitors compose" `Quick lrpc_monitor_compose;
    Alcotest.test_case "timeseries sampling and ring" `Quick
      timeseries_sampling;
    Alcotest.test_case "timeseries window and rate" `Quick
      timeseries_window_and_rate;
    Alcotest.test_case "slo spec parses and passes" `Quick slo_parse_and_pass;
    Alcotest.test_case "slo violations and fail-closed" `Quick
      slo_violations_and_fail_closed;
    Alcotest.test_case "host profile records phases" `Quick
      profile_records_phases;
    Alcotest.test_case "json reader round-trips" `Quick json_reader;
    Alcotest.test_case "chrome trace round-trips" `Quick
      chrome_trace_roundtrip;
    Alcotest.test_case "sampling is perturbation-free" `Quick sampling_is_free;
  ]

(* The pipelined issue engine: the differential suite (batched ==
   unbatched), the burst codec properties, ordering/fence semantics,
   and the lint interaction with policied retries.

   The differential trick: the same call sequence runs through a
   Pipeline twice, once with a disabled config (pure passthrough — the
   synchronous path) and once enabled (batching, windowing,
   coalescing).  Final segment contents must be identical; notification
   counts must respect the coalescing policy; the race detector and
   lint must return the same verdicts. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let ms = Sim.Time.ms

(* ---------------- The scripted differential workload -------------- *)

(* A mixed meta-instruction script: adjacent writes (merge), an
   overlapping rewrite (last-writer-wins), a distant extent, a notify
   write, a windowed read-back, a CAS, a fence.  Returns the final
   destination segment image, what the read observed, the CAS witness,
   the notification count, and the race/lint verdicts. *)
let scripted ~plan ~config () =
  let d = Rig.duo () in
  (match plan with
  | None -> ()
  | Some plan ->
      let (_ : Faults.Plane.t) =
        Faults.Plane.create ~plan ~seed:11 d.Rig.testbed
      in
      ());
  let monitor = Analysis.Monitor.create d.Rig.engine in
  Analysis.Monitor.attach_rmem monitor d.Rig.rmem0;
  Analysis.Monitor.attach_rmem monitor d.Rig.rmem1;
  let image = ref Bytes.empty in
  let observed = ref Bytes.empty in
  let cas_witness = ref 0l in
  let notified = ref 0 in
  Rig.run d (fun () ->
      let segment, desc = Rig.shared_segment d in
      let p = Rmem.Pipeline.create ~config d.Rig.rmem0 in
      let buf = Rig.buffer0 d in
      Rmem.Pipeline.write p desc ~off:8 (Bytes.make 24 'a');
      Rmem.Pipeline.write p desc ~off:96 (Bytes.make 32 'b');
      Rmem.Pipeline.write p desc ~off:32 (Bytes.make 64 'c');
      Rmem.Pipeline.write p desc ~off:1000 (Bytes.make 40 'd');
      Rmem.Pipeline.write p desc ~off:0 ~notify:true (Bytes.make 8 'e');
      let ok, witness =
        Rmem.Pipeline.cas p desc ~doff:2048 ~old_value:0l ~new_value:7l ()
      in
      check_bool "cas applied" true ok;
      cas_witness := witness;
      Rmem.Pipeline.read_submit p desc ~soff:0 ~count:128 ~dst:buf ~doff:0 ();
      Rmem.Pipeline.drain p;
      observed := Cluster.Address_space.read d.Rig.space0 ~addr:0 ~len:128;
      Rmem.Pipeline.fence p desc;
      image := Cluster.Address_space.read d.Rig.space1 ~addr:0 ~len:4096;
      notified := Rmem.Notification.posted (Rmem.Segment.notification segment));
  let races = Analysis.Race.find monitor in
  let findings = Analysis.Lint.check monitor in
  (!image, !observed, !cas_witness, !notified, races, findings)

let digest b = Digest.to_hex (Digest.bytes b)

(* The reference image the script must produce, whatever the mode. *)
let expected_image () =
  let b = Bytes.make 4096 '\000' in
  Bytes.blit (Bytes.make 24 'a') 0 b 8 24;
  Bytes.blit (Bytes.make 32 'b') 0 b 96 32;
  Bytes.blit (Bytes.make 64 'c') 0 b 32 64;
  Bytes.blit (Bytes.make 40 'd') 0 b 1000 40;
  Bytes.blit (Bytes.make 8 'e') 0 b 0 8;
  Bytes.set_int32_le b 2048 7l;
  b

let differential ?(compare_observed = true) ~plan () =
  let image_u, observed_u, witness_u, notified_u, races_u, findings_u =
    scripted ~plan ~config:Rmem.Pipeline.default_config ()
  in
  let image_p, observed_p, witness_p, notified_p, races_p, findings_p =
    scripted ~plan ~config:(Rmem.Pipeline.pipelined_config ()) ()
  in
  check_string "final segment contents identical" (digest image_u)
    (digest image_p);
  check_string "both match the reference image"
    (digest (expected_image ()))
    (digest image_u);
  if compare_observed then
    check_string "read-back observed program order in both modes"
      (digest observed_u) (digest observed_p);
  check_bool "cas witness identical" true (Int32.equal witness_u witness_p);
  (* One notify request, one coalescing flush: both modes post exactly
     once.  Coalescing may only ever reduce the count. *)
  check_int "unbatched posts the notify" 1 notified_u;
  check_bool "coalescing posts at least once, never more" true
    (notified_p >= 1 && notified_p <= notified_u);
  check_int "no races either mode" 0
    (List.length races_u + List.length races_p);
  check_int "identical lint verdicts" (List.length findings_u)
    (List.length findings_p);
  check_int "clean lint report" 0 (List.length findings_u)

let differential_fault_free () = differential ~plan:None ()

(* Same script under an active fault plane (delay jitter on half the
   frames: reordering pressure on the windows without loss, so no
   recovery policy is needed and the final-image check stays exact).
   The mid-script read-back is NOT compared across modes here — jitter
   legitimately reorders frames differently for each mode's wire
   schedule, so only the fenced final state is mode-invariant. *)
let differential_under_jitter () =
  differential ~compare_observed:false
    ~plan:(Some (Faults.Plan.make ~link:(Faults.Plan.link_faults ~jitter:0.5 ()) ()))
    ()

(* ---------------- Campaign differentials --------------------------- *)

let outcome_ok (o : Faults.Campaign.outcome) = o.survived && o.converged

(* Every campaign workload, fault-free: the pipelined build must pass
   the same convergence checks as the legacy one. *)
let campaigns_fault_free () =
  List.iter
    (fun workload ->
      let a = Faults.Campaign.run ~pipelined:false ~seed:7 workload in
      let b = Faults.Campaign.run ~pipelined:true ~seed:7 workload in
      check_bool (workload ^ " unbatched converges") true (outcome_ok a);
      check_bool (workload ^ " pipelined converges") true (outcome_ok b))
    Faults.Campaign.workloads

(* Under chaos: both modes converge, and the pipelined mode keeps the
   determinism/replay contract (same plan+seed => same digest). *)
let campaigns_under_chaos () =
  let plan = Faults.Campaign.chaos_plan 0.10 in
  List.iter
    (fun workload ->
      let a = Faults.Campaign.run ~plan ~pipelined:false ~seed:42 workload in
      let b = Faults.Campaign.run ~plan ~pipelined:true ~seed:42 workload in
      let b' = Faults.Campaign.run ~plan ~pipelined:true ~seed:42 workload in
      check_bool (workload ^ " unbatched converges under chaos") true
        (outcome_ok a);
      check_bool (workload ^ " pipelined converges under chaos") true
        (outcome_ok b);
      check_bool (workload ^ " pipelined replays the digest") true
        (b.digest = b'.digest && b.events = b'.events))
    [ "quickstart"; "producer_consumer"; "replica" ];
  let o = Faults.Campaign.run ~pipelined:true ~seed:42 "crash_restart" in
  check_bool "crash_restart pipelined heals the generation bump" true
    (outcome_ok o)

(* ---------------- Ordering and the window -------------------------- *)

(* Staged writes are invisible until their flush; an overlapping read
   forces the flush (program order); a fence proves deposit. *)
let visibility_and_fence () =
  let d = Rig.duo () in
  Rig.run d (fun () ->
      let _, desc = Rig.shared_segment d in
      let p =
        Rmem.Pipeline.create ~config:(Rmem.Pipeline.pipelined_config ()) d.Rig.rmem0
      in
      let buf = Rig.buffer0 d in
      Rmem.Pipeline.write p desc ~off:0 (Bytes.make 64 'x');
      (* Staged only: nothing on the wire, the destination still sees
         zeros — the in-flight window the race detector models (the
         write's visibility witness is its flush). *)
      Sim.Proc.wait (ms 1);
      check_string "staged write not yet visible"
        (String.make 64 '\000')
        (Bytes.to_string
           (Cluster.Address_space.read d.Rig.space1 ~addr:0 ~len:64));
      (* The overlapping read flushes first and observes program order. *)
      Rmem.Pipeline.read_submit p desc ~soff:0 ~count:64 ~dst:buf ~doff:0 ();
      Rmem.Pipeline.drain p;
      check_string "read observes the staged write"
        (String.make 64 'x')
        (Bytes.to_string
           (Cluster.Address_space.read d.Rig.space0 ~addr:0 ~len:64));
      (* Fence: staged bytes are deposited when it returns. *)
      Rmem.Pipeline.write p desc ~off:128 (Bytes.make 32 'y');
      Rmem.Pipeline.fence p desc;
      check_string "fence proves deposit"
        (String.make 32 'y')
        (Bytes.to_string
           (Cluster.Address_space.read d.Rig.space1 ~addr:128 ~len:32)))

(* The read window: full window stalls the submitter; everything
   retires at drain; adjacent staged writes merge into one burst. *)
let window_and_merge () =
  let d = Rig.duo () in
  Rig.run d (fun () ->
      let _, desc = Rig.shared_segment d in
      let p =
        Rmem.Pipeline.create
          ~config:(Rmem.Pipeline.pipelined_config ~window:2 ())
          d.Rig.rmem0
      in
      let buf = Rig.buffer0 d in
      Rmem.Remote_memory.write d.Rig.rmem0 desc ~off:0 (Bytes.make 4096 'r');
      for i = 0 to 5 do
        Rmem.Pipeline.read_submit p desc ~soff:(i * 512) ~count:512 ~dst:buf
          ~doff:(i * 512) ()
      done;
      Rmem.Pipeline.drain p;
      check_string "windowed reads all landed"
        (String.make 3072 'r')
        (Bytes.to_string
           (Cluster.Address_space.read d.Rig.space0 ~addr:0 ~len:3072));
      let stats = Rmem.Pipeline.stats p in
      check_bool "a window of 2 stalled on 6 submits" true
        (stats.Rmem.Pipeline.window_stalls > 0);
      (* Adjacent extents merge: three touching writes, one flush, one
         burst, two merges. *)
      Rmem.Pipeline.write p desc ~off:8192 (Bytes.make 100 'm');
      Rmem.Pipeline.write p desc ~off:8292 (Bytes.make 100 'm');
      Rmem.Pipeline.write p desc ~off:8392 (Bytes.make 100 'm');
      Rmem.Pipeline.flush p desc;
      let stats = Rmem.Pipeline.stats p in
      check_bool "adjacent writes merged" true
        (stats.Rmem.Pipeline.merged_extents >= 2);
      Rmem.Pipeline.fence p desc;
      check_string "merged burst deposited"
        (String.make 300 'm')
        (Bytes.to_string
           (Cluster.Address_space.read d.Rig.space1 ~addr:8192 ~len:300)))

(* ---------------- Burst codec properties --------------------------- *)

let burst_gen =
  QCheck.make ~print:(fun b -> Printf.sprintf "burst of %d items" (List.length b.Rmem.Wire.items))
    QCheck.Gen.(
      let item =
        map2
          (fun off data -> { Rmem.Wire.off; data = Bytes.of_string data })
          (int_bound 100_000)
          (string_size ~gen:char (1 -- 300))
      in
      map4
        (fun seg gen_ notify items ->
          {
            Rmem.Wire.seg;
            gen = Rmem.Generation.of_int gen_;
            notify;
            swab = false;
            items;
          })
        (int_bound 63) (int_bound 65535) bool
        (list_size (1 -- 12) item))

let burst_roundtrip =
  QCheck.Test.make ~name:"burst codec roundtrip is byte-exact" ~count:300
    burst_gen (fun b ->
      match Rmem.Wire.decode (Rmem.Wire.encode (Rmem.Wire.Write_burst b)) with
      | Rmem.Wire.Write_burst b' ->
          b'.Rmem.Wire.seg = b.Rmem.Wire.seg
          && Rmem.Generation.to_int b'.Rmem.Wire.gen
             = Rmem.Generation.to_int b.Rmem.Wire.gen
          && b'.Rmem.Wire.notify = b.Rmem.Wire.notify
          && List.length b'.Rmem.Wire.items = List.length b.Rmem.Wire.items
          && List.for_all2
               (fun (i : Rmem.Wire.burst_item) (j : Rmem.Wire.burst_item) ->
                 i.off = j.off && Bytes.equal i.data j.data)
               b'.Rmem.Wire.items b.Rmem.Wire.items
      | _ -> false)

let burst_corruption_detected =
  QCheck.Test.make
    ~name:"AAL checksum catches every corrupted burst byte" ~count:300
    QCheck.(pair burst_gen (int_bound 1_000_000))
    (fun (b, byte) ->
      let frame =
        Atm.Frame.make
          ~src:(Atm.Addr.of_int 1)
          ~dst:(Atm.Addr.of_int 2)
          (Rmem.Wire.encode (Rmem.Wire.Write_burst b))
      in
      Atm.Frame.intact frame
      && not (Atm.Frame.intact (Atm.Frame.corrupted ~byte frame)))

let burst_frame_arithmetic =
  QCheck.Test.make ~name:"burst frame size arithmetic" ~count:300 burst_gen
    (fun b ->
      let items = b.Rmem.Wire.items in
      let encoded = Rmem.Wire.encode (Rmem.Wire.Write_burst b) in
      Bytes.length encoded = Rmem.Wire.burst_frame_bytes items
      && Rmem.Wire.burst_frame_bytes items
         = Rmem.Wire.burst_header_bytes
           + List.fold_left
               (fun acc (i : Rmem.Wire.burst_item) ->
                 acc + Rmem.Wire.burst_item_header_bytes + Bytes.length i.data)
               0 items)

(* ---------------- Lint vs policied retries ------------------------- *)

(* A tight unpolicied CAS spin is the anti-idiom lint flags; the same
   failures under a recovery policy are governed (bounded attempts,
   backoff) and must NOT be double-counted as an unbounded chain. *)
let policied_cas_not_flagged () =
  let spin ~policied =
    let d = Rig.duo () in
    let monitor = Analysis.Monitor.create d.Rig.engine in
    Analysis.Monitor.attach_rmem monitor d.Rig.rmem0;
    Analysis.Monitor.attach_rmem monitor d.Rig.rmem1;
    Rig.run d (fun () ->
        let _, desc = Rig.shared_segment d in
        let policy =
          Rmem.Recovery.policy ~attempts:2 ~timeout:(ms 2)
            ~backoff:(Sim.Time.us 10) ()
        in
        for _ = 1 to Analysis.Lint.poll_threshold + 2 do
          (* The word is 0, so old_value 9 always fails. *)
          if policied then
            ignore
              (Rmem.Remote_memory.cas_with d.Rig.rmem0 ~policy desc ~doff:4096
                 ~old_value:9l ~new_value:1l ()
                : bool * int32)
          else
            ignore
              (Rmem.Remote_memory.cas_wait d.Rig.rmem0 desc ~doff:4096
                 ~old_value:9l ~new_value:1l ()
                : bool * int32)
        done);
    List.filter
      (fun f -> String.equal f.Analysis.Lint.rule "unbounded-retry")
      (Analysis.Lint.check monitor)
  in
  check_bool "bare spin is flagged" true (spin ~policied:false <> []);
  check_int "policied retries are not an unbounded chain" 0
    (List.length (spin ~policied:true))

(* Failed CAS issues sharing one pipeline window cycle are ONE logical
   attempt (the client issued them before seeing any reply), not a
   retry chain: a full window of failures must not trip the
   unbounded-retry lint, and each window cycle counts once toward the
   unpolicied-issue tally. *)
let windowed_cas_failures_are_one_attempt () =
  let d = Rig.duo () in
  let monitor = Analysis.Monitor.create d.Rig.engine in
  Analysis.Monitor.attach_rmem monitor d.Rig.rmem0;
  Analysis.Monitor.attach_rmem monitor d.Rig.rmem1;
  let window = Analysis.Lint.poll_threshold in
  let cycles = 2 in
  Rig.run d (fun () ->
      let _, desc = Rig.shared_segment d in
      let p =
        Rmem.Pipeline.create
          ~config:(Rmem.Pipeline.pipelined_config ~window ())
          d.Rig.rmem0
      in
      for _ = 1 to cycles do
        (* The word is 0, so old_value 9 always fails; the window
           swallows every issue without blocking, so all [window] of
           them ride one batch. *)
        for _ = 1 to window do
          Rmem.Pipeline.cas_submit p desc ~doff:4096 ~old_value:9l
            ~new_value:1l ()
        done;
        Rmem.Pipeline.drain p
      done);
  let flagged =
    List.filter
      (fun f -> String.equal f.Analysis.Lint.rule "unbounded-retry")
      (Analysis.Lint.check monitor)
  in
  check_int "a window of async CAS failures is not an unbounded chain" 0
    (List.length flagged);
  List.iter
    (fun (_, worst) ->
      check_bool "worst chain counts batches, not issues" true
        (worst <= cycles))
    (Analysis.Monitor.worst_cas_retries monitor);
  let cas_issues =
    List.filter_map
      (fun ((_, _, op), n) ->
        if op = Rmem.Rights.Cas_op then Some n else None)
      (Analysis.Monitor.unpolicied_issues monitor)
  in
  check_int "one unpolicied tally per window cycle" cycles
    (List.fold_left ( + ) 0 cas_issues)

(* Burst writes issued inside a recovery policy count as policied for
   the fault-capable lint too. *)
let policied_flush_no_retry_finding () =
  let d = Rig.duo () in
  let monitor = Analysis.Monitor.create d.Rig.engine in
  Analysis.Monitor.attach_rmem monitor d.Rig.rmem0;
  Analysis.Monitor.attach_rmem monitor d.Rig.rmem1;
  Rig.run d (fun () ->
      let _, desc = Rig.shared_segment d in
      let p =
        Rmem.Pipeline.create ~config:(Rmem.Pipeline.pipelined_config ()) d.Rig.rmem0
      in
      let policy =
        Rmem.Recovery.policy ~attempts:3 ~timeout:(ms 2)
          ~backoff:(Sim.Time.us 100) ()
      in
      Rmem.Pipeline.write p desc ~off:0 (Bytes.make 256 'p');
      Rmem.Pipeline.write p desc ~off:256 (Bytes.make 256 'q');
      Rmem.Pipeline.flush ~policy p desc;
      Rmem.Pipeline.fence ~policy p desc);
  let findings =
    List.filter
      (fun f -> String.equal f.Analysis.Lint.rule "no-retry-policy")
      (Analysis.Lint.check ~fault_capable:true monitor)
  in
  check_int "policied flush leaves no no-retry-policy finding" 0
    (List.length findings)

(* ---------------- BENCH artifact sanity ---------------------------- *)

(* The emitted JSON document parses (structural RFC 8259 validator) and
   the smoke sweep passes the PR's regression gates. *)
let bench_json_parses () =
  let samples =
    Experiments.Pipeline_bench.run ~ops:16 ~windows:[ 1; 4 ] ~batches:[ 4096 ]
      ~payloads:[ 4096 ] ()
  in
  let json = Experiments.Pipeline_bench.to_json samples in
  check_bool "emitted JSON parses" true
    (Experiments.Pipeline_bench.json_valid json);
  check_bool "known-bad JSON rejected" false
    (Experiments.Pipeline_bench.json_valid "{\"a\": [1, 2,}")

let suite =
  [
    Alcotest.test_case "differential: batched == unbatched (fault-free)"
      `Quick differential_fault_free;
    Alcotest.test_case "differential: batched == unbatched (under jitter)"
      `Quick differential_under_jitter;
    Alcotest.test_case "differential: campaigns fault-free" `Quick
      campaigns_fault_free;
    Alcotest.test_case "differential: campaigns under chaos" `Quick
      campaigns_under_chaos;
    Alcotest.test_case "visibility, program order, fence" `Quick
      visibility_and_fence;
    Alcotest.test_case "window stalls and extent merging" `Quick
      window_and_merge;
    QCheck_alcotest.to_alcotest burst_roundtrip;
    QCheck_alcotest.to_alcotest burst_corruption_detected;
    QCheck_alcotest.to_alcotest burst_frame_arithmetic;
    Alcotest.test_case "policied CAS retries are not an unbounded chain"
      `Quick policied_cas_not_flagged;
    Alcotest.test_case "windowed CAS failures count as one attempt" `Quick
      windowed_cas_failures_are_one_attempt;
    Alcotest.test_case "policied flush satisfies fault-capable lint" `Quick
      policied_flush_no_retry_finding;
    Alcotest.test_case "bench JSON artifact parses" `Quick bench_json_parses;
  ]

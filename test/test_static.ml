(* The static protocol verifier: interval domain, one synthetic program
   per rule, the catalog's expected findings (including zero false
   positives on every campaign program), the pipelining classifier, and
   the manifest extraction / monitor-leak satellites. *)

module P = Workload.Program
module Static = Analysis.Static

let ( + ) = Stdlib.( + )

(* ---------------- Interval domain ---------------- *)

let test_interval () =
  let open Static.Interval in
  Alcotest.(check string) "exact" "5" (to_string (exact 5));
  Alcotest.(check string) "add" "[3,12]" (to_string (add (make 1 4) (make 2 8)));
  Alcotest.(check string) "mul spans endpoints" "[-8,12]"
    (to_string (mul (make (-2) 3) (make 2 4)));
  Alcotest.(check string) "mul negatives" "[-12,8]"
    (to_string (mul (make (-2) 3) (make (-4) 1)));
  Alcotest.(check bool) "contains" true (contains (make 0 7) 7);
  Alcotest.(check bool) "overlaps" true (overlaps (make 0 4) (make 4 9));
  Alcotest.(check bool) "disjoint" false (overlaps (make 0 3) (make 4 9));
  Alcotest.(check string) "join" "[0,9]" (to_string (join (make 0 3) (make 4 9)));
  Alcotest.check_raises "lo > hi rejected"
    (Invalid_argument "Interval.make: lo > hi") (fun () ->
      ignore (make 3 2))

(* ---------------- Per-rule synthetic programs ---------------- *)

let one_seg ?(len = 256) ?(rights = Rmem.Rights.all) () =
  [
    {
      Rmem.Manifest.seg = "s";
      exporter = 0;
      len;
      rights;
      grants = [];
      policy = Rmem.Segment.Conditional;
    };
  ]

let prog ?(manifest = one_seg ()) ?(node = 1) body =
  {
    P.name = "synthetic";
    manifest;
    nodes = [ { P.node; name = "t"; body } ];
  }

let rules p =
  List.map (fun (f : Static.Finding.t) -> f.rule) (Static.Verify.check p)

let check_rules what want p =
  Alcotest.(check (list string)) what want (rules p)

let test_rules () =
  let open P in
  check_rules "clean write/fence/read" []
    (prog
       [
         write ~seg:"s" ~off:(c 0) ~len:(c 64) ();
         fence "s";
         read ~seg:"s" ~off:(c 0) ~len:(c 64);
       ]);
  check_rules "constant overrun" [ "static-bounds" ]
    (prog [ read ~seg:"s" ~off:(c 192) ~len:(c 128) ]);
  check_rules "negative offset" [ "static-bounds" ]
    (prog
       [ for_ "i" ~lo:0 ~hi:3 [ read ~seg:"s" ~off:(v "i" * c (-4)) ~len:(c 4) ] ]);
  check_rules "loop-carried overrun" [ "static-bounds" ]
    (prog [ for_ "i" ~lo:0 ~hi:4 [ read ~seg:"s" ~off:(v "i" * c 64) ~len:(c 64) ] ]);
  check_rules "loop in bounds" []
    (prog [ for_ "i" ~lo:0 ~hi:3 [ read ~seg:"s" ~off:(v "i" * c 64) ~len:(c 64) ] ]);
  check_rules "write without the right" [ "static-rights" ]
    (prog
       ~manifest:(one_seg ~rights:Rmem.Rights.read_only ())
       [ write ~seg:"s" ~off:(c 0) ~len:(c 4) () ]);
  check_rules "grant overrides default" []
    (prog
       ~manifest:
         [
           {
             Rmem.Manifest.seg = "s";
             exporter = 0;
             len = 256;
             rights = Rmem.Rights.read_only;
             grants = [ (1, Rmem.Rights.all) ];
             policy = Rmem.Segment.Conditional;
           };
         ]
       [ write ~seg:"s" ~off:(c 0) ~len:(c 4) () ]);
  check_rules "remote local access" [ "static-rights" ]
    (prog [ local_read ~seg:"s" ~off:(c 0) ~len:(c 4) ]);
  check_rules "unknown segment" [ "static-unknown-segment" ]
    (prog [ read ~seg:"ghost" ~off:(c 0) ~len:(c 4) ]);
  check_rules "unbound variable" [ "static-unbound-var" ]
    (prog [ read ~seg:"s" ~off:(v "nowhere") ~len:(c 4) ]);
  check_rules "unfenced release" [ "static-unfenced-release"; "static-lock-leak" ]
    (prog
       [
         cas ~role:P.Acquire "s" ~off:(c 0);
         write ~seg:"s" ~off:(c 64) ~len:(c 4) ();
         cas ~role:P.Release "s" ~off:(c 4);
       ]);
  check_rules "fenced release pairs up" []
    (prog
       [
         cas ~role:P.Acquire "s" ~off:(c 0);
         write ~seg:"s" ~off:(c 64) ~len:(c 4) ();
         fence "s";
         cas ~role:P.Release "s" ~off:(c 0);
       ]);
  check_rules "doorbell overtakes cross-node data" [ "static-unfenced-publish" ]
    (prog
       ~manifest:
         (one_seg ()
         @ [
             {
               Rmem.Manifest.seg = "flag";
               exporter = 2;
               len = 8;
               rights = Rmem.Rights.all;
               grants = [];
               policy = Rmem.Segment.Always;
             };
           ])
       [
         write ~seg:"s" ~off:(c 0) ~len:(c 64) ();
         write ~notify:true ~seg:"flag" ~off:(c 0) ~len:(c 4) ();
       ]);
  check_rules "reply-trusting reissue" [ "static-cas-reissue" ]
    (prog [ retry ~attempts:2 ~verified:false [ cas "s" ~off:(c 0) ] ]);
  check_rules "single-shot unverified wrapper is fine" []
    (prog [ retry ~attempts:1 ~verified:false [ cas "s" ~off:(c 0) ] ]);
  check_rules "blind spin" [ "static-unbounded-retry" ]
    (prog [ retry [ cas "s" ~off:(c 0) ] ]);
  check_rules "spin with observation" []
    (prog
       [
         retry
           [
             read_word ~seg:"s" ~off:(c 0) ~var:"t" ~lo:0 ~hi:7;
             cas "s" ~off:(c 0);
           ];
       ]);
  check_rules "lock leak" [ "static-lock-leak" ]
    (prog [ cas ~role:P.Acquire "s" ~off:(c 0) ])

(* Read_word's declared range feeds the interval analysis — the
   frame_overrun shape in miniature. *)
let test_read_word_range () =
  let open P in
  check_rules "range product overruns" [ "static-bounds" ]
    (prog
       ~manifest:(one_seg ~len:8 ())
       [
         read_word ~seg:"s" ~off:(c 0) ~var:"off" ~lo:0 ~hi:4;
         read ~seg:"s" ~off:(v "off") ~len:(c 8);
       ]);
  check_rules "range in bounds" []
    (prog
       ~manifest:(one_seg ~len:8 ())
       [
         read_word ~seg:"s" ~off:(c 0) ~var:"off" ~lo:0 ~hi:4;
         read ~seg:"s" ~off:(v "off") ~len:(c 4);
       ])

(* ---------------- Catalog expectations ---------------- *)

let catalog_rules name =
  match Workload.Programs.scenario name with
  | Some p -> rules p
  | None -> Alcotest.failf "no declared program for %s" name

let test_catalog () =
  List.iter
    (fun name ->
      Alcotest.(check (list string)) name [] (catalog_rules name))
    [
      "kv_store";
      "producer_consumer";
      "file_service";
      "name_service";
      "racy";
      "torn_record";
    ];
  Alcotest.(check (list string)) "file_service_nofence"
    [ "static-unfenced-release" ]
    (catalog_rules "file_service_nofence");
  Alcotest.(check (list string)) "cas_missing_release" [ "static-lock-leak" ]
    (catalog_rules "cas_missing_release");
  Alcotest.(check (list string)) "cas_double_apply" [ "static-cas-reissue" ]
    (catalog_rules "cas_double_apply");
  Alcotest.(check (list string)) "frame_overrun" [ "static-bounds" ]
    (catalog_rules "frame_overrun")

(* Zero false positives on the campaign programs, through the
   Faults.Campaign extraction hook. *)
let test_campaigns_clean () =
  List.iter
    (fun name ->
      match Faults.Campaign.program name with
      | None -> Alcotest.failf "no declared program for campaign %s" name
      | Some p ->
          Alcotest.(check (list string)) name [] (rules p);
          Alcotest.(check string) (name ^ " batchable") "batchable"
            (Static.Pipesafe.verdict_to_string (Static.Pipesafe.classify p)))
    Faults.Campaign.workloads

(* ---------------- Pipelining classifier ---------------- *)

let test_pipesafe () =
  let open P in
  let verdict p = Static.Pipesafe.verdict_to_string (Static.Pipesafe.classify p) in
  Alcotest.(check string) "write/fence/read batchable" "batchable"
    (verdict
       (prog
          [
            write ~seg:"s" ~off:(c 0) ~len:(c 64) ();
            fence "s";
            read ~seg:"s" ~off:(c 0) ~len:(c 64);
          ]));
  Alcotest.(check string) "read of staged write ordered" "ordered"
    (verdict
       (prog
          [
            write ~seg:"s" ~off:(c 0) ~len:(c 64) ();
            read ~seg:"s" ~off:(c 0) ~len:(c 64);
          ]));
  Alcotest.(check string) "cas over staged writes ordered" "ordered"
    (verdict
       (prog
          [ write ~seg:"s" ~off:(c 0) ~len:(c 64) (); cas "s" ~off:(c 128) ]));
  (match
     Static.Pipesafe.classify
       (prog
          [
            write ~seg:"s" ~off:(c 0) ~len:(c 64) ();
            read ~seg:"s" ~off:(c 0) ~len:(c 64);
          ])
   with
  | Static.Pipesafe.Ordered [ reason ] ->
      Alcotest.(check string) "obligation names node and segment"
        "t: reads s while its own write to it is still staged" reason
  | _ -> Alcotest.fail "expected one ordering obligation");
  List.iter
    (fun (p : P.t) ->
      Alcotest.(check string) (p.name ^ " batchable") "batchable" (verdict p))
    Experiments.Pipeline_bench.access_programs

(* ---------------- Manifest extraction ---------------- *)

let test_manifest_of_segment () =
  let testbed = Cluster.Testbed.create ~nodes:2 () in
  let rmem1 = Rmem.Remote_memory.attach (Cluster.Testbed.node testbed 1) in
  let entry = ref None in
  Cluster.Testbed.run testbed (fun () ->
      let space =
        Cluster.Node.new_address_space (Cluster.Testbed.node testbed 1)
      in
      let segment =
        Rmem.Remote_memory.export rmem1 ~space ~base:0 ~len:4096
          ~rights:Rmem.Rights.read_only ~policy:Rmem.Segment.Never
          ~name:"live.seg" ()
      in
      entry :=
        Some
          (Rmem.Manifest.of_segment ~exporter:1
             ~grants:[ (0, Rmem.Rights.all) ]
             segment));
  match !entry with
  | None -> Alcotest.fail "no manifest entry extracted"
  | Some e ->
      Alcotest.(check string) "name" "live.seg" e.Rmem.Manifest.seg;
      Alcotest.(check int) "extent" 4096 e.Rmem.Manifest.len;
      Alcotest.(check int) "exporter" 1 e.Rmem.Manifest.exporter;
      let m = [ e ] in
      Alcotest.(check (option string)) "default rights"
        (Some "r--")
        (Option.map Rmem.Manifest.rights_to_string
           (Rmem.Manifest.rights_for m ~seg:"live.seg" ~importer:7));
      Alcotest.(check (option string)) "granted rights"
        (Some "rwc")
        (Option.map Rmem.Manifest.rights_to_string
           (Rmem.Manifest.rights_for m ~seg:"live.seg" ~importer:0))

(* ---------------- Monitor-leak lint (satellite) ---------------- *)

let test_monitor_leak () =
  let engine = Sim.Engine.create () in
  let monitor = Analysis.Monitor.create engine in
  let id = Cluster.Lrpc.add_monitor (fun _ -> ()) in
  let leaked_rules =
    List.map
      (fun (f : Analysis.Lint.finding) -> f.rule)
      (Analysis.Lint.check monitor)
  in
  Alcotest.(check (list string)) "leak flagged" [ "monitor-leak" ] leaked_rules;
  Cluster.Lrpc.remove_monitor id;
  Alcotest.(check (list string)) "clean after remove" []
    (List.map
       (fun (f : Analysis.Lint.finding) -> f.rule)
       (Analysis.Lint.check monitor));
  (* A workload that removes its registration (the test_obs composing
     pattern) stays clean end to end. *)
  let monitor2 = Analysis.Monitor.create engine in
  let id2 = Cluster.Lrpc.add_monitor (fun _ -> ()) in
  Fun.protect
    ~finally:(fun () -> Cluster.Lrpc.remove_monitor id2)
    (fun () -> ());
  Alcotest.(check int) "no residue" 0
    (Analysis.Monitor.leaked_lrpc_monitors monitor2)

let suite =
  [
    Alcotest.test_case "interval domain" `Quick test_interval;
    Alcotest.test_case "per-rule programs" `Quick test_rules;
    Alcotest.test_case "read_word ranges" `Quick test_read_word_range;
    Alcotest.test_case "catalog expectations" `Quick test_catalog;
    Alcotest.test_case "campaign programs clean" `Quick test_campaigns_clean;
    Alcotest.test_case "pipelining classifier" `Quick test_pipesafe;
    Alcotest.test_case "manifest extraction" `Quick test_manifest_of_segment;
    Alcotest.test_case "monitor leak lint" `Quick test_monitor_leak;
  ]

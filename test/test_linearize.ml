(* The linearizability checker: sequential register+CAS specification,
   real-time vs program-order precedence (linearizable vs SC mode),
   pending operations, witness minimality, the partitioner's
   edge-preservation contract, and the seeded double-apply shape. *)

module H = Analysis.History
module L = Analysis.Linearize

let check_bool = Alcotest.(check bool)

let key = { Analysis.Access.home = 0; seg = 0; gen = 1 }
let cell = { H.key; word = 0 }

let ev ?(agent = "a") ?(cell = cell) ?(logical = false) id op ~inv ~resp =
  {
    H.id;
    agent;
    cell;
    op;
    inv = Sim.Time.us inv;
    resp = Option.map Sim.Time.us resp;
    logical;
  }

let known v = H.Known (Int32.of_int v)

let is_violation = function L.Cell_violation _ -> true | _ -> false
let is_ok = function L.Cell_ok _ -> true | _ -> false

let check_cell ?mode evs = L.check_cell ?mode ~init:(known 0) evs

(* ---------------- the sequential specification ---------------- *)

let register_spec () =
  let w = ev 0 (H.Write (known 1)) ~inv:0 ~resp:(Some 1) in
  let r v = ev 1 ~agent:"b" (H.Read (known v)) ~inv:2 ~resp:(Some 3) in
  check_bool "write then read back" true (is_ok (check_cell [ w; r 1 ]));
  check_bool "read of a never-written value" true
    (is_violation (check_cell [ w; r 7 ]));
  check_bool "unknown read constrains nothing" true
    (is_ok (check_cell [ w; ev 1 ~agent:"b" (H.Read H.Unknown) ~inv:2 ~resp:(Some 3) ]));
  (* A failed CAS must witness the register value it observed; claiming
     failure while the state equals [expected] is inconsistent. *)
  let cas_ok =
    ev 0 (H.Cas { expected = 0l; desired = 1l; success = true; witness = known 0 })
      ~inv:0 ~resp:(Some 1)
  in
  let cas_fail w =
    ev 1 ~agent:"b"
      (H.Cas { expected = 0l; desired = 5l; success = false; witness = known w })
      ~inv:2 ~resp:(Some 3)
  in
  check_bool "cas fail with correct witness" true
    (is_ok (check_cell [ cas_ok; cas_fail 1 ]));
  check_bool "cas fail while state matches expected" true
    (is_violation (check_cell [ cas_ok; cas_fail 0 ]))

let pending_linearizes_anywhere () =
  (* A write whose reply never arrived precedes nothing, so a read of
     the old value can be ordered before it; the same write completed
     pins the real-time order and refutes the read. *)
  let r = ev 1 ~agent:"b" (H.Read (known 0)) ~inv:2 ~resp:(Some 3) in
  check_bool "pending write floats" true
    (is_ok (check_cell [ ev 0 (H.Write (known 1)) ~inv:0 ~resp:None; r ]));
  check_bool "completed write pins order" true
    (is_violation (check_cell [ ev 0 (H.Write (known 1)) ~inv:0 ~resp:(Some 1); r ]))

let sc_mode_drops_real_time () =
  let evs =
    [
      ev 0 (H.Write (known 1)) ~inv:0 ~resp:(Some 1);
      ev 1 ~agent:"b" (H.Read (known 0)) ~inv:2 ~resp:(Some 3);
    ]
  in
  check_bool "stale read violates linearizability" true
    (is_violation (check_cell ~mode:L.Linearizable evs));
  check_bool "stale read is sequentially consistent" true
    (is_ok (check_cell ~mode:L.Sequential evs));
  (* Program order binds in both modes. *)
  let po =
    [
      ev 0 (H.Write (known 1)) ~inv:0 ~resp:(Some 1);
      ev 1 (H.Read (known 0)) ~inv:2 ~resp:(Some 3);
    ]
  in
  check_bool "same-agent stale read violates SC too" true
    (is_violation (check_cell ~mode:L.Sequential po))

(* The client-facing shape of the seeded cas_double_apply bug: the
   wrapper reports one successful CAS(0->1), yet B's two operations
   prove memory absorbed it twice. *)
let double_apply_events () =
  [
    ev 0 ~agent:"a" ~logical:true
      (H.Cas { expected = 0l; desired = 1l; success = true; witness = known 0 })
      ~inv:0 ~resp:(Some 10);
    ev 1 ~agent:"b"
      (H.Cas { expected = 1l; desired = 0l; success = true; witness = known 1 })
      ~inv:2 ~resp:(Some 4);
    ev 2 ~agent:"b"
      (H.Cas { expected = 0l; desired = 5l; success = false; witness = known 1 })
      ~inv:5 ~resp:(Some 7);
  ]

let double_apply_shape () =
  let evs = double_apply_events () in
  check_bool "double apply is not linearizable" true
    (is_violation (check_cell evs))

let witness_is_one_minimal () =
  let evs = double_apply_events () in
  let w = L.minimize ~init:(known 0) evs in
  check_bool "witness still violates" true (is_violation (check_cell w));
  check_bool "witness nonempty" true (w <> []);
  List.iter
    (fun dropped ->
      let rest = List.filter (fun e -> e.H.id <> dropped.H.id) w in
      check_bool
        (Printf.sprintf "dropping event %d linearizes" dropped.H.id)
        true
        (not (is_violation (check_cell rest))))
    w

let budget_is_not_a_verdict () =
  let evs = double_apply_events () in
  match L.check_cell ~budget:1 ~init:(known 0) evs with
  | L.Cell_budget _ -> ()
  | L.Cell_ok _ -> Alcotest.fail "budget 1 cannot finish the search"
  | L.Cell_violation _ ->
      Alcotest.fail "budget exhaustion must not report a violation"

(* ---------------- generators ---------------- *)

(* (agent, op-code, invocation, value) tuples decode into one cell
   event each; values stay tiny so reads/CASes collide with writes. *)
let decode_op code v =
  match code mod 6 with
  | 0 -> H.Read (known v)
  | 1 -> H.Write (known v)
  | 2 ->
      H.Cas
        {
          expected = Int32.of_int v;
          desired = Int32.of_int ((v + 1) mod 5);
          success = true;
          witness = known v;
        }
  | 3 ->
      H.Cas
        {
          expected = Int32.of_int v;
          desired = Int32.of_int ((v + 2) mod 5);
          success = false;
          witness = known ((v + 1) mod 5);
        }
  | 4 -> H.Read H.Unknown
  | _ -> H.Write H.Unknown

let events_of_tuples tuples =
  List.mapi
    (fun i (agent, code, inv, v) ->
      ev i
        ~agent:(String.make 1 (Char.chr (Char.code 'a' + (agent mod 3))))
        (decode_op code v) ~inv
        ~resp:(if code mod 7 = 6 then None else Some (inv + 1 + (v mod 3))))
    tuples

let cell_history_gen =
  QCheck.(
    list_of_size Gen.(1 -- 8)
      (quad (int_bound 2) (int_bound 6) (int_bound 20) (int_bound 4)))

(* Any violating random history minimizes to a 1-minimal witness:
   still violating, and removing any single event linearizes it. *)
let qcheck_minimize_is_one_minimal =
  QCheck.Test.make ~name:"minimized witnesses are 1-minimal" ~count:300
    cell_history_gen
    (fun tuples ->
      let evs = events_of_tuples tuples in
      match check_cell evs with
      | L.Cell_ok _ | L.Cell_budget _ -> true
      | L.Cell_violation _ ->
          let w = L.minimize ~init:(known 0) evs in
          w <> []
          && is_violation (check_cell w)
          && List.for_all
               (fun dropped ->
                 not
                   (is_violation
                      (check_cell
                         (List.filter (fun e -> e.H.id <> dropped.H.id) w))))
               w)

(* Corrupting one event of a faithfully recorded sequential execution
   is always caught, and the witness shrinks to a handful of events. *)
let qcheck_corrupted_run_small_witness =
  QCheck.Test.make ~name:"single corruption yields a small witness" ~count:300
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 10) (pair (int_bound 2) (int_bound 5)))
        (int_bound 9))
    (fun (steps, corrupt) ->
      let state = ref 0l in
      let evs =
        List.mapi
          (fun i (agent, code) ->
            let v = Int32.of_int ((i + code) mod 4) in
            let op =
              match code mod 4 with
              | 0 -> H.Read (H.Known !state)
              | 1 ->
                  state := v;
                  H.Write (H.Known v)
              | 2 ->
                  let expected = !state in
                  state := v;
                  H.Cas { expected; desired = v; success = true; witness = H.Known expected }
              | _ ->
                  H.Cas
                    {
                      expected = Int32.add !state 1l;
                      desired = v;
                      success = false;
                      witness = H.Known !state;
                    }
            in
            ev i
              ~agent:(String.make 1 (Char.chr (Char.code 'a' + (agent mod 3))))
              op ~inv:(3 * i)
              ~resp:(Some ((3 * i) + 1)))
          steps
      in
      let n = List.length evs in
      let ci = corrupt mod n in
      let corrupted =
        List.mapi
          (fun i e -> if i = ci then { e with H.op = H.Read (known 99) } else e)
          evs
      in
      is_violation (check_cell corrupted)
      &&
      let w = L.minimize ~init:(known 0) corrupted in
      List.length w <= 6
      && is_violation (check_cell w)
      && List.for_all
           (fun dropped ->
             not
               (is_violation
                  (check_cell (List.filter (fun e -> e.H.id <> dropped.H.id) w))))
           w)

(* The partitioner: every event lands in exactly the group of its own
   cell, with capture order (and therefore every precedence edge, which
   is pointwise on event fields) preserved. *)
let qcheck_partition_preserves_order =
  QCheck.Test.make ~name:"partition preserves per-cell capture order"
    ~count:300
    QCheck.(
      list_of_size Gen.(0 -- 12)
        (quad (int_bound 1) (int_bound 1) (int_bound 2) (int_bound 6)))
    (fun tuples ->
      let evs =
        List.mapi
          (fun i (seg, word, agent, code) ->
            let cell = { H.key = { key with Analysis.Access.seg }; word = 4 * word } in
            ev i ~cell
              ~agent:(String.make 1 (Char.chr (Char.code 'a' + (agent mod 3))))
              (decode_op code (code mod 5))
              ~inv:i
              ~resp:(Some (i + 1 + code)))
          tuples
      in
      let groups = L.partition evs in
      let total = List.fold_left (fun n (_, g) -> n + List.length g) 0 groups in
      total = List.length evs
      && List.for_all
           (fun (cell, group) ->
             (* own-cell membership, and order = the original filtered
                by cell (ids strictly increasing in capture order) *)
             List.for_all (fun e -> e.H.cell = cell) group
             && List.map (fun e -> e.H.id) group
                = List.filter_map
                    (fun e -> if e.H.cell = cell then Some e.H.id else None)
                    evs)
           groups
      && List.length groups
         = List.length
             (List.sort_uniq compare (List.map (fun e -> e.H.cell) evs)))

let suite =
  [
    Alcotest.test_case "register+CAS specification" `Quick register_spec;
    Alcotest.test_case "pending operations float" `Quick
      pending_linearizes_anywhere;
    Alcotest.test_case "SC mode drops real-time edges" `Quick
      sc_mode_drops_real_time;
    Alcotest.test_case "double-apply shape rejected" `Quick double_apply_shape;
    Alcotest.test_case "witness is 1-minimal" `Quick witness_is_one_minimal;
    Alcotest.test_case "budget exhaustion is not a verdict" `Quick
      budget_is_not_a_verdict;
    QCheck_alcotest.to_alcotest qcheck_minimize_is_one_minimal;
    QCheck_alcotest.to_alcotest qcheck_corrupted_run_small_witness;
    QCheck_alcotest.to_alcotest qcheck_partition_preserves_order;
  ]

(* The distributed data-structure suite: probe/tag units, the RPC call
   plane, and the three structures in all three structurings —
   differentially against each other, under faults, and under the
   linearizability checker. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_i32 = Alcotest.(check int32)

(* ---------------- rig: n nodes with rmem + amsg planes ------------- *)

type rig = {
  testbed : Cluster.Testbed.t;
  nodes : Cluster.Node.t array;
  rmems : Rmem.Remote_memory.t array;
  amsgs : Amsg.t array;
}

let rig ?seed n =
  let testbed = Cluster.Testbed.create ?seed ~nodes:n () in
  let nodes = Array.init n (Cluster.Testbed.node testbed) in
  {
    testbed;
    nodes;
    rmems = Array.map Rmem.Remote_memory.attach nodes;
    amsgs = Array.map Amsg.attach nodes;
  }

let run r body = Cluster.Testbed.run r.testbed body

let policy () =
  Rmem.Recovery.policy ~attempts:12 ~timeout:(Sim.Time.us 400) ()

(* ---------------------------- Probe -------------------------------- *)

(* Drive the walk over an in-memory table: int array where 0 is free,
   -1 a tombstone, anything else a key. *)
let walk_table table ~hash key =
  Dds.Probe.walk ~slots:(Array.length table) ~hash
    ~classify:(fun ~index ~probe:_ ->
      match table.(index) with
      | 0 -> Dds.Probe.Free
      | -1 -> Dds.Probe.Tombstone (Some index)
      | k when k = key -> Dds.Probe.Hit
      | _ -> Dds.Probe.Other)

let probe_hit_and_probes () =
  (* hash 2, chain [2]=9 [3]=7: finding 7 takes one displacement. *)
  let table = [| 0; 0; 9; 7; 0; 0; 0; 0 |] in
  match walk_table table ~hash:2 7 with
  | Dds.Probe.Found { index; probes } ->
      check_int "index" 3 index;
      check_int "probes" 1 probes
  | Dds.Probe.Absent _ -> Alcotest.fail "expected Found"

let probe_absent_free () =
  let table = [| 0; 0; 9; 7; 0; 0; 0; 0 |] in
  match walk_table table ~hash:2 5 with
  | Dds.Probe.Absent { free = Some 4; reusable = None; probes = 2; _ } -> ()
  | _ -> Alcotest.fail "expected Absent at the chain-ending free slot"

let probe_tombstone_reuse_and_note () =
  (* First tombstone along the chain is remembered even when a later
     one appears; its note is carried out. *)
  let table = [| 0; 0; -1; 7; -1; 0; 0; 0 |] in
  match walk_table table ~hash:2 5 with
  | Dds.Probe.Absent { free = Some 5; reusable = Some 2; note = Some 2; _ } ->
      ()
  | _ -> Alcotest.fail "expected first tombstone as the reusable slot"

let probe_wraps_modulo () =
  let table = [| 7; 0; 0; 0; 0; 0; 9; 9 |] in
  match walk_table table ~hash:6 7 with
  | Dds.Probe.Found { index = 0; probes = 2 } -> ()
  | _ -> Alcotest.fail "expected wrap-around hit at slot 0"

let probe_full_table () =
  let table = Array.make 4 9 in
  match walk_table table ~hash:1 5 with
  | Dds.Probe.Absent { free = None; reusable = None; probes = 4; _ } -> ()
  | _ -> Alcotest.fail "expected exhausted walk"

(* ----------------------------- Tag --------------------------------- *)

let tag_gen =
  QCheck.map
    (fun (ts, wr) -> { Dds.Tag.ts; wr })
    QCheck.(pair (int_range 0 100_000) (int_range 0 (Dds.Tag.ranks - 1)))

let tag_roundtrip =
  QCheck.Test.make ~name:"tag pack/unpack roundtrip" ~count:300 tag_gen
    (fun tag -> Dds.Tag.unpack (Dds.Tag.pack tag) = tag)

let tag_order_preserved =
  QCheck.Test.make ~name:"tag packing preserves quorum order" ~count:300
    (QCheck.pair tag_gen tag_gen) (fun (a, b) ->
      Stdlib.compare (Dds.Tag.compare a b) 0
      = Stdlib.compare (Int32.compare (Dds.Tag.pack a) (Dds.Tag.pack b)) 0)

let tag_cell_roundtrip =
  QCheck.Test.make ~name:"tag cell encode/decode roundtrip" ~count:300
    (QCheck.pair tag_gen QCheck.int32) (fun (tag, v) ->
      Dds.Tag.decode (Dds.Tag.encode tag v) = Some (tag, v))

let tag_busy_cells_refused () =
  for wr = 0 to Dds.Tag.ranks - 1 do
    let w = Dds.Tag.busy_for wr in
    check_bool "is_busy" true (Dds.Tag.is_busy w);
    let b = Bytes.create 8 in
    Bytes.set_int32_le b 0 w;
    Bytes.set_int32_le b 4 42l;
    check_bool "decode refuses busy" true (Dds.Tag.decode b = None)
  done;
  check_i32 "generic busy is rank 0's" (Dds.Tag.busy_for 0) Dds.Tag.busy

(* ----------------------------- Call -------------------------------- *)

let call_round_trip () =
  let r = rig 2 in
  Dds.Call.serve r.amsgs.(0) ~id:0x50 (fun ~src:_ body ->
      Bytes.map (fun c -> Char.chr (Char.code c + 1)) body);
  run r (fun () ->
      let ep = Dds.Call.endpoint r.amsgs.(1) in
      let reply =
        Dds.Call.call ep
          ~dst:(Cluster.Node.addr r.nodes.(0))
          ~id:0x50 (Bytes.of_string "abc")
      in
      Alcotest.(check string) "service applied" "bcd" (Bytes.to_string reply))

let call_at_most_once_under_loss () =
  let r = rig ~seed:5 2 in
  let executions = ref 0 in
  Dds.Call.serve r.amsgs.(0) ~id:0x51 (fun ~src:_ body ->
      incr executions;
      body);
  let plan =
    Faults.Plan.make ~link:(Faults.Plan.link_faults ~loss:0.25 ()) ()
  in
  let plane = Faults.Plane.create ~plan ~seed:7 r.testbed in
  run r (fun () ->
      let ep = Dds.Call.endpoint r.amsgs.(1) in
      let dst = Cluster.Node.addr r.nodes.(0) in
      for i = 1 to 20 do
        let b = Bytes.create 4 in
        Bytes.set_int32_le b 0 (Int32.of_int i);
        let reply =
          Dds.Call.call ep ~timeout:(Sim.Time.us 300) ~attempts:40 ~dst
            ~id:0x51 b
        in
        check_i32 "echoed" (Int32.of_int i) (Bytes.get_int32_le reply 0)
      done;
      check_bool "losses actually forced retries" true
        (Dds.Call.timeouts ep > 0);
      check_int "each call executed exactly once" 20 !executions);
  Faults.Plane.uninstall plane

(* --------------------------- Hashtable ----------------------------- *)

let htab_basic kind () =
  let r = rig 3 in
  run r (fun () ->
      let s =
        Dds.Hashtable.server ~rmem:r.rmems.(0) ~amsg:r.amsgs.(0) ~slots:16 ()
      in
      let t =
        Dds.Hashtable.client ~rmem:r.rmems.(1) ~amsg:r.amsgs.(1) ~kind s
      in
      check_bool "absent before" true (Dds.Hashtable.lookup t 7l = None);
      Dds.Hashtable.insert t ~key:7l ~value:70l;
      Dds.Hashtable.insert t ~key:8l ~value:80l;
      check_bool "lookup 7" true (Dds.Hashtable.lookup t 7l = Some 70l);
      Dds.Hashtable.insert t ~key:7l ~value:71l;
      check_bool "overwrite" true (Dds.Hashtable.lookup t 7l = Some 71l);
      check_bool "delete present" true (Dds.Hashtable.delete t 7l);
      check_bool "delete absent" false (Dds.Hashtable.delete t 7l);
      check_bool "gone" true (Dds.Hashtable.lookup t 7l = None);
      check_bool "8 unaffected" true (Dds.Hashtable.lookup t 8l = Some 80l);
      Dds.Hashtable.flush t)

let htab_reserved_keys () =
  let r = rig 2 in
  run r (fun () ->
      let s =
        Dds.Hashtable.server ~rmem:r.rmems.(0) ~amsg:r.amsgs.(0) ~slots:8 ()
      in
      let t =
        Dds.Hashtable.client ~rmem:r.rmems.(1) ~amsg:r.amsgs.(1) ~kind:Dds.Kind.Dx
          s
      in
      Alcotest.check_raises "key 0" (Invalid_argument
        "Dds.Hashtable: keys 0 and -1 are reserved") (fun () ->
          ignore (Dds.Hashtable.lookup t 0l));
      Alcotest.check_raises "value 0"
        (Invalid_argument "Dds.Hashtable.insert: value 0 is reserved")
        (fun () -> Dds.Hashtable.insert t ~key:3l ~value:0l))

let htab_full kind () =
  let r = rig 2 in
  run r (fun () ->
      let s =
        Dds.Hashtable.server ~rmem:r.rmems.(0) ~amsg:r.amsgs.(0) ~slots:4 ()
      in
      let t =
        Dds.Hashtable.client ~rmem:r.rmems.(1) ~amsg:r.amsgs.(1) ~kind s
      in
      for k = 1 to 4 do
        Dds.Hashtable.insert t ~key:(Int32.of_int k) ~value:1l
      done;
      check_bool "full" true
        (match Dds.Hashtable.insert t ~key:5l ~value:1l with
        | () -> false
        | exception Dds.Hashtable.Full -> true);
      (* Deleting makes room again (tombstone reuse). *)
      ignore (Dds.Hashtable.delete t 2l);
      Dds.Hashtable.insert t ~key:5l ~value:5l;
      check_bool "reused" true (Dds.Hashtable.lookup t 5l = Some 5l))

let htab_tombstone_chain () =
  (* Delete a key in the middle of a collision chain: keys behind it
     must stay reachable for every structuring. *)
  let r = rig 2 in
  run r (fun () ->
      let slots = 8 in
      let s =
        Dds.Hashtable.server ~rmem:r.rmems.(0) ~amsg:r.amsgs.(0) ~slots ()
      in
      (* Find three keys sharing a home slot. *)
      let colliding = ref [] in
      let k = ref 1l in
      while List.length !colliding < 3 do
        if
          Dds.Hashtable.home_index ~slots !k
          = Dds.Hashtable.home_index ~slots 1l
        then colliding := !k :: !colliding;
        k := Int32.add !k 1l
      done;
      match !colliding with
      | [ a; b; c ] ->
          let t =
            Dds.Hashtable.client ~rmem:r.rmems.(1) ~amsg:r.amsgs.(1)
              ~kind:Dds.Kind.Dx s
          in
          Dds.Hashtable.insert t ~key:a ~value:10l;
          Dds.Hashtable.insert t ~key:b ~value:20l;
          Dds.Hashtable.insert t ~key:c ~value:30l;
          check_bool "middle deleted" true (Dds.Hashtable.delete t b);
          check_bool "chain intact" true (Dds.Hashtable.lookup t c = Some 30l);
          Dds.Hashtable.insert t ~key:b ~value:21l;
          check_bool "reinserted over tombstone" true
            (Dds.Hashtable.lookup t b = Some 21l)
      | _ -> assert false)

(* One scripted op sequence applied through a fresh instance per kind;
   final state must agree with the reference model key by key. *)
let htab_differential ?plan ?plan_seed ?policy:pol name () =
  let r = rig ~seed:3 4 in
  let plane =
    Option.map (fun plan -> Faults.Plane.create ~plan ~seed:(Option.value ~default:11 plan_seed) r.testbed) plan
  in
  let prng = Sim.Prng.create 99 in
  let script =
    List.init 400 (fun _ ->
        let key = Int32.of_int (1 + Sim.Prng.int prng 40) in
        match Sim.Prng.int prng 10 with
        | 0 | 1 -> `Delete key
        | 2 | 3 | 4 -> `Lookup key
        | _ -> `Insert (key, Int32.of_int (1 + Sim.Prng.int prng 1000)))
  in
  let model : (int32, int32) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (function
      | `Insert (k, v) -> Hashtbl.replace model k v
      | `Delete k -> Hashtbl.remove model k
      | `Lookup _ -> ())
    script;
  run r (fun () ->
      List.iteri
        (fun i kind ->
          let s =
            Dds.Hashtable.server ~rmem:r.rmems.(0) ~amsg:r.amsgs.(0)
              ~id:(0x60 + i) ~slots:64 ()
          in
          let t =
            Dds.Hashtable.client ~rmem:r.rmems.(1) ~amsg:r.amsgs.(1) ~kind
              ?policy:pol s
          in
          List.iter
            (function
              | `Insert (key, value) -> Dds.Hashtable.insert t ~key ~value
              | `Delete key -> ignore (Dds.Hashtable.delete t key)
              | `Lookup key -> ignore (Dds.Hashtable.lookup t key))
            script;
          Dds.Hashtable.flush t;
          for k = 1 to 40 do
            let key = Int32.of_int k in
            let expect = Hashtbl.find_opt model key in
            check_bool
              (Printf.sprintf "%s: %s key %d agrees" name
                 (Dds.Kind.to_string kind) k)
              true
              (Dds.Hashtable.lookup t key = expect)
          done)
        Dds.Kind.all);
  Option.iter Faults.Plane.uninstall plane

let htab_concurrent_disjoint () =
  let r = rig 4 in
  run r (fun () ->
      let s =
        Dds.Hashtable.server ~rmem:r.rmems.(0) ~amsg:r.amsgs.(0) ~slots:128 ()
      in
      let done_ = ref 0 in
      for c = 1 to 3 do
        Cluster.Node.spawn r.nodes.(c) (fun () ->
            let t =
              Dds.Hashtable.client ~rmem:r.rmems.(c) ~amsg:r.amsgs.(c)
                ~kind:(List.nth Dds.Kind.all (c - 1))
                s
            in
            for k = 0 to 19 do
              let key = Int32.of_int ((c * 100) + k) in
              Dds.Hashtable.insert t ~key ~value:(Int32.mul key 3l)
            done;
            Dds.Hashtable.flush t;
            incr done_)
      done;
      let rec join () =
        if !done_ < 3 then begin
          Sim.Proc.wait (Sim.Time.ms 1);
          join ()
        end
      in
      join ();
      (* Every key visible from a fourth handle of each kind. *)
      List.iter
        (fun kind ->
          let t =
            Dds.Hashtable.client ~rmem:r.rmems.(1) ~amsg:r.amsgs.(1) ~kind s
          in
          for c = 1 to 3 do
            for k = 0 to 19 do
              let key = Int32.of_int ((c * 100) + k) in
              check_bool "visible" true
                (Dds.Hashtable.lookup t key = Some (Int32.mul key 3l))
            done
          done)
        Dds.Kind.all)

(* ----------------------------- Queue ------------------------------- *)

let queue_basic kind () =
  let r = rig 3 in
  run r (fun () ->
      let s =
        Dds.Queue.server ~rmem:r.rmems.(0) ~amsg:r.amsgs.(0) ~capacity:32 ()
      in
      let t = Dds.Queue.client ~rmem:r.rmems.(1) ~amsg:r.amsgs.(1) ~kind s in
      check_bool "empty" true (Dds.Queue.try_dequeue t = None);
      let tickets = List.map (fun v -> Dds.Queue.enqueue t (Int32.of_int v)) [ 1; 2; 3 ] in
      check_bool "tickets are sequential" true (tickets = [ 0; 1; 2 ]);
      Dds.Queue.flush t;
      check_bool "fifo" true
        (List.map (fun _ -> Dds.Queue.dequeue t) [ (); (); () ]
        = [ 1l; 2l; 3l ]);
      check_bool "drained" true (Dds.Queue.try_dequeue t = None))

let queue_full kind () =
  let r = rig 2 in
  run r (fun () ->
      let s =
        Dds.Queue.server ~rmem:r.rmems.(0) ~amsg:r.amsgs.(0) ~capacity:2 ()
      in
      let t = Dds.Queue.client ~rmem:r.rmems.(1) ~amsg:r.amsgs.(1) ~kind s in
      ignore (Dds.Queue.enqueue t 1l);
      ignore (Dds.Queue.enqueue t 2l);
      check_bool "full" true
        (match Dds.Queue.enqueue t 3l with
        | (_ : int) -> false
        | exception Dds.Queue.Full -> true))

let queue_mpmc () =
  (* Three DX producers, two RPC consumers on one queue: every element
     dequeued exactly once, per-producer order preserved. *)
  let r = rig 6 in
  let consumed = ref [] in
  run r (fun () ->
      let s =
        Dds.Queue.server ~rmem:r.rmems.(0) ~amsg:r.amsgs.(0) ~capacity:128 ()
      in
      let per_producer = 20 in
      let produced = ref 0 in
      for p = 1 to 3 do
        Cluster.Node.spawn r.nodes.(p) (fun () ->
            let t =
              Dds.Queue.client ~rmem:r.rmems.(p) ~amsg:r.amsgs.(p)
                ~kind:Dds.Kind.Dx s
            in
            for i = 0 to per_producer - 1 do
              ignore (Dds.Queue.enqueue t (Int32.of_int ((p * 1000) + i)))
            done;
            Dds.Queue.flush t;
            incr produced)
      done;
      let total = 3 * per_producer in
      for c = 4 to 5 do
        Cluster.Node.spawn r.nodes.(c) (fun () ->
            let t =
              Dds.Queue.client ~rmem:r.rmems.(c) ~amsg:r.amsgs.(c)
                ~kind:Dds.Kind.Rpc s
            in
            let rec drain () =
              if List.length !consumed < total then begin
                (match Dds.Queue.try_dequeue t with
                | Some v -> consumed := v :: !consumed
                | None -> Sim.Proc.wait (Sim.Time.us 50));
                drain ()
              end
            in
            drain ())
      done;
      let rec join () =
        if List.length !consumed < total then begin
          Sim.Proc.wait (Sim.Time.ms 1);
          join ()
        end
      in
      join ());
  let consumed = List.rev !consumed in
  check_int "all consumed" 60 (List.length consumed);
  check_bool "no duplicates" true
    (List.sort_uniq compare consumed |> List.length = 60);
  (* Per-producer FIFO: the subsequence from each producer ascends. *)
  List.iter
    (fun p ->
      let mine =
        List.filter (fun v -> Int32.to_int v / 1000 = p) consumed
      in
      check_bool "producer order" true (List.sort compare mine = mine))
    [ 1; 2; 3 ]

let queue_differential_under_jitter () =
  let r = rig ~seed:3 3 in
  let plan =
    Faults.Plan.make
      ~link:(Faults.Plan.link_faults ~jitter:0.4 ~jitter_max:(Sim.Time.us 80) ())
      ()
  in
  let plane = Faults.Plane.create ~plan ~seed:17 r.testbed in
  run r (fun () ->
      List.iteri
        (fun i kind ->
          let s =
            Dds.Queue.server ~rmem:r.rmems.(0) ~amsg:r.amsgs.(0) ~id:(0x70 + i)
              ~capacity:64 ()
          in
          let t =
            Dds.Queue.client ~rmem:r.rmems.(1) ~amsg:r.amsgs.(1) ~kind s
          in
          for i = 1 to 30 do
            ignore (Dds.Queue.enqueue t (Int32.of_int i))
          done;
          Dds.Queue.flush t;
          for i = 1 to 30 do
            check_i32
              (Printf.sprintf "%s pos %d" (Dds.Kind.to_string kind) i)
              (Int32.of_int i) (Dds.Queue.dequeue t)
          done)
        Dds.Kind.all);
  Faults.Plane.uninstall plane

let queue_dx_producer_under_loss () =
  (* Lossy links: DX producer under a recovery policy, RPC consumer
     (whose claim is at-most-once by the call plane's dedup). *)
  let r = rig ~seed:8 3 in
  let plan =
    Faults.Plan.make ~link:(Faults.Plan.link_faults ~loss:0.15 ()) ()
  in
  let plane = Faults.Plane.create ~plan ~seed:23 r.testbed in
  run r (fun () ->
      let s =
        Dds.Queue.server ~rmem:r.rmems.(0) ~amsg:r.amsgs.(0) ~capacity:64 ()
      in
      let producer =
        Dds.Queue.client ~rmem:r.rmems.(1) ~amsg:r.amsgs.(1)
          ~kind:Dds.Kind.Dx ~policy:(policy ()) s
      in
      for i = 1 to 20 do
        ignore (Dds.Queue.enqueue producer (Int32.of_int i))
      done;
      Dds.Queue.flush producer;
      let consumer =
        Dds.Queue.client ~rmem:r.rmems.(2) ~amsg:r.amsgs.(2)
          ~kind:Dds.Kind.Rpc s
      in
      for i = 1 to 20 do
        check_i32 "order preserved" (Int32.of_int i)
          (Dds.Queue.dequeue consumer)
      done);
  Faults.Plane.uninstall plane

let hybrid_contention_falls_back () =
  (* Four hybrid clients hammering one tail word: the CAS storms must
     push at least one operation onto the RPC slow path. *)
  let r = rig ~seed:2 5 in
  let fallbacks = ref 0 in
  run r (fun () ->
      let s =
        Dds.Queue.server ~rmem:r.rmems.(0) ~amsg:r.amsgs.(0) ~capacity:512 ()
      in
      let done_ = ref 0 in
      for c = 1 to 4 do
        Cluster.Node.spawn r.nodes.(c) (fun () ->
            let t =
              Dds.Queue.client ~rmem:r.rmems.(c) ~amsg:r.amsgs.(c)
                ~kind:Dds.Kind.Hybrid s
            in
            for i = 0 to 63 do
              ignore (Dds.Queue.enqueue t (Int32.of_int ((c * 1000) + i)))
            done;
            fallbacks := !fallbacks + Dds.Queue.rpc_fallbacks t;
            incr done_)
      done;
      let rec join () =
        if !done_ < 4 then begin
          Sim.Proc.wait (Sim.Time.ms 1);
          join ()
        end
      in
      join ());
  check_bool "contention reached the slow path" true (!fallbacks > 0)

(* ---------------------------- Register ----------------------------- *)

let reg_rig ?seed () =
  let r = rig ?seed 6 in
  (r, fun () ->
    Array.init 3 (fun k ->
        Dds.Register.replica ~rmem:r.rmems.(k) ~amsg:r.amsgs.(k) ()))

let reg_basic kind () =
  let r, mk = reg_rig () in
  run r (fun () ->
      let reps = mk () in
      let t =
        Dds.Register.client ~rmem:r.rmems.(3) ~amsg:r.amsgs.(3) ~kind ~rank:1
          reps
      in
      check_i32 "initial" 0l (Dds.Register.read t);
      ignore (Dds.Register.write t 42l);
      check_i32 "read back" 42l (Dds.Register.read t);
      ignore (Dds.Register.write t 43l);
      check_i32 "second write" 43l (Dds.Register.read t))

let reg_two_writers_tags () =
  let r, mk = reg_rig () in
  run r (fun () ->
      let reps = mk () in
      let a =
        Dds.Register.client ~rmem:r.rmems.(3) ~amsg:r.amsgs.(3)
          ~kind:Dds.Kind.Dx ~rank:1 reps
      in
      let b =
        Dds.Register.client ~rmem:r.rmems.(4) ~amsg:r.amsgs.(4)
          ~kind:Dds.Kind.Rpc ~rank:2 reps
      in
      let ta = Dds.Register.write a 10l in
      let tb = Dds.Register.write b 20l in
      check_bool "second write has the higher tag" true
        (Dds.Tag.compare tb ta > 0);
      check_i32 "both handles converge" 20l (Dds.Register.read a))

let reg_monotonic_reads () =
  (* A writer streams ascending values while a DX reader reads
     concurrently: the reader's sequence must never go backwards. *)
  let r, mk = reg_rig ~seed:6 () in
  let seen = ref [] in
  run r (fun () ->
      let reps = mk () in
      let writer_done = ref false in
      Cluster.Node.spawn r.nodes.(3) (fun () ->
          let w =
            Dds.Register.client ~rmem:r.rmems.(3) ~amsg:r.amsgs.(3)
              ~kind:Dds.Kind.Dx ~rank:1 reps
          in
          for v = 1 to 15 do
            ignore (Dds.Register.write w (Int32.of_int v))
          done;
          writer_done := true);
      Cluster.Node.spawn r.nodes.(4) (fun () ->
          let rd =
            Dds.Register.client ~rmem:r.rmems.(4) ~amsg:r.amsgs.(4)
              ~kind:Dds.Kind.Dx ~rank:2 reps
          in
          let rec loop () =
            seen := Dds.Register.read rd :: !seen;
            if not !writer_done then begin
              Sim.Proc.wait (Sim.Time.us 20);
              loop ()
            end
          in
          loop ());
      let rec join () =
        if not !writer_done then begin
          Sim.Proc.wait (Sim.Time.ms 1);
          join ()
        end
      in
      join ());
  let seq = List.rev !seen in
  check_bool "read something" true (List.length seq > 2);
  check_bool "monotone" true (List.sort compare seq = seq)

let reg_read_repairs_stale_replica () =
  let r, mk = reg_rig () in
  run r (fun () ->
      let reps = mk () in
      (* Hand-craft divergence: replica 0 holds (ts 5, rank 1) = 50,
         replicas 1 and 2 an older (ts 2, rank 1) = 20. *)
      let put k ts v =
        let space = Dds.Register.replica_space reps.(k) in
        Cluster.Address_space.write_word space ~addr:4 v;
        Cluster.Address_space.write_word space ~addr:0
          (Dds.Tag.pack { Dds.Tag.ts; wr = 1 })
      in
      put 0 5 50l;
      put 1 2 20l;
      put 2 2 20l;
      let t =
        Dds.Register.client ~rmem:r.rmems.(3) ~amsg:r.amsgs.(3)
          ~kind:Dds.Kind.Dx ~rank:2 reps
      in
      check_i32 "adopts highest" 50l (Dds.Register.read t);
      (* The write-back phase must have repaired the stale majority. *)
      Sim.Proc.wait (Sim.Time.ms 1);
      Array.iter
        (fun rep ->
          let space = Dds.Register.replica_space rep in
          check_i32 "repaired value" 50l
            (Cluster.Address_space.read_word space ~addr:4))
        reps)

let reg_no_write_back_leaves_stale () =
  let r, mk = reg_rig () in
  run r (fun () ->
      let reps = mk () in
      let put k ts v =
        let space = Dds.Register.replica_space reps.(k) in
        Cluster.Address_space.write_word space ~addr:4 v;
        Cluster.Address_space.write_word space ~addr:0
          (Dds.Tag.pack { Dds.Tag.ts; wr = 1 })
      in
      put 0 5 50l;
      put 1 2 20l;
      put 2 2 20l;
      let t =
        Dds.Register.client ~rmem:r.rmems.(3) ~amsg:r.amsgs.(3)
          ~kind:Dds.Kind.Dx ~rank:2 ~write_back:false reps
      in
      check_i32 "still adopts highest" 50l (Dds.Register.read t);
      Sim.Proc.wait (Sim.Time.ms 1);
      (* The broken variant leaves the stale majority in place: the
         new/old-inversion raw material the model checker exploits. *)
      check_i32 "replica 1 untouched" 20l
        (Cluster.Address_space.read_word
           (Dds.Register.replica_space reps.(1))
           ~addr:4))

let reg_dx_under_loss () =
  let r, mk = reg_rig ~seed:4 () in
  let plan =
    Faults.Plan.make ~link:(Faults.Plan.link_faults ~loss:0.12 ()) ()
  in
  let plane = Faults.Plane.create ~plan ~seed:31 r.testbed in
  run r (fun () ->
      let reps = mk () in
      let t =
        Dds.Register.client ~rmem:r.rmems.(3) ~amsg:r.amsgs.(3)
          ~kind:Dds.Kind.Dx ~rank:1 ~policy:(policy ()) reps
      in
      for v = 1 to 8 do
        ignore (Dds.Register.write t (Int32.of_int v));
        check_i32 "read-your-write" (Int32.of_int v) (Dds.Register.read t)
      done);
  Faults.Plane.uninstall plane

let reg_differential () =
  let r = rig ~seed:3 9 in
  run r (fun () ->
      let results =
        List.map
          (fun (kind, base, id) ->
            let reps =
              Array.init 3 (fun k ->
                  Dds.Register.replica ~rmem:r.rmems.(base + k)
                    ~amsg:r.amsgs.(base + k) ~id ())
            in
            let t =
              Dds.Register.client ~rmem:r.rmems.(8) ~amsg:r.amsgs.(8) ~kind
                ~rank:1 reps
            in
            List.map
              (fun v ->
                ignore (Dds.Register.write t v);
                Dds.Register.read t)
              [ 5l; 9l; 13l ])
          [
            (Dds.Kind.Dx, 0, 0x80);
            (Dds.Kind.Rpc, 3, 0x81);
            (Dds.Kind.Hybrid, 0, 0x82);
          ]
      in
      match results with
      | [ dx; rpc; hybrid ] ->
          check_bool "dx = rpc" true (dx = rpc);
          check_bool "dx = hybrid" true (dx = hybrid);
          check_bool "values" true (dx = [ 5l; 9l; 13l ])
      | _ -> assert false)

(* ------------------- linearizability (logical) --------------------- *)

let analysis_rig n =
  let testbed = Cluster.Testbed.create ~nodes:n () in
  let nodes = Array.init n (Cluster.Testbed.node testbed) in
  let rmems = Array.map Rmem.Remote_memory.attach nodes in
  let monitor = Analysis.Monitor.create (Cluster.Testbed.engine testbed) in
  Array.iter (Analysis.Monitor.attach_rmem monitor) rmems;
  let amsgs = Array.map Amsg.attach nodes in
  ({ testbed; nodes; rmems; amsgs }, monitor)

let assert_linearizable name monitor =
  match Analysis.Linearize.check (Analysis.Monitor.history monitor) with
  | Analysis.Linearize.Pass stats ->
      check_bool (name ^ " checked real events") true (stats.events > 0)
  | Analysis.Linearize.Fail _ as v ->
      Alcotest.fail (name ^ ": " ^ Analysis.Linearize.describe v)

let lin_hashtable () =
  let r, monitor = analysis_rig 4 in
  let hook = Analysis.Monitor.dds_hook monitor in
  run r (fun () ->
      let s =
        Dds.Hashtable.server ~rmem:r.rmems.(0) ~amsg:r.amsgs.(0) ~slots:64 ()
      in
      let done_ = ref 0 in
      for c = 1 to 3 do
        Cluster.Node.spawn r.nodes.(c) (fun () ->
            let t =
              Dds.Hashtable.client ~rmem:r.rmems.(c) ~amsg:r.amsgs.(c)
                ~kind:(List.nth Dds.Kind.all (c - 1))
                ~hook s
            in
            (* Everyone hammers key 9 and a private key. *)
            for i = 1 to 5 do
              Dds.Hashtable.insert t ~key:9l
                ~value:(Int32.of_int ((c * 10) + i));
              ignore (Dds.Hashtable.lookup t 9l);
              Dds.Hashtable.insert t ~key:(Int32.of_int (100 + c))
                ~value:(Int32.of_int i)
            done;
            incr done_)
      done;
      let rec join () =
        if !done_ < 3 then begin
          Sim.Proc.wait (Sim.Time.ms 1);
          join ()
        end
      in
      join ());
  assert_linearizable "hashtable" monitor

let lin_queue () =
  let r, monitor = analysis_rig 4 in
  let hook = Analysis.Monitor.dds_hook monitor in
  run r (fun () ->
      let s =
        Dds.Queue.server ~rmem:r.rmems.(0) ~amsg:r.amsgs.(0) ~capacity:64 ()
      in
      let consumed = ref 0 in
      for p = 1 to 2 do
        Cluster.Node.spawn r.nodes.(p) (fun () ->
            let t =
              Dds.Queue.client ~rmem:r.rmems.(p) ~amsg:r.amsgs.(p)
                ~kind:(if p = 1 then Dds.Kind.Dx else Dds.Kind.Rpc)
                ~hook s
            in
            for i = 0 to 9 do
              ignore (Dds.Queue.enqueue t (Int32.of_int ((p * 100) + i)))
            done;
            Dds.Queue.flush t)
      done;
      Cluster.Node.spawn r.nodes.(3) (fun () ->
          let t =
            Dds.Queue.client ~rmem:r.rmems.(3) ~amsg:r.amsgs.(3)
              ~kind:Dds.Kind.Hybrid ~hook s
          in
          for _ = 1 to 20 do
            ignore (Dds.Queue.dequeue t);
            incr consumed
          done);
      let rec join () =
        if !consumed < 20 then begin
          Sim.Proc.wait (Sim.Time.ms 1);
          join ()
        end
      in
      join ());
  assert_linearizable "queue" monitor

let lin_register () =
  let r, monitor = analysis_rig 6 in
  let hook = Analysis.Monitor.dds_hook monitor in
  run r (fun () ->
      let reps =
        Array.init 3 (fun k ->
            Dds.Register.replica ~rmem:r.rmems.(k) ~amsg:r.amsgs.(k) ())
      in
      let done_ = ref 0 in
      List.iteri
        (fun i (c, kind) ->
          Cluster.Node.spawn r.nodes.(c) (fun () ->
              let t =
                Dds.Register.client ~rmem:r.rmems.(c) ~amsg:r.amsgs.(c) ~kind
                  ~rank:(i + 1) ~hook reps
              in
              for v = 1 to 4 do
                ignore (Dds.Register.write t (Int32.of_int ((c * 10) + v)));
                ignore (Dds.Register.read t)
              done;
              incr done_))
        [ (3, Dds.Kind.Dx); (4, Dds.Kind.Rpc); (5, Dds.Kind.Hybrid) ];
      let rec join () =
        if !done_ < 3 then begin
          Sim.Proc.wait (Sim.Time.ms 1);
          join ()
        end
      in
      join ());
  assert_linearizable "register" monitor

(* ------------------------- seeded scenario ------------------------- *)

let seeded_register_fifo_clean () =
  (* The broken register (no write-back) must pass a default FIFO run —
     only the model checker's exploration exposes it. *)
  let monitor = Analysis.Scenarios.run "dds_register_no_writeback" in
  check_int "no races under FIFO" 0
    (List.length (Analysis.Race.find monitor));
  check_int "no findings under FIFO" 0
    (List.length (Analysis.Lint.check monitor))

let suite =
  [
    Alcotest.test_case "probe: hit reports index and probes" `Quick
      probe_hit_and_probes;
    Alcotest.test_case "probe: absent stops at free slot" `Quick
      probe_absent_free;
    Alcotest.test_case "probe: first tombstone reused, note carried" `Quick
      probe_tombstone_reuse_and_note;
    Alcotest.test_case "probe: walk wraps modulo slots" `Quick
      probe_wraps_modulo;
    Alcotest.test_case "probe: full table exhausts" `Quick probe_full_table;
    QCheck_alcotest.to_alcotest tag_roundtrip;
    QCheck_alcotest.to_alcotest tag_order_preserved;
    QCheck_alcotest.to_alcotest tag_cell_roundtrip;
    Alcotest.test_case "tag: busy sentinels rejected by decode" `Quick
      tag_busy_cells_refused;
    Alcotest.test_case "call: round trip" `Quick call_round_trip;
    Alcotest.test_case "call: at-most-once under loss" `Quick
      call_at_most_once_under_loss;
    Alcotest.test_case "hashtable: basic ops (dx)" `Quick
      (htab_basic Dds.Kind.Dx);
    Alcotest.test_case "hashtable: basic ops (rpc)" `Quick
      (htab_basic Dds.Kind.Rpc);
    Alcotest.test_case "hashtable: basic ops (hybrid)" `Quick
      (htab_basic Dds.Kind.Hybrid);
    Alcotest.test_case "hashtable: reserved keys refused" `Quick
      htab_reserved_keys;
    Alcotest.test_case "hashtable: full raises, tombstones reopen (dx)"
      `Quick (htab_full Dds.Kind.Dx);
    Alcotest.test_case "hashtable: full raises, tombstones reopen (rpc)"
      `Quick (htab_full Dds.Kind.Rpc);
    Alcotest.test_case "hashtable: tombstone keeps chains intact" `Quick
      htab_tombstone_chain;
    Alcotest.test_case "hashtable: differential, fault-free" `Quick
      (htab_differential "fault-free");
    Alcotest.test_case "hashtable: differential under jitter" `Quick
      (htab_differential "jitter"
         ~plan:
           (Faults.Plan.make
              ~link:
                (Faults.Plan.link_faults ~jitter:0.4
                   ~jitter_max:(Sim.Time.us 60) ())
              ()));
    Alcotest.test_case "hashtable: differential under loss" `Quick
      (htab_differential "loss"
         ~plan:(Faults.Plan.make ~link:(Faults.Plan.link_faults ~loss:0.1 ()) ())
         ~plan_seed:13 ~policy:(policy ()));
    Alcotest.test_case "hashtable: concurrent clients, one per kind" `Quick
      htab_concurrent_disjoint;
    Alcotest.test_case "queue: fifo per kind (dx)" `Quick
      (queue_basic Dds.Kind.Dx);
    Alcotest.test_case "queue: fifo per kind (rpc)" `Quick
      (queue_basic Dds.Kind.Rpc);
    Alcotest.test_case "queue: fifo per kind (hybrid)" `Quick
      (queue_basic Dds.Kind.Hybrid);
    Alcotest.test_case "queue: capacity exhausts (dx)" `Quick
      (queue_full Dds.Kind.Dx);
    Alcotest.test_case "queue: capacity exhausts (rpc)" `Quick
      (queue_full Dds.Kind.Rpc);
    Alcotest.test_case "queue: mpmc exactly-once, producer order" `Quick
      queue_mpmc;
    Alcotest.test_case "queue: differential under jitter" `Quick
      queue_differential_under_jitter;
    Alcotest.test_case "queue: dx producer under loss" `Quick
      queue_dx_producer_under_loss;
    Alcotest.test_case "hybrid: contention falls back to rpc" `Quick
      hybrid_contention_falls_back;
    Alcotest.test_case "register: basic (dx)" `Quick (reg_basic Dds.Kind.Dx);
    Alcotest.test_case "register: basic (rpc)" `Quick (reg_basic Dds.Kind.Rpc);
    Alcotest.test_case "register: basic (hybrid)" `Quick
      (reg_basic Dds.Kind.Hybrid);
    Alcotest.test_case "register: writers order by tag" `Quick
      reg_two_writers_tags;
    Alcotest.test_case "register: reads never regress" `Quick
      reg_monotonic_reads;
    Alcotest.test_case "register: read repairs stale replicas" `Quick
      reg_read_repairs_stale_replica;
    Alcotest.test_case "register: write_back:false leaves them stale" `Quick
      reg_no_write_back_leaves_stale;
    Alcotest.test_case "register: dx under loss with policy" `Quick
      reg_dx_under_loss;
    Alcotest.test_case "register: differential across kinds" `Quick
      reg_differential;
    Alcotest.test_case "linearizable: hashtable, mixed kinds" `Quick
      lin_hashtable;
    Alcotest.test_case "linearizable: queue, mixed kinds" `Quick lin_queue;
    Alcotest.test_case "linearizable: register, mixed kinds" `Quick
      lin_register;
    Alcotest.test_case "seeded register bug is FIFO-clean" `Quick
      seeded_register_fifo_clean;
  ]

let () =
  Alcotest.run "rnet"
    [
      ("sim", Test_sim.suite);
      ("metrics", Test_metrics.suite);
      ("atm", Test_atm.suite);
      ("cluster", Test_cluster.suite);
      ("rmem", Test_rmem.suite);
      ("extensions", Test_extensions.suite);
      ("rpc", Test_rpc.suite);
      ("names", Test_names.suite);
      ("dfs", Test_dfs.suite);
      ("workload", Test_workload.suite);
      ("svm", Test_svm.suite);
      ("replica", Test_replica.suite);
      ("amsg", Test_amsg.suite);
      ("edges", Test_edges.suite);
      ("stress", Test_stress.suite);
      ("experiments", Test_experiments.suite);
      ("analysis", Test_analysis.suite);
      ("static", Test_static.suite);
      ("explore", Test_explore.suite);
      ("linearize", Test_linearize.suite);
      ("obs", Test_obs.suite);
      ("faults", Test_faults.suite);
      ("pipeline", Test_pipeline.suite);
      ("shard", Test_shard.suite);
      ("dds", Test_dds.suite);
    ]

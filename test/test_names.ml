(* Tests for the distributed segment name service. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------------- Records ---------------- *)

let record_gen =
  QCheck.Gen.(
    map
      (fun (name, node, seg, gen, size) ->
        Names.Record.make ~name ~node ~segment_id:seg
          ~generation:(Rmem.Generation.of_int gen)
          ~size:(size + 1) ~rights:Rmem.Rights.all)
      (tup5
         (map
            (fun s -> if s = "" then "x" else s)
            (string_size ~gen:(char_range 'a' 'z') (1 -- 32)))
         (0 -- 100) (0 -- 255) (1 -- 0xFFFF) (0 -- 100000)))

let record_roundtrip =
  QCheck.Test.make ~name:"record encode/decode roundtrip" ~count:300
    (QCheck.make record_gen) (fun record ->
      match Names.Record.decode (Names.Record.encode record) with
      | Some back -> back = record
      | None -> false)

let record_invalid_slot () =
  Alcotest.(check bool) "invalid decodes to None" true
    (Names.Record.decode (Names.Record.invalid_slot ()) = None)

let record_validation () =
  check_bool "long name rejected" true
    (try
       ignore
         (Names.Record.make ~name:(String.make 40 'a') ~node:0 ~segment_id:0
            ~generation:Rmem.Generation.initial ~size:1 ~rights:Rmem.Rights.all);
       false
     with Invalid_argument _ -> true)

(* ---------------- Registry ---------------- *)

let registry () =
  let space = Cluster.Address_space.create ~asid:9 () in
  Names.Registry.create ~space ~base:0 ~slots:64

let sample_record ?(name = "alpha") ?(gen = 1) () =
  Names.Record.make ~name ~node:1 ~segment_id:4
    ~generation:(Rmem.Generation.of_int gen) ~size:4096 ~rights:Rmem.Rights.all

let registry_insert_lookup_delete () =
  let r = registry () in
  check_bool "miss" true (Names.Registry.lookup r "alpha" = None);
  (match Names.Registry.insert r (sample_record ()) with
  | Ok _ -> ()
  | Error `Full -> Alcotest.fail "not full");
  (match Names.Registry.lookup r "alpha" with
  | Some (record, probes) ->
      Alcotest.(check string) "name" "alpha" record.Names.Record.name;
      check_int "direct hit" 0 probes
  | None -> Alcotest.fail "expected hit");
  check_int "live" 1 (Names.Registry.live r);
  check_bool "deleted" true (Names.Registry.delete r "alpha");
  check_bool "gone" true (Names.Registry.lookup r "alpha" = None);
  check_bool "double delete" false (Names.Registry.delete r "alpha")

let registry_overwrite_same_name () =
  let r = registry () in
  ignore (Names.Registry.insert r (sample_record ~gen:1 ()));
  ignore (Names.Registry.insert r (sample_record ~gen:2 ()));
  check_int "still one live entry" 1 (Names.Registry.live r);
  match Names.Registry.lookup r "alpha" with
  | Some (record, _) ->
      check_int "newest generation" 2
        (Rmem.Generation.to_int record.Names.Record.generation)
  | None -> Alcotest.fail "expected hit"

let registry_collisions_probe =
  QCheck.Test.make ~name:"registry finds all inserted names" ~count:60
    QCheck.(
      list_of_size
        Gen.(1 -- 40)
        (make Gen.(string_size ~gen:(char_range 'a' 'z') (1 -- 12))))
    (fun names ->
      let names = List.sort_uniq compare names in
      let r = registry () in
      List.iter
        (fun name ->
          match Names.Registry.insert r (sample_record ~name ()) with
          | Ok _ -> ()
          | Error `Full -> ())
        names;
      List.for_all
        (fun name ->
          match Names.Registry.lookup r name with
          | Some (record, _) -> String.equal record.Names.Record.name name
          | None -> false)
        names)

let registry_full () =
  let space = Cluster.Address_space.create ~asid:9 () in
  let r = Names.Registry.create ~space ~base:0 ~slots:4 in
  for i = 0 to 3 do
    match Names.Registry.insert r (sample_record ~name:(Printf.sprintf "n%d" i) ()) with
    | Ok _ -> ()
    | Error `Full -> Alcotest.fail "premature full"
  done;
  check_bool "full" true
    (Names.Registry.insert r (sample_record ~name:"overflow" ()) = Error `Full)

(* ---------------- Clerk end-to-end ---------------- *)

let export_import_roundtrip () =
  let rig = Rig.named_duo () in
  Rig.run rig.Rig.d (fun () ->
      let space = Cluster.Node.new_address_space rig.Rig.d.Rig.node1 in
      let (_ : Rmem.Segment.t) =
        Names.Api.export rig.Rig.clerk1 ~space ~base:0 ~len:8192
          ~rights:Rmem.Rights.all ~name:"svc" ()
      in
      let desc =
        Names.Api.import
          ~hint:(Cluster.Node.addr rig.Rig.d.Rig.node1)
          rig.Rig.clerk0 "svc"
      in
      check_int "size from record" 8192 (Rmem.Descriptor.size desc);
      (* The descriptor actually works. *)
      Cluster.Address_space.write space ~addr:0 (Bytes.of_string "hi");
      let buf = Rig.buffer0 rig.Rig.d in
      Rmem.Remote_memory.read_wait rig.Rig.d.Rig.rmem0 desc ~soff:0 ~count:2
        ~dst:buf ~doff:0 ();
      check_bool "bytes via named segment" true
        (Bytes.equal (Bytes.of_string "hi")
           (Cluster.Address_space.read rig.Rig.d.Rig.space0 ~addr:0 ~len:2)))

let lookup_not_found () =
  let rig = Rig.named_duo () in
  Rig.run rig.Rig.d (fun () ->
      check_bool "raises" true
        (try
           ignore
             (Names.Api.import
                ~hint:(Cluster.Node.addr rig.Rig.d.Rig.node1)
                rig.Rig.clerk0 "no-such-name");
           false
         with Names.Clerk.Name_not_found _ -> true))

let lookup_without_hint_needs_cache () =
  let rig = Rig.named_duo () in
  Rig.run rig.Rig.d (fun () ->
      let space = Cluster.Node.new_address_space rig.Rig.d.Rig.node1 in
      let (_ : Rmem.Segment.t) =
        Names.Api.export rig.Rig.clerk1 ~space ~base:0 ~len:4096
          ~name:"hintless" ()
      in
      check_bool "no hint, no cache -> not found" true
        (try
           ignore (Names.Api.import rig.Rig.clerk0 "hintless");
           false
         with Names.Clerk.Name_not_found _ -> true);
      (* After a hinted import it is cached and needs no hint. *)
      let (_ : Rmem.Descriptor.t) =
        Names.Api.import
          ~hint:(Cluster.Node.addr rig.Rig.d.Rig.node1)
          rig.Rig.clerk0 "hintless"
      in
      let (_ : Rmem.Descriptor.t) = Names.Api.import rig.Rig.clerk0 "hintless" in
      ())

let control_transfer_lookup () =
  let rig = Rig.named_duo () in
  Rig.run rig.Rig.d (fun () ->
      let space = Cluster.Node.new_address_space rig.Rig.d.Rig.node1 in
      let (_ : Rmem.Segment.t) =
        Names.Api.export rig.Rig.clerk1 ~space ~base:0 ~len:4096 ~name:"ct" ()
      in
      let desc =
        Names.Api.import_with_control_transfer
          ~hint:(Cluster.Node.addr rig.Rig.d.Rig.node1)
          rig.Rig.clerk0 "ct"
      in
      check_int "found via control transfer" 4096 (Rmem.Descriptor.size desc);
      Alcotest.(check bool) "exporter served a lookup" true
        (Metrics.Account.total_of
           (Names.Clerk.stats rig.Rig.clerk1)
           "lookups served"
        >= 1.))

let refresh_purges_and_marks_stale () =
  let rig = Rig.named_duo () in
  Rig.run rig.Rig.d (fun () ->
      let space = Cluster.Node.new_address_space rig.Rig.d.Rig.node1 in
      let segment =
        Names.Api.export rig.Rig.clerk1 ~space ~base:0 ~len:4096 ~name:"fresh" ()
      in
      let desc =
        Names.Api.import
          ~hint:(Cluster.Node.addr rig.Rig.d.Rig.node1)
          rig.Rig.clerk0 "fresh"
      in
      Names.Api.revoke rig.Rig.clerk1 segment;
      check_bool "cached before refresh" true
        (List.mem "fresh" (Names.Clerk.cached_names rig.Rig.clerk0));
      Names.Clerk.refresh_once rig.Rig.clerk0;
      check_bool "purged" false
        (List.mem "fresh" (Names.Clerk.cached_names rig.Rig.clerk0));
      check_bool "descriptor stale" true (Rmem.Descriptor.is_stale desc))

let refresh_daemon_runs () =
  let rig = Rig.named_duo () in
  Rig.run rig.Rig.d (fun () ->
      let space = Cluster.Node.new_address_space rig.Rig.d.Rig.node1 in
      let segment =
        Names.Api.export rig.Rig.clerk1 ~space ~base:0 ~len:4096 ~name:"daemon" ()
      in
      let desc =
        Names.Api.import
          ~hint:(Cluster.Node.addr rig.Rig.d.Rig.node1)
          rig.Rig.clerk0 "daemon"
      in
      Names.Clerk.start_refresh_daemon rig.Rig.clerk0 ~period:(Sim.Time.ms 5);
      Names.Api.revoke rig.Rig.clerk1 segment;
      Sim.Proc.wait (Sim.Time.ms 12);
      check_bool "daemon marked it stale" true (Rmem.Descriptor.is_stale desc);
      (* Stop the simulation from running the daemon forever. *)
      Sim.Engine.stop rig.Rig.d.Rig.engine)

let probe_then_control_policy () =
  let rig = Rig.named_duo () in
  Rig.run rig.Rig.d (fun () ->
      let space = Cluster.Node.new_address_space rig.Rig.d.Rig.node1 in
      let (_ : Rmem.Segment.t) =
        Names.Api.export rig.Rig.clerk1 ~space ~base:0 ~len:4096 ~name:"ptc" ()
      in
      let hint = Cluster.Node.addr rig.Rig.d.Rig.node1 in
      (* With a 0-probe budget the clerk must immediately fall back to
         the control-transfer path — and still find the name. *)
      Names.Clerk.set_probe_policy rig.Rig.clerk0
        (Names.Clerk.Probe_then_control 0);
      let desc = Names.Api.import ~force:true ~hint rig.Rig.clerk0 "ptc" in
      check_int "found" 4096 (Rmem.Descriptor.size desc);
      Alcotest.(check bool) "used control transfer" true
        (Metrics.Account.total_of
           (Names.Clerk.stats rig.Rig.clerk0)
           "control-transfer lookups"
        >= 1.);
      (* With a large budget it resolves by probing alone. *)
      let served_before =
        Metrics.Account.total_of
          (Names.Clerk.stats rig.Rig.clerk1)
          "lookups served"
      in
      Names.Clerk.set_probe_policy rig.Rig.clerk0
        (Names.Clerk.Probe_then_control 32);
      let (_ : Rmem.Descriptor.t) =
        Names.Api.import ~force:true ~hint rig.Rig.clerk0 "ptc"
      in
      Alcotest.(check (float 0.01)) "no extra control transfer" served_before
        (Metrics.Account.total_of
           (Names.Clerk.stats rig.Rig.clerk1)
           "lookups served"))

let control_transfer_absent_name () =
  let rig = Rig.named_duo () in
  Rig.run rig.Rig.d (fun () ->
      let hint = Cluster.Node.addr rig.Rig.d.Rig.node1 in
      check_bool "absent name raises through control transfer" true
        (try
           ignore
             (Names.Api.import_with_control_transfer ~hint rig.Rig.clerk0
                "ghost");
           false
         with Names.Clerk.Name_not_found _ -> true))

let reexport_bumps_generation () =
  let rig = Rig.named_duo () in
  Rig.run rig.Rig.d (fun () ->
      let space = Cluster.Node.new_address_space rig.Rig.d.Rig.node1 in
      let hint = Cluster.Node.addr rig.Rig.d.Rig.node1 in
      let segment =
        Names.Api.export rig.Rig.clerk1 ~space ~base:0 ~len:4096 ~name:"re" ()
      in
      let d1 = Names.Api.import ~hint rig.Rig.clerk0 "re" in
      Names.Api.revoke rig.Rig.clerk1 segment;
      let (_ : Rmem.Segment.t) =
        Names.Api.export rig.Rig.clerk1 ~space ~base:0 ~len:4096 ~name:"re" ()
      in
      let d2 = Names.Api.import ~force:true ~hint rig.Rig.clerk0 "re" in
      check_bool "new generation differs" false
        (Rmem.Generation.equal (Rmem.Descriptor.generation d1)
           (Rmem.Descriptor.generation d2)))

let registry_well_formed () =
  let space = Cluster.Address_space.create ~asid:9 () in
  let r = Names.Registry.create ~space ~base:0 ~slots:8 in
  check_bool "fresh table" true (Names.Registry.well_formed r);
  ignore (Names.Registry.insert r (sample_record ~name:"alpha" ()));
  ignore (Names.Registry.insert r (sample_record ~name:"beta" ()));
  check_bool "after inserts" true (Names.Registry.well_formed r);
  check_bool "deleted" true (Names.Registry.delete r "beta");
  check_bool "orphans after deletion tolerated" true
    (Names.Registry.well_formed r);
  (* Tear every slot's valid flag behind the registry's back: the live
     counter now exceeds the decodable records. *)
  for index = 0 to 7 do
    Cluster.Address_space.write_word space
      ~addr:(index * Names.Record.slot_bytes)
      0l
  done;
  check_bool "torn table detected" false (Names.Registry.well_formed r)

let suite =
  [
    Alcotest.test_case "record invalid slot" `Quick record_invalid_slot;
    Alcotest.test_case "registry well-formedness" `Quick registry_well_formed;
    Alcotest.test_case "record validation" `Quick record_validation;
    Alcotest.test_case "registry insert/lookup/delete" `Quick
      registry_insert_lookup_delete;
    Alcotest.test_case "registry overwrite same name" `Quick
      registry_overwrite_same_name;
    Alcotest.test_case "registry full" `Quick registry_full;
    Alcotest.test_case "export/import end to end" `Quick export_import_roundtrip;
    Alcotest.test_case "lookup not found" `Quick lookup_not_found;
    Alcotest.test_case "hintless lookup needs cache" `Quick
      lookup_without_hint_needs_cache;
    Alcotest.test_case "control-transfer lookup" `Quick control_transfer_lookup;
    Alcotest.test_case "refresh purges and marks stale" `Quick
      refresh_purges_and_marks_stale;
    Alcotest.test_case "refresh daemon" `Quick refresh_daemon_runs;
    Alcotest.test_case "re-export bumps generation" `Quick
      reexport_bumps_generation;
    Alcotest.test_case "probe-then-control policy" `Quick
      probe_then_control_policy;
    Alcotest.test_case "control transfer on absent name" `Quick
      control_transfer_absent_name;
    QCheck_alcotest.to_alcotest record_roundtrip;
    QCheck_alcotest.to_alcotest registry_collisions_probe;
  ]

(* The fault plane and the recovery layer: heartbeat failure detection
   under injected loss, replica convergence across partition heals and
   crash/restarts with generation bumps, and the determinism/replay
   contract of seeded campaigns. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ms = Sim.Time.ms

let lossy_window ~from_ ~until =
  Faults.Plan.make
    ~link:
      (Faults.Plan.link_faults ~loss:1.0
         ~windows:[ Faults.Plan.window ~from_ ~until ]
         ())
    ()

(* ---------------- Heartbeat under loss ---------------- *)

(* A bounded loss window: strikes accumulate while probes are lost and
   the first successful probe after the heal reports the recovery and
   resets them — Failed never fires. *)
let heartbeat_strikes_reset () =
  let d = Rig.duo () in
  let plan = lossy_window ~from_:(ms 10) ~until:(ms 16) in
  let (_ : Faults.Plane.t) = Faults.Plane.create ~plan ~seed:5 d.Rig.testbed in
  let failures = ref 0 in
  let recoveries = ref 0 in
  let strikes_in_window = ref 0 in
  let strikes_after_heal = ref (-1) in
  Rig.run d (fun () ->
      let segment, desc = Rig.shared_segment d in
      let stop_publisher =
        Rmem.Heartbeat.publish d.Rig.rmem1 segment ~off:0 ~period:(ms 1)
      in
      let watcher =
        Rmem.Heartbeat.watch d.Rig.rmem0 desc ~soff:0 ~period:(ms 2)
          ~timeout:(ms 1) ~strikes_allowed:100
          ~on_recovery:(fun () -> incr recoveries)
          ~on_failure:(fun () -> incr failures)
          ()
      in
      Sim.Proc.wait (ms 15);
      strikes_in_window := Rmem.Heartbeat.strikes watcher;
      Sim.Proc.wait (ms 15);
      strikes_after_heal := Rmem.Heartbeat.strikes watcher;
      check_bool "still alive" true
        (Rmem.Heartbeat.state watcher = Rmem.Heartbeat.Alive);
      Rmem.Heartbeat.stop watcher;
      stop_publisher ());
  check_bool "strikes accumulated during the loss window" true
    (!strikes_in_window > 0);
  check_int "strikes reset after the heal" 0 !strikes_after_heal;
  check_int "no failure declared" 0 !failures;
  check_int "recovery reported once" 1 !recoveries

(* Loss that never heals: strikes pass the budget, Failed fires exactly
   once, and the watcher stops probing. *)
let heartbeat_fails_once () =
  let d = Rig.duo () in
  let plan = lossy_window ~from_:(ms 10) ~until:(ms 1000) in
  let (_ : Faults.Plane.t) = Faults.Plane.create ~plan ~seed:5 d.Rig.testbed in
  let failures = ref 0 in
  let probes_at_failure = ref 0 in
  Rig.run d (fun () ->
      let segment, desc = Rig.shared_segment d in
      let stop_publisher =
        Rmem.Heartbeat.publish d.Rig.rmem1 segment ~off:0 ~period:(ms 1)
      in
      let watcher_box = ref None in
      let watcher =
        Rmem.Heartbeat.watch d.Rig.rmem0 desc ~soff:0 ~period:(ms 2)
          ~timeout:(ms 1) ~strikes_allowed:3
          ~on_failure:(fun () ->
            incr failures;
            Option.iter
              (fun w -> probes_at_failure := Rmem.Heartbeat.probes w)
              !watcher_box)
          ()
      in
      watcher_box := Some watcher;
      Sim.Proc.wait (ms 40);
      check_bool "failed" true
        (Rmem.Heartbeat.state watcher = Rmem.Heartbeat.Failed);
      check_int "watcher stopped probing after the failure"
        !probes_at_failure
        (Rmem.Heartbeat.probes watcher);
      stop_publisher ());
  check_int "failure declared exactly once" 1 !failures

(* ---------------- Replica convergence ---------------- *)

let outcome_ok (o : Faults.Campaign.outcome) =
  o.survived && o.converged

(* Partition heal, via the campaign: writes land while a member is cut
   off; pushes retry past the heal or are repaired by anti-entropy, and
   every member converges. *)
let replica_partition_heal () =
  let plan = Faults.Campaign.partition_plan () in
  let o = Faults.Campaign.run ~plan ~seed:2100 "replica" in
  check_bool "survived and converged" true (outcome_ok o);
  check_bool "the partition actually cut frames" true (o.events > 0);
  check_bool "recovery did some work" true (o.retries > 0.)

(* Member crash/restart with a generation bump: pushes against the
   restarted member draw Stale_generation, revalidate through the name
   clerk (forced re-import) and land; all members converge. *)
let replica_crash_restart () =
  let testbed = Cluster.Testbed.create ~nodes:3 () in
  let nodes = Array.init 3 (Cluster.Testbed.node testbed) in
  let rmems = Array.map Rmem.Remote_memory.attach nodes in
  let clerk1 = ref None in
  let plan =
    Faults.Plan.make
      ~crashes:
        [ { Faults.Plan.node = 1; at = ms 20; restart_at = Some (ms 25) } ]
      ()
  in
  let plane =
    Faults.Plane.create ~plan
      ~rmems:(Array.to_list (Array.mapi (fun i r -> (i, r)) rmems))
      ~preserve:[ 0; 1; 2 ]
      ~on_restart:(fun n ->
        if n = 1 then Option.iter Names.Clerk.reannounce !clerk1)
      ~seed:7 testbed
  in
  let agreed = ref false in
  Cluster.Testbed.run testbed (fun () ->
      let clerks =
        Array.map
          (fun rmem ->
            let clerk = Names.Clerk.create rmem in
            Names.Clerk.serve_lookup_requests clerk;
            Names.Clerk.set_probe_timeout clerk (Some (ms 2));
            clerk)
          rmems
      in
      clerk1 := Some clerks.(1);
      let members = Array.map Replica.create clerks in
      Array.iteri
        (fun i member ->
          Replica.set_recovery member
            (Some
               (Rmem.Recovery.policy ~attempts:4 ~timeout:(ms 10)
                  ~backoff:(Sim.Time.us 500) ()));
          Array.iteri
            (fun j peer ->
              if i <> j then
                Replica.join member ~peer:(Cluster.Node.addr peer))
            nodes)
        members;
      let stops =
        Array.map
          (fun m -> Replica.start_anti_entropy_daemon m ~period:(ms 5))
          members
      in
      Replica.set members.(0) "alpha" (Bytes.of_string "before the crash");
      (* Past the crash [20 ms] and restart [25 ms]: member 1's replica
         segment now carries a fresh generation, so this push draws
         Stale_generation and must heal through the clerk. *)
      let engine = Cluster.Testbed.engine testbed in
      let wait_until time =
        let now = Sim.Engine.now engine in
        if Sim.Time.(now < time) then Sim.Proc.wait (Sim.Time.diff time now)
      in
      wait_until (ms 30);
      Replica.set members.(0) "omega" (Bytes.of_string "after the restart");
      wait_until (ms 90);
      Array.iter (fun stop -> stop ()) stops;
      let agree key =
        match Array.map (fun m -> Replica.get m key) members with
        | [| Some a; Some b; Some c |] -> Bytes.equal a b && Bytes.equal a c
        | _ -> false
      in
      agreed := agree "alpha" && agree "omega");
  check_bool "all members agree after the crash/restart" true !agreed;
  let registry = Faults.Plane.registry plane in
  check_bool "crash and restart were injected" true
    (Obs.Registry.counter registry "faults.crashes" = 1.
    && Obs.Registry.counter registry "faults.restarts" = 1.);
  check_bool "staleness healed through revalidation" true
    (Obs.Registry.counter registry "rmem.revalidations" >= 1.)

(* ---------------- The determinism/replay contract ---------------- *)

let campaigns_replay_identically () =
  let plan = Faults.Campaign.chaos_plan 0.10 in
  List.iter
    (fun workload ->
      let a = Faults.Campaign.run ~plan ~seed:42 workload in
      let b = Faults.Campaign.run ~plan ~seed:42 workload in
      check_bool (workload ^ " converges under chaos") true (outcome_ok a);
      check_int (workload ^ " replays the event count") a.events b.events;
      check_bool (workload ^ " replays the digest") true (a.digest = b.digest))
    [ "quickstart"; "replica" ];
  let a = Faults.Campaign.run ~plan ~seed:42 "replica" in
  let c = Faults.Campaign.run ~plan ~seed:43 "replica" in
  check_bool "different seeds draw different fault sequences" true
    (a.digest <> c.digest)

(* With the empty plan the plane injects nothing: the event log is
   empty whatever the seed — the bit-identical-when-disabled contract
   at the campaign level. *)
let empty_plan_is_inert () =
  let a = Faults.Campaign.run ~seed:1 "quickstart" in
  let b = Faults.Campaign.run ~seed:99 "quickstart" in
  check_bool "converges" true (outcome_ok a && outcome_ok b);
  check_int "no faults, any seed" 0 (a.events + b.events);
  check_bool "empty digests agree" true (a.digest = b.digest)

let plan_validation () =
  let raises f =
    match f () with
    | (_ : Faults.Plan.t) -> false
    | exception Invalid_argument _ -> true
  in
  check_bool "probability out of range" true
    (raises (fun () ->
         Faults.Plan.make ~link:(Faults.Plan.link_faults ~loss:1.5 ()) ()));
  check_bool "partition without windows" true
    (raises (fun () ->
         Faults.Plan.make
           ~partitions:[ { Faults.Plan.group = [ 1 ]; windows = [] } ]
           ()));
  check_bool "restart before crash" true
    (raises (fun () ->
         Faults.Plan.make
           ~crashes:
             [ { Faults.Plan.node = 0; at = ms 10; restart_at = Some (ms 5) } ]
           ()))

let suite =
  [
    Alcotest.test_case "heartbeat: strikes accumulate and reset" `Quick
      heartbeat_strikes_reset;
    Alcotest.test_case "heartbeat: Failed fires exactly once" `Quick
      heartbeat_fails_once;
    Alcotest.test_case "replica: partition heal converges" `Quick
      replica_partition_heal;
    Alcotest.test_case "replica: crash/restart generation bump heals" `Quick
      replica_crash_restart;
    Alcotest.test_case "campaigns replay identically" `Quick
      campaigns_replay_identically;
    Alcotest.test_case "empty plan is inert" `Quick empty_plan_is_inert;
    Alcotest.test_case "plan validation" `Quick plan_validation;
  ]

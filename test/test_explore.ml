(* End-to-end tests for the DPOR schedule explorer: the default FIFO
   order is bit-identical to an explicit first-enabled scheduler, the
   seeded schedule bugs are found (which the single-schedule race
   checker cannot do), failure certificates replay deterministically,
   and the clean workloads exhaust their schedule space clean. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let access_trace monitor =
  List.map
    (fun (a : Analysis.Access.t) ->
      Printf.sprintf "%s@%s" (Analysis.Access.describe a)
        (Sim.Time.to_string a.Analysis.Access.time))
    (Analysis.Monitor.accesses monitor)

(* The scheduler hook must be a pure refactor: installing a scheduler
   that always picks the first enabled event reproduces the default
   (no-scheduler fast path) access trace exactly, for every workload. *)
let default_equals_explicit_fifo () =
  List.iter
    (fun name ->
      let fifo_run ~explicit =
        let prep = Analysis.Scenarios.prepare name in
        let engine = Cluster.Testbed.engine prep.Analysis.Scenarios.testbed in
        if explicit then
          Sim.Engine.set_scheduler engine
            (Some (fun c -> List.hd c.Sim.Engine.enabled));
        Fun.protect
          ~finally:prep.Analysis.Scenarios.teardown
          (fun () -> Sim.Engine.run engine);
        check_bool
          (Printf.sprintf "%s finished" name)
          true
          (prep.Analysis.Scenarios.finished ());
        access_trace prep.Analysis.Scenarios.monitor
      in
      Alcotest.(check (list string))
        (Printf.sprintf "%s: identical traces" name)
        (fifo_run ~explicit:false) (fifo_run ~explicit:true))
    Analysis.Scenarios.checked

let explore name = Analysis.Explore.explore name

let torn_record_found () =
  let r = explore "torn_record" in
  (* FIFO alone sees nothing: the baseline is clean and — one node, one
     agent — the race detector is structurally blind to the tear. *)
  check_bool "baseline clean" true (r.baseline.failure = None);
  check_bool "adversarial schedules tear the record" true
    (r.stats.failing > 0);
  List.iter
    (fun (o : Analysis.Explore.outcome) ->
      match o.failure with
      | Some (Analysis.Explore.Invariant_violated _) -> ()
      | _ -> Alcotest.fail "expected invariant violations only")
    r.failures;
  check_bool "within budget" true (not r.stats.budget_exhausted)

let cas_missing_release_found () =
  let r = explore "cas_missing_release" in
  check_bool "baseline clean" true (r.baseline.failure = None);
  check_bool "adversarial schedules deadlock" true (r.stats.failing > 0);
  let deadlocks =
    List.filter_map
      (fun (o : Analysis.Explore.outcome) ->
        match o.failure with
        | Some (Analysis.Explore.Deadlock report) -> Some report
        | _ -> None)
      r.failures
  in
  check_bool "at least one deadlock" true (deadlocks <> []);
  (* The report names who is stuck on what. *)
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec scan i =
      i + n <= h && (String.sub hay i n = needle || scan (i + 1))
    in
    scan 0
  in
  check_bool "report names the baton mailbox" true
    (List.exists (fun report -> contains report "baton") deadlocks)

let replay_is_deterministic () =
  List.iter
    (fun name ->
      let r = explore name in
      match r.failures with
      | [] -> Alcotest.fail (name ^ ": expected failures")
      | first :: _ ->
          let once = Analysis.Explore.replay name first.schedule in
          let twice = Analysis.Explore.replay name first.schedule in
          let kind (o : Analysis.Explore.outcome) =
            match o.failure with
            | None -> "ok"
            | Some f ->
                Analysis.Explore.failure_kind f
                ^ ": "
                ^ Analysis.Explore.describe_failure f
          in
          check_bool
            (name ^ ": replay reproduces the exploration failure")
            true
            (kind once = kind first);
          Alcotest.(check string)
            (name ^ ": replay is stable")
            (kind once) (kind twice);
          check_int
            (name ^ ": same choice points")
            first.choice_points once.choice_points)
    Analysis.Scenarios.seeded_bugs

let replay_validates_certificates () =
  check_bool "wrong enabled count rejected" true
    (try
       ignore
         (Analysis.Explore.replay "torn_record"
            (Analysis.Schedule.of_string "0/5"));
       false
     with Analysis.Explore.Certificate_mismatch _ -> true)

let clean_workloads_stay_clean () =
  List.iter
    (fun name ->
      if not (List.mem name Analysis.Scenarios.seeded_bugs) then begin
        let r = explore name in
        check_int (name ^ ": no failing schedule") 0 r.stats.failing;
        check_bool (name ^ ": space exhausted, not budget") true
          (not r.stats.budget_exhausted);
        check_int
          (name ^ ": every execution accounted for")
          r.stats.executed
          (r.stats.distinct + r.stats.redundant)
      end)
    Analysis.Scenarios.checked

let suite =
  [
    Alcotest.test_case "default order = explicit FIFO scheduler" `Quick
      default_equals_explicit_fifo;
    Alcotest.test_case "torn record found" `Quick torn_record_found;
    Alcotest.test_case "missing CAS release found" `Quick
      cas_missing_release_found;
    Alcotest.test_case "replay is deterministic" `Quick
      replay_is_deterministic;
    Alcotest.test_case "replay validates certificates" `Quick
      replay_validates_certificates;
    Alcotest.test_case "clean workloads stay clean" `Quick
      clean_workloads_stay_clean;
  ]

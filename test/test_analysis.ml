(* Tests for the analysis layer: vector clocks, the race detector and
   protocol lint over the replay scenarios, and regression coverage for
   the reply-path hardening that the monitor hooks exposed. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------------- Vector clocks ---------------- *)

let vclock_orders () =
  let module V = Analysis.Vclock in
  let a = V.tick (V.tick V.empty 0) 0 in
  let b = V.tick V.empty 1 in
  check_int "missing component reads zero" 0 (V.get V.empty 5);
  check_int "two ticks" 2 (V.get a 0);
  check_bool "empty <= any" true (V.leq V.empty a);
  check_bool "concurrent not <=" false (V.leq a b);
  (match V.compare a b with
  | V.Concurrent -> ()
  | _ -> Alcotest.fail "disjoint ticks must be concurrent");
  let j = V.join a b in
  check_int "join keeps a" 2 (V.get j 0);
  check_int "join keeps b" 1 (V.get j 1);
  (match V.compare a j with
  | V.Before -> ()
  | _ -> Alcotest.fail "a must be before its join");
  (match V.compare j a with
  | V.After -> ()
  | _ -> Alcotest.fail "join must be after a");
  match V.compare j (V.join b a) with
  | V.Equal -> ()
  | _ -> Alcotest.fail "join is commutative"

(* A clock is fully determined by the multiset of agent ids ticked, so
   a small id list is a complete generator. *)
let vclock_of_ticks ticks =
  List.fold_left Analysis.Vclock.tick Analysis.Vclock.empty ticks

let vclock_gen = QCheck.(list_of_size Gen.(0 -- 12) (int_bound 4))

let vclock_join_is_lub =
  QCheck.Test.make ~name:"vclock join is the least upper bound" ~count:300
    QCheck.(pair vclock_gen vclock_gen)
    (fun (ta, tb) ->
      let module V = Analysis.Vclock in
      let a = vclock_of_ticks ta and b = vclock_of_ticks tb in
      let j = V.join a b in
      V.leq a j && V.leq b j
      && V.compare j (V.join b a) = V.Equal
      && V.compare (V.join a a) a = V.Equal
      && V.compare (V.join a (V.join a b)) j = V.Equal)

let vclock_compare_matches_leq =
  QCheck.Test.make ~name:"vclock compare agrees with leq" ~count:300
    QCheck.(pair vclock_gen vclock_gen)
    (fun (ta, tb) ->
      let module V = Analysis.Vclock in
      let a = vclock_of_ticks ta and b = vclock_of_ticks tb in
      let le = V.leq a b and ge = V.leq b a in
      match V.compare a b with
      | V.Equal -> le && ge
      | V.Before -> le && not ge
      | V.After -> ge && not le
      | V.Concurrent -> (not le) && not ge)

let vclock_tick_strictly_increases =
  QCheck.Test.make ~name:"vclock tick strictly increases" ~count:300
    QCheck.(pair vclock_gen (int_bound 4))
    (fun (ta, i) ->
      let module V = Analysis.Vclock in
      let a = vclock_of_ticks ta in
      let a' = V.tick a i in
      V.compare a a' = V.Before && V.get a' i = V.get a i + 1)

let vclock_join_is_monotone =
  QCheck.Test.make ~name:"vclock join is monotone in each argument" ~count:300
    QCheck.(triple vclock_gen vclock_gen vclock_gen)
    (fun (ta, tb, tc) ->
      let module V = Analysis.Vclock in
      let a = vclock_of_ticks ta
      and b = vclock_of_ticks tb
      and c = vclock_of_ticks tc in
      (not (V.leq a b)) || V.leq (V.join a c) (V.join b c))

let vclock_ragged_lengths () =
  (* Clocks over different agent-id ranges compare by padding with
     zeros; a missing component is exactly a zero component. *)
  let module V = Analysis.Vclock in
  let short = V.tick V.empty 0 in
  let long = V.tick (V.tick V.empty 0) 3 in
  check_int "phantom component" 0 (V.get short 3);
  check_bool "short <= long" true (V.leq short long);
  check_bool "long not <= short" false (V.leq long short);
  (match V.compare short long with
  | V.Before -> ()
  | _ -> Alcotest.fail "padding must give Before");
  match V.compare (V.join short V.empty) short with
  | V.Equal -> ()
  | _ -> Alcotest.fail "join with empty is identity"

(* ---------------- Schedule certificates ---------------- *)

let schedule_roundtrip () =
  let module S = Analysis.Schedule in
  Alcotest.(check string) "empty prints dash" "-" (S.to_string S.empty);
  check_bool "empty parses" true (S.of_string "-" = S.empty);
  check_bool "blank parses" true (S.of_string "  " = S.empty);
  let t = [ { S.index = 1; count = 3 }; { S.index = 0; count = 2 } ] in
  Alcotest.(check string) "renders" "1/3,0/2" (S.to_string t);
  check_bool "round trips" true (S.of_string (S.to_string t) = t);
  check_int "length" 2 (S.length t);
  let rejects s =
    try
      ignore (S.of_string s);
      false
    with Invalid_argument _ -> true
  in
  check_bool "index out of range" true (rejects "3/3");
  check_bool "count below two" true (rejects "0/1");
  check_bool "malformed pair" true (rejects "1-3");
  check_bool "junk" true (rejects "1/3,x")

(* ---------------- Lint: notify-storm and unbounded-retry ------- *)

let monitored_duo () =
  let d = Rig.duo () in
  let monitor = Analysis.Monitor.create d.Rig.engine in
  Analysis.Monitor.attach_rmem monitor d.Rig.rmem0;
  Analysis.Monitor.attach_rmem monitor d.Rig.rmem1;
  (d, monitor)

let rules findings = List.map (fun f -> f.Analysis.Lint.rule) findings

let notify_storm_flagged () =
  let d, monitor = monitored_duo () in
  Rig.run d (fun () ->
      let _, desc = Rig.shared_segment ~policy:Rmem.Segment.Always d in
      (* Every write to a notify:always segment posts a notification;
         a burst of small writes is the storm the rule is after. *)
      for i = 0 to Analysis.Lint.poll_threshold + 1 do
        Rmem.Remote_memory.write d.Rig.rmem0 desc ~off:(i * 8)
          (Bytes.make 8 'x')
      done;
      Rmem.Remote_memory.fence d.Rig.rmem0 desc);
  let findings = Analysis.Lint.check monitor in
  check_bool "notify-storm fires" true
    (List.mem "notify-storm" (rules findings))

let notify_storm_spares_conditional () =
  let d, monitor = monitored_duo () in
  Rig.run d (fun () ->
      let _, desc = Rig.shared_segment ~policy:Rmem.Segment.Conditional d in
      for i = 0 to Analysis.Lint.poll_threshold + 1 do
        Rmem.Remote_memory.write d.Rig.rmem0 desc ~off:(i * 8)
          (Bytes.make 8 'x')
      done;
      Rmem.Remote_memory.fence d.Rig.rmem0 desc);
  let findings = Analysis.Lint.check monitor in
  check_bool "conditional-policy bursts are fine" false
    (List.mem "notify-storm" (rules findings))

let unbounded_retry_flagged () =
  let d, monitor = monitored_duo () in
  Rig.run d (fun () ->
      let _, desc = Rig.shared_segment d in
      (* Park the lock word at a value no CAS will match, then spin. *)
      Cluster.Address_space.write_word d.Rig.space1 ~addr:0 9l;
      for _ = 1 to Analysis.Lint.poll_threshold + 2 do
        let ok, _ =
          Rmem.Remote_memory.cas_wait d.Rig.rmem0 desc ~doff:0 ~old_value:0l
            ~new_value:1l ()
        in
        assert (not ok)
      done);
  let findings = Analysis.Lint.check monitor in
  check_bool "unbounded-retry fires" true
    (List.mem "unbounded-retry" (rules findings))

let backoff_retry_clean () =
  let d, monitor = monitored_duo () in
  Rig.run d (fun () ->
      let _, desc = Rig.shared_segment d in
      Cluster.Address_space.write_word d.Rig.space1 ~addr:0 9l;
      for _ = 1 to Analysis.Lint.poll_threshold + 2 do
        let ok, _ =
          Rmem.Remote_memory.cas_wait d.Rig.rmem0 desc ~doff:0 ~old_value:0l
            ~new_value:1l ()
        in
        assert (not ok);
        (* Pausing past the backoff floor resets the consecutive run. *)
        Sim.Proc.wait Analysis.Monitor.retry_backoff_floor;
        Sim.Proc.wait (Sim.Time.us 1)
      done);
  let findings = Analysis.Lint.check monitor in
  check_bool "backed-off retries are fine" false
    (List.mem "unbounded-retry" (rules findings))

(* ---------------- Scenario expectations ---------------- *)

let run_scenario name =
  let monitor = Analysis.Scenarios.run name in
  (monitor, Analysis.Race.find monitor, Analysis.Lint.check monitor)

let racy_flagged () =
  let _, races, _ = run_scenario "racy" in
  check_bool "two unsynchronized writers race" true (races <> []);
  let r = List.hd races in
  check_bool "distinct agents" true
    (r.Analysis.Race.a.Analysis.Access.agent
    <> r.Analysis.Race.b.Analysis.Access.agent);
  check_bool "at least one side writes" true
    (Analysis.Access.is_write r.Analysis.Race.a
    || Analysis.Access.is_write r.Analysis.Race.b)

let producer_consumer_clean () =
  let monitor, races, findings = run_scenario "producer_consumer" in
  check_int "notification-synchronized ring has no races" 0
    (List.length races);
  check_int "and no findings" 0 (List.length findings);
  check_bool "the run actually recorded accesses" true
    (Analysis.Monitor.accesses monitor <> [])

let kv_store_clean () =
  let _, races, findings = run_scenario "kv_store" in
  check_int "fenced per-client slots are race free" 0 (List.length races);
  check_int "no findings" 0 (List.length findings)

let fence_sensitivity () =
  let _, races_fenced, _ = run_scenario "file_service" in
  check_int "lock + fence: clean" 0 (List.length races_fenced);
  let _, races_unfenced, _ = run_scenario "file_service_nofence" in
  check_bool "lock without fence: in-flight writes race" true
    (races_unfenced <> [])

let name_service_lint () =
  let _, races, findings = run_scenario "name_service" in
  check_int "misuse, not races" 0 (List.length races);
  let has rule =
    List.exists (fun f -> f.Analysis.Lint.rule = rule) findings
  in
  check_bool "stale descriptor reuse caught" true (has "stale-generation");
  check_bool "polling a notify:never segment caught" true (has "poll-never")

(* ---------------- Reply-path regressions ---------------- *)

(* WRITE is unacknowledged, so a dropped write must surface through the
   negative-ack channel: [take_write_failure] returns it once, and
   [fence] turns it into an exception instead of silently succeeding. *)
let nacked_write_surfaces () =
  let d = Rig.duo () in
  Rig.run d (fun () ->
      let segment, desc = Rig.shared_segment d in
      Rmem.Segment.set_write_inhibit segment true;
      Rmem.Remote_memory.write d.Rig.rmem0 desc ~off:0 (Bytes.make 32 'x');
      Sim.Proc.wait (Sim.Time.us 500);
      (match Rmem.Remote_memory.take_write_failure d.Rig.rmem0 desc with
      | Some Rmem.Status.Write_inhibited -> ()
      | Some s -> Alcotest.failf "wrong status %s" (Rmem.Status.to_string s)
      | None -> Alcotest.fail "nack not recorded");
      check_bool "failure is consumed" true
        (Rmem.Remote_memory.take_write_failure d.Rig.rmem0 desc = None))

let fence_raises_on_nack () =
  let d = Rig.duo () in
  Rig.run d (fun () ->
      let segment, desc = Rig.shared_segment d in
      Rmem.Segment.set_write_inhibit segment true;
      Rmem.Remote_memory.write d.Rig.rmem0 desc ~off:0 (Bytes.make 32 'x');
      (* Reads still work under write inhibit, so the fence's probe
         succeeds — the raise must come from the recorded nack. *)
      (match Rmem.Remote_memory.fence d.Rig.rmem0 desc with
      | () -> Alcotest.fail "fence must report the dropped write"
      | exception Rmem.Status.Remote_error Rmem.Status.Write_inhibited -> ());
      check_bool "fence consumed the failure" true
        (Rmem.Remote_memory.take_write_failure d.Rig.rmem0 desc = None);
      Rmem.Segment.set_write_inhibit segment false;
      Rmem.Remote_memory.write d.Rig.rmem0 desc ~off:0 (Bytes.make 32 'y');
      Rmem.Remote_memory.fence d.Rig.rmem0 desc)

(* A reply of the wrong kind for a pending request must fail that
   request cleanly (fill its completion with an error) rather than be
   dropped on the floor leaving the issuer blocked forever. *)
let mismatched_reply_fails_request () =
  let d = Rig.duo () in
  Rig.run d (fun () ->
      let _segment, desc = Rig.shared_segment d in
      (* Swallow the genuine READ at a downed server, then forge a CAS
         reply bearing its reqid (a fresh endpoint starts at 1). *)
      Cluster.Node.set_down d.Rig.node1 true;
      let completion =
        Rmem.Remote_memory.read d.Rig.rmem0 desc ~soff:0 ~count:16
          ~dst:(Rig.buffer0 d) ~doff:0 ()
      in
      Sim.Proc.wait (Sim.Time.us 300);
      Cluster.Node.set_down d.Rig.node1 false;
      Cluster.Node.transmit d.Rig.node1
        ~dst:(Cluster.Node.addr d.Rig.node0)
        (Rmem.Wire.encode
           (Rmem.Wire.Cas_reply
              { status = Rmem.Status.Ok; reqid = 1; witness = 0l }));
      match Sim.Ivar.read completion with
      | Rmem.Status.Bad_segment -> ()
      | s -> Alcotest.failf "expected Bad_segment, got %s"
               (Rmem.Status.to_string s))

(* After a timed-out CAS the pending entry is gone, so a straggling
   reply must be discarded instead of double-filling the completion
   (which would crash the dispatch loop). *)
let late_reply_after_timeout_ignored () =
  let d = Rig.duo () in
  Rig.run d (fun () ->
      let _segment, desc = Rig.shared_segment d in
      Cluster.Node.set_down d.Rig.node1 true;
      (match
         Rmem.Remote_memory.cas_wait ~timeout:(Sim.Time.us 500) d.Rig.rmem0
           desc ~doff:0 ~old_value:0l ~new_value:1l ()
       with
      | _ -> Alcotest.fail "cas against a dead server must time out"
      | exception Rmem.Status.Timeout -> ());
      Cluster.Node.set_down d.Rig.node1 false;
      Cluster.Node.transmit d.Rig.node1
        ~dst:(Cluster.Node.addr d.Rig.node0)
        (Rmem.Wire.encode
           (Rmem.Wire.Cas_reply
              { status = Rmem.Status.Ok; reqid = 1; witness = 0l }));
      (* Survives only if the straggler was dropped. *)
      Sim.Proc.wait (Sim.Time.us 300);
      let ok, _ =
        Rmem.Remote_memory.cas_wait d.Rig.rmem0 desc ~doff:0 ~old_value:0l
          ~new_value:1l ()
      in
      check_bool "endpoint still functional" true ok)

let suite =
  [
    Alcotest.test_case "vclock orders" `Quick vclock_orders;
    Alcotest.test_case "vclock ragged lengths" `Quick vclock_ragged_lengths;
    QCheck_alcotest.to_alcotest vclock_join_is_lub;
    QCheck_alcotest.to_alcotest vclock_compare_matches_leq;
    QCheck_alcotest.to_alcotest vclock_tick_strictly_increases;
    QCheck_alcotest.to_alcotest vclock_join_is_monotone;
    Alcotest.test_case "schedule certificates round trip" `Quick
      schedule_roundtrip;
    Alcotest.test_case "notify-storm flagged" `Quick notify_storm_flagged;
    Alcotest.test_case "notify-storm spares conditional" `Quick
      notify_storm_spares_conditional;
    Alcotest.test_case "unbounded-retry flagged" `Quick
      unbounded_retry_flagged;
    Alcotest.test_case "backed-off retry clean" `Quick backoff_retry_clean;
    Alcotest.test_case "racy workload flagged" `Quick racy_flagged;
    Alcotest.test_case "producer/consumer clean" `Quick
      producer_consumer_clean;
    Alcotest.test_case "kv store clean" `Quick kv_store_clean;
    Alcotest.test_case "fence sensitivity" `Quick fence_sensitivity;
    Alcotest.test_case "name service lint" `Quick name_service_lint;
    Alcotest.test_case "nacked write surfaces" `Quick nacked_write_surfaces;
    Alcotest.test_case "fence raises on nack" `Quick fence_raises_on_nack;
    Alcotest.test_case "mismatched reply fails request" `Quick
      mismatched_reply_fails_request;
    Alcotest.test_case "late reply after timeout ignored" `Quick
      late_reply_after_timeout_ignored;
  ]

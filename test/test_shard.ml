(* The scale-out fabric and the sharded name service. *)

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool

(* ---------------- Fabric: Clos / fat-tree routing ---------------- *)

(* Cross-fabric remote memory: every (src, dst) pair on a small Clos
   must deliver — multi-hop forwarding, deterministic routes, no
   drops. *)
let test_clos_delivers () =
  let topology = Atm.Network.Clos { spines = 2; leaves = 3; hosts_per_leaf = 2 } in
  let testbed = Cluster.Testbed.create ~topology ~nodes:6 () in
  let rmems =
    Array.init 6 (fun i -> Rmem.Remote_memory.attach (Cluster.Testbed.node testbed i))
  in
  Cluster.Testbed.run testbed (fun () ->
      Array.iteri
        (fun j _ ->
          let dst_node = Cluster.Testbed.node testbed j in
          let space = Cluster.Node.new_address_space dst_node in
          let seg =
            Rmem.Remote_memory.export rmems.(j) ~space ~base:0 ~len:4096
              ~rights:Rmem.Rights.all
              ~name:(Printf.sprintf "clos.%d" j)
              ()
          in
          Array.iteri
            (fun i _ ->
              if i <> j then begin
                let desc =
                  Rmem.Remote_memory.import rmems.(i)
                    ~remote:(Cluster.Node.addr dst_node)
                    ~segment_id:(Rmem.Segment.id seg)
                    ~generation:(Rmem.Segment.generation seg)
                    ~size:4096 ~rights:Rmem.Rights.all ()
                in
                let payload =
                  Bytes.of_string (Printf.sprintf "hop %d->%d" i j)
                in
                Rmem.Remote_memory.write rmems.(i) desc ~off:(i * 64) payload;
                Rmem.Remote_memory.fence rmems.(i) desc;
                let got =
                  Cluster.Address_space.read space ~addr:(i * 64)
                    ~len:(Bytes.length payload)
                in
                checkb (Printf.sprintf "%d->%d delivered" i j) true
                  (Bytes.equal got payload)
              end)
            rmems)
        rmems);
  let net = Cluster.Testbed.network testbed in
  let switches = Atm.Network.switches net in
  check Alcotest.int "leaves + spines" 5 (List.length switches);
  List.iter
    (fun s ->
      check Alcotest.int
        (Printf.sprintf "switch %s clean" (Atm.Switch.name s))
        0 (Atm.Switch.drops s))
    switches

let test_fat_tree_delivers () =
  let topology = Atm.Network.Fat_tree { k = 4 } in
  let testbed = Cluster.Testbed.create ~topology ~nodes:16 () in
  let src = 0 and dst = 15 (* opposite pods: the full 5-hop path *) in
  let rmem_src = Rmem.Remote_memory.attach (Cluster.Testbed.node testbed src) in
  let rmem_dst = Rmem.Remote_memory.attach (Cluster.Testbed.node testbed dst) in
  Cluster.Testbed.run testbed (fun () ->
      let dst_node = Cluster.Testbed.node testbed dst in
      let space = Cluster.Node.new_address_space dst_node in
      let seg =
        Rmem.Remote_memory.export rmem_dst ~space ~base:0 ~len:4096
          ~rights:Rmem.Rights.all ~name:"ft" ()
      in
      let desc =
        Rmem.Remote_memory.import rmem_src
          ~remote:(Cluster.Node.addr dst_node)
          ~segment_id:(Rmem.Segment.id seg)
          ~generation:(Rmem.Segment.generation seg)
          ~size:4096 ~rights:Rmem.Rights.all ()
      in
      let payload = Bytes.of_string "across the core" in
      Rmem.Remote_memory.write rmem_src desc ~off:0 payload;
      Rmem.Remote_memory.fence rmem_src desc;
      checkb "payload crossed the core" true
        (Bytes.equal payload
           (Cluster.Address_space.read space ~addr:0 ~len:(Bytes.length payload))));
  let switches = Atm.Network.switches (Cluster.Testbed.network testbed) in
  check Alcotest.int "4 pods x (2+2) + 4 cores" 20 (List.length switches);
  List.iter
    (fun s -> check Alcotest.int "no switch drops" 0 (Atm.Switch.drops s))
    switches

(* A frame for a host that exists in no route table drops at the switch
   with a counter, never an exception. *)
let test_unknown_destination_drops () =
  let topology = Atm.Network.Clos { spines = 1; leaves = 2; hosts_per_leaf = 2 } in
  let testbed = Cluster.Testbed.create ~topology ~nodes:4 () in
  let rmem0 = Rmem.Remote_memory.attach (Cluster.Testbed.node testbed 0) in
  Cluster.Testbed.run testbed (fun () ->
      let desc =
        Rmem.Remote_memory.import rmem0 ~remote:(Atm.Addr.of_int 9)
          ~segment_id:7 ~generation:(Rmem.Generation.of_int 1) ~size:64
          ~rights:Rmem.Rights.all ()
      in
      Rmem.Remote_memory.write rmem0 desc ~off:0 (Bytes.make 8 'x'));
  let dropped =
    List.fold_left
      (fun acc s -> acc + Atm.Switch.drops s)
      0
      (Atm.Network.switches (Cluster.Testbed.network testbed))
  in
  checkb "dropped at a switch" true (dropped > 0)

(* 200+ nodes: the testbed's hash-indexed address lookup and the Clos
   fabric's linear link count keep construction and a cross-fabric
   round trip tractable — the O(n) scan regression gate. *)
let test_scale_200_nodes () =
  let nodes = 256 in
  let topology =
    Atm.Network.Clos { spines = 4; leaves = 16; hosts_per_leaf = 16 }
  in
  let testbed = Cluster.Testbed.create ~topology ~nodes () in
  check Alcotest.int "size" nodes (Cluster.Testbed.size testbed);
  for i = 0 to nodes - 1 do
    match Cluster.Testbed.node_of_addr testbed (Atm.Addr.of_int i) with
    | None -> Alcotest.failf "node_of_addr missed %d" i
    | Some node ->
        if Atm.Addr.to_int (Cluster.Node.addr node) <> i then
          Alcotest.failf "node_of_addr %d resolved to the wrong node" i
  done;
  checkb "unknown address misses" true
    (Cluster.Testbed.node_of_addr testbed (Atm.Addr.of_int nodes) = None);
  (* Links grow linearly (hosts + 2 * leaves * spines trunks), not like
     the mesh's n^2. *)
  let links = Atm.Network.links (Cluster.Testbed.network testbed) in
  check Alcotest.int "link count" ((2 * nodes) + (2 * 16 * 4))
    (List.length links);
  let rmem_a = Rmem.Remote_memory.attach (Cluster.Testbed.node testbed 3) in
  let rmem_b = Rmem.Remote_memory.attach (Cluster.Testbed.node testbed 251) in
  Cluster.Testbed.run testbed (fun () ->
      let owner = Cluster.Testbed.node testbed 251 in
      let space = Cluster.Node.new_address_space owner in
      let seg =
        Rmem.Remote_memory.export rmem_b ~space ~base:0 ~len:4096
          ~rights:Rmem.Rights.all ~name:"far" ()
      in
      let desc =
        Rmem.Remote_memory.import rmem_a
          ~remote:(Cluster.Node.addr owner)
          ~segment_id:(Rmem.Segment.id seg)
          ~generation:(Rmem.Segment.generation seg)
          ~size:4096 ~rights:Rmem.Rights.all ()
      in
      Rmem.Remote_memory.write rmem_a desc ~off:0 (Bytes.of_string "edge to edge");
      Rmem.Remote_memory.fence rmem_a desc;
      checkb "delivered across 16 leaves" true
        (Bytes.equal
           (Bytes.of_string "edge to edge")
           (Cluster.Address_space.read space ~addr:0 ~len:12)))

(* ---------------- Shard map: partition totality ---------------- *)

let map_entry ~lo ~hi =
  {
    Names.Shardmap.lo;
    hi;
    node = 2 + (lo land 1);
    segment_id = 3 + (lo land 7);
    generation = Rmem.Generation.of_int (1 + (hi mod 5));
    slots = 64;
  }

(* Any ascending set of cut points partitions the bucket space into a
   total map. *)
let entries_of_cuts cuts =
  let cuts =
    List.sort_uniq compare
      (List.filter (fun c -> c >= 0 && c < Names.Shardmap.buckets - 1) cuts)
  in
  let rec go lo = function
    | [] -> [ map_entry ~lo ~hi:(Names.Shardmap.buckets - 1) ]
    | c :: rest -> map_entry ~lo ~hi:c :: go (c + 1) rest
  in
  go 0 cuts

let qcheck_partition_totality =
  QCheck.Test.make
    ~name:"shard map: cut-point partitions are total and round-trip"
    ~count:200
    QCheck.(list_of_size Gen.(0 -- 12) (int_bound (Names.Shardmap.buckets - 2)))
    (fun cuts ->
      let entries = entries_of_cuts cuts in
      let m = { Names.Shardmap.epoch = 7; entries } in
      Names.Shardmap.total entries
      && (match Names.Shardmap.decode (Names.Shardmap.encode m) with
         | Some m' -> m' = m
         | None -> false)
      && List.for_all
           (fun b ->
             match Names.Shardmap.owner m b with
             | Some e -> e.Names.Shardmap.lo <= b && b <= e.Names.Shardmap.hi
             | None -> false)
           [ 0; 1; 42; 32767; 32768; Names.Shardmap.buckets - 1 ])

let test_shardmap_rejects_torn () =
  let m =
    { Names.Shardmap.epoch = 3; entries = entries_of_cuts [ 100; 5000 ] }
  in
  let image = Names.Shardmap.encode m in
  (* Epoch zero = the doorbell has not rung: unreadable. *)
  let torn = Bytes.copy image in
  Bytes.set_int32_le torn 0 0l;
  checkb "epoch 0 rejected" true (Names.Shardmap.decode torn = None);
  (* A corrupt entry count tears the ranges. *)
  let torn = Bytes.copy image in
  Bytes.set_int32_le torn 4 2l;
  checkb "short count rejected" true (Names.Shardmap.decode torn = None);
  checkb "intact accepted" true (Names.Shardmap.decode image <> None)

(* ---------------- Registry: moved tombstones keep chains ------------ *)

let test_tombstone_keeps_chains () =
  let space = Cluster.Address_space.create ~asid:99 () in
  let reg = Names.Registry.create ~space ~base:0 ~slots:8 in
  (* Two names whose first probe collides. *)
  let collides a b =
    Names.Record.fnv_hash a land 7 = Names.Record.fnv_hash b land 7
  in
  let name_of i = Printf.sprintf "c%d" i in
  let a, b =
    let rec find i =
      let rec inner j =
        if j > 500 then find (i + 1)
        else if collides (name_of i) (name_of j) then (name_of i, name_of j)
        else inner (j + 1)
      in
      inner (i + 1)
    in
    find 0
  in
  let record name =
    Names.Record.make ~name ~node:1 ~segment_id:7
      ~generation:(Rmem.Generation.of_int 1) ~size:64
      ~rights:Rmem.Rights.read_only
  in
  checkb "a inserted" true (Names.Registry.insert reg (record a) = Ok (Names.Record.fnv_hash a land 7));
  (match Names.Registry.insert reg (record b) with
  | Ok _ -> ()
  | Error `Full -> Alcotest.fail "b insert");
  (* Tombstone the chain head: the collider must stay reachable. *)
  checkb "tombstoned" true (Names.Registry.tombstone reg a <> None);
  checkb "a gone" true (Names.Registry.lookup reg a = None);
  checkb "b survives past the tombstone" true
    (match Names.Registry.lookup reg b with
    | Some (r, _) -> String.equal r.Names.Record.name b
    | None -> false);
  check Alcotest.int "live" 1 (Names.Registry.live reg);
  checkb "well-formed" true (Names.Registry.well_formed reg);
  (* Reinsert reuses the tombstone slot without breaking the chain. *)
  (match Names.Registry.insert reg (record a) with
  | Ok index -> check Alcotest.int "slot reused" (Names.Record.fnv_hash a land 7) index
  | Error `Full -> Alcotest.fail "reinsert");
  checkb "both live again" true
    (Names.Registry.lookup reg a <> None && Names.Registry.lookup reg b <> None)

(* ---------------- Sharded name service, end to end ------------------ *)

(* Roles on a 6-node Clos: 0 = map host, 1 = reconciler, 2-3 = shard
   hosts, 4-5 = clients. *)
let sharded_rig ?policy ?(slots = 64) () =
  let topology = Atm.Network.Clos { spines = 2; leaves = 3; hosts_per_leaf = 2 } in
  let testbed = Cluster.Testbed.create ~topology ~nodes:6 () in
  let rmems =
    Array.init 6 (fun i -> Rmem.Remote_memory.attach (Cluster.Testbed.node testbed i))
  in
  let setup () =
    let clerks = Array.init 6 (fun i -> Names.Clerk.create rmems.(i)) in
    let reconciler =
      Names.Reconciler.create ~slots ~max_clients:6 ?policy
        ~map_clerk:clerks.(0)
        ~hosts:[| clerks.(2); clerks.(3) |]
        clerks.(1)
    in
    Names.Reconciler.serve_registrations reconciler;
    let shard_clerk i =
      Names.Shard_clerk.create ~map_hint:(Atm.Addr.of_int 0)
        ~reconciler_hint:(Atm.Addr.of_int 1) clerks.(i)
    in
    (clerks, reconciler, shard_clerk 4, shard_clerk 5)
  in
  (testbed, setup)

let svc_name i = Printf.sprintf "svc.%04d" i

let svc_record i =
  Names.Record.make ~name:(svc_name i) ~node:(2 + (i mod 2))
    ~segment_id:(100 + i) ~generation:(Rmem.Generation.of_int 1) ~size:4096
    ~rights:Rmem.Rights.read_only

let test_sharded_register_lookup () =
  let testbed, setup = sharded_rig () in
  Cluster.Testbed.run testbed (fun () ->
      let _, reconciler, sc4, sc5 = setup () in
      for i = 0 to 39 do
        Names.Shard_clerk.register (if i mod 2 = 0 then sc4 else sc5) (svc_record i)
      done;
      (* Every name resolves, with its coordinates, from either client. *)
      for i = 0 to 39 do
        let r = Names.Shard_clerk.lookup sc5 (svc_name i) in
        check Alcotest.int "segment id" (100 + i) r.Names.Record.segment_id;
        check Alcotest.int "node" (2 + (i mod 2)) r.Names.Record.node
      done;
      checkb "absent name raises under a current epoch" true
        (match Names.Shard_clerk.lookup sc4 "no.such.name" with
        | exception Names.Clerk.Name_not_found _ -> true
        | _ -> false);
      check Alcotest.int "no lost registrations" 40
        (Names.Reconciler.live reconciler);
      checkb "mirrors well-formed" true (Names.Reconciler.well_formed reconciler);
      check Alcotest.int "single publish so far" 1
        (Names.Reconciler.epoch reconciler);
      checkb "doorbell consumed at map host" true
        (Names.Reconciler.doorbells reconciler >= 1));
  (* The whole campaign rode the fabric without a drop. *)
  List.iter
    (fun s -> check Alcotest.int "no switch drops" 0 (Atm.Switch.drops s))
    (Atm.Network.switches (Cluster.Testbed.network testbed))

(* A rebalance in the middle of a client's cached-epoch window: the
   client heals through the forwarding tombstone — a local map patch,
   no refetch from the map host — and a merge (which revokes the
   absorbed segment) heals through the stale-descriptor refetch path. *)
let test_stale_epoch_heal () =
  let testbed, setup = sharded_rig () in
  Cluster.Testbed.run testbed (fun () ->
      let _, reconciler, sc4, sc5 = setup () in
      for i = 0 to 39 do
        Names.Shard_clerk.register sc4 (svc_record i)
      done;
      (* Warm client 5's map cache at epoch 1. *)
      ignore (Names.Shard_clerk.lookup sc5 (svc_name 0) : Names.Record.t);
      check Alcotest.int "cached epoch" 1 (Names.Shard_clerk.epoch sc5);
      let moved_i, stayed_i =
        let bucket i = Names.Shardmap.bucket_of_name (svc_name i) in
        let find p =
          let rec go i = if p (bucket i) then i else go (i + 1) in
          go 0
        in
        (find (fun b -> b > 32767), find (fun b -> b <= 32767))
      in
      (* Mid-campaign rebalance: split the only shard at its midpoint. *)
      (match Names.Reconciler.split reconciler 0 with
      | Some (_ : int) -> ()
      | None -> Alcotest.fail "split refused");
      check Alcotest.int "two shards" 2 (Names.Reconciler.shard_count reconciler);
      checkb "records migrated" true (Names.Reconciler.moves reconciler > 0);
      (* The migrated name heals from the forwarding tombstone alone:
         the cached map is patched in place, the map host untouched. *)
      let r = Names.Shard_clerk.lookup sc5 (svc_name moved_i) in
      check Alcotest.int "migrated record intact" (100 + moved_i)
        r.Names.Record.segment_id;
      checkb "heal went through a forward patch" true
        (Names.Shard_clerk.forward_patches sc5 > 0);
      check Alcotest.int "no map refetch for the split heal" 0
        (Names.Shard_clerk.stale_refetches sc5);
      check Alcotest.int "new epoch adopted" 2 (Names.Shard_clerk.epoch sc5);
      checkb "convergence log saw epoch 2" true
        (List.exists (fun (e, _) -> e = 2) (Names.Shard_clerk.refreshes sc5));
      (* A name that did not move resolves without further refetches. *)
      let before = Names.Shard_clerk.stale_refetches sc5 in
      ignore (Names.Shard_clerk.lookup sc5 (svc_name stayed_i) : Names.Record.t);
      check Alcotest.int "no refetch for a resident name" before
        (Names.Shard_clerk.stale_refetches sc5);
      check Alcotest.int "nothing lost across the split" 40
        (Names.Reconciler.live reconciler);
      checkb "mirrors well-formed" true (Names.Reconciler.well_formed reconciler);
      (* Client 4 adopts epoch 2, then a merge revokes the absorbed
         segment: its stale descriptor fails cleanly and heals by map
         refetch. *)
      ignore (Names.Shard_clerk.lookup sc4 (svc_name moved_i) : Names.Record.t);
      check Alcotest.int "client 4 at epoch 2" 2 (Names.Shard_clerk.epoch sc4);
      (match Names.Reconciler.merge reconciler with
      | Some (_, _) -> ()
      | None -> Alcotest.fail "merge refused");
      let r = Names.Shard_clerk.lookup sc4 (svc_name moved_i) in
      check Alcotest.int "record found after merge" (100 + moved_i)
        r.Names.Record.segment_id;
      check Alcotest.int "client 4 at epoch 3" 3 (Names.Shard_clerk.epoch sc4);
      check Alcotest.int "nothing lost across the merge" 40
        (Names.Reconciler.live reconciler))

(* Clerk convergence under 10% frame loss: registrations, a mid-run
   split, and lookups all complete through the recovery machinery, with
   no lost and no stale-served registrations. *)
let test_loss_convergence () =
  (* A frame crosses up to four judged links on this Clos, so at 10%
     per-link loss a whole round trip survives only ~2/3 of the time;
     20 attempts push per-op give-up below 1e-4 across the run's
     hundreds of policied operations. *)
  let policy =
    Rmem.Recovery.policy ~attempts:20 ~timeout:(Sim.Time.ms 2)
      ~backoff:(Sim.Time.us 200) ()
  in
  let testbed, setup = sharded_rig ~policy () in
  let plan = Faults.Plan.make ~link:(Faults.Plan.link_faults ~loss:0.1 ()) () in
  let plane = Faults.Plane.create ~plan ~seed:77 testbed in
  Cluster.Testbed.run testbed (fun () ->
      let clerks, reconciler, sc4, sc5 = setup () in
      Array.iter
        (fun c -> Names.Clerk.set_probe_timeout c (Some (Sim.Time.ms 2)))
        clerks;
      Names.Shard_clerk.set_recovery sc4 (Some policy);
      Names.Shard_clerk.set_recovery sc5 (Some policy);
      for i = 0 to 23 do
        Names.Shard_clerk.register ~attempts:8
          (if i mod 2 = 0 then sc4 else sc5)
          (svc_record i)
      done;
      check Alcotest.int "no lost registrations" 24
        (Names.Reconciler.live reconciler);
      (match Names.Reconciler.split reconciler 0 with
      | Some (_ : int) -> ()
      | None -> Alcotest.fail "split refused");
      (* Every record is served, at its registered generation, by both
         clients, over a lossy fabric and across the rebalance. *)
      for i = 0 to 23 do
        List.iter
          (fun sc ->
            let r = Names.Shard_clerk.lookup sc (svc_name i) in
            check Alcotest.int "segment id" (100 + i) r.Names.Record.segment_id;
            checkb "generation current" true
              (Rmem.Generation.equal r.Names.Record.generation
                 (Rmem.Generation.of_int 1)))
          [ sc4; sc5 ]
      done;
      checkb "mirrors well-formed" true (Names.Reconciler.well_formed reconciler);
      checkb "the plane actually injected faults" true
        (Faults.Plane.event_count plane > 0));
  Faults.Plane.uninstall plane

let suite =
  [
    ("clos: all pairs deliver", `Quick, test_clos_delivers);
    ("fat tree: cross-pod delivery", `Quick, test_fat_tree_delivers);
    ("unknown destination drops at switch", `Quick, test_unknown_destination_drops);
    ("200+ node testbed regression", `Quick, test_scale_200_nodes);
    QCheck_alcotest.to_alcotest qcheck_partition_totality;
    ("shard map rejects torn images", `Quick, test_shardmap_rejects_torn);
    ("moved tombstones keep probe chains", `Quick, test_tombstone_keeps_chains);
    ("sharded register/lookup end to end", `Quick, test_sharded_register_lookup);
    ("stale epoch heals across split and merge", `Quick, test_stale_epoch_heal);
    ("convergence under 10% loss", `Quick, test_loss_convergence);
  ]

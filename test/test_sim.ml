(* Unit and property tests for the simulation engine. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------------- Time ---------------- *)

let time_conversions () =
  check_int "us" 1_000 (Sim.Time.us 1);
  check_int "ms" 1_000_000 (Sim.Time.ms 1);
  check_int "sec" 1_000_000_000 (Sim.Time.sec 1);
  Alcotest.(check (float 1e-9)) "to_us" 1.5 (Sim.Time.to_us (Sim.Time.ns 1500));
  check_int "of_us_float rounds" 1_500 (Sim.Time.of_us_float 1.5);
  check_int "scale" 3_000 (Sim.Time.scale (Sim.Time.us 2) 1.5);
  check_bool "ordering" true Sim.Time.(us 1 < ms 1)

let time_pp () =
  Alcotest.(check string) "ns" "999ns" (Sim.Time.to_string 999);
  Alcotest.(check string) "us" "1.50us" (Sim.Time.to_string 1500);
  Alcotest.(check string) "ms" "2.000ms" (Sim.Time.to_string 2_000_000)

(* ---------------- Engine ---------------- *)

let engine_fifo_same_time () =
  let engine = Sim.Engine.create () in
  let order = ref [] in
  let note tag () = order := tag :: !order in
  Sim.Engine.schedule engine (note "a");
  Sim.Engine.schedule engine (note "b");
  Sim.Engine.schedule ~after:(Sim.Time.us 1) engine (note "d");
  Sim.Engine.schedule engine (note "c");
  Sim.Engine.run engine;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c"; "d" ]
    (List.rev !order)

let engine_time_advances () =
  let engine = Sim.Engine.create () in
  let seen = ref [] in
  List.iter
    (fun delay ->
      Sim.Engine.schedule ~after:delay engine (fun () ->
          seen := Sim.Engine.now engine :: !seen))
    [ Sim.Time.us 5; Sim.Time.us 1; Sim.Time.us 3 ];
  Sim.Engine.run engine;
  Alcotest.(check (list int)) "fires in time order"
    [ Sim.Time.us 1; Sim.Time.us 3; Sim.Time.us 5 ]
    (List.rev !seen)

let engine_until_limit () =
  let engine = Sim.Engine.create () in
  let fired = ref 0 in
  Sim.Engine.schedule ~after:(Sim.Time.us 10) engine (fun () -> incr fired);
  Sim.Engine.schedule ~after:(Sim.Time.us 30) engine (fun () -> incr fired);
  Sim.Engine.run ~until:(Sim.Time.us 20) engine;
  check_int "only first fired" 1 !fired;
  check_int "clock at limit" (Sim.Time.us 20) (Sim.Engine.now engine);
  Sim.Engine.run engine;
  check_int "rest fired" 2 !fired

let engine_no_past_events () =
  let engine = Sim.Engine.create () in
  Sim.Engine.schedule ~after:(Sim.Time.us 5) engine (fun () ->
      Alcotest.check_raises "past" (Invalid_argument "Engine.schedule_at: event in the past")
        (fun () -> Sim.Engine.schedule_at engine Sim.Time.zero (fun () -> ())));
  Sim.Engine.run engine

let engine_stop () =
  let engine = Sim.Engine.create () in
  let fired = ref 0 in
  Sim.Engine.schedule engine (fun () ->
      incr fired;
      Sim.Engine.stop engine);
  Sim.Engine.schedule ~after:(Sim.Time.us 1) engine (fun () -> incr fired);
  Sim.Engine.run engine;
  check_int "stopped after first" 1 !fired

(* ---------------- Heap property ---------------- *)

let heap_pop_sorted =
  QCheck.Test.make ~name:"heap pops in (time, seq) order" ~count:200
    QCheck.(list (int_bound 1_000_000))
    (fun times ->
      let heap = Sim.Heap.create () in
      List.iteri (fun seq time -> Sim.Heap.push heap ~time ~seq ()) times;
      let rec drain previous =
        match Sim.Heap.pop heap with
        | None -> true
        | Some entry ->
            let key = (entry.Sim.Heap.time, entry.Sim.Heap.seq) in
            if compare previous key <= 0 then drain key else false
      in
      drain (min_int, min_int))

let heap_same_time_seq_order =
  QCheck.Test.make ~name:"same-key entries pop in seq order" ~count:200
    QCheck.(pair (int_bound 3) (list_of_size Gen.(2 -- 30) (int_bound 3)))
    (fun (min_time, times) ->
      (* Only a handful of distinct times, so same-time runs are long;
         seqs are assigned in push order and must come back ascending
         within every run. *)
      let heap = Sim.Heap.create () in
      List.iteri (fun seq time -> Sim.Heap.push heap ~time ~seq ()) times;
      Sim.Heap.push heap ~time:min_time ~seq:(List.length times) ();
      let rec drain previous =
        match Sim.Heap.pop heap with
        | None -> true
        | Some e ->
            if
              e.Sim.Heap.time > fst previous
              || (e.Sim.Heap.time = fst previous
                 && e.Sim.Heap.seq > snd previous)
            then drain (e.Sim.Heap.time, e.Sim.Heap.seq)
            else false
      in
      drain (min_int, min_int))

let heap_entries_at_min_and_remove () =
  let heap = Sim.Heap.create () in
  check_bool "empty min set" true (Sim.Heap.entries_at_min heap = []);
  List.iter
    (fun (time, seq) -> Sim.Heap.push heap ~time ~seq seq)
    [ (5, 0); (3, 1); (5, 2); (3, 3); (3, 4) ];
  let seqs entries = List.map (fun e -> e.Sim.Heap.seq) entries in
  Alcotest.(check (list int))
    "all min-time entries, ascending seq" [ 1; 3; 4 ]
    (seqs (Sim.Heap.entries_at_min heap));
  check_int "peek unchanged" 5 (Sim.Heap.length heap);
  (match Sim.Heap.remove heap ~seq:3 with
  | Some e -> check_int "removed the right payload" 3 e.Sim.Heap.payload
  | None -> Alcotest.fail "seq 3 should be present");
  check_bool "absent seq" true (Sim.Heap.remove heap ~seq:99 = None);
  Alcotest.(check (list int))
    "min set after removal" [ 1; 4 ]
    (seqs (Sim.Heap.entries_at_min heap));
  let rec drain acc =
    match Sim.Heap.pop heap with
    | None -> List.rev acc
    | Some e -> drain (e.Sim.Heap.seq :: acc)
  in
  Alcotest.(check (list int))
    "heap invariant survives removal" [ 1; 4; 0; 2 ] (drain [])

(* ---------------- Same-instant choice points ---------------- *)

let engine_choice_points () =
  let engine = Sim.Engine.create () in
  let order = ref [] in
  let note tag () = order := tag :: !order in
  Sim.Engine.schedule engine (note "a");
  Sim.Engine.schedule engine (note "b");
  Sim.Engine.schedule engine (note "c");
  (match Sim.Engine.next_enabled engine with
  | Some choice ->
      check_int "three enabled" 3 (List.length choice.Sim.Engine.enabled);
      check_int "at time zero" 0 choice.Sim.Engine.at
  | None -> Alcotest.fail "expected a choice point");
  (* A scheduler that reverses FIFO must reverse the firing order. *)
  Sim.Engine.set_scheduler engine
    (Some
       (fun choice ->
         List.nth choice.Sim.Engine.enabled
           (List.length choice.Sim.Engine.enabled - 1)));
  Sim.Engine.run engine;
  Alcotest.(check (list string)) "reversed" [ "c"; "b"; "a" ]
    (List.rev !order)

let engine_step_seq_validates () =
  let engine = Sim.Engine.create () in
  let fired = ref [] in
  Sim.Engine.schedule engine (fun () -> fired := "a" :: !fired);
  Sim.Engine.schedule engine (fun () -> fired := "b" :: !fired);
  Sim.Engine.schedule ~after:(Sim.Time.us 1) engine (fun () ->
      fired := "late" :: !fired);
  let enabled =
    match Sim.Engine.next_enabled engine with
    | Some c -> c.Sim.Engine.enabled
    | None -> Alcotest.fail "expected a choice point"
  in
  check_int "two enabled now" 2 (List.length enabled);
  (* The later event exists but is not enabled at this instant. *)
  check_bool "not-enabled seq rejected" true
    (try
       ignore (Sim.Engine.step_seq engine 2);
       false
     with Invalid_argument _ -> true);
  check_bool "fired second first" true
    (Sim.Engine.step_seq engine (List.nth enabled 1));
  Sim.Engine.run engine;
  Alcotest.(check (list string)) "order" [ "b"; "a"; "late" ]
    (List.rev !fired)

let explicit_fifo_scheduler_is_default () =
  (* The first-enabled scheduler must replay the default order exactly. *)
  let trace scheduler =
    let engine = Sim.Engine.create () in
    (match scheduler with
    | true -> Sim.Engine.set_scheduler engine (Some (fun c -> List.hd c.Sim.Engine.enabled))
    | false -> ());
    let order = ref [] in
    let note tag () = order := tag :: !order in
    Sim.Proc.spawn ~name:"p1" engine (fun () ->
        note "p1-start" ();
        Sim.Proc.yield ();
        note "p1-mid" ();
        Sim.Proc.wait (Sim.Time.us 2);
        note "p1-end" ());
    Sim.Proc.spawn ~name:"p2" engine (fun () ->
        note "p2-start" ();
        Sim.Proc.wait (Sim.Time.us 2);
        note "p2-end" ());
    Sim.Engine.schedule ~after:(Sim.Time.us 1) engine (note "timer");
    Sim.Engine.run engine;
    List.rev !order
  in
  Alcotest.(check (list string))
    "identical event order" (trace false) (trace true)

(* ---------------- Deadlock reporting ---------------- *)

let engine_deadlock_names_waiters () =
  let engine = Sim.Engine.create () in
  Sim.Proc.spawn ~name:"stuck" engine (fun () ->
      ignore
        (Sim.Proc.suspend_on ~resource:"ivar \"never\""
           (fun (_ : int -> unit) -> ())));
  Sim.Proc.spawn ~name:"server" engine (fun () ->
      ignore
        (Sim.Proc.suspend_on ~daemon:true ~resource:"request queue"
           (fun (_ : int -> unit) -> ())));
  match Sim.Engine.run engine with
  | () -> Alcotest.fail "expected Deadlock"
  | exception Sim.Engine.Deadlock (_, blocked) ->
      check_int "one non-daemon waiter" 1 (List.length blocked);
      let b = List.hd blocked in
      Alcotest.(check string) "process named" "stuck" b.Sim.Engine.process;
      Alcotest.(check string)
        "resource named" "ivar \"never\"" b.Sim.Engine.resource;
      let report = Sim.Engine.deadlock_report blocked in
      let contains needle =
        let n = String.length needle and h = String.length report in
        let rec scan i =
          i + n <= h && (String.sub report i n = needle || scan (i + 1))
        in
        scan 0
      in
      check_bool "report names the process" true (contains "stuck");
      check_bool "report names the resource" true (contains "ivar \"never\"")

let engine_daemons_never_deadlock () =
  let engine = Sim.Engine.create () in
  Sim.Proc.spawn ~name:"rx-loop" engine (fun () ->
      ignore
        (Sim.Proc.suspend_on ~daemon:true ~resource:"nic"
           (fun (_ : int -> unit) -> ())));
  Sim.Engine.run engine;
  check_int "daemon listed only on request" 0
    (List.length (Sim.Engine.blocked engine));
  check_int "with daemons included" 1
    (List.length (Sim.Engine.blocked ~daemons:true engine))

(* ---------------- Proc ---------------- *)

let proc_wait_accumulates () =
  let engine = Sim.Engine.create () in
  let result =
    Sim.Proc.run engine (fun () ->
        Sim.Proc.wait (Sim.Time.us 10);
        Sim.Proc.wait (Sim.Time.us 5);
        Sim.Engine.now engine)
  in
  check_int "waited 15us" (Sim.Time.us 15) result

let proc_suspend_resume () =
  let engine = Sim.Engine.create () in
  let resumer = ref None in
  Sim.Proc.spawn engine (fun () ->
      Sim.Proc.wait (Sim.Time.us 3);
      match !resumer with Some resume -> resume 42 | None -> ());
  let result =
    Sim.Proc.run engine (fun () ->
        Sim.Proc.suspend (fun resume -> resumer := Some resume))
  in
  check_int "resumed with value" 42 result

let proc_run_deadlock () =
  let engine = Sim.Engine.create () in
  check_bool "deadlock raised" true
    (try
       ignore
         (Sim.Proc.run engine (fun () ->
              Sim.Proc.suspend (fun (_ : int -> unit) -> ())));
       false
     with Sim.Engine.Deadlock _ -> true)

let proc_exception_propagates () =
  let engine = Sim.Engine.create () in
  check_bool "exception surfaced" true
    (try
       let () = Sim.Proc.run engine (fun () -> failwith "boom") in
       false
     with Failure msg -> String.equal msg "boom")

(* ---------------- Ivar ---------------- *)

let ivar_basics () =
  let engine = Sim.Engine.create () in
  let ivar = Sim.Ivar.create () in
  check_bool "empty" false (Sim.Ivar.is_full ivar);
  Sim.Proc.spawn engine (fun () ->
      Sim.Proc.wait (Sim.Time.us 2);
      Sim.Ivar.fill ivar "done");
  let value = Sim.Proc.run engine (fun () -> Sim.Ivar.read ivar) in
  Alcotest.(check string) "value" "done" value;
  check_bool "double fill rejected" true
    (not (Sim.Ivar.try_fill ivar "again"));
  Alcotest.check_raises "fill raises" (Invalid_argument "Ivar.fill: already full")
    (fun () -> Sim.Ivar.fill ivar "boom")

let ivar_multiple_readers () =
  let engine = Sim.Engine.create () in
  let ivar = Sim.Ivar.create () in
  let seen = ref [] in
  for i = 1 to 3 do
    Sim.Proc.spawn engine (fun () ->
        let v = Sim.Ivar.read ivar in
        seen := (i, v) :: !seen)
  done;
  Sim.Proc.spawn engine (fun () ->
      Sim.Proc.wait (Sim.Time.us 1);
      Sim.Ivar.fill ivar 7);
  Sim.Engine.run engine;
  Alcotest.(check (list (pair int int)))
    "all woken in blocking order"
    [ (1, 7); (2, 7); (3, 7) ]
    (List.rev !seen)

(* ---------------- Mailbox ---------------- *)

let mailbox_fifo () =
  let engine = Sim.Engine.create () in
  let mailbox = Sim.Mailbox.create () in
  let received = ref [] in
  Sim.Proc.spawn engine (fun () ->
      for _ = 1 to 3 do
        received := Sim.Mailbox.recv mailbox :: !received
      done);
  Sim.Proc.spawn engine (fun () ->
      Sim.Mailbox.send mailbox 1;
      Sim.Proc.wait (Sim.Time.us 1);
      Sim.Mailbox.send mailbox 2;
      Sim.Mailbox.send mailbox 3);
  Sim.Engine.run engine;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !received)

let mailbox_try_recv () =
  let mailbox = Sim.Mailbox.create () in
  Alcotest.(check (option int)) "empty" None (Sim.Mailbox.try_recv mailbox);
  Sim.Mailbox.send mailbox 9;
  Alcotest.(check (option int)) "one" (Some 9) (Sim.Mailbox.try_recv mailbox)

(* ---------------- Resource ---------------- *)

let resource_fifo_mutex () =
  let engine = Sim.Engine.create () in
  let resource = Sim.Resource.create () in
  let order = ref [] in
  for i = 1 to 3 do
    Sim.Proc.spawn engine (fun () ->
        Sim.Resource.with_resource resource (fun () ->
            order := i :: !order;
            Sim.Proc.wait (Sim.Time.us 10)))
  done;
  Sim.Engine.run engine;
  Alcotest.(check (list int)) "served in arrival order" [ 1; 2; 3 ]
    (List.rev !order);
  check_int "contended twice" 2 (Sim.Resource.contended resource);
  check_int "three acquisitions" 3 (Sim.Resource.acquisitions resource);
  check_int "holds serialized: 30us total" (Sim.Time.us 30)
    (Sim.Engine.now engine)

let resource_release_unheld () =
  let resource = Sim.Resource.create () in
  Alcotest.check_raises "release unheld"
    (Invalid_argument "Resource.release: not held") (fun () ->
      Sim.Resource.release resource)

(* ---------------- Prng ---------------- *)

let prng_deterministic () =
  let a = Sim.Prng.create 42 and b = Sim.Prng.create 42 in
  let sequence p = List.init 32 (fun _ -> Sim.Prng.int p 1000) in
  Alcotest.(check (list int)) "same seed, same stream" (sequence a) (sequence b)

let prng_split_independent () =
  let parent = Sim.Prng.create 1 in
  let child = Sim.Prng.split parent in
  let child_draws = List.init 8 (fun _ -> Sim.Prng.int child 1000) in
  let parent_draws = List.init 8 (fun _ -> Sim.Prng.int parent 1000) in
  check_bool "streams differ" true (child_draws <> parent_draws)

let prng_bounds =
  QCheck.Test.make ~name:"prng int stays in bounds" ~count:500
    QCheck.(pair (int_bound 1000) small_int)
    (fun (bound, seed) ->
      let bound = bound + 1 in
      let prng = Sim.Prng.create seed in
      let v = Sim.Prng.int prng bound in
      v >= 0 && v < bound)

let prng_float_range =
  QCheck.Test.make ~name:"prng float in [0,1)" ~count:500 QCheck.small_int
    (fun seed ->
      let prng = Sim.Prng.create seed in
      let f = Sim.Prng.float prng in
      f >= 0. && f < 1.)

let mailbox_readers_fifo () =
  let engine = Sim.Engine.create () in
  let mailbox = Sim.Mailbox.create () in
  let woken = ref [] in
  for i = 1 to 3 do
    Sim.Proc.spawn engine (fun () ->
        let v = Sim.Mailbox.recv mailbox in
        woken := (i, v) :: !woken)
  done;
  Sim.Proc.spawn engine (fun () ->
      Sim.Proc.wait (Sim.Time.us 1);
      List.iter (Sim.Mailbox.send mailbox) [ 10; 20; 30 ]);
  Sim.Engine.run engine;
  Alcotest.(check (list (pair int int)))
    "blocked readers served in order"
    [ (1, 10); (2, 20); (3, 30) ]
    (List.rev !woken)

let resource_exception_safe () =
  let engine = Sim.Engine.create () in
  let resource = Sim.Resource.create () in
  let second_ran = ref false in
  Sim.Proc.spawn engine (fun () ->
      try Sim.Resource.with_resource resource (fun () -> failwith "inside")
      with Failure _ -> ());
  Sim.Proc.spawn engine (fun () ->
      Sim.Resource.with_resource resource (fun () -> second_ran := true));
  Sim.Engine.run engine;
  check_bool "released despite the exception" true !second_ran;
  check_bool "free at the end" false (Sim.Resource.is_busy resource)

let engine_pending_counts () =
  let engine = Sim.Engine.create () in
  Sim.Engine.schedule engine (fun () -> ());
  Sim.Engine.schedule ~after:(Sim.Time.us 1) engine (fun () -> ());
  check_int "two pending" 2 (Sim.Engine.pending engine);
  ignore (Sim.Engine.step engine : bool);
  check_int "one left" 1 (Sim.Engine.pending engine)

let suite =
  [
    Alcotest.test_case "time conversions" `Quick time_conversions;
    Alcotest.test_case "mailbox readers FIFO" `Quick mailbox_readers_fifo;
    Alcotest.test_case "resource exception safety" `Quick resource_exception_safe;
    Alcotest.test_case "engine pending counts" `Quick engine_pending_counts;
    Alcotest.test_case "time pretty printing" `Quick time_pp;
    Alcotest.test_case "same-time events are FIFO" `Quick engine_fifo_same_time;
    Alcotest.test_case "time advances in order" `Quick engine_time_advances;
    Alcotest.test_case "run ~until honors limit" `Quick engine_until_limit;
    Alcotest.test_case "no events in the past" `Quick engine_no_past_events;
    Alcotest.test_case "stop halts the loop" `Quick engine_stop;
    Alcotest.test_case "proc wait accumulates" `Quick proc_wait_accumulates;
    Alcotest.test_case "proc suspend/resume" `Quick proc_suspend_resume;
    Alcotest.test_case "proc deadlock detected" `Quick proc_run_deadlock;
    Alcotest.test_case "proc exception propagates" `Quick proc_exception_propagates;
    Alcotest.test_case "ivar fill/read/double-fill" `Quick ivar_basics;
    Alcotest.test_case "ivar wakes all readers" `Quick ivar_multiple_readers;
    Alcotest.test_case "mailbox is FIFO" `Quick mailbox_fifo;
    Alcotest.test_case "mailbox try_recv" `Quick mailbox_try_recv;
    Alcotest.test_case "resource FIFO mutex" `Quick resource_fifo_mutex;
    Alcotest.test_case "resource release unheld" `Quick resource_release_unheld;
    Alcotest.test_case "prng determinism" `Quick prng_deterministic;
    Alcotest.test_case "prng split independence" `Quick prng_split_independent;
    Alcotest.test_case "heap entries_at_min and remove" `Quick
      heap_entries_at_min_and_remove;
    Alcotest.test_case "engine choice points" `Quick engine_choice_points;
    Alcotest.test_case "step_seq validates enabledness" `Quick
      engine_step_seq_validates;
    Alcotest.test_case "explicit FIFO scheduler is the default" `Quick
      explicit_fifo_scheduler_is_default;
    Alcotest.test_case "deadlock names blocked waiters" `Quick
      engine_deadlock_names_waiters;
    Alcotest.test_case "daemon waiters never deadlock" `Quick
      engine_daemons_never_deadlock;
    QCheck_alcotest.to_alcotest heap_pop_sorted;
    QCheck_alcotest.to_alcotest heap_same_time_seq_order;
    QCheck_alcotest.to_alcotest prng_bounds;
    QCheck_alcotest.to_alcotest prng_float_range;
  ]

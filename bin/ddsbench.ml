(* ddsbench — the distributed data-structure campaign: DX vs RPC vs
   hybrid for the hash table, ticket queue and ABD register, swept over
   contention and op mix on a Clos fabric.

     dune exec bin/ddsbench.exe --                   # full 32-node sweep
     dune exec bin/ddsbench.exe -- --smoke           # golden-file config
     dune exec bin/ddsbench.exe -- --json            # machine-readable
     dune exec bin/ddsbench.exe -- --ci              # gates, exit 1 on breach
     dune exec bin/ddsbench.exe -- --structure queue # one structure only
     dune exec bin/ddsbench.exe -- --out BENCH_PR10.json

   Gates (--ci): every point completes its operations, and the
   contention crossover reproduces — DX beats RPC on the low-contention
   lookup-heavy leg AND RPC or hybrid beats DX on the high-contention
   mutation-heavy leg — for at least two of the three structures.  A
   sweep restricted to a single --structure therefore cannot clear the
   gate: that is the deterministic forced-miss leg of @exitcodes.
   Unknown --structure names exit 2. *)

open Cmdliner

let main smoke structure spines leaves hosts_per_leaf low_clients high_clients
    low_zipf high_zipf low_mutate high_mutate ops keys slots seed json ci out =
  let structures =
    match structure with
    | None -> None
    | Some s ->
        if List.mem s Experiments.Dds_bench.structures then Some [ s ]
        else begin
          Printf.eprintf "unknown structure %S (have: %s)\n" s
            (String.concat ", " Experiments.Dds_bench.structures);
          exit 2
        end
  in
  let result =
    if smoke then Experiments.Dds_bench.smoke ~seed ?structures ()
    else
      Experiments.Dds_bench.run ~spines ~leaves ~hosts_per_leaf ~low_clients
        ~high_clients ~low_zipf ~high_zipf ~low_mutate_pct:low_mutate
        ~high_mutate_pct:high_mutate ~ops_per_client:ops ~keys ~slots ~seed
        ?structures ()
  in
  let failures = Experiments.Dds_bench.check result in
  let text =
    if json then Experiments.Dds_bench.to_json result
    else Experiments.Dds_bench.render result
  in
  print_string text;
  (match out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Experiments.Dds_bench.to_json result);
      close_out oc;
      Printf.eprintf "ddsbench: wrote %s\n" path);
  if ci && failures <> [] then begin
    List.iter (Printf.eprintf "   GATE FAILED: %s\n") failures;
    exit 1
  end

let smoke =
  let doc = "Run the small golden-file configuration (16-node Clos)." in
  Arg.(value & flag & info [ "smoke" ] ~doc)

let structure =
  let doc =
    "Restrict the sweep to one structure (hashtable, queue or register); \
     unknown names exit 2.  The crossover gate needs at least two \
     structures in scope, so --ci with this flag always fails the gate."
  in
  Arg.(value & opt (some string) None & info [ "structure" ] ~docv:"NAME" ~doc)

let spines =
  let doc = "Spine switches in the Clos fabric." in
  Arg.(value & opt int 2 & info [ "spines" ] ~docv:"N" ~doc)

let leaves =
  let doc = "Leaf switches in the Clos fabric." in
  Arg.(value & opt int 8 & info [ "leaves" ] ~docv:"N" ~doc)

let hosts_per_leaf =
  let doc = "Hosts per leaf (fabric size = leaves * hosts-per-leaf)." in
  Arg.(value & opt int 4 & info [ "hosts-per-leaf" ] ~docv:"N" ~doc)

let low_clients =
  let doc = "Concurrent clients on the low-contention leg." in
  Arg.(value & opt int 2 & info [ "low-clients" ] ~docv:"N" ~doc)

let high_clients =
  let doc = "Concurrent clients on the high-contention leg." in
  Arg.(value & opt int 12 & info [ "high-clients" ] ~docv:"N" ~doc)

let low_zipf =
  let doc = "Zipf exponent of the low leg's key mix." in
  Arg.(value & opt float 0.2 & info [ "low-zipf" ] ~docv:"S" ~doc)

let high_zipf =
  let doc = "Zipf exponent of the high leg's key mix." in
  Arg.(value & opt float 1.5 & info [ "high-zipf" ] ~docv:"S" ~doc)

let low_mutate =
  let doc = "Mutation share (percent) of the low leg's op mix." in
  Arg.(value & opt int 5 & info [ "low-mutate" ] ~docv:"PCT" ~doc)

let high_mutate =
  let doc = "Mutation share (percent) of the high leg's op mix." in
  Arg.(value & opt int 80 & info [ "high-mutate" ] ~docv:"PCT" ~doc)

let ops =
  let doc = "Operations per client per point." in
  Arg.(value & opt int 24 & info [ "ops" ] ~docv:"N" ~doc)

let keys =
  let doc = "Distinct hash-table keys in the Zipf mix." in
  Arg.(value & opt int 8 & info [ "keys" ] ~docv:"N" ~doc)

let slots =
  let doc = "Hash-table slots (power of two)." in
  Arg.(value & opt int 16 & info [ "slots" ] ~docv:"N" ~doc)

let seed =
  let doc = "PRNG seed for the key mix and think times." in
  Arg.(value & opt int 10 & info [ "seed" ] ~docv:"N" ~doc)

let json =
  let doc = "Emit the schema-versioned JSON report on stdout." in
  Arg.(value & flag & info [ "json" ] ~doc)

let ci =
  let doc = "Fail (exit 1) when the crossover or a sanity gate breaks." in
  Arg.(value & flag & info [ "ci" ] ~doc)

let out =
  let doc = "Also write the JSON report to $(docv)." in
  Arg.(value & opt (some string) None & info [ "out" ] ~docv:"PATH" ~doc)

let cmd =
  let doc = "distributed data-structure campaign: DX vs RPC vs hybrid" in
  let info = Cmd.info "ddsbench" ~doc in
  Cmd.v info
    Term.(
      const main $ smoke $ structure $ spines $ leaves $ hosts_per_leaf
      $ low_clients $ high_clients $ low_zipf $ high_zipf $ low_mutate
      $ high_mutate $ ops $ keys $ slots $ seed $ json $ ci $ out)

let () = exit (Cmd.eval cmd)

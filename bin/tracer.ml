(* tracer — replay the example workloads under the span tracer and emit
   Chrome trace-event JSON plus the cluster metrics report.

     dune exec bin/tracer.exe -- examples/quickstart
     dune exec bin/tracer.exe -- --ci      # assert span-tree invariants
     dune exec bin/tracer.exe -- --ci --json

   In --ci mode every replay's span tree must validate (no orphans, no
   open spans, monotone timestamps), the quickstart WRITE must decompose
   into its trap/nic/wire/serve children summing to the end-to-end
   latency within 1%, and the span-derived Table 1 decomposition must
   agree with direct engine-clock accounting within 1%.

   --json replaces the text output with one schema-versioned JSON object
   per workload on stdout (diagnostics on stderr) and, like --ci, makes
   any finding fatal: a tree that fails to validate exits 1 whether or
   not --ci was given. *)

open Cmdliner

let escape = Analysis.Report.json_escape

let normalize name =
  match String.index_opt name '/' with
  | Some i when String.sub name 0 i = "examples" ->
      String.sub name (i + 1) (String.length name - i - 1)
  | _ -> name

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("   FAIL " ^ s); false) fmt

(* The acceptance check: a WRITE root whose phase children (trap, nic,
   wire, serve, ...) are contiguous and sum to its end-to-end latency. *)
let write_decomposes (run : Experiments.Traced.run) =
  let writes =
    List.filter
      (fun (s : Obs.Span.t) -> s.Obs.Span.name = "WRITE")
      (Obs.Trace.roots run.trace)
  in
  let decomposes (root : Obs.Span.t) =
    let children = Obs.Trace.children run.trace root in
    let names =
      List.sort_uniq compare
        (List.map (fun (s : Obs.Span.t) -> s.Obs.Span.name) children)
    in
    let sum =
      List.fold_left (fun a s -> a +. Obs.Span.duration_us s) 0. children
    in
    let e2e = Obs.Span.duration_us root in
    List.length children >= 4
    && List.for_all (fun n -> List.mem n names) [ "trap"; "nic"; "wire"; "serve" ]
    && Float.abs (sum -. e2e) <= 0.01 *. e2e
  in
  List.exists decomposes writes

(* Every problem a replay's trace can exhibit, as data — the text and
   JSON reporters render the same list. *)
let problems_of name (run : Experiments.Traced.run) =
  let validation =
    match Obs.Trace.validate run.trace with Ok () -> [] | Error ps -> ps
  in
  let decomposition =
    if name = "quickstart" && not (write_decomposes run) then
      [ "no WRITE root decomposes into >= 4 contiguous phases" ]
    else []
  in
  validation @ decomposition

let check_decompose_agreement ~quiet =
  let d = Experiments.Table1a.decompose () in
  if not quiet then print_string (Experiments.Table1a.render_decomposition d);
  List.for_all
    (fun (r : Experiments.Table1a.phase_row) ->
      Float.abs (r.Experiments.Table1a.span_us -. r.Experiments.Table1a.direct_us)
      <= 0.01 *. r.Experiments.Table1a.direct_us
      || fail "decompose %s: spans %.2f us vs direct %.2f us"
           r.Experiments.Table1a.op r.Experiments.Table1a.span_us
           r.Experiments.Table1a.direct_us)
    d.Experiments.Table1a.phase_rows

let emit name ~out ~tree (run : Experiments.Traced.run) =
  let json = Obs.Export.chrome_json run.trace in
  let path = Filename.concat out (name ^ ".trace.json") in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "%s: %d spans -> %s\n" name
    (Obs.Trace.span_count run.trace)
    path;
  if tree then print_string (Obs.Export.render_tree run.trace);
  print_string (Obs.Registry.report run.registry)

(* ---------------- JSON report ---------------- *)

let run_json name (run : Experiments.Traced.run) problems =
  Printf.sprintf
    "{\"schema\":%d,\"tool\":\"tracer\",\"workload\":\"%s\",\"spans\":%d,\"roots\":%d,\"valid\":%b,\"write_decomposition\":%s,\"problems\":[%s]}"
    Analysis.Report.schema_version (escape name)
    (Obs.Trace.span_count run.trace)
    (List.length (Obs.Trace.roots run.trace))
    (problems = [])
    (if name = "quickstart" then string_of_bool (write_decomposes run)
     else "null")
    (String.concat ","
       (List.map (fun p -> Printf.sprintf "\"%s\"" (escape p)) problems))

let decompose_json ok =
  let d = Experiments.Table1a.decompose () in
  Printf.sprintf
    "{\"schema\":%d,\"tool\":\"tracer\",\"check\":\"decompose_agreement\",\"ok\":%b,\"phases\":[%s]}"
    Analysis.Report.schema_version ok
    (String.concat ","
       (List.map
          (fun (r : Experiments.Table1a.phase_row) ->
            Printf.sprintf "{\"op\":\"%s\",\"span_us\":%g,\"direct_us\":%g}"
              (escape r.Experiments.Table1a.op) r.Experiments.Table1a.span_us
              r.Experiments.Table1a.direct_us)
          d.Experiments.Table1a.phase_rows))

let print_json line = Analysis.Report.emit ~tool:"tracer" line

(* ---------------- Driver ---------------- *)

let run_one name ~ci ~json ~out ~tree =
  let run = Experiments.Traced.replay name in
  if json then begin
    let problems = problems_of name run in
    print_json (run_json name run problems);
    List.iter (fun p -> Printf.eprintf "   FAIL %s: %s\n" name p) problems;
    problems = []
  end
  else if ci then begin
    let problems = problems_of name run in
    List.iter (fun p -> ignore (fail "%s: %s" name p)) problems;
    let ok = problems = [] in
    Printf.printf "%s: %d spans, %s\n" name
      (Obs.Trace.span_count run.trace)
      (if ok then "valid" else "INVALID");
    ok
  end
  else begin
    emit name ~out ~tree run;
    true
  end

let main workload ci json out tree =
  let name = normalize workload in
  let names =
    if name = "all" then Experiments.Traced.all
    else if List.mem name Experiments.Traced.all then [ name ]
    else begin
      Printf.eprintf "unknown workload %S (have: %s, all)\n" name
        (String.concat ", " Experiments.Traced.all);
      exit 2
    end
  in
  let ok = List.for_all (fun name -> run_one name ~ci ~json ~out ~tree) names in
  let ok =
    ok
    &&
    if ci || json then begin
      let agree = check_decompose_agreement ~quiet:json in
      if json then print_json (decompose_json agree);
      agree
    end
    else true
  in
  if ci || json then
    if ok then (
      if not json then print_endline "tracer: all span trees valid")
    else begin
      Printf.eprintf "tracer: check failed\n";
      exit 1
    end

let workload =
  let doc =
    "Workload to replay and trace: a name from the examples directory \
     ($(b,quickstart), $(b,name_service), $(b,producer_consumer), \
     $(b,file_service), also accepted as $(b,examples/quickstart)), or \
     $(b,all)."
  in
  Arg.(value & pos 0 string "all" & info [] ~docv:"WORKLOAD" ~doc)

let ci =
  let doc =
    "Assert span-tree invariants and latency-accounting agreement \
     instead of writing trace files."
  in
  Arg.(value & flag & info [ "ci" ] ~doc)

let json =
  let doc =
    "Emit one schema-versioned JSON object per workload on stdout \
     (diagnostics on stderr); any invalid tree still exits nonzero."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

let out =
  let doc = "Directory for the emitted $(i,NAME).trace.json files." in
  Arg.(value & opt string "." & info [ "o"; "out" ] ~docv:"DIR" ~doc)

let tree =
  let doc = "Also print the plain-text span trees." in
  Arg.(value & flag & info [ "tree" ] ~doc)

let cmd =
  let doc = "span tracer for the remote-memory example workloads" in
  Cmd.v
    (Cmd.info "tracer" ~doc)
    Term.(const main $ workload $ ci $ json $ out $ tree)

let () = exit (Cmd.eval cmd)

(* shardsim — the scale-out campaign: sharded name service vs a single
   registry on a Clos fabric, at equal Zipf-keyed load.

     dune exec bin/shardsim.exe --                    # full 128-node campaign
     dune exec bin/shardsim.exe -- --smoke            # golden-file config
     dune exec bin/shardsim.exe -- --json             # machine-readable
     dune exec bin/shardsim.exe -- --ci               # gates, exit 1 on breach
     dune exec bin/shardsim.exe -- --out BENCH_PR9.json

   Gates (--ci): sharded p99 lookup latency below the single-registry
   baseline, zero switch drops at the gated operating point, a
   mid-campaign rebalance that converges, and no lost or stale-served
   registrations on either leg. *)

open Cmdliner

let main smoke spines leaves hosts_per_leaf shard_hosts clients names lookups
    zipf seed json ci out =
  let result =
    if smoke then Experiments.Shard_bench.smoke ~seed ()
    else
      Experiments.Shard_bench.run ~spines ~leaves ~hosts_per_leaf ~shard_hosts
        ~clients ~names ~lookups_per_client:lookups ~zipf ~seed ()
  in
  let failures = Experiments.Shard_bench.check result in
  let text =
    if json then Experiments.Shard_bench.to_json result
    else Experiments.Shard_bench.render result
  in
  print_string text;
  (match out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Experiments.Shard_bench.to_json result);
      close_out oc;
      Printf.eprintf "shardsim: wrote %s\n" path);
  if ci && failures <> [] then begin
    List.iter (Printf.eprintf "   GATE FAILED: %s\n") failures;
    exit 1
  end

let smoke =
  let doc = "Run the small golden-file configuration (12-node Clos)." in
  Arg.(value & flag & info [ "smoke" ] ~doc)

let spines =
  let doc = "Spine switches in the Clos fabric." in
  Arg.(value & opt int 4 & info [ "spines" ] ~docv:"N" ~doc)

let leaves =
  let doc = "Leaf switches in the Clos fabric." in
  Arg.(value & opt int 8 & info [ "leaves" ] ~docv:"N" ~doc)

let hosts_per_leaf =
  let doc = "Hosts per leaf (fabric size = leaves * hosts-per-leaf)." in
  Arg.(value & opt int 16 & info [ "hosts-per-leaf" ] ~docv:"N" ~doc)

let shard_hosts =
  let doc = "Registry shard hosts in the sharded leg." in
  Arg.(value & opt int 8 & info [ "shard-hosts" ] ~docv:"N" ~doc)

let clients =
  let doc = "Concurrent lookup clients." in
  Arg.(value & opt int 48 & info [ "clients" ] ~docv:"N" ~doc)

let names =
  let doc = "Registered service names." in
  Arg.(value & opt int 256 & info [ "names" ] ~docv:"N" ~doc)

let lookups =
  let doc = "Lookups per client (half before the rebalance, half after)." in
  Arg.(value & opt int 16 & info [ "lookups" ] ~docv:"N" ~doc)

let zipf =
  let doc = "Zipf exponent of the lookup key mix." in
  Arg.(value & opt float 1.5 & info [ "zipf" ] ~docv:"S" ~doc)

let seed =
  let doc = "PRNG seed for the key mix and think times." in
  Arg.(value & opt int 9 & info [ "seed" ] ~docv:"N" ~doc)

let json =
  let doc = "Emit the schema-versioned JSON report on stdout." in
  Arg.(value & flag & info [ "json" ] ~doc)

let ci =
  let doc = "Fail (exit 1) when any latency/drop/convergence gate breaks." in
  Arg.(value & flag & info [ "ci" ] ~doc)

let out =
  let doc = "Also write the JSON report to $(docv)." in
  Arg.(value & opt (some string) None & info [ "out" ] ~docv:"PATH" ~doc)

let cmd =
  let doc = "scale-out sharded name service campaign over a Clos fabric" in
  let info = Cmd.info "shardsim" ~doc in
  Cmd.v info
    Term.(
      const main $ smoke $ spines $ leaves $ hosts_per_leaf $ shard_hosts
      $ clients $ names $ lookups $ zipf $ seed $ json $ ci $ out)

let () = exit (Cmd.eval cmd)

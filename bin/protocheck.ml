(* protocheck — static protocol verification of the declared
   meta-instruction programs (Analysis.Static): rights and bounds in an
   interval domain against the export manifest, fence-order hazards,
   retry-combinator discipline, and a pipelining-safety verdict per
   program.

     dune exec bin/protocheck.exe --                      # whole catalog
     dune exec bin/protocheck.exe -- -w frame_overrun
     dune exec bin/protocheck.exe -- --json
     dune exec bin/protocheck.exe -- --ci

   In --ci mode the catalog must match expectations exactly: each
   seeded-bug program yields precisely its expected rule(s), every
   other scenario, campaign, bench and shard program is statically clean
   (zero false positives), the pipelining verdicts match, and the two
   headline static findings that FIFO runs pass — the frame_overrun
   interval overrun and the cas_double_apply reply-trusting reissue —
   are each cross-confirmed dynamically by exploring the matching
   scenario: a failing schedule of the right kind whose certificate
   replays deterministically, from a clean FIFO baseline. *)

open Cmdliner

type entry = { kind : string; program : Workload.Program.t }

let catalog () =
  List.concat
    [
      List.filter_map
        (fun name ->
          Option.map
            (fun p -> { kind = "scenario"; program = p })
            (Analysis.Scenarios.program name))
        Analysis.Scenarios.all;
      List.filter_map
        (fun name ->
          Option.map
            (fun p -> { kind = "campaign"; program = p })
            (Faults.Campaign.program name))
        Faults.Campaign.workloads;
      List.map
        (fun p -> { kind = "bench"; program = p })
        Experiments.Pipeline_bench.access_programs;
      List.map
        (fun p -> { kind = "shard"; program = p })
        Workload.Programs.shard_programs;
      List.map
        (fun p -> { kind = "dds"; program = p })
        Workload.Programs.dds_programs;
    ]

(* The seeded-bug programs and the exact rule(s) each must trip. *)
let expected_rules = function
  | "scenario", "file_service_nofence" -> [ "static-unfenced-release" ]
  | "scenario", "cas_missing_release" -> [ "static-lock-leak" ]
  | "scenario", "cas_double_apply" -> [ "static-cas-reissue" ]
  | "scenario", "frame_overrun" -> [ "static-bounds" ]
  | "shard", "shard_map_publish_unfenced" -> [ "static-unfenced-publish" ]
  | _ -> []

let expected_ordered = function
  | "scenario", ("producer_consumer" | "file_service_nofence") -> true
  | "shard", "shard_map_publish_unfenced" -> true
  | _ -> false

let analyze e =
  ( Analysis.Static.Verify.check e.program,
    Analysis.Static.Pipesafe.classify e.program )

let print_entry e (findings, verdict) =
  Printf.printf "== %s %s: %s, %s\n" e.kind e.program.Workload.Program.name
    (match findings with
    | [] -> "statically clean"
    | fs -> Printf.sprintf "%d finding(s)" (List.length fs))
    (Analysis.Static.Pipesafe.verdict_to_string verdict);
  List.iter
    (fun f -> Printf.printf "   %s\n" (Analysis.Static.Finding.describe f))
    findings;
  match verdict with
  | Analysis.Static.Pipesafe.Batchable -> ()
  | Analysis.Static.Pipesafe.Ordered reasons ->
      List.iter (Printf.printf "   ordering obligation: %s\n") reasons

let entry_json e (findings, verdict) =
  let module J = Analysis.Report.Json in
  let finding_json (f : Analysis.Static.Finding.t) =
    J.obj
      [
        ("rule", J.str f.rule);
        ("node", J.int f.node);
        ("node_name", J.str f.node_name);
        ("segment", J.str f.seg);
        ("detail", J.str f.detail);
      ]
  in
  let obligations =
    match verdict with
    | Analysis.Static.Pipesafe.Batchable -> []
    | Analysis.Static.Pipesafe.Ordered reasons -> reasons
  in
  J.to_string
    (J.obj
       [
         ("schema", J.int Analysis.Report.schema_version);
         ("tool", J.str "protocheck");
         ("kind", J.str e.kind);
         ("program", J.str e.program.Workload.Program.name);
         ( "instructions",
           J.int
             (List.fold_left
                (fun acc (np : Workload.Program.node_program) ->
                  acc + Workload.Program.instr_count np.body)
                0 e.program.Workload.Program.nodes) );
         ("findings", J.list (List.map finding_json findings));
         ( "pipelining",
           J.str (Analysis.Static.Pipesafe.verdict_to_string verdict) );
         ("obligations", J.list (List.map (fun r -> J.str r) obligations));
       ])

(* --ci leg 1: the static expectations, program by program. *)
let assert_static ~out e (findings, verdict) =
  let name = e.program.Workload.Program.name in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.fprintf out "   FAIL %s %s: %s\n" e.kind name msg;
        false)
      fmt
  in
  let got = List.map (fun (f : Analysis.Static.Finding.t) -> f.rule) findings in
  let want = expected_rules (e.kind, name) in
  let rules_ok =
    if List.sort_uniq compare got = List.sort compare want then true
    else
      fail "expected rules [%s], got [%s]"
        (String.concat ", " want)
        (String.concat ", " got)
  in
  let verdict_ok =
    match (verdict, expected_ordered (e.kind, name)) with
    | Analysis.Static.Pipesafe.Batchable, false
    | Analysis.Static.Pipesafe.Ordered _, true ->
        true
    | Analysis.Static.Pipesafe.Batchable, true ->
        fail "expected an ordered verdict, got batchable"
    | Analysis.Static.Pipesafe.Ordered reasons, false ->
        fail "expected batchable, got ordered (%s)"
          (String.concat "; " reasons)
  in
  rules_ok && verdict_ok

(* --ci leg 2: the two headline static findings that FIFO runs pass,
   each confirmed by exploration of the matching dynamic scenario —
   clean FIFO baseline, a failing schedule of the right kind, and a
   certificate that replays to the same kind. *)
let assert_dynamic ~out name ~expect_kind =
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.fprintf out "   FAIL cross-validation %s: %s\n" name msg;
        false)
      fmt
  in
  let r = Analysis.Explore.explore name in
  let baseline_ok =
    match r.baseline.failure with
    | None -> true
    | Some f ->
        fail "FIFO baseline failed: %s" (Analysis.Explore.describe_failure f)
  in
  let failure_ok =
    match
      List.find_opt
        (fun (o : Analysis.Explore.outcome) ->
          match o.failure with
          | Some f -> Analysis.Explore.failure_kind f = expect_kind
          | None -> false)
        r.failures
    with
    | None ->
        fail "no %S failure in %d schedule(s), %d failing" expect_kind
          r.stats.executed r.stats.failing
    | Some first -> (
        let replayed = Analysis.Explore.replay name first.schedule in
        match replayed.failure with
        | Some f when Analysis.Explore.failure_kind f = expect_kind ->
            Printf.fprintf out
              "   cross-validated %s: schedule %s replays to %s\n" name
              (Analysis.Schedule.to_string first.schedule)
              expect_kind;
            true
        | Some f ->
            fail "certificate %s replayed to %s, expected %s"
              (Analysis.Schedule.to_string first.schedule)
              (Analysis.Explore.failure_kind f)
              expect_kind
        | None ->
            fail "certificate %s replayed clean, expected %s"
              (Analysis.Schedule.to_string first.schedule)
              expect_kind)
  in
  baseline_ok && failure_ok

let main workload json ci =
  let entries = catalog () in
  let entries =
    if workload = "all" then entries
    else begin
      match
        List.filter
          (fun e -> e.program.Workload.Program.name = workload)
          entries
      with
      | [] ->
          Printf.eprintf "unknown program %S (have: %s, all)\n" workload
            (String.concat ", "
               (List.sort_uniq compare
                  (List.map
                     (fun e -> e.program.Workload.Program.name)
                     entries)));
          exit 2
      | es -> es
    end
  in
  let analyzed = List.map (fun e -> (e, analyze e)) entries in
  let out = if json then stderr else stdout in
  if json then
    List.iter
      (fun (e, a) -> Analysis.Report.emit ~tool:"protocheck" (entry_json e a))
      analyzed
  else List.iter (fun (e, a) -> print_entry e a) analyzed;
  if ci then begin
    let static_ok = List.map (fun (e, a) -> assert_static ~out e a) analyzed in
    let names =
      List.map (fun e -> e.program.Workload.Program.name) entries
    in
    let dynamic_ok =
      (* Only when the seeded programs are in scope, so -w runs stay
         cheap; the @protocheck alias runs the whole catalog. *)
      List.map
        (fun (name, expect_kind) ->
          if List.mem name names then assert_dynamic ~out name ~expect_kind
          else true)
        [ ("frame_overrun", "finding"); ("cas_double_apply", "linearizability") ]
    in
    if List.for_all Fun.id static_ok && List.for_all Fun.id dynamic_ok then
      Printf.fprintf out "protocheck: all programs match expectations\n"
    else begin
      Printf.fprintf out "protocheck: expectation mismatch\n";
      exit 1
    end
  end
  else if
    List.exists (fun (_, (findings, _)) -> findings <> []) analyzed
  then exit 1

let workload =
  let doc = "Program to verify (or $(b,all) for the whole catalog)." in
  Arg.(value & opt string "all" & info [ "w"; "workload" ] ~docv:"NAME" ~doc)

let json =
  let doc =
    "Emit one self-validated JSON object per program on stdout \
     (human-readable output and CI diagnostics go to stderr)."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

let ci =
  let doc =
    "Assert the catalog's expectations: seeded programs trip exactly \
     their rules, everything else is clean and its pipelining verdict \
     matches, and the headline static findings are cross-confirmed by \
     exploration certificates."
  in
  Arg.(value & flag & info [ "ci" ] ~doc)

let cmd =
  let doc = "Static protocol verifier for declared access programs" in
  Cmd.v (Cmd.info "protocheck" ~doc) Term.(const main $ workload $ json $ ci)

let () = exit (Cmd.eval cmd)

(* modelcheck — systematic same-instant schedule exploration of the
   example workloads, with DPOR + sleep sets + trace-equivalence
   hashing, and deterministic certificate replay.

     dune exec bin/modelcheck.exe --                       # explore all
     dune exec bin/modelcheck.exe -- -w torn_record
     dune exec bin/modelcheck.exe -- -w cas_missing_release \
         --replay "0/3,0/2,0/3,1/2"                        # replay a cert
     dune exec bin/modelcheck.exe -- --ci --budget 2000

   In --ci mode every explored workload must behave: the clean
   workloads exhaust their schedule space with zero failures, the
   seeded-bug workloads (clean under FIFO, so invisible to racecheck's
   single schedule) must produce at least one failing schedule, and
   replaying the first failure certificate must reproduce the same
   failure kind. *)

open Cmdliner

let failure_detail = function
  | None -> ("ok", "")
  | Some f ->
      (Analysis.Explore.failure_kind f, Analysis.Explore.describe_failure f)

let print_outcome ~label (o : Analysis.Explore.outcome) =
  let kind, detail = failure_detail o.failure in
  Printf.printf "   %s: %s%s  [schedule %s, %d choice point(s)]\n" label kind
    (if detail = "" then "" else " — " ^ detail)
    (Analysis.Schedule.to_string o.schedule)
    o.choice_points

let print_result (r : Analysis.Explore.result) =
  let s = r.stats in
  Printf.printf
    "== %s: %d schedule(s) executed, %d distinct, %d failing%s\n" r.workload
    s.executed s.distinct s.failing
    (if s.budget_exhausted then " (budget exhausted)" else "");
  Printf.printf
    "   reduction: %d hash-redundant, %d dpor-pruned, %d sleep-pruned, %d \
     deferred, max %d choice point(s)\n"
    s.redundant s.pruned_dpor s.pruned_sleep s.deferred s.max_choice_points;
  print_outcome ~label:"baseline (fifo)" r.baseline;
  List.iter (fun o -> print_outcome ~label:"failure" o) r.failures

let outcome_json (o : Analysis.Explore.outcome) =
  let kind, detail = failure_detail o.failure in
  Printf.sprintf
    "{\"schedule\":\"%s\",\"choice_points\":%d,\"status\":\"%s\",\"detail\":\"%s\"}"
    (Analysis.Report.json_escape (Analysis.Schedule.to_string o.schedule))
    o.choice_points
    (Analysis.Report.json_escape kind)
    (Analysis.Report.json_escape detail)

let result_json (r : Analysis.Explore.result) =
  let s = r.stats in
  Printf.sprintf
    "{\"schema\":%d,\"workload\":\"%s\",\"stats\":{\"executed\":%d,\"distinct\":%d,\"redundant\":%d,\"pruned_dpor\":%d,\"pruned_sleep\":%d,\"deferred\":%d,\"failing\":%d,\"max_choice_points\":%d,\"budget_exhausted\":%b},\"baseline\":%s,\"failures\":[%s]}"
    Analysis.Report.schema_version
    (Analysis.Report.json_escape r.workload)
    s.executed s.distinct s.redundant s.pruned_dpor s.pruned_sleep s.deferred
    s.failing s.max_choice_points s.budget_exhausted
    (outcome_json r.baseline)
    (String.concat "," (List.map outcome_json r.failures))

(* --ci: clean workloads must explore clean, seeded bugs must fail and
   their first certificate must replay to the same failure kind. *)
let assert_result ~config ~out (r : Analysis.Explore.result) =
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.fprintf out "   FAIL %s: %s\n" r.workload msg;
        false)
      fmt
  in
  let seeded = List.mem r.workload Analysis.Scenarios.seeded_bugs in
  let baseline_ok =
    (* FIFO races/findings are the differential reference, so the
       baseline outcome can only fail on deadlock / exception /
       divergence / invariant — none of which a checked workload has
       under the default schedule *)
    match r.baseline.failure with
    | None -> true
    | Some f ->
        fail "baseline schedule failed: %s"
          (Analysis.Explore.describe_failure f)
  in
  let failures_ok =
    if seeded then
      if r.stats.failing = 0 then
        fail "seeded bug not found in %d schedule(s)" r.stats.executed
      else
        match r.failures with
        | [] -> fail "failing>0 but no failure outcome reported"
        | first :: _ -> (
            let replayed =
              Analysis.Explore.replay ~config r.workload first.schedule
            in
            match (first.failure, replayed.failure) with
            | Some want, Some got
              when Analysis.Explore.failure_kind want
                   = Analysis.Explore.failure_kind got ->
                true
            | _, got ->
                let _, want_d = failure_detail first.failure in
                let _, got_d = failure_detail got in
                fail "replay of %s diverged: expected %s, got %s"
                  (Analysis.Schedule.to_string first.schedule)
                  want_d
                  (if got_d = "" then "a clean run" else got_d))
    else if r.stats.failing > 0 then
      fail "expected a clean schedule space, got %d failing schedule(s)"
        r.stats.failing
    else true
  in
  baseline_ok && failures_ok

let run_explore names ~config ~json ~ci =
  let results =
    List.map (fun name -> Analysis.Explore.explore ~config name) names
  in
  let out = if json then stderr else stdout in
  if json then
    List.iter
      (fun r -> Analysis.Report.emit ~tool:"modelcheck" (result_json r))
      results
  else List.iter print_result results;
  if ci then begin
    (* Assert every workload before combining: a short-circuiting
       for_all would swallow the diagnostics of later mismatches. *)
    let checked = List.map (assert_result ~config ~out) results in
    let ok = List.for_all Fun.id checked in
    if ok then output_string out "modelcheck: all workloads match expectations\n"
    else begin
      output_string out "modelcheck: expectation mismatch\n";
      exit 1
    end
  end
  else if List.exists (fun (r : Analysis.Explore.result) -> r.stats.failing > 0)
            results
  then exit 1

let run_replay name cert ~config ~json =
  let schedule =
    try Analysis.Schedule.of_string cert
    with Invalid_argument msg ->
      Printf.eprintf "%s\n" msg;
      exit 2
  in
  let outcome = Analysis.Explore.replay ~config name schedule in
  if json then
    Analysis.Report.emit ~tool:"modelcheck"
      (Printf.sprintf "{\"schema\":%d,\"workload\":\"%s\",\"replay\":%s}"
         Analysis.Report.schema_version
         (Analysis.Report.json_escape name)
         (outcome_json outcome))
  else print_outcome ~label:(Printf.sprintf "replay %s" name) outcome;
  if outcome.failure <> None then exit 1

let main workload budget depth max_events json ci replay =
  let config =
    {
      Analysis.Explore.budget;
      max_depth = depth;
      max_events;
    }
  in
  let names =
    if workload = "all" then Analysis.Scenarios.checked
    else if List.mem workload Analysis.Scenarios.checked then [ workload ]
    else begin
      Printf.eprintf "unknown workload %S (have: %s, all)\n" workload
        (String.concat ", " Analysis.Scenarios.checked);
      exit 2
    end
  in
  match replay with
  | Some cert -> (
      match names with
      | [ name ] -> run_replay name cert ~config ~json
      | _ ->
          Printf.eprintf "--replay needs a single --workload\n";
          exit 2)
  | None -> run_explore names ~config ~json ~ci

let workload =
  let doc = "Workload to explore (or $(b,all) for the checked set)." in
  Arg.(value & opt string "all" & info [ "w"; "workload" ] ~docv:"NAME" ~doc)

let budget =
  let doc = "Maximum number of schedules to execute per workload." in
  Arg.(
    value
    & opt int Analysis.Explore.default_config.budget
    & info [ "budget" ] ~docv:"N" ~doc)

let depth =
  let doc = "Branch at most this many choice points deep." in
  Arg.(
    value
    & opt int Analysis.Explore.default_config.max_depth
    & info [ "depth" ] ~docv:"N" ~doc)

let max_events =
  let doc = "Per-run event bound; a run that exceeds it is diverged." in
  Arg.(
    value
    & opt int Analysis.Explore.default_config.max_events
    & info [ "max-events" ] ~docv:"N" ~doc)

let json =
  let doc =
    "Emit one JSON object per workload on stdout (human-readable \
     output and CI diagnostics go to stderr)."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

let ci =
  let doc =
    "Assert expectations: clean workloads explore clean, seeded bugs \
     produce failing schedules, and the first failure certificate \
     replays to the same failure kind."
  in
  Arg.(value & flag & info [ "ci" ] ~doc)

let replay =
  let doc =
    "Replay one schedule certificate ($(b,index/count) pairs joined by \
     commas, or $(b,-) for the FIFO baseline) against a single \
     --workload and report its outcome."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "replay" ] ~docv:"CERT" ~doc)

let cmd =
  let doc = "DPOR schedule explorer for the remote-memory workloads" in
  Cmd.v
    (Cmd.info "modelcheck" ~doc)
    Term.(
      const main $ workload $ budget $ depth $ max_events $ json $ ci $ replay)

let () = exit (Cmd.eval cmd)

(* obsreport — run example workloads under the live telemetry sampler
   and evaluate declarative SLOs against what it saw.

     dune exec bin/obsreport.exe --                          # all workloads
     dune exec bin/obsreport.exe -- -w quickstart --loss 0.10 --seed 3
     dune exec bin/obsreport.exe -- -w replica --chaos --pipelined
     dune exec bin/obsreport.exe -- --slo gates.spec --ci
     dune exec bin/obsreport.exe -- --json

   Each workload runs under a time-series sampler (provably free of
   perturbation: the fault digest is bit-identical with sampling off),
   then the SLO spec — percentile latencies from the registry, counter
   totals and rates, gauge max/mean/last over the run or a trailing
   window — is evaluated against the recorded series.  Text mode prints
   per-gauge sparklines and one ok/FAIL line per clause; --json emits
   one schema-versioned object per workload.  With --ci any violation
   (or a workload dying) makes the exit status nonzero — the SLO file
   is the merge gate. *)

open Cmdliner

let escape = Analysis.Report.json_escape

(* The built-in gate when no --slo file is given: the run must reach
   quiescence fully drained and fully recovered. *)
let default_slo =
  String.concat "\n"
    [
      "# built-in: quiescent and fully recovered";
      "counter rmem.gave_up <= 0";
      "last rmem.0.inflight <= 0";
    ]

(* Every gauge is read at every tick, so any one ring's newest sample
   carries the run's last sampled instant. *)
let duration_of ts =
  match Obs.Timeseries.gauges ts with
  | [] -> Sim.Time.zero
  | gauge :: _ -> (
      match List.rev (Obs.Timeseries.samples ts gauge) with
      | (t_us, _) :: _ -> Sim.Time.of_us_float t_us
      | [] -> Sim.Time.zero)

let run_one ~plan ~pipelined ~seed ~interval ~spec workload =
  let outcome =
    Faults.Campaign.run ~plan ~pipelined ~sampler:interval ~seed workload
  in
  let ts = Option.get outcome.Faults.Campaign.timeseries in
  let ctx =
    {
      Obs.Slo.registry = Some outcome.Faults.Campaign.registry;
      series = Some ts;
      duration = duration_of ts;
    }
  in
  (outcome, ts, Obs.Slo.eval ctx spec)

let healthy (outcome, _, verdicts) =
  outcome.Faults.Campaign.survived
  && outcome.Faults.Campaign.converged
  && Obs.Slo.violations verdicts = []

(* ---------------- Text report ---------------- *)

let print_text (outcome, ts, verdicts) =
  Printf.printf "== %-17s seed %-4d %s%s  [%d fault(s), digest %x, %d tick(s)]\n"
    outcome.Faults.Campaign.workload outcome.Faults.Campaign.seed
    (if outcome.Faults.Campaign.survived && outcome.Faults.Campaign.converged
     then "ok"
     else if outcome.Faults.Campaign.survived then "DIVERGED"
     else "DIED")
    (if outcome.Faults.Campaign.detail = "" then ""
     else " — " ^ outcome.Faults.Campaign.detail)
    outcome.Faults.Campaign.events outcome.Faults.Campaign.digest
    (Obs.Timeseries.ticks ts);
  print_string (Obs.Timeseries.report ts);
  print_string (Obs.Slo.render verdicts);
  print_newline ()

(* ---------------- JSON report ---------------- *)

let verdict_json (v : Obs.Slo.verdict) =
  Printf.sprintf "{\"clause\":\"%s\",\"ok\":%b,\"value\":%s,\"detail\":\"%s\"}"
    (escape (Obs.Slo.clause_to_string v.Obs.Slo.clause))
    v.Obs.Slo.ok
    (match v.Obs.Slo.value with
    | Some f -> Printf.sprintf "%g" f
    | None -> "null")
    (escape v.Obs.Slo.detail)

let gauge_json ts name =
  match Obs.Timeseries.stat ts name with
  | None -> Printf.sprintf "\"%s\":null" (escape name)
  | Some st ->
      Printf.sprintf
        "\"%s\":{\"count\":%d,\"last\":%g,\"max\":%g,\"mean\":%g}"
        (escape name) st.Obs.Timeseries.count st.Obs.Timeseries.last
        st.Obs.Timeseries.max st.Obs.Timeseries.mean

let report_json (outcome, ts, verdicts) =
  let o = outcome in
  Printf.sprintf
    "{\"schema\":%d,\"tool\":\"obsreport\",\"workload\":\"%s\",\"seed\":%d,\"survived\":%b,\"converged\":%b,\"detail\":\"%s\",\"digest\":%d,\"faults\":%d,\"ticks\":%d,\"interval_us\":%g,\"slo_passed\":%b,\"slo\":[%s],\"gauges\":{%s}}"
    Analysis.Report.schema_version
    (escape o.Faults.Campaign.workload)
    o.Faults.Campaign.seed o.Faults.Campaign.survived
    o.Faults.Campaign.converged
    (escape o.Faults.Campaign.detail)
    o.Faults.Campaign.digest o.Faults.Campaign.events
    (Obs.Timeseries.ticks ts)
    (Sim.Time.to_us (Obs.Timeseries.config ts).Obs.Timeseries.interval)
    (Obs.Slo.violations verdicts = [])
    (String.concat "," (List.map verdict_json verdicts))
    (String.concat "," (List.map (gauge_json ts) (Obs.Timeseries.gauges ts)))

let print_json report =
  Analysis.Report.emit ~tool:"obsreport" (report_json report)

(* ---------------- Driver ---------------- *)

let main workload pipelined seed loss chaos interval_us slo_file json ci =
  let plan =
    if chaos then Faults.Campaign.chaos_plan loss
    else Faults.Campaign.loss_plan loss
  in
  let spec_text =
    match slo_file with
    | None -> default_slo
    | Some path -> In_channel.with_open_text path In_channel.input_all
  in
  let spec =
    match Obs.Slo.parse spec_text with
    | Ok spec -> spec
    | Error e ->
        Printf.eprintf "obsreport: bad SLO spec:\n%s\n" e;
        exit 2
  in
  let names =
    if workload = "all" then Faults.Campaign.workloads
    else if List.mem workload Faults.Campaign.workloads then [ workload ]
    else begin
      Printf.eprintf "unknown workload %S (have: %s, all)\n" workload
        (String.concat ", " Faults.Campaign.workloads);
      exit 2
    end
  in
  let interval = Sim.Time.of_us_float interval_us in
  let reports =
    List.map (run_one ~plan ~pipelined ~seed ~interval ~spec) names
  in
  List.iter (if json then print_json else print_text) reports;
  let out = if json then stderr else stdout in
  List.iter
    (fun ((outcome, _, verdicts) as report) ->
      if not (healthy report) then begin
        let o = outcome.Faults.Campaign.workload in
        if not outcome.Faults.Campaign.survived then
          Printf.fprintf out "   FAIL %s: did not survive — %s\n" o
            outcome.Faults.Campaign.detail
        else if not outcome.Faults.Campaign.converged then
          Printf.fprintf out "   FAIL %s: did not converge — %s\n" o
            outcome.Faults.Campaign.detail;
        List.iter
          (fun v ->
            Printf.fprintf out "   FAIL %s: SLO %s (%s)\n" o
              (Obs.Slo.clause_to_string v.Obs.Slo.clause)
              v.Obs.Slo.detail)
          (Obs.Slo.violations verdicts)
      end)
    reports;
  if ci then
    if List.for_all healthy reports then
      Printf.fprintf out "obsreport: %d workload(s) within SLO\n"
        (List.length reports)
    else begin
      Printf.fprintf out "obsreport: SLO violations\n";
      exit 1
    end

let workload =
  let doc = "Workload to sample (or $(b,all))." in
  Arg.(value & opt string "all" & info [ "w"; "workload" ] ~docv:"NAME" ~doc)

let pipelined =
  let doc = "Route remote writes through the batching issue engine." in
  Arg.(value & flag & info [ "pipelined" ] ~doc)

let seed =
  let doc = "PRNG seed for the fault plane." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)

let loss =
  let doc = "Per-frame loss probability on every link." in
  Arg.(value & opt float 0.0 & info [ "loss" ] ~docv:"P" ~doc)

let chaos =
  let doc =
    "Add corruption, duplication and delay-jitter on top of the loss rate."
  in
  Arg.(value & flag & info [ "chaos" ] ~doc)

let interval_us =
  let doc = "Sampling interval in microseconds." in
  Arg.(value & opt float 50.0 & info [ "interval-us" ] ~docv:"US" ~doc)

let slo_file =
  let doc = "SLO spec file (default: the built-in quiescence gate)." in
  Arg.(
    value & opt (some string) None & info [ "slo" ] ~docv:"FILE" ~doc)

let json =
  let doc = "Emit one schema-versioned JSON object per workload on stdout." in
  Arg.(value & flag & info [ "json" ] ~doc)

let ci =
  let doc = "Exit nonzero on any SLO violation or workload failure." in
  Arg.(value & flag & info [ "ci" ] ~doc)

let cmd =
  let doc = "live-telemetry sampling report with declarative SLO gates" in
  let info = Cmd.info "obsreport" ~doc in
  Cmd.v info
    Term.(
      const main $ workload $ pipelined $ seed $ loss $ chaos $ interval_us
      $ slo_file $ json $ ci)

let () = exit (Cmd.eval cmd)

(* clustersim — run your own file-service scenario.

   A parameterized driver around the experiment fixture: choose client
   count, transfer scheme, operation count and seed; get client latency
   and the server's CPU breakdown.  --json emits the same numbers as a
   self-validated object; --ci sanity-asserts them (positive latency,
   utilization within [0,1]) and exits 1 on violation. *)

open Cmdliner
module J = Analysis.Report.Json

let scheme_conv =
  let parse = function
    | "dx" -> Ok Dfs.Clerk.Dx
    | "hy" | "hybrid" -> Ok Dfs.Clerk.Hybrid1
    | "rpc" -> Ok Dfs.Clerk.Rpc_baseline
    | s -> Error (`Msg (Printf.sprintf "unknown scheme %S (dx|hy|rpc)" s))
  in
  let print ppf s =
    Format.pp_print_string ppf
      (String.lowercase_ascii (Dfs.Clerk.scheme_to_string s))
  in
  Arg.conv (parse, print)

type stats = {
  makespan_ms : float;
  latency_mean_us : float;
  latency_min_us : float;
  latency_max_us : float;
  server_cpu_ms : float;
  utilization : float;
  breakdown : (string * float) list;
}

let run clients scheme ops seed json ci =
  let fixture = Experiments.Fixture.create ~clients ~seed () in
  let latencies = Metrics.Summary.create () in
  let stats = ref None in
  Experiments.Fixture.run fixture (fun () ->
      Experiments.Fixture.reset_accounting fixture;
      let t_start = Experiments.Fixture.now fixture in
      let finished = ref 0 in
      let all_done = Sim.Ivar.create () in
      for c = 0 to clients - 1 do
        let clerk = Experiments.Fixture.clerk fixture c in
        Dfs.Clerk.set_scheme clerk scheme;
        let prng = Sim.Prng.split fixture.Experiments.Fixture.prng in
        Cluster.Node.spawn (Dfs.Clerk.node clerk) (fun () ->
            let sample = Workload.Mix.sampler () in
            for _ = 1 to ops do
              let event =
                Workload.Trace.event_for fixture.Experiments.Fixture.tree prng
                  (sample prng)
              in
              let _, us =
                Experiments.Fixture.time fixture (fun () ->
                    Dfs.Clerk.remote_fetch clerk event.Workload.Trace.op)
              in
              Metrics.Summary.add latencies us
            done;
            incr finished;
            if !finished = clients then Sim.Ivar.fill all_done ())
      done;
      Sim.Ivar.read all_done;
      Sim.Proc.wait (Sim.Time.ms 10);
      let makespan =
        Sim.Time.diff (Experiments.Fixture.now fixture) t_start
      in
      let cpu = Experiments.Fixture.server_cpu fixture in
      stats :=
        Some
          {
            makespan_ms = Sim.Time.to_ms makespan;
            latency_mean_us = Metrics.Summary.mean latencies;
            latency_min_us = Metrics.Summary.min latencies;
            latency_max_us = Metrics.Summary.max latencies;
            server_cpu_ms = Sim.Time.to_ms (Cluster.Cpu.busy_time cpu);
            utilization = Cluster.Cpu.utilization cpu ~window:makespan;
            breakdown = Metrics.Account.to_list (Cluster.Cpu.account cpu);
          });
  let s =
    match !stats with
    | Some s -> s
    | None ->
        Printf.eprintf "clustersim: simulation ended without producing stats\n";
        exit 1
  in
  if json then
    Analysis.Report.emit ~tool:"clustersim"
      (J.to_string
         (J.obj
            [
              ("schema", J.int Analysis.Report.schema_version);
              ("tool", J.str "clustersim");
              ( "scheme",
                J.str
                  (String.lowercase_ascii (Dfs.Clerk.scheme_to_string scheme))
              );
              ("clients", J.int clients);
              ("ops_per_client", J.int ops);
              ("seed", J.int seed);
              ("makespan_ms", J.raw (Printf.sprintf "%.1f" s.makespan_ms));
              ( "latency_mean_us",
                J.raw (Printf.sprintf "%.0f" s.latency_mean_us) );
              ("latency_min_us", J.raw (Printf.sprintf "%.0f" s.latency_min_us));
              ("latency_max_us", J.raw (Printf.sprintf "%.0f" s.latency_max_us));
              ("server_cpu_ms", J.raw (Printf.sprintf "%.1f" s.server_cpu_ms));
              ("utilization", J.raw (Printf.sprintf "%.3f" s.utilization));
              ( "breakdown",
                J.list
                  (List.map
                     (fun (category, us) ->
                       J.obj
                         [
                           ("category", J.str category);
                           ("us", J.raw (Printf.sprintf "%.0f" us));
                         ])
                     s.breakdown) );
            ]))
  else begin
    Printf.printf "scheme      : %s\n" (Dfs.Clerk.scheme_to_string scheme);
    Printf.printf "clients     : %d x %d ops\n" clients ops;
    Printf.printf "makespan    : %.1f ms of cluster time\n" s.makespan_ms;
    Printf.printf "latency     : mean %.0f us, min %.0f, max %.0f\n"
      s.latency_mean_us s.latency_min_us s.latency_max_us;
    Printf.printf "server CPU  : %.1f ms (utilization %.2f)\n" s.server_cpu_ms
      s.utilization;
    List.iter
      (fun (category, us) -> Printf.printf "  %-22s %10.0f us\n" category us)
      s.breakdown
  end;
  if ci then begin
    let fail fmt =
      Printf.ksprintf
        (fun msg ->
          Printf.eprintf "clustersim: %s\n" msg;
          exit 1)
        fmt
    in
    if s.makespan_ms <= 0. then fail "non-positive makespan %.1f ms" s.makespan_ms;
    if s.latency_mean_us <= 0. then
      fail "non-positive mean latency %.0f us" s.latency_mean_us;
    if s.latency_min_us > s.latency_mean_us || s.latency_mean_us > s.latency_max_us
    then
      fail "latency order violated: min %.0f, mean %.0f, max %.0f"
        s.latency_min_us s.latency_mean_us s.latency_max_us;
    if s.utilization < 0. || s.utilization > 1. then
      fail "utilization %.3f outside [0,1]" s.utilization;
    Printf.eprintf "clustersim: ok (%d clients, %s, mean %.0f us)\n" clients
      (String.lowercase_ascii (Dfs.Clerk.scheme_to_string scheme))
      s.latency_mean_us
  end

let main =
  let clients =
    Arg.(value & opt int 2 & info [ "clients" ] ~docv:"N" ~doc:"Client machines.")
  in
  let scheme =
    Arg.(
      value
      & opt scheme_conv Dfs.Clerk.Dx
      & info [ "scheme" ] ~docv:"dx|hy|rpc" ~doc:"Transfer scheme.")
  in
  let ops =
    Arg.(
      value & opt int 200
      & info [ "ops" ] ~docv:"N" ~doc:"Operations per client (Table 1a mix).")
  in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.") in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit a self-validated JSON object instead of text.")
  in
  let ci =
    Arg.(
      value & flag
      & info [ "ci" ]
          ~doc:"Sanity-assert the run's statistics; exit 1 on violation.")
  in
  Cmd.v
    (Cmd.info "clustersim" ~version:"1.0.0"
       ~doc:"Run a parameterized file-service scenario on the simulated cluster")
    Term.(const run $ clients $ scheme $ ops $ seed $ json $ ci)

let () = exit (Cmd.eval main)

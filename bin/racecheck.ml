(* racecheck — replay the example workloads under the analysis monitor
   and report data races and protocol findings.

     dune exec bin/racecheck.exe -- --workload kv_store
     dune exec bin/racecheck.exe -- --ci        # assert expectations
     dune exec bin/racecheck.exe -- --json      # machine-readable report

   In --ci mode every workload must match its expectation: the clean
   workloads report nothing, the seeded racy workload must be flagged,
   and the name-service misuse workload must produce lint findings. *)

open Cmdliner

let check name ~ci ~json =
  let monitor = Analysis.Scenarios.run name in
  let races = Analysis.Race.find monitor in
  let findings = Analysis.Lint.check monitor in
  if json then
    Analysis.Report.emit ~tool:"racecheck"
      (Analysis.Report.json ~title:name monitor ~races ~findings)
  else Analysis.Report.print ~title:name monitor ~races ~findings;
  if ci then begin
    let expect = Analysis.Scenarios.expectation name in
    let out = if json then stderr else stdout in
    let mismatch what expected got =
      Printf.fprintf out "   FAIL %s: expected %s %s, got %d\n" name
        (if expected then "some" else "no")
        what got;
      false
    in
    let races_ok =
      if expect.Analysis.Scenarios.races <> (races <> []) then
        mismatch "races" expect.Analysis.Scenarios.races (List.length races)
      else true
    in
    let findings_ok =
      if expect.Analysis.Scenarios.findings <> (findings <> []) then
        mismatch "findings" expect.Analysis.Scenarios.findings
          (List.length findings)
      else true
    in
    races_ok && findings_ok
  end
  else races = [] && findings = []

let main workload ci json =
  let names =
    if workload = "all" then Analysis.Scenarios.all
    else if List.mem workload Analysis.Scenarios.all then [ workload ]
    else begin
      Printf.eprintf "unknown workload %S (have: %s, all)\n" workload
        (String.concat ", " Analysis.Scenarios.all);
      exit 2
    end
  in
  (* Run and report every workload before combining verdicts: a
     short-circuiting for_all would silently skip everything after the
     first mismatch. *)
  let results = List.map (fun name -> check name ~ci ~json) names in
  let ok = List.for_all Fun.id results in
  let out = if json then stderr else stdout in
  if ci then
    if ok then output_string out "racecheck: all workloads match expectations\n"
    else begin
      output_string out "racecheck: expectation mismatch\n";
      exit 1
    end
  else if not ok then exit 1

let workload =
  let doc = "Workload to replay (or $(b,all))." in
  Arg.(value & opt string "all" & info [ "w"; "workload" ] ~docv:"NAME" ~doc)

let ci =
  let doc =
    "Assert per-workload expectations (clean workloads clean, seeded \
     races/findings present) instead of failing on any report."
  in
  Arg.(value & flag & info [ "ci" ] ~doc)

let json =
  let doc =
    "Emit one JSON object per workload on stdout (tables and CI \
     diagnostics go to stderr). Exit status is unchanged: nonzero when \
     races or findings are present (or, with $(b,--ci), on expectation \
     mismatch)."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

let cmd =
  let doc = "happens-before race detector for the remote-memory workloads" in
  Cmd.v
    (Cmd.info "racecheck" ~doc)
    Term.(const main $ workload $ ci $ json)

let () = exit (Cmd.eval cmd)

(* racecheck — replay the example workloads under the analysis monitor
   and report data races and protocol findings.

     dune exec bin/racecheck.exe -- --workload kv_store
     dune exec bin/racecheck.exe -- --ci        # assert expectations

   In --ci mode every workload must match its expectation: the clean
   workloads report nothing, the seeded racy workload must be flagged,
   and the name-service misuse workload must produce lint findings. *)

open Cmdliner

let check name ~ci =
  let monitor = Analysis.Scenarios.run name in
  let races = Analysis.Race.find monitor in
  let findings = Analysis.Lint.check monitor in
  Analysis.Report.print ~title:name monitor ~races ~findings;
  if ci then begin
    let expect = Analysis.Scenarios.expectation name in
    let mismatch what expected got =
      Printf.printf "   FAIL %s: expected %s %s, got %d\n" name
        (if expected then "some" else "no")
        what got;
      false
    in
    let races_ok =
      if expect.Analysis.Scenarios.races <> (races <> []) then
        mismatch "races" expect.Analysis.Scenarios.races (List.length races)
      else true
    in
    let findings_ok =
      if expect.Analysis.Scenarios.findings <> (findings <> []) then
        mismatch "findings" expect.Analysis.Scenarios.findings
          (List.length findings)
      else true
    in
    races_ok && findings_ok
  end
  else races = [] && findings = []

let main workload ci =
  let names =
    if workload = "all" then Analysis.Scenarios.all
    else if List.mem workload Analysis.Scenarios.all then [ workload ]
    else begin
      Printf.eprintf "unknown workload %S (have: %s, all)\n" workload
        (String.concat ", " Analysis.Scenarios.all);
      exit 2
    end
  in
  let ok = List.for_all (fun name -> check name ~ci) names in
  if ci then
    if ok then print_endline "racecheck: all workloads match expectations"
    else begin
      print_endline "racecheck: expectation mismatch";
      exit 1
    end
  else if not ok then exit 1

let workload =
  let doc = "Workload to replay (or $(b,all))." in
  Arg.(value & opt string "all" & info [ "w"; "workload" ] ~docv:"NAME" ~doc)

let ci =
  let doc =
    "Assert per-workload expectations (clean workloads clean, seeded \
     races/findings present) instead of failing on any report."
  in
  Arg.(value & flag & info [ "ci" ] ~doc)

let cmd =
  let doc = "happens-before race detector for the remote-memory workloads" in
  Cmd.v
    (Cmd.info "racecheck" ~doc)
    Term.(const main $ workload $ ci)

let () = exit (Cmd.eval cmd)

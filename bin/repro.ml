(* repro — regenerate every table and figure of the paper.

   One subcommand per experiment; `repro all` runs the lot in the
   paper's order.  --json wraps each rendered report in a
   schema-versioned status object; --ci suppresses the report and
   asserts the experiment runs to completion. *)

open Cmdliner

let experiments =
  [
    ( "table1a",
      "Table 1a: summary of NFS RPC activity",
      fun () -> Experiments.Table1a.render (Experiments.Table1a.run ()) );
    ( "table1b",
      "Table 1b: control vs data traffic breakdown",
      fun () -> Experiments.Table1b.render (Experiments.Table1b.run ()) );
    ( "table2",
      "Table 2: remote memory operation performance",
      fun () -> Experiments.Table2.render (Experiments.Table2.run ()) );
    ( "table3",
      "Table 3: name server performance",
      fun () -> Experiments.Table3.render (Experiments.Table3.run ()) );
    ( "fig2",
      "Figure 2: client latency, HY vs DX",
      fun () -> Experiments.Fig2.render (Experiments.Fig2.run ()) );
    ( "fig3",
      "Figure 3: server CPU breakdown, HY vs DX",
      fun () -> Experiments.Fig3.render (Experiments.Fig3.run ()) );
    ( "headline",
      "The 50% server-load reduction headline",
      fun () -> Experiments.Headline.render (Experiments.Headline.run ()) );
    ( "scale",
      "Ablation A: scalability with client count",
      fun () -> Experiments.Scalability.render (Experiments.Scalability.run ())
    );
    ( "blocksize",
      "Ablation B: latency vs transfer size",
      fun () -> Experiments.Blocksize.render (Experiments.Blocksize.run ()) );
    ( "probes",
      "Ablation C: probing vs control transfer in name lookup",
      fun () ->
        Experiments.Probe_policy.render (Experiments.Probe_policy.run ()) );
    ( "coherence",
      "Ablation D: CAS vs RPC token coherence",
      fun () ->
        Experiments.Coherence_bench.render (Experiments.Coherence_bench.run ())
    );
    ( "security",
      "Ablation E: the cost of link encryption",
      fun () -> Experiments.Security.render (Experiments.Security.run ()) );
    ( "svm",
      "Ablation F: SVM vs remote memory (false sharing)",
      fun () -> Experiments.Svm_bench.render (Experiments.Svm_bench.run ()) );
    ( "amsg",
      "Ablation G: remote reads vs active messages vs RPC",
      fun () -> Experiments.Amsg_bench.render (Experiments.Amsg_bench.run ()) );
    ( "technology",
      "Ablation H: the trade-off across technology generations",
      fun () -> Experiments.Technology.render (Experiments.Technology.run ()) );
    ( "burst",
      "Ablation I: block-transfer burst size",
      fun () -> Experiments.Burst.render (Experiments.Burst.run ()) );
  ]

(* Run one experiment under the output mode; false on failure. *)
let run_one name body ~json ~ci =
  let module J = Analysis.Report.Json in
  match body () with
  | rendered ->
      if json then
        Analysis.Report.emit ~tool:"repro"
          (J.to_string
             (J.obj
                [
                  ("schema", J.int Analysis.Report.schema_version);
                  ("tool", J.str "repro");
                  ("experiment", J.str name);
                  ("status", J.str "ok");
                  ("report", J.str (if ci then "" else rendered));
                ]))
      else if ci then Printf.printf "repro: %s ok\n" name
      else print_string rendered;
      true
  | exception exn ->
      if json then
        Analysis.Report.emit ~tool:"repro"
          (J.to_string
             (J.obj
                [
                  ("schema", J.int Analysis.Report.schema_version);
                  ("tool", J.str "repro");
                  ("experiment", J.str name);
                  ("status", J.str "error");
                  ("detail", J.str (Printexc.to_string exn));
                ]));
      Printf.eprintf "repro: %s failed: %s\n" name (Printexc.to_string exn);
      false

let json_flag =
  let doc = "Emit a self-validated JSON status object per experiment." in
  Arg.(value & flag & info [ "json" ] ~doc)

let ci_flag =
  let doc =
    "Gate mode: suppress the rendered report, assert the experiment \
     completes, exit 1 otherwise."
  in
  Arg.(value & flag & info [ "ci" ] ~doc)

let command_of (name, doc, body) =
  let go json ci = if not (run_one name body ~json ~ci) then exit 1 in
  Cmd.v (Cmd.info name ~doc) Term.(const go $ json_flag $ ci_flag)

let all_cmd =
  let doc = "Run every experiment in the paper's order." in
  let go json ci =
    let ok =
      List.map
        (fun (name, _, body) ->
          if not (json || ci) then Printf.printf "==== %s ====\n%!" name;
          let ok = run_one name body ~json ~ci in
          if not (json || ci) then print_newline ();
          ok)
        experiments
    in
    if not (List.for_all Fun.id ok) then exit 1
  in
  Cmd.v (Cmd.info "all" ~doc) Term.(const go $ json_flag $ ci_flag)

let main =
  let doc =
    "Reproduce the tables and figures of 'Separating Data and Control \
     Transfer in Distributed Operating Systems' (ASPLOS 1994)"
  in
  Cmd.group
    (Cmd.info "repro" ~version:"1.0.0" ~doc)
    (all_cmd :: List.map command_of experiments)

let () = exit (Cmd.eval main)

(* nfstrace — generate and inspect synthetic NFS traces.

   A small operator tool around the workload library: summarize a
   trace's operation mix, dump individual events, or compute its
   control/data traffic split.  Every subcommand takes --json (one
   self-validated object on stdout) and --ci (sanity-assert the trace,
   exit 1 on violation). *)

open Cmdliner
module J = Analysis.Report.Json

let make_trace ~scale ~seed =
  let prng = Sim.Prng.create seed in
  let tree = Workload.File_tree.build prng in
  (tree, Workload.Trace.generate ~scale tree prng)

let scale_arg =
  let doc = "Scale divisor against the paper's 28.86M calls." in
  Arg.(value & opt int 1000 & info [ "scale" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "PRNG seed (same seed, same trace)." in
  Arg.(value & opt int 11 & info [ "seed" ] ~docv:"SEED" ~doc)

let json_arg =
  let doc = "Emit a self-validated JSON object instead of a table." in
  Arg.(value & flag & info [ "json" ] ~doc)

let ci_arg =
  let doc = "Sanity-assert the generated trace; exit 1 on violation." in
  Arg.(value & flag & info [ "ci" ] ~doc)

let header ~command ~scale ~seed =
  [
    ("schema", J.int Analysis.Report.schema_version);
    ("tool", J.str "nfstrace");
    ("command", J.str command);
    ("scale", J.int scale);
    ("seed", J.int seed);
  ]

(* --ci leg shared by the subcommands: the mix must be non-empty and
   its counts must account for every generated event exactly once. *)
let assert_trace ~command events =
  let counts = Workload.Trace.counts_by_label events in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 counts in
  if Array.length events = 0 then begin
    Printf.eprintf "nfstrace: %s: generated an empty trace\n" command;
    exit 1
  end;
  if total <> Array.length events then begin
    Printf.eprintf
      "nfstrace: %s: mix accounts for %d of %d events\n" command total
      (Array.length events);
    exit 1
  end;
  Printf.eprintf "nfstrace: %s ok (%d events, %d activities)\n" command
    (Array.length events) (List.length counts)

let summary scale seed json ci =
  let _, events = make_trace ~scale ~seed in
  let counts = Workload.Trace.counts_by_label events in
  if json then
    Analysis.Report.emit ~tool:"nfstrace"
      (J.to_string
         (J.obj
            (header ~command:"summary" ~scale ~seed
            @ [
                ("events", J.int (Array.length events));
                ( "mix",
                  J.list
                    (List.map
                       (fun (label, count) ->
                         J.obj
                           [ ("activity", J.str label); ("calls", J.int count) ])
                       counts) );
              ])))
  else begin
    let table =
      Metrics.Table.create
        ~title:
          (Printf.sprintf "Trace summary (%d events)" (Array.length events))
        [
          ("Activity", Metrics.Table.Left);
          ("Calls", Metrics.Table.Right);
          ("%", Metrics.Table.Right);
        ]
    in
    List.iter
      (fun (label, count) ->
        Metrics.Table.add_row table
          [
            label;
            string_of_int count;
            Printf.sprintf "%.1f"
              (100. *. float_of_int count /. float_of_int (Array.length events));
          ])
      counts;
    Metrics.Table.print table
  end;
  if ci then assert_trace ~command:"summary" events

let describe_op (op : Dfs.Nfs_ops.op) =
  match op with
  | Dfs.Nfs_ops.Null -> "null"
  | Dfs.Nfs_ops.Statfs -> "statfs"
  | Dfs.Nfs_ops.Get_attr { fh } -> Printf.sprintf "getattr fh=%d" fh
  | Dfs.Nfs_ops.Lookup { dir; name } -> Printf.sprintf "lookup dir=%d %S" dir name
  | Dfs.Nfs_ops.Read_link { fh } -> Printf.sprintf "readlink fh=%d" fh
  | Dfs.Nfs_ops.Read { fh; off; count } ->
      Printf.sprintf "read fh=%d off=%d count=%d" fh off count
  | Dfs.Nfs_ops.Read_dir { fh; count } ->
      Printf.sprintf "readdir fh=%d count=%d" fh count
  | Dfs.Nfs_ops.Write { fh; off; data } ->
      Printf.sprintf "write fh=%d off=%d count=%d" fh off (Bytes.length data)
  | Dfs.Nfs_ops.Set_attr { fh; mode; size } ->
      Printf.sprintf "setattr fh=%d mode=%o size=%d" fh mode size
  | Dfs.Nfs_ops.Create { dir; name } -> Printf.sprintf "create dir=%d %S" dir name
  | Dfs.Nfs_ops.Remove { dir; name } -> Printf.sprintf "remove dir=%d %S" dir name
  | Dfs.Nfs_ops.Rename { from_dir; from_name; to_dir; to_name } ->
      Printf.sprintf "rename %d/%S -> %d/%S" from_dir from_name to_dir to_name
  | Dfs.Nfs_ops.Mkdir { dir; name } -> Printf.sprintf "mkdir dir=%d %S" dir name
  | Dfs.Nfs_ops.Rmdir { dir; name } -> Printf.sprintf "rmdir dir=%d %S" dir name

let dump scale seed count json ci =
  let _, events = make_trace ~scale ~seed in
  if json then
    Analysis.Report.emit ~tool:"nfstrace"
      (J.to_string
         (J.obj
            (header ~command:"dump" ~scale ~seed
            @ [
                ("events", J.int (Array.length events));
                ( "head",
                  J.list
                    (List.filteri
                       (fun i _ -> i < count)
                       (Array.to_list events)
                    |> List.mapi (fun i (e : Workload.Trace.event) ->
                           J.obj
                             [
                               ("index", J.int i);
                               ("activity", J.str e.Workload.Trace.label);
                               ("op", J.str (describe_op e.Workload.Trace.op));
                             ])) );
              ])))
  else
    Array.iteri
      (fun i (e : Workload.Trace.event) ->
        if i < count then
          Printf.printf "%6d  %-26s %s\n" i e.Workload.Trace.label
            (describe_op e.Workload.Trace.op))
      events;
  if ci then assert_trace ~command:"dump" events

let traffic scale seed json ci =
  let tree, events = make_trace ~scale ~seed in
  let rows = Workload.Traffic.of_trace (Workload.File_tree.store tree) events in
  let total = Workload.Traffic.totals rows in
  if json then
    Analysis.Report.emit ~tool:"nfstrace"
      (J.to_string
         (J.obj
            (header ~command:"traffic" ~scale ~seed
            @ [
                ( "rows",
                  J.list
                    (List.map
                       (fun (r : Workload.Traffic.row) ->
                         J.obj
                           [
                             ("activity", J.str r.Workload.Traffic.label);
                             ( "control_bytes",
                               J.int r.Workload.Traffic.control );
                             ("data_bytes", J.int r.Workload.Traffic.data);
                           ])
                       rows) );
                ("control_bytes", J.int total.Workload.Traffic.control);
                ("data_bytes", J.int total.Workload.Traffic.data);
                ( "control_data_ratio",
                  J.raw
                    (Printf.sprintf "%.3f" (Workload.Traffic.ratio total)) );
              ])))
  else begin
    let table =
      Metrics.Table.create
        ~title:"Traffic split (per the paper's Table 1b rules)"
        [
          ("Activity", Metrics.Table.Left);
          ("Control (KB)", Metrics.Table.Right);
          ("Data (KB)", Metrics.Table.Right);
        ]
    in
    List.iter
      (fun (r : Workload.Traffic.row) ->
        Metrics.Table.add_row table
          [
            r.Workload.Traffic.label;
            Printf.sprintf "%.1f"
              (float_of_int r.Workload.Traffic.control /. 1024.);
            Printf.sprintf "%.1f" (float_of_int r.Workload.Traffic.data /. 1024.);
          ])
      rows;
    Metrics.Table.add_separator table;
    Metrics.Table.add_row table
      [
        "Total";
        Printf.sprintf "%.1f"
          (float_of_int total.Workload.Traffic.control /. 1024.);
        Printf.sprintf "%.1f" (float_of_int total.Workload.Traffic.data /. 1024.);
      ];
    Metrics.Table.print table;
    Printf.printf "overall control/data ratio: %.3f\n"
      (Workload.Traffic.ratio total)
  end;
  if ci then begin
    assert_trace ~command:"traffic" events;
    (* Both sides of the split must be present: a trace whose data side
       is zero would make the paper's ratio argument vacuous. *)
    if total.Workload.Traffic.control <= 0 || total.Workload.Traffic.data <= 0
    then begin
      Printf.eprintf "nfstrace: traffic: degenerate split (control=%d data=%d)\n"
        total.Workload.Traffic.control total.Workload.Traffic.data;
      exit 1
    end
  end

let summary_cmd =
  Cmd.v
    (Cmd.info "summary" ~doc:"Operation mix of a generated trace.")
    Term.(const summary $ scale_arg $ seed_arg $ json_arg $ ci_arg)

let dump_cmd =
  let count_arg =
    Arg.(value & opt int 25 & info [ "count" ] ~docv:"N" ~doc:"Events to print.")
  in
  Cmd.v
    (Cmd.info "dump" ~doc:"Print the first events of a generated trace.")
    Term.(const dump $ scale_arg $ seed_arg $ count_arg $ json_arg $ ci_arg)

let traffic_cmd =
  Cmd.v
    (Cmd.info "traffic" ~doc:"Control/data traffic split of a trace.")
    Term.(const traffic $ scale_arg $ seed_arg $ json_arg $ ci_arg)

let main =
  Cmd.group
    (Cmd.info "nfstrace" ~version:"1.0.0"
       ~doc:"Generate and inspect synthetic NFS traces (Table 1a mix)")
    [ summary_cmd; dump_cmd; traffic_cmd ]

let () = exit (Cmd.eval main)

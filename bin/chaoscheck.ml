(* chaoscheck — seeded fault-injection campaigns over the example
   workloads, with a replay-determinism check.

     dune exec bin/chaoscheck.exe --                        # default sweep
     dune exec bin/chaoscheck.exe -- -w replica --loss 0.10 --seed 7
     dune exec bin/chaoscheck.exe -- -w replica --partition
     dune exec bin/chaoscheck.exe -- -w crash_restart --crash --json
     dune exec bin/chaoscheck.exe -- --ci --json

   Every campaign is deterministic in (workload, plan, seed): each
   configuration runs twice and the two fault-event digests must be
   identical. In --ci mode the canonical matrix must also survive and
   converge: loss at 0 / 1% / 10% across the data workloads, one
   partition schedule over the replica store, and one crash/restart
   schedule exercising Stale_generation recovery. *)

open Cmdliner

let escape = Analysis.Report.json_escape

let outcome_json (o : Faults.Campaign.outcome) =
  let counters =
    o.counters
    |> List.map (fun (name, v) -> Printf.sprintf "\"%s\":%g" (escape name) v)
    |> String.concat ","
  in
  Printf.sprintf
    "{\"schema\":%d,\"workload\":\"%s\",\"seed\":%d,\"survived\":%b,\"converged\":%b,\"detail\":\"%s\",\"digest\":%d,\"events\":%d,\"retries\":%g,\"recovered\":%g,\"revalidations\":%g,\"gave_up\":%g,\"counters\":{%s}}"
    Analysis.Report.schema_version
    (escape o.workload) o.seed o.survived o.converged (escape o.detail)
    o.digest o.events o.retries o.recovered o.revalidations o.gave_up counters

let print_outcome ~label (o : Faults.Campaign.outcome) =
  Printf.printf
    "== %-17s %-22s seed %-4d %s%s  [%d fault(s), digest %x, retries %.0f, \
     recovered %.0f, revalidations %.0f, gave up %.0f]\n"
    o.workload label o.seed
    (if o.survived && o.converged then "ok"
     else if o.survived then "DIVERGED"
     else "DIED")
    (if o.detail = "" then "" else " — " ^ o.detail)
    o.events o.digest o.retries o.recovered o.revalidations o.gave_up

(* One configuration of the sweep: run twice, check the digests agree
   (the replay contract), report the first outcome. *)
type verdict = {
  label : string;
  outcome : Faults.Campaign.outcome;
  replayed : bool;
}

let run_config ~label ~plan ~seed workload =
  let first = Faults.Campaign.run ~plan ~seed workload in
  let second = Faults.Campaign.run ~plan ~seed workload in
  { label; outcome = first; replayed = first.digest = second.digest }

let healthy v = v.outcome.survived && v.outcome.converged && v.replayed

let report ~json ~out verdicts =
  if json then
    List.iter
      (fun v -> Analysis.Report.emit ~tool:"chaoscheck" (outcome_json v.outcome))
      verdicts
  else List.iter (fun v -> print_outcome ~label:v.label v.outcome) verdicts;
  List.iter
    (fun v ->
      if not v.replayed then
        Printf.fprintf out "   FAIL %s (%s): seed %d did not replay to the same fault sequence\n"
          v.outcome.workload v.label v.outcome.seed;
      if not (v.outcome.survived && v.outcome.converged) then
        Printf.fprintf out "   FAIL %s (%s): seed %d %s%s\n" v.outcome.workload
          v.label v.outcome.seed
          (if v.outcome.survived then "did not converge" else "did not survive")
          (if v.outcome.detail = "" then "" else " — " ^ v.outcome.detail))
    verdicts

(* The canonical matrix (also the @faults alias): every data workload
   under 0 / 1% / 10% loss, the replica store across a partition heal,
   and the crash/restart generation-bump recovery. *)
let ci_matrix () =
  let data_workloads =
    [ "quickstart"; "name_service"; "producer_consumer"; "replica" ]
  in
  let losses = [ 0.0; 0.01; 0.10 ] in
  let lossy =
    List.concat_map
      (fun loss ->
        List.mapi
          (fun i workload ->
            ( Printf.sprintf "loss %.0f%%" (loss *. 100.),
              Faults.Campaign.loss_plan loss,
              1000 + (17 * i) + int_of_float (loss *. 1000.),
              workload ))
          data_workloads)
      losses
  in
  lossy
  @ [
      ("partition heal", Faults.Campaign.partition_plan (), 2100, "replica");
      ("crash/restart", Faults.Campaign.crash_plan (), 2200, "crash_restart");
    ]

let run_ci ~json =
  let out = if json then stderr else stdout in
  let verdicts =
    List.map
      (fun (label, plan, seed, workload) ->
        run_config ~label ~plan ~seed workload)
      (ci_matrix ())
  in
  report ~json ~out verdicts;
  (* The crash/restart leg must demonstrate the full recovery chain:
     staleness seen, descriptor revalidated, operation recovered. *)
  let chain_ok =
    List.exists
      (fun v ->
        v.outcome.workload = "crash_restart"
        && v.outcome.revalidations >= 1.
        && v.outcome.recovered >= 1.)
      verdicts
  in
  if not chain_ok then
    Printf.fprintf out
      "   FAIL crash_restart: no Stale_generation -> revalidate -> recover \
       chain observed\n";
  if List.for_all healthy verdicts && chain_ok then
    Printf.fprintf out
      "chaoscheck: %d configuration(s) survived, converged and replayed\n"
      (List.length verdicts)
  else begin
    Printf.fprintf out "chaoscheck: campaign expectations not met\n";
    exit 1
  end

let main workload seed loss chaos partition crash json ci =
  if ci then run_ci ~json
  else begin
    let plan =
      let link =
        if chaos then (Faults.Campaign.chaos_plan loss).Faults.Plan.link
        else (Faults.Campaign.loss_plan loss).Faults.Plan.link
      in
      let partitions =
        if partition then
          (Faults.Campaign.partition_plan ()).Faults.Plan.partitions
        else []
      in
      let crashes =
        if crash then (Faults.Campaign.crash_plan ()).Faults.Plan.crashes
        else []
      in
      { Faults.Plan.link; partitions; crashes }
    in
    let names =
      if workload = "all" then Faults.Campaign.workloads
      else if List.mem workload Faults.Campaign.workloads then [ workload ]
      else begin
        Printf.eprintf "unknown workload %S (have: %s, all)\n" workload
          (String.concat ", " Faults.Campaign.workloads);
        exit 2
      end
    in
    let out = if json then stderr else stdout in
    let verdicts =
      List.map
        (fun name -> run_config ~label:"adhoc" ~plan ~seed name)
        names
    in
    report ~json ~out verdicts;
    if not (List.for_all healthy verdicts) then exit 1
  end

let workload =
  let doc = "Workload to torment (or $(b,all))." in
  Arg.(value & opt string "all" & info [ "w"; "workload" ] ~docv:"NAME" ~doc)

let seed =
  let doc = "PRNG seed for the fault plane." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)

let loss =
  let doc = "Per-frame loss probability on every link." in
  Arg.(value & opt float 0.10 & info [ "loss" ] ~docv:"P" ~doc)

let chaos =
  let doc =
    "Add corruption, duplication and delay-jitter on top of the loss rate."
  in
  Arg.(value & flag & info [ "chaos" ] ~doc)

let partition =
  let doc = "Add the canonical partition schedule (node 2 cut 10-30 ms)." in
  Arg.(value & flag & info [ "partition" ] ~doc)

let crash =
  let doc = "Add the canonical crash/restart schedule (node 1, 5/8 ms)." in
  Arg.(value & flag & info [ "crash" ] ~doc)

let json =
  let doc = "Emit one JSON object per campaign on stdout." in
  Arg.(value & flag & info [ "json" ] ~doc)

let ci =
  let doc =
    "Run the canonical matrix and fail on any non-convergence or replay \
     divergence."
  in
  Arg.(value & flag & info [ "ci" ] ~doc)

let cmd =
  let doc = "seeded fault-injection campaigns with deterministic replay" in
  let info = Cmd.info "chaoscheck" ~doc in
  Cmd.v info
    Term.(
      const main $ workload $ seed $ loss $ chaos $ partition $ crash $ json
      $ ci)

let () = exit (Cmd.eval cmd)

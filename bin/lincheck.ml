(* lincheck — linearizability (and per-cell sequential-consistency)
   checking of the operation histories the monitor captures.

     dune exec bin/lincheck.exe --                      # everything, FIFO
     dune exec bin/lincheck.exe -- -w kv_store
     dune exec bin/lincheck.exe -- --sc                 # SC-fallback mode
     dune exec bin/lincheck.exe -- -w cas_double_apply --explore
     dune exec bin/lincheck.exe -- -w cas_double_apply \
         --replay "0/4,0/3,0/2,0/3,0/2,0/2,0/2,1/2,0/2"
     dune exec bin/lincheck.exe -- --ci --json

   Sources of histories:

   - the example workloads ({!Analysis.Scenarios}), run under the
     default FIFO schedule;
   - the fault-free recovery-campaign workloads ({!Faults.Campaign}
     with the empty plan; crash_restart is excluded — restarts tear
     down endpoints mid-history), observed through the campaign's
     rmem probe;
   - the distributed data structures ({!Dds}: hashtable, queue, ABD
     register), each driven by clients in all three structurings at
     once, observed through the logical-operation hook.

   In --ci mode every FIFO history and every fault-free campaign
   history must be linearizable, and exploring the seeded workloads —
   cas_double_apply (the lost-reply double-apply) and
   dds_register_no_writeback (the ABD register whose read skips the
   write-back phase) — must surface non-linearizable schedules whose
   certificates replay to the same failure kind; neither bug is
   visible to any single-schedule checker. *)

open Cmdliner

let escape = Analysis.Report.json_escape

(* The campaign workloads whose fault-free histories are checked.
   crash_restart kills and reattaches endpoints, which orphans
   in-flight operations by design. *)
let campaign_workloads =
  [ "quickstart"; "name_service"; "producer_consumer"; "replica" ]

(* The distributed data structures ({!Dds}), each driven by clients in
   all three structurings at once with the logical-operation hook
   feeding the monitor. *)
let dds_workloads = [ "dds_hashtable"; "dds_queue"; "dds_register" ]

type source = Scenario | Campaign | Dds

let source_to_string = function
  | Scenario -> "scenario"
  | Campaign -> "campaign"
  | Dds -> "dds"

type check = {
  workload : string;
  source : source;
  mode : Analysis.Linearize.mode;
  verdict : Analysis.Linearize.verdict;
  detail : string;  (* non-verdict trouble, e.g. campaign divergence *)
}

let scenario_check ~mode name =
  let monitor = Analysis.Scenarios.run name in
  {
    workload = name;
    source = Scenario;
    mode;
    verdict = Analysis.Linearize.check ~mode (Analysis.Monitor.history monitor);
    detail = "";
  }

(* Run one campaign workload fault-free with a monitor subscribed to
   every endpoint through the campaign's rmem probe. *)
let campaign_check ~mode name =
  let monitor = ref None in
  Faults.Campaign.set_rmem_probe
    (Some
       (fun rmem ->
         let m =
           match !monitor with
           | Some m -> m
           | None ->
               let m =
                 Analysis.Monitor.create
                   (Cluster.Node.engine (Rmem.Remote_memory.node rmem))
               in
               monitor := Some m;
               m
         in
         Analysis.Monitor.attach_rmem m rmem));
  let outcome =
    Fun.protect
      ~finally:(fun () -> Faults.Campaign.set_rmem_probe None)
      (fun () -> Faults.Campaign.run ~seed:1 name)
  in
  let monitor =
    match !monitor with
    | Some m -> m
    | None -> failwith (name ^ ": campaign attached no endpoint")
  in
  {
    workload = name;
    source = Campaign;
    mode;
    verdict = Analysis.Linearize.check ~mode (Analysis.Monitor.history monitor);
    detail =
      (if outcome.Faults.Campaign.survived && outcome.Faults.Campaign.converged
       then ""
       else "campaign did not converge: " ^ outcome.Faults.Campaign.detail);
  }

(* ---------------- dds histories ---------------- *)

(* A fresh testbed with rmem + amsg on every node and a monitor
   subscribed to every endpoint; [body] receives the rig and the
   logical-operation hook and must run to quiescence. *)
let dds_rig n body =
  let testbed = Cluster.Testbed.create ~nodes:n () in
  let nodes = Array.init n (Cluster.Testbed.node testbed) in
  let rmems = Array.map Rmem.Remote_memory.attach nodes in
  let monitor = Analysis.Monitor.create (Cluster.Testbed.engine testbed) in
  Array.iter (Analysis.Monitor.attach_rmem monitor) rmems;
  let amsgs = Array.map Amsg.attach nodes in
  let hook = Analysis.Monitor.dds_hook monitor in
  Cluster.Testbed.run testbed (fun () ->
      body ~nodes ~rmems ~amsgs ~hook);
  monitor

let dds_join ~target counter =
  let rec join () =
    if !counter < target then begin
      Sim.Proc.wait (Sim.Time.ms 1);
      join ()
    end
  in
  join ()

(* Three clients — one per structuring — hammer a shared key and a
   private key of one server table. *)
let dds_hashtable () =
  dds_rig 4 (fun ~nodes ~rmems ~amsgs ~hook ->
      let s = Dds.Hashtable.server ~rmem:rmems.(0) ~amsg:amsgs.(0) ~slots:64 () in
      let done_ = ref 0 in
      for c = 1 to 3 do
        Cluster.Node.spawn nodes.(c) (fun () ->
            let t =
              Dds.Hashtable.client ~rmem:rmems.(c) ~amsg:amsgs.(c)
                ~kind:(List.nth Dds.Kind.all (c - 1))
                ~hook s
            in
            for i = 1 to 5 do
              Dds.Hashtable.insert t ~key:9l
                ~value:(Int32.of_int ((c * 10) + i));
              ignore (Dds.Hashtable.lookup t 9l);
              Dds.Hashtable.insert t ~key:(Int32.of_int (100 + c))
                ~value:(Int32.of_int i)
            done;
            incr done_)
      done;
      dds_join ~target:3 done_)

(* Two mixed-kind producers, one hybrid consumer draining everything. *)
let dds_queue () =
  dds_rig 4 (fun ~nodes ~rmems ~amsgs ~hook ->
      let s = Dds.Queue.server ~rmem:rmems.(0) ~amsg:amsgs.(0) ~capacity:64 () in
      let consumed = ref 0 in
      for p = 1 to 2 do
        Cluster.Node.spawn nodes.(p) (fun () ->
            let t =
              Dds.Queue.client ~rmem:rmems.(p) ~amsg:amsgs.(p)
                ~kind:(if p = 1 then Dds.Kind.Dx else Dds.Kind.Rpc)
                ~hook s
            in
            for i = 0 to 9 do
              ignore (Dds.Queue.enqueue t (Int32.of_int ((p * 100) + i)))
            done;
            Dds.Queue.flush t)
      done;
      Cluster.Node.spawn nodes.(3) (fun () ->
          let t =
            Dds.Queue.client ~rmem:rmems.(3) ~amsg:amsgs.(3)
              ~kind:Dds.Kind.Hybrid ~hook s
          in
          for _ = 1 to 20 do
            ignore (Dds.Queue.dequeue t);
            incr consumed
          done);
      dds_join ~target:20 consumed)

(* Three writer/reader clients — one per structuring — over one
   3-replica ABD register. *)
let dds_register () =
  dds_rig 6 (fun ~nodes ~rmems ~amsgs ~hook ->
      let reps =
        Array.init 3 (fun k ->
            Dds.Register.replica ~rmem:rmems.(k) ~amsg:amsgs.(k) ())
      in
      let done_ = ref 0 in
      List.iteri
        (fun i (c, kind) ->
          Cluster.Node.spawn nodes.(c) (fun () ->
              let t =
                Dds.Register.client ~rmem:rmems.(c) ~amsg:amsgs.(c) ~kind
                  ~rank:(i + 1) ~hook reps
              in
              for v = 1 to 4 do
                ignore (Dds.Register.write t (Int32.of_int ((c * 10) + v)));
                ignore (Dds.Register.read t)
              done;
              incr done_))
        [ (3, Dds.Kind.Dx); (4, Dds.Kind.Rpc); (5, Dds.Kind.Hybrid) ];
      dds_join ~target:3 done_)

let dds_check ~mode name =
  let monitor =
    match name with
    | "dds_hashtable" -> dds_hashtable ()
    | "dds_queue" -> dds_queue ()
    | "dds_register" -> dds_register ()
    | _ -> invalid_arg ("dds_check: " ^ name)
  in
  {
    workload = name;
    source = Dds;
    mode;
    verdict = Analysis.Linearize.check ~mode (Analysis.Monitor.history monitor);
    detail = "";
  }

let check_ok c =
  c.detail = ""
  && match c.verdict with Analysis.Linearize.Pass _ -> true | _ -> false

let verdict_stats = function
  | Analysis.Linearize.Pass stats -> stats
  | Analysis.Linearize.Fail { stats; _ } -> stats

let print_check c =
  let stats = verdict_stats c.verdict in
  Printf.printf "== %-22s (%s, %s): %s  [%d cell(s), %d event(s), %d state(s)%s]\n"
    c.workload (source_to_string c.source)
    (Analysis.Linearize.mode_to_string c.mode)
    (if check_ok c then "ok"
     else if c.detail <> "" then c.detail
     else Analysis.Linearize.describe c.verdict)
    stats.Analysis.Linearize.cells stats.Analysis.Linearize.events
    stats.Analysis.Linearize.explored
    (if stats.Analysis.Linearize.skipped > 0 then
       Printf.sprintf ", %d skipped" stats.Analysis.Linearize.skipped
     else "")

let witness_json events =
  events
  |> List.map (fun e ->
         Printf.sprintf "\"%s\"" (escape (Analysis.History.event_to_string e)))
  |> String.concat ","

let check_json c =
  let stats = verdict_stats c.verdict in
  let status, witness =
    match c.verdict with
    | Analysis.Linearize.Pass _ ->
        ((if c.detail = "" then "ok" else "error"), "")
    | Analysis.Linearize.Fail { witness; _ } -> ("violation", witness_json witness)
  in
  Printf.sprintf
    "{\"schema\":%d,\"tool\":\"lincheck\",\"workload\":\"%s\",\"source\":\"%s\",\"mode\":\"%s\",\"status\":\"%s\",\"detail\":\"%s\",\"witness\":[%s],\"stats\":{\"cells\":%d,\"events\":%d,\"explored\":%d,\"skipped\":%d}}"
    Analysis.Report.schema_version (escape c.workload)
    (source_to_string c.source)
    (escape (Analysis.Linearize.mode_to_string c.mode))
    status
    (escape
       (if c.detail <> "" then c.detail
        else
          match c.verdict with
          | Analysis.Linearize.Pass _ -> ""
          | v -> Analysis.Linearize.describe v))
    witness stats.Analysis.Linearize.cells stats.Analysis.Linearize.events
    stats.Analysis.Linearize.explored stats.Analysis.Linearize.skipped

(* ---------------- exploration (the seeded bug) ---------------- *)

let explore_outcome_json (o : Analysis.Explore.outcome) =
  let kind, detail =
    match o.failure with
    | None -> ("ok", "")
    | Some f ->
        (Analysis.Explore.failure_kind f, Analysis.Explore.describe_failure f)
  in
  Printf.sprintf
    "{\"schema\":%d,\"tool\":\"lincheck\",\"schedule\":\"%s\",\"choice_points\":%d,\"status\":\"%s\",\"detail\":\"%s\"}"
    Analysis.Report.schema_version
    (escape (Analysis.Schedule.to_string o.schedule))
    o.choice_points (escape kind) (escape detail)

let print_explore_outcome ~label (o : Analysis.Explore.outcome) =
  let kind, detail =
    match o.failure with
    | None -> ("ok", "")
    | Some f ->
        (Analysis.Explore.failure_kind f, Analysis.Explore.describe_failure f)
  in
  Printf.printf "   %s: %s%s  [schedule %s]\n" label kind
    (if detail = "" then "" else " — " ^ detail)
    (Analysis.Schedule.to_string o.schedule)

let lin_failures (r : Analysis.Explore.result) =
  List.filter
    (fun (o : Analysis.Explore.outcome) ->
      match o.failure with
      | Some (Analysis.Explore.Non_linearizable _) -> true
      | _ -> false)
    r.failures

let run_explore name ~json ~out =
  let r = Analysis.Explore.explore name in
  let lin = lin_failures r in
  if json then
    List.iter
      (fun o -> Analysis.Report.emit ~tool:"lincheck" (explore_outcome_json o))
      lin
  else begin
    Printf.printf
      "== %s: %d schedule(s), %d distinct, %d non-linearizable\n" name
      r.stats.executed r.stats.distinct (List.length lin);
    List.iter (fun o -> print_explore_outcome ~label:"violation" o) lin
  end;
  (* The exploration contract: a linearizability failure exists and its
     certificate replays to the same kind. *)
  match lin with
  | [] ->
      Printf.fprintf out "   FAIL %s: no non-linearizable schedule found\n" name;
      false
  | (first : Analysis.Explore.outcome) :: _ -> (
      let replayed = Analysis.Explore.replay name first.schedule in
      match replayed.failure with
      | Some (Analysis.Explore.Non_linearizable _) -> true
      | _ ->
          Printf.fprintf out
            "   FAIL %s: certificate %s did not replay to a linearizability \
             failure\n"
            name
            (Analysis.Schedule.to_string first.schedule);
          false)

let run_replay name cert ~json =
  let schedule =
    try Analysis.Schedule.of_string cert
    with Invalid_argument msg ->
      Printf.eprintf "%s\n" msg;
      exit 2
  in
  let outcome = Analysis.Explore.replay name schedule in
  if json then Analysis.Report.emit ~tool:"lincheck" (explore_outcome_json outcome)
  else print_explore_outcome ~label:(Printf.sprintf "replay %s" name) outcome;
  if outcome.failure <> None then exit 1

(* ---------------- driver ---------------- *)

let main workload sc json ci explore replay =
  let mode =
    if sc then Analysis.Linearize.Sequential else Analysis.Linearize.Linearizable
  in
  let out = if json then stderr else stdout in
  match replay with
  | Some cert ->
      if List.mem workload Analysis.Scenarios.checked then
        run_replay workload cert ~json
      else begin
        Printf.eprintf "--replay needs -w naming one of: %s\n"
          (String.concat ", " Analysis.Scenarios.checked);
        exit 2
      end
  | None ->
      if explore then begin
        let name = if workload = "all" then "cas_double_apply" else workload in
        if not (run_explore name ~json ~out) then exit 1
      end
      else begin
        let scenarios, campaigns, dds =
          if workload = "all" then
            (Analysis.Scenarios.checked, campaign_workloads, dds_workloads)
          else if List.mem workload Analysis.Scenarios.checked then
            ([ workload ], [], [])
          else if List.mem workload campaign_workloads then ([], [ workload ], [])
          else if List.mem workload dds_workloads then ([], [], [ workload ])
          else begin
            Printf.eprintf "unknown workload %S (have: %s, all)\n" workload
              (String.concat ", "
                 (Analysis.Scenarios.checked @ campaign_workloads
                @ dds_workloads));
            exit 2
          end
        in
        let checks =
          List.map (scenario_check ~mode) scenarios
          @ List.map (campaign_check ~mode) campaigns
          @ List.map (dds_check ~mode) dds
        in
        if json then
          List.iter
            (fun c -> Analysis.Report.emit ~tool:"lincheck" (check_json c))
            checks
        else List.iter print_check checks;
        let fifo_ok = List.for_all check_ok checks in
        if ci then begin
          (* Also require the seeded schedule bugs to be caught (and
             their certificates to replay) when checking the full set:
             the lost-reply double-apply, and the dds register whose
             read skips the write-back phase. *)
          let explored_ok =
            workload <> "all"
            || List.for_all
                 (fun name -> run_explore name ~json ~out)
                 [ "cas_double_apply"; "dds_register_no_writeback" ]
          in
          if fifo_ok && explored_ok then
            Printf.fprintf out
              "lincheck: all histories linearizable; seeded bugs caught\n"
          else begin
            Printf.fprintf out "lincheck: expectation mismatch\n";
            exit 1
          end
        end
        else if not fifo_ok then exit 1
      end

let workload =
  let doc =
    "Workload to check (a scenario, a campaign workload, a dds \
     workload, or $(b,all))."
  in
  Arg.(value & opt string "all" & info [ "w"; "workload" ] ~docv:"NAME" ~doc)

let sc =
  let doc =
    "Check per-cell sequential consistency (program order only) instead \
     of linearizability. Per-cell SC is a necessary condition for \
     whole-history SC, not sufficient — SC does not compose."
  in
  Arg.(value & flag & info [ "sc" ] ~doc)

let json =
  let doc =
    "Emit one JSON object per check on stdout (diagnostics to stderr)."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

let ci =
  let doc =
    "Assert expectations: every FIFO, fault-free campaign and dds \
     history is linearizable, and exploration catches the seeded \
     cas_double_apply and dds_register_no_writeback bugs with \
     replayable certificates."
  in
  Arg.(value & flag & info [ "ci" ] ~doc)

let explore =
  let doc =
    "Explore the workload's schedule space (default: cas_double_apply) \
     and report the non-linearizable schedules; exits 1 if none is \
     found or the first certificate does not replay."
  in
  Arg.(value & flag & info [ "explore" ] ~doc)

let replay =
  let doc =
    "Replay one schedule certificate ($(b,index/count) pairs joined by \
     commas, or $(b,-) for FIFO) against the $(b,-w) workload and \
     report its outcome."
  in
  Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"CERT" ~doc)

let cmd =
  let doc = "Linearizability checker for captured operation histories" in
  Cmd.v
    (Cmd.info "lincheck" ~doc)
    Term.(const main $ workload $ sc $ json $ ci $ explore $ replay)

let () = exit (Cmd.eval cmd)

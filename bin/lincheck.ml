(* lincheck — linearizability (and per-cell sequential-consistency)
   checking of the operation histories the monitor captures.

     dune exec bin/lincheck.exe --                      # everything, FIFO
     dune exec bin/lincheck.exe -- -w kv_store
     dune exec bin/lincheck.exe -- --sc                 # SC-fallback mode
     dune exec bin/lincheck.exe -- -w cas_double_apply --explore
     dune exec bin/lincheck.exe -- -w cas_double_apply \
         --replay "0/4,0/3,0/2,0/3,0/2,0/2,0/2,1/2,0/2"
     dune exec bin/lincheck.exe -- --ci --json

   Sources of histories:

   - the example workloads ({!Analysis.Scenarios}), run under the
     default FIFO schedule;
   - the fault-free recovery-campaign workloads ({!Faults.Campaign}
     with the empty plan; crash_restart is excluded — restarts tear
     down endpoints mid-history), observed through the campaign's
     rmem probe.

   In --ci mode every FIFO history and every fault-free campaign
   history must be linearizable, and exploring the seeded
   cas_double_apply workload must surface a non-linearizable schedule
   whose certificate replays to the same failure kind — the lost-reply
   double-apply that no single-schedule checker can see. *)

open Cmdliner

let escape = Analysis.Report.json_escape

(* The campaign workloads whose fault-free histories are checked.
   crash_restart kills and reattaches endpoints, which orphans
   in-flight operations by design. *)
let campaign_workloads =
  [ "quickstart"; "name_service"; "producer_consumer"; "replica" ]

type source = Scenario | Campaign

let source_to_string = function
  | Scenario -> "scenario"
  | Campaign -> "campaign"

type check = {
  workload : string;
  source : source;
  mode : Analysis.Linearize.mode;
  verdict : Analysis.Linearize.verdict;
  detail : string;  (* non-verdict trouble, e.g. campaign divergence *)
}

let scenario_check ~mode name =
  let monitor = Analysis.Scenarios.run name in
  {
    workload = name;
    source = Scenario;
    mode;
    verdict = Analysis.Linearize.check ~mode (Analysis.Monitor.history monitor);
    detail = "";
  }

(* Run one campaign workload fault-free with a monitor subscribed to
   every endpoint through the campaign's rmem probe. *)
let campaign_check ~mode name =
  let monitor = ref None in
  Faults.Campaign.set_rmem_probe
    (Some
       (fun rmem ->
         let m =
           match !monitor with
           | Some m -> m
           | None ->
               let m =
                 Analysis.Monitor.create
                   (Cluster.Node.engine (Rmem.Remote_memory.node rmem))
               in
               monitor := Some m;
               m
         in
         Analysis.Monitor.attach_rmem m rmem));
  let outcome =
    Fun.protect
      ~finally:(fun () -> Faults.Campaign.set_rmem_probe None)
      (fun () -> Faults.Campaign.run ~seed:1 name)
  in
  let monitor =
    match !monitor with
    | Some m -> m
    | None -> failwith (name ^ ": campaign attached no endpoint")
  in
  {
    workload = name;
    source = Campaign;
    mode;
    verdict = Analysis.Linearize.check ~mode (Analysis.Monitor.history monitor);
    detail =
      (if outcome.Faults.Campaign.survived && outcome.Faults.Campaign.converged
       then ""
       else "campaign did not converge: " ^ outcome.Faults.Campaign.detail);
  }

let check_ok c =
  c.detail = ""
  && match c.verdict with Analysis.Linearize.Pass _ -> true | _ -> false

let verdict_stats = function
  | Analysis.Linearize.Pass stats -> stats
  | Analysis.Linearize.Fail { stats; _ } -> stats

let print_check c =
  let stats = verdict_stats c.verdict in
  Printf.printf "== %-22s (%s, %s): %s  [%d cell(s), %d event(s), %d state(s)%s]\n"
    c.workload (source_to_string c.source)
    (Analysis.Linearize.mode_to_string c.mode)
    (if check_ok c then "ok"
     else if c.detail <> "" then c.detail
     else Analysis.Linearize.describe c.verdict)
    stats.Analysis.Linearize.cells stats.Analysis.Linearize.events
    stats.Analysis.Linearize.explored
    (if stats.Analysis.Linearize.skipped > 0 then
       Printf.sprintf ", %d skipped" stats.Analysis.Linearize.skipped
     else "")

let witness_json events =
  events
  |> List.map (fun e ->
         Printf.sprintf "\"%s\"" (escape (Analysis.History.event_to_string e)))
  |> String.concat ","

let check_json c =
  let stats = verdict_stats c.verdict in
  let status, witness =
    match c.verdict with
    | Analysis.Linearize.Pass _ ->
        ((if c.detail = "" then "ok" else "error"), "")
    | Analysis.Linearize.Fail { witness; _ } -> ("violation", witness_json witness)
  in
  Printf.sprintf
    "{\"schema\":%d,\"tool\":\"lincheck\",\"workload\":\"%s\",\"source\":\"%s\",\"mode\":\"%s\",\"status\":\"%s\",\"detail\":\"%s\",\"witness\":[%s],\"stats\":{\"cells\":%d,\"events\":%d,\"explored\":%d,\"skipped\":%d}}"
    Analysis.Report.schema_version (escape c.workload)
    (source_to_string c.source)
    (escape (Analysis.Linearize.mode_to_string c.mode))
    status
    (escape
       (if c.detail <> "" then c.detail
        else
          match c.verdict with
          | Analysis.Linearize.Pass _ -> ""
          | v -> Analysis.Linearize.describe v))
    witness stats.Analysis.Linearize.cells stats.Analysis.Linearize.events
    stats.Analysis.Linearize.explored stats.Analysis.Linearize.skipped

(* ---------------- exploration (the seeded bug) ---------------- *)

let explore_outcome_json (o : Analysis.Explore.outcome) =
  let kind, detail =
    match o.failure with
    | None -> ("ok", "")
    | Some f ->
        (Analysis.Explore.failure_kind f, Analysis.Explore.describe_failure f)
  in
  Printf.sprintf
    "{\"schema\":%d,\"tool\":\"lincheck\",\"schedule\":\"%s\",\"choice_points\":%d,\"status\":\"%s\",\"detail\":\"%s\"}"
    Analysis.Report.schema_version
    (escape (Analysis.Schedule.to_string o.schedule))
    o.choice_points (escape kind) (escape detail)

let print_explore_outcome ~label (o : Analysis.Explore.outcome) =
  let kind, detail =
    match o.failure with
    | None -> ("ok", "")
    | Some f ->
        (Analysis.Explore.failure_kind f, Analysis.Explore.describe_failure f)
  in
  Printf.printf "   %s: %s%s  [schedule %s]\n" label kind
    (if detail = "" then "" else " — " ^ detail)
    (Analysis.Schedule.to_string o.schedule)

let lin_failures (r : Analysis.Explore.result) =
  List.filter
    (fun (o : Analysis.Explore.outcome) ->
      match o.failure with
      | Some (Analysis.Explore.Non_linearizable _) -> true
      | _ -> false)
    r.failures

let run_explore name ~json ~out =
  let r = Analysis.Explore.explore name in
  let lin = lin_failures r in
  if json then
    List.iter
      (fun o -> Analysis.Report.emit ~tool:"lincheck" (explore_outcome_json o))
      lin
  else begin
    Printf.printf
      "== %s: %d schedule(s), %d distinct, %d non-linearizable\n" name
      r.stats.executed r.stats.distinct (List.length lin);
    List.iter (fun o -> print_explore_outcome ~label:"violation" o) lin
  end;
  (* The exploration contract: a linearizability failure exists and its
     certificate replays to the same kind. *)
  match lin with
  | [] ->
      Printf.fprintf out "   FAIL %s: no non-linearizable schedule found\n" name;
      false
  | (first : Analysis.Explore.outcome) :: _ -> (
      let replayed = Analysis.Explore.replay name first.schedule in
      match replayed.failure with
      | Some (Analysis.Explore.Non_linearizable _) -> true
      | _ ->
          Printf.fprintf out
            "   FAIL %s: certificate %s did not replay to a linearizability \
             failure\n"
            name
            (Analysis.Schedule.to_string first.schedule);
          false)

let run_replay name cert ~json =
  let schedule =
    try Analysis.Schedule.of_string cert
    with Invalid_argument msg ->
      Printf.eprintf "%s\n" msg;
      exit 2
  in
  let outcome = Analysis.Explore.replay name schedule in
  if json then Analysis.Report.emit ~tool:"lincheck" (explore_outcome_json outcome)
  else print_explore_outcome ~label:(Printf.sprintf "replay %s" name) outcome;
  if outcome.failure <> None then exit 1

(* ---------------- driver ---------------- *)

let main workload sc json ci explore replay =
  let mode =
    if sc then Analysis.Linearize.Sequential else Analysis.Linearize.Linearizable
  in
  let out = if json then stderr else stdout in
  match replay with
  | Some cert ->
      if List.mem workload Analysis.Scenarios.checked then
        run_replay workload cert ~json
      else begin
        Printf.eprintf "--replay needs -w naming one of: %s\n"
          (String.concat ", " Analysis.Scenarios.checked);
        exit 2
      end
  | None ->
      if explore then begin
        let name = if workload = "all" then "cas_double_apply" else workload in
        if not (run_explore name ~json ~out) then exit 1
      end
      else begin
        let scenarios, campaigns =
          if workload = "all" then (Analysis.Scenarios.checked, campaign_workloads)
          else if List.mem workload Analysis.Scenarios.checked then
            ([ workload ], [])
          else if List.mem workload campaign_workloads then ([], [ workload ])
          else begin
            Printf.eprintf "unknown workload %S (have: %s, all)\n" workload
              (String.concat ", "
                 (Analysis.Scenarios.checked @ campaign_workloads));
            exit 2
          end
        in
        let checks =
          List.map (scenario_check ~mode) scenarios
          @ List.map (campaign_check ~mode) campaigns
        in
        if json then
          List.iter
            (fun c -> Analysis.Report.emit ~tool:"lincheck" (check_json c))
            checks
        else List.iter print_check checks;
        let fifo_ok = List.for_all check_ok checks in
        if ci then begin
          (* Also require the seeded double-apply bug to be caught (and
             its certificate to replay) when checking the full set. *)
          let explored_ok =
            workload <> "all" || run_explore "cas_double_apply" ~json ~out
          in
          if fifo_ok && explored_ok then
            Printf.fprintf out
              "lincheck: all histories linearizable; seeded bug caught\n"
          else begin
            Printf.fprintf out "lincheck: expectation mismatch\n";
            exit 1
          end
        end
        else if not fifo_ok then exit 1
      end

let workload =
  let doc =
    "Workload to check (a scenario, a campaign workload, or $(b,all))."
  in
  Arg.(value & opt string "all" & info [ "w"; "workload" ] ~docv:"NAME" ~doc)

let sc =
  let doc =
    "Check per-cell sequential consistency (program order only) instead \
     of linearizability. Per-cell SC is a necessary condition for \
     whole-history SC, not sufficient — SC does not compose."
  in
  Arg.(value & flag & info [ "sc" ] ~doc)

let json =
  let doc =
    "Emit one JSON object per check on stdout (diagnostics to stderr)."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

let ci =
  let doc =
    "Assert expectations: every FIFO and fault-free campaign history is \
     linearizable, and exploration catches the seeded cas_double_apply \
     bug with a replayable certificate."
  in
  Arg.(value & flag & info [ "ci" ] ~doc)

let explore =
  let doc =
    "Explore the workload's schedule space (default: cas_double_apply) \
     and report the non-linearizable schedules; exits 1 if none is \
     found or the first certificate does not replay."
  in
  Arg.(value & flag & info [ "explore" ] ~doc)

let replay =
  let doc =
    "Replay one schedule certificate ($(b,index/count) pairs joined by \
     commas, or $(b,-) for FIFO) against the $(b,-w) workload and \
     report its outcome."
  in
  Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"CERT" ~doc)

let cmd =
  let doc = "Linearizability checker for captured operation histories" in
  Cmd.v
    (Cmd.info "lincheck" ~doc)
    Term.(const main $ workload $ sc $ json $ ci $ explore $ replay)

let () = exit (Cmd.eval cmd)

(* The distributed file service's server.

   The server exports its cache areas (attributes, name-lookup results,
   symlink targets, directory contents, file blocks) plus a statfs
   hint region and a Hybrid-1 request segment.  DX clerks read and
   write the caches directly with remote memory operations — the server
   CPU is involved only in emulating those accesses.  Hybrid-1 requests
   arrive as writes-with-notification; a service procedure then runs and
   remote-writes the result into the requesting clerk's reply segment. *)

type t = {
  rmem : Rmem.Remote_memory.t;
  node : Cluster.Node.t;
  clerk : Names.Clerk.t; (* name-service clerk on the server machine *)
  store : File_store.t;
  space : Cluster.Address_space.t;
  attr_cache : Slot_cache.t;
  name_cache : Slot_cache.t;
  link_cache : Slot_cache.t;
  dir_cache : Slot_cache.t;
  file_cache : Slot_cache.t;
  reply_descriptors : (int, Rmem.Descriptor.t) Hashtbl.t;
  push_targets : (int, Rmem.Descriptor.t) Hashtbl.t;
  mutable hybrid_served : int;
  mutable blocks_pushed : int;
}

let costs t = Cluster.Node.costs t.node
let cpu t = Cluster.Node.cpu t.node

let name_key name = Names.Record.fnv_hash name

(* Execute an operation against the local file store. *)
let execute store op =
  try
    match op with
    | Nfs_ops.Null -> Nfs_ops.R_null
    | Nfs_ops.Get_attr { fh } -> Nfs_ops.R_attr (File_store.getattr store fh)
    | Nfs_ops.Lookup { dir; name } ->
        let fh = File_store.lookup store ~dir ~name in
        Nfs_ops.R_lookup { fh; attr = File_store.getattr store fh }
    | Nfs_ops.Read_link { fh } -> Nfs_ops.R_link (File_store.readlink store fh)
    | Nfs_ops.Read { fh; off; count } ->
        Nfs_ops.R_data (File_store.read store fh ~off ~count)
    | Nfs_ops.Read_dir { fh; count } ->
        let packed = File_store.encode_entries (File_store.readdir store fh) in
        let count = Stdlib.min count (Bytes.length packed) in
        Nfs_ops.R_entries (Bytes.sub packed 0 count)
    | Nfs_ops.Statfs -> Nfs_ops.R_statfs (File_store.statfs store)
    | Nfs_ops.Write { fh; off; data } ->
        File_store.write store fh ~off data;
        Nfs_ops.R_write (File_store.getattr store fh)
    | Nfs_ops.Set_attr { fh; mode; size } ->
        File_store.set_attr store fh ~mode ~size ();
        Nfs_ops.R_attr (File_store.getattr store fh)
    | Nfs_ops.Create { dir; name } ->
        let fh = File_store.create_file store ~dir ~name () in
        Nfs_ops.R_lookup { fh; attr = File_store.getattr store fh }
    | Nfs_ops.Mkdir { dir; name } ->
        let fh = File_store.mkdir store ~dir ~name () in
        Nfs_ops.R_lookup { fh; attr = File_store.getattr store fh }
    | Nfs_ops.Remove { dir; name } ->
        File_store.remove store ~dir ~name;
        Nfs_ops.R_null
    | Nfs_ops.Rmdir { dir; name } ->
        File_store.rmdir store ~dir ~name;
        Nfs_ops.R_null
    | Nfs_ops.Rename { from_dir; from_name; to_dir; to_name } ->
        File_store.rename store ~from_dir ~from_name ~to_dir ~to_name;
        Nfs_ops.R_null
  with
  | File_store.No_such_file _ -> Nfs_ops.R_error 2
  | File_store.Not_a_directory _ -> Nfs_ops.R_error 20
  | File_store.Not_a_symlink _ | File_store.Not_a_file _ -> Nfs_ops.R_error 22
  | File_store.Name_exists _ -> Nfs_ops.R_error 17
  | File_store.Not_empty _ -> Nfs_ops.R_error 66

(* ------------------------------------------------------------------ *)
(* Cache maintenance (server side, local memory operations).           *)

let publish_statfs t =
  let s = File_store.statfs t.store in
  let b = Bytes.make Layout.statfs_bytes '\000' in
  Bytes.set_int32_le b 0 1l (* valid *);
  Bytes.set_int32_le b 4 (Int32.of_int s.File_store.total_blocks);
  Bytes.set_int32_le b 8 (Int32.of_int s.File_store.free_blocks);
  Bytes.set_int32_le b 12 (Int32.of_int s.File_store.files);
  Bytes.set_int32_le b 16 (Int32.of_int s.File_store.block_size);
  Cluster.Address_space.write t.space ~addr:Layout.statfs_base b

let cache_attr t fh =
  let attr = File_store.getattr t.store fh in
  Slot_cache.install t.attr_cache ~key1:fh ~key2:0 (Nfs_ops.encode_attr attr)

let cache_name t ~dir ~name =
  let fh = File_store.lookup t.store ~dir ~name in
  let attr = File_store.getattr t.store fh in
  let payload = Bytes.create (4 + File_store.attr_bytes) in
  Bytes.set_int32_le payload 0 (Int32.of_int fh);
  Bytes.blit (Nfs_ops.encode_attr attr) 0 payload 4 File_store.attr_bytes;
  Slot_cache.install t.name_cache ~key1:dir ~key2:(name_key name) payload

let cache_link t fh =
  let target = File_store.readlink t.store fh in
  Slot_cache.install t.link_cache ~key1:fh ~key2:0
    (Bytes.of_string target)

let cache_dir t fh =
  let packed = File_store.encode_entries (File_store.readdir t.store fh) in
  let total = Bytes.length packed in
  let chunk = Layout.dir_chunk_bytes in
  let rec go i =
    let off = i * chunk in
    if off < total || (total = 0 && i = 0) then begin
      let len = Stdlib.min chunk (total - off) in
      Slot_cache.install t.dir_cache ~key1:fh ~key2:i (Bytes.sub packed off len);
      go (i + 1)
    end
  in
  go 0

let cache_file_block t fh ~block =
  let data =
    File_store.read t.store fh ~off:(block * File_store.block_bytes)
      ~count:File_store.block_bytes
  in
  let data =
    if Bytes.length data < File_store.block_bytes then begin
      let b = Bytes.make File_store.block_bytes '\000' in
      Bytes.blit data 0 b 0 (Bytes.length data);
      b
    end
    else data
  in
  Slot_cache.install t.file_cache ~key1:fh ~key2:block data

(* Walk the whole store and warm every cache area: the experiments'
   100%-server-cache-hit regime. *)
let warm_all_caches t =
  let rec walk dir =
    List.iter
      (fun (name, fh) ->
        cache_name t ~dir ~name;
        cache_attr t fh;
        match (File_store.getattr t.store fh).File_store.kind with
        | File_store.Regular ->
            let size = (File_store.getattr t.store fh).File_store.size in
            let blocks =
              Stdlib.max 1
                ((size + File_store.block_bytes - 1) / File_store.block_bytes)
            in
            for block = 0 to blocks - 1 do
              cache_file_block t fh ~block
            done
        | File_store.Symlink -> cache_link t fh
        | File_store.Directory ->
            cache_dir t fh;
            walk fh)
      (File_store.readdir t.store dir)
  in
  cache_attr t (File_store.root t.store);
  cache_dir t (File_store.root t.store);
  walk (File_store.root t.store);
  publish_statfs t

(* Eager push (§3.2): the server updates the local caches of subscribed
   clerks with one-way remote writes — no clerk is scheduled or woken,
   it simply finds fresher data on its next local lookup. *)
let enable_eager_push t ~client =
  let key = Atm.Addr.to_int client in
  if not (Hashtbl.mem t.push_targets key) then begin
    let desc =
      Names.Api.import ~hint:client t.clerk (Layout.lcache_name_for client)
    in
    Hashtbl.replace t.push_targets key desc
  end

let push_block t ~fh ~block =
  match Slot_cache.lookup_local t.file_cache ~key1:fh ~key2:block with
  | None -> ()
  | Some data ->
      let slot_off =
        Slot_cache.offset_of_key_cfg Layout.file_cache ~key1:fh ~key2:block
      in
      let image = Slot_cache.encode_slot t.file_cache ~key1:fh ~key2:block data in
      let header = Bytes.sub image 0 Slot_cache.header_bytes in
      let payload =
        Bytes.sub image Slot_cache.header_bytes
          (Bytes.length image - Slot_cache.header_bytes)
      in
      Hashtbl.iter
        (fun _ desc ->
          (* Body first, header (with the valid flag) second. *)
          Rmem.Remote_memory.write t.rmem desc
            ~off:(slot_off + Slot_cache.header_bytes)
            payload;
          Rmem.Remote_memory.write t.rmem desc ~off:slot_off header;
          t.blocks_pushed <- t.blocks_pushed + 1)
        t.push_targets

(* Apply clerk-pushed file blocks back to the store (write-back).  A
   pushed slot is newer than the store when its contents differ; applied
   blocks are then eagerly pushed to subscribed clerks. *)
let writeback t ~fh ~block =
  match Slot_cache.lookup_local t.file_cache ~key1:fh ~key2:block with
  | None -> ()
  | Some data ->
      let off = block * File_store.block_bytes in
      let current = File_store.read t.store fh ~off ~count:(Bytes.length data) in
      if not (Bytes.equal current data) then begin
        File_store.write t.store fh ~off data;
        push_block t ~fh ~block
      end

(* ------------------------------------------------------------------ *)
(* Hybrid-1 service.                                                   *)

let reply_descriptor t ~client =
  let key = Atm.Addr.to_int client in
  match Hashtbl.find_opt t.reply_descriptors key with
  | Some desc -> desc
  | None ->
      let desc =
        Names.Api.import ~hint:client t.clerk (Layout.reply_name_for client)
      in
      Hashtbl.replace t.reply_descriptors key desc;
      desc

(* Keep the exported cache areas coherent with namespace mutations the
   service procedures perform, so later DX probes never see stale
   metadata. *)
let refresh_caches_for t op result =
  match (op, result) with
  | Nfs_ops.Write { fh; _ }, Nfs_ops.R_write _ | Nfs_ops.Set_attr { fh; _ }, _
    ->
      cache_attr t fh
  | ( (Nfs_ops.Create { dir; name } | Nfs_ops.Mkdir { dir; name }),
      Nfs_ops.R_lookup { fh; _ } ) ->
      cache_name t ~dir ~name;
      cache_attr t fh;
      cache_attr t dir;
      cache_dir t dir;
      publish_statfs t
  | (Nfs_ops.Remove { dir; name } | Nfs_ops.Rmdir { dir; name }), Nfs_ops.R_null
    ->
      Slot_cache.invalidate t.name_cache ~key1:dir ~key2:(name_key name);
      cache_attr t dir;
      cache_dir t dir;
      publish_statfs t
  | Nfs_ops.Rename { from_dir; from_name; to_dir; to_name }, Nfs_ops.R_null ->
      Slot_cache.invalidate t.name_cache ~key1:from_dir
        ~key2:(name_key from_name);
      cache_name t ~dir:to_dir ~name:to_name;
      cache_dir t from_dir;
      cache_dir t to_dir
  | _ -> ()

let serve_hybrid_request t ~(record : Rmem.Notification.record) =
  let client = record.Rmem.Notification.src in
  let slot_base =
    Layout.request_base
    + (Atm.Addr.to_int client * Layout.request_slot_bytes)
  in
  let len =
    Int32.to_int (Cluster.Address_space.read_word t.space ~addr:slot_base)
  in
  let op =
    Nfs_ops.decode_op
      (Cluster.Address_space.read t.space ~addr:(slot_base + 4) ~len)
  in
  (* The service procedure itself. *)
  Cluster.Cpu.use (cpu t) ~category:Cluster.Cpu.cat_procedure
    (Nfs_ops.procedure_cost (costs t) op);
  let result = execute t.store op in
  refresh_caches_for t op result;
  let payload = Nfs_ops.encode_result result in
  let desc = reply_descriptor t ~client in
  (* Body first, then the flag+len words, so the spinning clerk never
     sees a ready flag over incomplete data. *)
  Rmem.Remote_memory.write t.rmem desc ~off:8 payload;
  let header = Bytes.create 8 in
  Bytes.set_int32_le header 0 Layout.reply_ready;
  Bytes.set_int32_le header 4 (Int32.of_int (Bytes.length payload));
  Rmem.Remote_memory.write t.rmem desc ~off:0 header;
  t.hybrid_served <- t.hybrid_served + 1

(* ------------------------------------------------------------------ *)
(* Construction.                                                       *)

let create ~rmem ~clerk ~store () =
  let node = Rmem.Remote_memory.node rmem in
  let space = Cluster.Node.new_address_space node in
  let cache base config = Slot_cache.create ~space ~base config in
  let rights = Rmem.Rights.make ~read:true ~write:true ~cas:true () in
  let export ~base ~len ~name ?policy () =
    ignore
      (Names.Api.export clerk ~space ~base ~len ~rights ?policy ~name ()
        : Rmem.Segment.t)
  in
  export ~base:Layout.statfs_base ~len:Layout.statfs_bytes
    ~name:Layout.statfs_name ();
  export ~base:Layout.attr_base
    ~len:(Slot_cache.segment_bytes Layout.attr_cache)
    ~name:Layout.attr_name ();
  export ~base:Layout.name_base
    ~len:(Slot_cache.segment_bytes Layout.name_cache)
    ~name:Layout.name_name ();
  export ~base:Layout.link_base
    ~len:(Slot_cache.segment_bytes Layout.link_cache)
    ~name:Layout.link_name ();
  export ~base:Layout.dir_base
    ~len:(Slot_cache.segment_bytes Layout.dir_cache)
    ~name:Layout.dir_name ();
  export ~base:Layout.file_base
    ~len:(Slot_cache.segment_bytes Layout.file_cache)
    ~name:Layout.file_name ();
  let request_segment =
    Names.Api.export clerk ~space ~base:Layout.request_base
      ~len:Layout.request_bytes ~rights:Rmem.Rights.write_only
      ~policy:Rmem.Segment.Conditional ~name:Layout.request_name ()
  in
  let t =
    {
      rmem;
      node;
      clerk;
      store;
      space;
      attr_cache = cache Layout.attr_base Layout.attr_cache;
      name_cache = cache Layout.name_base Layout.name_cache;
      link_cache = cache Layout.link_base Layout.link_cache;
      dir_cache = cache Layout.dir_base Layout.dir_cache;
      file_cache = cache Layout.file_base Layout.file_cache;
      reply_descriptors = Hashtbl.create 8;
      push_targets = Hashtbl.create 8;
      hybrid_served = 0;
      blocks_pushed = 0;
    }
  in
  Rmem.Remote_memory.set_server_role rmem;
  Rmem.Notification.set_signal_handler
    (Rmem.Segment.notification request_segment)
    (Some (fun record -> serve_hybrid_request t ~record));
  t

let node t = t.node
let store t = t.store
let space t = t.space
let hybrid_served t = t.hybrid_served
let blocks_pushed t = t.blocks_pushed
let file_cache t = t.file_cache
let rmem t = t.rmem

(** The file service's server clerk, one per client machine.

    Clients reach the clerk through local RPC only; misses go to the
    server by one of three transfer schemes: pure data transfer ([Dx]),
    the paper's RPC-like hybrid ([Hybrid1]), or classic RPC
    ([Rpc_baseline]). A DX miss in the server cache transfers control
    (falls back to Hybrid-1), as §5.2 prescribes. *)

type scheme = Dx | Hybrid1 | Rpc_baseline

type t

val scheme_to_string : scheme -> string

val create :
  ?scheme:scheme ->
  ?rpc:Rpckit.Transport.t ->
  ?export_local_cache:bool ->
  names:Names.Clerk.t ->
  server:Atm.Addr.t ->
  unit ->
  t
(** Import the server's service segments through the name service and
    export this clerk's Hybrid-1 reply segment. Run within a process.
    [rpc] is required only for the [Rpc_baseline] scheme.
    [export_local_cache] additionally exports the clerk's local file
    cache so the server can eagerly push updates into it (§3.2). *)

val node : t -> Cluster.Node.t
val scheme : t -> scheme
val set_scheme : t -> scheme -> unit
val stats : t -> Metrics.Account.t

val set_recovery : t -> Rmem.Recovery.policy option -> unit
(** Run DX reads and file-cache write pushes under a recovery policy,
    extended per segment with a name-service revalidator so a server
    crash/restart's [Stale_generation] heals by forced re-import. The
    Hybrid-1 request segment is write-only and stays one-way (its spin
    deadline is the timeout there). The default [None] keeps the legacy
    behavior, bit-identical to the fault-free build. *)

val set_pipeline : t -> Rmem.Pipeline.t option -> unit
(** Route DX block transfer through a pipelined issue engine. Reads of
    multi-block files issue a window of slot READs concurrently into
    stripes of a gather buffer (engaged only without a recovery policy
    — policied reads retry in their own blocking loop). Write pushes
    stage the block body and its header as adjacent extents that merge
    into one burst frame, deposited as a unit, so the valid flag can
    never precede its data; the flush composes with {!set_recovery}.
    [None] or a disabled engine keeps the serial path. *)

val perform : t -> Nfs_ops.op -> Nfs_ops.result
(** The full client path: local RPC into the clerk, local caches, then
    the remote path on a miss (installing the result locally). *)

val remote_fetch : t -> Nfs_ops.op -> Nfs_ops.result
(** The miss path only (no local caches, no client-clerk local RPC) —
    what Figures 2 and 3 measure. *)

val hybrid_fetch : t -> Nfs_ops.op -> Nfs_ops.result
val dx_fetch : t -> Nfs_ops.op -> Nfs_ops.result
val rpc_fetch : t -> Nfs_ops.op -> Nfs_ops.result

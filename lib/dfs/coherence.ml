(* Token-based cache coherence (§5.1).

   The paper points at Calypso-style distributed token management and
   argues acquire/release can ride on compare-and-swap with no control
   transfer.  The token table is a segment of one word per token, owned
   by the server; holders are node ids (0 = free).  Acquire is a remote
   CAS(0 -> me) with exponential backoff; release is CAS(me -> 0).

   An RPC-based variant of the same protocol is provided as the
   baseline for the coherence ablation. *)

let token_segment_name = "dfs:tokens"
let default_tokens = 1024

(* ---------------- server side ---------------- *)

type manager = { space : Cluster.Address_space.t; base : int }

let rpc_prog = 0x1002
let proc_acquire = 1
let proc_release = 2

let export_tokens ~names ?(tokens = default_tokens) () =
  let node = Names.Clerk.node names in
  let space = Cluster.Node.new_address_space node in
  let (_ : Rmem.Segment.t) =
    Names.Api.export names ~space ~base:0 ~len:(tokens * 4)
      ~rights:(Rmem.Rights.make ~read:true ~cas:true ())
      ~name:token_segment_name ()
  in
  { space; base = 0 }

let holder_of manager ~token =
  Int32.to_int
    (Cluster.Address_space.read_word manager.space
       ~addr:(manager.base + (token * 4)))

(* The RPC-based token service over the same table. *)
let start_rpc_manager manager transport =
  let node = Rpckit.Transport.node transport in
  let costs = Cluster.Node.costs node in
  let cpu = Cluster.Node.cpu node in
  let handler ~src ~proc reader =
    let token = Rpckit.Xdr.read_int reader in
    Cluster.Cpu.use cpu ~category:Cluster.Cpu.cat_procedure
      costs.Cluster.Costs.proc_null;
    let me = Atm.Addr.to_int src + 1 in
    let addr = manager.base + (token * 4) in
    let reply = Rpckit.Xdr.create () in
    if proc = proc_acquire then begin
      let granted =
        Cluster.Address_space.cas_word manager.space ~addr ~old_value:0l
          ~new_value:(Int32.of_int me)
      in
      Rpckit.Xdr.bool reply granted
    end
    else begin
      let released =
        Cluster.Address_space.cas_word manager.space ~addr
          ~old_value:(Int32.of_int me) ~new_value:0l
      in
      Rpckit.Xdr.bool reply released
    end;
    reply
  in
  Rpckit.Server.create transport ~prog:rpc_prog ~threads:1 ~handler ()

(* ---------------- client side ---------------- *)

let revoke_name_for addr =
  Printf.sprintf "dfs:revoke:%d" (Atm.Addr.to_int addr)

let revoke_slots = 64
(* one "wanted" word per token id modulo this *)

type client = {
  rmem : Rmem.Remote_memory.t;
  node : Cluster.Node.t;
  names : Names.Clerk.t;
  desc : Rmem.Descriptor.t;
  me : int32;
  revoke_space : Cluster.Address_space.t;
  revoke_descs : (int, Rmem.Descriptor.t) Hashtbl.t; (* peer -> its revoke seg *)
  held : (int, Sim.Time.t) Hashtbl.t; (* token -> acquired at *)
  mutable acquires : int;
  mutable retries : int;
  mutable revocations_honored : int;
}

let connect ~names ~server () =
  let rmem = Names.Clerk.rmem names in
  let node = Rmem.Remote_memory.node rmem in
  let desc = Names.Api.import ~hint:server names token_segment_name in
  let revoke_space = Cluster.Node.new_address_space node in
  let (_ : Rmem.Segment.t) =
    Names.Api.export names ~space:revoke_space ~base:0 ~len:(revoke_slots * 4)
      ~rights:(Rmem.Rights.make ~write:true ())
      ~policy:Rmem.Segment.Conditional
      ~name:(revoke_name_for (Cluster.Node.addr node))
      ()
  in
  {
    rmem;
    node;
    names;
    desc;
    me = Int32.of_int (Atm.Addr.to_int (Cluster.Node.addr node) + 1);
    revoke_space;
    revoke_descs = Hashtbl.create 4;
    held = Hashtbl.create 4;
    acquires = 0;
    retries = 0;
    revocations_honored = 0;
  }

let wanted t ~token =
  not
    (Int32.equal
       (Cluster.Address_space.read_word t.revoke_space
          ~addr:(token mod revoke_slots * 4))
       0l)

let clear_wanted t ~token =
  Cluster.Address_space.write_word t.revoke_space
    ~addr:(token mod revoke_slots * 4)
    0l

(* Every token a client believes it holds must be published as held by
   that client in the server's table — the coherence invariant the
   model checker asserts between schedules. *)
let holds_match manager client =
  Hashtbl.fold
    (fun token _ ok ->
      ok && holder_of manager ~token = Int32.to_int client.me)
    client.held true

let invariant manager ~clients = List.for_all (holds_match manager) clients

exception Acquire_failed of int

(* Ask the current holder to give the token up: a remote write of the
   "wanted" word into the holder's revocation segment, with the notify
   bit set — one control transfer instead of an unbounded CAS spin
   (the Calypso-style revocation of §5.1). *)
let request_revocation t ~holder ~token =
  let holder_addr = Atm.Addr.of_int (Int32.to_int holder - 1) in
  let desc =
    match Hashtbl.find_opt t.revoke_descs (Int32.to_int holder) with
    | Some desc -> desc
    | None ->
        let desc =
          Names.Api.import ~hint:holder_addr t.names
            (revoke_name_for holder_addr)
        in
        Hashtbl.replace t.revoke_descs (Int32.to_int holder) desc;
        desc
  in
  let word = Bytes.create 4 in
  Bytes.set_int32_le word 0 1l;
  Rmem.Remote_memory.write t.rmem desc
    ~off:(token mod revoke_slots * 4)
    ~notify:true word

let acquire ?(max_attempts = 64) ?(revoke_after = max_int) t ~token =
  let rec attempt n backoff =
    if n >= max_attempts then raise (Acquire_failed token);
    let granted, witness =
      Rmem.Remote_memory.cas_wait t.rmem t.desc ~doff:(token * 4)
        ~old_value:0l ~new_value:t.me ()
    in
    if granted then begin
      t.acquires <- t.acquires + 1;
      Hashtbl.replace t.held token (Sim.Engine.now (Cluster.Node.engine t.node))
    end
    else begin
      t.retries <- t.retries + 1;
      if n + 1 = revoke_after && not (Int32.equal witness 0l) then
        request_revocation t ~holder:witness ~token;
      Sim.Proc.wait backoff;
      attempt (n + 1) (Sim.Time.min (Sim.Time.scale backoff 2.) (Sim.Time.ms 5))
    end
  in
  attempt 0 (Sim.Time.us 50)

let release t ~token =
  Hashtbl.remove t.held token;
  clear_wanted t ~token;
  let released, witness =
    Rmem.Remote_memory.cas_wait t.rmem t.desc ~doff:(token * 4)
      ~old_value:t.me ~new_value:0l ()
  in
  if not released then
    failwith
      (Printf.sprintf "Coherence.release: token %d held by %ld, not %ld" token
         witness t.me)

(* Hold a token for up to [lease], but give it back early if somebody
   asks — the delayed-revocation discipline. *)
let hold_with_lease t ~token ~lease =
  let deadline =
    Sim.Time.add (Sim.Engine.now (Cluster.Node.engine t.node)) lease
  in
  let rec wait_out () =
    if Sim.Time.(Sim.Engine.now (Cluster.Node.engine t.node) >= deadline) then
      ()
    else if wanted t ~token then
      t.revocations_honored <- t.revocations_honored + 1
    else begin
      Sim.Proc.wait (Sim.Time.us 100);
      wait_out ()
    end
  in
  wait_out ();
  release t ~token

let acquires t = t.acquires
let retries t = t.retries
let revocations_honored t = t.revocations_honored

(* RPC-based acquire/release through the token service. *)
let rpc_acquire ?(max_attempts = 64) transport ~server ~token =
  let rec attempt n backoff =
    if n >= max_attempts then raise (Acquire_failed token);
    let args = Rpckit.Xdr.create () in
    Rpckit.Xdr.int args token;
    let reply =
      Rpckit.Client.call transport ~dst:server ~prog:rpc_prog
        ~proc:proc_acquire ~label:"Token Acquire" args
    in
    if not (Rpckit.Xdr.read_bool reply) then begin
      Sim.Proc.wait backoff;
      attempt (n + 1) (Sim.Time.min (Sim.Time.scale backoff 2.) (Sim.Time.ms 5))
    end
  in
  attempt 0 (Sim.Time.us 50)

let rpc_release transport ~server ~token =
  let args = Rpckit.Xdr.create () in
  Rpckit.Xdr.int args token;
  let reply =
    Rpckit.Client.call transport ~dst:server ~prog:rpc_prog ~proc:proc_release
      ~label:"Token Release" args
  in
  ignore (Rpckit.Xdr.read_bool reply : bool)

(** Cache geometry and segment names shared by the server and its
    clerks.

    Both sides must agree exactly (same configs, same hash), because DX
    clerks compute server-side slot offsets locally. *)

val attr_cache : Slot_cache.config
val name_cache : Slot_cache.config
val link_cache : Slot_cache.config

val dir_cache : Slot_cache.config
(** key2 is the chunk index within the directory listing. *)

val file_cache : Slot_cache.config
(** key2 is the block number. *)

(** Server address-space layout. *)

val statfs_base : int
val statfs_bytes : int
val attr_base : int
val name_base : int
val link_base : int
val dir_base : int
val file_base : int
val request_base : int

val request_slot_bytes : int
(** [len 4][encoded op <= 8K + overhead][slack]. *)

val max_clients : int
val request_bytes : int

val reply_slot_bytes : int
(** [flag 4][len 4][encoded result <= 8K + overhead]. *)

val reply_pending : int32
val reply_ready : int32

(** Published segment names (registered with the name service). *)

val statfs_name : string
val attr_name : string
val name_name : string
val link_name : string
val dir_name : string
val file_name : string
val request_name : string

val reply_name_for : Atm.Addr.t -> string

val lcache_name_for : Atm.Addr.t -> string
(** A clerk's exported local file cache, the target of eager pushes. *)

val dir_chunk_bytes : int

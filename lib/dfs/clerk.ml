(* The file service's server clerk, running on each client machine.

   Clients talk to the clerk through local RPC only; the clerk satisfies
   what it can from its local caches and otherwise goes to the server by
   one of three transfer schemes:

   - [Dx]   — pure data transfer: remote READs of the server's cache
              slots (whose offsets the clerk computes itself), remote
              WRITE pushes for file writes.  No server procedure runs.
   - [Hybrid1] — one remote WRITE of the request with notification,
              answered by remote WRITEs of the result (the paper's
              RPC-like comparison point).
   - [Rpc_baseline] — classic RPC through the {!Rpckit} stack.

   A DX miss in the server's cache transfers control (falls back to
   Hybrid-1), exactly as §5.2 prescribes. *)

type scheme = Dx | Hybrid1 | Rpc_baseline

let scheme_to_string = function
  | Dx -> "DX"
  | Hybrid1 -> "HY"
  | Rpc_baseline -> "RPC"

type t = {
  rmem : Rmem.Remote_memory.t;
  names : Names.Clerk.t;
  node : Cluster.Node.t;
  server : Atm.Addr.t;
  mutable scheme : scheme;
  mutable recovery : Rmem.Recovery.policy option;
  (* None (default): legacy unbounded DX reads and one-way write pushes,
     bit-identical to the fault-free build *)
  mutable pipeline : Rmem.Pipeline.t option;
  (* when set (and enabled), DX block gathers issue a window of
     concurrent slot READs and write pushes leave as one burst frame *)
  space : Cluster.Address_space.t;
  (* local cache areas *)
  l_attr : Slot_cache.t;
  l_name : Slot_cache.t;
  l_link : Slot_cache.t;
  l_dir : Slot_cache.t;
  l_file : Slot_cache.t;
  (* imported server segments *)
  d_stat : Rmem.Descriptor.t;
  d_attr : Rmem.Descriptor.t;
  d_name : Rmem.Descriptor.t;
  d_link : Rmem.Descriptor.t;
  d_dir : Rmem.Descriptor.t;
  d_file : Rmem.Descriptor.t;
  d_req : Rmem.Descriptor.t;
  reply_base : int;
  probe_base : int;
  rpc : Rpckit.Transport.t option;
  stats : Metrics.Account.t;
}

let reply_base = Layout.request_base
let probe_base = reply_base + Layout.reply_slot_bytes + 4096

let costs t = Cluster.Node.costs t.node
let cpu t = Cluster.Node.cpu t.node

let charge t cost = Cluster.Cpu.use (cpu t) ~category:"dfs clerk" cost

let create ?(scheme = Dx) ?rpc ?(export_local_cache = false) ~names ~server () =
  let rmem = Names.Clerk.rmem names in
  let node = Rmem.Remote_memory.node rmem in
  let space = Cluster.Node.new_address_space node in
  let cache base config = Slot_cache.create ~space ~base config in
  let import name = Names.Api.import ~hint:server names name in
  let t =
    {
      rmem;
      names;
      node;
      server;
      scheme;
      recovery = None;
      pipeline = None;
      space;
      l_attr = cache Layout.attr_base Layout.attr_cache;
      l_name = cache Layout.name_base Layout.name_cache;
      l_link = cache Layout.link_base Layout.link_cache;
      l_dir = cache Layout.dir_base Layout.dir_cache;
      l_file = cache Layout.file_base Layout.file_cache;
      d_stat = import Layout.statfs_name;
      d_attr = import Layout.attr_name;
      d_name = import Layout.name_name;
      d_link = import Layout.link_name;
      d_dir = import Layout.dir_name;
      d_file = import Layout.file_name;
      d_req = import Layout.request_name;
      reply_base;
      probe_base;
      rpc;
      stats = Metrics.Account.create ~name:"dfs clerk" ();
    }
  in
  (* Export the reply segment the server's Hybrid-1 path writes into. *)
  let (_ : Rmem.Segment.t) =
    Names.Api.export names ~space ~base:reply_base
      ~len:Layout.reply_slot_bytes
      ~rights:(Rmem.Rights.make ~write:true ())
      ~name:(Layout.reply_name_for (Cluster.Node.addr node))
      ()
  in
  (* Optionally export the local file cache so the server can eagerly
     push updated blocks into it (§3.2: "it is possible for the server
     to eagerly update data on its client-side clerk"). *)
  if export_local_cache then begin
    let (_ : Rmem.Segment.t) =
      Names.Api.export names ~space ~base:Layout.file_base
        ~len:(Slot_cache.segment_bytes Layout.file_cache)
        ~rights:(Rmem.Rights.make ~write:true ())
        ~name:(Layout.lcache_name_for (Cluster.Node.addr node))
        ()
    in
    ()
  end;
  t

let node t = t.node
let set_scheme t scheme = t.scheme <- scheme
let scheme t = t.scheme
let stats t = t.stats
let set_recovery t policy = t.recovery <- policy
let set_pipeline t pipeline = t.pipeline <- pipeline

(* The windowed DX gather path engages only without a recovery policy:
   policied reads retry inside their own blocking loop, which is exactly
   the serialization the window exists to avoid. *)
let gather_pipeline t =
  match (t.pipeline, t.recovery) with
  | Some p, None when (Rmem.Pipeline.config p).Rmem.Pipeline.enabled -> Some p
  | _ -> None

(* Which service segment a descriptor names, for revalidation: after a
   server crash/restart the generations change, and the recovery policy
   heals a [Stale_generation] by re-looking the name up. *)
let layout_name_of t desc =
  if desc == t.d_stat then Layout.statfs_name
  else if desc == t.d_attr then Layout.attr_name
  else if desc == t.d_name then Layout.name_name
  else if desc == t.d_link then Layout.link_name
  else if desc == t.d_dir then Layout.dir_name
  else if desc == t.d_file then Layout.file_name
  else Layout.request_name

let policy_for t base desc =
  Rmem.Recovery.with_revalidate base
    (Names.Api.revalidator ~hint:t.server t.names (layout_name_of t desc))

let probe_buffer t =
  Rmem.Remote_memory.buffer ~space:t.space ~base:t.probe_base ~len:16384

(* DX reads and write pushes, recovery-dispatched.  The Hybrid-1 request
   segment is exported write-only, so its writes stay one-way (the spin
   deadline there is the timeout); everything DX touches is readable and
   can be fenced, verified and reissued. *)
let dx_read t desc ~soff ~count =
  match t.recovery with
  | None ->
      Rmem.Remote_memory.read_wait t.rmem desc ~soff ~count
        ~dst:(probe_buffer t) ~doff:0 ()
  | Some base ->
      Rmem.Remote_memory.read_with t.rmem ~policy:(policy_for t base desc) desc
        ~soff ~count ~dst:(probe_buffer t) ~doff:0 ()

let dx_write t desc ~off data =
  match t.recovery with
  | None -> Rmem.Remote_memory.write t.rmem desc ~off data
  | Some base ->
      Rmem.Remote_memory.write_with t.rmem ~policy:(policy_for t base desc)
        desc ~off data

let name_key name = Names.Record.fnv_hash name

(* ------------------------------------------------------------------ *)
(* Hybrid-1: request write with notification, reply spin.              *)

let hybrid_fetch t op =
  Metrics.Account.add t.stats ~category:"hybrid requests" 1.;
  Cluster.Address_space.write_word t.space ~addr:t.reply_base
    Layout.reply_pending;
  let encoded = Nfs_ops.encode_op op in
  let request = Bytes.create (4 + Bytes.length encoded) in
  Bytes.set_int32_le request 0 (Int32.of_int (Bytes.length encoded));
  Bytes.blit encoded 0 request 4 (Bytes.length encoded);
  let my_slot =
    Atm.Addr.to_int (Cluster.Node.addr t.node) * Layout.request_slot_bytes
  in
  Rmem.Remote_memory.write t.rmem t.d_req ~off:my_slot ~notify:true request;
  let deadline =
    Sim.Time.add (Sim.Engine.now (Cluster.Node.engine t.node)) (Sim.Time.ms 100)
  in
  let rec spin () =
    let flag = Cluster.Address_space.read_word t.space ~addr:t.reply_base in
    if Int32.equal flag Layout.reply_ready then begin
      let len =
        Int32.to_int
          (Cluster.Address_space.read_word t.space ~addr:(t.reply_base + 4))
      in
      Nfs_ops.decode_result
        (Cluster.Address_space.read t.space ~addr:(t.reply_base + 8) ~len)
    end
    else if Sim.Time.(Sim.Engine.now (Cluster.Node.engine t.node) > deadline)
    then raise Rmem.Status.Timeout
    else begin
      Sim.Proc.wait (Sim.Time.us 5);
      spin ()
    end
  in
  spin ()

(* ------------------------------------------------------------------ *)
(* DX: pure data transfer against the server's cache slots.            *)

(* Validate a fetched slot image: flag and keys; accept a stored length
   of at least [len] even though only a prefix of the payload was
   fetched. *)
let decode_slot slot ~key1 ~key2 ~len =
  if Bytes.length slot < Slot_cache.header_bytes then None
  else if not (Int32.equal (Bytes.get_int32_le slot 0) 1l) then None
  else if
    not
      (Int32.to_int (Bytes.get_int32_le slot 4) = key1
      && Int32.to_int (Bytes.get_int32_le slot 8) = key2)
  then None
  else begin
    let stored = Int32.to_int (Bytes.get_int32_le slot 12) in
    let usable = Stdlib.min stored len in
    Some (Bytes.sub slot Slot_cache.header_bytes usable)
  end

(* Fetch the head of a server cache slot and validate it; [len] is how
   many payload bytes we need. *)
let dx_fetch_slot t desc config ~key1 ~key2 ~len =
  let off = Slot_cache.offset_of_key_cfg config ~key1 ~key2 in
  let fetch = Slot_cache.header_bytes + len in
  dx_read t desc ~soff:off ~count:fetch;
  Metrics.Account.add t.stats ~category:"dx reads" 1.;
  let slot = Cluster.Address_space.read t.space ~addr:t.probe_base ~len:fetch in
  decode_slot slot ~key1 ~key2 ~len

(* The windowed block gather: plan every touched file block up front
   (their server slot offsets are computable client-side — the whole
   point of DX), issue the slot READs a window at a time into distinct
   stripes of the gather buffer, then validate and assemble in order.
   Returns [None] on any invalid slot, as the serial gather would. *)
let dx_window_slots = 8

let dx_gather_windowed t pipeline ~fh ~off ~count =
  let rec plan pos acc =
    if pos >= count then List.rev acc
    else begin
      let abs = off + pos in
      let block = abs / File_store.block_bytes in
      let boff = abs mod File_store.block_bytes in
      let span = Stdlib.min (count - pos) (File_store.block_bytes - boff) in
      plan (pos + span) ((pos, block, boff, span) :: acc)
    end
  in
  let chunks = plan 0 [] in
  let stride = Slot_cache.header_bytes + File_store.block_bytes in
  let buf =
    Rmem.Remote_memory.buffer ~space:t.space ~base:t.probe_base
      ~len:(dx_window_slots * stride)
  in
  let out = Bytes.create count in
  let rec batches chunks =
    match chunks with
    | [] -> Some (Nfs_ops.R_data out)
    | _ -> (
        let rec split n acc rest =
          match rest with
          | item :: rest when n < dx_window_slots ->
              split (n + 1) (item :: acc) rest
          | _ -> (List.rev acc, rest)
        in
        let batch, rest = split 0 [] chunks in
        List.iteri
          (fun j (_, block, boff, span) ->
            let soff =
              Slot_cache.offset_of_key_cfg Layout.file_cache ~key1:fh
                ~key2:block
            in
            Rmem.Pipeline.read_submit pipeline t.d_file ~soff
              ~count:(Slot_cache.header_bytes + boff + span)
              ~dst:buf ~doff:(j * stride) ();
            Metrics.Account.add t.stats ~category:"dx reads" 1.)
          batch;
        Rmem.Pipeline.drain pipeline;
        let ok =
          List.for_all
            (fun (j, (pos, block, boff, span)) ->
              let slot =
                Cluster.Address_space.read t.space
                  ~addr:(t.probe_base + (j * stride))
                  ~len:(Slot_cache.header_bytes + boff + span)
              in
              match decode_slot slot ~key1:fh ~key2:block ~len:(boff + span) with
              | Some payload when Bytes.length payload >= boff + span ->
                  Bytes.blit payload boff out pos span;
                  true
              | Some _ | None -> false)
            (List.mapi (fun j c -> (j, c)) batch)
        in
        match ok with true -> batches rest | false -> None)
  in
  batches chunks

let synthesized_attr ~fh ~size =
  {
    File_store.inode = fh;
    kind = File_store.Regular;
    mode = 0o644;
    nlink = 1;
    uid = 0;
    gid = 0;
    size;
    atime = 0;
    mtime = 0;
    ctime = 0;
  }

let dx_fetch t op =
  Metrics.Account.add t.stats ~category:"dx ops" 1.;
  (* A couple of compares and a hash to locate the remote slot; the
     paper argues this is tens of nanoseconds-to-microseconds and
     neglects it; we charge a token microsecond. *)
  charge t (Sim.Time.us 1);
  let miss () =
    Metrics.Account.add t.stats ~category:"dx misses -> control" 1.;
    Some (hybrid_fetch t op)
  in
  let result =
    match op with
    | Nfs_ops.Null ->
        (* Liveness probe: read a known word of the statfs area. *)
        dx_read t t.d_stat ~soff:0 ~count:4;
        Some Nfs_ops.R_null
    | Nfs_ops.Statfs -> (
        dx_read t t.d_stat ~soff:0 ~count:20;
        let b = Cluster.Address_space.read t.space ~addr:t.probe_base ~len:20 in
        if not (Int32.equal (Bytes.get_int32_le b 0) 1l) then miss ()
        else
          let field i = Int32.to_int (Bytes.get_int32_le b (i * 4)) in
          Some
            (Nfs_ops.R_statfs
               {
                 File_store.total_blocks = field 1;
                 free_blocks = field 2;
                 files = field 3;
                 block_size = field 4;
               }))
    | Nfs_ops.Get_attr { fh } -> (
        match
          dx_fetch_slot t t.d_attr Layout.attr_cache ~key1:fh ~key2:0
            ~len:File_store.attr_bytes
        with
        | Some payload -> Some (Nfs_ops.R_attr (Nfs_ops.decode_attr payload))
        | None -> miss ())
    | Nfs_ops.Lookup { dir; name } -> (
        match
          dx_fetch_slot t t.d_name Layout.name_cache ~key1:dir
            ~key2:(name_key name)
            ~len:(4 + File_store.attr_bytes)
        with
        | Some payload ->
            let fh = Int32.to_int (Bytes.get_int32_le payload 0) in
            Some
              (Nfs_ops.R_lookup
                 {
                   fh;
                   attr =
                     Nfs_ops.decode_attr
                       (Bytes.sub payload 4 File_store.attr_bytes);
                 })
        | None -> miss ())
    | Nfs_ops.Read_link { fh } -> (
        match
          dx_fetch_slot t t.d_link Layout.link_cache ~key1:fh ~key2:0
            ~len:Layout.link_cache.Slot_cache.payload_bytes
        with
        | Some payload -> Some (Nfs_ops.R_link (Bytes.to_string payload))
        | None -> miss ())
    | Nfs_ops.Read { fh; off; count }
      when Option.is_some (gather_pipeline t) -> (
        let pipeline = Option.get (gather_pipeline t) in
        match dx_gather_windowed t pipeline ~fh ~off ~count with
        | Some r -> Some r
        | None -> miss ())
    | Nfs_ops.Read { fh; off; count } -> (
        (* One slot read per touched block, assembled client-side. *)
        let out = Bytes.create count in
        let rec gather pos =
          if pos >= count then Some (Nfs_ops.R_data out)
          else begin
            let abs = off + pos in
            let block = abs / File_store.block_bytes in
            let boff = abs mod File_store.block_bytes in
            let span =
              Stdlib.min (count - pos) (File_store.block_bytes - boff)
            in
            match
              dx_fetch_slot t t.d_file Layout.file_cache ~key1:fh ~key2:block
                ~len:(boff + span)
            with
            | Some payload when Bytes.length payload >= boff + span ->
                Bytes.blit payload boff out pos span;
                gather (pos + span)
            | Some _ | None -> None
          end
        in
        match gather 0 with Some r -> Some r | None -> miss ())
    | Nfs_ops.Read_dir { fh; count } -> (
        (* One slot read per 4 KB chunk of the packed listing; a short
           chunk ends it. *)
        let buffer = Buffer.create count in
        let rec gather chunk =
          if Buffer.length buffer >= count then
            Some (Nfs_ops.R_entries (Bytes.sub (Buffer.to_bytes buffer) 0 count))
          else
            let want =
              Stdlib.min Layout.dir_chunk_bytes (count - Buffer.length buffer)
            in
            match
              dx_fetch_slot t t.d_dir Layout.dir_cache ~key1:fh ~key2:chunk
                ~len:want
            with
            | Some payload ->
                Buffer.add_bytes buffer payload;
                if Bytes.length payload < want then
                  (* The listing ended inside this chunk. *)
                  Some (Nfs_ops.R_entries (Buffer.to_bytes buffer))
                else gather (chunk + 1)
            | None ->
                if chunk = 0 then None
                else
                  (* Later chunks simply do not exist: the listing is
                     shorter than asked for. *)
                  Some (Nfs_ops.R_entries (Buffer.to_bytes buffer))
        in
        match gather 0 with Some r -> Some r | None -> miss ())
    | Nfs_ops.Write { fh; off; data } ->
        let block = off / File_store.block_bytes in
        let boff = off mod File_store.block_bytes in
        if boff <> 0 || Bytes.length data > File_store.block_bytes then
          invalid_arg "Dfs clerk: unaligned write push";
        let slot_off =
          Slot_cache.offset_of_key_cfg Layout.file_cache ~key1:fh ~key2:block
        in
        (* Push the block into the server's file cache: body first, then
           the header with the valid flag. *)
        let header = Bytes.create Slot_cache.header_bytes in
        Bytes.set_int32_le header 0 1l;
        Bytes.set_int32_le header 4 (Int32.of_int fh);
        Bytes.set_int32_le header 8 (Int32.of_int block);
        Bytes.set_int32_le header 12 (Int32.of_int (Bytes.length data));
        (match t.pipeline with
        | Some p when (Rmem.Pipeline.config p).Rmem.Pipeline.enabled ->
            (* Header and body stage as adjacent extents and merge: the
               whole push leaves as one burst frame and deposits as a
               unit, so the valid flag can never precede its data. *)
            Rmem.Pipeline.write p t.d_file
              ~off:(slot_off + Slot_cache.header_bytes)
              data;
            Rmem.Pipeline.write p t.d_file ~off:slot_off header;
            let policy =
              Option.map (fun base -> policy_for t base t.d_file) t.recovery
            in
            Rmem.Pipeline.flush ?policy p t.d_file
        | Some _ | None ->
            dx_write t t.d_file
              ~off:(slot_off + Slot_cache.header_bytes)
              data;
            dx_write t t.d_file ~off:slot_off header);
        Metrics.Account.add t.stats ~category:"dx writes" 1.;
        Some
          (Nfs_ops.R_write
             (synthesized_attr ~fh ~size:(off + Bytes.length data)))
    | Nfs_ops.Set_attr _ | Nfs_ops.Create _ | Nfs_ops.Remove _
    | Nfs_ops.Rename _ | Nfs_ops.Mkdir _ | Nfs_ops.Rmdir _ ->
        (* Namespace and attribute mutations need the server's namespace
           procedures: control transfer by design (the paper's "Other"
           activity, 0.4% of the mix). *)
        Metrics.Account.add t.stats ~category:"dx mutations -> control" 1.;
        Some (hybrid_fetch t op)
  in
  match result with
  | Some r -> r
  | None -> assert false

(* ------------------------------------------------------------------ *)
(* RPC baseline.                                                       *)

let rpc_fetch t op =
  match t.rpc with
  | None -> failwith "Dfs clerk: no RPC transport configured"
  | Some transport ->
      Metrics.Account.add t.stats ~category:"rpc calls" 1.;
      let reply =
        Rpckit.Client.call transport ~dst:t.server ~prog:Rpc_codec.prog
          ~proc:(Rpc_codec.proc_of_op op) ~label:(Nfs_ops.label op)
          (Rpc_codec.marshal_op op)
      in
      Rpc_codec.unmarshal_result reply

(* ------------------------------------------------------------------ *)
(* The remote path, scheme-dispatched; and the full client path.       *)

let remote_fetch t op =
  (* The enclosing scope makes every meta-instruction the fetch issues a
     child span of one "DX:read"-style fetch span. *)
  let scope =
    Obs.Trace.scope_begin
      ~node:(Atm.Addr.to_int (Cluster.Node.addr t.node))
      ~name:
        (Printf.sprintf "%s:%s" (scheme_to_string t.scheme) (Nfs_ops.label op))
  in
  Fun.protect
    ~finally:(fun () -> Obs.Trace.scope_end scope)
    (fun () ->
      match t.scheme with
      | Dx -> dx_fetch t op
      | Hybrid1 -> hybrid_fetch t op
      | Rpc_baseline -> rpc_fetch t op)

(* Local cache consultation. *)
let local_lookup t op =
  charge t (costs t).Cluster.Costs.hash_lookup;
  match op with
  | Nfs_ops.Get_attr { fh } ->
      Option.map
        (fun p -> Nfs_ops.R_attr (Nfs_ops.decode_attr p))
        (Slot_cache.lookup_local t.l_attr ~key1:fh ~key2:0)
  | Nfs_ops.Lookup { dir; name } ->
      Option.map
        (fun p ->
          Nfs_ops.R_lookup
            {
              fh = Int32.to_int (Bytes.get_int32_le p 0);
              attr = Nfs_ops.decode_attr (Bytes.sub p 4 File_store.attr_bytes);
            })
        (Slot_cache.lookup_local t.l_name ~key1:dir ~key2:(name_key name))
  | Nfs_ops.Read_link { fh } ->
      Option.map
        (fun p -> Nfs_ops.R_link (Bytes.to_string p))
        (Slot_cache.lookup_local t.l_link ~key1:fh ~key2:0)
  | Nfs_ops.Read { fh; off; count } ->
      let block = off / File_store.block_bytes in
      let boff = off mod File_store.block_bytes in
      Option.bind (Slot_cache.lookup_local t.l_file ~key1:fh ~key2:block)
        (fun p ->
          if Bytes.length p >= boff + count then
            Some (Nfs_ops.R_data (Bytes.sub p boff count))
          else None)
  | Nfs_ops.Read_dir { fh; count } ->
      Option.map
        (fun p ->
          Nfs_ops.R_entries (Bytes.sub p 0 (Stdlib.min count (Bytes.length p))))
        (Slot_cache.lookup_local t.l_dir ~key1:fh ~key2:0)
  | Nfs_ops.Null | Nfs_ops.Statfs | Nfs_ops.Write _ | Nfs_ops.Set_attr _
  | Nfs_ops.Create _ | Nfs_ops.Remove _ | Nfs_ops.Rename _ | Nfs_ops.Mkdir _
  | Nfs_ops.Rmdir _ ->
      None

let install_local t op result =
  match (op, result) with
  | Nfs_ops.Get_attr { fh }, Nfs_ops.R_attr a ->
      Slot_cache.install t.l_attr ~key1:fh ~key2:0 (Nfs_ops.encode_attr a)
  | Nfs_ops.Lookup { dir; name }, Nfs_ops.R_lookup { fh; attr } ->
      let p = Bytes.create (4 + File_store.attr_bytes) in
      Bytes.set_int32_le p 0 (Int32.of_int fh);
      Bytes.blit (Nfs_ops.encode_attr attr) 0 p 4 File_store.attr_bytes;
      Slot_cache.install t.l_name ~key1:dir ~key2:(name_key name) p
  | Nfs_ops.Read_link { fh }, Nfs_ops.R_link target ->
      Slot_cache.install t.l_link ~key1:fh ~key2:0 (Bytes.of_string target)
  | Nfs_ops.Read { fh; off; _ }, Nfs_ops.R_data data
    when off mod File_store.block_bytes = 0
         && Bytes.length data = File_store.block_bytes ->
      Slot_cache.install t.l_file ~key1:fh
        ~key2:(off / File_store.block_bytes)
        data
  | Nfs_ops.Write { fh; off; data }, Nfs_ops.R_write _
    when off mod File_store.block_bytes = 0
         && Bytes.length data = File_store.block_bytes ->
      Slot_cache.install t.l_file ~key1:fh
        ~key2:(off / File_store.block_bytes)
        data
  | Nfs_ops.Remove { dir; name }, _ | Nfs_ops.Rmdir { dir; name }, _ ->
      Slot_cache.invalidate t.l_name ~key1:dir ~key2:(name_key name)
  | Nfs_ops.Rename { from_dir; from_name; _ }, _ ->
      Slot_cache.invalidate t.l_name ~key1:from_dir ~key2:(name_key from_name)
  | Nfs_ops.Set_attr { fh; _ }, Nfs_ops.R_attr a ->
      Slot_cache.install t.l_attr ~key1:fh ~key2:0 (Nfs_ops.encode_attr a)
  | _ -> ()

(* The full client-visible operation: local RPC into the clerk, local
   caches, then the remote path on a miss. *)
let perform t op =
  Cluster.Lrpc.call t.node
    (fun () ->
      match local_lookup t op with
      | Some result ->
          Metrics.Account.add t.stats ~category:"local hits" 1.;
          result
      | None ->
          let result = remote_fetch t op in
          install_local t op result;
          result)
    ()

(* The RPC-baseline file service: the same operations as {!Server}, but
   reached through the classic RPC stack — the structure the paper's
   Table 1 systems use. *)

type t = { server : Rpckit.Server.t }

let start transport ~store ?(threads = 2) () =
  let node = Rpckit.Transport.node transport in
  let costs = Cluster.Node.costs node in
  let cpu = Cluster.Node.cpu node in
  let handler ~src:_ ~proc reader =
    let op = Rpc_codec.unmarshal_op ~proc reader in
    Cluster.Cpu.use cpu ~category:Cluster.Cpu.cat_procedure
      (Nfs_ops.procedure_cost costs op);
    Rpc_codec.marshal_result (Server.execute store op)
  in
  let server =
    Rpckit.Server.create transport ~prog:Rpc_codec.prog ~threads ~handler ()
  in
  { server }

let served t = Rpckit.Server.served t.server
let rpc_server t = t.server

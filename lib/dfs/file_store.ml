(* The server's local file system: the substrate under the distributed
   file service.

   A straightforward in-memory inode store: regular files (8 KB blocks),
   directories, symbolic links; NFS-flavoured attributes.  File handles
   are inode numbers dressed up as 32-byte NFS handles on the wire. *)

exception No_such_file of int
exception Not_a_directory of int
exception Not_a_symlink of int
exception Not_a_file of int
exception Name_exists of string

let block_bytes = 8192

type kind = Regular | Directory | Symlink

type attr = {
  inode : int;
  kind : kind;
  mode : int;
  nlink : int;
  uid : int;
  gid : int;
  size : int;
  atime : int;
  mtime : int;
  ctime : int;
}

type node = {
  mutable attr : attr;
  blocks : (int, bytes) Hashtbl.t; (* block # -> data, Regular *)
  mutable entries : (string * int) list; (* Directory, insertion order *)
  mutable target : string; (* Symlink *)
}

type t = {
  nodes : (int, node) Hashtbl.t;
  mutable next_inode : int;
  mutable clock : int; (* logical time for {a,m,c}time *)
  root : int;
}

let attr_bytes = 68
(* the NFS fattr size; what GetAttr moves *)

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let make_attr t ~inode ~kind ~mode ~size =
  let now = tick t in
  { inode; kind; mode; nlink = 1; uid = 0; gid = 0; size; atime = now;
    mtime = now; ctime = now }

let fresh_node t ~kind ~mode ~size =
  let inode = t.next_inode in
  t.next_inode <- inode + 1;
  let node =
    {
      attr = make_attr t ~inode ~kind ~mode ~size;
      blocks = Hashtbl.create 4;
      entries = [];
      target = "";
    }
  in
  Hashtbl.replace t.nodes inode node;
  (inode, node)

let create () =
  let t = { nodes = Hashtbl.create 256; next_inode = 2; clock = 0; root = 1 } in
  let root =
    {
      attr =
        {
          inode = 1;
          kind = Directory;
          mode = 0o755;
          nlink = 2;
          uid = 0;
          gid = 0;
          size = 0;
          atime = 0;
          mtime = 0;
          ctime = 0;
        };
      blocks = Hashtbl.create 1;
      entries = [];
      target = "";
    }
  in
  Hashtbl.replace t.nodes 1 root;
  t

let root t = t.root

let node t inode =
  match Hashtbl.find_opt t.nodes inode with
  | Some n -> n
  | None -> raise (No_such_file inode)

let getattr t inode = (node t inode).attr

let directory t inode =
  let n = node t inode in
  if n.attr.kind <> Directory then raise (Not_a_directory inode);
  n

let add_entry t ~dir ~name ~inode =
  let d = directory t dir in
  if List.mem_assoc name d.entries then raise (Name_exists name);
  d.entries <- d.entries @ [ (name, inode) ];
  d.attr <- { d.attr with size = d.attr.size + 1; mtime = tick t }

let create_file t ~dir ~name ?(mode = 0o644) () =
  let inode, _ = fresh_node t ~kind:Regular ~mode ~size:0 in
  add_entry t ~dir ~name ~inode;
  inode

let mkdir t ~dir ~name ?(mode = 0o755) () =
  let inode, _ = fresh_node t ~kind:Directory ~mode ~size:0 in
  add_entry t ~dir ~name ~inode;
  inode

let symlink t ~dir ~name ~target =
  let inode, n = fresh_node t ~kind:Symlink ~mode:0o777 ~size:(String.length target) in
  n.target <- target;
  add_entry t ~dir ~name ~inode;
  inode

let lookup t ~dir ~name =
  let d = directory t dir in
  match List.assoc_opt name d.entries with
  | Some inode -> inode
  | None -> raise (No_such_file dir)

exception Not_empty of int

let remove t ~dir ~name =
  let d = directory t dir in
  let inode = lookup t ~dir ~name in
  let n = node t inode in
  if n.attr.kind = Directory then raise (Not_a_file inode);
  d.entries <- List.remove_assoc name d.entries;
  d.attr <- { d.attr with size = d.attr.size - 1; mtime = tick t };
  if n.attr.nlink <= 1 then Hashtbl.remove t.nodes inode
  else n.attr <- { n.attr with nlink = n.attr.nlink - 1 }

let rmdir t ~dir ~name =
  let d = directory t dir in
  let inode = lookup t ~dir ~name in
  let n = directory t inode in
  if n.entries <> [] then raise (Not_empty inode);
  d.entries <- List.remove_assoc name d.entries;
  d.attr <- { d.attr with size = d.attr.size - 1; mtime = tick t };
  Hashtbl.remove t.nodes inode

let rename t ~from_dir ~from_name ~to_dir ~to_name =
  let src = directory t from_dir in
  let inode = lookup t ~dir:from_dir ~name:from_name in
  let dst = directory t to_dir in
  if List.mem_assoc to_name dst.entries then raise (Name_exists to_name);
  src.entries <- List.remove_assoc from_name src.entries;
  src.attr <- { src.attr with size = src.attr.size - 1; mtime = tick t };
  dst.entries <- dst.entries @ [ (to_name, inode) ];
  dst.attr <- { dst.attr with size = dst.attr.size + 1; mtime = tick t }

let set_attr t inode ?mode ?size () =
  let n = node t inode in
  (match mode with
  | Some mode -> n.attr <- { n.attr with mode; ctime = tick t }
  | None -> ());
  match size with
  | Some size ->
      if n.attr.kind <> Regular then raise (Not_a_file inode);
      if size < n.attr.size then begin
        (* Truncate: drop whole blocks past the new end and zero the
           tail of the boundary block. *)
        let keep_blocks = (size + block_bytes - 1) / block_bytes in
        Hashtbl.iter
          (fun blk _ -> if blk >= keep_blocks then Hashtbl.remove n.blocks blk)
          (Hashtbl.copy n.blocks);
        let boundary = size mod block_bytes in
        if boundary > 0 then
          Option.iter
            (fun b -> Bytes.fill b boundary (block_bytes - boundary) '\000')
            (Hashtbl.find_opt n.blocks (size / block_bytes))
      end;
      n.attr <- { n.attr with size; mtime = tick t; ctime = t.clock }
  | None -> ()

let readlink t inode =
  let n = node t inode in
  if n.attr.kind <> Symlink then raise (Not_a_symlink inode);
  n.target

let readdir t inode = (directory t inode).entries

let regular t inode =
  let n = node t inode in
  if n.attr.kind <> Regular then raise (Not_a_file inode);
  n

let read t inode ~off ~count =
  let n = regular t inode in
  if off < 0 || count < 0 then invalid_arg "File_store.read";
  let available = Stdlib.max 0 (n.attr.size - off) in
  let count = Stdlib.min count available in
  let out = Bytes.make count '\000' in
  let rec copy pos =
    if pos < count then begin
      let abs = off + pos in
      let blk = abs / block_bytes and boff = abs mod block_bytes in
      let span = Stdlib.min (count - pos) (block_bytes - boff) in
      (match Hashtbl.find_opt n.blocks blk with
      | Some data -> Bytes.blit data boff out pos span
      | None -> () (* hole: zeros *));
      copy (pos + span)
    end
  in
  copy 0;
  out

let write t inode ~off data =
  let n = regular t inode in
  let count = Bytes.length data in
  if off < 0 then invalid_arg "File_store.write";
  let rec copy pos =
    if pos < count then begin
      let abs = off + pos in
      let blk = abs / block_bytes and boff = abs mod block_bytes in
      let span = Stdlib.min (count - pos) (block_bytes - boff) in
      let block =
        match Hashtbl.find_opt n.blocks blk with
        | Some b -> b
        | None ->
            let b = Bytes.make block_bytes '\000' in
            Hashtbl.replace n.blocks blk b;
            b
      in
      Bytes.blit data pos block boff span;
      copy (pos + span)
    end
  in
  copy 0;
  n.attr <-
    {
      n.attr with
      size = Stdlib.max n.attr.size (off + count);
      mtime = tick t;
    }

type statfs = {
  total_blocks : int;
  free_blocks : int;
  files : int;
  block_size : int;
}

let statfs t =
  let used =
    Hashtbl.fold (fun _ n acc -> acc + Hashtbl.length n.blocks) t.nodes 0
  in
  {
    total_blocks = 1 lsl 20;
    free_blocks = (1 lsl 20) - used;
    files = Hashtbl.length t.nodes;
    block_size = block_bytes;
  }

let file_count t = Hashtbl.length t.nodes

(* Serialize directory entries the way READDIR returns them: a packed
   sequence of [inode 4][name len 2][name][pad to 4]. *)
let encode_entries entries =
  let w = Atm.Codec.writer ~capacity:512 () in
  List.iter
    (fun (name, inode) ->
      Atm.Codec.put_u32 w inode;
      Atm.Codec.put_string w name;
      let misalign = Atm.Codec.length w land 3 in
      if misalign <> 0 then Atm.Codec.put_padding w (4 - misalign))
    entries;
  Atm.Codec.contents w

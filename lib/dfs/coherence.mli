(** Token-based cache coherence (§5.1): acquire/release as remote
    compare-and-swap on a server-owned token table, with an RPC-based
    variant of the same protocol as the ablation baseline. *)

val token_segment_name : string
val default_tokens : int

(** {1 Server side} *)

type manager

val export_tokens :
  names:Names.Clerk.t -> ?tokens:int -> unit -> manager
(** Export the token table (one word per token, 0 = free). *)

val holder_of : manager -> token:int -> int
(** Current holder id (node address + 1), or 0 when free. *)

val rpc_prog : int

val start_rpc_manager : manager -> Rpckit.Transport.t -> Rpckit.Server.t
(** The RPC token service over the same table. *)

(** {1 Client side} *)

type client

exception Acquire_failed of int

val connect :
  names:Names.Clerk.t -> server:Atm.Addr.t -> unit -> client
(** Also exports this client's revocation segment (one "wanted" word per
    token, written by competitors with notification). *)

val acquire :
  ?max_attempts:int -> ?revoke_after:int -> client -> token:int -> unit
(** CAS(0 -> me) with exponential backoff; no server control transfer.
    After [revoke_after] failed attempts, sends the current holder one
    revocation request (§5.1's Calypso-style alternative to spinning).
    Raises {!Acquire_failed} after [max_attempts]. *)

val release : client -> token:int -> unit
(** CAS(me -> 0); fails loudly if the token is not held by this client. *)

val invariant : manager -> clients:client list -> bool
(** Token-coherence invariant: every token a client holds locally is
    published as held by that client in the server's table. *)

val hold_with_lease : client -> token:int -> lease:Sim.Time.t -> unit
(** Delayed revocation: keep the token for up to [lease], but release as
    soon as a competitor's revocation request arrives. *)

val wanted : client -> token:int -> bool
(** Has someone asked for a token this client holds? *)

val acquires : client -> int
val retries : client -> int
val revocations_honored : client -> int

(** {1 RPC baseline} *)

val rpc_acquire :
  ?max_attempts:int ->
  Rpckit.Transport.t ->
  server:Atm.Addr.t ->
  token:int ->
  unit

val rpc_release : Rpckit.Transport.t -> server:Atm.Addr.t -> token:int -> unit

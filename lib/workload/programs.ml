(* The catalog of declared access programs: one {!Program.t} per
   analysis scenario and per recovery-campaign workload, mirroring the
   protocols in [Analysis.Scenarios] and [Faults.Campaign].

   These are declarations, not extractions-by-tracing: each names the
   segments, offsets, extents and retry disciplines the workload is
   *supposed* to use, the way a map-time manifest would.  The static
   verifier checks the declarations; the @protocheck cross-validation
   holds them against what the dynamic checkers see, in both
   directions. *)

open Program

let seg ?(rights = Rmem.Rights.all) ?(grants = [])
    ?(policy = Rmem.Segment.Conditional) ~exporter ~len name =
  { Rmem.Manifest.seg = name; exporter; len; rights; grants; policy }

(* ------------------------------------------------------------------ *)
(* Scenario programs (Analysis.Scenarios shapes).                      *)

(* kv_store: clients 1 and 2 own disjoint 64-byte slots of the server
   table and put/fence/get them. *)
let kv_store =
  let client node =
    let base = c (Stdlib.( * ) node 512) in
    {
      node;
      name = "client";
      body =
        [
          for_ "k" ~lo:0 ~hi:3
            [
              write ~seg:"kv table"
                ~off:(base + (v "k" * c 64))
                ~len:(c 64) ();
              fence "kv table";
              read ~seg:"kv table" ~off:(base + (v "k" * c 64)) ~len:(c 64);
            ];
        ];
    }
  in
  {
    name = "kv_store";
    manifest = [ seg ~exporter:0 ~len:4096 "kv table" ];
    nodes = [ client 1; client 2 ];
  }

(* producer_consumer: CAS-ticket slot claims, WRITE deliveries, notify
   doorbells; the consumer touches the slot each doorbell names. *)
let producer_consumer =
  let ring_len = 576 (* 64 + 8 slots x 64 *) in
  let slot = c 64 + (v "seq" * c 64) in
  let producer node =
    {
      node;
      name = "producer";
      body =
        [
          for_ "i" ~lo:1 ~hi:4
            [
              (* Ticket claim: each attempt re-reads the ticket word, so
                 the loop observes progress — not a blind spin. *)
              retry
                [
                  read_word ~seg:"ring" ~off:(c 0) ~var:"seq" ~lo:0 ~hi:7;
                  cas "ring" ~off:(c 0);
                ];
              write ~seg:"ring" ~off:(slot + c 4) ~len:(c 60) ();
              (* Length word last, doorbell on it. *)
              write ~notify:true ~seg:"ring" ~off:slot ~len:(c 4) ();
            ];
        ];
    }
  in
  let consumer =
    {
      node = 0;
      name = "consumer";
      body =
        [
          (* Each doorbell names one distinct slot; the loop variable
             stands in for the announced slot number. *)
          for_ "n" ~lo:0 ~hi:7
            [
              wait "ring";
              local_read ~seg:"ring" ~off:(c 64 + (v "n" * c 64)) ~len:(c 64);
            ];
        ];
    }
  in
  {
    name = "producer_consumer";
    manifest = [ seg ~exporter:0 ~len:ring_len "ring" ];
    nodes = [ consumer; producer 1; producer 2 ];
  }

(* file_service: the same block updated under a CAS lock, with the
   paper's fence before release. *)
let file_service_program ~fenced name =
  let client node =
    {
      node;
      name = "client";
      body =
        [
          for_ "round" ~lo:1 ~hi:2
            ([
               retry ~backoff:true [ cas ~role:Acquire "file blocks" ~off:(c 0) ];
               write ~seg:"file blocks" ~off:(c 1024) ~len:(c 256) ();
             ]
            @ (if fenced then [ fence "file blocks" ] else [])
            @ [ cas ~role:Release "file blocks" ~off:(c 0) ]);
        ];
    }
  in
  {
    name;
    manifest = [ seg ~exporter:0 ~len:4096 "file blocks" ];
    nodes = [ client 1; client 2 ];
  }

let file_service = file_service_program ~fenced:true "file_service"

let file_service_nofence =
  file_service_program ~fenced:false "file_service_nofence"

(* name_service: reads of the epoch segment and a status poll loop.
   The scenario's sins (a stale descriptor, polling notify:never) are
   dynamic-state misuses the lint catches at runtime; the declared
   access pattern itself is statically sound. *)
let name_service =
  {
    name = "name_service";
    manifest =
      [
        seg ~exporter:0 ~len:256 ~rights:Rmem.Rights.read_only
          ~policy:Rmem.Segment.Never "status";
        seg ~exporter:0 ~len:256 ~rights:Rmem.Rights.read_only "epoch";
      ];
    nodes =
      [
        {
          node = 1;
          name = "client";
          body =
            [
              read ~seg:"epoch" ~off:(c 0) ~len:(c 32);
              read ~seg:"epoch" ~off:(c 0) ~len:(c 32);
              for_ "n" ~lo:1 ~hi:12 [ read ~seg:"status" ~off:(c 0) ~len:(c 4) ];
            ];
        };
      ];
  }

(* racy: two unsynchronized writers to one range — a schedule property
   (the race detector's job), statically in-bounds and in-rights. *)
let racy =
  let writer node =
    {
      node;
      name = "writer";
      body =
        [
          write ~seg:"shared" ~off:(c 1024) ~len:(c 256) (); fence "shared";
        ];
    }
  in
  {
    name = "racy";
    manifest = [ seg ~exporter:0 ~len:4096 "shared" ];
    nodes = [ writer 1; writer 2 ];
  }

(* torn_record: single-agent local word traffic; tearing is a schedule
   property only exploration can surface — statically clean by design
   (the division-of-labor example). *)
let torn_record =
  {
    name = "torn_record";
    manifest = [ seg ~exporter:0 ~len:64 ~policy:Rmem.Segment.Never "record" ];
    nodes =
      [
        {
          node = 0;
          name = "reader";
          body =
            [
              for_ "n" ~lo:1 ~hi:2
                [
                  local_read ~seg:"record" ~off:(c 0) ~len:(c 4);
                  local_read ~seg:"record" ~off:(c 4) ~len:(c 4);
                ];
            ];
        };
        {
          node = 0;
          name = "writer";
          body =
            [
              local_write ~seg:"record" ~off:(c 0) ~len:(c 4);
              local_write ~seg:"record" ~off:(c 4) ~len:(c 4);
            ];
        };
      ];
  }

(* cas_missing_release: the buggy fast path — win the lock on the first
   attempt, write, and walk away without fence or release. *)
let cas_missing_release =
  {
    name = "cas_missing_release";
    manifest = [ seg ~exporter:0 ~len:4096 "lock table" ];
    nodes =
      [
        {
          node = 1;
          name = "client (fast path)";
          body =
            [
              retry ~backoff:true [ cas ~role:Acquire "lock table" ~off:(c 0) ];
              write ~seg:"lock table" ~off:(c 64) ~len:(c 32) ();
              (* THE BUG: no fence, no release CAS on the fast path. *)
            ];
        };
      ];
  }

(* cas_double_apply: the lost-reply wrapper reissues the same CAS and
   trusts the disjunction of reply statuses — one logical win, two
   possible applications. *)
let cas_double_apply =
  {
    name = "cas_double_apply";
    manifest = [ seg ~exporter:0 ~len:4096 "shared word" ];
    nodes =
      [
        {
          node = 1;
          name = "wrapper";
          body =
            [
              (* THE BUG: reissue on suspected loss, outcome decided by
                 s1 || s2 instead of re-reading the word. *)
              retry ~attempts:2 ~verified:false
                [ cas "shared word" ~off:(c 0) ];
            ];
        };
        {
          node = 2;
          name = "peer";
          body =
            [ cas "shared word" ~off:(c 0); cas "shared word" ~off:(c 0) ];
        };
      ];
  }

(* frame_overrun: a torn two-word (off, len) header forwarded to a
   remote frame reader.  Each field's declared range is individually
   sane — (0,8) and (4,4) both describe in-bounds frames — but nothing
   makes the pair atomic, so the combined worst case [0+hi(off),
   hi(off)+hi(len)) = [4,12) overruns the 8-byte data segment.  The
   interval analysis proves it from the declaration; dynamically only
   an adversarial schedule tears the header. *)
let frame_overrun =
  {
    name = "frame_overrun";
    manifest =
      [
        seg ~exporter:0 ~len:64 ~policy:Rmem.Segment.Never "frame.header";
        seg ~exporter:0 ~len:8 ~rights:Rmem.Rights.read_only "frame.data";
        seg ~exporter:1 ~len:8 "frame.req";
      ];
    nodes =
      [
        {
          node = 0;
          name = "writer";
          body =
            [
              local_write ~seg:"frame.header" ~off:(c 0) ~len:(c 4);
              local_write ~seg:"frame.header" ~off:(c 4) ~len:(c 4);
            ];
        };
        {
          node = 0;
          name = "forwarder";
          body =
            [
              local_read ~seg:"frame.header" ~off:(c 0) ~len:(c 4);
              local_read ~seg:"frame.header" ~off:(c 4) ~len:(c 4);
              write ~notify:true ~seg:"frame.req" ~off:(c 0) ~len:(c 8) ();
            ];
        };
        {
          node = 1;
          name = "reader";
          body =
            [
              wait "frame.req";
              read_word ~seg:"frame.req" ~off:(c 0) ~var:"off" ~lo:0 ~hi:4;
              read_word ~seg:"frame.req" ~off:(c 4) ~var:"len" ~lo:4 ~hi:8;
              read ~seg:"frame.data" ~off:(v "off") ~len:(v "len");
            ];
        };
      ];
  }

(* dds_register_no_writeback: the ABD register scenario with three
   single-cell replicas.  The writer's store phase claims each cell by
   CASing its tag word to the busy brand (each attempt re-reads the
   cell, so lost claims are observed) and releases it with one atomic
   8-byte deposit.  The reader only collects — THE BUG: no write-back
   store phase is declared, which is a protocol omission the interval
   and fence analyses cannot see (every declared access is in bounds,
   in rights and fenced); only schedule exploration surfaces the
   new/old inversion. *)
let dds_rep k = Printf.sprintf "reg.rep.%d" k

let dds_reg_manifest = List.init 3 (fun k -> seg ~exporter:k ~len:8 (dds_rep k))

let dds_reg_collect = List.init 3 (fun k -> read ~seg:(dds_rep k) ~off:(c 0) ~len:(c 8))

let dds_reg_store k =
  [
    retry ~attempts:8 ~backoff:true
      [ read ~seg:(dds_rep k) ~off:(c 0) ~len:(c 8); cas (dds_rep k) ~off:(c 0) ];
    write ~seg:(dds_rep k) ~off:(c 0) ~len:(c 8) ();
    fence (dds_rep k);
  ]

let dds_reg_store_all = List.concat_map dds_reg_store [ 0; 1; 2 ]

let dds_register_no_writeback =
  {
    name = "dds_register_no_writeback";
    manifest = dds_reg_manifest;
    nodes =
      [
        {
          node = 3;
          name = "writer";
          body = [ for_ "w" ~lo:1 ~hi:2 (dds_reg_collect @ dds_reg_store_all) ];
        };
        {
          node = 4;
          name = "reader (no write-back)";
          (* THE BUG: collect-and-adopt only; the adopted pair is never
             written back to a majority. *)
          body = [ for_ "r" ~lo:1 ~hi:2 dds_reg_collect ];
        };
      ];
  }

let scenarios =
  [
    kv_store;
    producer_consumer;
    file_service;
    file_service_nofence;
    name_service;
    racy;
    torn_record;
    cas_missing_release;
    cas_double_apply;
    frame_overrun;
    dds_register_no_writeback;
  ]

(* ------------------------------------------------------------------ *)
(* Campaign programs (Faults.Campaign shapes).  Policied writes verify
   by read-back, declared as write-then-fence; policied CAS wrappers
   re-read the authoritative word, declared verified. *)

let campaign_quickstart =
  {
    name = "quickstart";
    manifest = [ seg ~exporter:1 ~len:4096 "shared.buffer" ];
    nodes =
      [
        {
          node = 0;
          name = "client";
          body =
            [
              write ~seg:"shared.buffer" ~off:(c 0) ~len:(c 20) ();
              fence "shared.buffer";
              read ~seg:"shared.buffer" ~off:(c 0) ~len:(c 20);
              retry ~attempts:10 ~backoff:true
                [ cas "shared.buffer" ~off:(c 1024) ];
              retry ~attempts:10 ~backoff:true
                [ cas "shared.buffer" ~off:(c 1024) ];
              read ~seg:"shared.buffer" ~off:(c 1024) ~len:(c 4);
            ];
        };
      ];
  }

let campaign_name_service =
  let shard i = Printf.sprintf "service/db/shard-%02d" i in
  {
    name = "name_service";
    manifest = List.init 4 (fun i -> seg ~exporter:2 ~len:8192 (shard i));
    nodes =
      [
        {
          node = 0;
          name = "client";
          body =
            [
              write ~seg:(shard 0) ~off:(c 0) ~len:(c 28) ();
              fence (shard 0);
              read ~seg:(shard 0) ~off:(c 0) ~len:(c 28);
            ];
        };
      ];
  }

let campaign_producer_consumer =
  let slot = c 256 + (v "slot" * c 64) in
  let producer node =
    {
      node;
      name = "producer";
      body =
        [
          (* Even/odd slot split: 4 of the 8 slots each, disjoint. *)
          for_ "slot" ~lo:0 ~hi:7 [ write ~seg:"pc.ring" ~off:slot ~len:(c 64) () ];
          fence "pc.ring";
          retry ~attempts:10 ~backoff:true [ cas "pc.ring" ~off:(c 8) ];
        ];
    }
  in
  let consumer =
    {
      node = 1;
      name = "consumer";
      body = [ for_ "slot" ~lo:0 ~hi:7 [ local_read ~seg:"pc.ring" ~off:slot ~len:(c 4) ] ];
    }
  in
  {
    name = "producer_consumer";
    manifest = [ seg ~exporter:1 ~len:4096 "pc.ring" ];
    nodes = [ producer 0; producer 2; consumer ];
  }

let campaign_replica =
  let store i = Printf.sprintf "replica.store.%d" i in
  let store_len = 7168 (* 64 slots x 112 bytes *) in
  let member node =
    {
      node;
      name = "member";
      body =
        List.concat_map
          (fun peer ->
            if peer = node then []
            else
              [
                (* anti-entropy: read the peer's whole table, push
                   fresher slots back under the campaign policy. *)
                read ~seg:(store peer) ~off:(c 0) ~len:(c store_len);
                write ~seg:(store peer) ~off:(v "slot" * c 112) ~len:(c 112) ();
                fence (store peer);
              ])
          [ 0; 1; 2 ];
    }
  in
  {
    name = "replica";
    manifest =
      List.init 3 (fun i -> seg ~exporter:i ~len:store_len (store i));
    nodes =
      List.map
        (fun n ->
          let m = member n in
          {
            m with
            body = [ for_ "slot" ~lo:0 ~hi:63 m.body ];
          })
        [ 0; 1; 2 ];
  }

let campaign_crash_restart =
  {
    name = "crash_restart";
    manifest = [ seg ~exporter:1 ~len:4096 "store" ];
    nodes =
      [
        {
          node = 0;
          name = "client";
          body =
            [
              write ~seg:"store" ~off:(c 0) ~len:(c 24) ();
              fence "store";
              read ~seg:"store" ~off:(c 0) ~len:(c 24);
            ];
        };
      ];
  }

let campaigns =
  [
    campaign_quickstart;
    campaign_name_service;
    campaign_producer_consumer;
    campaign_replica;
    campaign_crash_restart;
  ]

(* ------------------------------------------------------------------ *)
(* Sharded name-service programs (Names.Shard_clerk / Names.Reconciler
   shapes).  Node 0 exports the shard map, nodes 2 and 3 export shard
   registry segments (256 slots x 64 bytes); node 1 is the reconciler,
   node 4 a lookup client.  The two publish variants differ by exactly
   one fence — the one that makes the migrated records durable at the
   destination before the map doorbell can route readers there. *)

let shard_reg_len = 16384 (* 256 slots x 64 bytes *)

(* A clerk lookup is pure data transfer: read the map epoch word and
   the owning entry, then walk a bounded probe chain in the registry
   segment the entry names.  The probe start comes out of the entry,
   so its declared range caps the chain inside the segment. *)
let sharded_lookup =
  {
    name = "sharded_lookup";
    manifest =
      [
        seg ~rights:Rmem.Rights.read_only ~exporter:0 ~len:2048 "shard.map";
        seg ~rights:Rmem.Rights.read_only ~exporter:2 ~len:shard_reg_len
          "shard.reg.0";
      ];
    nodes =
      [
        {
          node = 4;
          name = "clerk";
          body =
            [
              read_word ~seg:"shard.map" ~off:(c 0) ~var:"epoch" ~lo:0
                ~hi:255;
              read ~seg:"shard.map" ~off:(c 8) ~len:(c 40);
              read_word ~seg:"shard.map" ~off:(c 16) ~var:"slot" ~lo:0
                ~hi:253;
              for_ "probe" ~lo:0 ~hi:2
                [
                  read ~seg:"shard.reg.0"
                    ~off:((v "slot" + v "probe") * c 64)
                    ~len:(c 64);
                ];
            ];
        };
      ];
  }

(* The reconciler's split publication: copy the moved records into the
   destination registry, fence that segment so the copies are durable,
   then publish the map body and flip the epoch word last with the
   doorbell on it. *)
let shard_publish_body ~fenced =
  [
    for_ "r" ~lo:0 ~hi:11
      [ write ~seg:"shard.reg.1" ~off:(v "r" * c 64) ~len:(c 64) () ];
  ]
  @ (if fenced then [ fence "shard.reg.1" ] else [])
  @ [
      write ~seg:"shard.map" ~off:(c 8) ~len:(c 320) ();
      write ~notify:true ~seg:"shard.map" ~off:(c 0) ~len:(c 8) ();
    ]

let shard_publish ~name ~fenced =
  {
    name;
    manifest =
      [
        seg ~exporter:0 ~len:2048 "shard.map";
        seg ~exporter:3 ~len:shard_reg_len "shard.reg.1";
      ];
    nodes = [ { node = 1; name = "reconciler"; body = shard_publish_body ~fenced } ];
  }

let shard_map_publish = shard_publish ~name:"shard_map_publish" ~fenced:true

(* Seeded bug: the doorbell is raised while the record copies are still
   unfenced at the destination exporter — a freshly routed reader can
   probe slots the migration has not yet made durable. *)
let shard_map_publish_unfenced =
  shard_publish ~name:"shard_map_publish_unfenced" ~fenced:false

let shard_programs =
  [ sharded_lookup; shard_map_publish; shard_map_publish_unfenced ]

(* ------------------------------------------------------------------ *)
(* Distributed data-structure programs (Dds shapes): the DX (pure data
   transfer) structuring of each structure, which is the one with
   remote accesses to declare — the RPC structuring is precisely the
   control-transfer alternative, two messages and a home-CPU procedure,
   with nothing for the map-time checker to bound.  Each declared
   deposit is write-then-fence: the operation may not report success
   while its releasing WRITE is still in flight. *)

(* dds_hashtable: linear probing over 64 8-byte slots ([key][value]).
   The outer loop variable stands in for the key's hashed home slot;
   the probe chain is bounded by the table's load-factor guarantee.
   Insert claims the chain-ending key word by CAS (each attempt
   re-reads the slot, so lost claims are observed) and deposits the
   value word behind a fence. *)
let dds_hashtable =
  let slot_pair probe =
    read ~seg:"dds.table" ~off:((v "slot" + probe) * c 8) ~len:(c 8)
  in
  let probe_chain = [ for_ "probe" ~lo:0 ~hi:2 [ slot_pair (v "probe") ] ] in
  {
    name = "dds_hashtable";
    manifest = [ seg ~exporter:0 ~len:512 "dds.table" ];
    nodes =
      [
        {
          node = 1;
          name = "writer (dx)";
          body =
            [
              for_ "slot" ~lo:0 ~hi:60
                (probe_chain
                @ [
                    retry ~attempts:8 ~backoff:true
                      [
                        slot_pair (c 2);
                        cas "dds.table" ~off:((v "slot" + c 2) * c 8);
                      ];
                    write ~seg:"dds.table"
                      ~off:(((v "slot" + c 2) * c 8) + c 4)
                      ~len:(c 4) ();
                    fence "dds.table";
                  ]);
            ];
        };
        {
          node = 2;
          name = "reader (dx)";
          body = [ for_ "slot" ~lo:0 ~hi:60 probe_chain ];
        };
      ];
  }

(* dds_queue: [head][tail] words then 64 8-byte ticket slots.  The
   ticket comes out of the counter word itself, so its declared range
   caps the slot access; the brand-claim CAS pairs with a release CAS
   and the deposit is one atomic 8-byte frame (no torn slot). *)
let dds_queue =
  let slot var = c 8 + (v var * c 8) in
  let claim ~off ~var =
    retry ~attempts:8 ~backoff:true
      [
        read_word ~seg:"dds.ring" ~off ~var ~lo:0 ~hi:63;
        cas "dds.ring" ~off;
      ]
  in
  {
    name = "dds_queue";
    manifest = [ seg ~exporter:0 ~len:520 "dds.ring" ];
    nodes =
      [
        {
          node = 1;
          name = "producer (dx)";
          body =
            [
              for_ "i" ~lo:1 ~hi:4
                [
                  claim ~off:(c 4) ~var:"ticket";
                  cas "dds.ring" ~off:(c 4);
                  (* release the brand to ticket+1 *)
                  write ~seg:"dds.ring" ~off:(slot "ticket") ~len:(c 8) ();
                  fence "dds.ring";
                ];
            ];
        };
        {
          node = 2;
          name = "consumer (dx)";
          body =
            [
              for_ "i" ~lo:1 ~hi:4
                [
                  claim ~off:(c 0) ~var:"head";
                  cas "dds.ring" ~off:(c 0);
                  (* head < tail proves an enqueuer owns the ticket:
                     poll the slot until its deposit lands. *)
                  retry ~attempts:64 ~backoff:true
                    [ read ~seg:"dds.ring" ~off:(slot "head") ~len:(c 8) ];
                ];
            ];
        };
      ];
  }

(* dds_register: the correct ABD register — same replica cells and
   store phase as the seeded scenario, but the reader writes the
   adopted pair back until a majority holds it. *)
let dds_register =
  {
    name = "dds_register";
    manifest = dds_reg_manifest;
    nodes =
      [
        {
          node = 3;
          name = "writer";
          body = [ for_ "w" ~lo:1 ~hi:2 (dds_reg_collect @ dds_reg_store_all) ];
        };
        {
          node = 4;
          name = "reader";
          body = [ for_ "r" ~lo:1 ~hi:2 (dds_reg_collect @ dds_reg_store_all) ];
        };
      ];
  }

let dds_programs = [ dds_hashtable; dds_queue; dds_register ]

let find list name = List.find_opt (fun (p : Program.t) -> p.name = name) list

let scenario name = find scenarios name
let campaign name = find campaigns name
let shard name = find shard_programs name
let dds name = find dds_programs name

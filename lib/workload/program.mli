(** A small typed IR for per-node meta-instruction programs — the
    declarative skeleton of a workload's data-transfer protocol.

    Programs pair an export manifest ({!Rmem.Manifest}) with one
    instruction list per participating node: reads, writes, CAS, fences
    and notification waits over {e named} segments, with bounded loops
    and a retry combinator.  Offsets are integer expressions over loop
    variables and declared-range word reads, so an abstract interpreter
    ([Analysis.Static]) can bound every access without executing
    anything.  There is deliberately no general control flow: the
    paper's data-transfer sequences are straight-line, and that is what
    makes them checkable at map time. *)

type expr =
  | Const of int
  | Var of string  (** a loop variable or a [Read_word] binding *)
  | Add of expr * expr
  | Mul of expr * expr

type role =
  | Plain  (** an ordinary atomic update (ticket claims, counters) *)
  | Acquire  (** wins a lock word *)
  | Release  (** frees a lock word — the paper's fence-before-release
                 discipline applies to it *)

type instr =
  | Read of { seg : string; off : expr; len : expr }
      (** blocking remote READ *)
  | Read_word of { seg : string; off : expr; var : string; lo : int; hi : int }
      (** read one word and bind it to [var], declared to range over
          [\[lo, hi\]] — the protocol's value invariant, consumed by the
          interval analysis.  Local when the program's node exports
          [seg], a remote READ otherwise. *)
  | Write of { seg : string; off : expr; len : expr; notify : bool }
      (** unacknowledged remote WRITE, optionally raising a doorbell *)
  | Cas of { seg : string; off : expr; role : role }
      (** remote CAS of the aligned word at [off] *)
  | Fence of { seg : string }
      (** block until every earlier WRITE to [seg] is deposited (also
          models a policied write's read-back verification) *)
  | Wait of { seg : string }
      (** block on the segment's notification descriptor *)
  | Local_read of { seg : string; off : expr; len : expr }
      (** direct touch of exported memory on its home node *)
  | Local_write of { seg : string; off : expr; len : expr }
  | For of { var : string; lo : int; hi : int; body : instr list }
      (** bounded loop, [var] ranging over [\[lo, hi\]] inclusive *)
  | Retry of {
      attempts : int option;  (** [None] = unbounded *)
      backoff : bool;  (** pauses between attempts *)
      verified : bool;
          (** the wrapper re-derives the outcome from memory (re-read /
              read-back) rather than trusting the disjunction of reply
              statuses — [false] is the lost-reply double-apply
              hazard *)
      body : instr list;
    }

type node_program = {
  node : int;
  name : string;  (** role label, e.g. ["client"], ["writer"] *)
  body : instr list;
}

type t = {
  name : string;
  manifest : Rmem.Manifest.t;
  nodes : node_program list;
}

val word : int
(** CAS and [Read_word] cover this many bytes (4). *)

(** {1 Constructors} — terse enough that a catalog reads like the
    protocol it declares. *)

val c : int -> expr
val v : string -> expr

val ( + ) : expr -> expr -> expr
(** Shadows integer addition; open locally. *)

val ( * ) : expr -> expr -> expr

val read : seg:string -> off:expr -> len:expr -> instr
val read_word : seg:string -> off:expr -> var:string -> lo:int -> hi:int -> instr
val write : ?notify:bool -> seg:string -> off:expr -> len:expr -> unit -> instr
val cas : ?role:role -> string -> off:expr -> instr
val fence : string -> instr
val wait : string -> instr
val local_read : seg:string -> off:expr -> len:expr -> instr
val local_write : seg:string -> off:expr -> len:expr -> instr
val for_ : string -> lo:int -> hi:int -> instr list -> instr

val retry :
  ?attempts:int -> ?backoff:bool -> ?verified:bool -> instr list -> instr
(** Defaults: unbounded, no backoff, [verified:true]. *)

(** {1 Rendering} *)

val expr_to_string : expr -> string
val role_to_string : role -> string
val instr_to_string : instr -> string

val instr_count : instr list -> int
(** Instructions including nested bodies (loop/retry headers count 1). *)

val describe : t -> string
(** Multi-line rendering: manifest, then each node's instructions. *)

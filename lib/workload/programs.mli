(** The catalog of declared access programs: one {!Program.t} per
    analysis scenario ({!Analysis.Scenarios} shapes, including the
    seeded-bug workloads) and per recovery-campaign workload
    ({!Faults.Campaign} shapes).

    Each program declares the segments, offsets, extents, value ranges
    and retry disciplines its workload is supposed to use.  The static
    verifier checks the declarations at map time; the @protocheck
    cross-validation holds them against the dynamic checkers in both
    directions (seeded static findings confirmed by exploration
    certificates, campaign programs statically clean). *)

val scenarios : Program.t list
(** Programs for every {!Analysis.Scenarios} workload plus
    [frame_overrun], in scenario order. *)

val campaigns : Program.t list
(** Programs for the five {!Faults.Campaign} workloads.  Policied
    writes verify by read-back and are declared write-then-fence;
    policied CAS wrappers re-read the authoritative word and are
    declared [verified]. *)

val shard_programs : Program.t list
(** Programs for the sharded name service: [sharded_lookup] (the
    clerk's pure-data probe chain against the registry segment the
    cached map names), [shard_map_publish] (the reconciler's split
    publication — record copies, destination fence, map body, epoch
    word last with the doorbell), and [shard_map_publish_unfenced]
    (the seeded bug: doorbell raised while the record copies are still
    unfenced at the destination, tripping [static-unfenced-publish]). *)

val dds_programs : Program.t list
(** Programs for the distributed data structures ({!Dds} shapes), each
    declaring the DX structuring's remote-access protocol:
    [dds_hashtable] (probe chain, CAS slot claim, fenced value
    deposit), [dds_queue] (brand-claimed ticket counters, one atomic
    slot deposit per ticket), and [dds_register] (the correct ABD
    register — collect, claim, deposit, and the reader's write-back).
    The seeded [dds_register_no_writeback] variant lives in
    {!scenarios}: its reader declares no write-back phase, statically
    clean by design and caught only by exploration. *)

val scenario : string -> Program.t option
val campaign : string -> Program.t option
val shard : string -> Program.t option
val dds : string -> Program.t option

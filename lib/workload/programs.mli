(** The catalog of declared access programs: one {!Program.t} per
    analysis scenario ({!Analysis.Scenarios} shapes, including the
    seeded-bug workloads) and per recovery-campaign workload
    ({!Faults.Campaign} shapes).

    Each program declares the segments, offsets, extents, value ranges
    and retry disciplines its workload is supposed to use.  The static
    verifier checks the declarations at map time; the @protocheck
    cross-validation holds them against the dynamic checkers in both
    directions (seeded static findings confirmed by exploration
    certificates, campaign programs statically clean). *)

val scenarios : Program.t list
(** Programs for every {!Analysis.Scenarios} workload plus
    [frame_overrun], in scenario order. *)

val campaigns : Program.t list
(** Programs for the five {!Faults.Campaign} workloads.  Policied
    writes verify by read-back and are declared write-then-fence;
    policied CAS wrappers re-read the authoritative word and are
    declared [verified]. *)

val scenario : string -> Program.t option
val campaign : string -> Program.t option

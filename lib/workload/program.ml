(* The typed IR for per-node meta-instruction programs.

   A program is the declarative skeleton of a workload's data-transfer
   protocol: which segments each node touches, with which operations,
   at which (possibly loop- or value-dependent) offsets, under which
   retry discipline.  It deliberately has no general control flow —
   the paper's observation is that data-transfer code is a short,
   straight-line sequence of meta-instructions, which is exactly what
   makes it statically analyzable. *)

type expr =
  | Const of int
  | Var of string
  | Add of expr * expr
  | Mul of expr * expr

type role = Plain | Acquire | Release

type instr =
  | Read of { seg : string; off : expr; len : expr }
  | Read_word of { seg : string; off : expr; var : string; lo : int; hi : int }
  | Write of { seg : string; off : expr; len : expr; notify : bool }
  | Cas of { seg : string; off : expr; role : role }
  | Fence of { seg : string }
  | Wait of { seg : string }
  | Local_read of { seg : string; off : expr; len : expr }
  | Local_write of { seg : string; off : expr; len : expr }
  | For of { var : string; lo : int; hi : int; body : instr list }
  | Retry of {
      attempts : int option;
      backoff : bool;
      verified : bool;
      body : instr list;
    }

type node_program = { node : int; name : string; body : instr list }

type t = {
  name : string;
  manifest : Rmem.Manifest.t;
  nodes : node_program list;
}

let word = 4

(* Constructors terse enough that the catalog reads like the protocol
   it declares. *)
let c n = Const n
let v name = Var name
let ( + ) a b = Add (a, b)
let ( * ) a b = Mul (a, b)

let read ~seg ~off ~len = Read { seg; off; len }

let read_word ~seg ~off ~var ~lo ~hi = Read_word { seg; off; var; lo; hi }

let write ?(notify = false) ~seg ~off ~len () = Write { seg; off; len; notify }

let cas ?(role = Plain) seg ~off = Cas { seg; off; role }

let fence seg = Fence { seg }
let wait seg = Wait { seg }
let local_read ~seg ~off ~len = Local_read { seg; off; len }
let local_write ~seg ~off ~len = Local_write { seg; off; len }
let for_ var ~lo ~hi body = For { var; lo; hi; body }

let retry ?attempts ?(backoff = false) ?(verified = true) body =
  Retry { attempts; backoff; verified; body }

let rec expr_to_string = function
  | Const n -> string_of_int n
  | Var x -> x
  | Add (a, b) ->
      Printf.sprintf "%s+%s" (expr_to_string a) (expr_to_string b)
  | Mul (a, b) ->
      Printf.sprintf "%s*%s" (expr_to_string a) (expr_to_string b)

let role_to_string = function
  | Plain -> "plain"
  | Acquire -> "acquire"
  | Release -> "release"

let rec instr_to_string = function
  | Read { seg; off; len } ->
      Printf.sprintf "read %s[%s..+%s)" seg (expr_to_string off)
        (expr_to_string len)
  | Read_word { seg; off; var; lo; hi } ->
      Printf.sprintf "%s := read-word %s[%s] in [%d,%d]" var seg
        (expr_to_string off) lo hi
  | Write { seg; off; len; notify } ->
      Printf.sprintf "write%s %s[%s..+%s)"
        (if notify then "+notify" else "")
        seg (expr_to_string off) (expr_to_string len)
  | Cas { seg; off; role } ->
      Printf.sprintf "cas(%s) %s[%s]" (role_to_string role) seg
        (expr_to_string off)
  | Fence { seg } -> Printf.sprintf "fence %s" seg
  | Wait { seg } -> Printf.sprintf "wait %s" seg
  | Local_read { seg; off; len } ->
      Printf.sprintf "local-read %s[%s..+%s)" seg (expr_to_string off)
        (expr_to_string len)
  | Local_write { seg; off; len } ->
      Printf.sprintf "local-write %s[%s..+%s)" seg (expr_to_string off)
        (expr_to_string len)
  | For { var; lo; hi; body } ->
      Printf.sprintf "for %s in %d..%d { %s }" var lo hi
        (String.concat "; " (List.map instr_to_string body))
  | Retry { attempts; backoff; verified; body } ->
      Printf.sprintf "retry%s%s%s { %s }"
        (match attempts with
        | None -> ""
        | Some n -> Printf.sprintf " x%d" n)
        (if backoff then " backoff" else "")
        (if verified then " verified" else " reply-trusting")
        (String.concat "; " (List.map instr_to_string body))

let rec instr_count body =
  List.fold_left
    (fun acc i ->
      Stdlib.( + ) acc
        (match i with
        | For { body; _ } | Retry { body; _ } ->
            Stdlib.( + ) 1 (instr_count body)
        | _ -> 1))
    0 body

let describe t =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "program %s\n" t.name);
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "  export %s\n" (Rmem.Manifest.describe e)))
    t.manifest;
  List.iter
    (fun np ->
      Buffer.add_string b
        (Printf.sprintf "  node %d (%s):\n" np.node np.name);
      List.iter
        (fun i ->
          Buffer.add_string b
            (Printf.sprintf "    %s\n" (instr_to_string i)))
        np.body)
    t.nodes;
  Buffer.contents b

(** A serverless replicated configuration store — §3.2's "eliminate the
    server completely and have the state maintained by the clerks
    alone".

    Every member holds a full replica in an exported segment; updates
    propagate as one-way remote writes (version word last), reads are
    local memory accesses, concurrent updates converge by
    (version, writer) last-writer-wins, and an anti-entropy pass
    remote-reads a peer's replica to repair gaps. No server exists. *)

type t

val create : ?slots:int -> Names.Clerk.t -> t
(** Export this member's replica (registered with the name service).
    [slots] must be a power of two (default 64). *)

val join : t -> peer:Atm.Addr.t -> unit
(** Import a peer's replica so updates and anti-entropy reach it. *)

val members : t -> int
(** Known members, including this one. *)

(** {1 The store} *)

val get : t -> string -> bytes option
(** Purely local: one memory read, no network. *)

val set : t -> string -> bytes -> unit
(** Install locally and push to every peer with one-way remote writes.
    Keys up to 32 bytes, values up to 64. *)

val version_of : t -> string -> int
(** 0 when absent. *)

(** {1 Recovery} *)

val set_recovery : t -> Rmem.Recovery.policy option -> unit
(** Run pushes and anti-entropy reads under a recovery policy (extended
    per peer with a name-service revalidator, so a peer crash/restart's
    [Stale_generation] heals by forced re-import). Pushes become
    fenced-and-reissued (idempotent redeposit) and a peer unreachable
    through every retry is a counted failure instead of an exception.
    The default [None] keeps the legacy one-way behavior, bit-identical
    to the fault-free build. *)

val set_pipeline : t -> Rmem.Pipeline.t option -> unit
(** Route pushes through a pipelined issue engine: an update's body and
    version word stage as adjacent extents, merge, and reach each peer
    as one burst frame, deposited as a unit — the body-before-version
    torn-read discipline made structural. Composes with {!set_recovery}
    (the flush then verifies and retries under the per-peer policy).
    With a disabled engine this is passthrough, identical to the
    legacy path. *)

val push_failures : t -> int
(** Updates abandoned after exhausting a recovery policy. *)

val repair_failures : t -> int
(** Anti-entropy daemon passes abandoned likewise. *)

(** {1 Repair} *)

val anti_entropy_with : t -> peer:Atm.Addr.t -> unit
(** Remote-read the peer's whole replica; adopt every newer entry. *)

val start_anti_entropy_daemon : t -> period:Sim.Time.t -> unit -> unit
(** Periodically reconcile with a random peer; returns the stop
    function. *)

(** {1 Statistics} *)

val updates_sent : t -> int
val repairs : t -> int
val node : t -> Cluster.Node.t

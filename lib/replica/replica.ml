(* A serverless replicated configuration store.

   §3.2's closing observation: "in some cases it might be possible to
   eliminate the server completely and have the state maintained by the
   clerks alone."  This service does exactly that.  Every member holds
   a full replica of a small key/value table inside an exported
   segment.  An update is a set of one-way remote writes, one per peer
   — pure data transfer, nobody scheduled anywhere.  Reads are local
   memory accesses.  Versions make concurrent updates converge
   (last-writer-wins, version then writer id as tie-break), and an
   anti-entropy pass remote-reads a peer's replica to repair anything a
   lost or reordered update left behind.

   Slot layout (single-writer-per-slot is NOT assumed; the version word
   is written last so torn remote reads are detectable):
     [version 4][writer 4][key 32][len 4][value 64] = 108 -> 112 bytes. *)

let slot_bytes = 112
let key_bytes = 32
let value_bytes = 64

let segment_name_for addr =
  Printf.sprintf "replica:%d" (Atm.Addr.to_int addr)

type entry = { version : int; writer : int; key : string; value : bytes }

type t = {
  rmem : Rmem.Remote_memory.t;
  names : Names.Clerk.t;
  node : Cluster.Node.t;
  space : Cluster.Address_space.t;
  slots : int;
  peers : (int, Rmem.Descriptor.t) Hashtbl.t; (* peer addr -> its replica *)
  scratch_base : int;
  mutable updates_sent : int;
  mutable repairs : int;
  mutable recovery : Rmem.Recovery.policy option;
  (* None (default): legacy one-way pushes and unbounded anti-entropy
     reads, bit-identical to the fault-free build *)
  mutable push_failures : int;
  mutable repair_failures : int;
  mutable pipeline : Rmem.Pipeline.t option;
  (* when set, pushes go through the batching engine: body and version
     word of one update merge into a single burst extent per peer *)
}

let slot_of t key = Names.Record.fnv_hash key land (t.slots - 1)
let slot_addr (_ : t) index = index * slot_bytes

let encode_entry e =
  if String.length e.key > key_bytes then invalid_arg "Replica: key too long";
  if Bytes.length e.value > value_bytes then
    invalid_arg "Replica: value too long";
  let b = Bytes.make slot_bytes '\000' in
  Bytes.set_int32_le b 0 (Int32.of_int e.version);
  Bytes.set_int32_le b 4 (Int32.of_int e.writer);
  Bytes.blit_string e.key 0 b 8 (String.length e.key);
  Bytes.set_int32_le b 40 (Int32.of_int (Bytes.length e.value));
  Bytes.blit e.value 0 b 44 (Bytes.length e.value);
  b

let decode_entry b =
  let version = Int32.to_int (Bytes.get_int32_le b 0) in
  if version = 0 then None
  else begin
    let writer = Int32.to_int (Bytes.get_int32_le b 4) in
    let raw_key = Bytes.sub_string b 8 key_bytes in
    let key =
      match String.index_opt raw_key '\000' with
      | Some i -> String.sub raw_key 0 i
      | None -> raw_key
    in
    let len = Int32.to_int (Bytes.get_int32_le b 40) in
    if len < 0 || len > value_bytes then None
    else Some { version; writer; key; value = Bytes.sub b 44 len }
  end

let create ?(slots = 64) names =
  if slots land (slots - 1) <> 0 then
    invalid_arg "Replica.create: slots must be a power of two";
  let rmem = Names.Clerk.rmem names in
  let node = Rmem.Remote_memory.node rmem in
  let space = Cluster.Node.new_address_space node in
  let (_ : Rmem.Segment.t) =
    Names.Api.export names ~space ~base:0 ~len:(slots * slot_bytes)
      ~rights:(Rmem.Rights.make ~read:true ~write:true ())
      ~name:(segment_name_for (Cluster.Node.addr node))
      ()
  in
  {
    rmem;
    names;
    node;
    space;
    slots;
    peers = Hashtbl.create 8;
    scratch_base = slots * slot_bytes * 2;
    updates_sent = 0;
    repairs = 0;
    recovery = None;
    push_failures = 0;
    repair_failures = 0;
    pipeline = None;
  }

let join t ~peer =
  let key = Atm.Addr.to_int peer in
  if (not (Hashtbl.mem t.peers key)) && not (Atm.Addr.equal peer (Cluster.Node.addr t.node))
  then
    Hashtbl.replace t.peers key
      (Names.Api.import ~hint:peer t.names (segment_name_for peer))

let members t = Hashtbl.length t.peers + 1

let set_recovery t policy = t.recovery <- policy
let set_pipeline t pipeline = t.pipeline <- pipeline

(* The per-peer policy: the base policy plus a revalidator that
   re-imports the peer's replica by name (forced lookup, hinted at the
   peer), so a Stale_generation after the peer crash/restarts heals. *)
let peer_policy t base ~peer =
  Rmem.Recovery.with_revalidate base
    (Names.Api.revalidator ~hint:peer t.names (segment_name_for peer))

(* Is [candidate] newer than [current]?  Version, then writer id. *)
let newer candidate current =
  match current with
  | None -> true
  | Some current ->
      candidate.version > current.version
      || (candidate.version = current.version
         && candidate.writer > current.writer)

let read_local_slot t index =
  decode_entry
    (Cluster.Address_space.read t.space ~addr:(slot_addr t index) ~len:slot_bytes)

let install_local t entry =
  let index = slot_of t entry.key in
  let image = encode_entry entry in
  (* Body first, version word last: remote readers never see a torn
     entry with a plausible version. *)
  Cluster.Address_space.write_word t.space ~addr:(slot_addr t index) 0l;
  Cluster.Address_space.write t.space
    ~addr:(slot_addr t index + 4)
    (Bytes.sub image 4 (slot_bytes - 4));
  Cluster.Address_space.write_word t.space ~addr:(slot_addr t index)
    (Int32.of_int entry.version)

let get t key =
  match read_local_slot t (slot_of t key) with
  | Some entry when String.equal entry.key key -> Some entry.value
  | Some _ | None -> None

let version_of t key =
  match read_local_slot t (slot_of t key) with
  | Some entry when String.equal entry.key key -> entry.version
  | Some _ | None -> 0

let set t key value =
  let entry =
    {
      version = version_of t key + 1;
      writer = Atm.Addr.to_int (Cluster.Node.addr t.node);
      key;
      value;
    }
  in
  install_local t entry;
  (* Propagate with one-way remote writes: body then version word. *)
  let index = slot_of t key in
  let image = encode_entry entry in
  let body = Bytes.sub image 4 (slot_bytes - 4) in
  let version_word = Bytes.create 4 in
  Bytes.set_int32_le version_word 0 (Int32.of_int entry.version);
  match (t.pipeline, t.recovery) with
  | Some pipeline, recovery ->
      (* Batched push: body and version word stage as adjacent extents
         and merge, so each peer receives the whole update in one burst
         frame — deposited as a unit, the version word can never become
         visible ahead of its body (the discipline the two-write order
         exists for, made structural). *)
      let peers =
        Hashtbl.fold (fun addr desc acc -> (addr, desc) :: acc) t.peers []
        |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
      in
      List.iter
        (fun (addr, desc) ->
          let policy =
            Option.map
              (fun base -> peer_policy t base ~peer:(Atm.Addr.of_int addr))
              recovery
          in
          match
            Rmem.Pipeline.write pipeline desc
              ~off:(slot_addr t index + 4)
              body;
            Rmem.Pipeline.write pipeline desc ~off:(slot_addr t index)
              version_word;
            Rmem.Pipeline.flush ?policy pipeline desc
          with
          | () -> t.updates_sent <- t.updates_sent + 1
          | exception (Rmem.Status.Timeout | Rmem.Status.Remote_error _)
            when Option.is_some recovery ->
              t.push_failures <- t.push_failures + 1)
        peers
  | None, None ->
      Hashtbl.iter
        (fun _ desc ->
          Rmem.Remote_memory.write t.rmem desc ~off:(slot_addr t index + 4)
            body;
          Rmem.Remote_memory.write t.rmem desc
            ~off:(slot_addr t index)
            version_word;
          t.updates_sent <- t.updates_sent + 1)
        t.peers
  | None, Some base ->
      (* Push under policy, peers in address order for deterministic
         replay. Each write is fenced and reissued on loss —
         re-depositing is idempotent (same version, same bytes) — and
         the body lands before the version word becomes visible. A peer
         that stays unreachable costs a counted failure, not an
         exception: anti-entropy repairs it after the heal. *)
      let peers =
        Hashtbl.fold (fun addr desc acc -> (addr, desc) :: acc) t.peers []
        |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
      in
      List.iter
        (fun (addr, desc) ->
          let policy = peer_policy t base ~peer:(Atm.Addr.of_int addr) in
          match
            Rmem.Remote_memory.write_with t.rmem ~policy desc
              ~off:(slot_addr t index + 4)
              body;
            Rmem.Remote_memory.write_with t.rmem ~policy desc
              ~off:(slot_addr t index)
              version_word
          with
          | () -> t.updates_sent <- t.updates_sent + 1
          | exception (Rmem.Status.Timeout | Rmem.Status.Remote_error _) ->
              t.push_failures <- t.push_failures + 1)
        peers

(* Anti-entropy: remote-read one peer's whole replica and adopt every
   entry newer than ours.  Cheap (one block read), server-free, and
   repairs both lost updates and late joiners. *)
let anti_entropy_with t ~peer =
  match Hashtbl.find_opt t.peers (Atm.Addr.to_int peer) with
  | None -> invalid_arg "Replica.anti_entropy_with: unknown peer"
  | Some desc ->
      let len = t.slots * slot_bytes in
      let buf =
        Rmem.Remote_memory.buffer ~space:t.space ~base:t.scratch_base ~len
      in
      (match t.recovery with
      | None ->
          Rmem.Remote_memory.read_wait t.rmem desc ~soff:0 ~count:len ~dst:buf
            ~doff:0 ()
      | Some base ->
          let policy = peer_policy t base ~peer in
          Rmem.Remote_memory.read_with t.rmem ~policy desc ~soff:0 ~count:len
            ~dst:buf ~doff:0 ());
      for index = 0 to t.slots - 1 do
        let image =
          Cluster.Address_space.read t.space
            ~addr:(t.scratch_base + slot_addr t index)
            ~len:slot_bytes
        in
        match decode_entry image with
        | Some theirs when newer theirs (read_local_slot t index) ->
            install_local t theirs;
            t.repairs <- t.repairs + 1
        | Some _ | None -> ()
      done

let start_anti_entropy_daemon t ~period =
  let stopped = ref false in
  Cluster.Node.spawn t.node (fun () ->
      let prng = Cluster.Node.prng t.node in
      while not !stopped do
        Sim.Proc.wait period;
        if not !stopped then begin
          let peers =
            Hashtbl.fold (fun addr _ acc -> addr :: acc) t.peers []
          in
          match peers with
          | [] -> ()
          | _ -> (
              let target =
                List.nth peers (Sim.Prng.int prng (List.length peers))
              in
              try anti_entropy_with t ~peer:(Atm.Addr.of_int target)
              with (Rmem.Status.Timeout | Rmem.Status.Remote_error _) when
                Option.is_some t.recovery ->
                (* Under a recovery policy the daemon outlives a peer
                   that stayed unreachable through every retry: count
                   the failed pass and reconcile again next period. *)
                t.repair_failures <- t.repair_failures + 1)
        end
      done);
  fun () -> stopped := true

let updates_sent t = t.updates_sent
let repairs t = t.repairs
let push_failures t = t.push_failures
let repair_failures t = t.repair_failures
let node t = t.node

(** The fault plane: a deterministic saboteur for a whole testbed.

    [create] interposes a verdict function on every fabric link (in the
    fabric's fixed construction order, each with its own PRNG stream
    split off the seed), flips the links to drop-on-overflow, and
    schedules any crash/restart events from the plan. The interposer
    draws a fixed number of PRNG values per offered frame regardless of
    verdict, so fault classes never perturb each other's draws: the
    whole fault sequence is a pure function of (plan, seed), and a
    failing campaign replays exactly.

    With {!Plan.none} (the default) every verdict is [Deliver] and the
    runs stay bit-identical to the fault-free build. *)

type t

val create :
  ?plan:Plan.t ->
  ?rmems:(int * Rmem.Remote_memory.t) list ->
  ?preserve:int list ->
  ?on_restart:(int -> unit) ->
  seed:int ->
  Cluster.Testbed.t ->
  t
(** [rmems] maps node index to its remote-memory engine: needed for
    crash plans (pending ops failed on crash, exports regenerated on
    restart) and to route retry/recovery counters into the plane's
    registry. [preserve] lists segment ids whose generation survives a
    restart (well-known bootstrap segments). [on_restart node] runs
    after a node's exports come back — the place to re-announce new
    generations to the name service
    (e.g. [Names.Clerk.reannounce clerk]). *)

val uninstall : t -> unit
(** Remove the interposers and restore raise-on-overflow. *)

val registry : t -> Obs.Registry.t
(** Injection counters ([faults.frames] — every frame inspected —
    [faults.drops], [faults.corruptions],
    [faults.duplicates], [faults.delays], [faults.partition_drops],
    [faults.crashes], [faults.restarts]) plus the retry/recovery
    counters of every registered rmem ([rmem.retries],
    [rmem.revalidations], [rmem.recovered], [rmem.gave_up]). *)

(** {1 The replay contract} *)

val events : t -> (Sim.Time.t * string) list
(** Every injected fault, chronologically, e.g. [(t, "drop 0->1")]. *)

val event_count : t -> int

val digest : t -> int
(** A positive hash of {!events}: two runs with equal digests injected
    the identical fault sequence at the identical instants. *)

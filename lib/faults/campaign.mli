(** Recovery campaigns: end-to-end workloads under a fault plan.

    Each workload builds its own testbed, installs a {!Plane} from the
    given plan and seed, runs to quiescence and checks an explicit
    final-state convergence condition. Outcomes carry the plane's event
    digest: running the same (workload, plan, seed) twice must produce
    equal digests — the determinism/replay contract [chaoscheck] and
    the @faults tests assert. *)

type outcome = {
  workload : string;
  seed : int;
  survived : bool;  (** ran to quiescence: no deadlock, no escaped error *)
  converged : bool;  (** the workload's final-state check passed *)
  detail : string;  (** diagnosis when not survived/converged *)
  digest : int;  (** {!Plane.digest} — the replay witness *)
  events : int;  (** injected faults *)
  retries : float;  (** policy-driven reissues ([rmem.retries]) *)
  recovered : float;  (** ops that succeeded after retrying *)
  revalidations : float;  (** descriptor re-imports on staleness *)
  gave_up : float;  (** ops abandoned after exhausting a policy *)
  counters : (string * float) list;  (** the full registry *)
  registry : Obs.Registry.t;
      (** the live registry — latency series included, for SLO gates *)
  timeseries : Obs.Timeseries.t option;
      (** the run's sampler, when one was requested *)
  engine_events : int;
      (** every simulator event the run fired — the denominator of the
          host-time events/sec baseline ([bench --host]) *)
}

val workloads : string list
(** ["quickstart"; "name_service"; "producer_consumer"; "replica";
    "crash_restart"]. *)

val program : string -> Workload.Program.t option
(** The workload's declared access program ({!Workload.Programs}) —
    what the static verifier ([protocheck]) holds against the manifest
    before the campaign issues anything. [None] for unknown names. *)

val set_rmem_probe : (Rmem.Remote_memory.t -> unit) option -> unit
(** Observe every remote-memory endpoint the campaign workloads attach
    (called once per endpoint, before the workload issues anything).
    Lets an analysis tool subscribe its monitor without a dependency
    from this library back onto the analyzer; global — set it to [None]
    when done. *)

val run :
  ?plan:Plan.t ->
  ?pipelined:bool ->
  ?sampler:Sim.Time.t ->
  seed:int ->
  string ->
  outcome
(** Run one workload by name (default plan: {!Plan.none}). The
    [crash_restart] workload adds its canonical crash/restart schedule
    when the plan carries none. With [pipelined] (default false) the
    workload's remote writes route through a {!Rmem.Pipeline} engine
    (and lookup probes through its read window); the convergence checks
    are identical — the differential suite holds the two modes against
    each other.

    With [sampler] the workload runs under an {!Obs.Timeseries} sampler
    at that interval, every layer's gauges registered (link/switch
    depth and drops, NIC receive FIFOs, per-node in-flight and
    notification backlog, pipeline occupancy, cumulative fault and
    recovery counters); the outcome carries it for SLO evaluation.
    Sampling is perturbation-free: the digest is bit-identical with or
    without it — asserted by the @faults tests.

    Raises [Invalid_argument] on unknown names. *)

(** {1 Canonical CI plans} *)

val loss_plan : float -> Plan.t
(** Uniform per-frame loss at the given probability. *)

val chaos_plan : float -> Plan.t
(** Loss at the given probability plus corruption, duplication and
    delay-jitter at half of it. *)

val partition_plan : unit -> Plan.t
(** Node 2 isolated during [10 ms, 30 ms) — matches the write schedule
    of the [replica] workload. *)

val crash_plan : unit -> Plan.t
(** Node 1 crashes at 5 ms and restarts (generations bumped) at 8 ms —
    the [crash_restart] workload's canonical schedule. *)

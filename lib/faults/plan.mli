(** Declarative fault plans.

    A plan is pure data — what goes wrong, with which probabilities, in
    which time windows. It carries no randomness and no clock; the
    {!Plane} combines it with a seed and the simulated clock, so every
    fault sequence is a pure function of (plan, seed) and a failing
    campaign replays exactly. *)

type window = { from_ : Sim.Time.t; until : Sim.Time.t }
(** Half-open: active at [from_ <= now < until]. *)

val window : from_:Sim.Time.t -> until:Sim.Time.t -> window
(** Raises [Invalid_argument] if empty. *)

val within : window list -> Sim.Time.t -> bool
(** Is the instant inside any of the windows? *)

val active : window list -> Sim.Time.t -> bool
(** Like {!within}, except the empty list means the whole run. *)

(** Per-frame stochastic faults, applied independently on every fabric
    link. Probabilities are per offered frame. *)
type link_faults = {
  loss : float;
  corrupt : float;  (** payload damage; NICs detect it by AAL checksum *)
  duplicate : float;
  jitter : float;  (** extra-delay probability — induces reordering *)
  jitter_max : Sim.Time.t;  (** delay drawn uniformly in [0, jitter_max) *)
  windows : window list;  (** [[]] = the whole run *)
}

val calm : link_faults
(** All probabilities zero. *)

val link_faults :
  ?loss:float ->
  ?corrupt:float ->
  ?duplicate:float ->
  ?jitter:float ->
  ?jitter_max:Sim.Time.t ->
  ?windows:window list ->
  unit ->
  link_faults
(** Defaults: all probabilities 0, [jitter_max] 50 us. Raises
    [Invalid_argument] for probabilities outside [0, 1]. *)

type partition = { group : int list; windows : window list }
(** While any window is active, frames between a group member and a
    non-member are cut (both directions, judged on the frame's own
    src/dst, so it is exact on star topologies too); traffic within the
    group, and among non-members, flows. *)

type crash = { node : int; at : Sim.Time.t; restart_at : Sim.Time.t option }
(** Crash the node at [at] (inbound frames absorbed, pending remote ops
    on it time out); optionally restart at [restart_at], which re-exports
    its segments under fresh generations — pre-crash descriptors then
    fail [Stale_generation] until revalidated. *)

type t = {
  link : link_faults;
  partitions : partition list;
  crashes : crash list;
}

val none : t
(** The empty plan: a plane built from it injects nothing. *)

val make :
  ?link:link_faults ->
  ?partitions:partition list ->
  ?crashes:crash list ->
  unit ->
  t
(** Raises [Invalid_argument] for an empty partition group, a partition
    without windows, or a restart not after its crash. *)

val is_none : t -> bool

(* A fault plan: the pure, declarative description of everything that
   will go wrong in a run.

   The plan holds no randomness and no clock — it is data.  The plane
   combines it with a seed and the simulated clock, so a failing
   campaign replays exactly from (plan, seed). *)

type window = { from_ : Sim.Time.t; until : Sim.Time.t }

let window ~from_ ~until =
  if Sim.Time.(until <= from_) then
    invalid_arg "Faults.Plan.window: empty window";
  { from_; until }

let in_window now w = Sim.Time.(w.from_ <= now) && Sim.Time.(now < w.until)
let within windows now = List.exists (in_window now) windows

(* [] means the whole run: a plan that just says "1% loss" should not
   have to spell out an infinite window. *)
let active windows now =
  match windows with [] -> true | ws -> within ws now

type link_faults = {
  loss : float;
  corrupt : float;
  duplicate : float;
  jitter : float;
  jitter_max : Sim.Time.t;
  windows : window list;
}

let calm =
  {
    loss = 0.;
    corrupt = 0.;
    duplicate = 0.;
    jitter = 0.;
    jitter_max = Sim.Time.zero;
    windows = [];
  }

let probability label p =
  if p < 0. || p > 1. then
    invalid_arg (Printf.sprintf "Faults.Plan: %s not in [0, 1]" label);
  p

let link_faults ?(loss = 0.) ?(corrupt = 0.) ?(duplicate = 0.) ?(jitter = 0.)
    ?(jitter_max = Sim.Time.us 50) ?(windows = []) () =
  {
    loss = probability "loss" loss;
    corrupt = probability "corrupt" corrupt;
    duplicate = probability "duplicate" duplicate;
    jitter = probability "jitter" jitter;
    jitter_max;
    windows;
  }

type partition = { group : int list; windows : window list }
type crash = { node : int; at : Sim.Time.t; restart_at : Sim.Time.t option }

type t = {
  link : link_faults;
  partitions : partition list;
  crashes : crash list;
}

let none = { link = calm; partitions = []; crashes = [] }

let make ?(link = calm) ?(partitions = []) ?(crashes = []) () =
  List.iter
    (fun p ->
      if p.group = [] then invalid_arg "Faults.Plan: empty partition group";
      if p.windows = [] then
        invalid_arg "Faults.Plan: partition without windows")
    partitions;
  List.iter
    (fun c ->
      match c.restart_at with
      | Some r when Sim.Time.(r <= c.at) ->
          invalid_arg "Faults.Plan: restart not after crash"
      | Some _ | None -> ())
    crashes;
  { link; partitions; crashes }

let is_none t = t.link = calm && t.partitions = [] && t.crashes = []

(* The fault plane: a deterministic saboteur interposed on every fabric
   link of a testbed, plus a crash/restart scheduler for its nodes.

   Determinism is the whole point.  Each link gets its own PRNG stream
   split off the plane's seed in the fabric's fixed construction order,
   and the interposer draws the SAME number of values for every offered
   frame whatever the verdict — so one link's verdicts never perturb
   another's, and a given (plan, seed) always produces the identical
   fault sequence.  The event log records every injected fault with its
   simulated time; its digest is what replay tests assert. *)

type t = {
  engine : Sim.Engine.t;
  plan : Plan.t;
  registry : Obs.Registry.t;
  mutable events : (Sim.Time.t * string) list; (* newest first *)
  mutable installed : Atm.Link.t list;
}

let log t label = t.events <- (Sim.Engine.now t.engine, label) :: t.events
let count t name = Obs.Registry.incr t.registry ("faults." ^ name)

let partitioned t now ~src ~dst =
  List.exists
    (fun p ->
      Plan.within p.Plan.windows now
      && List.mem src p.Plan.group <> List.mem dst p.Plan.group)
    t.plan.Plan.partitions

(* One frame, one verdict.  The draws happen unconditionally and in a
   fixed order: a frame that ends up cut by a partition consumes exactly
   as much of the link's stream as one that sails through, so toggling
   one fault class never shifts the draws another class sees. *)
let judge t prng frame =
  count t "frames";
  let u_loss = Sim.Prng.float prng in
  let u_corrupt = Sim.Prng.float prng in
  let corrupt_byte = Sim.Prng.int prng 65536 in
  let u_duplicate = Sim.Prng.float prng in
  let u_jitter = Sim.Prng.float prng in
  let u_amount = Sim.Prng.float prng in
  let now = Sim.Engine.now t.engine in
  let src = Atm.Addr.to_int (Atm.Frame.src frame) in
  let dst = Atm.Addr.to_int (Atm.Frame.dst frame) in
  let tag k = Printf.sprintf "%s %d->%d" k src dst in
  if partitioned t now ~src ~dst then begin
    count t "partition_drops";
    log t (tag "cut");
    Atm.Link.Drop "partition"
  end
  else begin
    let f = t.plan.Plan.link in
    if not (Plan.active f.Plan.windows now) then Atm.Link.Deliver
    else if u_loss < f.Plan.loss then begin
      count t "drops";
      log t (tag "drop");
      Atm.Link.Drop "loss"
    end
    else if u_corrupt < f.Plan.corrupt then begin
      count t "corruptions";
      log t (tag "corrupt");
      Atm.Link.Corrupt corrupt_byte
    end
    else if u_duplicate < f.Plan.duplicate then begin
      count t "duplicates";
      log t (tag "duplicate");
      Atm.Link.Duplicate 1
    end
    else if u_jitter < f.Plan.jitter then begin
      count t "delays";
      log t (tag "delay");
      Atm.Link.Delay (Sim.Time.scale f.Plan.jitter_max u_amount)
    end
    else Atm.Link.Deliver
  end

let install t root (_, _, link) =
  let prng = Sim.Prng.split root in
  Atm.Link.set_overflow link Atm.Link.Drop_on_overflow;
  Atm.Link.set_interposer link (Some (judge t prng));
  t.installed <- link :: t.installed

let schedule_crashes t testbed ~rmems ~preserve ~on_restart =
  (* Hash-indexed: crash plans on fabric-scale testbeds would otherwise
     rescan the endpoint list per scheduled event. *)
  let by_node = Hashtbl.create (2 * List.length rmems + 1) in
  List.iter (fun (n, rmem) -> Hashtbl.replace by_node n rmem) rmems;
  let rmem_of n = Hashtbl.find_opt by_node n in
  let at time thunk =
    (* A process, not a bare event: restart re-exports segments, which
       charges CPU and must run in process context. *)
    Sim.Proc.spawn
      ~after:(Sim.Time.diff time (Sim.Engine.now t.engine))
      ~name:"fault-plane" t.engine thunk
  in
  List.iter
    (fun c ->
      let node = Cluster.Testbed.node testbed c.Plan.node in
      at c.Plan.at (fun () ->
          count t "crashes";
          log t (Printf.sprintf "crash %d" c.Plan.node);
          Cluster.Node.set_down node true;
          Option.iter Rmem.Remote_memory.crash (rmem_of c.Plan.node));
      Option.iter
        (fun time ->
          at time (fun () ->
              count t "restarts";
              log t (Printf.sprintf "restart %d" c.Plan.node);
              Cluster.Node.set_down node false;
              Option.iter
                (Rmem.Remote_memory.restart_exports ~preserve)
                (rmem_of c.Plan.node);
              on_restart c.Plan.node))
        c.Plan.restart_at)
    t.plan.Plan.crashes

let create ?(plan = Plan.none) ?(rmems = []) ?(preserve = [])
    ?(on_restart = fun (_ : int) -> ()) ~seed testbed =
  let engine = Cluster.Testbed.engine testbed in
  let t =
    {
      engine;
      plan;
      registry = Obs.Registry.create ();
      events = [];
      installed = [];
    }
  in
  let root = Sim.Prng.create seed in
  List.iter (install t root) (Atm.Network.links (Cluster.Testbed.network testbed));
  List.iter
    (fun (_, rmem) -> Rmem.Remote_memory.set_fault_registry rmem (Some t.registry))
    rmems;
  schedule_crashes t testbed ~rmems ~preserve ~on_restart;
  t

let uninstall t =
  List.iter
    (fun link ->
      Atm.Link.set_interposer link None;
      Atm.Link.set_overflow link Atm.Link.Raise_on_overflow)
    t.installed;
  t.installed <- []

let registry t = t.registry
let events t = List.rev t.events
let event_count t = List.length t.events

(* FNV-1a over "time label" lines, masked positive: equal digests mean
   the two runs injected the identical fault sequence at the identical
   instants — the replay contract's witness. *)
let digest t =
  let prime = 0x100000001b3 in
  let step acc byte = (acc lxor byte) * prime land max_int in
  List.fold_left
    (fun acc (time, label) ->
      let acc = step acc (Sim.Time.to_ns time land 0xFFFFFFFF) in
      let acc = step acc (Sim.Time.to_ns time lsr 32) in
      String.fold_left (fun acc c -> step acc (Char.code c)) acc label)
    (0x3bf29ce484222325 (* FNV offset basis, folded into 63 bits *))
    (events t)

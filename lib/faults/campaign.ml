(* Recovery campaigns: small end-to-end workloads run under a fault
   plan, each with an explicit convergence check on final state.

   Every workload is deterministic given (plan, seed): the outcome
   carries the plane's event digest so a replay with the same inputs
   can be asserted identical — the contract the [chaoscheck] CLI and
   the @faults tests enforce. *)

type outcome = {
  workload : string;
  seed : int;
  survived : bool;
  converged : bool;
  detail : string;
  digest : int;
  events : int;
  retries : float;
  recovered : float;
  revalidations : float;
  gave_up : float;
  counters : (string * float) list;
  registry : Obs.Registry.t;
  timeseries : Obs.Timeseries.t option;
  engine_events : int;
}

let workloads =
  [ "quickstart"; "name_service"; "producer_consumer"; "replica"; "crash_restart" ]

(* External observer hook: every remote-memory endpoint a workload
   attaches is offered to the probe, so an analysis tool can subscribe
   its monitor without this library depending on it (the dependency
   points analysis -> faults, not back). *)
let rmem_probe : (Rmem.Remote_memory.t -> unit) option ref = ref None
let set_rmem_probe p = rmem_probe := p

let attach node =
  let rmem = Rmem.Remote_memory.attach node in
  Option.iter (fun f -> f rmem) !rmem_probe;
  rmem

(* ------------------------------------------------------------------ *)
(* Telemetry: when a sampling interval is given, each workload gets a
   time-series sampler on its testbed engine with every layer's gauges
   registered.  All thunks are read-only — the perturbation contract
   {!Obs.Timeseries} documents and the @faults digest test enforces:
   the plane's event digest must be bit-identical with sampling on or
   off. *)

(* Pipelines are created mid-run (sometimes per spawned producer), so
   their gauges register against the current run's sampler through this
   run-scoped state — same shape as [rmem_probe] above. *)
let current_sampler : Obs.Timeseries.t option ref = ref None
let pipeline_seq = ref 0

let fgauge ts name read =
  Obs.Timeseries.register ts name (fun () -> float_of_int (read ()))

let wire_gauges ts testbed ~rmems plane =
  let net = Cluster.Testbed.network testbed in
  List.iter
    (fun (_, _, link) ->
      let prefix = "link." ^ Atm.Link.name link in
      fgauge ts (prefix ^ ".depth") (fun () -> Atm.Link.queue_depth link);
      fgauge ts (prefix ^ ".drops") (fun () ->
          Atm.Link.drops link + Atm.Link.overflow_drops link))
    (Atm.Network.links net);
  Option.iter
    (fun switch ->
      fgauge ts "switch.depth" (fun () -> Atm.Switch.queue_depth switch);
      fgauge ts "switch.drops" (fun () -> Atm.Switch.drops switch))
    (Atm.Network.switch net);
  (* Per-switch gauges for multi-switch fabrics, plus always-present
     fabric aggregates so one SLO spec line covers every topology (a
     mesh reads 0 — the clean gate an author means, not a missing
     source). *)
  let switches = Atm.Network.switches net in
  List.iter
    (fun switch ->
      let prefix = "switch." ^ Atm.Switch.name switch in
      fgauge ts (prefix ^ ".depth") (fun () -> Atm.Switch.queue_depth switch);
      fgauge ts (prefix ^ ".drops") (fun () -> Atm.Switch.drops switch))
    switches;
  fgauge ts "fabric.switch_depth" (fun () ->
      List.fold_left (fun acc s -> acc + Atm.Switch.queue_depth s) 0 switches);
  fgauge ts "fabric.switch_drops" (fun () ->
      List.fold_left (fun acc s -> acc + Atm.Switch.drops s) 0 switches);
  List.iter
    (fun node ->
      let nic = Cluster.Node.nic node in
      let i = Atm.Addr.to_int (Cluster.Node.addr node) in
      fgauge ts
        (Printf.sprintf "nic.%d.rx_fifo" i)
        (fun () -> Atm.Nic.pending_frames nic))
    (Cluster.Testbed.nodes testbed);
  List.iter
    (fun (i, rmem) ->
      fgauge ts
        (Printf.sprintf "rmem.%d.inflight" i)
        (fun () -> Rmem.Remote_memory.inflight rmem);
      fgauge ts
        (Printf.sprintf "rmem.%d.notify_backlog" i)
        (fun () -> Rmem.Remote_memory.notification_backlog rmem))
    rmems;
  (* Cumulative plane/recovery counters as gauges, so [rate] SLO clauses
     can see bursts the end-of-run totals average away. *)
  let registry = Plane.registry plane in
  List.iter
    (fun name ->
      Obs.Timeseries.register ts name (fun () ->
          Obs.Registry.counter registry name))
    [
      "faults.frames";
      "faults.drops";
      "faults.corruptions";
      "faults.duplicates";
      "faults.delays";
      "faults.partition_drops";
      "rmem.retries";
      "rmem.recovered";
      "rmem.gave_up";
    ]

let sampler_for ~sampler testbed ~rmems plane =
  pipeline_seq := 0;
  let ts =
    Option.map
      (fun interval ->
        let config = { Obs.Timeseries.default_config with interval } in
        let ts =
          Obs.Timeseries.create ~config (Cluster.Testbed.engine testbed)
        in
        wire_gauges ts testbed ~rmems plane;
        Obs.Timeseries.start ts;
        ts)
      sampler
  in
  current_sampler := ts;
  ts

(* Generous enough for 10% frame loss: per-attempt failure is a few
   tenths, ten attempts leave no realistic seed stranded. *)
let campaign_policy () =
  Rmem.Recovery.policy ~attempts:10 ~timeout:(Sim.Time.ms 2)
    ~backoff:(Sim.Time.us 250) ()

(* Control-plane calls (name-service probes) are not policy-driven;
   give them a bounded probe timeout and retry at this level. *)
let rec retrying ?(attempts = 12) ?(pause = Sim.Time.us 400) f =
  match f () with
  | v -> v
  | exception
      ( Rmem.Status.Timeout | Rmem.Status.Remote_error _
      | Names.Clerk.Name_not_found _ )
    when attempts > 1 ->
      Sim.Proc.wait pause;
      retrying ~attempts:(attempts - 1) ~pause f

let wait_until engine time =
  let now = Sim.Engine.now engine in
  if Sim.Time.(now < time) then Sim.Proc.wait (Sim.Time.diff time now)

let clerk_for rmem =
  let clerk = Names.Clerk.create rmem in
  Names.Clerk.serve_lookup_requests clerk;
  Names.Clerk.set_probe_timeout clerk (Some (Sim.Time.ms 2));
  clerk

(* Pipelined mode: the same workloads with their remote writes routed
   through the batching issue engine (and lookup probes through its
   window). The convergence checks are unchanged — that equivalence is
   what the differential suite asserts. *)
let pipeline_for ~pipelined rmem =
  if pipelined then begin
    let p =
      Rmem.Pipeline.create ~config:(Rmem.Pipeline.pipelined_config ()) rmem
    in
    Option.iter
      (fun ts ->
        let k = !pipeline_seq in
        incr pipeline_seq;
        let g suffix read =
          fgauge ts (Printf.sprintf "pipeline.%d.%s" k suffix) read
        in
        g "window" (fun () -> Rmem.Pipeline.window_occupancy p);
        g "staged_extents" (fun () -> Rmem.Pipeline.staged_extents p);
        g "staged_bytes" (fun () -> Rmem.Pipeline.staged_bytes p))
      !current_sampler;
    Some p
  end
  else None

let push ?policy ?pipeline rmem desc ~off data =
  match pipeline with
  | Some p ->
      Rmem.Pipeline.write p desc ~off data;
      Rmem.Pipeline.flush ?policy p desc
  | None -> (
      match policy with
      | Some policy ->
          Rmem.Remote_memory.write_with rmem ~policy desc ~off data
      | None -> Rmem.Remote_memory.write rmem desc ~off data)

let outcome ~workload ~seed ~plane ~timeseries ~engine_events ~survived
    ~converged ~detail =
  let registry = Plane.registry plane in
  let c name = Obs.Registry.counter registry name in
  {
    workload;
    seed;
    survived;
    converged;
    detail;
    digest = Plane.digest plane;
    events = Plane.event_count plane;
    retries = c "rmem.retries";
    recovered = c "rmem.recovered";
    revalidations = c "rmem.revalidations";
    gave_up = c "rmem.gave_up";
    counters = Obs.Registry.counters registry;
    registry;
    timeseries;
    engine_events;
  }

(* Run a workload body to quiescence, translating the two failure modes
   a fault plan can force — a deadlocked wait or an escaped status —
   into a non-survival verdict instead of a crash of the harness. *)
let guarded ~workload ~seed ~plane ~timeseries testbed body =
  let detail = ref "" in
  let converged = ref false in
  let survived =
    match Cluster.Testbed.run testbed (fun () -> body converged detail) with
    | () -> true
    | exception Sim.Engine.Deadlock _ ->
        detail := "deadlock";
        false
    | exception exn ->
        detail := Printexc.to_string exn;
        false
  in
  current_sampler := None;
  outcome ~workload ~seed ~plane ~timeseries
    ~engine_events:(Sim.Engine.events_fired (Cluster.Testbed.engine testbed))
    ~survived ~converged:!converged ~detail:!detail

(* ------------------------------------------------------------------ *)
(* quickstart: 2 nodes, named export/import, WRITE, READ back, CAS.    *)

let quickstart ~plan ~seed ~pipelined ~sampler =
  let testbed = Cluster.Testbed.create ~nodes:2 () in
  let node0 = Cluster.Testbed.node testbed 0 in
  let node1 = Cluster.Testbed.node testbed 1 in
  let rmem0 = attach node0 in
  let rmem1 = attach node1 in
  let rmems = [ (0, rmem0); (1, rmem1) ] in
  let plane = Plane.create ~plan ~rmems ~seed testbed in
  let timeseries = sampler_for ~sampler testbed ~rmems plane in
  guarded ~workload:"quickstart" ~seed ~plane ~timeseries testbed
    (fun converged detail ->
      let names0 = clerk_for rmem0 in
      let names1 = clerk_for rmem1 in
      let pipeline = pipeline_for ~pipelined rmem0 in
      Names.Clerk.set_pipeline names0 pipeline;
      let space1 = Cluster.Node.new_address_space node1 in
      let (_ : Rmem.Segment.t) =
        Names.Api.export names1 ~space:space1 ~base:0 ~len:4096
          ~rights:Rmem.Rights.all ~name:"shared.buffer" ()
      in
      let hint = Cluster.Node.addr node1 in
      let desc =
        retrying (fun () -> Names.Api.import ~hint names0 "shared.buffer")
      in
      let policy =
        Rmem.Recovery.with_revalidate (campaign_policy ())
          (Names.Api.revalidator ~hint names0 "shared.buffer")
      in
      let message = Bytes.of_string "hello, remote memory" in
      push ~policy ?pipeline rmem0 desc ~off:0 message;
      let space0 = Cluster.Node.new_address_space node0 in
      let buf = Rmem.Remote_memory.buffer ~space:space0 ~base:0 ~len:4096 in
      Rmem.Remote_memory.read_with rmem0 ~policy desc ~soff:0
        ~count:(Bytes.length message) ~dst:buf ~doff:0 ();
      let echoed =
        Cluster.Address_space.read space0 ~addr:0 ~len:(Bytes.length message)
      in
      (* Both CAS calls race the lost-reply ambiguity, so the authority
         is the memory word itself: the first CAS saw 0 and must have
         installed 42; the second saw 42 and must have left it alone. *)
      let (_ : bool * int32) =
        Rmem.Remote_memory.cas_with rmem0 ~policy desc ~doff:1024
          ~old_value:0l ~new_value:42l ()
      in
      let (_ : bool * int32) =
        Rmem.Remote_memory.cas_with rmem0 ~policy desc ~doff:1024
          ~old_value:0l ~new_value:99l ()
      in
      Rmem.Remote_memory.read_with rmem0 ~policy desc ~soff:1024 ~count:4
        ~dst:buf ~doff:1024 ();
      let word = Cluster.Address_space.read_word space0 ~addr:1024 in
      let ok_bytes = Bytes.equal echoed message in
      let ok_word = Int32.equal word 42l in
      converged := ok_bytes && ok_word;
      if not !converged then
        detail :=
          Printf.sprintf "echo=%b word=%ld (want 42)" ok_bytes word)

(* ------------------------------------------------------------------ *)
(* name_service: batch export, imports, revoke/re-export recovery.     *)

let name_service ~plan ~seed ~pipelined ~sampler =
  let testbed = Cluster.Testbed.create ~nodes:3 () in
  let rmems =
    Array.init 3 (fun i ->
        attach (Cluster.Testbed.node testbed i))
  in
  let indexed = Array.to_list (Array.mapi (fun i r -> (i, r)) rmems) in
  let plane = Plane.create ~plan ~rmems:indexed ~seed testbed in
  let timeseries = sampler_for ~sampler testbed ~rmems:indexed plane in
  guarded ~workload:"name_service" ~seed ~plane ~timeseries testbed
    (fun converged detail ->
      let clerks = Array.map clerk_for rmems in
      let pipeline = pipeline_for ~pipelined rmems.(0) in
      Names.Clerk.set_pipeline clerks.(0) pipeline;
      let exporter = Cluster.Testbed.node testbed 2 in
      let hint = Cluster.Node.addr exporter in
      let space = Cluster.Node.new_address_space exporter in
      let shard_names =
        List.init 4 (fun i -> Printf.sprintf "service/db/shard-%02d" i)
      in
      let segments =
        List.mapi
          (fun i name ->
            ( name,
              Names.Api.export clerks.(2) ~space ~base:(i * 8192) ~len:8192
                ~rights:Rmem.Rights.all ~name () ))
          shard_names
      in
      List.iter
        (fun name ->
          let (_ : Rmem.Descriptor.t) =
            retrying (fun () -> Names.Api.import ~hint clerks.(0) name)
          in
          ())
        shard_names;
      let policy name =
        Rmem.Recovery.with_revalidate (campaign_policy ())
          (Names.Api.revalidator ~hint clerks.(0) name)
      in
      let name0 = "service/db/shard-00" in
      let stale =
        retrying (fun () -> Names.Api.import ~force:true ~hint clerks.(0) name0)
      in
      let payload = Bytes.of_string "shard zero, first generation" in
      push ~policy:(policy name0) ?pipeline rmems.(0) stale ~off:0 payload;
      (* The exporter revokes and re-exports shard-00: a NEW segment id,
         so the stale descriptor is beyond revalidation (the revalidator
         correctly refuses to splice a different segment under it) and
         the client must re-import — the clerk-mediated recovery path. *)
      let (_, first) = List.hd segments in
      Names.Api.revoke clerks.(2) first;
      let (_ : Rmem.Segment.t) =
        Names.Api.export clerks.(2) ~space ~base:0 ~len:8192
          ~rights:Rmem.Rights.all ~name:name0 ()
      in
      let space0 =
        Cluster.Node.new_address_space (Cluster.Testbed.node testbed 0)
      in
      let buf =
        Rmem.Remote_memory.buffer ~space:space0 ~base:0 ~len:8192
      in
      let stale_rejected =
        match
          Rmem.Remote_memory.read_with rmems.(0) ~policy:(policy name0) stale
            ~soff:0 ~count:(Bytes.length payload) ~dst:buf ~doff:0 ()
        with
        | () -> false
        | exception (Rmem.Status.Timeout | Rmem.Status.Remote_error _) -> true
      in
      let fresh =
        retrying (fun () -> Names.Api.import ~force:true ~hint clerks.(0) name0)
      in
      Rmem.Remote_memory.read_with rmems.(0) ~policy:(policy name0) fresh
        ~soff:0 ~count:(Bytes.length payload) ~dst:buf ~doff:0 ();
      let echoed =
        Cluster.Address_space.read space0 ~addr:0 ~len:(Bytes.length payload)
      in
      (* The re-export covers the same server memory, so the first
         generation's payload is still there. *)
      let ok_bytes = Bytes.equal echoed payload in
      converged := stale_rejected && ok_bytes;
      if not !converged then
        detail :=
          Printf.sprintf "stale_rejected=%b echo=%b" stale_rejected ok_bytes)

(* ------------------------------------------------------------------ *)
(* producer_consumer: two producers fill disjoint slots, one CAS race,
   a polling consumer.                                                 *)

let producer_consumer ~plan ~seed ~pipelined ~sampler =
  let slots = 8 in
  let slot_base = 256 in
  let slot_bytes = 64 in
  let testbed = Cluster.Testbed.create ~nodes:3 () in
  let nodes = Array.init 3 (Cluster.Testbed.node testbed) in
  let rmems = Array.map attach nodes in
  let indexed = Array.to_list (Array.mapi (fun i r -> (i, r)) rmems) in
  let plane = Plane.create ~plan ~rmems:indexed ~seed testbed in
  let timeseries = sampler_for ~sampler testbed ~rmems:indexed plane in
  guarded ~workload:"producer_consumer" ~seed ~plane ~timeseries testbed
    (fun converged detail ->
      let clerks = Array.map clerk_for rmems in
      let ring_space = Cluster.Node.new_address_space nodes.(1) in
      let (_ : Rmem.Segment.t) =
        Names.Api.export clerks.(1) ~space:ring_space ~base:0 ~len:4096
          ~rights:Rmem.Rights.all ~name:"pc.ring" ()
      in
      let hint = Cluster.Node.addr nodes.(1) in
      let producer idx (done_ : unit Sim.Ivar.t) =
        Cluster.Node.spawn nodes.(idx) (fun () ->
            let desc =
              retrying (fun () -> Names.Api.import ~hint clerks.(idx) "pc.ring")
            in
            let policy =
              Rmem.Recovery.with_revalidate (campaign_policy ())
                (Names.Api.revalidator ~hint clerks.(idx) "pc.ring")
            in
            (* Producer 0 owns even slots, producer 2 odd ones. *)
            let mine = if idx = 0 then 0 else 1 in
            let pipeline = pipeline_for ~pipelined rmems.(idx) in
            (match pipeline with
            | Some p ->
                (* All four slot writes stage into one scatter-gather
                   burst per producer; the flush verifies and retries
                   under the policy. *)
                for slot = 0 to slots - 1 do
                  if slot mod 2 = mine then begin
                    let item = Bytes.make slot_bytes '\000' in
                    Bytes.set_int32_le item 0 (Int32.of_int (100 + slot));
                    Rmem.Pipeline.write p desc
                      ~off:(slot_base + (slot * slot_bytes))
                      item
                  end
                done;
                Rmem.Pipeline.flush ~policy p desc
            | None ->
                for slot = 0 to slots - 1 do
                  if slot mod 2 = mine then begin
                    let item = Bytes.make slot_bytes '\000' in
                    Bytes.set_int32_le item 0 (Int32.of_int (100 + slot));
                    Rmem.Remote_memory.write_with rmems.(idx) ~policy desc
                      ~off:(slot_base + (slot * slot_bytes))
                      item
                  end
                done);
            (* Race for the winner word; memory decides, not the
               (ambiguous under loss) return value. *)
            let (_ : bool * int32) =
              Rmem.Remote_memory.cas_with rmems.(idx) ~policy desc ~doff:8
                ~old_value:0l
                ~new_value:(Int32.of_int (500 + idx))
                ()
            in
            Sim.Ivar.fill done_ ())
      in
      let done0 = Sim.Ivar.create () in
      let done2 = Sim.Ivar.create () in
      producer 0 done0;
      producer 2 done2;
      (* The consumer polls its own memory: remote data arrives by pure
         data transfer, no control transfer to wait on. *)
      let engine = Cluster.Testbed.engine testbed in
      let deadline = Sim.Time.ms 500 in
      let slot_value slot =
        Int32.to_int
          (Cluster.Address_space.read_word ring_space
             ~addr:(slot_base + (slot * slot_bytes)))
      in
      let all_present () =
        let ok = ref true in
        for slot = 0 to slots - 1 do
          if slot_value slot <> 100 + slot then ok := false
        done;
        !ok
      in
      let rec poll () =
        if all_present () && Sim.Ivar.is_full done0 && Sim.Ivar.is_full done2
        then true
        else if Sim.Time.(Sim.Engine.now engine > deadline) then false
        else begin
          Sim.Proc.wait (Sim.Time.us 100);
          poll ()
        end
      in
      let filled = poll () in
      let winner =
        Int32.to_int (Cluster.Address_space.read_word ring_space ~addr:8)
      in
      let ok_winner = winner = 500 || winner = 502 in
      converged := filled && ok_winner;
      if not !converged then
        detail := Printf.sprintf "filled=%b winner=%d" filled winner)

(* ------------------------------------------------------------------ *)
(* replica: anti-entropy convergence across a partition heal.          *)

let replica ~plan ~seed ~pipelined ~sampler =
  let testbed = Cluster.Testbed.create ~nodes:3 () in
  let nodes = Array.init 3 (Cluster.Testbed.node testbed) in
  let rmems = Array.map attach nodes in
  let indexed = Array.to_list (Array.mapi (fun i r -> (i, r)) rmems) in
  let plane = Plane.create ~plan ~rmems:indexed ~seed testbed in
  let timeseries = sampler_for ~sampler testbed ~rmems:indexed plane in
  guarded ~workload:"replica" ~seed ~plane ~timeseries testbed
    (fun converged detail ->
      let clerks = Array.map clerk_for rmems in
      let members = Array.map Replica.create clerks in
      Array.iteri
        (fun i member ->
          Replica.set_pipeline member (pipeline_for ~pipelined rmems.(i)))
        members;
      Array.iteri
        (fun i member ->
          (* Anti-entropy remote-reads the whole replica — 19 reply
             bursts plus CPU queueing behind two other daemons — so the
             per-attempt timeout must be generous; pushes cut by the
             partition either give up (counted, repaired by
             anti-entropy) or succeed on a retry that lands after the
             heal. *)
          Replica.set_recovery member
            (Some
               (Rmem.Recovery.policy ~attempts:4 ~timeout:(Sim.Time.ms 10)
                  ~backoff:(Sim.Time.us 500) ()));
          Array.iteri
            (fun j peer_node ->
              if i <> j then
                retrying (fun () ->
                    Replica.join member ~peer:(Cluster.Node.addr peer_node)))
            nodes)
        members;
      let stops =
        Array.map
          (fun m -> Replica.start_anti_entropy_daemon m ~period:(Sim.Time.ms 5))
          members
      in
      let engine = Cluster.Testbed.engine testbed in
      Replica.set members.(0) "alpha" (Bytes.of_string "pre-partition");
      (* Writes land inside the partition window the CI plan opens at
         [10 ms, 30 ms): pushes toward the isolated member give up and
         are counted; anti-entropy repairs them after the heal. *)
      wait_until engine (Sim.Time.ms 12);
      Replica.set members.(0) "beta" (Bytes.of_string "from node 0");
      wait_until engine (Sim.Time.ms 16);
      Replica.set members.(1) "gamma" (Bytes.of_string "from node 1");
      wait_until engine (Sim.Time.ms 20);
      Replica.set members.(2) "delta" (Bytes.of_string "from node 2");
      wait_until engine (Sim.Time.ms 120);
      Array.iter (fun stop -> stop ()) stops;
      let agree key =
        let values =
          Array.to_list (Array.map (fun m -> Replica.get m key) members)
        in
        match values with
        | Some v :: rest ->
            List.for_all
              (function Some w -> Bytes.equal v w | None -> false)
              rest
        | _ -> false
      in
      let keys = [ "alpha"; "beta"; "gamma"; "delta" ] in
      let disagreeing = List.filter (fun k -> not (agree k)) keys in
      converged := disagreeing = [];
      if not !converged then
        detail :=
          Printf.sprintf "diverged keys: %s" (String.concat ", " disagreeing))

(* ------------------------------------------------------------------ *)
(* crash_restart: generation bump, Stale_generation, clerk re-import.  *)

let crash_restart ~plan ~seed ~pipelined ~sampler =
  (* The point of this workload is the crash; supply the canonical one
     if the caller's plan has none. *)
  let plan =
    if plan.Plan.crashes <> [] then plan
    else
      {
        plan with
        Plan.crashes =
          [
            {
              Plan.node = 1;
              at = Sim.Time.ms 5;
              restart_at = Some (Sim.Time.ms 8);
            };
          ];
      }
  in
  let testbed = Cluster.Testbed.create ~nodes:2 () in
  let node0 = Cluster.Testbed.node testbed 0 in
  let node1 = Cluster.Testbed.node testbed 1 in
  let rmem0 = attach node0 in
  let rmem1 = attach node1 in
  let clerk1 = ref None in
  let rmems = [ (0, rmem0); (1, rmem1) ] in
  let plane =
    Plane.create ~plan ~rmems
        (* The clerks' well-known bootstrap segments keep their
           generations across the restart, so probing keeps working. *)
      ~preserve:[ 0; 1; 2 ]
      ~on_restart:(fun n ->
        if n = 1 then Option.iter Names.Clerk.reannounce !clerk1)
      ~seed testbed
  in
  let timeseries = sampler_for ~sampler testbed ~rmems plane in
  guarded ~workload:"crash_restart" ~seed ~plane ~timeseries testbed
    (fun converged detail ->
      let names0 = clerk_for rmem0 in
      let names1 = clerk_for rmem1 in
      clerk1 := Some names1;
      let pipeline = pipeline_for ~pipelined rmem0 in
      Names.Clerk.set_pipeline names0 pipeline;
      let space1 = Cluster.Node.new_address_space node1 in
      let (_ : Rmem.Segment.t) =
        Names.Api.export names1 ~space:space1 ~base:0 ~len:4096
          ~rights:Rmem.Rights.all ~name:"store" ()
      in
      let hint = Cluster.Node.addr node1 in
      let desc = retrying (fun () -> Names.Api.import ~hint names0 "store") in
      let policy =
        Rmem.Recovery.with_revalidate (campaign_policy ())
          (Names.Api.revalidator ~hint names0 "store")
      in
      let payload = Bytes.of_string "written before the crash" in
      push ~policy ?pipeline rmem0 desc ~off:0 payload;
      let generation_before = Rmem.Descriptor.generation desc in
      let engine = Cluster.Testbed.engine testbed in
      (* Sit out the crash [5 ms] and restart [8 ms], then read through
         the now-stale descriptor: the first attempt draws
         Stale_generation, the revalidator re-imports through the name
         clerk (which the restart re-announced to), and the retry
         succeeds against the same server memory. *)
      wait_until engine (Sim.Time.ms 12);
      let space0 = Cluster.Node.new_address_space node0 in
      let buf = Rmem.Remote_memory.buffer ~space:space0 ~base:0 ~len:4096 in
      Rmem.Remote_memory.read_with rmem0 ~policy desc ~soff:0
        ~count:(Bytes.length payload) ~dst:buf ~doff:0 ();
      let echoed =
        Cluster.Address_space.read space0 ~addr:0 ~len:(Bytes.length payload)
      in
      let generation_after = Rmem.Descriptor.generation desc in
      let ok_bytes = Bytes.equal echoed payload in
      let ok_generation =
        not (Rmem.Generation.equal generation_after generation_before)
      in
      converged := ok_bytes && ok_generation;
      if not !converged then
        detail :=
          Printf.sprintf "echo=%b generation %d -> %d" ok_bytes
            (Rmem.Generation.to_int generation_before)
            (Rmem.Generation.to_int generation_after))

(* ------------------------------------------------------------------ *)

let run ?(plan = Plan.none) ?(pipelined = false) ?sampler ~seed workload =
  match workload with
  | "quickstart" -> quickstart ~plan ~seed ~pipelined ~sampler
  | "name_service" -> name_service ~plan ~seed ~pipelined ~sampler
  | "producer_consumer" -> producer_consumer ~plan ~seed ~pipelined ~sampler
  | "replica" -> replica ~plan ~seed ~pipelined ~sampler
  | "crash_restart" -> crash_restart ~plan ~seed ~pipelined ~sampler
  | other -> invalid_arg ("Faults.Campaign.run: unknown workload " ^ other)

(* The canonical CI plans. *)

let loss_plan fraction =
  Plan.make ~link:(Plan.link_faults ~loss:fraction ()) ()

let chaos_plan fraction =
  Plan.make
    ~link:
      (Plan.link_faults ~loss:fraction ~corrupt:(fraction /. 2.)
         ~duplicate:(fraction /. 2.) ~jitter:fraction ())
    ()

let partition_plan () =
  Plan.make
    ~partitions:
      [
        {
          Plan.group = [ 2 ];
          windows =
            [ Plan.window ~from_:(Sim.Time.ms 10) ~until:(Sim.Time.ms 30) ];
        };
      ]
    ()

let crash_plan () =
  Plan.make
    ~crashes:
      [ { Plan.node = 1; at = Sim.Time.ms 5; restart_at = Some (Sim.Time.ms 8) } ]
    ()

(* The declared access program of each campaign workload, for the
   static protocol verifier.  Kept beside the workloads themselves so
   a shape change here is a one-file diff with its declaration. *)
let program = Workload.Programs.campaign

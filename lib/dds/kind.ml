(* The three structurings of one distributed data structure: pure
   remote-memory operations issued by the client (DX), remote procedure
   calls served on the home node (RPC), and the hybrid that runs the
   remote-memory fast path and falls back to RPC under contention. *)

type t = Dx | Rpc | Hybrid

let all = [ Dx; Rpc; Hybrid ]
let to_string = function Dx -> "dx" | Rpc -> "rpc" | Hybrid -> "hybrid"

let of_string = function
  | "dx" -> Some Dx
  | "rpc" -> Some Rpc
  | "hybrid" -> Some Hybrid
  | _ -> None

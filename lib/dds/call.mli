(** Request/response RPC over active messages.

    The RPC-structured data structures transfer control with every
    operation: the client sends a request frame whose handler runs the
    operation on the home node's CPU and sends the reply back.  This
    module supplies the request-id plumbing both sides share: per-call
    ids, timeout-driven retransmission on the client, and a per-source
    duplicate cache on the server making retried calls at-most-once. *)

type endpoint
(** Client-side state for one node's active-message plane. *)

val endpoint : Amsg.t -> endpoint
(** The endpoint for a plane, created (and its reply handler registered)
    on first use; subsequent calls return the same endpoint. *)

val node : endpoint -> Cluster.Node.t

val timeouts : endpoint -> int
(** Attempts that expired without a reply (each triggers a retry). *)

type service = src:Atm.Addr.t -> bytes -> bytes
(** A server operation: request payload in, reply payload out.  Runs at
    interrupt level in the arrival upcall — it must mutate state first
    (the mutation is atomic: no yield points) and charge its own CPU
    after, so concurrent remote-memory serves cannot interleave with a
    half-applied operation. *)

val serve : Amsg.t -> id:int -> service -> unit
(** Install a service under an active-message handler id.  Duplicate
    requests (same source and request id) are answered from a bounded
    per-source cache without re-running the service. *)

val default_timeout : Sim.Time.t
val default_attempts : int

val call :
  ?timeout:Sim.Time.t ->
  ?attempts:int ->
  endpoint ->
  dst:Atm.Addr.t ->
  id:int ->
  bytes ->
  bytes
(** Issue a request and block for the reply, retransmitting every
    [timeout] up to [attempts] times; raises [Rmem.Status.Timeout] when
    the budget is exhausted.  Must run in a simulated process. *)

(** The quorum timestamp codec of the (N,N)-atomic register: a replica
    cell is two little-endian words, a packed [(ts, wr)] tag and the
    register value. The tag totally orders writes — timestamp first,
    writer rank as the tie-break — exactly the [highest()] comparison
    of the ABD read phase.

    A replica mid-update carries the {!busy} sentinel in its tag word;
    {!decode} refuses such a cell so readers retry instead of pairing a
    new tag with an old value. *)

type t = { ts : int; wr : int }
(** A write tag: logical timestamp [ts >= 0] and writer rank
    [0 <= wr < ranks]. *)

val ranks : int
(** Distinct writer ranks the packing supports (16). *)

val zero : t
(** The tag every replica starts with: [(0, 0)]. *)

val compare : t -> t -> int
(** Timestamp-major, rank-minor — the quorum's total order. *)

val pack : t -> int32
(** Injective into the non-negative int32s; order-preserving
    ({!compare} agrees with [Int32.compare] of the packings). Raises
    [Invalid_argument] outside the representable range. *)

val unpack : int32 -> t
(** Inverse of {!pack}. Raises [Invalid_argument] on {!busy} or any
    negative word. *)

val busy : int32
(** The claim sentinel a writer CASes into the tag word while it
    deposits the new cell; never a valid packing.  Equal to
    [busy_for 0]. *)

val busy_for : int -> int32
(** Rank-specific claim sentinel [-(1 + wr)].  A writer that lost the
    reply to its claiming CAS (loss, §3.7) re-reads the tag word: seeing
    its {e own} sentinel proves the claim landed and the deposit may
    proceed, where a shared sentinel would leave it waiting on itself
    forever.  Raises [Invalid_argument] outside [0 <= wr < ranks]. *)

val is_busy : int32 -> bool
(** Whether a tag word is any writer's claim sentinel. *)

val cell_bytes : int
(** Replica cell size: tag word + value word (8). *)

val encode : t -> int32 -> bytes
(** [encode tag value] — the 8-byte replica cell. *)

val decode : bytes -> (t * int32) option
(** [None] when the tag word is {!busy} (or unparseable): the replica
    is mid-update and the reader must retry. *)

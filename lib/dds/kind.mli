(** The three structurings of one distributed data structure (§5 of the
    paper applied at data-structure granularity): [Dx] manipulates the
    home segment with remote READ/WRITE/CAS only, [Rpc] ships every
    operation to the home node as a request/response message, and
    [Hybrid] runs the [Dx] fast path but falls back to [Rpc] when
    optimistic concurrency control loses too often. *)

type t = Dx | Rpc | Hybrid

val all : t list
val to_string : t -> string
val of_string : string -> t option

(** Instrumentation events emitted around client-facing operations.

    A hook is called with [Begin] when an operation starts on a node and
    with [Commit] when it completes, carrying the logical result: a read
    or write of the structure's designated cell ([word] is a byte offset
    within segment [seg]/generation [gen] exported at node [home]).  The
    analysis layer adapts these onto [Monitor.logical_begin] /
    [logical_commit] so histories contain one logical event per
    operation instead of the underlying physical traffic. *)

type op =
  | Read of int32
  | Write of int32
  | Sync
      (** a flush/fence: observes nothing the history can constrain,
          but must still be scoped so its physical round trip is
          suppressed *)

type event =
  | Begin of { node : int }
  | Commit of {
      node : int;
      home : int;
      seg : int;
      gen : int;
      word : int;
      op : op;
    }

type t = event -> unit

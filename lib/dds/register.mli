(** The (N,N)-atomic register: majority-quorum read/write (ABD) over an
    odd set of single-cell replicas, in all three structurings.

    Every replica exports one 8-byte cell — a packed {!Tag} word and the
    value word.  Writes collect the highest tag from a majority, bump
    the timestamp with their own rank as tie-break, and push the new
    pair; reads adopt the highest collected pair and write it back until
    a majority is known to hold it, which is what makes reads atomic
    (no new/old inversion).  The seeded model-checking variant is this
    client with [~write_back:false].

    - [Dx] collects with one parallel remote-READ round and stores with
      a CAS-claimed ({!Tag.busy_for}) conditional store per replica.
    - [Rpc] runs both phases as per-replica GET/SET calls.
    - [Hybrid] collects over the data plane and stores over RPC. *)

(** {1 Replicas} *)

type replica

val replica :
  rmem:Rmem.Remote_memory.t -> amsg:Amsg.t -> ?id:int -> unit -> replica
(** Export this node's replica cell and install its GET/SET service
    under handler [id] (default a fixed well-known id; replicas of
    distinct registers sharing a node must pass distinct ids).  Must
    run in a simulated process. *)

val replica_node : replica -> Cluster.Node.t

val replica_space : replica -> Cluster.Address_space.t
(** The address space backing the cell — lets tests inspect a replica's
    final (tag, value) words directly. *)

val replica_segment : replica -> Rmem.Segment.t

val replica_key : replica -> int * int * int
(** (home address, segment id, generation) of the replica's cell. *)

(** {1 Clients} *)

type t

val client :
  rmem:Rmem.Remote_memory.t ->
  amsg:Amsg.t ->
  kind:Kind.t ->
  rank:int ->
  ?policy:Rmem.Recovery.policy ->
  ?hook:Hook.t ->
  ?write_back:bool ->
  ?quorum:int list ->
  replica array ->
  t
(** Import every replica cell.  [rank] must be unique among concurrent
    writers (it tie-breaks equal timestamps and brands the DX claim
    sentinel).  [write_back:false] disables the read's write-back phase
    — the seeded protocol bug.  [quorum] restricts the client to a
    subset of replica indices (at least a majority of the full set):
    the deterministic model of a client that can reach only some
    replicas, which is exactly the adversarial corner the write-back
    phase exists for. *)

val kind : t -> Kind.t

val read : t -> int32
(** Atomic read: collect from a majority, adopt the highest pair, write
    it back until a majority holds it. *)

val write : t -> int32 -> Tag.t
(** Atomic write; returns the tag it installed. *)

val highest : (int * Tag.t * int32) list -> Tag.t * int32
(** The ABD [highest()] over collected (replica, tag, value) triples.
    Raises [Invalid_argument] on an empty list. *)

val cas_losses : t -> int
(** DX store claims lost to concurrent writers. *)

val rpc_fallbacks : t -> int
(** Hybrid store phases executed over RPC (one per operation that left
    the data plane). *)

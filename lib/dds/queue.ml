(* The distributed MPMC ticket queue.

   Layout: [head word @0][tail word @4][capacity 8-byte slots from @8,
   each [flag word][value word]].  Tickets never wrap: capacity bounds
   the queue's lifetime enqueue count, which keeps every slot
   single-writer.

   DX enqueue claims a ticket by CASing the tail word to the client's
   unique negative brand and releases it with a CAS back to ticket+1,
   then deposits [1, value] into the ticket's slot with one atomic
   8-byte WRITE (flag and value travel in the same frame, so no torn
   slot is ever observable).  Branding is what survives lost CAS
   replies (§3.7): a policy-retried claim that finds its own brand as
   the witness knows the claim landed, and a failed release CAS proves
   an earlier lost-reply release landed — a plain t -> t+1 counter CAS
   can prove neither, and a plain WRITE release could be replayed late
   and roll the counter back.  DX dequeue claims the head ticket the
   same way and then polls the slot's flag word: head < tail proves
   some enqueuer owns the ticket, so the deposit is coming.  The RPC
   service runs the same state machine locally and answers "not ready"
   for a branded counter or a claimed-but-undeposited head slot rather
   than blocking the interrupt handler. *)

let rpc_id = 0xC1
let slot_bytes = 8
let header_bytes = 8
let slot_off ticket = header_bytes + (ticket * slot_bytes)

exception Full

type server = {
  snode : Cluster.Node.t;
  sspace : Cluster.Address_space.t;
  cap : int;
  sid : int;
  segment : Rmem.Segment.t;
}

(* A negative counter word is a DX client's claim brand: the release is
   coming, so the service answers "not ready" instead of mutating. *)

let local_enqueue s value =
  let tl = Cluster.Address_space.read_word s.sspace ~addr:4 in
  if Int32.compare tl 0l < 0 then `Not_ready
  else begin
    let tl = Int32.to_int tl in
    if tl >= s.cap then `Full
    else begin
      Cluster.Address_space.write_word s.sspace ~addr:(slot_off tl + 4) value;
      Cluster.Address_space.write_word s.sspace ~addr:(slot_off tl) 1l;
      Cluster.Address_space.write_word s.sspace ~addr:4 (Int32.of_int (tl + 1));
      `Ok tl
    end
  end

let local_dequeue s =
  let h = Cluster.Address_space.read_word s.sspace ~addr:0 in
  let tl = Cluster.Address_space.read_word s.sspace ~addr:4 in
  if Int32.compare h 0l < 0 || Int32.compare tl 0l < 0 then `Not_ready
  else begin
    let h = Int32.to_int h and tl = Int32.to_int tl in
    if h >= tl then `Empty
    else if
      Int32.equal (Cluster.Address_space.read_word s.sspace ~addr:(slot_off h)) 0l
    then `Not_ready
    else begin
      let v = Cluster.Address_space.read_word s.sspace ~addr:(slot_off h + 4) in
      Cluster.Address_space.write_word s.sspace ~addr:0 (Int32.of_int (h + 1));
      `Ok (v, h)
    end
  end

let charge node =
  let c = Cluster.Node.costs node in
  Cluster.Cpu.use (Cluster.Node.cpu node) ~category:Cluster.Cpu.cat_procedure
    (Sim.Time.add c.Cluster.Costs.rpc_stub c.Cluster.Costs.proc_null)

let server ~rmem ~amsg ?(id = rpc_id) ~capacity () =
  if capacity <= 0 then invalid_arg "Dds.Queue.server: capacity must be positive";
  let snode = Rmem.Remote_memory.node rmem in
  let sspace = Cluster.Node.new_address_space snode in
  let segment =
    Rmem.Remote_memory.export rmem ~space:sspace ~base:0
      ~len:(header_bytes + (capacity * slot_bytes))
      ~rights:Rmem.Rights.all ~name:"dds.queue" ()
  in
  let s = { snode; sspace; cap = capacity; sid = id; segment } in
  Call.serve amsg ~id (fun ~src:_ body ->
      let reply st v tk =
        let b = Bytes.create 12 in
        Bytes.set_int32_le b 0 st;
        Bytes.set_int32_le b 4 v;
        Bytes.set_int32_le b 8 (Int32.of_int tk);
        b
      in
      if Bytes.length body < 8 then reply 4l 0l 0
      else begin
        let op = Int32.to_int (Bytes.get_int32_le body 0) in
        let value = Bytes.get_int32_le body 4 in
        match op with
        | 1 -> (
            let r = local_enqueue s value in
            charge snode;
            match r with
            | `Ok ticket -> reply 0l 0l ticket
            | `Full -> reply 2l 0l 0
            | `Not_ready -> reply 3l 0l 0)
        | 2 -> (
            let r = local_dequeue s in
            charge snode;
            match r with
            | `Ok (v, ticket) -> reply 0l v ticket
            | `Empty -> reply 1l 0l 0
            | `Not_ready -> reply 3l 0l 0)
        | _ -> reply 4l 0l 0
      end);
  s

let server_node s = s.snode
let server_segment s = s.segment
let capacity s = s.cap

let server_key s =
  ( Atm.Addr.to_int (Cluster.Node.addr s.snode),
    Rmem.Segment.id s.segment,
    Rmem.Generation.to_int (Rmem.Segment.generation s.segment) )

type t = {
  kind : Kind.t;
  plane : Plane.t;
  ep : Call.endpoint;
  home : Atm.Addr.t;
  cap : int;
  tid : int;
  brand : int32;
  hook : Hook.t option;
  hkey : int * int * int;
  mutable cas_losses : int;
  mutable rpc_fallbacks : int;
}

(* Claim brands must be unique across every client of a queue, so they
   come from one runtime-global counter; -1 .. min_int is disjoint from
   every counter value the claim CAS could displace. *)
let next_brand = ref 0

let client ~rmem ~amsg ~kind ?policy ?hook s =
  let home = Cluster.Node.addr s.snode in
  let plane =
    Plane.connect rmem ?policy ~remote:home
      ~segment_id:(Rmem.Segment.id s.segment)
      ~generation:(Rmem.Segment.generation s.segment)
      ~size:(header_bytes + (s.cap * slot_bytes))
      ~scratch:64 ()
  in
  {
    kind;
    plane;
    ep = Call.endpoint amsg;
    home;
    cap = s.cap;
    tid = s.sid;
    brand =
      (incr next_brand;
       Int32.of_int (- !next_brand));
    hook;
    hkey = server_key s;
    cas_losses = 0;
    rpc_fallbacks = 0;
  }

let kind t = t.kind
let cas_losses t = t.cas_losses
let rpc_fallbacks t = t.rpc_fallbacks
let node_id t = Atm.Addr.to_int (Cluster.Node.addr t.plane.Plane.node)

let begin_hook t =
  match t.hook with
  | Some h -> h (Hook.Begin { node = node_id t })
  | None -> ()

(* The designated cell of a committed enqueue/dequeue is its ticket's
   value word; an observed-empty dequeue commits a read of the (always
   untouched-in-history) head word instead, so the pair stays
   balanced. *)
let commit_hook t ~word op =
  match t.hook with
  | None -> ()
  | Some h ->
      let home, seg, gen = t.hkey in
      h (Hook.Commit { node = node_id t; home; seg; gen; word; op })

(* DX fast path *)

let poll_interval = Sim.Time.us 2

(* Claim a ticket from the counter at [word]: CAS counter -> brand,
   then CAS brand -> ticket+1 to release.  Both CASes are loss-proof:
   a retried claim that sees its own brand as witness knows it landed,
   and a failed release proves an earlier lost-reply release landed
   (only we can displace our brand). *)
let rec claim_ticket t ~word ~bound ~budget =
  let release ticket =
    ignore
      (Plane.cas t.plane ~doff:word ~old_value:t.brand
         ~new_value:(Int32.of_int (ticket + 1)))
  in
  let cur = Plane.read_word t.plane ~soff:word in
  if Int32.compare cur 0l < 0 then begin
    (* Another client's claim: its release is coming. *)
    Sim.Proc.wait poll_interval;
    claim_ticket t ~word ~bound ~budget
  end
  else if Int32.to_int cur >= bound then None
  else begin
    let won, witness =
      Plane.cas t.plane ~doff:word ~old_value:cur ~new_value:t.brand
    in
    if won || Int32.equal witness t.brand then begin
      let ticket = Int32.to_int cur in
      release ticket;
      Some (`Ok ticket)
    end
    else begin
      t.cas_losses <- t.cas_losses + 1;
      if budget <= 0 then Some `Contended
      else claim_ticket t ~word ~bound ~budget:(budget - 1)
    end
  end

let dx_enqueue t ~budget value =
  match claim_ticket t ~word:4 ~bound:t.cap ~budget with
  | None -> `Full
  | Some `Contended -> `Contended
  | Some (`Ok ticket) ->
      let b = Bytes.create slot_bytes in
      Bytes.set_int32_le b 0 1l;
      Bytes.set_int32_le b 4 value;
      Plane.write t.plane ~off:(slot_off ticket) b;
      `Ok ticket

let await_deposit t ticket =
  let rec spin tries =
    if tries > 200_000 then raise Rmem.Status.Timeout;
    let b = Plane.read_bytes t.plane ~soff:(slot_off ticket) ~len:slot_bytes in
    if Int32.equal (Bytes.get_int32_le b 0) 0l then begin
      Sim.Proc.wait poll_interval;
      spin (tries + 1)
    end
    else Bytes.get_int32_le b 4
  in
  spin 0

let rec dx_try_dequeue t ~budget =
  (* One atomic 8-byte read of [head; tail]: h >= tl in a single frame
     is a true instant of emptiness. *)
  let b = Plane.read_bytes t.plane ~soff:0 ~len:8 in
  let h = Bytes.get_int32_le b 0 in
  let tl = Bytes.get_int32_le b 4 in
  if Int32.compare h 0l < 0 || Int32.compare tl 0l < 0 then begin
    Sim.Proc.wait poll_interval;
    dx_try_dequeue t ~budget
  end
  else if Int32.compare h tl >= 0 then `Empty
  else
    match claim_ticket t ~word:0 ~bound:(Int32.to_int tl) ~budget with
    | None ->
        (* Head caught up with our tail snapshot: re-read the pair. *)
        dx_try_dequeue t ~budget
    | Some `Contended -> `Contended
    | Some (`Ok ticket) -> `Ok (await_deposit t ticket, ticket)

(* RPC path *)

let rpc_op t ~op ~value =
  let b = Bytes.create 8 in
  Bytes.set_int32_le b 0 (Int32.of_int op);
  Bytes.set_int32_le b 4 value;
  let r = Call.call t.ep ~dst:t.home ~id:t.tid b in
  if Bytes.length r < 12 then (4l, 0l, 0)
  else
    ( Bytes.get_int32_le r 0,
      Bytes.get_int32_le r 4,
      Int32.to_int (Bytes.get_int32_le r 8) )

let rpc_enqueue t value =
  let rec go attempt =
    if attempt > 5000 then raise Rmem.Status.Timeout;
    match rpc_op t ~op:1 ~value with
    | 0l, _, ticket -> ticket
    | 2l, _, _ -> raise Full
    | 3l, _, _ ->
        (* A DX claim holds the tail; its release is coming. *)
        Sim.Proc.wait (Sim.Time.us 5);
        go (attempt + 1)
    | _ -> failwith "Dds.Queue: malformed enqueue reply"
  in
  go 0

let rpc_try_dequeue t =
  match rpc_op t ~op:2 ~value:0l with
  | 0l, v, ticket -> `Ok (v, ticket)
  | 1l, _, _ | 3l, _, _ ->
      (* Empty, or the head ticket's deposit is still in flight — the
         claiming enqueue has not committed, so "empty" linearizes. *)
      `Empty
  | _ -> failwith "Dds.Queue: malformed dequeue reply"

(* Client-facing operations *)

let hybrid_budget = 2

let enqueue t value =
  begin_hook t;
  let ticket =
    match t.kind with
    | Kind.Dx -> (
        match dx_enqueue t ~budget:max_int value with
        | `Ok ticket -> ticket
        | `Full | `Contended -> raise Full)
    | Kind.Rpc -> rpc_enqueue t value
    | Kind.Hybrid -> (
        match dx_enqueue t ~budget:hybrid_budget value with
        | `Ok ticket -> ticket
        | `Full -> raise Full
        | `Contended ->
            t.rpc_fallbacks <- t.rpc_fallbacks + 1;
            rpc_enqueue t value)
  in
  commit_hook t ~word:(slot_off ticket + 4) (Hook.Write value);
  ticket

let try_dequeue t =
  begin_hook t;
  let r =
    match t.kind with
    | Kind.Dx -> (
        match dx_try_dequeue t ~budget:max_int with
        | `Ok (v, ticket) -> Some (v, ticket)
        | `Empty | `Contended -> None)
    | Kind.Rpc -> (
        match rpc_try_dequeue t with `Ok (v, tk) -> Some (v, tk) | `Empty -> None)
    | Kind.Hybrid -> (
        match dx_try_dequeue t ~budget:hybrid_budget with
        | `Ok (v, ticket) -> Some (v, ticket)
        | `Empty -> None
        | `Contended -> (
            t.rpc_fallbacks <- t.rpc_fallbacks + 1;
            match rpc_try_dequeue t with
            | `Ok (v, tk) -> Some (v, tk)
            | `Empty -> None))
  in
  (match r with
  | Some (v, ticket) -> commit_hook t ~word:(slot_off ticket + 4) (Hook.Read v)
  | None -> commit_hook t ~word:0 (Hook.Read 0l));
  Option.map fst r

let rec dequeue t =
  match try_dequeue t with
  | Some v -> v
  | None ->
      Sim.Proc.wait (Sim.Time.us 5);
      dequeue t

(* Hooked like any other operation so the fence's physical READ of the
   header cannot leak into a monitored history unscoped. *)
let flush t =
  match t.kind with
  | Kind.Rpc -> ()
  | Kind.Dx | Kind.Hybrid ->
      begin_hook t;
      Plane.fence t.plane;
      commit_hook t ~word:0 Hook.Sync

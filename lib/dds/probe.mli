(** The open-addressing probe walk shared by every linear-probing table
    in the tree: the name-service registry ({!Names.Registry}), the
    sharded clerk's remote probe chain ({!Names.Shard_clerk}) and the
    distributed hash table ({!Hashtable}) all follow the same
    discipline — walk [hash, hash+1, ...] modulo the table size, skip
    (but remember) tombstones, stop at the first free slot.

    The walk is storage-agnostic: the caller classifies each slot
    (local bytes, a remote READ, whatever), and the walk provides only
    the probe-sequence policy, so every table agrees on where a key can
    legally live. *)

val slot_index : slots:int -> hash:int -> int -> int
(** [slot_index ~slots ~hash i] — the i-th probe location for a key
    with the given hash. [slots] must be a power of two. *)

type 'note step =
  | Hit  (** the slot holds the probed key: stop *)
  | Free  (** an empty slot: every chain ends here *)
  | Tombstone of 'note option
      (** a deleted slot: skipped, not chain-ending; the first slot is
          remembered for reuse and the first [Some] note (e.g. a
          decodable forwarding record) is carried out *)
  | Other  (** a live slot holding another key: keep walking *)

type 'note outcome =
  | Found of { index : int; probes : int }
      (** the key's slot, and the probe number that reached it *)
  | Absent of {
      free : int option;
          (** the chain-ending empty slot, or [None] when the walk
              exhausted the table *)
      reusable : int option;  (** the first tombstone met, if any *)
      note : 'note option;  (** the first note a tombstone carried *)
      probes : int;
    }

val walk :
  slots:int ->
  hash:int ->
  classify:(index:int -> probe:int -> 'note step) ->
  'note outcome
(** Walk the probe sequence, calling [classify] once per visited slot
    in probe order, stopping at the first [Hit] or [Free] (or after
    [slots] probes). Insertion policy on [Absent]: prefer [reusable]
    over [free]; both [None] means the table is full for this key. *)

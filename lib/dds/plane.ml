(* The client side of the data-transfer plane: one imported descriptor
   plus a local scratch buffer, with every meta-instruction optionally
   run under a §3.7 recovery policy.  The DX and hybrid structurings
   build their fast paths from these. *)

type t = {
  rmem : Rmem.Remote_memory.t;
  node : Cluster.Node.t;
  desc : Rmem.Descriptor.t;
  space : Cluster.Address_space.t;
  buf : Rmem.Remote_memory.buffer;
  policy : Rmem.Recovery.policy option;
}

let connect rmem ?policy ~remote ~segment_id ~generation ~size ~scratch () =
  let node = Rmem.Remote_memory.node rmem in
  let desc =
    Rmem.Remote_memory.import rmem ~remote ~segment_id ~generation ~size
      ~rights:Rmem.Rights.all ()
  in
  let space = Cluster.Node.new_address_space node in
  let buf = Rmem.Remote_memory.buffer ~space ~base:0 ~len:scratch in
  { rmem; node; desc; space; buf; policy }

let read_bytes t ~soff ~len =
  (match t.policy with
  | Some policy ->
      Rmem.Remote_memory.read_with t.rmem ~policy t.desc ~soff ~count:len
        ~dst:t.buf ~doff:0 ()
  | None ->
      Rmem.Remote_memory.read_wait t.rmem t.desc ~soff ~count:len ~dst:t.buf
        ~doff:0 ());
  Cluster.Address_space.read t.space ~addr:0 ~len

let read_word t ~soff = Bytes.get_int32_le (read_bytes t ~soff ~len:4) 0

let cas t ~doff ~old_value ~new_value =
  match t.policy with
  | Some policy ->
      Rmem.Remote_memory.cas_with t.rmem ~policy t.desc ~doff ~old_value
        ~new_value ()
  | None ->
      Rmem.Remote_memory.cas_wait t.rmem t.desc ~doff ~old_value ~new_value ()

let write t ~off data =
  match t.policy with
  | Some policy -> Rmem.Remote_memory.write_with t.rmem ~policy t.desc ~off data
  | None -> Rmem.Remote_memory.write t.rmem t.desc ~off data

let fence t =
  match t.policy with
  | Some policy -> Rmem.Remote_memory.fence_with t.rmem ~policy t.desc
  | None -> Rmem.Remote_memory.fence t.rmem t.desc

(* The (N,N)-atomic register: majority-quorum read/write over an odd
   set of single-cell replicas (ABD).

   Each replica exports one 8-byte cell, [packed tag word][value word]
   ({!Tag}).  A write collects tags from a majority, picks
   (max ts + 1, own rank), and pushes the new cell to the replicas; a
   read collects (tag, value) pairs from a majority, adopts the highest,
   and — before returning — writes that pair back until a majority is
   known to store it, so any later read's majority intersects one
   up-to-date replica and no new/old inversion is observable.  The
   seeded model-checking variant disables exactly that write-back phase
   ([~write_back:false]).

   The DX conditional store claims a replica by CASing its tag word to
   the writer's rank-specific {!Tag.busy_for} sentinel, then releases it
   with one atomic 8-byte WRITE of the new cell; a cell already at or
   past the new tag is left alone.  Readers treat a busy cell as a
   non-response and retry. *)

let rpc_id = 0xC2

type replica = {
  rnode : Cluster.Node.t;
  rspace : Cluster.Address_space.t;
  rid : int;
  rsegment : Rmem.Segment.t;
}

let charge node extra =
  let c = Cluster.Node.costs node in
  Cluster.Cpu.use (Cluster.Node.cpu node) ~category:Cluster.Cpu.cat_procedure
    (Sim.Time.add c.Cluster.Costs.rpc_stub extra)

let replica ~rmem ~amsg ?(id = rpc_id) () =
  let rnode = Rmem.Remote_memory.node rmem in
  let rspace = Cluster.Node.new_address_space rnode in
  let rsegment =
    Rmem.Remote_memory.export rmem ~space:rspace ~base:0 ~len:Tag.cell_bytes
      ~rights:Rmem.Rights.all ~name:"dds.reg" ()
  in
  Call.serve amsg ~id (fun ~src:_ body ->
      let c = Cluster.Node.costs rnode in
      let reply st tagw v =
        let b = Bytes.create 12 in
        Bytes.set_int32_le b 0 st;
        Bytes.set_int32_le b 4 tagw;
        Bytes.set_int32_le b 8 v;
        b
      in
      if Bytes.length body < 12 then reply 4l 0l 0l
      else begin
        let op = Int32.to_int (Bytes.get_int32_le body 0) in
        let cur = Cluster.Address_space.read_word rspace ~addr:0 in
        match op with
        | 1 ->
            let v = Cluster.Address_space.read_word rspace ~addr:4 in
            charge rnode c.Cluster.Costs.hash_lookup;
            if Tag.is_busy cur then reply 3l 0l 0l else reply 0l cur v
        | 2 ->
            let tagw = Bytes.get_int32_le body 4 in
            let value = Bytes.get_int32_le body 8 in
            if Tag.is_busy cur then begin
              charge rnode c.Cluster.Costs.cas_execute;
              reply 3l 0l 0l
            end
            else begin
              if Int32.compare tagw cur > 0 then begin
                Cluster.Address_space.write_word rspace ~addr:4 value;
                Cluster.Address_space.write_word rspace ~addr:0 tagw
              end;
              charge rnode c.Cluster.Costs.cas_execute;
              reply 0l 0l 0l
            end
        | _ -> reply 4l 0l 0l
      end);
  { rnode; rspace; rid = id; rsegment }

let replica_node r = r.rnode
let replica_space r = r.rspace
let replica_segment r = r.rsegment

let replica_key r =
  ( Atm.Addr.to_int (Cluster.Node.addr r.rnode),
    Rmem.Segment.id r.rsegment,
    Rmem.Generation.to_int (Rmem.Segment.generation r.rsegment) )

type t = {
  kind : Kind.t;
  rank : int;
  node : Cluster.Node.t;
  ep : Call.endpoint;
  planes : Plane.t array;
  homes : Atm.Addr.t array;
  tids : int array;
  quorum : int list;  (** replica indices this client can reach *)
  majority : int;
  write_back : bool;
  hook : Hook.t option;
  hkey : int * int * int;
  mutable cas_losses : int;
  mutable rpc_fallbacks : int;
}

let client ~rmem ~amsg ~kind ~rank ?policy ?hook ?(write_back = true) ?quorum
    replicas =
  let n = Array.length replicas in
  if n = 0 then invalid_arg "Dds.Register.client: no replicas";
  if rank < 0 || rank >= Tag.ranks then
    invalid_arg "Dds.Register.client: rank out of range";
  let majority = (n / 2) + 1 in
  let quorum =
    match quorum with
    | None -> List.init n Fun.id
    | Some q ->
        let q = List.sort_uniq compare q in
        if List.exists (fun k -> k < 0 || k >= n) q then
          invalid_arg "Dds.Register.client: quorum index out of range";
        if List.length q < majority then
          invalid_arg "Dds.Register.client: quorum smaller than a majority";
        q
  in
  let planes =
    Array.map
      (fun r ->
        Plane.connect rmem ?policy
          ~remote:(Cluster.Node.addr r.rnode)
          ~segment_id:(Rmem.Segment.id r.rsegment)
          ~generation:(Rmem.Segment.generation r.rsegment)
          ~size:Tag.cell_bytes ~scratch:Tag.cell_bytes ())
      replicas
  in
  {
    kind;
    rank;
    node = Rmem.Remote_memory.node rmem;
    ep = Call.endpoint amsg;
    planes;
    homes = Array.map (fun r -> Cluster.Node.addr r.rnode) replicas;
    tids = Array.map (fun r -> r.rid) replicas;
    quorum;
    majority;
    write_back;
    hook;
    hkey = replica_key replicas.(0);
    cas_losses = 0;
    rpc_fallbacks = 0;
  }

let kind t = t.kind
let cas_losses t = t.cas_losses
let rpc_fallbacks t = t.rpc_fallbacks
let node_id t = Atm.Addr.to_int (Cluster.Node.addr t.node)

let begin_hook t =
  match t.hook with
  | Some h -> h (Hook.Begin { node = node_id t })
  | None -> ()

(* The register's designated cell is replica 0's value word. *)
let commit_hook t op =
  match t.hook with
  | None -> ()
  | Some h ->
      let home, seg, gen = t.hkey in
      h (Hook.Commit { node = node_id t; home; seg; gen; word = 4; op })

(* DX collect: one parallel READ round over all replicas, retried until
   a majority answers with a released (non-busy) cell. *)

let read_timeout = Sim.Time.us 300

let dx_collect t =
  let rec round attempt =
    if attempt > 400 then raise Rmem.Status.Timeout;
    let ivs =
      List.map
        (fun k ->
          let p = t.planes.(k) in
          ( k,
            Rmem.Remote_memory.read ~timeout:read_timeout p.Plane.rmem
              p.Plane.desc ~soff:0 ~count:Tag.cell_bytes ~dst:p.Plane.buf
              ~doff:0 () ))
        t.quorum
    in
    let got = ref [] in
    List.iter
      (fun (k, iv) ->
        match Sim.Ivar.read iv with
        | Rmem.Status.Ok -> (
            let b =
              Cluster.Address_space.read t.planes.(k).Plane.space ~addr:0
                ~len:Tag.cell_bytes
            in
            match Tag.decode b with
            | Some (tag, v) -> got := (k, tag, v) :: !got
            | None -> ())
        | _ -> ())
      ivs;
    if List.length !got >= t.majority then !got
    else begin
      Sim.Proc.wait (Sim.Time.us 10);
      round (attempt + 1)
    end
  in
  round 0

let highest got =
  match got with
  | [] -> invalid_arg "Dds.Register.highest: empty quorum"
  | (_, tag0, v0) :: rest ->
      List.fold_left
        (fun (bt, bv) (_, tag, v) ->
          if Tag.compare tag bt > 0 then (tag, v) else (bt, bv))
        (tag0, v0) rest

(* DX conditional store to one replica. *)
let dx_store t k tag value =
  let p = t.planes.(k) in
  let packed = Tag.pack tag in
  let mine = Tag.busy_for t.rank in
  let deposit () = Plane.write p ~off:0 (Tag.encode tag value) in
  let rec go attempt =
    if attempt > 5000 then raise Rmem.Status.Timeout;
    let w0 = Plane.read_word p ~soff:0 in
    if Int32.equal w0 mine then deposit ()
    else if Tag.is_busy w0 then begin
      (* Another writer's claim: its releasing deposit is coming. *)
      Sim.Proc.wait (Sim.Time.us 5);
      go (attempt + 1)
    end
    else if Int32.compare w0 packed >= 0 then ()
    else begin
      let won, witness = Plane.cas p ~doff:0 ~old_value:w0 ~new_value:mine in
      if won then deposit ()
      else begin
        t.cas_losses <- t.cas_losses + 1;
        if Int32.equal witness mine then
          (* Our claim landed but the reply was lost (§3.7). *)
          deposit ()
        else begin
          Sim.Proc.wait (Sim.Time.us 2);
          go (attempt + 1)
        end
      end
    end
  in
  go 0

(* RPC phases. *)

let rpc_get t k =
  let b = Bytes.create 12 in
  Bytes.set_int32_le b 0 1l;
  match Call.call t.ep ~dst:t.homes.(k) ~id:t.tids.(k) b with
  | exception Rmem.Status.Timeout -> None
  | r ->
      if Bytes.length r < 12 then None
      else if Int32.equal (Bytes.get_int32_le r 0) 0l then
        Some (Tag.unpack (Bytes.get_int32_le r 4), Bytes.get_int32_le r 8)
      else None

let rpc_collect t =
  let rec round attempt =
    if attempt > 64 then raise Rmem.Status.Timeout;
    let got = ref [] in
    List.iter
      (fun k ->
        match rpc_get t k with
        | Some (tag, v) -> got := (k, tag, v) :: !got
        | None -> ())
      t.quorum;
    if List.length !got >= t.majority then !got
    else begin
      Sim.Proc.wait (Sim.Time.us 10);
      round (attempt + 1)
    end
  in
  round 0

let rpc_set t k tag value =
  let b = Bytes.create 12 in
  Bytes.set_int32_le b 0 2l;
  Bytes.set_int32_le b 4 (Tag.pack tag);
  Bytes.set_int32_le b 8 value;
  let rec go attempt =
    if attempt > 64 then false
    else
      match Call.call t.ep ~dst:t.homes.(k) ~id:t.tids.(k) b with
      | exception Rmem.Status.Timeout -> false
      | r ->
          if Bytes.length r >= 4 && Int32.equal (Bytes.get_int32_le r 0) 0l
          then true
          else begin
            Sim.Proc.wait (Sim.Time.us 5);
            go (attempt + 1)
          end
  in
  go 0

let collect t =
  match t.kind with
  | Kind.Dx | Kind.Hybrid -> dx_collect t
  | Kind.Rpc -> rpc_collect t

(* Push (tag, value) to every replica outside [skip]; a majority must
   end up holding it. *)
let store_all t tag value ~skip =
  if t.kind = Kind.Hybrid then t.rpc_fallbacks <- t.rpc_fallbacks + 1;
  let ok = ref 0 in
  List.iter
    (fun k ->
      if List.mem k skip then incr ok
      else
        match t.kind with
        | Kind.Dx ->
            dx_store t k tag value;
            incr ok
        | Kind.Rpc | Kind.Hybrid -> if rpc_set t k tag value then incr ok)
    t.quorum;
  if !ok < t.majority then raise Rmem.Status.Timeout

let read t =
  begin_hook t;
  let got = collect t in
  let tag, v = highest got in
  let have =
    List.filter_map
      (fun (k, tg, _) -> if Tag.compare tg tag = 0 then Some k else None)
      got
  in
  (* Write-back until a majority is known to hold the adopted pair, so
     no later read can observe an older one. *)
  if t.write_back && List.length have < t.majority then
    store_all t tag v ~skip:have;
  commit_hook t (Hook.Read v);
  v

let write t v =
  begin_hook t;
  let got = collect t in
  let mt, _ = highest got in
  let tag = { Tag.ts = mt.Tag.ts + 1; wr = t.rank } in
  store_all t tag v ~skip:[];
  commit_hook t (Hook.Write v);
  tag

(* The distributed open-addressed hash table — the name service's probe
   scheme ({!Probe}) generalized to int32 key/value pairs and all three
   structurings.

   Layout: [slots] 8-byte slots, [key word][value word].  Key 0 is a
   free (chain-ending) slot, key -1 a tombstone; live values are never
   0, so a slot whose key word has been claimed but whose value has not
   yet been deposited still reads as absent.

   DX concurrency control: a writer claims a free or reusable slot by
   CASing the key word, then deposits the value with a blind WRITE.
   Losing the CAS to the {e same} key means a concurrent insert of this
   key won the slot — depositing over it is exactly the overwrite
   semantics; losing it to a different key restarts the probe walk. *)

let rpc_id = 0xC0
let slot_bytes = 8
let empty_key = 0l
let tombstone_key = Int32.minus_one

exception Full

let check_key key =
  if Int32.equal key empty_key || Int32.equal key tombstone_key then
    invalid_arg "Dds.Hashtable: keys 0 and -1 are reserved"

(* Fibonacci scrambling into the non-negative range: every clerk hashes
   identically, so a key's home slot is the same on every node. *)
let hash_key key = Int32.to_int key * 0x9E3779B1 land 0x3FFFFFFF
let home_index ~slots key = hash_key key land (slots - 1)

type server = {
  snode : Cluster.Node.t;
  sspace : Cluster.Address_space.t;
  sslots : int;
  sid : int;
  segment : Rmem.Segment.t;
}

let key_at s index =
  Cluster.Address_space.read_word s.sspace ~addr:(index * slot_bytes)

let value_at s index =
  Cluster.Address_space.read_word s.sspace ~addr:((index * slot_bytes) + 4)

let local_walk s key =
  Probe.walk ~slots:s.sslots ~hash:(hash_key key)
    ~classify:(fun ~index ~probe:_ ->
      let k = key_at s index in
      if Int32.equal k empty_key then Probe.Free
      else if Int32.equal k tombstone_key then Probe.Tombstone None
      else if Int32.equal k key then Probe.Hit
      else Probe.Other)

let local_insert s ~key ~value =
  match local_walk s key with
  | Probe.Found { index; _ } ->
      Cluster.Address_space.write_word s.sspace
        ~addr:((index * slot_bytes) + 4)
        value;
      true
  | Probe.Absent { reusable = Some index; _ }
  | Probe.Absent { reusable = None; free = Some index; _ } ->
      Cluster.Address_space.write_word s.sspace ~addr:(index * slot_bytes) key;
      Cluster.Address_space.write_word s.sspace
        ~addr:((index * slot_bytes) + 4)
        value;
      true
  | Probe.Absent { reusable = None; free = None; _ } -> false

let local_lookup s key =
  match local_walk s key with
  | Probe.Found { index; _ } ->
      let v = value_at s index in
      if Int32.equal v 0l then None else Some v
  | Probe.Absent _ -> None

let local_delete s key =
  match local_walk s key with
  | Probe.Found { index; _ } ->
      let v = value_at s index in
      Cluster.Address_space.write_word s.sspace ~addr:(index * slot_bytes)
        tombstone_key;
      not (Int32.equal v 0l)
  | Probe.Absent _ -> false

(* RPC service cost: stub overhead plus the measured per-operation hash
   cost, charged {e after} the mutation so serves cannot interleave. *)
let charge node extra =
  let c = Cluster.Node.costs node in
  Cluster.Cpu.use (Cluster.Node.cpu node) ~category:Cluster.Cpu.cat_procedure
    (Sim.Time.add c.Cluster.Costs.rpc_stub extra)

let server ~rmem ~amsg ?(id = rpc_id) ~slots () =
  if slots <= 0 || slots land (slots - 1) <> 0 then
    invalid_arg "Dds.Hashtable.server: slots must be a positive power of two";
  let snode = Rmem.Remote_memory.node rmem in
  let sspace = Cluster.Node.new_address_space snode in
  let segment =
    Rmem.Remote_memory.export rmem ~space:sspace ~base:0
      ~len:(slots * slot_bytes) ~rights:Rmem.Rights.all ~name:"dds.htab" ()
  in
  let s = { snode; sspace; sslots = slots; sid = id; segment } in
  Call.serve amsg ~id (fun ~src:_ body ->
      let reply st v =
        let b = Bytes.create 8 in
        Bytes.set_int32_le b 0 st;
        Bytes.set_int32_le b 4 v;
        b
      in
      if Bytes.length body < 12 then reply 3l 0l
      else begin
        let op = Int32.to_int (Bytes.get_int32_le body 0) in
        let key = Bytes.get_int32_le body 4 in
        let value = Bytes.get_int32_le body 8 in
        let c = Cluster.Node.costs snode in
        match op with
        | 1 ->
            let ok = local_insert s ~key ~value in
            charge snode c.Cluster.Costs.hash_insert;
            if ok then reply 0l 0l else reply 2l 0l
        | 2 -> (
            let r = local_lookup s key in
            charge snode c.Cluster.Costs.hash_lookup;
            match r with Some v -> reply 0l v | None -> reply 1l 0l)
        | 3 ->
            let present = local_delete s key in
            charge snode c.Cluster.Costs.hash_delete;
            reply (if present then 0l else 1l) 0l
        | _ -> reply 3l 0l
      end);
  s

let server_node s = s.snode
let server_segment s = s.segment
let slots s = s.sslots

let server_key s =
  ( Atm.Addr.to_int (Cluster.Node.addr s.snode),
    Rmem.Segment.id s.segment,
    Rmem.Generation.to_int (Rmem.Segment.generation s.segment) )

type t = {
  kind : Kind.t;
  plane : Plane.t;
  ep : Call.endpoint;
  home : Atm.Addr.t;
  tslots : int;
  tid : int;
  hook : Hook.t option;
  hkey : int * int * int;
  mutable cas_losses : int;
  mutable rpc_fallbacks : int;
}

let client ~rmem ~amsg ~kind ?policy ?hook s =
  let home = Cluster.Node.addr s.snode in
  let plane =
    Plane.connect rmem ?policy ~remote:home
      ~segment_id:(Rmem.Segment.id s.segment)
      ~generation:(Rmem.Segment.generation s.segment)
      ~size:(s.sslots * slot_bytes) ~scratch:64 ()
  in
  {
    kind;
    plane;
    ep = Call.endpoint amsg;
    home;
    tslots = s.sslots;
    tid = s.sid;
    hook;
    hkey = server_key s;
    cas_losses = 0;
    rpc_fallbacks = 0;
  }

let kind t = t.kind
let cas_losses t = t.cas_losses
let rpc_fallbacks t = t.rpc_fallbacks

(* DX fast path *)

let fetch_slot t index =
  let b = Plane.read_bytes t.plane ~soff:(index * slot_bytes) ~len:slot_bytes in
  (Bytes.get_int32_le b 0, Bytes.get_int32_le b 4)

let dx_walk t key =
  let found = ref 0l in
  let outcome =
    Probe.walk ~slots:t.tslots ~hash:(hash_key key)
      ~classify:(fun ~index ~probe:_ ->
        let k, v = fetch_slot t index in
        if Int32.equal k empty_key then Probe.Free
        else if Int32.equal k tombstone_key then Probe.Tombstone None
        else if Int32.equal k key then begin
          found := v;
          Probe.Hit
        end
        else Probe.Other)
  in
  (outcome, !found)

let deposit_value t index value =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 value;
  Plane.write t.plane ~off:((index * slot_bytes) + 4) b

let dx_lookup t key =
  match dx_walk t key with
  | Probe.Found _, v -> if Int32.equal v 0l then None else Some v
  | Probe.Absent _, _ -> None

let rec dx_insert t ~budget key value =
  match dx_walk t key with
  | Probe.Found { index; _ }, _ ->
      deposit_value t index value;
      `Ok
  | Probe.Absent { reusable; free; _ }, _ -> (
      match
        match (reusable, free) with
        | Some i, _ -> Some (i, tombstone_key)
        | None, Some i -> Some (i, empty_key)
        | None, None -> None
      with
      | None -> `Full
      | Some (index, expect) ->
          let won, witness =
            Plane.cas t.plane ~doff:(index * slot_bytes) ~old_value:expect
              ~new_value:key
          in
          if won then begin
            deposit_value t index value;
            `Ok
          end
          else begin
            t.cas_losses <- t.cas_losses + 1;
            if Int32.equal witness key then begin
              (* A concurrent insert of the same key won the claim:
                 depositing over its slot is the overwrite semantics. *)
              deposit_value t index value;
              `Ok
            end
            else if budget <= 0 then `Contended
            else dx_insert t ~budget:(budget - 1) key value
          end)

let rec dx_delete t ~budget key =
  match dx_walk t key with
  | Probe.Absent _, _ -> `Ok false
  | Probe.Found { index; _ }, v ->
      let won, witness =
        Plane.cas t.plane ~doff:(index * slot_bytes) ~old_value:key
          ~new_value:tombstone_key
      in
      if won then `Ok (not (Int32.equal v 0l))
      else begin
        t.cas_losses <- t.cas_losses + 1;
        if Int32.equal witness tombstone_key || Int32.equal witness empty_key
        then `Ok false
        else if budget <= 0 then `Contended
        else dx_delete t ~budget:(budget - 1) key
      end

(* RPC path *)

let rpc_op t ~op ~key ~value =
  let b = Bytes.create 12 in
  Bytes.set_int32_le b 0 (Int32.of_int op);
  Bytes.set_int32_le b 4 key;
  Bytes.set_int32_le b 8 value;
  let r = Call.call t.ep ~dst:t.home ~id:t.tid b in
  if Bytes.length r < 8 then (3l, 0l)
  else (Bytes.get_int32_le r 0, Bytes.get_int32_le r 4)

let rpc_insert t key value =
  match rpc_op t ~op:1 ~key ~value with
  | 0l, _ -> ()
  | 2l, _ -> raise Full
  | _ -> failwith "Dds.Hashtable: malformed insert reply"

let rpc_lookup t key =
  match rpc_op t ~op:2 ~key ~value:0l with
  | 0l, v -> Some v
  | 1l, _ -> None
  | _ -> failwith "Dds.Hashtable: malformed lookup reply"

let rpc_delete t key =
  match rpc_op t ~op:3 ~key ~value:0l with
  | 0l, _ -> true
  | 1l, _ -> false
  | _ -> failwith "Dds.Hashtable: malformed delete reply"

(* Client-facing operations *)

let node_id t = Atm.Addr.to_int (Cluster.Node.addr t.plane.Plane.node)

let begin_hook t =
  match t.hook with
  | Some h -> h (Hook.Begin { node = node_id t })
  | None -> ()

let commit_hook t key op =
  match t.hook with
  | None -> ()
  | Some h ->
      let home, seg, gen = t.hkey in
      let word = (home_index ~slots:t.tslots key * slot_bytes) + 4 in
      h (Hook.Commit { node = node_id t; home; seg; gen; word; op })

let hybrid_budget = 2

let lookup t key =
  check_key key;
  begin_hook t;
  let r =
    match t.kind with
    | Kind.Dx | Kind.Hybrid -> dx_lookup t key
    | Kind.Rpc -> rpc_lookup t key
  in
  commit_hook t key (Hook.Read (Option.value r ~default:0l));
  r

let insert t ~key ~value =
  check_key key;
  if Int32.equal value 0l then
    invalid_arg "Dds.Hashtable.insert: value 0 is reserved";
  begin_hook t;
  (match t.kind with
  | Kind.Dx -> (
      match dx_insert t ~budget:max_int key value with
      | `Ok -> ()
      | `Full | `Contended -> raise Full)
  | Kind.Rpc -> rpc_insert t key value
  | Kind.Hybrid -> (
      match dx_insert t ~budget:hybrid_budget key value with
      | `Ok -> ()
      | `Full -> raise Full
      | `Contended ->
          t.rpc_fallbacks <- t.rpc_fallbacks + 1;
          rpc_insert t key value));
  commit_hook t key (Hook.Write value)

let delete t key =
  check_key key;
  begin_hook t;
  let present =
    match t.kind with
    | Kind.Dx -> (
        match dx_delete t ~budget:max_int key with
        | `Ok p -> p
        | `Contended -> false)
    | Kind.Rpc -> rpc_delete t key
    | Kind.Hybrid -> (
        match dx_delete t ~budget:hybrid_budget key with
        | `Ok p -> p
        | `Contended ->
            t.rpc_fallbacks <- t.rpc_fallbacks + 1;
            rpc_delete t key)
  in
  commit_hook t key (Hook.Write 0l);
  present

(* The fence's physical READ must not leak into a monitored history as
   an unscoped access, so flush is hooked like any other operation and
   commits as a [Sync] (constrains nothing). *)
let flush t =
  match t.kind with
  | Kind.Rpc -> ()
  | Kind.Dx | Kind.Hybrid ->
      begin_hook t;
      Plane.fence t.plane;
      (match t.hook with
      | None -> ()
      | Some h ->
          let home, seg, gen = t.hkey in
          h
            (Hook.Commit
               { node = node_id t; home; seg; gen; word = 0; op = Hook.Sync }))

(* The probe-sequence policy every open-addressed table shares.  Kept
   free of storage concerns: the classify callback does the slot read
   (local or remote) and the walk decides only where to look next and
   what the trip means. *)

let slot_index ~slots ~hash probe = (hash + probe) land (slots - 1)

type 'note step = Hit | Free | Tombstone of 'note option | Other

type 'note outcome =
  | Found of { index : int; probes : int }
  | Absent of {
      free : int option;
      reusable : int option;
      note : 'note option;
      probes : int;
    }

let walk ~slots ~hash ~classify =
  let rec go probe reusable note =
    if probe >= slots then Absent { free = None; reusable; note; probes = probe }
    else begin
      let index = slot_index ~slots ~hash probe in
      match classify ~index ~probe with
      | Hit -> Found { index; probes = probe }
      | Free -> Absent { free = Some index; reusable; note; probes = probe }
      | Tombstone n ->
          let reusable =
            match reusable with None -> Some index | some -> some
          in
          let note = match note with None -> n | some -> some in
          go (probe + 1) reusable note
      | Other -> go (probe + 1) reusable note
    end
  in
  go 0 None None

(* Request/response RPC over active messages — the control-transfer
   plane of the RPC-structured data structures.

   Wire format: every request and reply frame starts with a 4-byte
   little-endian request id, followed by the operation payload.  The
   client stamps a fresh id per logical call and reuses it across
   retransmissions; the server remembers the last few (id, reply) pairs
   per source and resends the cached reply on a duplicate, so retried
   calls are at-most-once even when the operation is not idempotent.

   Timeouts are the client's only failure signal (the paper's §3.7
   argument): each attempt arms a one-shot timer that fills the reply
   ivar with [None]; a late reply for attempt [k] finds attempt [k+1]'s
   ivar under the same request id and — because the server dedups — fills
   it with the identical answer. *)

let reply_id = 0xC7
let header_bytes = 4

type endpoint = {
  amsg : Amsg.t;
  node : Cluster.Node.t;
  mutable next_req : int;
  pending : (int32, bytes option Sim.Ivar.t) Hashtbl.t;
  mutable timeouts : int;
}

(* One endpoint per active-message plane, keyed by physical identity so
   distinct testbeds never collide; the reply handler is registered
   exactly once per plane. *)
let endpoints : (Amsg.t * endpoint) list ref = ref []

let endpoint amsg =
  match List.find_opt (fun (a, _) -> a == amsg) !endpoints with
  | Some (_, ep) -> ep
  | None ->
      let ep =
        {
          amsg;
          node = Amsg.node amsg;
          next_req = 1;
          pending = Hashtbl.create 16;
          timeouts = 0;
        }
      in
      Amsg.register amsg ~id:reply_id (fun ~src:_ body ->
          if Bytes.length body >= header_bytes then begin
            let req = Bytes.get_int32_le body 0 in
            match Hashtbl.find_opt ep.pending req with
            | None -> ()
            | Some iv ->
                Hashtbl.remove ep.pending req;
                ignore
                  (Sim.Ivar.try_fill iv
                     (Some
                        (Bytes.sub body header_bytes
                           (Bytes.length body - header_bytes))))
          end);
      endpoints := (amsg, ep) :: !endpoints;
      ep

let node ep = ep.node
let timeouts ep = ep.timeouts

type service = src:Atm.Addr.t -> bytes -> bytes

(* Replies a source might still retransmit requests for.  Clients issue
   calls sequentially per endpoint, so a small window suffices. *)
let history_cap = 16

let serve amsg ~id (f : service) =
  let recent : (int, (int32 * bytes) list) Hashtbl.t = Hashtbl.create 16 in
  Amsg.register amsg ~id (fun ~src body ->
      if Bytes.length body >= header_bytes then begin
        let req = Bytes.get_int32_le body 0 in
        let who = Atm.Addr.to_int src in
        let past = Option.value ~default:[] (Hashtbl.find_opt recent who) in
        let reply =
          match List.assoc_opt req past with
          | Some r -> r
          | None ->
              let r =
                f ~src
                  (Bytes.sub body header_bytes
                     (Bytes.length body - header_bytes))
              in
              let keep = (req, r) :: past in
              let keep =
                if List.length keep > history_cap then
                  List.filteri (fun i _ -> i < history_cap) keep
                else keep
              in
              Hashtbl.replace recent who keep;
              r
        in
        let frame = Bytes.create (header_bytes + Bytes.length reply) in
        Bytes.set_int32_le frame 0 req;
        Bytes.blit reply 0 frame header_bytes (Bytes.length reply);
        Amsg.send amsg ~dst:src ~handler:reply_id frame
      end)

let default_timeout = Sim.Time.us 400
let default_attempts = 12

let call ?(timeout = default_timeout) ?(attempts = default_attempts) ep ~dst
    ~id body =
  let req = Int32.of_int ep.next_req in
  ep.next_req <- ep.next_req + 1;
  let frame = Bytes.create (header_bytes + Bytes.length body) in
  Bytes.set_int32_le frame 0 req;
  Bytes.blit body 0 frame header_bytes (Bytes.length body);
  let engine = Cluster.Node.engine ep.node in
  let rec attempt k =
    if k >= attempts then begin
      Hashtbl.remove ep.pending req;
      raise Rmem.Status.Timeout
    end;
    let iv = Sim.Ivar.create () in
    Hashtbl.replace ep.pending req iv;
    Amsg.send ep.amsg ~dst ~handler:id frame;
    Sim.Proc.spawn ~after:timeout engine (fun () ->
        ignore (Sim.Ivar.try_fill iv None));
    match Sim.Ivar.read iv with
    | Some reply ->
        Hashtbl.remove ep.pending req;
        reply
    | None ->
        ep.timeouts <- ep.timeouts + 1;
        attempt (k + 1)
  in
  attempt 0

(** Distributed MPMC ticket queue in all three structurings.

    Head and tail words advanced by remote CAS, one 8-byte slot per
    ticket ([flag word][value word]) deposited with a single atomic
    WRITE.  Tickets never wrap, so [capacity] bounds the lifetime
    enqueue count and every slot has exactly one writer.

    - [Dx] claims tickets with remote CAS and deposits/polls slots with
      remote WRITEs/READs.
    - [Rpc] ships enqueue/dequeue to the home node over {!Call}.
    - [Hybrid] runs the DX path, falling back to RPC after repeated CAS
      losses. *)

exception Full

(** {1 Home node} *)

type server

val server :
  rmem:Rmem.Remote_memory.t ->
  amsg:Amsg.t ->
  ?id:int ->
  capacity:int ->
  unit ->
  server
(** Export the queue segment and install the RPC service under handler
    [id] (default a fixed well-known id; distinct instances sharing a
    home node must pass distinct ids).  Must run in a simulated process
    on the home node. *)

val server_node : server -> Cluster.Node.t
val server_segment : server -> Rmem.Segment.t
val capacity : server -> int

val server_key : server -> int * int * int
(** (home address, segment id, generation) of the queue segment. *)

(** {1 Clients} *)

type t

val client :
  rmem:Rmem.Remote_memory.t ->
  amsg:Amsg.t ->
  kind:Kind.t ->
  ?policy:Rmem.Recovery.policy ->
  ?hook:Hook.t ->
  server ->
  t

val kind : t -> Kind.t

val enqueue : t -> int32 -> int
(** Enqueue a value and return its ticket.  Raises {!Full} once the
    lifetime ticket supply is exhausted. *)

val try_dequeue : t -> int32 option
(** Claim and return the head element, or [None] when the queue is
    empty (including when the head ticket's deposit has not committed
    yet — "empty" linearizes before the in-flight enqueue). *)

val dequeue : t -> int32
(** Blocking {!try_dequeue}: polls until an element arrives. *)

val flush : t -> unit
(** Fence the DX plane; a no-op for RPC handles. *)

val cas_losses : t -> int
val rpc_fallbacks : t -> int

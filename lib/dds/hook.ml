(* Instrumentation events emitted around every client-facing operation.

   The structures cannot depend on the analysis layer (the dependency
   floor stops at the transfer planes), so they emit plain events and
   the observer — in practice an adapter over [Analysis.Monitor]'s
   logical-operation scopes — decides what to do with them.  [Begin]
   opens the operation on the issuing node; [Commit] closes it with the
   linearizable result: one logical read or write of the structure's
   designated cell (a word in some exported segment). *)

type op = Read of int32 | Write of int32 | Sync

type event =
  | Begin of { node : int }
  | Commit of {
      node : int;
      home : int;
      seg : int;
      gen : int;
      word : int;  (* byte offset of the designated word *)
      op : op;
    }

type t = event -> unit

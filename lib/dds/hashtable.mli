(** Distributed open-addressed hash table in all three structurings.

    The name service's probe scheme ({!Probe}) generalized to int32
    key/value pairs: linear probing over [slots] 8-byte slots in one
    exported segment, key word then value word.  Key 0 marks a free
    slot, key -1 a tombstone, and live values are never 0 — so both
    sentinels are rejected as keys, 0 is rejected as a value, and a
    half-inserted slot (key claimed, value not yet deposited) reads as
    absent.

    - [Dx] walks the table with remote READs, claims a slot by CASing
      the key word and deposits the value with a blind WRITE — no home
      CPU beyond trap-and-emulate.
    - [Rpc] ships each operation to the home node over {!Call}.
    - [Hybrid] runs the DX path and falls back to RPC after repeated
      CAS losses. *)

exception Full

(** {1 Home node} *)

type server

val server :
  rmem:Rmem.Remote_memory.t ->
  amsg:Amsg.t ->
  ?id:int ->
  slots:int ->
  unit ->
  server
(** Export the table segment on [rmem]'s node and install the RPC
    service under handler [id] (default a fixed well-known id; distinct
    instances sharing a home node must pass distinct ids).  [slots]
    must be a positive power of two.  Must run in a simulated process
    on the home node. *)

val server_node : server -> Cluster.Node.t
val server_segment : server -> Rmem.Segment.t
val slots : server -> int

val server_key : server -> int * int * int
(** The table segment's (home address, segment id, generation) — the
    analysis layer's [seg_key] for declaring sync words. *)

val local_insert : server -> key:int32 -> value:int32 -> bool
(** Home-side insert (also the RPC service body); false when full. *)

val local_lookup : server -> int32 -> int32 option
val local_delete : server -> int32 -> bool

(** {1 Hashing} *)

val home_index : slots:int -> int32 -> int
(** The key's home slot — where its probe chain starts on every node. *)

(** {1 Clients} *)

type t

val client :
  rmem:Rmem.Remote_memory.t ->
  amsg:Amsg.t ->
  kind:Kind.t ->
  ?policy:Rmem.Recovery.policy ->
  ?hook:Hook.t ->
  server ->
  t
(** Import the table segment and build a handle of the given kind.
    [policy] governs the DX path's remote operations under faults;
    [hook] receives {!Hook.event}s around every operation, with the
    designated cell being the key's {e home} slot value word. *)

val kind : t -> Kind.t

val insert : t -> key:int32 -> value:int32 -> unit
(** Insert or overwrite.  Raises {!Full} when the probe chain finds
    neither the key nor a claimable slot, [Invalid_argument] on
    reserved keys/values. *)

val lookup : t -> int32 -> int32 option
val delete : t -> int32 -> bool

val flush : t -> unit
(** Fence the DX plane so every deposit this client issued is visible
    remotely; a no-op for RPC handles (replies already acknowledge). *)

val cas_losses : t -> int
(** Slot-claim CASes lost to concurrent writers. *)

val rpc_fallbacks : t -> int
(** Hybrid operations that abandoned the DX path for RPC. *)

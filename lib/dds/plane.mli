(** The client side of a structure's data-transfer plane: an imported
    descriptor for the home segment plus a private scratch buffer, with
    every meta-instruction optionally run under a recovery policy
    (§3.7).  The DX and hybrid structurings issue all their remote
    operations through this. *)

type t = {
  rmem : Rmem.Remote_memory.t;
  node : Cluster.Node.t;
  desc : Rmem.Descriptor.t;
  space : Cluster.Address_space.t;
  buf : Rmem.Remote_memory.buffer;
  policy : Rmem.Recovery.policy option;
}

val connect :
  Rmem.Remote_memory.t ->
  ?policy:Rmem.Recovery.policy ->
  remote:Atm.Addr.t ->
  segment_id:int ->
  generation:Rmem.Generation.t ->
  size:int ->
  scratch:int ->
  unit ->
  t
(** Import the home segment with full rights and allocate a [scratch]-
    byte local buffer for READ replies and CAS results. *)

val read_bytes : t -> soff:int -> len:int -> bytes
(** Blocking remote READ into the scratch buffer; raises like
    [Rmem.Remote_memory.read_wait] (or retries under the policy). *)

val read_word : t -> soff:int -> int32

val cas : t -> doff:int -> old_value:int32 -> new_value:int32 -> bool * int32
(** Blocking remote CAS: (succeeded, witness). *)

val write : t -> off:int -> bytes -> unit
(** Remote WRITE: unacknowledged fire-and-forget without a policy,
    write-then-verify with one. *)

val fence : t -> unit
(** Await deposit of all prior WRITEs on this descriptor. *)

(* Packed (ts, wr) write tags.  rank-minor packing keeps Int32 order
   equal to the (ts, wr) lexicographic order, so replicas can compare
   tag words without unpacking. *)

type t = { ts : int; wr : int }

let ranks = 16
let zero = { ts = 0; wr = 0 }

let compare a b =
  match Stdlib.compare a.ts b.ts with 0 -> Stdlib.compare a.wr b.wr | c -> c

let max_ts = (0x7fffffff / ranks) - 1

let pack { ts; wr } =
  if ts < 0 || ts > max_ts then invalid_arg "Tag.pack: timestamp out of range";
  if wr < 0 || wr >= ranks then invalid_arg "Tag.pack: rank out of range";
  Int32.of_int ((ts * ranks) + wr)

let unpack w =
  let v = Int32.to_int w in
  if v < 0 then invalid_arg "Tag.unpack: not a tag word";
  { ts = v / ranks; wr = v mod ranks }

let busy = Int32.minus_one
let busy_for wr =
  if wr < 0 || wr >= ranks then invalid_arg "Tag.busy_for: rank out of range";
  Int32.of_int (-1 - wr)

let is_busy w = Int32.compare w 0l < 0
let cell_bytes = 8

let encode tag value =
  let b = Bytes.create cell_bytes in
  Bytes.set_int32_le b 0 (pack tag);
  Bytes.set_int32_le b 4 value;
  b

let decode b =
  if Bytes.length b <> cell_bytes then None
  else
    let w = Bytes.get_int32_le b 0 in
    if Int32.compare w 0l < 0 then None
    else Some (unpack w, Bytes.get_int32_le b 4)

(** Traced replays of the example workloads: each runs the example's
    operation sequence with a tracer and metrics registry attached and
    returns both (finalized) for export and assertion. *)

type run = { trace : Obs.Trace.t; registry : Obs.Registry.t }

val quickstart : unit -> run
(** Two nodes: named export/import, WRITE with notification, READ back,
    a winning and a losing CAS. *)

val name_service : unit -> run
(** Three nodes: batch export, probing and control-transfer imports,
    revoke/re-export, stale-generation recovery. *)

val producer_consumer : unit -> run
(** The CAS/WRITE/notification ring, two producers, one consumer. *)

val file_service : unit -> run
(** DFS clerk fetches through DX and Hybrid-1 against the warmed server
    (fixture warm-up happens before the tracer attaches). *)

val all : string list
(** Replay names accepted by {!replay}. *)

val replay : string -> run
(** Run one replay by name; raises [Invalid_argument] on unknown names. *)

(** The distributed data-structure campaign: the hash table, ticket
    queue and ABD register of {!Dds}, each in all three structurings
    (DX / RPC / hybrid), swept over contention (clients x Zipf skew)
    and operation mix on a Clos fabric.

    Two operating points per (structure, kind) pair reproduce the
    paper's crossover at data-structure granularity: pure data transfer
    wins the low-contention lookup-heavy leg, control transfer (RPC or
    the hybrid's fallback) wins the high-contention mutation-heavy leg.
    [ddsbench --ci] gates on the crossover holding for at least
    {!min_crossovers} of the three structures, and [BENCH_PR10.json]
    records it. *)

type point = {
  structure : string;  (** "hashtable" | "queue" | "register" *)
  kind : string;  (** "dx" | "rpc" | "hybrid" *)
  leg : string;  (** "low" | "high" *)
  clients : int;
  zipf : float;  (** key-mix skew (hash table; 0 = uniform) *)
  mutate_pct : int;  (** mutation share of the op mix *)
  ops : int;  (** completed operations across all clients *)
  mean_us : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  cas_losses : int;  (** optimistic claims lost to concurrent clients *)
  rpc_fallbacks : int;  (** hybrid operations that left the data plane *)
  switch_drops : int;  (** summed over every switch in the fabric *)
}

type result = { nodes : int; points : point list }

val schema_version : int

val structures : string list
(** ["hashtable"; "queue"; "register"] — the sweep's full scope and
    the valid [?structures] elements. *)

val min_crossovers : int
(** Structures the crossover must reproduce on for {!check} to pass
    (2 of 3). *)

val run :
  ?spines:int ->
  ?leaves:int ->
  ?hosts_per_leaf:int ->
  ?low_clients:int ->
  ?high_clients:int ->
  ?low_zipf:float ->
  ?high_zipf:float ->
  ?low_mutate_pct:int ->
  ?high_mutate_pct:int ->
  ?ops_per_client:int ->
  ?keys:int ->
  ?slots:int ->
  ?seed:int ->
  ?structures:string list ->
  unit ->
  result
(** Defaults: a 2x8x4 Clos (32 hosts); the low leg runs 2 clients at
    Zipf(0.2) with a 5% mutation share, the high leg 12 clients at
    Zipf(1.5) with 80%; 24 operations per client over 8 keys in a
    16-slot table (load factor high enough that mutation churn
    lengthens the probe chains DX pays for one wire transaction per
    step).  [structures] restricts the sweep (unknown names raise
    [Invalid_argument]). *)

val smoke : ?seed:int -> ?structures:string list -> unit -> result
(** The golden-file configuration: a 2x4x4 (16-host) Clos, 2 vs 10
    clients, 16 operations per client — small enough for the test
    suite, still concurrent enough to reproduce the crossover. *)

val check : result -> string list
(** Gate violations, empty when healthy: every point completed
    operations with positive latency, and the crossover (DX wins the
    low leg against RPC; RPC or hybrid wins the high leg against DX,
    by mean latency) holds on at least {!min_crossovers} structures in
    scope — a sweep restricted to a single structure therefore cannot
    pass, which is the forced-miss leg of the exit-code tests. *)

val to_json : result -> string
val json_valid : string -> bool
val render : result -> string

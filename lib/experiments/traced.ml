(* Traced replays of the example workloads.

   Each replay runs the same operation sequence as its example (minus
   the narration), with a tracer and a metrics registry attached for the
   duration, and hands back both for export: [bin/tracer] turns them
   into Chrome trace JSON and a text report, the tests assert span-tree
   shapes.  The fixture warm-up of the file-service replay happens
   before the tracer attaches, so its spans cover steady state only. *)

type run = { trace : Obs.Trace.t; registry : Obs.Registry.t }

let traced engine body =
  let registry = Obs.Registry.create () in
  let trace = Obs.Trace.create ~registry engine in
  Obs.Trace.attach trace;
  Fun.protect ~finally:Obs.Trace.detach body;
  Obs.Trace.finalize trace;
  { trace; registry }

(* Two nodes: export by name, import, WRITE with notify, READ back,
   CAS twice (win then lose). *)
let quickstart () =
  let testbed = Cluster.Testbed.create ~nodes:2 () in
  let node0 = Cluster.Testbed.node testbed 0 in
  let node1 = Cluster.Testbed.node testbed 1 in
  let rmem0 = Rmem.Remote_memory.attach node0 in
  let rmem1 = Rmem.Remote_memory.attach node1 in
  traced (Cluster.Testbed.engine testbed) (fun () ->
      Cluster.Testbed.run testbed (fun () ->
          let names0 = Names.Clerk.create rmem0 in
          let names1 = Names.Clerk.create rmem1 in
          Names.Clerk.serve_lookup_requests names0;
          Names.Clerk.serve_lookup_requests names1;
          let space1 = Cluster.Node.new_address_space node1 in
          let segment =
            Names.Api.export names1 ~space:space1 ~base:0 ~len:4096
              ~rights:Rmem.Rights.all ~policy:Rmem.Segment.Conditional
              ~name:"shared.buffer" ()
          in
          Cluster.Node.spawn node1 (fun () ->
              let (_ : Rmem.Notification.record) =
                Rmem.Notification.wait (Rmem.Segment.notification segment)
              in
              ());
          let desc =
            Names.Api.import ~hint:(Cluster.Node.addr node1) names0
              "shared.buffer"
          in
          let message = Bytes.of_string "hello, remote memory" in
          Rmem.Remote_memory.write rmem0 desc ~off:0 ~notify:true message;
          let space0 = Cluster.Node.new_address_space node0 in
          let buf =
            Rmem.Remote_memory.buffer ~space:space0 ~base:0 ~len:4096
          in
          Rmem.Remote_memory.read_wait rmem0 desc ~soff:0
            ~count:(Bytes.length message) ~dst:buf ~doff:0 ();
          let (_ : bool * int32) =
            Rmem.Remote_memory.cas_wait rmem0 desc ~doff:1024 ~old_value:0l
              ~new_value:42l ()
          in
          let (_ : bool * int32) =
            Rmem.Remote_memory.cas_wait rmem0 desc ~doff:1024 ~old_value:0l
              ~new_value:99l ()
          in
          ()))

(* Three nodes: batch export on node 2, probing and control-transfer
   imports, revoke/re-export, the stale-generation recovery path. *)
let name_service () =
  let testbed = Cluster.Testbed.create ~nodes:3 () in
  let rmems =
    Array.init 3 (fun i ->
        Rmem.Remote_memory.attach (Cluster.Testbed.node testbed i))
  in
  traced (Cluster.Testbed.engine testbed) (fun () ->
      Cluster.Testbed.run testbed (fun () ->
          let clerks = Array.map Names.Clerk.create rmems in
          Array.iter Names.Clerk.serve_lookup_requests clerks;
          let exporter = Cluster.Testbed.node testbed 2 in
          let hint = Cluster.Node.addr exporter in
          let space = Cluster.Node.new_address_space exporter in
          let names =
            List.init 4 (fun i -> Printf.sprintf "service/db/shard-%02d" i)
          in
          let segments =
            List.mapi
              (fun i name ->
                ( name,
                  Names.Api.export clerks.(2) ~space ~base:(i * 8192)
                    ~len:8192 ~rights:Rmem.Rights.all ~name () ))
              names
          in
          List.iter
            (fun name ->
              let (_ : Rmem.Descriptor.t) =
                Names.Api.import ~hint clerks.(0) name
              in
              ())
            names;
          let (_ : Rmem.Descriptor.t) =
            Names.Api.import_with_control_transfer ~hint clerks.(1)
              "service/db/shard-03"
          in
          let desc = Names.Api.import ~hint clerks.(0) "service/db/shard-00" in
          let name, segment = List.hd segments in
          Names.Api.revoke clerks.(2) segment;
          let (_ : Rmem.Segment.t) =
            Names.Api.export clerks.(2) ~space ~base:0 ~len:8192
              ~rights:Rmem.Rights.all ~name ()
          in
          let space0 =
            Cluster.Node.new_address_space (Cluster.Testbed.node testbed 0)
          in
          let buf = Rmem.Remote_memory.buffer ~space:space0 ~base:0 ~len:64 in
          (try
             Rmem.Remote_memory.read_wait ~timeout:(Sim.Time.ms 5) rmems.(0)
               desc ~soff:0 ~count:16 ~dst:buf ~doff:0 ()
           with Rmem.Status.Remote_error _ -> ());
          Names.Clerk.refresh_once clerks.(0);
          (try
             Rmem.Remote_memory.read_wait rmems.(0) desc ~soff:0 ~count:16
               ~dst:buf ~doff:0 ()
           with Rmem.Status.Remote_error _ -> ());
          let desc = Names.Api.import ~force:true ~hint clerks.(0) name in
          Rmem.Remote_memory.read_wait rmems.(0) desc ~soff:0 ~count:16
            ~dst:buf ~doff:0 ()))

(* The CAS-claimed, WRITE-delivered, notification-doorbelled ring from
   the producer/consumer example, shrunk to 6 items per producer. *)
let producer_consumer () =
  let ring_slots = 8 in
  let slot_bytes = 64 in
  let items_per_producer = 6 in
  let ticket_off = 0 in
  let head_off = 4 in
  let slot_off i = 64 + (i * slot_bytes) in
  let ring_len = 64 + (ring_slots * slot_bytes) in
  let testbed = Cluster.Testbed.create ~nodes:3 () in
  let rmems =
    Array.init 3 (fun i ->
        Rmem.Remote_memory.attach (Cluster.Testbed.node testbed i))
  in
  traced (Cluster.Testbed.engine testbed) (fun () ->
      Cluster.Testbed.run testbed (fun () ->
          let clerks = Array.map Names.Clerk.create rmems in
          Array.iter Names.Clerk.serve_lookup_requests clerks;
          let consumer_node = Cluster.Testbed.node testbed 0 in
          let space = Cluster.Node.new_address_space consumer_node in
          let segment =
            Names.Api.export clerks.(0) ~space ~base:0 ~len:ring_len
              ~rights:Rmem.Rights.all ~policy:Rmem.Segment.Conditional
              ~name:"ring" ()
          in
          let total = 2 * items_per_producer in
          let fd = Rmem.Segment.notification segment in
          let done_ = Sim.Ivar.create () in
          Cluster.Node.spawn consumer_node (fun () ->
              let next = ref 0 in
              while !next < total do
                let (_ : Rmem.Notification.record) =
                  Rmem.Notification.wait fd
                in
                let continue = ref true in
                while !continue && !next < total do
                  let slot = slot_off (!next mod ring_slots) in
                  let seq =
                    Int32.to_int
                      (Cluster.Address_space.read_word space ~addr:slot)
                  in
                  if seq = !next + 1 then begin
                    Cluster.Address_space.write_word space ~addr:slot 0l;
                    incr next;
                    Cluster.Address_space.write_word space ~addr:head_off
                      (Int32.of_int !next)
                  end
                  else continue := false
                done
              done;
              Sim.Ivar.fill done_ ());
          let finished = ref 0 in
          let all_produced = Sim.Ivar.create () in
          for p = 1 to 2 do
            let node = Cluster.Testbed.node testbed p in
            Cluster.Node.spawn node (fun () ->
                let rmem = rmems.(p) in
                let desc =
                  Names.Api.import
                    ~hint:(Cluster.Node.addr consumer_node)
                    clerks.(p) "ring"
                in
                let my_space = Cluster.Node.new_address_space node in
                let buf =
                  Rmem.Remote_memory.buffer ~space:my_space ~base:0 ~len:64
                in
                for i = 1 to items_per_producer do
                  let seq = ref (-1) in
                  while !seq < 0 do
                    Rmem.Remote_memory.read_wait rmem desc ~soff:ticket_off
                      ~count:4 ~dst:buf ~doff:0 ();
                    let ticket =
                      Cluster.Address_space.read_word my_space ~addr:0
                    in
                    let won, _witness =
                      Rmem.Remote_memory.cas_wait rmem desc ~doff:ticket_off
                        ~old_value:ticket ~new_value:(Int32.add ticket 1l) ()
                    in
                    if won then seq := Int32.to_int ticket
                  done;
                  let rec wait_for_space () =
                    Rmem.Remote_memory.read_wait rmem desc ~soff:head_off
                      ~count:4 ~dst:buf ~doff:0 ();
                    let head =
                      Int32.to_int
                        (Cluster.Address_space.read_word my_space ~addr:0)
                    in
                    if !seq - head >= ring_slots then begin
                      Sim.Proc.wait (Sim.Time.us 100);
                      wait_for_space ()
                    end
                  in
                  wait_for_space ();
                  let item = Printf.sprintf "item %d.%d" p i in
                  let payload = Bytes.create (4 + String.length item) in
                  Bytes.set_int32_le payload 0
                    (Int32.of_int (String.length item));
                  Bytes.blit_string item 0 payload 4 (String.length item);
                  let slot = slot_off (!seq mod ring_slots) in
                  Rmem.Remote_memory.write rmem desc ~off:(slot + 4) payload;
                  let flag = Bytes.create 4 in
                  Bytes.set_int32_le flag 0 (Int32.of_int (!seq + 1));
                  Rmem.Remote_memory.write rmem desc ~off:slot ~notify:true
                    flag
                done;
                incr finished;
                if !finished = 2 then Sim.Ivar.fill all_produced ())
          done;
          Sim.Ivar.read all_produced;
          Sim.Ivar.read done_))

(* The DFS clerk against the warmed file server: the same operations
   through the DX (pure data transfer) and Hybrid-1 (request write +
   notification) schemes, so the two schemes' span trees sit side by
   side in one trace. *)
let file_service () =
  let fx = Fixture.create ~clients:1 () in
  traced fx.Fixture.engine (fun () ->
      Fixture.run fx (fun () ->
          let clerk = Fixture.clerk fx 0 in
          let ops =
            [
              Dfs.Nfs_ops.Get_attr { fh = fx.Fixture.bench_file };
              Dfs.Nfs_ops.Read
                { fh = fx.Fixture.bench_file; off = 0; count = 1024 };
            ]
          in
          Dfs.Clerk.set_scheme clerk Dfs.Clerk.Dx;
          List.iter
            (fun op -> ignore (Dfs.Clerk.remote_fetch clerk op : Dfs.Nfs_ops.result))
            ops;
          Fixture.recache_bench fx;
          Dfs.Clerk.set_scheme clerk Dfs.Clerk.Hybrid1;
          List.iter
            (fun op -> ignore (Dfs.Clerk.remote_fetch clerk op : Dfs.Nfs_ops.result))
            ops;
          Dfs.Clerk.set_scheme clerk Dfs.Clerk.Dx))

let all = [ "quickstart"; "name_service"; "producer_consumer"; "file_service" ]

let replay = function
  | "quickstart" -> quickstart ()
  | "name_service" -> name_service ()
  | "producer_consumer" -> producer_consumer ()
  | "file_service" -> file_service ()
  | name -> invalid_arg (Printf.sprintf "Traced.replay: unknown workload %S" name)

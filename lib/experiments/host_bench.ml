(* Host-time baseline: how fast does the *simulator* run, on this
   machine, in events per wall-clock second and allocated words per
   event?

   Everything else in this directory measures the modeled system on the
   virtual clock; this module is the one place the host clock is
   allowed, because its subject is the simulation engine itself.  The
   numbers it emits (BENCH_PR7.json) are the baseline the batched-engine
   roadmap work must improve on — its >=10x events/sec goal is measured
   against exactly these phases.

   Three phases, in increasing scheduler stress:

   - write_stream_sync:      N unbatched 4 KB remote writes, two nodes
   - write_stream_pipelined: the same stream through the issue engine
   - chaos_campaign:         the producer_consumer recovery workload
                             under the canonical chaos plan, sampled by
                             the telemetry plane (so the baseline prices
                             the sampler in, not around)

   The self-checks are deliberately loose bands: they exist to catch a
   10x regression or a meaningless reading (zero events, zero wall
   time), not to flake on a loaded CI machine. *)

type phase = {
  name : string;
  wall_s : float;
  sim_events : int;
  events_per_sec : float;
  alloc_words : float;
  words_per_event : float;
}

type result = phase list

let schema_version = 1

let phase_of ~name ~sim_events (sample : Obs.Profile.sample) =
  let alloc = Obs.Profile.total_words sample in
  let events = float_of_int sim_events in
  {
    name;
    wall_s = sample.Obs.Profile.wall_s;
    sim_events;
    events_per_sec =
      (if sample.Obs.Profile.wall_s > 0. then events /. sample.Obs.Profile.wall_s
       else 0.);
    alloc_words = alloc;
    words_per_event = (if sim_events > 0 then alloc /. events else 0.);
  }

let segment_len = 1 lsl 20

(* The Table-2 write-stream shape: [ops] payload-sized blocks to
   sequential offsets, two nodes back to back.  Returns the total
   engine events the run fired. *)
let stream ~pipelined ~ops ~payload () =
  let testbed = Cluster.Testbed.create ~nodes:2 () in
  let engine = Cluster.Testbed.engine testbed in
  let n0 = Cluster.Testbed.node testbed 0 in
  let n1 = Cluster.Testbed.node testbed 1 in
  let r0 = Rmem.Remote_memory.attach n0 in
  let r1 = Rmem.Remote_memory.attach n1 in
  let space1 = Cluster.Node.new_address_space n1 in
  Cluster.Testbed.run testbed (fun () ->
      let segment =
        Rmem.Remote_memory.export r1 ~space:space1 ~base:0 ~len:segment_len
          ~rights:Rmem.Rights.all ~policy:Rmem.Segment.Conditional
          ~name:"host.bench" ()
      in
      let desc =
        Rmem.Remote_memory.import r0 ~remote:(Cluster.Node.addr n1)
          ~segment_id:(Rmem.Segment.id segment)
          ~generation:(Rmem.Segment.generation segment)
          ~size:segment_len ~rights:Rmem.Rights.all ()
      in
      let block = Bytes.make payload 'h' in
      if pipelined then begin
        let p =
          Rmem.Pipeline.create ~config:(Rmem.Pipeline.pipelined_config ()) r0
        in
        for i = 0 to ops - 1 do
          Rmem.Pipeline.write p desc ~off:(i * payload mod segment_len) block
        done;
        Rmem.Pipeline.flush p desc
      end
      else
        for i = 0 to ops - 1 do
          Rmem.Remote_memory.write r0 desc ~off:(i * payload mod segment_len)
            block
        done);
  Sim.Engine.events_fired engine

let run ?(ops = 256) () =
  let profile = Obs.Profile.create () in
  let sync_events =
    Obs.Profile.record profile "write_stream_sync" (fun () ->
        stream ~pipelined:false ~ops ~payload:4096 ())
  in
  let piped_events =
    Obs.Profile.record profile "write_stream_pipelined" (fun () ->
        stream ~pipelined:true ~ops ~payload:4096 ())
  in
  let chaos_events =
    Obs.Profile.record profile "chaos_campaign" (fun () ->
        let outcome =
          Faults.Campaign.run
            ~plan:(Faults.Campaign.chaos_plan 0.05)
            ~sampler:(Sim.Time.us 50) ~seed:7 "producer_consumer"
        in
        outcome.Faults.Campaign.engine_events)
  in
  List.map2
    (fun (name, sim_events) sample -> phase_of ~name ~sim_events sample)
    [
      ("write_stream_sync", sync_events);
      ("write_stream_pipelined", piped_events);
      ("chaos_campaign", chaos_events);
    ]
    (List.map snd (Obs.Profile.phases profile))

(* ------------------------------------------------------------------ *)
(* Self-validating bands.                                              *)

(* Deliberately loose: today's readings clear the events/sec floor by
   10-700x (the pipelined stream fires few events by design, so it sits
   lowest); tripping it means the engine got catastrophically slower or
   the reading is garbage. *)
let min_events_per_sec = 1_000.
let max_words_per_event = 200_000.

let check phases =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  if List.length phases <> 3 then
    fail "expected 3 phases, got %d" (List.length phases);
  List.iter
    (fun p ->
      if p.sim_events <= 0 then fail "%s: no engine events fired" p.name;
      if p.wall_s <= 0. then fail "%s: non-positive wall time" p.name;
      if p.events_per_sec < min_events_per_sec then
        fail "%s: %.0f events/s below the %.0f floor" p.name p.events_per_sec
          min_events_per_sec;
      if p.words_per_event > max_words_per_event then
        fail "%s: %.0f words/event above the %.0f ceiling" p.name
          p.words_per_event max_words_per_event)
    phases;
  (* Determinstic on the virtual side: batching must strictly shrink
     the event count of the identical stream. *)
  (match
     ( List.find_opt (fun p -> p.name = "write_stream_sync") phases,
       List.find_opt (fun p -> p.name = "write_stream_pipelined") phases )
   with
  | Some sync, Some piped ->
      if piped.sim_events >= sync.sim_events then
        fail "pipelined stream fired %d events, sync only %d — batching gone"
          piped.sim_events sync.sim_events
  | _ -> fail "missing stream phases");
  List.rev !failures

(* ------------------------------------------------------------------ *)
(* Emission.                                                           *)

let json_of_phase p =
  Printf.sprintf
    "    {\"name\": \"%s\", \"wall_s\": %.6f, \"sim_events\": %d, \
     \"events_per_sec\": %.1f, \"alloc_words\": %.0f, \"words_per_event\": \
     %.1f}"
    p.name p.wall_s p.sim_events p.events_per_sec p.alloc_words
    p.words_per_event

let to_json phases =
  let failures = check phases in
  String.concat "\n"
    ([
       "{";
       "  \"bench\": \"host\",";
       Printf.sprintf "  \"schema_version\": %d," schema_version;
       Printf.sprintf "  \"min_events_per_sec\": %.0f," min_events_per_sec;
       Printf.sprintf "  \"max_words_per_event\": %.0f," max_words_per_event;
       Printf.sprintf "  \"checks_passed\": %b," (failures = []);
       Printf.sprintf "  \"failures\": [%s],"
         (String.concat ", "
            (List.map (fun f -> Printf.sprintf "\"%s\"" f) failures));
       "  \"phases\": [";
     ]
    @ [ String.concat ",\n" (List.map json_of_phase phases) ]
    @ [ "  ]"; "}"; "" ])

let json_valid text =
  match Metrics.Json.parse text with Ok _ -> true | Error _ -> false

let render phases =
  let table =
    Metrics.Table.create
      ~title:"Host-time baseline: simulator events/sec and allocs/event (PR7)"
      [
        ("Phase", Metrics.Table.Left);
        ("Wall ms", Metrics.Table.Right);
        ("Events", Metrics.Table.Right);
        ("Events/s", Metrics.Table.Right);
        ("Words/event", Metrics.Table.Right);
      ]
  in
  List.iter
    (fun p ->
      Metrics.Table.add_row table
        [
          p.name;
          Printf.sprintf "%.2f" (p.wall_s *. 1e3);
          string_of_int p.sim_events;
          Printf.sprintf "%.0f" p.events_per_sec;
          Printf.sprintf "%.1f" p.words_per_event;
        ])
    phases;
  let failures = check phases in
  Metrics.Table.render table
  ^ (match failures with
    | [] -> "  host bench checks: all passed\n"
    | fs ->
        String.concat "" (List.map (Printf.sprintf "  CHECK FAILED: %s\n") fs))

(* The PR5 pipeline bench: batched/windowed issue vs the synchronous
   path, swept over window x batch x payload on the Table-2 workload
   shapes.

   Three workloads, two nodes back to back (the paper's testbed):

   - write_stream: stream [ops] blocks to sequential offsets, clock
     each block from issue to deposit (the delivery probe), and the
     stream from first issue to last deposit.  Batched mode stages the
     blocks and sends scatter-gather bursts.
   - read_stream: pull the blocks back; windowed mode keeps [window]
     READs in flight per round, the synchronous mode one.
   - doorbell: write_stream with a notify bit on every block — the
     coalescing policy turns [ops] notifications into one per flush.

   Every sample carries op latency (p50/p95), stream throughput, traps
   per KB (issue-side kernel crossings) and notifications per op — the
   four axes the paper's Table 2/4 discussion trades against each
   other. *)

type sample = {
  workload : string;
  mode : string;  (* "unbatched" | "pipelined" *)
  window : int;
  batch_bytes : int;
  payload : int;
  ops : int;
  p50_us : float;
  p95_us : float;
  throughput_mbps : float;
  traps_per_kb : float;
  notifies_per_op : float;
}

type result = sample list

let segment_len = 1 lsl 20

(* Issue-side kernel crossings: one trap per meta-instruction frame
   handed to the adapter (a burst is one). *)
let traps rmem =
  let ops = Rmem.Remote_memory.ops rmem in
  List.fold_left
    (fun acc c -> acc +. Metrics.Account.total_of ops c)
    0.
    [ "write"; "write burst"; "read"; "cas"; "fence" ]

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else begin
    let rank = int_of_float (p *. float_of_int (n - 1)) in
    sorted.(Stdlib.min (n - 1) (Stdlib.max 0 rank))
  end

let finish ~workload ~mode ~window ~batch_bytes ~payload ~ops ~latencies
    ~elapsed_us ~traps ~notifies =
  Array.sort compare latencies;
  let total_bytes = ops * payload in
  {
    workload;
    mode;
    window;
    batch_bytes;
    payload;
    ops;
    p50_us = percentile latencies 0.50;
    p95_us = percentile latencies 0.95;
    throughput_mbps =
      (if elapsed_us > 0. then float_of_int (total_bytes * 8) /. elapsed_us
       else 0.);
    traps_per_kb = traps /. (float_of_int total_bytes /. 1024.);
    notifies_per_op = notifies /. float_of_int ops;
  }

(* One fresh two-node testbed per measurement, so samples are
   independent and deterministic. [body] gets the issue-side rmem, the
   descriptor, the destination rmem and segment, and the engine clock. *)
let on_testbed body =
  let testbed = Cluster.Testbed.create ~nodes:2 () in
  let engine = Cluster.Testbed.engine testbed in
  let n0 = Cluster.Testbed.node testbed 0 in
  let n1 = Cluster.Testbed.node testbed 1 in
  let r0 = Rmem.Remote_memory.attach n0 in
  let r1 = Rmem.Remote_memory.attach n1 in
  let space0 = Cluster.Node.new_address_space n0 in
  let space1 = Cluster.Node.new_address_space n1 in
  let out = ref None in
  Cluster.Testbed.run testbed (fun () ->
      let segment =
        Rmem.Remote_memory.export r1 ~space:space1 ~base:0 ~len:segment_len
          ~rights:Rmem.Rights.all ~policy:Rmem.Segment.Conditional
          ~name:"pipe.bench" ()
      in
      let desc =
        Rmem.Remote_memory.import r0 ~remote:(Cluster.Node.addr n1)
          ~segment_id:(Rmem.Segment.id segment)
          ~generation:(Rmem.Segment.generation segment)
          ~size:segment_len ~rights:Rmem.Rights.all ()
      in
      let buf =
        Rmem.Remote_memory.buffer ~space:space0 ~base:0 ~len:segment_len
      in
      out :=
        Some
          (body ~r0 ~r1 ~desc ~segment ~buf ~now:(fun () ->
               Sim.Engine.now engine)));
  Option.get !out

(* write_stream / doorbell: per-op deposit times recovered from the
   destination's delivery probe by cumulative byte thresholds — with
   batching, one burst deposit retires several ops at once. *)
let write_stream ~mode ~window ~batch_bytes ~payload ~ops ~notify () =
  on_testbed (fun ~r0 ~r1 ~desc ~segment ~buf:_ ~now ->
      let workload = if notify then "doorbell" else "write_stream" in
      let total = ops * payload in
      let t_start = now () in
      let issue = Array.make ops t_start in
      let completed = Array.make ops t_start in
      let next = ref 0 in
      let received = ref 0 in
      let done_ = Sim.Ivar.create () in
      Rmem.Remote_memory.set_delivery_probe r1
        (Some
           (fun _kind ~count ->
             received := !received + count;
             while !next < ops && !received >= (!next + 1) * payload do
               completed.(!next) <- now ();
               incr next
             done;
             if !received >= total then
               ignore (Sim.Ivar.try_fill done_ (now ()) : bool)));
      let traps0 = traps r0 in
      let fd = Rmem.Segment.notification segment in
      let notifies0 = float_of_int (Rmem.Notification.posted fd) in
      let block = Bytes.make payload 'y' in
      let t0 = now () in
      (match mode with
      | `Unbatched ->
          for i = 0 to ops - 1 do
            issue.(i) <- now ();
            Rmem.Remote_memory.write r0 desc ~off:(i * payload) ~notify block
          done
      | `Pipelined ->
          let p =
            Rmem.Pipeline.create
              ~config:
                (Rmem.Pipeline.pipelined_config ~window
                   ~max_batch_bytes:batch_bytes ())
              r0
          in
          for i = 0 to ops - 1 do
            issue.(i) <- now ();
            Rmem.Pipeline.write p desc ~off:(i * payload) ~notify block
          done;
          Rmem.Pipeline.flush p desc);
      let t_end = Sim.Ivar.read done_ in
      Rmem.Remote_memory.set_delivery_probe r1 None;
      let latencies =
        Array.init ops (fun i ->
            Sim.Time.to_us (Sim.Time.diff completed.(i) issue.(i)))
      in
      finish ~workload
        ~mode:(match mode with `Unbatched -> "unbatched" | `Pipelined -> "pipelined")
        ~window ~batch_bytes ~payload ~ops ~latencies
        ~elapsed_us:(Sim.Time.to_us (Sim.Time.diff t_end t0))
        ~traps:(traps r0 -. traps0)
        ~notifies:(float_of_int (Rmem.Notification.posted fd) -. notifies0))

(* read_stream: the windowed mode issues [window] READs per round into
   distinct destination stripes and drains the round; a round's drain
   time is each member op's completion. *)
let read_stream ~mode ~window ~payload ~ops () =
  on_testbed (fun ~r0 ~r1:_ ~desc ~segment:_ ~buf ~now ->
      let t_start = now () in
      let issue = Array.make ops t_start in
      let completed = Array.make ops t_start in
      let traps0 = traps r0 in
      let t0 = now () in
      (match mode with
      | `Unbatched ->
          for i = 0 to ops - 1 do
            issue.(i) <- now ();
            Rmem.Remote_memory.read_wait r0 desc ~soff:(i * payload)
              ~count:payload ~dst:buf ~doff:(i * payload) ();
            completed.(i) <- now ()
          done
      | `Pipelined ->
          let p =
            Rmem.Pipeline.create
              ~config:(Rmem.Pipeline.pipelined_config ~window ())
              r0
          in
          let i = ref 0 in
          while !i < ops do
            let first = !i in
            let last = Stdlib.min (ops - 1) (first + window - 1) in
            for j = first to last do
              issue.(j) <- now ();
              Rmem.Pipeline.read_submit p desc ~soff:(j * payload)
                ~count:payload ~dst:buf ~doff:(j * payload) ()
            done;
            Rmem.Pipeline.drain p;
            let t = now () in
            for j = first to last do
              completed.(j) <- t
            done;
            i := last + 1
          done);
      let t_end = now () in
      let latencies =
        Array.init ops (fun i ->
            Sim.Time.to_us (Sim.Time.diff completed.(i) issue.(i)))
      in
      finish ~workload:"read_stream"
        ~mode:(match mode with `Unbatched -> "unbatched" | `Pipelined -> "pipelined")
        ~window ~batch_bytes:0 ~payload ~ops ~latencies
        ~elapsed_us:(Sim.Time.to_us (Sim.Time.diff t_end t0))
        ~traps:(traps r0 -. traps0)
        ~notifies:0.)

let run ?(ops = 64) ?(windows = [ 1; 2; 4; 8; 16 ])
    ?(batches = [ 4096; 8192; 32768; 65536 ]) ?(payloads = [ 512; 4096 ]) () =
  let samples = ref [] in
  let add s = samples := s :: !samples in
  List.iter
    (fun payload ->
      add
        (write_stream ~mode:`Unbatched ~window:1 ~batch_bytes:0 ~payload ~ops
           ~notify:false ());
      List.iter
        (fun batch_bytes ->
          add
            (write_stream ~mode:`Pipelined ~window:8 ~batch_bytes ~payload
               ~ops ~notify:false ()))
        batches)
    payloads;
  add (read_stream ~mode:`Unbatched ~window:1 ~payload:4096 ~ops ());
  List.iter
    (fun window -> add (read_stream ~mode:`Pipelined ~window ~payload:4096 ~ops ()))
    windows;
  add
    (write_stream ~mode:`Unbatched ~window:1 ~batch_bytes:0 ~payload:4096 ~ops
       ~notify:true ());
  add
    (write_stream ~mode:`Pipelined ~window:8 ~batch_bytes:32768 ~payload:4096
       ~ops ~notify:true ());
  List.rev !samples

(* ------------------------------------------------------------------ *)
(* Regression checks: the PR's acceptance bar.                         *)

let find samples ~workload ~mode ~payload =
  List.filter
    (fun s ->
      String.equal s.workload workload
      && String.equal s.mode mode
      && s.payload = payload)
    samples

let best_throughput = function
  | [] -> 0.
  | samples -> List.fold_left (fun acc s -> Stdlib.max acc s.throughput_mbps) 0. samples

let table2_throughput_mbps = 35.4

let check samples =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  (match find samples ~workload:"write_stream" ~mode:"unbatched" ~payload:4096 with
  | [] -> fail "no unbatched 4K write_stream sample"
  | base :: _ ->
      let lo = table2_throughput_mbps *. 0.9
      and hi = table2_throughput_mbps *. 1.1 in
      if base.throughput_mbps < lo || base.throughput_mbps > hi then
        fail
          "unbatched 4K write throughput %.1f Mb/s outside Table-2 band [%.1f, %.1f]"
          base.throughput_mbps lo hi;
      let piped =
        best_throughput
          (find samples ~workload:"write_stream" ~mode:"pipelined" ~payload:4096)
      in
      if piped < 1.5 *. base.throughput_mbps then
        fail
          "pipelined 4K write throughput %.1f Mb/s < 1.5x unbatched %.1f Mb/s"
          piped base.throughput_mbps);
  (match
     ( find samples ~workload:"doorbell" ~mode:"unbatched" ~payload:4096,
       find samples ~workload:"doorbell" ~mode:"pipelined" ~payload:4096 )
   with
  | base :: _, piped :: _ ->
      if base.notifies_per_op < 0.99 then
        fail "unbatched doorbell posted %.2f notifies/op, want 1.0"
          base.notifies_per_op;
      if piped.notifies_per_op >= base.notifies_per_op then
        fail "coalescing did not reduce notifications (%.2f >= %.2f per op)"
          piped.notifies_per_op base.notifies_per_op
  | _ -> fail "missing doorbell samples");
  (match
     ( find samples ~workload:"read_stream" ~mode:"unbatched" ~payload:4096,
       find samples ~workload:"read_stream" ~mode:"pipelined" ~payload:4096 )
   with
  | base :: _, piped ->
      if best_throughput piped <= base.throughput_mbps then
        fail "windowed reads no faster than serial (%.1f <= %.1f Mb/s)"
          (best_throughput piped) base.throughput_mbps
  | _ -> fail "missing read_stream samples");
  List.rev !failures

(* ------------------------------------------------------------------ *)
(* JSON emission (hand-rolled; schema in DESIGN.md §12).               *)

let json_of_sample s =
  Printf.sprintf
    "    {\"workload\": \"%s\", \"mode\": \"%s\", \"window\": %d, \
     \"batch_bytes\": %d, \"payload\": %d, \"ops\": %d, \"p50_us\": %.3f, \
     \"p95_us\": %.3f, \"throughput_mbps\": %.3f, \"traps_per_kb\": %.4f, \
     \"notifies_per_op\": %.4f}"
    s.workload s.mode s.window s.batch_bytes s.payload s.ops s.p50_us s.p95_us
    s.throughput_mbps s.traps_per_kb s.notifies_per_op

let to_json samples =
  let failures = check samples in
  String.concat "\n"
    ([
       "{";
       "  \"bench\": \"pipeline\",";
       "  \"paper\": \"Separating Data and Control Transfer (ASPLOS 1994)\",";
       Printf.sprintf "  \"table2_reference_mbps\": %.1f," table2_throughput_mbps;
       Printf.sprintf "  \"checks_passed\": %b," (failures = []);
       Printf.sprintf "  \"failures\": [%s],"
         (String.concat ", "
            (List.map (fun f -> Printf.sprintf "\"%s\"" f) failures));
       "  \"samples\": [";
     ]
    @ [ String.concat ",\n" (List.map json_of_sample samples) ]
    @ [ "  ]"; "}"; "" ])

(* A structural validator for the emitted JSON — enough of RFC 8259 to
   prove the file parses (the @bench test runs the emitted bytes
   through it). *)
let json_valid text =
  let n = String.length text in
  let pos = ref 0 in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let fail = ref false in
  let expect c =
    if !pos < n && Char.equal text.[!pos] c then incr pos else fail := true
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_ ()
    | Some ('t' | 'f' | 'n') -> keyword ()
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail := true
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then incr pos
    else begin
      let rec members () =
        skip_ws ();
        string_ ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
            incr pos;
            members ()
        | _ -> expect '}'
      in
      members ()
    end
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then incr pos
    else begin
      let rec elements () =
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
            incr pos;
            elements ()
        | _ -> expect ']'
      in
      elements ()
    end
  and string_ () =
    expect '"';
    let rec scan () =
      if !pos >= n then fail := true
      else
        match text.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            pos := !pos + 2;
            scan ()
        | _ ->
            incr pos;
            scan ()
    in
    scan ()
  and keyword () =
    let ok w =
      let l = String.length w in
      !pos + l <= n && String.equal (String.sub text !pos l) w
    in
    if ok "true" then pos := !pos + 4
    else if ok "false" then pos := !pos + 5
    else if ok "null" then pos := !pos + 4
    else fail := true
  and number () =
    let numeric c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    let start = !pos in
    while !pos < n && numeric text.[!pos] do
      incr pos
    done;
    if !pos = start then fail := true
  in
  value ();
  skip_ws ();
  (not !fail) && !pos = n

(* ------------------------------------------------------------------ *)

let render samples =
  let table =
    Metrics.Table.create
      ~title:"Pipeline bench: batched/windowed issue vs synchronous (PR5)"
      [
        ("Workload", Metrics.Table.Left);
        ("Mode", Metrics.Table.Left);
        ("Win", Metrics.Table.Right);
        ("Batch", Metrics.Table.Right);
        ("Payload", Metrics.Table.Right);
        ("p50 us", Metrics.Table.Right);
        ("p95 us", Metrics.Table.Right);
        ("Mb/s", Metrics.Table.Right);
        ("Traps/KB", Metrics.Table.Right);
        ("Ntf/op", Metrics.Table.Right);
      ]
  in
  List.iter
    (fun s ->
      Metrics.Table.add_row table
        [
          s.workload;
          s.mode;
          string_of_int s.window;
          string_of_int s.batch_bytes;
          string_of_int s.payload;
          Printf.sprintf "%.1f" s.p50_us;
          Printf.sprintf "%.1f" s.p95_us;
          Printf.sprintf "%.1f" s.throughput_mbps;
          Printf.sprintf "%.2f" s.traps_per_kb;
          Printf.sprintf "%.2f" s.notifies_per_op;
        ])
    samples;
  let failures = check samples in
  Metrics.Table.render table
  ^ (match failures with
    | [] -> "  checks: all passed\n"
    | fs ->
        String.concat "" (List.map (Printf.sprintf "  CHECK FAILED: %s\n") fs))

(* The bench's declared access programs: the three stream shapes as
   {!Workload.Program} values, one op per loop step.  protocheck holds
   them against the manifest and — the point — proves them
   [Batchable], so the pipelined mode measured above is a legal
   transformation of the program, not just a faster one. *)
let access_programs =
  let open Workload.Program in
  let manifest =
    [
      {
        Rmem.Manifest.seg = "pipe.stream";
        exporter = 0;
        len = segment_len;
        rights = Rmem.Rights.all;
        grants = [];
        policy = Rmem.Segment.Conditional;
      };
    ]
  in
  let stream name body =
    { name; manifest; nodes = [ { node = 1; name = "issuer"; body } ] }
  in
  [
    stream "pipeline_write_stream"
      [
        for_ "i" ~lo:0 ~hi:63
          [ write ~seg:"pipe.stream" ~off:(v "i" * c 4096) ~len:(c 4096) () ];
        fence "pipe.stream";
      ];
    stream "pipeline_read_stream"
      [
        for_ "i" ~lo:0 ~hi:63
          [ read ~seg:"pipe.stream" ~off:(v "i" * c 4096) ~len:(c 4096) ];
      ];
    stream "pipeline_doorbell"
      [
        for_ "i" ~lo:0 ~hi:63
          [
            write ~notify:true ~seg:"pipe.stream" ~off:(v "i" * c 4096)
              ~len:(c 4096) ();
          ];
        fence "pipe.stream";
      ];
  ]

(* Table 1a: summary of NFS RPC activity.

   The paper instrumented its departmental server for several days; we
   generate a trace with the same operation mix (scaled down 1000x by
   default) over a synthetic namespace and report the same table,
   side by side with the paper's counts. *)

type row = {
  label : string;
  paper_calls : int;
  paper_pct : float;
  trace_calls : int;
  trace_pct : float;
}

type result = { rows : row list; trace_total : int; scale : int }

let run ?(scale = 1000) ?(seed = 11) () =
  let prng = Sim.Prng.create seed in
  let tree = Workload.File_tree.build prng in
  let events = Workload.Trace.generate ~scale tree prng in
  let counts = Workload.Trace.counts_by_label events in
  let total = Array.length events in
  let rows =
    List.map
      (fun (r : Workload.Mix.row) ->
        let trace_calls =
          Option.value ~default:0 (List.assoc_opt r.Workload.Mix.label counts)
        in
        {
          label = r.Workload.Mix.label;
          paper_calls = r.Workload.Mix.calls;
          paper_pct = Workload.Mix.percentage r;
          trace_calls;
          trace_pct = 100. *. float_of_int trace_calls /. float_of_int total;
        })
      Workload.Mix.table_1a
  in
  { rows; trace_total = total; scale }

let render result =
  let table =
    Metrics.Table.create
      ~title:
        (Printf.sprintf
           "Table 1a: Summary of NFS RPC Activity (trace scaled 1/%d)"
           result.scale)
      [
        ("Activity", Metrics.Table.Left);
        ("Paper calls", Metrics.Table.Right);
        ("Paper %", Metrics.Table.Right);
        ("Trace calls", Metrics.Table.Right);
        ("Trace %", Metrics.Table.Right);
      ]
  in
  List.iter
    (fun row ->
      Metrics.Table.add_row table
        [
          row.label;
          string_of_int row.paper_calls;
          Printf.sprintf "%.1f" row.paper_pct;
          string_of_int row.trace_calls;
          Printf.sprintf "%.1f" row.trace_pct;
        ])
    result.rows;
  Metrics.Table.add_separator table;
  Metrics.Table.add_row table
    [
      "Total";
      string_of_int Workload.Mix.total_calls;
      "100.0";
      string_of_int result.trace_total;
      "100.0";
    ];
  Metrics.Table.render table

(* ------------------------------------------------------------------ *)
(* Span-derived latency decomposition.

   One unloaded WRITE / READ / CAS between two nodes, measured twice:
   directly ([Engine.now] around the operation, with the server's
   delivery probe timestamping the unacknowledged WRITE's deposit) and
   from the tracer's span tree.  The two must agree — the tests hold
   them to within 1% — which pins the tracer to the cost model instead
   of letting the two drift apart. *)

type phase_row = {
  op : string;
  direct_us : float; (* measured with Engine.now around the op *)
  span_us : float; (* the root span's duration *)
  phases : (string * float) list; (* per-child-name summed durations *)
}

type decomposition = { phase_rows : phase_row list; trace : Obs.Trace.t }

let decompose ?(bytes = 1024) () =
  let testbed = Cluster.Testbed.create ~nodes:2 () in
  let engine = Cluster.Testbed.engine testbed in
  let node0 = Cluster.Testbed.node testbed 0 in
  let node1 = Cluster.Testbed.node testbed 1 in
  let rmem0 = Rmem.Remote_memory.attach node0 in
  let rmem1 = Rmem.Remote_memory.attach node1 in
  let write_served = ref Sim.Time.zero in
  Rmem.Remote_memory.set_delivery_probe rmem1
    (Some (fun _kind ~count:_ -> write_served := Sim.Engine.now engine));
  let registry = Obs.Registry.create () in
  let trace = Obs.Trace.create ~registry engine in
  Obs.Trace.attach trace;
  let t_write = ref 0. and t_read = ref 0. and t_cas = ref 0. in
  Fun.protect ~finally:Obs.Trace.detach (fun () ->
      Cluster.Testbed.run testbed (fun () ->
          let space1 = Cluster.Node.new_address_space node1 in
          let seg =
            Rmem.Remote_memory.export rmem1 ~space:space1 ~base:0 ~len:8192
              ~rights:Rmem.Rights.all ~name:"decompose.bench" ()
          in
          let desc =
            Rmem.Remote_memory.import rmem0
              ~remote:(Cluster.Node.addr node1)
              ~segment_id:(Rmem.Segment.id seg)
              ~generation:(Rmem.Segment.generation seg)
              ~size:8192 ~rights:Rmem.Rights.all ()
          in
          let space0 = Cluster.Node.new_address_space node0 in
          let buf =
            Rmem.Remote_memory.buffer ~space:space0 ~base:0 ~len:8192
          in
          let t0 = Sim.Engine.now engine in
          Rmem.Remote_memory.write rmem0 desc ~off:0 (Bytes.make bytes 'w');
          (* The READ queues behind the WRITE on the FIFO link, so its
             request is served after the deposit; the probe has fired by
             the time the reply returns. *)
          let t1 = Sim.Engine.now engine in
          Rmem.Remote_memory.read_wait rmem0 desc ~soff:0 ~count:bytes
            ~dst:buf ~doff:0 ();
          t_read := Sim.Time.to_us (Sim.Time.diff (Sim.Engine.now engine) t1);
          t_write := Sim.Time.to_us (Sim.Time.diff !write_served t0);
          let t2 = Sim.Engine.now engine in
          let (_ : bool * int32) =
            Rmem.Remote_memory.cas_wait rmem0 desc ~doff:4096 ~old_value:0l
              ~new_value:1l ()
          in
          t_cas := Sim.Time.to_us (Sim.Time.diff (Sim.Engine.now engine) t2)));
  Obs.Trace.finalize trace;
  let root op =
    match
      List.filter
        (fun (s : Obs.Span.t) -> s.Obs.Span.name = op)
        (Obs.Trace.roots trace)
    with
    | [ s ] -> s
    | _ -> failwith ("Table1a.decompose: expected exactly one " ^ op ^ " root")
  in
  let row op direct =
    let s = root op in
    {
      op;
      direct_us = direct;
      span_us = Obs.Span.duration_us s;
      phases = Obs.Trace.phase_totals trace s;
    }
  in
  {
    phase_rows =
      [ row "WRITE" !t_write; row "READ" !t_read; row "CAS" !t_cas ];
    trace;
  }

let render_decomposition d =
  let table =
    Metrics.Table.create
      ~title:"Latency decomposition from spans (unloaded, 2 nodes)"
      [
        ("Op", Metrics.Table.Left);
        ("Direct us", Metrics.Table.Right);
        ("Spans us", Metrics.Table.Right);
        ("Phases", Metrics.Table.Left);
      ]
  in
  List.iter
    (fun r ->
      Metrics.Table.add_row table
        [
          r.op;
          Printf.sprintf "%.2f" r.direct_us;
          Printf.sprintf "%.2f" r.span_us;
          String.concat ", "
            (List.map
               (fun (name, us) -> Printf.sprintf "%s %.2f" name us)
               r.phases);
        ])
    d.phase_rows;
  Metrics.Table.render table

(* The scale-out campaign (PR9): sharded name service vs a single
   registry on a Clos fabric, at equal Zipf-keyed load.

   Each leg builds its own testbed: node 0 hosts the map segment,
   node 1 runs the reconciler, nodes 2..2+H-1 host the shard registry
   segments (H=1 for the baseline), and the clients occupy the next
   addresses.  Clients run concurrently, so contention shows up where
   the paper says it must: as output queueing on the links into the
   registry host(s).  Halfway through, every client reports its load
   and the reconciler rebalances — the sharded leg's mid-campaign
   split, which clients must heal from — by forwarding-tombstone patch
   or map refetch — with nothing lost and nothing served stale. *)

type campaign = {
  label : string;
  nodes : int;
  shards_start : int;
  shards_end : int;
  clients : int;
  names : int;
  lookups : int;
  mean_us : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  switch_drops : int;
  max_queue_depth : int;
  epoch : int;
  live : int;
  lost : int;
  stale_served : int;
  stale_refetches : int;
  mid_splits : int;
  converged : bool;
  convergence_us : float;
}

type result = { baseline : campaign; sharded : campaign }

let schema_version = 1

type cfg = {
  spines : int;
  leaves : int;
  hosts_per_leaf : int;
  shard_hosts : int;
  clients : int;
  names : int;
  lookups_per_client : int;
  slots : int;
  zipf : float;
  seed : int;
}

let svc_name i = Printf.sprintf "svc.%04d" i

let svc_record ~shard_hosts i =
  Names.Record.make ~name:(svc_name i)
    ~node:(2 + (i mod shard_hosts))
    ~segment_id:(1000 + i)
    ~generation:(Rmem.Generation.of_int 1)
    ~size:4096 ~rights:Rmem.Rights.read_only

(* Zipf(s) over ranks 1..n by inverse CDF; rank r maps to name r, whose
   bucket the FNV hash scatters — the hot key lands in one shard. *)
let zipf_cdf ~n ~s =
  let cdf = Array.make n 0. in
  let total = ref 0. in
  for r = 0 to n - 1 do
    total := !total +. (float_of_int (r + 1) ** -.s);
    cdf.(r) <- !total
  done;
  (cdf, !total)

let zipf_sample (cdf, total) prng =
  let u = Sim.Prng.float prng *. total in
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cdf.(mid) < u then search (mid + 1) hi else search lo mid
  in
  search 0 (Array.length cdf - 1)

let run_campaign ~label ~sharded cfg =
  let nodes = cfg.leaves * cfg.hosts_per_leaf in
  let shard_hosts = if sharded then cfg.shard_hosts else 1 in
  let first_client = 2 + shard_hosts in
  if first_client + cfg.clients > nodes then
    invalid_arg "Shard_bench: fabric too small for the configured roles";
  let topology =
    Atm.Network.Clos
      {
        spines = cfg.spines;
        leaves = cfg.leaves;
        hosts_per_leaf = cfg.hosts_per_leaf;
      }
  in
  let testbed = Cluster.Testbed.create ~topology ~nodes () in
  let engine = Cluster.Testbed.engine testbed in
  let hist = Metrics.Histogram.create () in
  let lost = ref 0 and stale = ref 0 and completed = ref 0 in
  let mid_splits = ref 0 in
  let max_depth = ref 0 in
  let shards_start = ref 1 and shards_end = ref 1 in
  let final_epoch = ref 1 in
  let live = ref 0 in
  let refetches = ref 0 in
  let converged = ref true in
  let convergence_us = ref 0. in
  Cluster.Testbed.run testbed (fun () ->
      let clerk i =
        Names.Clerk.create
          (Rmem.Remote_memory.attach (Cluster.Testbed.node testbed i))
      in
      let map_clerk = clerk 0 in
      let recon_clerk = clerk 1 in
      let hosts = Array.init shard_hosts (fun k -> clerk (2 + k)) in
      let reconciler =
        Names.Reconciler.create ~slots:cfg.slots ~max_clients:nodes
          ~pace:(Sim.Time.us 150) ~map_clerk ~hosts recon_clerk
      in
      Names.Reconciler.serve_registrations reconciler;
      (* One shard per host before the campaign opens. *)
      if sharded then begin
        let rec grow () =
          let n = Names.Reconciler.shard_count reconciler in
          if n < shard_hosts then begin
            for id = 0 to n - 1 do
              if Names.Reconciler.shard_count reconciler < shard_hosts then
                ignore (Names.Reconciler.split reconciler id : int option)
            done;
            grow ()
          end
        in
        grow ()
      end;
      shards_start := Names.Reconciler.shard_count reconciler;
      let scs =
        Array.init cfg.clients (fun k ->
            Names.Shard_clerk.create ~map_hint:(Atm.Addr.of_int 0)
              ~reconciler_hint:(Atm.Addr.of_int 1)
              (clerk (first_client + k)))
      in
      (* Registration: control transfer through the reconciler, spread
         round-robin over the clients. *)
      for i = 0 to cfg.names - 1 do
        Names.Shard_clerk.register
          scs.(i mod cfg.clients)
          (svc_record ~shard_hosts i)
      done;
      (* Warm every client's map cache so the measured distribution is
         steady-state lookups, not first-touch imports. *)
      Array.iter
        (fun sc -> ignore (Names.Shard_clerk.lookup sc (svc_name 0)))
        scs;
      let dist = zipf_cdf ~n:cfg.names ~s:cfg.zipf in
      let verify sc idx =
        match Names.Shard_clerk.lookup sc (svc_name idx) with
        | exception Names.Clerk.Name_not_found _ -> incr lost
        | r ->
            if
              r.Names.Record.segment_id <> 1000 + idx
              || not
                   (Rmem.Generation.equal r.Names.Record.generation
                      (Rmem.Generation.of_int 1))
            then incr stale
      in
      let measured_lookup sc idx =
        let t0 = Sim.Engine.now engine in
        verify sc idx;
        Metrics.Histogram.add hist
          (Sim.Time.to_us (Sim.Time.diff (Sim.Engine.now engine) t0));
        incr completed
      in
      (* Clients never pause: each reports its load every few lookups
         and keeps going, so the control plane rebalances concurrently
         with live traffic — the campaign's point is that a split is
         safe to take mid-flight, not at a quiet point. *)
      let half = Stdlib.max 1 (cfg.lookups_per_client / 2) in
      let report_every = Stdlib.max 2 (cfg.lookups_per_client / 4) in
      let phase1_done = ref 0 and all_done = ref 0 in
      Array.iteri
        (fun k sc ->
          Sim.Proc.spawn engine
            ~name:(Printf.sprintf "client.%d" k)
            (fun () ->
              let prng = Sim.Prng.create ((cfg.seed * 7919) + k) in
              (* Desynchronised open: real clients do not arrive in
                 lockstep, and a synchronized first wave would convoy at
                 whichever host owns the hot keys. *)
              Sim.Proc.wait (Sim.Time.us (1 + (k * 2) + Sim.Prng.int prng 400));
              for i = 1 to cfg.lookups_per_client do
                Sim.Proc.wait (Sim.Time.us (1 + Sim.Prng.int prng 40));
                measured_lookup sc (zipf_sample dist prng);
                if i mod report_every = 0 then Names.Shard_clerk.report_load sc;
                if i = half then incr phase1_done
              done;
              incr all_done))
        scs;
      let stop_monitor = ref false in
      Sim.Proc.spawn engine ~name:"queue monitor" (fun () ->
          let switches = Atm.Network.switches (Cluster.Testbed.network testbed) in
          while not !stop_monitor do
            List.iter
              (fun sw ->
                max_depth := Stdlib.max !max_depth (Atm.Switch.queue_depth sw))
              switches;
            Sim.Proc.wait (Sim.Time.us 20)
          done);
      let wait_until f =
        while not (f ()) do
          Sim.Proc.wait (Sim.Time.us 50)
        done
      in
      (* The mid-campaign rebalance: once every client is half done the
         control plane reads the load rows and acts on the 2x-fair-share
         verdict, splitting the hottest shard while lookups keep
         flowing.  If the skew is under threshold this draw, the hot
         key's shard is split outright — the campaign's invariants are
         about converging through a mid-flight split, not about the
         trigger. *)
      let map_before = ref None in
      let split_time = ref None in
      let rebalance_done = ref (not sharded) in
      if sharded then
        Sim.Proc.spawn engine ~name:"rebalance" (fun () ->
            wait_until (fun () -> !phase1_done = cfg.clients);
            map_before := Some (Names.Reconciler.map reconciler);
            split_time := Some (Sim.Engine.now engine);
            (match Names.Reconciler.rebalance_once reconciler with
            | Names.Reconciler.Split _ -> incr mid_splits
            | Names.Reconciler.Balanced ->
                Option.iter
                  (fun id ->
                    if Names.Reconciler.split reconciler id <> None then
                      incr mid_splits)
                  (Names.Reconciler.shard_id_of_bucket reconciler
                     (Names.Shardmap.bucket_of_name (svc_name 0))));
            rebalance_done := true);
      wait_until (fun () -> !all_done = cfg.clients && !rebalance_done);
      (* Convergence probe: every client must find a record the first
         split migrated, healing onto the final epoch as it does. *)
      let map_after = Names.Reconciler.map reconciler in
      let moved =
        match !map_before with
        | None -> None
        | Some before ->
            let moved_owner i =
              let b = Names.Shardmap.bucket_of_name (svc_name i) in
              match
                (Names.Shardmap.owner before b, Names.Shardmap.owner map_after b)
              with
              | Some a, Some b ->
                  a.Names.Shardmap.node <> b.Names.Shardmap.node
                  || a.Names.Shardmap.segment_id <> b.Names.Shardmap.segment_id
              | _ -> false
            in
            let rec find i =
              if i >= cfg.names then None
              else if moved_owner i then Some i
              else find (i + 1)
            in
            find 0
      in
      (match moved with
      | Some i -> Array.iter (fun sc -> verify sc i) scs
      | None -> ());
      stop_monitor := true;
      shards_end := Names.Reconciler.shard_count reconciler;
      final_epoch := Names.Reconciler.epoch reconciler;
      live := Names.Reconciler.live reconciler;
      Array.iter
        (fun sc ->
          refetches := !refetches + Names.Shard_clerk.stale_refetches sc;
          if Names.Shard_clerk.epoch sc <> !final_epoch then converged := false;
          Option.iter
            (fun st ->
              List.iter
                (fun (e, at) ->
                  if e = !final_epoch && Sim.Time.compare at st >= 0 then
                    convergence_us :=
                      Stdlib.max !convergence_us
                        (Sim.Time.to_us (Sim.Time.diff at st)))
                (Names.Shard_clerk.refreshes sc))
            !split_time)
        scs);
  let switch_drops =
    List.fold_left
      (fun acc sw -> acc + Atm.Switch.drops sw)
      0
      (Atm.Network.switches (Cluster.Testbed.network testbed))
  in
  {
    label;
    nodes;
    shards_start = !shards_start;
    shards_end = !shards_end;
    clients = cfg.clients;
    names = cfg.names;
    lookups = !completed;
    mean_us = Metrics.Summary.mean (Metrics.Histogram.summary hist);
    p50_us = Metrics.Histogram.percentile hist 50.;
    p95_us = Metrics.Histogram.percentile hist 95.;
    p99_us = Metrics.Histogram.percentile hist 99.;
    switch_drops;
    max_queue_depth = !max_depth;
    epoch = !final_epoch;
    live = !live;
    lost = !lost;
    stale_served = !stale;
    stale_refetches = !refetches;
    mid_splits = !mid_splits;
    converged = !converged;
    convergence_us = !convergence_us;
  }

let run ?(spines = 4) ?(leaves = 8) ?(hosts_per_leaf = 16) ?(shard_hosts = 8)
    ?(clients = 48) ?(names = 256) ?(lookups_per_client = 16) ?(slots = 1024)
    ?(zipf = 1.5) ?(seed = 9) () =
  let cfg =
    {
      spines;
      leaves;
      hosts_per_leaf;
      shard_hosts;
      clients;
      names;
      lookups_per_client;
      slots;
      zipf;
      seed;
    }
  in
  {
    baseline = run_campaign ~label:"single registry" ~sharded:false cfg;
    sharded = run_campaign ~label:"sharded" ~sharded:true cfg;
  }

let smoke ?(seed = 9) () =
  run ~spines:2 ~leaves:4 ~hosts_per_leaf:4 ~shard_hosts:4 ~clients:10
    ~names:48 ~lookups_per_client:12 ~slots:256 ~seed ()

let check { baseline; sharded } =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  if not (sharded.p99_us < baseline.p99_us) then
    fail "sharded p99 %.1fus not below single-registry p99 %.1fus"
      sharded.p99_us baseline.p99_us;
  if sharded.switch_drops <> 0 then
    fail "%d switch drop(s) at the gated operating point" sharded.switch_drops;
  List.iter
    (fun c ->
      if c.lost <> 0 then fail "%s: %d lookup(s) lost a registration" c.label c.lost;
      if c.stale_served <> 0 then
        fail "%s: %d lookup(s) served stale coordinates" c.label c.stale_served;
      if c.live <> c.names then
        fail "%s: %d live record(s), expected %d" c.label c.live c.names)
    [ baseline; sharded ];
  if sharded.mid_splits < 1 then fail "no mid-campaign rebalance split";
  if sharded.shards_end <= sharded.shards_start then
    fail "rebalance did not grow the shard count";
  if not sharded.converged then
    fail "a client finished off the final epoch (no convergence)";
  List.rev !failures

let json_of_campaign c =
  Printf.sprintf
    "    {\"label\": \"%s\", \"nodes\": %d, \"shards_start\": %d, \
     \"shards_end\": %d, \"clients\": %d, \"names\": %d, \"lookups\": %d, \
     \"mean_us\": %.2f, \"p50_us\": %.2f, \"p95_us\": %.2f, \"p99_us\": %.2f, \
     \"switch_drops\": %d, \"max_queue_depth\": %d, \"epoch\": %d, \
     \"live\": %d, \"lost\": %d, \"stale_served\": %d, \"stale_refetches\": \
     %d, \"mid_splits\": %d, \"converged\": %b, \"convergence_us\": %.2f}"
    c.label c.nodes c.shards_start c.shards_end c.clients c.names c.lookups
    c.mean_us c.p50_us c.p95_us c.p99_us c.switch_drops c.max_queue_depth
    c.epoch c.live c.lost c.stale_served c.stale_refetches c.mid_splits
    c.converged c.convergence_us

let to_json result =
  let failures = check result in
  String.concat "\n"
    [
      "{";
      "  \"bench\": \"shard\",";
      Printf.sprintf "  \"schema_version\": %d," schema_version;
      Printf.sprintf "  \"checks_passed\": %b," (failures = []);
      Printf.sprintf "  \"failures\": [%s],"
        (String.concat ", "
           (List.map (fun f -> Printf.sprintf "\"%s\"" f) failures));
      "  \"campaigns\": [";
      json_of_campaign result.baseline ^ ",";
      json_of_campaign result.sharded;
      "  ]";
      "}";
      "";
    ]

let json_valid text =
  match Metrics.Json.parse text with Ok _ -> true | Error _ -> false

let render result =
  let table =
    Metrics.Table.create
      ~title:"Scale-out campaign: sharded name service vs single registry (PR9)"
      [
        ("Leg", Metrics.Table.Left);
        ("Shards", Metrics.Table.Right);
        ("Lookups", Metrics.Table.Right);
        ("p50 us", Metrics.Table.Right);
        ("p95 us", Metrics.Table.Right);
        ("p99 us", Metrics.Table.Right);
        ("Drops", Metrics.Table.Right);
        ("Queue", Metrics.Table.Right);
        ("Epoch", Metrics.Table.Right);
        ("Refetch", Metrics.Table.Right);
        ("Conv us", Metrics.Table.Right);
      ]
  in
  List.iter
    (fun c ->
      Metrics.Table.add_row table
        [
          c.label;
          Printf.sprintf "%d->%d" c.shards_start c.shards_end;
          string_of_int c.lookups;
          Printf.sprintf "%.1f" c.p50_us;
          Printf.sprintf "%.1f" c.p95_us;
          Printf.sprintf "%.1f" c.p99_us;
          string_of_int c.switch_drops;
          string_of_int c.max_queue_depth;
          string_of_int c.epoch;
          string_of_int c.stale_refetches;
          Printf.sprintf "%.1f" c.convergence_us;
        ])
    [ result.baseline; result.sharded ];
  let failures = check result in
  Metrics.Table.render table
  ^
  match failures with
  | [] -> "  shard bench gates: all passed\n"
  | fs -> String.concat "" (List.map (Printf.sprintf "  GATE FAILED: %s\n") fs)

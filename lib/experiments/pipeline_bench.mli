(** The PR5 pipeline bench: the batching/windowing issue engine swept
    over window x batch x payload on the Table-2 workload shapes
    (4 KB write stream, read stream, doorbell writes), against the
    synchronous path. Emits the BENCH_PR5.json artifact and carries the
    regression checks the @bench alias enforces. *)

type sample = {
  workload : string;  (** write_stream | read_stream | doorbell *)
  mode : string;  (** unbatched | pipelined *)
  window : int;
  batch_bytes : int;
  payload : int;  (** bytes per op *)
  ops : int;
  p50_us : float;  (** per-op issue-to-deposit (-retire) latency *)
  p95_us : float;
  throughput_mbps : float;  (** first issue to last deposit *)
  traps_per_kb : float;  (** issue-side kernel crossings per KB moved *)
  notifies_per_op : float;
}

type result = sample list

val run :
  ?ops:int ->
  ?windows:int list ->
  ?batches:int list ->
  ?payloads:int list ->
  unit ->
  result
(** The sweep. Defaults: 64 ops, windows 1/2/4/8/16, batches
    8/32/64 KB, payloads 512 B and 4 KB. Deterministic (pure
    simulation). *)

val check : result -> string list
(** The regression gates, empty when all pass: unbatched 4 KB write
    throughput inside the Table-2 band (35.4 Mb/s +-10%), pipelined
    >= 1.5x unbatched on that workload, coalescing reduces doorbell
    notifications, windowed reads beat serial. *)

val to_json : result -> string
(** The BENCH_PR5.json document (schema in DESIGN.md §12). *)

val json_valid : string -> bool
(** Structural JSON validator (RFC 8259 subset) used by the @bench test
    to prove the emitted artifact parses. *)

val render : result -> string

val access_programs : Workload.Program.t list
(** The three stream shapes as declared access programs
    (write_stream, read_stream, doorbell). protocheck verifies them
    against the manifest and proves each {e batchable} — the license
    for the pipelined mode this bench measures. *)

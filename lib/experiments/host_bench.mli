(** Host-time baseline: the simulator's own speed — events per
    wall-clock second and allocated words per event, per phase.

    The one module allowed to read the host clock, because its subject
    is the engine, not the modeled system. Emitted as [BENCH_PR7.json]
    by [bench --host]; the batched-engine roadmap item's >=10x goal is
    measured against these phases. *)

type phase = {
  name : string;
  wall_s : float;
  sim_events : int;  (** {!Sim.Engine.events_fired} over the phase *)
  events_per_sec : float;
  alloc_words : float;  (** GC words allocated, promoted counted once *)
  words_per_event : float;
}

type result = phase list

val schema_version : int

val run : ?ops:int -> unit -> result
(** Three phases: unbatched 4 KB write stream, the same stream through
    the issue engine, and the producer_consumer chaos campaign sampled
    by the telemetry plane. [ops] (default 256) sizes the streams. *)

val check : result -> string list
(** Band violations, empty when healthy. Bands are deliberately loose —
    they catch order-of-magnitude regressions and garbage readings, not
    machine-load noise. *)

val min_events_per_sec : float
val max_words_per_event : float

val to_json : result -> string
val json_valid : string -> bool
val render : result -> string

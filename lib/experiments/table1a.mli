(** Table 1a: summary of NFS RPC activity — the paper's measured op mix
    next to our scaled synthetic trace. *)

type row = {
  label : string;
  paper_calls : int;
  paper_pct : float;
  trace_calls : int;
  trace_pct : float;
}

type result = { rows : row list; trace_total : int; scale : int }

val run : ?scale:int -> ?seed:int -> unit -> result
val render : result -> string

(** {1 Span-derived latency decomposition}

    One unloaded WRITE / READ / CAS between two nodes, measured both
    directly (engine clock around the operation) and from the tracer's
    span tree. The two accountings must agree; the tests hold them to
    within 1%. *)

type phase_row = {
  op : string;
  direct_us : float;
  span_us : float;
  phases : (string * float) list;
}

type decomposition = { phase_rows : phase_row list; trace : Obs.Trace.t }

val decompose : ?bytes:int -> unit -> decomposition
val render_decomposition : decomposition -> string

(* The distributed data-structure campaign (PR10): DX vs RPC vs hybrid
   for the hash table, the ticket queue and the ABD register, on a Clos
   fabric at two operating points.

   Each point builds its own testbed.  Node 0 hosts the hash table and
   queue segments; the register's three replica cells live on nodes
   0..2; clients occupy addresses from 3 up and run concurrently, so
   contention shows up where the paper says it must — as optimistic
   concurrency-control losses on the structure's hot words and as
   queueing on the links into the home host(s).

   The two legs reproduce the crossover finding: on the low-contention
   lookup-heavy leg pure data transfer wins (a lookup is one wire
   transaction against a passive segment, where the RPC structuring
   pays two messages plus the home CPU's stub and procedure); on the
   high-contention mutation-heavy leg control transfer wins it back
   (the home CPU serializes mutations for the price of one round trip,
   where DX burns extra wire transactions on probe walks, CAS claims
   and busy-retry backoff against the same hot words). *)

type point = {
  structure : string;  (** "hashtable" | "queue" | "register" *)
  kind : string;  (** "dx" | "rpc" | "hybrid" *)
  leg : string;  (** "low" | "high" *)
  clients : int;
  zipf : float;
  mutate_pct : int;
  ops : int;  (** completed operations across all clients *)
  mean_us : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  cas_losses : int;
  rpc_fallbacks : int;
  switch_drops : int;
}

type result = { nodes : int; points : point list }

let schema_version = 1
let structures = [ "hashtable"; "queue"; "register" ]

type legcfg = {
  leg_label : string;
  leg_clients : int;
  leg_zipf : float;
  leg_mutate_pct : int;
}

type cfg = {
  spines : int;
  leaves : int;
  hosts_per_leaf : int;
  ops_per_client : int;
  keys : int;
  slots : int;
  seed : int;
  low : legcfg;
  high : legcfg;
}

(* Zipf(s) over ranks 1..n by inverse CDF, as in {!Shard_bench}. *)
let zipf_cdf ~n ~s =
  let cdf = Array.make n 0. in
  let total = ref 0. in
  for r = 0 to n - 1 do
    total := !total +. (float_of_int (r + 1) ** -.s);
    cdf.(r) <- !total
  done;
  (cdf, !total)

let zipf_sample (cdf, total) prng =
  let u = Sim.Prng.float prng *. total in
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cdf.(mid) < u then search (mid + 1) hi else search lo mid
  in
  search 0 (Array.length cdf - 1)

(* One operation issued by client [k]: [i] counts the client's ops and
   decides the mutation flavor deterministically (insert/delete and
   enqueue/dequeue alternate, so mutation-heavy legs exercise claim
   words in both directions). *)
type driver = {
  op : prng:Sim.Prng.t -> k:int -> i:int -> unit;
  losses : unit -> int;
  fallbacks : unit -> int;
}

let run_point cfg ~structure ~kind (leg : legcfg) =
  let nodes = cfg.leaves * cfg.hosts_per_leaf in
  let clients = leg.leg_clients in
  if 3 + clients > nodes then
    invalid_arg "Dds_bench: fabric too small for the configured clients";
  let topology =
    Atm.Network.Clos
      {
        spines = cfg.spines;
        leaves = cfg.leaves;
        hosts_per_leaf = cfg.hosts_per_leaf;
      }
  in
  let testbed = Cluster.Testbed.create ~seed:cfg.seed ~topology ~nodes () in
  let engine = Cluster.Testbed.engine testbed in
  let node i = Cluster.Testbed.node testbed i in
  let rmems = Array.init (3 + clients) (fun i -> Rmem.Remote_memory.attach (node i)) in
  let amsgs = Array.init (3 + clients) (fun i -> Amsg.attach (node i)) in
  let hist = Metrics.Histogram.create () in
  let completed = ref 0 in
  let losses = ref 0 and fallbacks = ref 0 in
  let dist = zipf_cdf ~n:cfg.keys ~s:leg.leg_zipf in
  let key_of rank = Int32.of_int (1 + rank) in
  Cluster.Testbed.run testbed (fun () ->
      (* The structure under test, as one uniform op driver. *)
      let driver =
        match structure with
        | "hashtable" ->
            let s =
              Dds.Hashtable.server ~rmem:rmems.(0) ~amsg:amsgs.(0)
                ~slots:cfg.slots ()
            in
            (* Preload the keyspace so the read mix hits live slots. *)
            for r = 0 to cfg.keys - 1 do
              ignore (Dds.Hashtable.local_insert s ~key:(key_of r) ~value:1l)
            done;
            let ts =
              Array.init clients (fun k ->
                  Dds.Hashtable.client ~rmem:rmems.(3 + k) ~amsg:amsgs.(3 + k)
                    ~kind s)
            in
            {
              op =
                (fun ~prng ~k ~i ->
                  let key = key_of (zipf_sample dist prng) in
                  if Sim.Prng.int prng 100 < leg.leg_mutate_pct then
                    if i mod 2 = 0 then ignore (Dds.Hashtable.delete ts.(k) key)
                    else
                      Dds.Hashtable.insert ts.(k) ~key
                        ~value:(Int32.of_int (1 + (k * 100) + i))
                  else ignore (Dds.Hashtable.lookup ts.(k) key));
              losses =
                (fun () ->
                  Array.fold_left
                    (fun a t -> a + Dds.Hashtable.cas_losses t)
                    0 ts);
              fallbacks =
                (fun () ->
                  Array.fold_left
                    (fun a t -> a + Dds.Hashtable.rpc_fallbacks t)
                    0 ts);
            }
        | "queue" ->
            let s =
              Dds.Queue.server ~rmem:rmems.(0) ~amsg:amsgs.(0)
                ~capacity:(clients * cfg.ops_per_client) ()
            in
            let ts =
              Array.init clients (fun k ->
                  Dds.Queue.client ~rmem:rmems.(3 + k) ~amsg:amsgs.(3 + k)
                    ~kind s)
            in
            {
              op =
                (fun ~prng ~k ~i:_ ->
                  if Sim.Prng.int prng 100 < leg.leg_mutate_pct then
                    ignore (Dds.Queue.enqueue ts.(k) (Int32.of_int (1 + k)))
                  else ignore (Dds.Queue.try_dequeue ts.(k)));
              losses =
                (fun () ->
                  Array.fold_left (fun a t -> a + Dds.Queue.cas_losses t) 0 ts);
              fallbacks =
                (fun () ->
                  Array.fold_left
                    (fun a t -> a + Dds.Queue.rpc_fallbacks t)
                    0 ts);
            }
        | "register" ->
            let reps =
              Array.init 3 (fun r ->
                  Dds.Register.replica ~rmem:rmems.(r) ~amsg:amsgs.(r) ())
            in
            let ts =
              Array.init clients (fun k ->
                  Dds.Register.client ~rmem:rmems.(3 + k) ~amsg:amsgs.(3 + k)
                    ~kind ~rank:(1 + k) reps)
            in
            {
              op =
                (fun ~prng ~k ~i ->
                  if Sim.Prng.int prng 100 < leg.leg_mutate_pct then
                    ignore
                      (Dds.Register.write ts.(k) (Int32.of_int (1 + (k * 100) + i)))
                  else ignore (Dds.Register.read ts.(k)));
              losses =
                (fun () ->
                  Array.fold_left
                    (fun a t -> a + Dds.Register.cas_losses t)
                    0 ts);
              fallbacks =
                (fun () ->
                  Array.fold_left
                    (fun a t -> a + Dds.Register.rpc_fallbacks t)
                    0 ts);
            }
        | s -> invalid_arg ("Dds_bench: unknown structure " ^ s)
      in
      let finished = ref 0 in
      for k = 0 to clients - 1 do
        Cluster.Node.spawn (node (3 + k)) (fun () ->
            let prng = Sim.Prng.create ((cfg.seed * 8191) + k) in
            (* Desynchronised open, as in the scale-out campaign. *)
            Sim.Proc.wait (Sim.Time.us (1 + (k * 2) + Sim.Prng.int prng 50));
            for i = 1 to cfg.ops_per_client do
              Sim.Proc.wait (Sim.Time.us (1 + Sim.Prng.int prng 10));
              let t0 = Sim.Engine.now engine in
              driver.op ~prng ~k ~i;
              Metrics.Histogram.add hist
                (Sim.Time.to_us (Sim.Time.diff (Sim.Engine.now engine) t0));
              incr completed
            done;
            incr finished)
      done;
      while !finished < clients do
        Sim.Proc.wait (Sim.Time.us 50)
      done;
      losses := driver.losses ();
      fallbacks := driver.fallbacks ());
  let switch_drops =
    List.fold_left
      (fun acc sw -> acc + Atm.Switch.drops sw)
      0
      (Atm.Network.switches (Cluster.Testbed.network testbed))
  in
  {
    structure;
    kind = Dds.Kind.to_string kind;
    leg = leg.leg_label;
    clients;
    zipf = leg.leg_zipf;
    mutate_pct = leg.leg_mutate_pct;
    ops = !completed;
    mean_us = Metrics.Summary.mean (Metrics.Histogram.summary hist);
    p50_us = Metrics.Histogram.percentile hist 50.;
    p95_us = Metrics.Histogram.percentile hist 95.;
    p99_us = Metrics.Histogram.percentile hist 99.;
    cas_losses = !losses;
    rpc_fallbacks = !fallbacks;
    switch_drops;
  }

let run_cfg ?(structures = structures) cfg =
  let points =
    List.concat_map
      (fun structure ->
        List.concat_map
          (fun kind ->
            List.map
              (fun leg -> run_point cfg ~structure ~kind leg)
              [ cfg.low; cfg.high ])
          Dds.Kind.all)
      structures
  in
  { nodes = cfg.leaves * cfg.hosts_per_leaf; points }

let make_cfg ~spines ~leaves ~hosts_per_leaf ~low_clients ~high_clients
    ~low_zipf ~high_zipf ~low_mutate_pct ~high_mutate_pct ~ops_per_client ~keys
    ~slots ~seed =
  {
    spines;
    leaves;
    hosts_per_leaf;
    ops_per_client;
    keys;
    slots;
    seed;
    low =
      {
        leg_label = "low";
        leg_clients = low_clients;
        leg_zipf = low_zipf;
        leg_mutate_pct = low_mutate_pct;
      };
    high =
      {
        leg_label = "high";
        leg_clients = high_clients;
        leg_zipf = high_zipf;
        leg_mutate_pct = high_mutate_pct;
      };
  }

let run ?(spines = 2) ?(leaves = 8) ?(hosts_per_leaf = 4) ?(low_clients = 2)
    ?(high_clients = 12) ?(low_zipf = 0.2) ?(high_zipf = 1.5)
    ?(low_mutate_pct = 5) ?(high_mutate_pct = 80) ?(ops_per_client = 24)
    ?(keys = 8) ?(slots = 16) ?(seed = 10) ?structures () =
  run_cfg ?structures
    (make_cfg ~spines ~leaves ~hosts_per_leaf ~low_clients ~high_clients
       ~low_zipf ~high_zipf ~low_mutate_pct ~high_mutate_pct ~ops_per_client
       ~keys ~slots ~seed)

let smoke ?(seed = 10) ?structures () =
  run ~spines:2 ~leaves:4 ~hosts_per_leaf:4 ~low_clients:2 ~high_clients:10
    ~ops_per_client:16 ~seed ?structures ()

(* ------------------------------- gates ------------------------------ *)

let find result ~structure ~kind ~leg =
  List.find_opt
    (fun p -> p.structure = structure && p.kind = kind && p.leg = leg)
    result.points

let crossover result structure =
  match
    ( find result ~structure ~kind:"dx" ~leg:"low",
      find result ~structure ~kind:"rpc" ~leg:"low",
      find result ~structure ~kind:"dx" ~leg:"high",
      find result ~structure ~kind:"rpc" ~leg:"high",
      find result ~structure ~kind:"hybrid" ~leg:"high" )
  with
  | Some dl, Some rl, Some dh, Some rh, Some hh ->
      let dx_wins_low = dl.mean_us < rl.mean_us in
      let ct_wins_high = Float.min rh.mean_us hh.mean_us < dh.mean_us in
      Some (dx_wins_low, ct_wins_high)
  | _ -> None

let min_crossovers = 2

let check result =
  let sanity = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> sanity := m :: !sanity) fmt in
  List.iter
    (fun p ->
      if p.ops <= 0 then
        fail "%s/%s/%s: no operations completed" p.structure p.kind p.leg;
      if p.mean_us <= 0. then
        fail "%s/%s/%s: non-positive mean latency" p.structure p.kind p.leg)
    result.points;
  let in_scope =
    List.filter
      (fun s -> find result ~structure:s ~kind:"dx" ~leg:"low" <> None)
      structures
  in
  let crossed =
    List.filter
      (fun s ->
        match crossover result s with Some (true, true) -> true | _ -> false)
      in_scope
  in
  (* The headline gate: the crossover must reproduce on at least two of
     the three structures.  On a miss, the per-structure detail says
     which leg each non-crossing structure lost. *)
  let headline =
    if List.length crossed >= min_crossovers then []
    else
      Printf.sprintf "crossover reproduced on %d structure(s) [%s], need >= %d"
        (List.length crossed) (String.concat ", " crossed) min_crossovers
      :: List.concat_map
           (fun s ->
             match crossover result s with
             | Some (true, true) -> []
             | Some (dx_low, ct_high) ->
                 (if dx_low then []
                  else
                    [
                      s ^ ": DX did not win the low-contention lookup-heavy leg";
                    ])
                 @
                 if ct_high then []
                 else
                   [
                     s
                     ^ ": neither RPC nor hybrid won the high-contention \
                        mutation-heavy leg";
                   ]
             | None -> [ s ^ ": incomplete sweep (missing points)" ])
           in_scope
  in
  List.rev !sanity @ headline

(* ------------------------------- report ----------------------------- *)

let json_of_point p =
  Printf.sprintf
    "    {\"structure\": \"%s\", \"kind\": \"%s\", \"leg\": \"%s\", \
     \"clients\": %d, \"zipf\": %.2f, \"mutate_pct\": %d, \"ops\": %d, \
     \"mean_us\": %.2f, \"p50_us\": %.2f, \"p95_us\": %.2f, \"p99_us\": \
     %.2f, \"cas_losses\": %d, \"rpc_fallbacks\": %d, \"switch_drops\": %d}"
    p.structure p.kind p.leg p.clients p.zipf p.mutate_pct p.ops p.mean_us
    p.p50_us p.p95_us p.p99_us p.cas_losses p.rpc_fallbacks p.switch_drops

let to_json result =
  let failures = check result in
  let crossed =
    List.filter
      (fun s -> match crossover result s with Some (true, true) -> true | _ -> false)
      structures
  in
  String.concat "\n"
    [
      "{";
      "  \"bench\": \"dds\",";
      Printf.sprintf "  \"schema_version\": %d," schema_version;
      Printf.sprintf "  \"nodes\": %d," result.nodes;
      Printf.sprintf "  \"checks_passed\": %b," (failures = []);
      Printf.sprintf "  \"failures\": [%s],"
        (String.concat ", "
           (List.map (fun f -> Printf.sprintf "\"%s\"" f) failures));
      Printf.sprintf "  \"crossover_structures\": [%s],"
        (String.concat ", "
           (List.map (fun s -> Printf.sprintf "\"%s\"" s) crossed));
      "  \"points\": [";
      String.concat ",\n" (List.map json_of_point result.points);
      "  ]";
      "}";
      "";
    ]

let json_valid text =
  match Metrics.Json.parse text with Ok _ -> true | Error _ -> false

let render result =
  let table =
    Metrics.Table.create
      ~title:
        "DDS campaign: DX vs RPC vs hybrid at two operating points (PR10)"
      [
        ("Structure", Metrics.Table.Left);
        ("Kind", Metrics.Table.Left);
        ("Leg", Metrics.Table.Left);
        ("Clients", Metrics.Table.Right);
        ("Mutate %", Metrics.Table.Right);
        ("Ops", Metrics.Table.Right);
        ("Mean us", Metrics.Table.Right);
        ("p95 us", Metrics.Table.Right);
        ("Losses", Metrics.Table.Right);
        ("Fallbacks", Metrics.Table.Right);
      ]
  in
  List.iter
    (fun p ->
      Metrics.Table.add_row table
        [
          p.structure;
          p.kind;
          p.leg;
          string_of_int p.clients;
          string_of_int p.mutate_pct;
          string_of_int p.ops;
          Printf.sprintf "%.1f" p.mean_us;
          Printf.sprintf "%.1f" p.p95_us;
          string_of_int p.cas_losses;
          string_of_int p.rpc_fallbacks;
        ])
    result.points;
  let failures = check result in
  Metrics.Table.render table
  ^
  match failures with
  | [] -> "  dds bench gates: all passed (crossover reproduced)\n"
  | fs -> String.concat "" (List.map (Printf.sprintf "  GATE FAILED: %s\n") fs)

(** The scale-out campaign: a Clos fabric of 128+ nodes running a
    Zipf-keyed lookup mix against the sharded name service, next to a
    single-registry baseline at equal load.

    Lookups are pure data transfer (remote READs against the shard the
    cached map names); registration and the mid-campaign rebalance go
    through the reconciler's control plane. The sharded run must beat
    the baseline's p99 lookup latency, keep every switch drop counter
    at zero, and converge after the rebalance with no lost and no
    stale-served registrations — the gates [shardsim --ci] enforces and
    [BENCH_PR9.json] records. *)

type campaign = {
  label : string;
  nodes : int;  (** fabric hosts (Clos capacity) *)
  shards_start : int;  (** shards when the lookup phase opens *)
  shards_end : int;  (** shards after the mid-campaign rebalance *)
  clients : int;
  names : int;
  lookups : int;  (** completed lookup count across all clients *)
  mean_us : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  switch_drops : int;  (** summed over every switch in the fabric *)
  max_queue_depth : int;  (** worst sampled output-queue depth *)
  epoch : int;  (** final map epoch *)
  live : int;  (** records live across shard mirrors at the end *)
  lost : int;  (** registered names a lookup failed to find *)
  stale_served : int;  (** lookups answered with wrong coordinates *)
  stale_refetches : int;  (** map refetches forced by staleness *)
  mid_splits : int;  (** rebalance splits during the campaign *)
  converged : bool;  (** every client ended on the final epoch *)
  convergence_us : float;
      (** worst client adoption delay after the rebalance publish *)
}

type result = { baseline : campaign; sharded : campaign }

val schema_version : int

val run :
  ?spines:int ->
  ?leaves:int ->
  ?hosts_per_leaf:int ->
  ?shard_hosts:int ->
  ?clients:int ->
  ?names:int ->
  ?lookups_per_client:int ->
  ?slots:int ->
  ?zipf:float ->
  ?seed:int ->
  unit ->
  result
(** Defaults: a 4x8x16 Clos (128 hosts), 8 shard hosts, 48 clients,
    256 names, 16 lookups per client under a Zipf(1.5) key mix,
    seed 9. The baseline leg runs the same load against one shard on
    one host and never rebalances. *)

val smoke :
  ?seed:int -> unit -> result
(** The golden-file configuration: a 2-spine, 4-leaf, 4-host/leaf
    (16-node) Clos, 4 shard hosts, 10 clients, 48 names, 12 lookups
    per client — small enough for the test suite, still end to end
    and congested enough at the single registry for the sharded leg
    to win its p99 gate. *)

val check : result -> string list
(** Gate violations, empty when healthy: sharded p99 below baseline
    p99, zero switch drops, no lost or stale-served registrations,
    a rebalance that actually split, and full epoch convergence. *)

val to_json : result -> string
val json_valid : string -> bool
val render : result -> string

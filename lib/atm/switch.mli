(** An output-queued ATM switch.

    Frames arriving on any input are forwarded onto the destination
    port's downlink — or, in a multi-switch fabric, onto the trunk this
    switch's route table names for the destination — after a fixed
    switching latency; contention appears as queueing on the shared
    output link. A frame with neither a local port nor a route is
    dropped and counted ({!drops}), never fatal. *)

type t

val create : ?name:string -> Sim.Engine.t -> Config.t -> t
(** [name] (default ["switch"]) labels this switch's trace hops, trunk
    link names and telemetry gauges. *)

val name : t -> string

val attach_port : t -> Nic.t -> unit
(** Create the downlink that delivers to this NIC. *)

val uplink_for : t -> Addr.t -> Link.t
(** Create the uplink a node uses to reach the switch. *)

val trunk_to : t -> t -> Link.t
(** [trunk_to t peer] — create the directed inter-switch link carrying
    frames from [t] into [peer]'s forwarding logic. The trunk is owned
    (and listed by {!links}) on the sending side only. *)

val add_route : t -> dst:int -> Link.t -> unit
(** Route frames for host address [dst] onto an output link (normally a
    trunk created with {!trunk_to}). Directly attached ports take
    precedence over routes. *)

val forward : t -> Frame.t -> unit
(** Inject a frame into this switch's forwarding logic (as an arriving
    trunk does). *)

val frames_switched : t -> int

val drops : t -> int
(** Frames discarded for a destination with no port and no route. *)

val queue_depth : t -> int
(** Instantaneous frames queued across every output this switch drives
    (host downlinks and outgoing trunks) — output-queued contention, as
    sampled by the telemetry plane. *)

val links : t -> (int option * int option * Link.t) list
(** Every fabric edge this switch owns, in deterministic port order,
    with its endpoints: uplink [i -> switch] is [(Some i, None, link)],
    downlink [switch -> j] is [(None, Some j, link)], and an outgoing
    inter-switch trunk is [(None, None, link)]. *)

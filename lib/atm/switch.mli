(** An output-queued ATM switch for star topologies.

    Frames arriving on a port's uplink are forwarded onto the destination
    port's downlink after a fixed switching latency; contention appears
    as queueing on the shared downlink. A frame for an unknown port is
    dropped and counted ({!drops}), never fatal. *)

type t

val create : Sim.Engine.t -> Config.t -> t

val attach_port : t -> Nic.t -> unit
(** Create the downlink that delivers to this NIC. *)

val uplink_for : t -> Addr.t -> Link.t
(** Create the uplink a node uses to reach the switch. *)

val frames_switched : t -> int

val drops : t -> int
(** Frames discarded for an unknown destination port. *)

val queue_depth : t -> int
(** Instantaneous frames queued across every downlink — output-queued
    contention, as sampled by the telemetry plane. *)

val links : t -> (int option * int option * Link.t) list
(** Every fabric edge in deterministic port order, with its endpoints:
    uplink [i -> switch] is [(Some i, None, link)], downlink
    [switch -> j] is [(None, Some j, link)]. *)

(* Topology construction.

   [Back_to_back] wires every pair of nodes with dedicated links (the
   paper's two-node switchless testbed generalized to a full mesh);
   [Star] puts an output-queued switch in the middle, the deployment the
   paper anticipates for larger clusters.

   Every link in the fabric is retained, with its endpoints, so the
   fault plane can interpose on each edge; route lookups for unknown
   destinations drop-with-counter at the NIC rather than aborting. *)

type topology = Back_to_back | Star

type t = {
  engine : Sim.Engine.t;
  config : Config.t;
  topology : topology;
  nics : Nic.t array;
  switch : Switch.t option;
  mesh_edges : (int option * int option * Link.t) list;
}

let build_mesh engine config nics =
  let n = Array.length nics in
  (* links.(i).(j) carries traffic from node i to node j. *)
  let links = Array.make_matrix n n None in
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        let dst_nic = nics.(j) in
        let link =
          Link.create
            ~name:(Printf.sprintf "mesh:%d->%d" i j)
            engine config
            ~deliver:(fun frame -> Nic.deliver dst_nic frame)
        in
        links.(i).(j) <- Some link;
        edges := (Some i, Some j, link) :: !edges
      end
    done
  done;
  Array.iteri
    (fun i nic ->
      Nic.set_route nic (fun dst ->
          let d = Addr.to_int dst in
          if d < 0 || d >= n then None else links.(i).(d)))
    nics;
  List.rev !edges

let build_star engine config nics =
  let switch = Switch.create engine config in
  Array.iter (fun nic -> Switch.attach_port switch nic) nics;
  Array.iter
    (fun nic ->
      let uplink = Switch.uplink_for switch (Nic.addr nic) in
      Nic.set_route nic (fun _dst -> Some uplink))
    nics;
  switch

let create ?(config = Config.default) ?(topology = Back_to_back) engine ~nodes =
  if nodes < 2 then invalid_arg "Network.create: need at least two nodes";
  let nics =
    Array.init nodes (fun i -> Nic.create config (Addr.of_int i))
  in
  let switch, mesh_edges =
    match topology with
    | Back_to_back -> (None, build_mesh engine config nics)
    | Star -> (Some (build_star engine config nics), [])
  in
  { engine; config; topology; nics; switch; mesh_edges }

let nic t addr = t.nics.(Addr.to_int addr)
let nic_of_int t i = t.nics.(i)
let size t = Array.length t.nics
let config t = t.config
let engine t = t.engine
let addrs t = Array.to_list (Array.map Nic.addr t.nics)
let switch t = t.switch
let topology t = t.topology

let links t =
  match t.switch with
  | Some switch -> Switch.links switch
  | None -> t.mesh_edges

(* Topology construction.

   [Back_to_back] wires every pair of nodes with dedicated links (the
   paper's two-node switchless testbed generalized to a full mesh);
   [Star] puts one output-queued switch in the middle, the deployment
   the paper anticipates for larger clusters.  [Clos] and [Fat_tree]
   scale that out to a multi-switch fabric — leaf/spine (or three-tier
   pod/core) switches joined by trunks, with a deterministic
   shortest-path route table per switch — so hundreds of hosts can be
   simulated without the mesh's quadratic link count.

   Every link in the fabric is retained, with its endpoints, so the
   fault plane can interpose on each edge; route lookups for unknown
   destinations drop-with-counter at the NIC or switch rather than
   aborting. *)

type topology =
  | Back_to_back
  | Star
  | Clos of { spines : int; leaves : int; hosts_per_leaf : int }
  | Fat_tree of { k : int }

type t = {
  engine : Sim.Engine.t;
  config : Config.t;
  topology : topology;
  nics : Nic.t array;
  switches : Switch.t list;
  mesh_edges : (int option * int option * Link.t) list;
}

let build_mesh engine config nics =
  let n = Array.length nics in
  (* links.(i).(j) carries traffic from node i to node j. *)
  let links = Array.make_matrix n n None in
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        let dst_nic = nics.(j) in
        let link =
          Link.create
            ~name:(Printf.sprintf "mesh:%d->%d" i j)
            engine config
            ~deliver:(fun frame -> Nic.deliver dst_nic frame)
        in
        links.(i).(j) <- Some link;
        edges := (Some i, Some j, link) :: !edges
      end
    done
  done;
  Array.iteri
    (fun i nic ->
      Nic.set_route nic (fun dst ->
          let d = Addr.to_int dst in
          if d < 0 || d >= n then None else links.(i).(d)))
    nics;
  List.rev !edges

(* Attach a host below a switch: downlink, uplink, and the NIC's route
   (everything goes up — the switch fabric does the addressing). *)
let attach_host switch nic =
  Switch.attach_port switch nic;
  let uplink = Switch.uplink_for switch (Nic.addr nic) in
  Nic.set_route nic (fun _dst -> Some uplink)

let build_star engine config nics =
  let switch = Switch.create engine config in
  Array.iter (fun nic -> attach_host switch nic) nics;
  [ switch ]

(* Two-tier leaf/spine Clos.  Host i hangs off leaf [i / hosts_per_leaf];
   every leaf trunks to every spine in both directions.  Routing is
   deterministic shortest-path: a leaf delivers same-leaf traffic on the
   local downlink and spreads remote traffic over the spines by
   destination address ([dst mod spines]); a spine sends every
   destination down the trunk to its leaf. *)
let build_clos engine config nics ~spines ~leaves ~hosts_per_leaf =
  if spines < 1 || leaves < 1 || hosts_per_leaf < 1 then
    invalid_arg "Network.create: Clos parameters must be positive";
  let n = Array.length nics in
  if n <> leaves * hosts_per_leaf then
    invalid_arg
      (Printf.sprintf
         "Network.create: Clos needs nodes = leaves * hosts_per_leaf (%d <> %d*%d)"
         n leaves hosts_per_leaf);
  let leaf =
    Array.init leaves (fun l ->
        Switch.create ~name:(Printf.sprintf "leaf.%d" l) engine config)
  in
  let spine =
    Array.init spines (fun s ->
        Switch.create ~name:(Printf.sprintf "spine.%d" s) engine config)
  in
  let leaf_of i = i / hosts_per_leaf in
  Array.iteri (fun i nic -> attach_host leaf.(leaf_of i) nic) nics;
  let up_trunk =
    Array.init leaves (fun l ->
        Array.init spines (fun s -> Switch.trunk_to leaf.(l) spine.(s)))
  in
  let down_trunk =
    Array.init spines (fun s ->
        Array.init leaves (fun l -> Switch.trunk_to spine.(s) leaf.(l)))
  in
  for dst = 0 to n - 1 do
    let dl = leaf_of dst in
    for l = 0 to leaves - 1 do
      if l <> dl then
        Switch.add_route leaf.(l) ~dst up_trunk.(l).(dst mod spines)
    done;
    for s = 0 to spines - 1 do
      Switch.add_route spine.(s) ~dst down_trunk.(s).(dl)
    done
  done;
  Array.to_list leaf @ Array.to_list spine

(* Three-tier k-ary fat tree: k pods of k/2 edge and k/2 aggregation
   switches, (k/2)^2 cores, k^3/4 hosts.  Aggregation switch [a] of
   every pod trunks to cores [a*(k/2) .. a*(k/2)+k/2-1], so one
   deterministic shortest path exists per (source, destination): up via
   aggregation [dst mod k/2], across core [agg*(k/2) + (dst mod k/2)],
   down the destination pod's matching aggregation and edge. *)
let build_fat_tree engine config nics ~k =
  if k < 2 || k mod 2 <> 0 then
    invalid_arg "Network.create: Fat_tree needs an even k >= 2";
  let half = k / 2 in
  let n = Array.length nics in
  if n <> k * half * half then
    invalid_arg
      (Printf.sprintf "Network.create: Fat_tree k=%d needs k^3/4 = %d nodes, got %d"
         k (k * half * half) n);
  let pod_hosts = half * half in
  let edge =
    Array.init k (fun p ->
        Array.init half (fun e ->
            Switch.create ~name:(Printf.sprintf "edge.%d.%d" p e) engine config))
  in
  let agg =
    Array.init k (fun p ->
        Array.init half (fun a ->
            Switch.create ~name:(Printf.sprintf "agg.%d.%d" p a) engine config))
  in
  let core =
    Array.init (half * half) (fun c ->
        Switch.create ~name:(Printf.sprintf "core.%d" c) engine config)
  in
  let pod_of i = i / pod_hosts in
  let edge_of i = i mod pod_hosts / half in
  Array.iteri (fun i nic -> attach_host edge.(pod_of i).(edge_of i) nic) nics;
  let edge_up =
    Array.init k (fun p ->
        Array.init half (fun e ->
            Array.init half (fun a -> Switch.trunk_to edge.(p).(e) agg.(p).(a))))
  in
  let agg_down =
    Array.init k (fun p ->
        Array.init half (fun a ->
            Array.init half (fun e -> Switch.trunk_to agg.(p).(a) edge.(p).(e))))
  in
  let agg_up =
    Array.init k (fun p ->
        Array.init half (fun a ->
            Array.init half (fun j ->
                Switch.trunk_to agg.(p).(a) core.((a * half) + j))))
  in
  let core_down =
    Array.init (half * half) (fun c ->
        Array.init k (fun p -> Switch.trunk_to core.(c) agg.(p).(c / half)))
  in
  for dst = 0 to n - 1 do
    let pd = pod_of dst and ed = edge_of dst in
    let spread = dst mod half in
    for p = 0 to k - 1 do
      for e = 0 to half - 1 do
        if not (p = pd && e = ed) then
          Switch.add_route edge.(p).(e) ~dst edge_up.(p).(e).(spread)
      done;
      for a = 0 to half - 1 do
        if p = pd then Switch.add_route agg.(p).(a) ~dst agg_down.(p).(a).(ed)
        else Switch.add_route agg.(p).(a) ~dst agg_up.(p).(a).(spread)
      done
    done;
    for c = 0 to (half * half) - 1 do
      Switch.add_route core.(c) ~dst core_down.(c).(pd)
    done
  done;
  List.concat_map Array.to_list (Array.to_list edge)
  @ List.concat_map Array.to_list (Array.to_list agg)
  @ Array.to_list core

let create ?(config = Config.default) ?(topology = Back_to_back) engine ~nodes =
  if nodes < 2 then invalid_arg "Network.create: need at least two nodes";
  let nics =
    Array.init nodes (fun i -> Nic.create config (Addr.of_int i))
  in
  let switches, mesh_edges =
    match topology with
    | Back_to_back -> ([], build_mesh engine config nics)
    | Star -> (build_star engine config nics, [])
    | Clos { spines; leaves; hosts_per_leaf } ->
        (build_clos engine config nics ~spines ~leaves ~hosts_per_leaf, [])
    | Fat_tree { k } -> (build_fat_tree engine config nics ~k, [])
  in
  { engine; config; topology; nics; switches; mesh_edges }

let nic t addr = t.nics.(Addr.to_int addr)
let nic_of_int t i = t.nics.(i)
let size t = Array.length t.nics
let config t = t.config
let engine t = t.engine
let addrs t = Array.to_list (Array.map Nic.addr t.nics)
let switches t = t.switches
let topology t = t.topology

(* Back-compat view for single-switch (star) consumers. *)
let switch t = match t.switches with [ s ] -> Some s | _ -> None

let links t =
  match t.switches with
  | [] -> t.mesh_edges
  | switches -> List.concat_map Switch.links switches

(* ATM adaptation-layer arithmetic.

   An ATM cell carries 53 bytes on the wire: a 5-byte header and a 48-byte
   payload.  Frames no larger than one payload travel in a single cell (the
   remote-memory layer formats its single-cell requests this way, with the
   8-byte request header inside the payload leaving 40 data bytes, exactly
   as the paper reports).  Larger frames are segmented AAL5-style with an
   8-byte trailer in the final cell. *)

let cell_payload_bytes = 48
let cell_wire_bytes = 53
let cell_header_bytes = cell_wire_bytes - cell_payload_bytes
let aal5_trailer_bytes = 8

let cells_of_len len =
  if len < 0 then invalid_arg "Aal.cells_of_len: negative length";
  if len = 0 then 1
  else if len <= cell_payload_bytes then 1
  else
    let padded = len + aal5_trailer_bytes in
    (padded + cell_payload_bytes - 1) / cell_payload_bytes

let wire_bytes_of_len len = cells_of_len len * cell_wire_bytes

let words_of_len len = (len + 3) / 4
(* 32-bit words touched by programmed I/O to move [len] payload bytes. *)

(* The AAL5 trailer carries a CRC-32 over the frame payload; we model it
   with an FNV-1a digest, which is enough to make any single corrupted
   byte detectable.  Verification is free in simulated time (the real
   interface checks it in hardware as cells drain). *)
let checksum payload =
  let h = ref 0x811C9DC5 in
  for i = 0 to Bytes.length payload - 1 do
    h := (!h lxor Char.code (Bytes.get payload i)) * 0x01000193 land 0x3FFFFFFF
  done;
  !h

(* Network frames: the unit handed to and received from a NIC.

   A frame's payload is segmented into ATM cells for transmission; see
   {!Aal} for the cell arithmetic.

   [ctx] models a trace id riding in a reserved header field: it travels
   with the frame but contributes nothing to [length], so attaching a
   tracer cannot perturb wire timing.

   [checksum] models the AAL5 trailer CRC: computed over the payload
   when the frame is formatted for transmission and carried unchanged.
   A fault plane that corrupts the payload in flight leaves the stored
   checksum stale, so the receiving NIC detects the damage and drops the
   frame as a receive error instead of delivering bad data. *)

type t = {
  src : Addr.t;
  dst : Addr.t;
  payload : bytes;
  ctx : Obs.Ctx.t option;
  checksum : int;
}

let make ?ctx ~src ~dst payload =
  { src; dst; payload; ctx; checksum = Aal.checksum payload }

let src t = t.src
let dst t = t.dst
let payload t = t.payload
let ctx t = t.ctx
let length t = Bytes.length t.payload

let intact t = t.checksum = Aal.checksum t.payload

(* In-flight corruption: flip one payload byte (chosen by the fault
   plane) without refreshing the stored checksum. An empty payload has
   no byte to flip, so the checksum itself is damaged instead. *)
let corrupted ~byte t =
  if Bytes.length t.payload = 0 then { t with checksum = t.checksum lxor 1 }
  else begin
    let payload = Bytes.copy t.payload in
    let i = byte mod Bytes.length payload in
    Bytes.set payload i (Char.chr (Char.code (Bytes.get payload i) lxor 0xFF));
    { t with payload }
  end

let pp ppf t =
  Format.fprintf ppf "frame(%a -> %a, %d bytes)" Addr.pp t.src Addr.pp t.dst
    (length t)

(* Network frames: the unit handed to and received from a NIC.

   A frame's payload is segmented into ATM cells for transmission; see
   {!Aal} for the cell arithmetic.

   [ctx] models a trace id riding in a reserved header field: it travels
   with the frame but contributes nothing to [length], so attaching a
   tracer cannot perturb wire timing. *)

type t = {
  src : Addr.t;
  dst : Addr.t;
  payload : bytes;
  ctx : Obs.Ctx.t option;
}

let make ?ctx ~src ~dst payload = { src; dst; payload; ctx }

let src t = t.src
let dst t = t.dst
let payload t = t.payload
let ctx t = t.ctx
let length t = Bytes.length t.payload

let pp ppf t =
  Format.fprintf ppf "frame(%a -> %a, %d bytes)" Addr.pp t.src Addr.pp t.dst
    (length t)

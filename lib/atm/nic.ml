(* Host-network interfaces, modeled after the FORE TCA-100.

   The real interface exposes two FIFOs accessed a word at a time with no
   DMA.  The CPU cost of those word copies is charged by the kernel
   emulation layer (which knows whose CPU pays); the NIC itself models the
   wire side: outbound frames are routed onto a link, inbound frames queue
   in a bounded receive FIFO until the host drains them.

   Two drop paths exist for the fault plane's benefit: an unroutable
   destination (a crashed or partitioned peer) counts a tx route drop
   instead of aborting, and an arriving frame whose AAL checksum no
   longer matches its payload counts a receive error and is discarded —
   corruption surfaces as loss, never as silent bad data. *)

exception Rx_overflow of Addr.t

type t = {
  addr : Addr.t;
  config : Config.t;
  mutable route : Addr.t -> Link.t option;
  rx : Frame.t Sim.Mailbox.t;
  mutable rx_cells_pending : int;
  mutable frames_tx : int;
  mutable frames_rx : int;
  mutable bytes_tx : int;
  mutable bytes_rx : int;
  mutable cells_tx : int;
  mutable cells_rx : int;
  mutable crc_errors : int;
  mutable route_drops : int;
}

let no_route _ = failwith "Nic: route not installed"

let create config addr =
  {
    addr;
    config;
    route = no_route;
    rx = Sim.Mailbox.create ~name:(Addr.to_string addr ^ " rx fifo") ~daemon:true ();
    rx_cells_pending = 0;
    frames_tx = 0;
    frames_rx = 0;
    bytes_tx = 0;
    bytes_rx = 0;
    cells_tx = 0;
    cells_rx = 0;
    crc_errors = 0;
    route_drops = 0;
  }

let addr t = t.addr
let set_route t route = t.route <- route

let transmit ?ctx t ~dst payload =
  if Addr.equal dst t.addr then
    invalid_arg "Nic.transmit: destination is self";
  Obs.Trace.frame_sent ctx ~node:(Addr.to_int t.addr);
  let frame = Frame.make ?ctx ~src:t.addr ~dst payload in
  match t.route dst with
  | None -> t.route_drops <- t.route_drops + 1
  | Some link ->
      let len = Frame.length frame in
      t.frames_tx <- t.frames_tx + 1;
      t.bytes_tx <- t.bytes_tx + len;
      t.cells_tx <- t.cells_tx + Aal.cells_of_len len;
      Link.send link frame

let deliver t frame =
  if not (Frame.intact frame) then
    (* Checksum mismatch: the interface hardware discards the frame as it
       reassembles, so the host never sees it — corruption becomes loss. *)
    t.crc_errors <- t.crc_errors + 1
  else begin
    let cells = Aal.cells_of_len (Frame.length frame) in
    if t.rx_cells_pending + cells > t.config.Config.fifo_capacity_cells then
      raise (Rx_overflow t.addr);
    Obs.Trace.frame_delivered (Frame.ctx frame) ~node:(Addr.to_int t.addr);
    t.rx_cells_pending <- t.rx_cells_pending + cells;
    t.frames_rx <- t.frames_rx + 1;
    t.bytes_rx <- t.bytes_rx + Frame.length frame;
    t.cells_rx <- t.cells_rx + cells;
    Sim.Mailbox.send t.rx frame
  end

let receive t =
  let frame = Sim.Mailbox.recv t.rx in
  t.rx_cells_pending <- t.rx_cells_pending - Aal.cells_of_len (Frame.length frame);
  frame

let pending_frames t = Sim.Mailbox.length t.rx

let frames_tx t = t.frames_tx
let frames_rx t = t.frames_rx
let bytes_tx t = t.bytes_tx
let bytes_rx t = t.bytes_rx
let cells_tx t = t.cells_tx
let cells_rx t = t.cells_rx
let crc_errors t = t.crc_errors
let route_drops t = t.route_drops

(* An output-queued ATM switch.

   Each attached host port has an uplink (node to switch) and a downlink
   (switch to node).  A frame arriving on any input is forwarded to the
   destination's downlink — or, in a multi-switch fabric, onto the trunk
   the switch's route table names for that destination — after a fixed
   switching latency; contention appears as queueing on the shared
   output link.

   A frame addressed to a destination that was never attached and has no
   route (or whose node has been cut out of the fabric) is dropped and
   counted, not fatal: a crashed or partitioned peer must not abort the
   whole simulation. *)

type t = {
  engine : Sim.Engine.t;
  config : Config.t;
  name : string;
  downlinks : (int, Link.t) Hashtbl.t;
  uplinks : (int, Link.t) Hashtbl.t;
  routes : (int, Link.t) Hashtbl.t;
  (* outgoing inter-switch trunks, in creation order (kept reversed) *)
  mutable trunks : Link.t list;
  mutable frames_switched : int;
  mutable drops : int;
}

let create ?(name = "switch") engine config =
  {
    engine;
    config;
    name;
    downlinks = Hashtbl.create 8;
    uplinks = Hashtbl.create 8;
    routes = Hashtbl.create 8;
    trunks = [];
    frames_switched = 0;
    drops = 0;
  }

let name t = t.name

let attach_port t nic =
  let addr = Nic.addr nic in
  let down =
    Link.create
      ~name:(Printf.sprintf "down:%s" (Addr.to_string addr))
      t.engine t.config
      ~deliver:(fun frame -> Nic.deliver nic frame)
  in
  Hashtbl.replace t.downlinks (Addr.to_int addr) down

let forward t frame =
  let dst = Addr.to_int (Frame.dst frame) in
  let out =
    match Hashtbl.find_opt t.downlinks dst with
    | Some _ as hit -> hit
    | None -> Hashtbl.find_opt t.routes dst
  in
  match out with
  | None -> t.drops <- t.drops + 1
  | Some link ->
      t.frames_switched <- t.frames_switched + 1;
      let now = Sim.Engine.now t.engine in
      Obs.Trace.link_hop (Frame.ctx frame) ~name:t.name ~start:now
        ~finish:(Sim.Time.add now t.config.Config.switch_latency);
      Sim.Engine.schedule ~after:t.config.Config.switch_latency t.engine
        (fun () -> Link.send link frame)

let uplink_for t nic_addr =
  let up =
    Link.create
      ~name:(Printf.sprintf "up:%s" (Addr.to_string nic_addr))
      t.engine t.config
      ~deliver:(fun frame -> forward t frame)
  in
  Hashtbl.replace t.uplinks (Addr.to_int nic_addr) up;
  up

let trunk_to t peer =
  let link =
    Link.create
      ~name:(Printf.sprintf "trunk:%s->%s" t.name peer.name)
      t.engine t.config
      ~deliver:(fun frame -> forward peer frame)
  in
  t.trunks <- link :: t.trunks;
  link

let add_route t ~dst link = Hashtbl.replace t.routes dst link

let frames_switched t = t.frames_switched
let drops t = t.drops

(* Instantaneous backlog across every output this switch drives — host
   downlinks and outgoing trunks: where output-queued contention shows
   up, and what the telemetry sampler gauges. *)
let queue_depth t =
  Hashtbl.fold (fun _ down acc -> acc + Link.queue_depth down) t.downlinks 0
  + List.fold_left (fun acc trunk -> acc + Link.queue_depth trunk) 0 t.trunks

(* Fabric edges in deterministic (port-sorted, then trunk-creation)
   order, for the fault plane: uplink i -> switch is [(Some i, None)],
   downlink switch -> j is [(None, Some j)], an inter-switch trunk is
   [(None, None)]. *)
let links t =
  let by_port (a, _) (b, _) = compare (a : int) b in
  let sorted table =
    Hashtbl.fold (fun i l acc -> (i, l) :: acc) table [] |> List.sort by_port
  in
  let ups = sorted t.uplinks |> List.map (fun (i, l) -> (Some i, None, l)) in
  let downs =
    sorted t.downlinks |> List.map (fun (j, l) -> (None, Some j, l))
  in
  let trunks = List.rev_map (fun l -> (None, None, l)) t.trunks in
  ups @ downs @ trunks

(* An output-queued ATM switch for star topologies.

   Each port has an uplink (node to switch) and a downlink (switch to
   node).  A frame arriving on an uplink is forwarded to the destination
   port's downlink after a fixed switching latency; contention appears as
   queueing on the shared downlink.

   A frame addressed to a port that was never attached (or whose node
   has been cut out of the fabric) is dropped and counted, not fatal: a
   crashed or partitioned peer must not abort the whole simulation. *)

type t = {
  engine : Sim.Engine.t;
  config : Config.t;
  downlinks : (int, Link.t) Hashtbl.t;
  mutable uplinks : (int * Link.t) list;
  mutable frames_switched : int;
  mutable drops : int;
}

let create engine config =
  {
    engine;
    config;
    downlinks = Hashtbl.create 8;
    uplinks = [];
    frames_switched = 0;
    drops = 0;
  }

let attach_port t nic =
  let addr = Nic.addr nic in
  let down =
    Link.create
      ~name:(Printf.sprintf "down:%s" (Addr.to_string addr))
      t.engine t.config
      ~deliver:(fun frame -> Nic.deliver nic frame)
  in
  Hashtbl.replace t.downlinks (Addr.to_int addr) down

let forward t frame =
  let dst = Addr.to_int (Frame.dst frame) in
  match Hashtbl.find_opt t.downlinks dst with
  | None -> t.drops <- t.drops + 1
  | Some down ->
      t.frames_switched <- t.frames_switched + 1;
      let now = Sim.Engine.now t.engine in
      Obs.Trace.link_hop (Frame.ctx frame) ~name:"switch" ~start:now
        ~finish:(Sim.Time.add now t.config.Config.switch_latency);
      Sim.Engine.schedule ~after:t.config.Config.switch_latency t.engine
        (fun () -> Link.send down frame)

let uplink_for t nic_addr =
  let up =
    Link.create
      ~name:(Printf.sprintf "up:%s" (Addr.to_string nic_addr))
      t.engine t.config
      ~deliver:(fun frame -> forward t frame)
  in
  t.uplinks <- (Addr.to_int nic_addr, up) :: t.uplinks;
  up

let frames_switched t = t.frames_switched
let drops t = t.drops

(* Instantaneous backlog across every downlink: where output-queued
   contention shows up, and what the telemetry sampler gauges. *)
let queue_depth t =
  Hashtbl.fold (fun _ down acc -> acc + Link.queue_depth down) t.downlinks 0

(* Fabric edges in deterministic (port-sorted) order, for the fault
   plane: uplink i -> switch is [(Some i, None)], downlink switch -> j
   is [(None, Some j)]. *)
let links t =
  let by_port (a, _) (b, _) = compare (a : int) b in
  let ups =
    List.sort by_port t.uplinks
    |> List.map (fun (i, l) -> (Some i, None, l))
  in
  let downs =
    Hashtbl.fold (fun j l acc -> (j, l) :: acc) t.downlinks []
    |> List.sort by_port
    |> List.map (fun (j, l) -> (None, Some j, l))
  in
  ups @ downs

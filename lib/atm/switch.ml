(* An output-queued ATM switch for star topologies.

   Each port has an uplink (node to switch) and a downlink (switch to
   node).  A frame arriving on an uplink is forwarded to the destination
   port's downlink after a fixed switching latency; contention appears as
   queueing on the shared downlink. *)

type t = {
  engine : Sim.Engine.t;
  config : Config.t;
  downlinks : (int, Link.t) Hashtbl.t;
  mutable frames_switched : int;
}

let create engine config =
  { engine; config; downlinks = Hashtbl.create 8; frames_switched = 0 }

let attach_port t nic =
  let addr = Nic.addr nic in
  let down =
    Link.create
      ~name:(Printf.sprintf "down:%s" (Addr.to_string addr))
      t.engine t.config
      ~deliver:(fun frame -> Nic.deliver nic frame)
  in
  Hashtbl.replace t.downlinks (Addr.to_int addr) down

let forward t frame =
  let dst = Addr.to_int (Frame.dst frame) in
  match Hashtbl.find_opt t.downlinks dst with
  | None -> failwith "Switch.forward: unknown destination port"
  | Some down ->
      t.frames_switched <- t.frames_switched + 1;
      let now = Sim.Engine.now t.engine in
      Obs.Trace.link_hop (Frame.ctx frame) ~name:"switch" ~start:now
        ~finish:(Sim.Time.add now t.config.Config.switch_latency);
      Sim.Engine.schedule ~after:t.config.Config.switch_latency t.engine
        (fun () -> Link.send down frame)

let uplink_for t nic_addr =
  Link.create
    ~name:(Printf.sprintf "up:%s" (Addr.to_string nic_addr))
    t.engine t.config
    ~deliver:(fun frame -> forward t frame)

let frames_switched t = t.frames_switched

(** Network frames: the unit handed to and received from a NIC. *)

type t

val make : ?ctx:Obs.Ctx.t -> src:Addr.t -> dst:Addr.t -> bytes -> t
(** [ctx] is a trace context riding in a reserved header field — carried
    with the frame, excluded from {!length} (and hence wire timing). *)

val src : t -> Addr.t
val dst : t -> Addr.t
val payload : t -> bytes
val ctx : t -> Obs.Ctx.t option
val length : t -> int
(** Payload length in bytes. *)

val intact : t -> bool
(** Does the payload still match the AAL checksum computed at {!make}?
    False only for frames damaged in flight by the fault plane. *)

val corrupted : byte:int -> t -> t
(** A copy of the frame with the payload byte at [byte mod length]
    flipped and the stored checksum left stale, so the receiving NIC
    detects the damage. An empty payload damages the checksum itself. *)

val pp : Format.formatter -> t -> unit

(* Unidirectional point-to-point links.

   A link serializes frames at wire rate: a frame occupies the wire for
   [cells x cell_time], in FIFO order, and is delivered [propagation]
   later.  Within the cluster, loss is treated as catastrophic (the
   paper's reliability assumption), so exceeding the queue bound raises
   rather than silently dropping. *)

exception Overflow of string

type t = {
  name : string;
  engine : Sim.Engine.t;
  config : Config.t;
  deliver : Frame.t -> unit;
  mutable next_free : Sim.Time.t;
  mutable queued : int; (* frames accepted but not yet delivered *)
  mutable frames_sent : int;
  mutable cells_sent : int;
  mutable wire_bytes : int;
  mutable busy_time : Sim.Time.t;
}

let create ?(name = "link") engine config ~deliver =
  {
    name;
    engine;
    config;
    deliver;
    next_free = Sim.Time.zero;
    queued = 0;
    frames_sent = 0;
    cells_sent = 0;
    wire_bytes = 0;
    busy_time = Sim.Time.zero;
  }

let send t frame =
  if t.queued >= t.config.Config.fifo_capacity_cells then
    raise (Overflow t.name);
  let len = Frame.length frame in
  let cells = Aal.cells_of_len len in
  let tx_time = Config.frame_wire_time t.config len in
  let now = Sim.Engine.now t.engine in
  let start = Sim.Time.max now t.next_free in
  t.next_free <- Sim.Time.add start tx_time;
  t.queued <- t.queued + 1;
  t.frames_sent <- t.frames_sent + 1;
  t.cells_sent <- t.cells_sent + cells;
  t.wire_bytes <- t.wire_bytes + Aal.wire_bytes_of_len len;
  t.busy_time <- Sim.Time.add t.busy_time tx_time;
  let arrival =
    Sim.Time.add t.next_free t.config.Config.propagation
  in
  Obs.Trace.link_hop (Frame.ctx frame) ~name:t.name ~start ~finish:arrival;
  Sim.Engine.schedule_at t.engine arrival (fun () ->
      t.queued <- t.queued - 1;
      t.deliver frame)

let frames_sent t = t.frames_sent
let cells_sent t = t.cells_sent
let wire_bytes t = t.wire_bytes
let busy_time t = t.busy_time
let name t = t.name

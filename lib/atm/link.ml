(* Unidirectional point-to-point links.

   A link serializes frames at wire rate: a frame occupies the wire for
   [cells x cell_time], in FIFO order, and is delivered [propagation]
   later.  Within the cluster, loss is treated as catastrophic (the
   paper's reliability assumption), so by default exceeding the queue
   bound raises rather than silently dropping.

   The fault plane interposes here: [set_interposer] installs a verdict
   function consulted once per offered frame, and [set_overflow] switches
   the queue bound to drop-with-counter.  With no interposer installed
   and the legacy overflow policy, [send] follows exactly the original
   code path, so fault-free runs are bit-identical. *)

exception Overflow of string

type overflow_policy = Raise_on_overflow | Drop_on_overflow

type verdict =
  | Deliver
  | Drop of string
  | Corrupt of int
  | Duplicate of int
  | Delay of Sim.Time.t

type t = {
  name : string;
  engine : Sim.Engine.t;
  config : Config.t;
  deliver : Frame.t -> unit;
  mutable next_free : Sim.Time.t;
  mutable queued : int; (* frames accepted but not yet delivered *)
  mutable frames_sent : int;
  mutable cells_sent : int;
  mutable wire_bytes : int;
  mutable busy_time : Sim.Time.t;
  mutable interposer : (Frame.t -> verdict) option;
  mutable overflow : overflow_policy;
  mutable drops : int; (* frames removed by the fault plane *)
  mutable overflow_drops : int; (* frames refused by a full queue *)
}

let create ?(name = "link") engine config ~deliver =
  {
    name;
    engine;
    config;
    deliver;
    next_free = Sim.Time.zero;
    queued = 0;
    frames_sent = 0;
    cells_sent = 0;
    wire_bytes = 0;
    busy_time = Sim.Time.zero;
    interposer = None;
    overflow = Raise_on_overflow;
    drops = 0;
    overflow_drops = 0;
  }

let set_interposer t f = t.interposer <- f
let set_overflow t policy = t.overflow <- policy

(* Accept one frame onto the wire.  [jitter] stretches only this frame's
   propagation (the wire itself stays FIFO, so a jittered frame can
   arrive after frames sent later — that is how the fault plane induces
   reordering). *)
let enqueue t frame ~jitter =
  if t.queued >= t.config.Config.fifo_capacity_cells then
    match t.overflow with
    | Raise_on_overflow -> raise (Overflow t.name)
    | Drop_on_overflow -> t.overflow_drops <- t.overflow_drops + 1
  else begin
    let len = Frame.length frame in
    let cells = Aal.cells_of_len len in
    let tx_time = Config.frame_wire_time t.config len in
    let now = Sim.Engine.now t.engine in
    let start = Sim.Time.max now t.next_free in
    t.next_free <- Sim.Time.add start tx_time;
    t.queued <- t.queued + 1;
    t.frames_sent <- t.frames_sent + 1;
    t.cells_sent <- t.cells_sent + cells;
    t.wire_bytes <- t.wire_bytes + Aal.wire_bytes_of_len len;
    t.busy_time <- Sim.Time.add t.busy_time tx_time;
    let arrival =
      Sim.Time.add
        (Sim.Time.add t.next_free t.config.Config.propagation)
        jitter
    in
    Obs.Trace.link_hop (Frame.ctx frame) ~name:t.name ~start ~finish:arrival;
    Sim.Engine.schedule_at t.engine arrival (fun () ->
        t.queued <- t.queued - 1;
        t.deliver frame)
  end

let send t frame =
  match t.interposer with
  | None -> enqueue t frame ~jitter:Sim.Time.zero
  | Some f -> (
      match f frame with
      | Deliver -> enqueue t frame ~jitter:Sim.Time.zero
      | Drop _reason -> t.drops <- t.drops + 1
      | Corrupt byte -> enqueue t (Frame.corrupted ~byte frame) ~jitter:Sim.Time.zero
      | Duplicate extra ->
          for _ = 0 to extra do
            enqueue t frame ~jitter:Sim.Time.zero
          done
      | Delay jitter -> enqueue t frame ~jitter)

let queue_depth t = t.queued
let frames_sent t = t.frames_sent
let cells_sent t = t.cells_sent
let wire_bytes t = t.wire_bytes
let busy_time t = t.busy_time
let drops t = t.drops
let overflow_drops t = t.overflow_drops
let name t = t.name

(** Topology construction: back-to-back mesh (the paper's switchless
    testbed) or a switched star (the anticipated larger deployment). *)

type topology = Back_to_back | Star

type t

val create :
  ?config:Config.t -> ?topology:topology -> Sim.Engine.t -> nodes:int -> t
(** Build a network of [nodes] NICs addressed [0 .. nodes-1].
    Raises [Invalid_argument] for fewer than two nodes. *)

val nic : t -> Addr.t -> Nic.t
val nic_of_int : t -> int -> Nic.t
val size : t -> int
val config : t -> Config.t
val engine : t -> Sim.Engine.t
val addrs : t -> Addr.t list
val switch : t -> Switch.t option
val topology : t -> topology

val links : t -> (int option * int option * Link.t) list
(** Every fabric edge with its endpoints, in deterministic construction
    order, for the fault plane. Mesh link [i -> j] is
    [(Some i, Some j, link)]; a star's uplink [i -> switch] is
    [(Some i, None, link)] and downlink [switch -> j] is
    [(None, Some j, link)]. *)

(** Topology construction: back-to-back mesh (the paper's switchless
    testbed), a switched star (the anticipated larger deployment), or a
    multi-switch scale-out fabric — two-tier leaf/spine Clos or three-
    tier k-ary fat tree — with deterministic shortest-path routing. *)

type topology =
  | Back_to_back
  | Star
  | Clos of { spines : int; leaves : int; hosts_per_leaf : int }
      (** [leaves * hosts_per_leaf] hosts; every leaf trunks to every
          spine, remote traffic spread by destination address. *)
  | Fat_tree of { k : int }
      (** k-ary fat tree ([k] even): [k^3/4] hosts, [k] pods of [k/2]
          edge and [k/2] aggregation switches, [(k/2)^2] cores. *)

type t

val create :
  ?config:Config.t -> ?topology:topology -> Sim.Engine.t -> nodes:int -> t
(** Build a network of [nodes] NICs addressed [0 .. nodes-1].
    Raises [Invalid_argument] for fewer than two nodes, or when [nodes]
    does not match the chosen fabric shape. *)

val nic : t -> Addr.t -> Nic.t
val nic_of_int : t -> int -> Nic.t
val size : t -> int
val config : t -> Config.t
val engine : t -> Sim.Engine.t
val addrs : t -> Addr.t list

val switch : t -> Switch.t option
(** The single switch of a [Star], [None] for every other topology
    (multi-switch consumers use {!switches}). *)

val switches : t -> Switch.t list
(** Every switch in the fabric, in deterministic construction order:
    leaves then spines (Clos), edges then aggregations then cores
    (fat tree), the one star switch, or empty for a mesh. *)

val topology : t -> topology

val links : t -> (int option * int option * Link.t) list
(** Every fabric edge with its endpoints, in deterministic construction
    order, for the fault plane. Mesh link [i -> j] is
    [(Some i, Some j, link)]; a switch's uplink [i -> switch] is
    [(Some i, None, link)], downlink [switch -> j] is
    [(None, Some j, link)], and an inter-switch trunk is
    [(None, None, link)]. *)

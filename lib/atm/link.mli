(** Unidirectional point-to-point links with wire-rate serialization.

    Frames occupy the wire in FIFO order for as long as their cells take
    to serialize, then arrive at the far end one propagation delay later.
    Loss inside the cluster is catastrophic under the paper's reliability
    assumption, so by default queue overflow raises {!Overflow} instead
    of dropping; the fault plane flips that policy and interposes on
    every offered frame. *)

exception Overflow of string

type overflow_policy =
  | Raise_on_overflow  (** legacy: loss is catastrophic *)
  | Drop_on_overflow  (** fault plane: count and discard *)

(** What the fault plane decided for one offered frame. *)
type verdict =
  | Deliver  (** pass through untouched *)
  | Drop of string  (** discard; the string labels the cause *)
  | Corrupt of int  (** flip the payload byte at this index (mod length) *)
  | Duplicate of int  (** deliver, plus this many extra copies *)
  | Delay of Sim.Time.t
      (** stretch this frame's propagation only — later frames may
          overtake it, which is how reordering is induced *)

type t

val create :
  ?name:string -> Sim.Engine.t -> Config.t -> deliver:(Frame.t -> unit) -> t
(** [deliver] is invoked at the receiving end at arrival time. *)

val send : t -> Frame.t -> unit
(** Queue a frame for transmission. Never blocks the caller; the frame is
    delivered when its last cell would have arrived. With an interposer
    installed, the frame is first submitted to it and its verdict is
    applied. *)

val set_interposer : t -> (Frame.t -> verdict) option -> unit
(** Install (or remove, with [None]) the fault plane's per-frame verdict
    function. With [None] installed, [send] is bit-identical to the
    fault-free build. *)

val set_overflow : t -> overflow_policy -> unit

val name : t -> string

(** {1 Statistics} *)

val queue_depth : t -> int
(** Frames accepted but not yet delivered — the instantaneous wire-side
    backlog a telemetry sampler reads as a gauge. *)

val frames_sent : t -> int
val cells_sent : t -> int
val wire_bytes : t -> int
val busy_time : t -> Sim.Time.t

val drops : t -> int
(** Frames removed by the fault plane's [Drop] verdict. *)

val overflow_drops : t -> int
(** Frames refused by a full queue under [Drop_on_overflow]. *)

(** Host-network interfaces, modeled after the FORE TCA-100
    (word-at-a-time FIFOs, no DMA).

    The CPU cost of programmed-I/O word copies is charged by the kernel
    emulation layer; the NIC models the wire side and the bounded receive
    FIFO. *)

exception Rx_overflow of Addr.t
(** The receive FIFO bound was exceeded — catastrophic under the paper's
    in-cluster reliability assumption. *)

type t

val create : Config.t -> Addr.t -> t
val addr : t -> Addr.t

val set_route : t -> (Addr.t -> Link.t option) -> unit
(** Install the outbound routing function (done by {!Network}). [None]
    means the destination is unreachable (crashed or partitioned peer):
    the frame is counted in {!route_drops} and discarded rather than
    aborting the simulation. *)

val transmit : ?ctx:Obs.Ctx.t -> t -> dst:Addr.t -> bytes -> unit
(** Route a payload onto the appropriate link. Does not block; wire-rate
    serialization happens inside the link. [ctx] rides the frame header
    for tracing and opens the frame's wire span. *)

val deliver : t -> Frame.t -> unit
(** Called by links at frame arrival; queues into the receive FIFO. A
    frame whose AAL checksum no longer matches its payload is discarded
    as a receive error ({!crc_errors}) — corruption surfaces as loss. *)

val receive : t -> Frame.t
(** Drain the oldest received frame, blocking the calling process while
    the FIFO is empty. *)

val pending_frames : t -> int

(** {1 Statistics} *)

val frames_tx : t -> int
val frames_rx : t -> int
val bytes_tx : t -> int
val bytes_rx : t -> int
val cells_tx : t -> int
val cells_rx : t -> int

val crc_errors : t -> int
(** Arriving frames discarded for a checksum mismatch. *)

val route_drops : t -> int
(** Outbound frames discarded for lack of a route. *)

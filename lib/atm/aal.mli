(** ATM adaptation-layer arithmetic: how many cells, wire bytes and
    programmed-I/O words a frame of a given payload length costs. *)

val cell_payload_bytes : int
(** 48: payload bytes per ATM cell. *)

val cell_wire_bytes : int
(** 53: bytes per cell on the wire (5-byte header + payload). *)

val cell_header_bytes : int
val aal5_trailer_bytes : int

val cells_of_len : int -> int
(** Cells needed for a frame of the given payload length. A frame that
    fits one payload is a single cell; larger frames pay an AAL5-style
    8-byte trailer. The empty frame still costs one cell. *)

val wire_bytes_of_len : int -> int

val words_of_len : int -> int
(** 32-bit words touched by programmed I/O to copy [len] bytes. *)

val checksum : bytes -> int
(** The modeled AAL5 trailer CRC over a frame payload: any single
    corrupted byte changes it. Free in simulated time. *)

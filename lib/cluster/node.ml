(* A cluster workstation: CPU, NIC, address spaces, and the inbound
   protocol demultiplexer.

   Protocols (remote memory, RPC) claim tag bytes; the node runs one
   receive-dispatcher process that reads each frame's leading tag byte
   and hands the frame to the owning protocol.  By convention a handler
   performs only bounded, interrupt-level work inline (charging the CPU
   as it goes) and spawns processes for anything longer, so the
   dispatcher is never blocked behind a long service. *)

type handler = src:Atm.Addr.t -> bytes -> unit

type t = {
  addr : Atm.Addr.t;
  engine : Sim.Engine.t;
  costs : Costs.t;
  cpu : Cpu.t;
  nic : Atm.Nic.t;
  spaces : (int, Address_space.t) Hashtbl.t;
  mutable next_asid : int;
  handlers : (int, handler) Hashtbl.t;
  prng : Sim.Prng.t;
  mutable started : bool;
  mutable down : bool;
}

let create engine ~costs ~nic ~prng =
  {
    addr = Atm.Nic.addr nic;
    engine;
    costs;
    cpu = Cpu.create ~name:(Atm.Addr.to_string (Atm.Nic.addr nic)) ();
    nic;
    spaces = Hashtbl.create 8;
    next_asid = 1;
    handlers = Hashtbl.create 8;
    prng;
    started = false;
    down = false;
  }

let addr t = t.addr
let engine t = t.engine
let costs t = t.costs
let cpu t = t.cpu
let nic t = t.nic
let prng t = t.prng

let spawn ?name t body = Sim.Proc.spawn ?name t.engine body

let new_address_space t =
  let asid = t.next_asid in
  t.next_asid <- asid + 1;
  let space = Address_space.create ~asid () in
  Hashtbl.replace t.spaces asid space;
  space

let address_space t asid = Hashtbl.find_opt t.spaces asid

let set_handler t ~tag handler =
  if tag < 0 || tag > 255 then invalid_arg "Node.set_handler: tag out of range";
  if Hashtbl.mem t.handlers tag then
    invalid_arg "Node.set_handler: tag already claimed";
  Hashtbl.replace t.handlers tag handler

let transmit ?ctx t ~dst payload = Atm.Nic.transmit ?ctx t.nic ~dst payload

let set_down t down = t.down <- down
let is_down t = t.down

let dispatch t frame =
  let payload = Atm.Frame.payload frame in
  if Bytes.length payload = 0 then failwith "Node.dispatch: empty frame";
  let tag = Char.code (Bytes.get payload 0) in
  match Hashtbl.find_opt t.handlers tag with
  | Some handler ->
      (* The frame's trace context is visible to serve-side hooks for
         exactly the synchronous prefix of the handler — the
         interrupt-level work done before any spawn or block. *)
      let node = Atm.Addr.to_int t.addr in
      Obs.Trace.dispatch_begin ~node (Atm.Frame.ctx frame);
      handler ~src:(Atm.Frame.src frame) payload;
      Obs.Trace.dispatch_end ~node
  | None ->
      failwith
        (Printf.sprintf "%s: no protocol handler for tag 0x%02x"
           (Atm.Addr.to_string t.addr) tag)

let start t =
  if not t.started then begin
    t.started <- true;
    spawn t ~name:(Atm.Addr.to_string t.addr ^ " rx-dispatcher") (fun () ->
        while true do
          let frame = Atm.Nic.receive t.nic in
          (* A crashed node absorbs frames without reacting; the paper's
             failure-detection story is timeouts at the peers. *)
          if not t.down then dispatch t frame
        done)
  end

(** One-call construction of a complete simulated cluster: engine,
    network, and started nodes. *)

type t

val create :
  ?costs:Costs.t ->
  ?config:Atm.Config.t ->
  ?topology:Atm.Network.topology ->
  ?seed:int ->
  nodes:int ->
  unit ->
  t

val engine : t -> Sim.Engine.t
val network : t -> Atm.Network.t
val costs : t -> Costs.t
val node : t -> int -> Node.t
val nodes : t -> Node.t list
val size : t -> int

val node_of_addr : t -> Atm.Addr.t -> Node.t option
(** Constant-time (hash-indexed) lookup of the node owning a network
    address — the fabric-scale replacement for scanning {!nodes}. *)

val run : t -> (unit -> 'a) -> 'a
(** Run a body as a process and drive the simulation to quiescence
    (see {!Sim.Proc.run}). *)

(* Same-machine, cross-address-space procedure call.

   The paper's structure keeps control transfer local: clients talk to a
   server clerk on their own machine through a lightweight RPC in the
   style of LRPC [Bershad et al. 1990].  We model it as one CPU charge in
   each direction around the callee's execution.

   Monitors compose: the legacy [set_monitor] slot and any number of
   [add_monitor] registrations all observe every call, so the race
   monitor and the tracer can be attached at the same time instead of
   fighting over a single last-writer-wins hook. *)

type monitor_id = int

let legacy : (Node.t -> unit) option ref = ref None
let registered : (monitor_id * (Node.t -> unit)) list ref = ref []
let next_id = ref 0

let set_monitor m = legacy := m

let add_monitor f =
  incr next_id;
  let id = !next_id in
  registered := (id, f) :: !registered;
  id

let remove_monitor id =
  registered := List.filter (fun (i, _) -> i <> id) !registered

let live_monitor_count () = List.length !registered

let notify node =
  (match !legacy with None -> () | Some observe -> observe node);
  match !registered with
  | [] -> ()
  | ms -> List.iter (fun (_, f) -> f node) ms

let call node ?(category = Cpu.cat_client) f arg =
  notify node;
  let span = Obs.Trace.lrpc_begin ~node:(Atm.Addr.to_int (Node.addr node)) in
  let half = (Node.costs node).Costs.lrpc_half in
  Cpu.use (Node.cpu node) ~category half;
  let result = f arg in
  Cpu.use (Node.cpu node) ~category half;
  Obs.Trace.span_end_opt span;
  result

(* Same-machine, cross-address-space procedure call.

   The paper's structure keeps control transfer local: clients talk to a
   server clerk on their own machine through a lightweight RPC in the
   style of LRPC [Bershad et al. 1990].  We model it as one CPU charge in
   each direction around the callee's execution. *)

let monitor : (Node.t -> unit) option ref = ref None
let set_monitor m = monitor := m

let call node ?(category = Cpu.cat_client) f arg =
  (match !monitor with None -> () | Some observe -> observe node);
  let half = (Node.costs node).Costs.lrpc_half in
  Cpu.use (Node.cpu node) ~category half;
  let result = f arg in
  Cpu.use (Node.cpu node) ~category half;
  result

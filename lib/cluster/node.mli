(** A cluster workstation: CPU, NIC, address spaces, and the inbound
    protocol demultiplexer.

    Protocols claim tag bytes (the first byte of every frame payload);
    the node's receive-dispatcher process routes each inbound frame to
    the owning protocol's handler. Handlers do bounded interrupt-level
    work inline and spawn processes for longer service. *)

type t

type handler = src:Atm.Addr.t -> bytes -> unit

val create :
  Sim.Engine.t -> costs:Costs.t -> nic:Atm.Nic.t -> prng:Sim.Prng.t -> t

val addr : t -> Atm.Addr.t
val engine : t -> Sim.Engine.t
val costs : t -> Costs.t
val cpu : t -> Cpu.t
val nic : t -> Atm.Nic.t
val prng : t -> Sim.Prng.t

val spawn : ?name:string -> t -> (unit -> unit) -> unit
(** Start a process on this node (scheduling only; does not consume CPU). *)

val new_address_space : t -> Address_space.t
val address_space : t -> int -> Address_space.t option

val set_handler : t -> tag:int -> handler -> unit
(** Claim a protocol tag byte. Raises [Invalid_argument] if already
    claimed or out of [0..255]. *)

val transmit : ?ctx:Obs.Ctx.t -> t -> dst:Atm.Addr.t -> bytes -> unit
(** Hand a payload (whose first byte must be a claimed-by-someone tag on
    the receiving side) to the NIC. [ctx] rides the frame for tracing. *)

val start : t -> unit
(** Start the receive dispatcher. Idempotent. *)

val set_down : t -> bool -> unit
(** Crash (or revive) the node: while down, inbound frames are absorbed
    without any reaction, so peers observe the failure only through
    timeouts — the paper's failure-detection model. *)

val is_down : t -> bool

(** Same-machine, cross-address-space procedure call (LRPC-style).

    The paper's structure keeps control transfer local: a client talks to
    the server clerk on its own machine through this mechanism. Modeled
    as one CPU charge in each direction around the callee. *)

val call : Node.t -> ?category:string -> ('a -> 'b) -> 'a -> 'b
(** [call node f arg] charges half the LRPC round-trip, runs [f arg]
    (which may block or consume CPU), charges the other half, and
    returns the result. Must run within a simulation process. *)

val set_monitor : (Node.t -> unit) option -> unit
(** Instrumentation hook for the analysis layer, invoked with the node
    at every {!call} entry (a same-node synchronization point). Global,
    like the mechanism itself is stateless; no-cost no-op when unset. *)

(** Same-machine, cross-address-space procedure call (LRPC-style).

    The paper's structure keeps control transfer local: a client talks to
    the server clerk on its own machine through this mechanism. Modeled
    as one CPU charge in each direction around the callee. *)

val call : Node.t -> ?category:string -> ('a -> 'b) -> 'a -> 'b
(** [call node f arg] charges half the LRPC round-trip, runs [f arg]
    (which may block or consume CPU), charges the other half, and
    returns the result. Must run within a simulation process. *)

val set_monitor : (Node.t -> unit) option -> unit
(** Legacy single-slot instrumentation hook, invoked with the node at
    every {!call} entry (a same-node synchronization point). Kept for
    existing callers; composes with {!add_monitor} registrations rather
    than replacing them. No-cost no-op when nothing is attached. *)

type monitor_id

val add_monitor : (Node.t -> unit) -> monitor_id
(** Register an additional call-entry observer. Any number may be live
    at once, alongside the {!set_monitor} slot. *)

val remove_monitor : monitor_id -> unit
(** Deregister; unknown ids are ignored. *)

val live_monitor_count : unit -> int
(** Number of {!add_monitor} registrations not yet removed — the
    analyzer's monitor-leak lint compares this against its baseline. *)

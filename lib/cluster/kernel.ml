(* Generic kernel-path helpers: syscall entry, thread dispatch. *)

let syscall node ?(category = Cpu.cat_emulation) ~name body =
  let span =
    Obs.Trace.scoped_begin
      ~node:(Atm.Addr.to_int (Node.addr node))
      ~name ~cat:"syscall"
  in
  Cpu.use (Node.cpu node) ~category (Node.costs node).Costs.syscall;
  let result = body () in
  Obs.Trace.span_end_opt span;
  result

let dispatch_thread node ?(category = Cpu.cat_control_transfer) body =
  (* Schedule a thread: pay the context switch on this CPU, then run the
     thread body as its own process. *)
  Node.spawn node (fun () ->
      Cpu.use (Node.cpu node) ~category (Node.costs node).Costs.context_switch;
      body ())

let context_switch node ?(category = Cpu.cat_control_transfer) () =
  Cpu.use (Node.cpu node) ~category (Node.costs node).Costs.context_switch

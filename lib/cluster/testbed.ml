(* One-call construction of a complete simulated cluster.

   Node lookup by network address goes through a hash index rather than
   a linear scan: fabric-scale testbeds (hundreds of nodes over a Clos
   or fat tree) resolve addresses on hot paths — the fault plane, gauge
   wiring, per-frame delivery hooks — and an O(n) scan there turns
   quadratic with the node count. *)

type t = {
  engine : Sim.Engine.t;
  network : Atm.Network.t;
  nodes : Node.t array;
  by_addr : (int, Node.t) Hashtbl.t;
  costs : Costs.t;
}

let create ?(costs = Costs.default) ?(config = Atm.Config.default)
    ?(topology = Atm.Network.Back_to_back) ?(seed = 42) ~nodes:count () =
  let engine = Sim.Engine.create () in
  let network = Atm.Network.create ~config ~topology engine ~nodes:count in
  let root_prng = Sim.Prng.create seed in
  let by_addr = Hashtbl.create (2 * count) in
  let nodes =
    Array.init count (fun i ->
        let nic = Atm.Network.nic_of_int network i in
        let node =
          Node.create engine ~costs ~nic ~prng:(Sim.Prng.split root_prng)
        in
        Node.start node;
        Hashtbl.replace by_addr (Atm.Addr.to_int (Node.addr node)) node;
        node)
  in
  { engine; network; nodes; by_addr; costs }

let engine t = t.engine
let network t = t.network
let costs t = t.costs
let node t i = t.nodes.(i)
let nodes t = Array.to_list t.nodes
let size t = Array.length t.nodes

let node_of_addr t addr = Hashtbl.find_opt t.by_addr (Atm.Addr.to_int addr)

let run t body = Sim.Proc.run t.engine body

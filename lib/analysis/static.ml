(* Re-export of the static protocol verifier so clients write
   [Analysis.Static.Verify.check] alongside the dynamic checkers. *)

module Interval = Analysis_static.Interval
module Finding = Analysis_static.Finding
module Verify = Analysis_static.Verify
module Pipesafe = Analysis_static.Pipesafe

type seg_key = { home : int; seg : int; gen : int }

type kind = Load | Store | Atomic

type origin = Meta of Rmem.Rights.op | Local | Svm

type t = {
  id : int;
  agent : int;
  agent_name : string;
  key : seg_key;
  seg_name : string;
  kind : kind;
  off : int;
  count : int;
  time : Sim.Time.t;
  stamp : Vclock.t;
  mutable vis : Vclock.t list;
  origin : origin;
}

let is_write a = match a.kind with Store | Atomic -> true | Load -> false

let overlaps a b =
  a.key = b.key && a.count > 0 && b.count > 0
  && a.off < b.off + b.count
  && b.off < a.off + a.count

let ordered_before a b = List.exists (fun v -> Vclock.leq v b.stamp) a.vis

let key_to_string k =
  if k.seg < 0 then Printf.sprintf "svm@node%d" k.home
  else Printf.sprintf "node%d/seg%d.g%d" k.home k.seg k.gen

let kind_to_string = function
  | Load -> "load"
  | Store -> "store"
  | Atomic -> "cas"

let describe a =
  Printf.sprintf "%s %s [%d..%d) of %s (%s) at %s" a.agent_name
    (kind_to_string a.kind) a.off (a.off + a.count) a.seg_name
    (key_to_string a.key)
    (Sim.Time.to_string a.time)

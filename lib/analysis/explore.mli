(** Stateless model checking of the example workloads over the sim
    engine's same-instant choice points.

    Every schedule is a fresh execution of {!Scenarios.prepare}d
    workload, driven event by event; at each instant with two or more
    enabled events the explorer picks an order, enumerating
    alternatives depth-first.  Three reductions keep the enumeration
    tractable:

    - {b dynamic partial-order reduction}: an alternative is deferred
      only when the memory accesses of its causal cone (the event plus
      everything it transitively schedules, taken from the observed
      run) conflict with another enabled event's cone under the PR-1
      dependence relation — overlapping bytes of one segment, not both
      loads;
    - {b sleep sets}: alternatives already explored at a choice point
      stay asleep in sibling branches until a conflicting access fires;
    - {b trace-equivalence hashing}: runs whose access traces have the
      same Foata normal form are explored once.

    Each distinct execution is checked for deadlock (drained queue,
    unfinished workload — reported with the engine's blocked-waiter
    registry), uncaught exceptions, divergence, workload invariant
    violations, linearizability of the captured operation history
    ({!Linearize} over {!Monitor.history}), and — relative to the FIFO
    baseline — new races and new lint findings.  Failures carry a
    {!Schedule.t} certificate that {!replay} re-executes
    deterministically. *)

type config = {
  budget : int;  (** maximum schedules to execute *)
  max_depth : int;  (** branch at most this many choice points deep *)
  max_events : int;  (** per-run step bound; beyond it a run diverged *)
}

val default_config : config
(** 2000 schedules, depth 64, 50k events per run. *)

type failure =
  | Deadlock of string  (** the engine's blocked-waiter report *)
  | Exception of string
  | Diverged
  | Invariant_violated of string  (** the violated invariant's name *)
  | Non_linearizable of string
      (** {!Linearize} found no valid linearization of the execution's
          operation history; carries the minimized witness *)
  | New_race of string  (** a race the FIFO baseline does not have *)
  | New_finding of string  (** a lint rule the FIFO baseline does not fire *)

val describe_failure : failure -> string
val failure_kind : failure -> string
(** Short tag: ["deadlock"], ["exception"], ["diverged"],
    ["invariant"], ["linearizability"], ["race"], ["finding"]. *)

type outcome = {
  schedule : Schedule.t;  (** certificate reproducing this execution *)
  choice_points : int;
  failure : failure option;
}

type stats = {
  mutable executed : int;  (** schedules actually run *)
  mutable distinct : int;  (** distinct trace-equivalence classes *)
  mutable redundant : int;  (** hash-pruned duplicate executions *)
  mutable pruned_dpor : int;  (** alternatives proven independent *)
  mutable pruned_sleep : int;  (** alternatives asleep from a sibling *)
  mutable deferred : int;  (** alternatives queued for exploration *)
  mutable failing : int;  (** distinct failing schedules *)
  mutable max_choice_points : int;
  mutable budget_exhausted : bool;
}

type result = {
  workload : string;
  stats : stats;
  baseline : outcome;  (** the FIFO schedule's outcome *)
  failures : outcome list;  (** first failing schedules, capped at 16 *)
}

exception Certificate_mismatch of string
(** A replayed certificate disagreed with the run it directs (wrong
    enabled count at a choice point). *)

val explore : ?config:config -> string -> result
(** [explore name] — exhaustively explore the workload's schedules
    within the configured bounds. Raises [Invalid_argument] on an
    unknown workload name. *)

val replay : ?config:config -> string -> Schedule.t -> outcome
(** Re-execute one certified schedule (plus the FIFO baseline, for the
    differential race/finding classification) and report its outcome.
    Deterministic: the same certificate always reproduces the same
    failure. *)

type finding = {
  rule : string;
  agent : string;
  key : Access.seg_key;
  detail : string;
}

let poll_threshold = 8

let rule_of_status = function
  | Rmem.Status.Stale_generation -> Some "stale-generation"
  | Rmem.Status.Bad_segment -> Some "revoked-segment"
  | Rmem.Status.Protection -> Some "rights"
  | Rmem.Status.Bounds -> Some "bounds"
  | Rmem.Status.Write_inhibited -> Some "write-inhibit"
  | Rmem.Status.Unpinned -> Some "unpinned"
  | _ -> None

let op_name = function
  | Rmem.Rights.Read_op -> "READ"
  | Rmem.Rights.Write_op -> "WRITE"
  | Rmem.Rights.Cas_op -> "CAS"

let check ?(fault_capable = false) monitor =
  let findings = ref [] in
  let seen = Hashtbl.create 16 in
  let add rule agent key detail =
    if not (Hashtbl.mem seen (rule, agent, key)) then begin
      Hashtbl.replace seen (rule, agent, key) ();
      findings := { rule; agent; key; detail } :: !findings
    end
  in
  (* Rejections the protocol absorbed — a stale descriptor retried, a
     rights probe, an out-of-bounds request, a dropped write. *)
  List.iter
    (fun (r : Monitor.rejection) ->
      match rule_of_status r.status with
      | None -> ()
      | Some rule ->
          let site = match r.site with `Issue -> "locally" | `Serve -> "at the exporter" in
          add rule r.agent_name r.key
            (Printf.sprintf "%s [%d..%d) rejected %s: %s" (op_name r.op)
               r.off (r.off + r.count) site
               (Rmem.Status.to_string r.status)))
    (Monitor.rejections monitor);
  (* Notify-policy misuse: a reader hammering one location of a segment
     whose policy can never notify it is polling where the control-
     transfer machinery was the point. *)
  let polls = Hashtbl.create 16 in
  List.iter
    (fun (a : Access.t) ->
      match (a.kind, a.origin) with
      | Access.Load, Access.Meta Rmem.Rights.Read_op ->
          let k = (a.agent_name, a.key, a.off, a.count) in
          Hashtbl.replace polls k
            (1 + Option.value (Hashtbl.find_opt polls k) ~default:0)
      | _ -> ())
    (Monitor.accesses monitor);
  Hashtbl.iter
    (fun (agent, key, off, count) n ->
      if n >= poll_threshold then
        match Monitor.policy_of monitor key with
        | Some Rmem.Segment.Never ->
            add "poll-never" agent key
              (Printf.sprintf
                 "%d identical READs of [%d..%d) on a notify:never segment"
                 n off (off + count))
        | Some (Rmem.Segment.Always | Rmem.Segment.Conditional) | None -> ())
    polls;
  (* The dual misuse: bulk WRITEs into a notify:always segment raise a
     control transfer per burst — the sender should have asked for
     notify:conditional and a single doorbell. *)
  let storms = Hashtbl.create 16 in
  List.iter
    (fun (a : Access.t) ->
      match (a.kind, a.origin) with
      | Access.Store, Access.Meta Rmem.Rights.Write_op -> (
          match Monitor.policy_of monitor a.key with
          | Some Rmem.Segment.Always ->
              let k = (a.agent_name, a.key) in
              Hashtbl.replace storms k
                (1 + Option.value (Hashtbl.find_opt storms k) ~default:0)
          | Some (Rmem.Segment.Never | Rmem.Segment.Conditional) | None -> ())
      | _ -> ())
    (Monitor.accesses monitor);
  Hashtbl.iter
    (fun (agent, key) n ->
      if n >= poll_threshold then
        add "notify-storm" agent key
          (Printf.sprintf
             "%d WRITE bursts served on a notify:always segment (one \
              notification each)"
             n))
    storms;
  (* Spinning on a lock word: a long run of failed CAS with no backoff
     pause and no other traffic is the paper's anti-idiom — retry with
     backoff, or hand the word a notification. *)
  List.iter
    (fun ((agent, key, off), worst) ->
      if worst >= poll_threshold then
        add "unbounded-retry" agent key
          (Printf.sprintf
             "%d consecutive failed CAS on word %d with no backoff" worst off))
    (Monitor.worst_cas_retries monitor);
  (* A monitor registered with Lrpc.add_monitor and never removed
     outlives its workload and taxes every later call on the machine —
     the composing-monitors API's version of an fd leak. *)
  let leaked = Monitor.leaked_lrpc_monitors monitor in
  if leaked > 0 then
    add "monitor-leak" "lrpc"
      { Access.home = -1; seg = -1; gen = -1 }
      (Printf.sprintf
         "%d LRPC monitor(s) registered via add_monitor but never removed"
         leaked);
  (* On a fault-capable path every remote op needs a recovery policy:
     a bare read_wait that was merely lucky under loss is a hang (or a
     raised Timeout nobody converts into a retry) waiting to happen. *)
  if fault_capable then
    List.iter
      (fun ((agent, key, op), n) ->
        add "no-retry-policy" agent key
          (Printf.sprintf "%d %s issued without a recovery policy" n
             (op_name op)))
      (Monitor.unpolicied_issues monitor);
  List.rev !findings

let describe f =
  Printf.sprintf "[%s] %s on %s: %s" f.rule f.agent
    (Access.key_to_string f.key)
    f.detail

(* Client-observed operation histories, captured from the monitor's
   event stream.  Everything here is bookkeeping; the one memory-model
   subtlety is *when* values are read: [record_serve] runs in the same
   atomic step as the serve, right after the deposit, so the word values
   it reads are exactly what the operation wrote / the reply carried.
   That makes the capture-order replay of any purely physical history a
   valid linearization (see DESIGN §13) — violations can only come from
   logical scopes whose claimed result disagrees with their physical
   operations. *)

type value = Known of int32 | Unknown

type operation =
  | Read of value
  | Write of value
  | Cas of {
      expected : int32;
      desired : int32;
      success : bool;
      witness : value;
    }

type cell = { key : Access.seg_key; word : int }

type event = {
  id : int;
  agent : string;
  cell : cell;
  op : operation;
  inv : Sim.Time.t;
  mutable resp : Sim.Time.t option;
  logical : bool;
}

type t = {
  mutable events : event list; (* newest first *)
  mutable next_id : int;
  snapshots : (Access.seg_key, bytes) Hashtbl.t;
  scopes : (string, Sim.Time.t) Hashtbl.t; (* open logical scopes *)
  excluded : (Access.seg_key, unit) Hashtbl.t;
}

let create () =
  {
    events = [];
    next_id = 0;
    snapshots = Hashtbl.create 8;
    scopes = Hashtbl.create 4;
    excluded = Hashtbl.create 4;
  }

let exclude t ~key = Hashtbl.replace t.excluded key ()
let is_excluded t ~key = Hashtbl.mem t.excluded key

let events t = List.rev t.events

let word_size = 4

let init_value t cell =
  match Hashtbl.find_opt t.snapshots cell.key with
  | Some snap when cell.word >= 0 && cell.word + word_size <= Bytes.length snap
    ->
      (* Little-endian, matching {!Cluster.Address_space.read_word}. *)
      Known (Bytes.get_int32_le snap cell.word)
  | _ -> Unknown

let note_export t ~key segment =
  Hashtbl.replace t.snapshots key
    (Cluster.Address_space.read
       (Rmem.Segment.space segment)
       ~addr:(Rmem.Segment.base segment)
       ~len:(Rmem.Segment.length segment))

let add t ~agent ~cell ~op ~inv ~resp ~logical =
  let e = { id = t.next_id; agent; cell; op; inv; resp; logical } in
  t.next_id <- t.next_id + 1;
  t.events <- e :: t.events;
  e

(* The word-aligned cells [off, off+count) touches, each flagged fully
   covered or not.  Partial coverage yields Unknown values: the reply
   (or deposit) moved only some of the word's bytes. *)
let covered_cells ~key ~off ~count =
  if count <= 0 then []
  else begin
    let first = off / word_size * word_size in
    let last = (off + count - 1) / word_size * word_size in
    let rec go w acc =
      if w < first then acc
      else
        let full = w >= off && w + word_size <= off + count in
        go (w - word_size) (({ key; word = w }, full) :: acc)
    in
    go last []
  end

type handle = event list

let no_handle = []

let read_cell segment cell =
  Known
    (Cluster.Address_space.read_word
       (Rmem.Segment.space segment)
       ~addr:(Rmem.Segment.base segment + cell.word))

let record_serve t ~agent ~key ~segment ~op ~off ~count ~cas ~cas_success ~inv
    ~now =
  if Hashtbl.mem t.scopes agent || Hashtbl.mem t.excluded key then no_handle
  else
    match op with
    | Rmem.Rights.Cas_op ->
        let cell = { key; word = off / word_size * word_size } in
        let success = cas_success = Some true in
        let expected, desired =
          match cas with Some (e, d) -> (e, d) | None -> (0l, 0l)
        in
        (* A successful CAS observed its expected value; a failed one
           left memory untouched, so the post-serve word is the witness
           the reply carries. *)
        let witness =
          if success then Known expected else read_cell segment cell
        in
        let op = Cas { expected; desired; success; witness } in
        [ add t ~agent ~cell ~op ~inv ~resp:None ~logical:false ]
    | Rmem.Rights.Read_op ->
        List.map
          (fun (cell, full) ->
            let v = if full then read_cell segment cell else Unknown in
            add t ~agent ~cell ~op:(Read v) ~inv ~resp:None ~logical:false)
          (covered_cells ~key ~off ~count)
    | Rmem.Rights.Write_op ->
        (* Unacknowledged: the deposit is the whole observable effect,
           so the event completes on the spot. *)
        List.iter
          (fun (cell, full) ->
            let v = if full then read_cell segment cell else Unknown in
            ignore
              (add t ~agent ~cell ~op:(Write v) ~inv ~resp:(Some now)
                 ~logical:false))
          (covered_cells ~key ~off ~count);
        no_handle

let complete _t handle ~now =
  List.iter (fun e -> if e.resp = None then e.resp <- Some now) handle

let record_local t ~agent ~key ~kind ~off ~count ?value ~now () =
  if not (Hashtbl.mem t.scopes agent || Hashtbl.mem t.excluded key) then
    List.iter
      (fun (cell, full) ->
        let v =
          match value with Some v when full -> Known v | _ -> Unknown
        in
        let op = match kind with `Load -> Read v | `Store -> Write v in
        ignore (add t ~agent ~cell ~op ~inv:now ~resp:(Some now) ~logical:false))
      (covered_cells ~key ~off ~count)

let scope_begin t ~agent ~now =
  if Hashtbl.mem t.scopes agent then
    invalid_arg "History.scope_begin: scope already open";
  Hashtbl.replace t.scopes agent now

let scope_end t ~agent ~cell ~op ~now =
  match Hashtbl.find_opt t.scopes agent with
  | None -> invalid_arg "History.scope_end: no open scope"
  | Some inv ->
      Hashtbl.remove t.scopes agent;
      ignore (add t ~agent ~cell ~op ~inv ~resp:(Some now) ~logical:true)

let value_to_string = function
  | Known v -> Int32.to_string v
  | Unknown -> "?"

let op_to_string = function
  | Read v -> Printf.sprintf "READ -> %s" (value_to_string v)
  | Write v -> Printf.sprintf "WRITE %s" (value_to_string v)
  | Cas { expected; desired; success; witness } ->
      Printf.sprintf "CAS(%ld->%ld) %s w=%s" expected desired
        (if success then "ok" else "fail")
        (value_to_string witness)

let cell_to_string cell =
  Printf.sprintf "%s+%d" (Access.key_to_string cell.key) cell.word

let event_to_string e =
  Printf.sprintf "%s %s %s [%s, %s]%s" e.agent (cell_to_string e.cell)
    (op_to_string e.op) (Sim.Time.to_string e.inv)
    (match e.resp with Some r -> Sim.Time.to_string r | None -> "pending")
    (if e.logical then " (logical)" else "")

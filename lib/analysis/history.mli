(** Operation histories for linearizability checking.

    A history is the client-observed record of every completed
    shared-memory operation: one event per (operation, word cell), with
    an invocation/response sim-time interval and the operation's
    arguments and observed result. {!Monitor} feeds it from the existing
    {!Rmem.Remote_memory} monitor events — the data path itself carries
    no new instrumentation.

    Events are recorded at {e serve} time, when the operation touched
    the exporter's memory, so every event in a history actually took
    effect; an operation whose reply never arrived stays {e pending}
    ([resp = None]) and may be linearized anywhere after its
    invocation. Values are captured by reading the exporter's memory in
    the same atomic step as the serve: a word only partially covered by
    an operation gets an {!Unknown} value, which constrains nothing.

    Histories are word-granular by construction, which is what makes the
    checker P-compositional: linearizability of the whole history is
    exactly linearizability of every per-cell sub-history
    ({!Linearize}). *)

type value =
  | Known of int32
  | Unknown
      (** unobserved (partial-word access, local/svm touch without a
          recorded value): reads constrain nothing, writes clobber the
          cell to an unconstrained state *)

type operation =
  | Read of value  (** the value the reply carried *)
  | Write of value  (** the word value the deposit left in memory *)
  | Cas of {
      expected : int32;
      desired : int32;
      success : bool;
      witness : value;  (** the word value the reply carried *)
    }

type cell = { key : Access.seg_key; word : int }
(** One unit of linearizable state: a word-aligned byte offset within a
    shared region. *)

type event = {
  id : int;  (** capture order — the effect (serve) order *)
  agent : string;  (** issuing agent, [Monitor]'s per-node name *)
  cell : cell;
  op : operation;
  inv : Sim.Time.t;  (** invocation: when the issuer trapped *)
  mutable resp : Sim.Time.t option;
      (** response: when the issuer learned the outcome (reply
          completion; for unacknowledged WRITEs, the deposit itself).
          [None] while pending — such an event precedes nothing. *)
  logical : bool;  (** recorded through {!scope_end}, not a wire op *)
}

type t

val create : unit -> t

val events : t -> event list
(** All captured events, in capture (= effect) order. *)

val init_value : t -> cell -> value
(** The cell's value when its region was exported ({!note_export}
    snapshots the segment), or [Unknown] for unexported regions. *)

(** {1 Capture (driven by {!Monitor})} *)

val note_export : t -> key:Access.seg_key -> Rmem.Segment.t -> unit
(** Snapshot the segment's memory as the initial value of its cells. *)

val exclude : t -> key:Access.seg_key -> unit
(** Drop all events on the segment: its operation history is incomplete
    by design (the home node mutates it outside the monitor's view, as
    the name-service clerk does with its well-known segments), so
    checking it would report phantom violations. *)

val is_excluded : t -> key:Access.seg_key -> bool

type handle
(** Pending events from one serve, awaiting their response time. *)

val no_handle : handle

val record_serve :
  t ->
  agent:string ->
  key:Access.seg_key ->
  segment:Rmem.Segment.t ->
  op:Rmem.Rights.op ->
  off:int ->
  count:int ->
  cas:(int32 * int32) option ->
  cas_success:bool option ->
  inv:Sim.Time.t ->
  now:Sim.Time.t ->
  handle
(** Record one served meta-instruction (one event per covered word
    cell), reading observed values from the segment's memory — must be
    called in the same atomic step as the serve. WRITE events complete
    immediately ([resp = now]); READ/CAS events stay pending until
    {!complete}. Inside an open {!scope_begin} for [agent], physical
    events are suppressed ([no_handle]). *)

val complete : t -> handle -> now:Sim.Time.t -> unit
(** The serve's reply reached the issuer: fill the response times. *)

val record_local :
  t ->
  agent:string ->
  key:Access.seg_key ->
  kind:[ `Load | `Store ] ->
  off:int ->
  count:int ->
  ?value:int32 ->
  now:Sim.Time.t ->
  unit ->
  unit
(** A direct local (or svm) touch of shared memory: an instantaneous
    event per covered cell ([inv = resp = now]). Without [value] the
    cells record {!Unknown}; with it, a single fully-covered word
    records [Known value]. *)

(** {1 Logical operations}

    A retrying client protocol (e.g. a CAS reissued on a lost reply) is
    {e one} operation to its caller even when it put several requests on
    the wire. A scope replaces the physical events of one agent with a
    single logical event carrying the wrapper's observed result — the
    history then checks the protocol's client-facing contract, which is
    exactly where lost-reply double-apply bugs live. *)

val scope_begin : t -> agent:string -> now:Sim.Time.t -> unit
(** Open a logical scope: suppress [agent]'s physical events until
    {!scope_end}. Scopes do not nest. *)

val scope_end :
  t -> agent:string -> cell:cell -> op:operation -> now:Sim.Time.t -> unit
(** Close the scope with one logical event: [inv] = the scope's begin
    time, [resp = now]. *)

(** {1 Pretty-printing} *)

val value_to_string : value -> string
val op_to_string : operation -> string
val cell_to_string : cell -> string
val event_to_string : event -> string

(** Compact, deterministic replays of the repository's example
    workloads, run under the monitor. Shared by [bin/racecheck],
    [bin/modelcheck] and the test suite.

    - [kv_store]: two clients write/fence/read their own slots of a
      server table. Clean.
    - [producer_consumer]: two producers feed a consumer ring with CAS
      ticket claims and notify doorbells; the consumer touches exactly
      the slot each notification names. Clean.
    - [file_service]: two clients update the {e same} block under a CAS
      lock, fencing their writes before releasing. Clean.
    - [file_service_nofence]: the same workload without the fence — the
      unacknowledged WRITEs may still be in flight when the lock moves
      on, exactly the hazard the paper's fence idiom exists for. Races.
    - [name_service]: lookup via the name service, then a revoke /
      re-export makes a retained descriptor stale, and a client
      read-polls a notify:never status segment. Lint findings, no
      races.
    - [racy]: two unsynchronized writers to one range. Races.
    - [torn_record]: a single-node two-word record updated and read
      non-atomically. Clean under FIFO and invisible to the race
      detector (one node, one agent); an adversarial same-instant
      schedule tears the reader's snapshot.
    - [cas_missing_release]: a CAS lock whose first-attempt-win fast
      path forgets the release and the baton handoff. Clean under FIFO;
      an adversarial schedule deadlocks two processes.
    - [dds_register_no_writeback]: the dds ABD register with the
      read's write-back phase disabled, driven through partial-majority
      quorums. Clean under FIFO; an adversarial schedule serves a
      reader's collect before a committed writer's claim and two
      sequential reads return new-then-old — non-linearizable. *)

type expectation = { races : bool; findings : bool }

type prep = {
  testbed : Cluster.Testbed.t;
  monitor : Monitor.t;
  finished : unit -> bool;
      (** did the workload's main process reach its end *)
  invariants : (string * (unit -> bool)) list;
      (** named workload-state predicates, checked after a completed
          run *)
  teardown : unit -> unit;
      (** detach global hooks; call once per prepared run *)
}

val all : string list

val checked : string list
(** The workloads [bin/modelcheck] explores: the four clean examples
    plus the two seeded schedule bugs. *)

val seeded_bugs : string list
(** FIFO-clean workloads that fail only under adversarial schedules. *)

val expectation : string -> expectation
(** Single-schedule (FIFO) expectation. Raises [Invalid_argument] on an
    unknown workload name. *)

val program : string -> Workload.Program.t option
(** The scenario's declared access program ({!Workload.Programs}),
    checked statically by [protocheck]. [None] for unknown names. *)

val prepare : string -> prep
(** Build a fresh testbed, attach a monitor, and spawn the workload
    without running it: the caller drives the engine — [Sim.Engine.run]
    for a normal run, or event by event under a model-checker schedule.
    Raises [Invalid_argument] on an unknown name. *)

val run : string -> Monitor.t
(** [prepare], run the engine to quiescence under the default FIFO
    order, tear down, and return the monitor for checking. Identical to
    the historical single-call behavior. *)

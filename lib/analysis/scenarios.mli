(** Compact, deterministic replays of the repository's example
    workloads, run under the monitor. Shared by [bin/racecheck] and the
    test suite.

    - [kv_store]: two clients write/fence/read their own slots of a
      server table. Clean.
    - [producer_consumer]: two producers feed a consumer ring with CAS
      ticket claims and notify doorbells; the consumer touches exactly
      the slot each notification names. Clean.
    - [file_service]: two clients update the {e same} block under a CAS
      lock, fencing their writes before releasing. Clean.
    - [file_service_nofence]: the same workload without the fence — the
      unacknowledged WRITEs may still be in flight when the lock moves
      on, exactly the hazard the paper's fence idiom exists for. Races.
    - [name_service]: lookup via the name service, then a revoke /
      re-export makes a retained descriptor stale, and a client
      read-polls a notify:never status segment. Lint findings, no
      races.
    - [racy]: two unsynchronized writers to one range. Races. *)

type expectation = { races : bool; findings : bool }

val all : string list

val expectation : string -> expectation
(** Raises [Invalid_argument] on an unknown workload name. *)

val run : string -> Monitor.t
(** Build a fresh testbed, attach a monitor, replay the workload to
    quiescence, and return the monitor for checking. Raises
    [Invalid_argument] on an unknown name. *)

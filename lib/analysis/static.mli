(** Static protocol verification — abstract interpretation of
    {!Workload.Program} meta-instruction programs, surfaced next to the
    dynamic checkers ({!Explore}, {!Monitor}, {!Lint}).

    The static pass proves rights/bounds at map time and flags
    fence-ordering and retry-discipline hazards from the program text
    alone; the model checker then confirms each hazard with a
    replayable schedule certificate. *)

module Interval = Analysis_static.Interval
module Finding = Analysis_static.Finding
module Verify = Analysis_static.Verify
module Pipesafe = Analysis_static.Pipesafe

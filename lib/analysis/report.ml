let access_cell (a : Access.t) =
  Printf.sprintf "%s %s [%d..%d)" a.agent_name
    (Access.kind_to_string a.kind)
    a.off (a.off + a.count)

let races_table races =
  let table =
    Metrics.Table.create ~title:"data races"
      [
        ("segment", Metrics.Table.Left);
        ("first access", Metrics.Table.Left);
        ("second access", Metrics.Table.Left);
        ("at", Metrics.Table.Right);
      ]
  in
  List.iter
    (fun (r : Race.t) ->
      Metrics.Table.add_row table
        [
          Printf.sprintf "%s (%s)" r.seg_name (Access.key_to_string r.key);
          access_cell r.a;
          access_cell r.b;
          Sim.Time.to_string r.b.Access.time;
        ])
    races;
  Metrics.Table.render table

let findings_table findings =
  let table =
    Metrics.Table.create ~title:"protocol findings"
      [
        ("rule", Metrics.Table.Left);
        ("agent", Metrics.Table.Left);
        ("segment", Metrics.Table.Left);
        ("detail", Metrics.Table.Left);
      ]
  in
  List.iter
    (fun (f : Lint.finding) ->
      Metrics.Table.add_row table
        [ f.rule; f.agent; Access.key_to_string f.key; f.detail ])
    findings;
  Metrics.Table.render table

let summary monitor ~races ~findings =
  Printf.sprintf
    "%d agents, %d accesses, %d lrpc calls: %d race(s), %d finding(s)"
    (Monitor.agent_count monitor)
    (List.length (Monitor.accesses monitor))
    (Monitor.lrpc_calls monitor)
    (List.length races) (List.length findings)

let print ~title monitor ~races ~findings =
  Printf.printf "== %s: %s\n" title (summary monitor ~races ~findings);
  if races <> [] then print_string (races_table races);
  if findings <> [] then print_string (findings_table findings);
  if races = [] && findings = [] then Printf.printf "   clean\n"

let access_cell (a : Access.t) =
  Printf.sprintf "%s %s [%d..%d)" a.agent_name
    (Access.kind_to_string a.kind)
    a.off (a.off + a.count)

let races_table races =
  let table =
    Metrics.Table.create ~title:"data races"
      [
        ("segment", Metrics.Table.Left);
        ("first access", Metrics.Table.Left);
        ("second access", Metrics.Table.Left);
        ("at", Metrics.Table.Right);
      ]
  in
  List.iter
    (fun (r : Race.t) ->
      Metrics.Table.add_row table
        [
          Printf.sprintf "%s (%s)" r.seg_name (Access.key_to_string r.key);
          access_cell r.a;
          access_cell r.b;
          Sim.Time.to_string r.b.Access.time;
        ])
    races;
  Metrics.Table.render table

let findings_table findings =
  let table =
    Metrics.Table.create ~title:"protocol findings"
      [
        ("rule", Metrics.Table.Left);
        ("agent", Metrics.Table.Left);
        ("segment", Metrics.Table.Left);
        ("detail", Metrics.Table.Left);
      ]
  in
  List.iter
    (fun (f : Lint.finding) ->
      Metrics.Table.add_row table
        [ f.rule; f.agent; Access.key_to_string f.key; f.detail ])
    findings;
  Metrics.Table.render table

let schema_version = 1

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string s = "\"" ^ json_escape s ^ "\""

module Json = struct
  (* Tiny writer combinators so every CLI hand-assembles the same
     shapes the same way instead of each re-deriving Printf idioms. *)
  type t = string

  let str s = json_string s
  let int n = string_of_int n
  let bool b = if b then "true" else "false"
  let raw s = s
  let list items = "[" ^ String.concat "," items ^ "]"
  let obj fields =
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> json_string k ^ ":" ^ v) fields)
    ^ "}"
  let to_string t = t
end

let emit ~tool line =
  (match Metrics.Json.parse line with
  | Ok _ -> ()
  | Error e ->
      Printf.eprintf "%s: emitted JSON failed self-validation: %s\n" tool e;
      exit 1);
  print_endline line

let access_json (a : Access.t) =
  Printf.sprintf "{\"agent\":%s,\"kind\":%s,\"off\":%d,\"count\":%d,\"at\":%s}"
    (json_string a.agent_name)
    (json_string (Access.kind_to_string a.kind))
    a.off a.count
    (json_string (Sim.Time.to_string a.Access.time))

let race_json (r : Race.t) =
  Printf.sprintf "{\"segment\":%s,\"key\":%s,\"first\":%s,\"second\":%s}"
    (json_string r.seg_name)
    (json_string (Access.key_to_string r.key))
    (access_json r.a) (access_json r.b)

let finding_json (f : Lint.finding) =
  Printf.sprintf "{\"rule\":%s,\"agent\":%s,\"segment\":%s,\"detail\":%s}"
    (json_string f.rule) (json_string f.agent)
    (json_string (Access.key_to_string f.key))
    (json_string f.detail)

let json ~title monitor ~races ~findings =
  Printf.sprintf
    "{\"schema\":%d,\"workload\":%s,\"agents\":%d,\"accesses\":%d,\"lrpc_calls\":%d,\"races\":[%s],\"findings\":[%s]}"
    schema_version (json_string title)
    (Monitor.agent_count monitor)
    (List.length (Monitor.accesses monitor))
    (Monitor.lrpc_calls monitor)
    (String.concat "," (List.map race_json races))
    (String.concat "," (List.map finding_json findings))

let summary monitor ~races ~findings =
  Printf.sprintf
    "%d agents, %d accesses, %d lrpc calls: %d race(s), %d finding(s)"
    (Monitor.agent_count monitor)
    (List.length (Monitor.accesses monitor))
    (Monitor.lrpc_calls monitor)
    (List.length races) (List.length findings)

let print ~title monitor ~races ~findings =
  Printf.printf "== %s: %s\n" title (summary monitor ~races ~findings);
  if races <> [] then print_string (races_table races);
  if findings <> [] then print_string (findings_table findings);
  if races = [] && findings = [] then Printf.printf "   clean\n"

(* Compact, deterministic replays of the example workloads, run under
   the monitor.  Each builds its own testbed so runs are independent;
   the shapes mirror examples/ (kv_store, producer_consumer, ...) at a
   size that keeps a race-check run instant.

   Each scenario is split into [prepare] (build the testbed, attach the
   monitor, spawn the workload) and the engine run, so the model
   checker can drive the same workloads event by event under its own
   schedules.  [run] composes the two exactly the way the old
   single-call interface did: default FIFO runs are unchanged. *)

type expectation = { races : bool; findings : bool }

type prep = {
  testbed : Cluster.Testbed.t;
  monitor : Monitor.t;
  finished : unit -> bool;
  invariants : (string * (unit -> bool)) list;
  teardown : unit -> unit;
}

let all =
  [
    "kv_store";
    "producer_consumer";
    "file_service";
    "file_service_nofence";
    "name_service";
    "racy";
    "torn_record";
    "cas_missing_release";
    "cas_double_apply";
    "frame_overrun";
    "dds_register_no_writeback";
  ]

let seeded_bugs =
  [
    "torn_record";
    "cas_missing_release";
    "cas_double_apply";
    "frame_overrun";
    "dds_register_no_writeback";
  ]

let checked =
  [
    "kv_store";
    "producer_consumer";
    "file_service";
    "name_service";
    "torn_record";
    "cas_missing_release";
    "cas_double_apply";
    "frame_overrun";
    "dds_register_no_writeback";
  ]

let expectation = function
  | "kv_store" | "producer_consumer" | "file_service" ->
      { races = false; findings = false }
  | "name_service" -> { races = false; findings = true }
  | "file_service_nofence" | "racy" -> { races = true; findings = false }
  (* The seeded schedule bugs: clean under the default FIFO schedule —
     that is the point; only the model checker's exploration exposes
     them. *)
  | "torn_record" | "cas_missing_release" | "cas_double_apply"
  | "frame_overrun" | "dds_register_no_writeback" ->
      { races = false; findings = false }
  | name -> invalid_arg ("Scenarios.expectation: " ^ name)

let setup ~nodes =
  let testbed = Cluster.Testbed.create ~nodes () in
  let rmems =
    Array.init nodes (fun i ->
        Rmem.Remote_memory.attach (Cluster.Testbed.node testbed i))
  in
  let monitor = Monitor.create (Cluster.Testbed.engine testbed) in
  Array.iter (Monitor.attach_rmem monitor) rmems;
  Monitor.attach_lrpc monitor;
  (testbed, rmems, monitor)

let import_segment rmem ~from segment ~rights =
  Rmem.Remote_memory.import rmem ~remote:from
    ~segment_id:(Rmem.Segment.id segment)
    ~generation:(Rmem.Segment.generation segment)
    ~size:(Rmem.Segment.length segment)
    ~rights ()

let teardown () = Cluster.Lrpc.set_monitor None

(* Spawn the workload main process and package the prep record.  The
   spawn happens exactly where [Proc.run] used to spawn its main
   process, so event sequence numbers — and therefore default-FIFO
   runs — are unchanged. *)
let wrap ~testbed ~monitor ?(invariants = []) body =
  let finished = ref false in
  Sim.Proc.spawn ~name:"main"
    (Cluster.Testbed.engine testbed)
    (fun () ->
      body ();
      finished := true);
  { testbed; monitor; finished = (fun () -> !finished); invariants; teardown }

(* ------------------------------------------------------------------ *)
(* kv_store: each client owns disjoint slots of the server table and
   put/fence/gets them.  No sharing, so nothing can race. *)

let kv_store () =
  let testbed, rmems, monitor = setup ~nodes:3 in
  let read_back_ok = ref true in
  wrap ~testbed ~monitor
    ~invariants:[ ("kv read-your-writes", fun () -> !read_back_ok) ]
    (fun () ->
      let server = Cluster.Testbed.node testbed 0 in
      let space = Cluster.Node.new_address_space server in
      let table =
        Rmem.Remote_memory.export rmems.(0) ~space ~base:0 ~len:4096
          ~rights:Rmem.Rights.all ~policy:Rmem.Segment.Conditional
          ~name:"kv table" ()
      in
      let done_ = Sim.Ivar.create ~name:"kv done" () in
      let finished = ref 0 in
      for c = 1 to 2 do
        let node = Cluster.Testbed.node testbed c in
        Cluster.Node.spawn node (fun () ->
            let rmem = rmems.(c) in
            let desc =
              import_segment rmem ~from:(Cluster.Node.addr server) table
                ~rights:Rmem.Rights.all
            in
            let my_space = Cluster.Node.new_address_space node in
            let buf =
              Rmem.Remote_memory.buffer ~space:my_space ~base:0 ~len:64
            in
            for k = 0 to 3 do
              let off = (c * 512) + (k * 64) in
              Rmem.Remote_memory.write rmem desc ~off
                (Bytes.make 64 (Char.chr (0x30 + c)));
              Rmem.Remote_memory.fence rmem desc;
              Rmem.Remote_memory.read_wait rmem desc ~soff:off ~count:64
                ~dst:buf ~doff:0 ();
              let got = Cluster.Address_space.read my_space ~addr:0 ~len:64 in
              if got <> Bytes.make 64 (Char.chr (0x30 + c)) then
                read_back_ok := false
            done;
            incr finished;
            if !finished = 2 then Sim.Ivar.fill done_ ())
      done;
      Sim.Ivar.read done_)

(* ------------------------------------------------------------------ *)
(* producer_consumer: CAS-ticket slot claims, WRITE deliveries, notify
   doorbells.  The ring holds every item (no slot reuse) and the
   consumer touches exactly the slot each doorbell names, so all
   cross-agent edges flow through the notification channel. *)

let pc_slot_bytes = 64
let pc_items_per_producer = 4
let pc_total = 2 * pc_items_per_producer
let pc_slot_off seq = 64 + (seq * pc_slot_bytes)

let producer_consumer () =
  let testbed, rmems, monitor = setup ~nodes:3 in
  let lens_sane = ref true in
  wrap ~testbed ~monitor
    ~invariants:[ ("consumed lengths sane", fun () -> !lens_sane) ]
    (fun () ->
      let consumer_node = Cluster.Testbed.node testbed 0 in
      let space = Cluster.Node.new_address_space consumer_node in
      let ring =
        Rmem.Remote_memory.export rmems.(0) ~space ~base:0
          ~len:(64 + (pc_total * pc_slot_bytes))
          ~rights:Rmem.Rights.all ~policy:Rmem.Segment.Conditional ~name:"ring"
          ()
      in
      let done_ = Sim.Ivar.create ~name:"pc done" () in
      let fd = Rmem.Segment.notification ring in
      Cluster.Node.spawn consumer_node (fun () ->
          for _ = 1 to pc_total do
            let record = Rmem.Notification.wait fd in
            (* Consume the one slot this doorbell announced. *)
            let slot = record.Rmem.Notification.off in
            let len =
              Int32.to_int (Cluster.Address_space.read_word space ~addr:slot)
            in
            if len <= 0 || len > pc_slot_bytes - 4 then lens_sane := false;
            let (_ : bytes) =
              Cluster.Address_space.read space ~addr:(slot + 4) ~len
            in
            Monitor.local_access monitor ~node:consumer_node ~segment:ring
              ~kind:Access.Load ~off:slot ~count:pc_slot_bytes ()
          done;
          Sim.Ivar.fill done_ ());
      let finished = ref 0 in
      for p = 1 to 2 do
        let node = Cluster.Testbed.node testbed p in
        Cluster.Node.spawn node (fun () ->
            let rmem = rmems.(p) in
            let desc =
              import_segment rmem
                ~from:(Cluster.Node.addr consumer_node)
                ring ~rights:Rmem.Rights.all
            in
            let my_space = Cluster.Node.new_address_space node in
            let buf =
              Rmem.Remote_memory.buffer ~space:my_space ~base:0 ~len:4
            in
            for i = 1 to pc_items_per_producer do
              (* Claim a sequence number with a CAS ticket. *)
              let seq = ref (-1) in
              while !seq < 0 do
                Rmem.Remote_memory.read_wait rmem desc ~soff:0 ~count:4
                  ~dst:buf ~doff:0 ();
                let ticket =
                  Cluster.Address_space.read_word my_space ~addr:0
                in
                let won, _ =
                  Rmem.Remote_memory.cas_wait rmem desc ~doff:0
                    ~old_value:ticket ~new_value:(Int32.add ticket 1l) ()
                in
                if won then seq := Int32.to_int ticket
              done;
              let slot = pc_slot_off !seq in
              let item = Printf.sprintf "item %d.%d" p i in
              Rmem.Remote_memory.write rmem desc ~off:(slot + 4)
                (Bytes.of_string item);
              (* Length word last, doorbell on it. *)
              let flag = Bytes.create 4 in
              Bytes.set_int32_le flag 0 (Int32.of_int (String.length item));
              Rmem.Remote_memory.write rmem desc ~off:slot ~notify:true flag
            done;
            incr finished)
      done;
      Sim.Ivar.read done_)

(* ------------------------------------------------------------------ *)
(* file_service: two clients update the SAME block of a file server
   under a CAS lock, with the paper's required fence before release —
   every WRITE is deposited before the lock can move on. *)

let file_service ~fence () =
  let testbed, rmems, monitor = setup ~nodes:3 in
  let server_space = ref None in
  let block_untorn () =
    match !server_space with
    | None -> true
    | Some space ->
        let block = Cluster.Address_space.read space ~addr:1024 ~len:256 in
        let first = Bytes.get block 0 in
        let same = ref true in
        Bytes.iter (fun c -> if c <> first then same := false) block;
        !same
  in
  wrap ~testbed ~monitor
    ~invariants:[ ("file block untorn", block_untorn) ]
    (fun () ->
      let server = Cluster.Testbed.node testbed 0 in
      let space = Cluster.Node.new_address_space server in
      server_space := Some space;
      let blocks =
        Rmem.Remote_memory.export rmems.(0) ~space ~base:0 ~len:4096
          ~rights:Rmem.Rights.all ~policy:Rmem.Segment.Conditional
          ~name:"file blocks" ()
      in
      let done_ = Sim.Ivar.create ~name:"fs done" () in
      let finished = ref 0 in
      for c = 1 to 2 do
        let node = Cluster.Testbed.node testbed c in
        Cluster.Node.spawn node (fun () ->
            let rmem = rmems.(c) in
            let desc =
              import_segment rmem ~from:(Cluster.Node.addr server) blocks
                ~rights:Rmem.Rights.all
            in
            let me = Int32.of_int c in
            for _round = 1 to 2 do
              (* Acquire the lock word at offset 0. *)
              let held = ref false in
              while not !held do
                let won, _ =
                  Rmem.Remote_memory.cas_wait rmem desc ~doff:0 ~old_value:0l
                    ~new_value:me ()
                in
                if won then held := true
                else Sim.Proc.wait (Sim.Time.us 200)
              done;
              Rmem.Remote_memory.write rmem desc ~off:1024
                (Bytes.make 256 (Char.chr (0x40 + c)));
              if fence then Rmem.Remote_memory.fence rmem desc;
              let released, _ =
                Rmem.Remote_memory.cas_wait rmem desc ~doff:0 ~old_value:me
                  ~new_value:0l ()
              in
              assert released
            done;
            incr finished;
            if !finished = 2 then Sim.Ivar.fill done_ ())
      done;
      Sim.Ivar.read done_)

(* ------------------------------------------------------------------ *)
(* name_service: a clerk-mediated lookup, then two protocol sins — a
   descriptor kept across a revoke/re-export (stale generation) and a
   reader polling a notify:never segment. *)

let name_service () =
  let testbed, rmems, monitor = setup ~nodes:2 in
  let clerks = ref [] in
  let registries_well_formed () =
    List.for_all
      (fun clerk -> Names.Registry.well_formed (Names.Clerk.registry clerk))
      !clerks
  in
  wrap ~testbed ~monitor
    ~invariants:[ ("registries well-formed", registries_well_formed) ]
    (fun () ->
      let node0 = Cluster.Testbed.node testbed 0 in
      let node1 = Cluster.Testbed.node testbed 1 in
      let clerk0 = Names.Clerk.create rmems.(0) in
      let clerk1 = Names.Clerk.create rmems.(1) in
      clerks := [ clerk0; clerk1 ];
      Names.Clerk.serve_lookup_requests clerk0;
      Names.Clerk.serve_lookup_requests clerk1;
      let space0 = Cluster.Node.new_address_space node0 in
      let (_ : Rmem.Segment.t) =
        Names.Api.export clerk0 ~space:space0 ~base:0 ~len:256
          ~rights:Rmem.Rights.read_only ~policy:Rmem.Segment.Never
          ~name:"status" ()
      in
      let epoch =
        Rmem.Remote_memory.export rmems.(0) ~space:space0 ~base:1024 ~len:256
          ~id:7 ~rights:Rmem.Rights.read_only ~policy:Rmem.Segment.Conditional
          ~name:"epoch" ()
      in
      let first_read_done = Sim.Ivar.create ~name:"first read done" () in
      let reexported = Sim.Ivar.create ~name:"reexported" () in
      let done_ = Sim.Ivar.create ~name:"ns done" () in
      Cluster.Node.spawn node1 (fun () ->
          let rmem = rmems.(1) in
          let my_space = Cluster.Node.new_address_space node1 in
          let buf = Rmem.Remote_memory.buffer ~space:my_space ~base:0 ~len:64 in
          let desc =
            import_segment rmem ~from:(Cluster.Node.addr node0) epoch
              ~rights:Rmem.Rights.read_only
          in
          Rmem.Remote_memory.read_wait rmem desc ~soff:0 ~count:32 ~dst:buf
            ~doff:0 ();
          Sim.Ivar.fill first_read_done ();
          Sim.Ivar.read reexported;
          (* The sin: keep using the descriptor across the re-export. *)
          (match
             Rmem.Remote_memory.read_wait rmem desc ~soff:0 ~count:32 ~dst:buf
               ~doff:0 ()
           with
          | () -> assert false
          | exception Rmem.Status.Remote_error Rmem.Status.Stale_generation ->
              ());
          (* The other sin: poll a notify:never segment. *)
          let status =
            Names.Api.import ~hint:(Cluster.Node.addr node0) clerk1 "status"
          in
          for _ = 1 to 12 do
            Rmem.Remote_memory.read_wait rmem status ~soff:0 ~count:4 ~dst:buf
              ~doff:0 ();
            Sim.Proc.wait (Sim.Time.us 100)
          done;
          Sim.Ivar.fill done_ ());
      Sim.Ivar.read first_read_done;
      Rmem.Remote_memory.revoke rmems.(0) epoch;
      let (_ : Rmem.Segment.t) =
        Rmem.Remote_memory.export rmems.(0) ~space:space0 ~base:1024 ~len:256
          ~id:7 ~rights:Rmem.Rights.read_only ~policy:Rmem.Segment.Conditional
          ~name:"epoch" ()
      in
      Sim.Ivar.fill reexported ();
      Sim.Ivar.read done_)

(* ------------------------------------------------------------------ *)
(* racy: two writers, one range, no synchronization at all.  The seeded
   positive the detector must flag. *)

let racy () =
  let testbed, rmems, monitor = setup ~nodes:3 in
  wrap ~testbed ~monitor (fun () ->
      let server = Cluster.Testbed.node testbed 0 in
      let space = Cluster.Node.new_address_space server in
      let shared =
        Rmem.Remote_memory.export rmems.(0) ~space ~base:0 ~len:4096
          ~rights:Rmem.Rights.all ~policy:Rmem.Segment.Conditional
          ~name:"shared" ()
      in
      let done_ = Sim.Ivar.create ~name:"racy done" () in
      let finished = ref 0 in
      for c = 1 to 2 do
        let node = Cluster.Testbed.node testbed c in
        Cluster.Node.spawn node (fun () ->
            let rmem = rmems.(c) in
            let desc =
              import_segment rmem ~from:(Cluster.Node.addr server) shared
                ~rights:Rmem.Rights.all
            in
            Rmem.Remote_memory.write rmem desc ~off:1024
              (Bytes.make 256 (Char.chr (0x60 + c)));
            Rmem.Remote_memory.fence rmem desc;
            incr finished;
            if !finished = 2 then Sim.Ivar.fill done_ ())
      done;
      Sim.Ivar.read done_)

(* ------------------------------------------------------------------ *)
(* torn_record: one node, a two-word record updated word by word with a
   yield in between, and a reader snapshotting the pair the same way.
   Under the default FIFO schedule the reader's snapshots always land
   on a consistent record; picking the writer first at the shared
   instant tears the read.  Because the whole scenario lives on one
   node — one vector-clock agent — the race detector is structurally
   blind to it: the bug is an invariant violation only schedule
   exploration can surface. *)

let torn_record () =
  (* Two nodes because the network layer needs a peer; node 1 stays
     idle, so every access still belongs to one agent. *)
  let testbed, rmems, monitor = setup ~nodes:2 in
  let engine = Cluster.Testbed.engine testbed in
  let observed = ref [] in
  wrap ~testbed ~monitor
    ~invariants:
      [
        ( "record snapshots consistent",
          fun () -> List.for_all (fun (a, b) -> a = b) !observed );
      ]
    (fun () ->
      let node = Cluster.Testbed.node testbed 0 in
      let space = Cluster.Node.new_address_space node in
      let record =
        Rmem.Remote_memory.export rmems.(0) ~space ~base:0 ~len:64
          ~rights:Rmem.Rights.all ~policy:Rmem.Segment.Never ~name:"record" ()
      in
      let read_word off =
        let v = Cluster.Address_space.read_word space ~addr:off in
        Monitor.local_access monitor ~node ~segment:record ~kind:Access.Load
          ~off ~count:4 ~value:v ();
        Int32.to_int v
      in
      let write_word off v =
        Monitor.local_access monitor ~node ~segment:record ~kind:Access.Store
          ~off ~count:4 ~value:(Int32.of_int v) ();
        Cluster.Address_space.write_word space ~addr:off (Int32.of_int v)
      in
      let reader_done = Sim.Ivar.create ~name:"reader done" () in
      let writer_done = Sim.Ivar.create ~name:"writer done" () in
      Sim.Proc.spawn ~name:"reader" engine (fun () ->
          for _ = 1 to 2 do
            let a = read_word 0 in
            Sim.Proc.yield ();
            let b = read_word 4 in
            observed := (a, b) :: !observed
          done;
          Sim.Ivar.fill reader_done ());
      Sim.Proc.spawn ~name:"writer" engine (fun () ->
          write_word 0 1;
          Sim.Proc.yield ();
          write_word 4 1;
          Sim.Ivar.fill writer_done ());
      Sim.Ivar.read reader_done;
      Sim.Ivar.read writer_done)

(* ------------------------------------------------------------------ *)
(* cas_missing_release: a CAS lock protocol whose fast path — winning
   the lock on the very first attempt — forgets both the release CAS
   and the baton handoff.  Under the default FIFO schedule the lock
   starts held and every winner goes through the (correct) retry path;
   letting the init process run first frees the lock early, a client
   wins outright, and the other client plus the main process block
   forever.  A single-schedule race check sees a clean run; only
   exploration reaches the deadlock. *)

let cas_missing_release () =
  let testbed, rmems, monitor = setup ~nodes:2 in
  let engine = Cluster.Testbed.engine testbed in
  wrap ~testbed ~monitor (fun () ->
      let server = Cluster.Testbed.node testbed 0 in
      let space = Cluster.Node.new_address_space server in
      (* The lock word starts held by the setup (value 9); [init]
         releases it once the clients are parked on their first
         attempt.  Written before the export — the history layer
         snapshots exported memory as its initial value — and directly,
         not through the monitor: the word must stay CAS-only for the
         sync-word exemption. *)
      Cluster.Address_space.write_word space ~addr:0 9l;
      let lock =
        Rmem.Remote_memory.export rmems.(0) ~space ~base:0 ~len:4096
          ~rights:Rmem.Rights.all ~policy:Rmem.Segment.Conditional
          ~name:"lock table" ()
      in
      let rmem = rmems.(1) in
      let desc =
        import_segment rmem ~from:(Cluster.Node.addr server) lock
          ~rights:Rmem.Rights.all
      in
      let baton = Sim.Mailbox.create ~name:"baton" () in
      let done_ = Sim.Ivar.create ~name:"done" () in
      let finished_clients = ref 0 in
      for c = 1 to 2 do
        Sim.Proc.spawn ~name:(Printf.sprintf "client%d" c) engine (fun () ->
            let me = Int32.of_int c in
            let attempts = ref 1 in
            let won =
              ref (fst (Rmem.Remote_memory.cas_wait rmem desc ~doff:0
                          ~old_value:0l ~new_value:me ()))
            in
            while not !won do
              Sim.Mailbox.recv baton;
              incr attempts;
              won :=
                fst (Rmem.Remote_memory.cas_wait rmem desc ~doff:0
                       ~old_value:0l ~new_value:me ())
            done;
            Rmem.Remote_memory.write rmem desc ~off:64
              (Bytes.make 32 (Char.chr (0x40 + c)));
            (* THE BUG: a first-attempt win skips the fence, the
               release CAS and the baton handoff. *)
            if !attempts > 1 then begin
              Rmem.Remote_memory.fence rmem desc;
              let released, _ =
                Rmem.Remote_memory.cas_wait rmem desc ~doff:0 ~old_value:me
                  ~new_value:0l ()
              in
              assert released;
              Sim.Mailbox.send baton ()
            end;
            incr finished_clients;
            if !finished_clients = 2 then Sim.Ivar.fill done_ ())
      done;
      Sim.Proc.spawn ~name:"init" engine (fun () ->
          let released, _ =
            Rmem.Remote_memory.cas_wait rmem desc ~doff:0 ~old_value:9l
              ~new_value:0l ()
          in
          assert released;
          Sim.Mailbox.send baton ());
      Sim.Ivar.read done_)

(* cas_double_apply: a lost-reply CAS retry wrapper that can apply its
   operation twice.  Client A's wrapper issues CAS(0->1), decides the
   reply may have been lost, and reissues the same CAS once the
   coordinator releases it, reporting success to its caller if either
   attempt won.  Under the default FIFO schedule the retry runs before
   client B touches the word, fails harmlessly, and every observation
   is consistent.  But if B's CAS(1->0) slips between the two attempts,
   the retry wins a second time: the caller saw *one* successful
   CAS(0->1), yet memory absorbed two, and B's follow-up CAS(0->5)
   fails with witness 1 — a history with no valid linearization.  The
   word is CAS-only so there is no race, nothing deadlocks, and no lint
   rule fires: only exploration plus the linearizability checker
   catches it. *)

let cas_double_apply () =
  let testbed, rmems, monitor = setup ~nodes:3 in
  let engine = Cluster.Testbed.engine testbed in
  wrap ~testbed ~monitor (fun () ->
      let server = Cluster.Testbed.node testbed 0 in
      let space = Cluster.Node.new_address_space server in
      let word =
        Rmem.Remote_memory.export rmems.(0) ~space ~base:0 ~len:4096
          ~rights:Rmem.Rights.all ~policy:Rmem.Segment.Conditional
          ~name:"shared word" ()
      in
      let cell =
        {
          History.key =
            {
              Access.home = Atm.Addr.to_int (Cluster.Node.addr server);
              seg = Rmem.Segment.id word;
              gen = Rmem.Generation.to_int (Rmem.Segment.generation word);
            };
          word = 0;
        }
      in
      let import c =
        import_segment rmems.(c) ~from:(Cluster.Node.addr server) word
          ~rights:Rmem.Rights.all
      in
      let desc_a = import 1 in
      let desc_b = import 2 in
      let a1_done = Sim.Ivar.create ~name:"attempt1 done" () in
      let go_a = Sim.Ivar.create ~name:"go a" () in
      let go_b = Sim.Ivar.create ~name:"go b" () in
      let done_ = Sim.Ivar.create ~name:"done" () in
      let finished = ref 0 in
      let finish () =
        incr finished;
        if !finished = 2 then Sim.Ivar.fill done_ ()
      in
      let node_a = Cluster.Testbed.node testbed 1 in
      let agent_a =
        Printf.sprintf "node%d" (Atm.Addr.to_int (Cluster.Node.addr node_a))
      in
      Cluster.Node.spawn node_a (fun () ->
          (* The wrapper: one logical CAS(0->1) as far as its caller can
             tell, however many requests it put on the wire. *)
          Monitor.logical_begin monitor ~agent_name:agent_a;
          let s1, _ =
            Rmem.Remote_memory.cas_wait rmems.(1) desc_a ~doff:0 ~old_value:0l
              ~new_value:1l ()
          in
          Sim.Ivar.fill a1_done ();
          Sim.Ivar.read go_a;
          (* THE BUG: the wrapper reissues the CAS as if the first reply
             had been lost, and treats a second win as the same win. *)
          let s2, w2 =
            Rmem.Remote_memory.cas_wait rmems.(1) desc_a ~doff:0 ~old_value:0l
              ~new_value:1l ()
          in
          let success = s1 || s2 in
          let witness = if success then History.Known 0l else History.Known w2 in
          Monitor.logical_commit monitor ~agent_name:agent_a ~cell
            ~op:(History.Cas { expected = 0l; desired = 1l; success; witness });
          finish ());
      Cluster.Node.spawn (Cluster.Testbed.node testbed 2) (fun () ->
          Sim.Ivar.read go_b;
          let _took, _ =
            Rmem.Remote_memory.cas_wait rmems.(2) desc_b ~doff:0 ~old_value:1l
              ~new_value:0l ()
          in
          let _reused, _ =
            Rmem.Remote_memory.cas_wait rmems.(2) desc_b ~doff:0 ~old_value:0l
              ~new_value:5l ()
          in
          finish ());
      Sim.Proc.spawn ~name:"coordinator" engine (fun () ->
          Sim.Ivar.read a1_done;
          (* Released in this order, the default FIFO schedule runs the
             (failing) retry before B's first CAS; the two wake-ups land
             at the same instant, so exploration gets to flip them. *)
          Sim.Ivar.fill go_a ();
          Sim.Ivar.fill go_b ());
      Sim.Ivar.read done_)

(* frame_overrun: a forwarder snapshots a frame descriptor — (offset,
   length) words its own node's writer updates in place — and passes
   the snapshot to a remote reader, which issues a READ of exactly
   those bytes from an 8-byte data segment.  Under the default FIFO
   schedule the snapshot is always consistent ((0,8) or (4,4)) and the
   READ is in bounds; a torn snapshot pairs the new offset with the old
   length, and the reader's READ of [4..12) overruns the extent — a
   Bounds rejection the reader absorbs, which only the "bounds" lint
   rule (and the static verifier, from the program text alone) sees.
   All header traffic is one agent, so the race detector is blind to
   the tear. *)

let frame_overrun () =
  let testbed, rmems, monitor = setup ~nodes:2 in
  let engine = Cluster.Testbed.engine testbed in
  wrap ~testbed ~monitor (fun () ->
      let node0 = Cluster.Testbed.node testbed 0 in
      let node1 = Cluster.Testbed.node testbed 1 in
      let space0 = Cluster.Node.new_address_space node0 in
      let space1 = Cluster.Node.new_address_space node1 in
      (* Initial descriptor (off=0, len=8), written before the export so
         the history layer snapshots it as the initial value. *)
      Cluster.Address_space.write_word space0 ~addr:0 0l;
      Cluster.Address_space.write_word space0 ~addr:4 8l;
      let header =
        Rmem.Remote_memory.export rmems.(0) ~space:space0 ~base:0 ~len:64
          ~rights:Rmem.Rights.read_only ~policy:Rmem.Segment.Never
          ~name:"frame.header" ()
      in
      let data =
        Rmem.Remote_memory.export rmems.(0) ~space:space0 ~base:1024 ~len:8
          ~rights:Rmem.Rights.read_only ~policy:Rmem.Segment.Conditional
          ~name:"frame.data" ()
      in
      let req =
        Rmem.Remote_memory.export rmems.(1) ~space:space1 ~base:0 ~len:8
          ~rights:Rmem.Rights.all ~policy:Rmem.Segment.Conditional
          ~name:"frame.req" ()
      in
      let read_header off =
        let v = Cluster.Address_space.read_word space0 ~addr:off in
        Monitor.local_access monitor ~node:node0 ~segment:header
          ~kind:Access.Load ~off ~count:4 ~value:v ();
        v
      in
      let write_header off v =
        Monitor.local_access monitor ~node:node0 ~segment:header
          ~kind:Access.Store ~off ~count:4 ~value:v ();
        Cluster.Address_space.write_word space0 ~addr:off v
      in
      let done_ = Sim.Ivar.create ~name:"frame done" () in
      let forwarded = Sim.Ivar.create ~name:"forwarded" () in
      Cluster.Node.spawn node1 (fun () ->
          let fd = Rmem.Segment.notification req in
          let (_ : Rmem.Notification.record) = Rmem.Notification.wait fd in
          let read_req addr =
            let v = Cluster.Address_space.read_word space1 ~addr in
            Monitor.local_access monitor ~node:node1 ~segment:req
              ~kind:Access.Load ~off:addr ~count:4 ~value:v ();
            Int32.to_int v
          in
          let off = read_req 0 in
          let len = read_req 4 in
          let desc =
            import_segment rmems.(1) ~from:(Cluster.Node.addr node0) data
              ~rights:Rmem.Rights.read_only
          in
          let my_space = Cluster.Node.new_address_space node1 in
          let buf = Rmem.Remote_memory.buffer ~space:my_space ~base:0 ~len:16 in
          (* The overrun: a torn (new-off, old-len) snapshot reaches
             past the extent; the exporter's Bounds nack is absorbed. *)
          (match
             Rmem.Remote_memory.read_wait rmems.(1) desc ~soff:off ~count:len
               ~dst:buf ~doff:0 ()
           with
          | () -> ()
          | exception Rmem.Status.Remote_error Rmem.Status.Bounds -> ());
          Sim.Ivar.fill done_ ());
      Sim.Proc.spawn ~name:"writer" engine (fun () ->
          (* Retarget the descriptor to (off=4, len=4), word by word. *)
          write_header 0 4l;
          Sim.Proc.yield ();
          write_header 4 4l);
      Sim.Proc.spawn ~name:"forwarder" engine (fun () ->
          let off = read_header 0 in
          Sim.Proc.yield ();
          let len = read_header 4 in
          let desc =
            import_segment rmems.(0) ~from:(Cluster.Node.addr node1) req
              ~rights:Rmem.Rights.all
          in
          let snapshot = Bytes.create 8 in
          Bytes.set_int32_le snapshot 0 off;
          Bytes.set_int32_le snapshot 4 len;
          Rmem.Remote_memory.write rmems.(0) desc ~off:0 ~notify:true snapshot;
          Sim.Ivar.fill forwarded ());
      Sim.Ivar.read forwarded;
      Sim.Ivar.read done_)

(* dds_register_no_writeback: the dds suite's ABD register with the
   read's write-back phase disabled ([~write_back:false]) — the seeded
   protocol bug of PR 10.  A first writer (a real [Dds.Register]
   client) installs 10 on every replica; then a second writer pushes
   42 through majority {0,1}, claim-CAS plus atomic cell deposit per
   replica — the store phase is spelled out with raw remote-memory
   ops so the coordinator can hold it between replicas, exactly the
   in-flight partial write ABD is defensive about.  Two
   write-back-free reader clients, each restricted to a different
   majority ({0,2}, then {1,2}), read in sequence from one node: R1
   adopts 42 from replica 0 and — the bug — does not write it back to
   replica 2.  The coordinator then releases W2's replica-1 claim and
   R2's collect at the same instant.  Under FIFO the claim is served
   first, R2 retries against the busy cell and adopts 42 — clean, and
   the race detector sees nothing because both replica-cell words are
   declared sync words (quorum-replicated copies are the protocol,
   not a race).  Exploration flips the order: R2 decodes the stale
   cell on both of its replicas and returns 10 after R1 already
   returned 42 — a committed-write history with no linearization, the
   new/old inversion the write-back phase exists to prevent. *)

let reg_read_align = Sim.Time.ns 550

let dds_register_no_writeback () =
  let testbed, rmems, monitor = setup ~nodes:5 in
  let engine = Cluster.Testbed.engine testbed in
  let node i = Cluster.Testbed.node testbed i in
  let amsgs = Array.init 5 (fun i -> Amsg.attach (node i)) in
  wrap ~testbed ~monitor (fun () ->
      let hook = Monitor.dds_hook monitor in
      let reps =
        Array.init 3 (fun k ->
            Dds.Register.replica ~rmem:rmems.(k) ~amsg:amsgs.(k) ())
      in
      Array.iter
        (fun r ->
          let home, seg, gen = Dds.Register.replica_key r in
          let key = { Access.home; seg; gen } in
          Monitor.declare_sync_word monitor ~key ~off:0;
          Monitor.declare_sync_word monitor ~key ~off:4)
        reps;
      let spaces = Array.map Dds.Register.replica_space reps in
      (* The register's designated history cell: replica 0's value
         word, the same one [Dds.Register]'s own hook commits to. *)
      let cell =
        let home, seg, gen = Dds.Register.replica_key reps.(0) in
        { History.key = { Access.home; seg; gen }; word = 4 }
      in
      let w1_done = Sim.Ivar.create ~name:"w1 done" () in
      let go_w2 = Sim.Ivar.create ~name:"go w2" () in
      let go_r1 = Sim.Ivar.create ~name:"go r1" () in
      let r1_done = Sim.Ivar.create ~name:"r1 done" () in
      let go_claim1 = Sim.Ivar.create ~name:"go claim rep1" () in
      let go_r2 = Sim.Ivar.create ~name:"go r2" () in
      let done_ = Sim.Ivar.create ~name:"reg done" () in
      let finished = ref 0 in
      let finish () =
        incr finished;
        if !finished = 2 then Sim.Ivar.fill done_ ()
      in
      let agent_w = Printf.sprintf "node%d" (Atm.Addr.to_int (Cluster.Node.addr (node 3))) in
      let old_tag = Dds.Tag.pack { Dds.Tag.ts = 1; wr = 1 } in
      let new_cell = Dds.Tag.encode { Dds.Tag.ts = 2; wr = 2 } 42l in
      Cluster.Node.spawn (node 3) (fun () ->
          let w1 =
            Dds.Register.client ~rmem:rmems.(3) ~amsg:amsgs.(3)
              ~kind:Dds.Kind.Dx ~rank:1 ~hook reps
          in
          let desc k =
            import_segment rmems.(3)
              ~from:(Cluster.Node.addr (Dds.Register.replica_node reps.(k)))
              (Dds.Register.replica_segment reps.(k))
              ~rights:Rmem.Rights.all
          in
          let desc0 = desc 0 and desc1 = desc 1 in
          ignore (Dds.Register.write w1 10l);
          Sim.Ivar.fill w1_done ();
          Sim.Ivar.read go_w2;
          (* W2: one logical write of 42 through majority {0,1} — tag
             (2, rank 2) — whose store phase pauses between replicas. *)
          Monitor.logical_begin monitor ~agent_name:agent_w;
          let store desc =
            let won, _ =
              Rmem.Remote_memory.cas_wait rmems.(3) desc ~doff:0
                ~old_value:old_tag ~new_value:(Dds.Tag.busy_for 2) ()
            in
            assert won;
            Rmem.Remote_memory.write rmems.(3) desc ~off:0 new_cell
          in
          store desc0;
          Sim.Ivar.read go_claim1;
          store desc1;
          Monitor.logical_commit monitor ~agent_name:agent_w ~cell
            ~op:(History.Write (History.Known 42l));
          finish ());
      Cluster.Node.spawn (node 4) (fun () ->
          let client ~quorum rank =
            Dds.Register.client ~rmem:rmems.(4) ~amsg:amsgs.(4)
              ~kind:Dds.Kind.Dx ~rank ~hook ~write_back:false ~quorum reps
          in
          let r1 = client ~quorum:[ 0; 2 ] 3 in
          let r2 = client ~quorum:[ 1; 2 ] 4 in
          Sim.Ivar.read go_r1;
          ignore (Dds.Register.read r1);
          Sim.Ivar.fill r1_done ();
          Sim.Ivar.read go_r2;
          (* Calibrated: a CAS leaves the issuing NIC this much later
             than a READ, so R2's collect is held just long enough
             that its replica-1 READ and W2's claim arrive at the same
             instant — with the claim's frame enqueued first.  Moves
             with the cost model; revalidate with [bin/modelcheck]. *)
          Sim.Proc.wait reg_read_align;
          ignore (Dds.Register.read r2);
          finish ());
      Sim.Proc.spawn ~name:"coordinator" engine (fun () ->
          (* The settle polls read replica memory directly — off the
             books, so the gating itself leaves no trace in the
             history. *)
          let settled k tagw v =
            Int32.equal (Cluster.Address_space.read_word spaces.(k) ~addr:0)
              tagw
            && Int32.equal
                 (Cluster.Address_space.read_word spaces.(k) ~addr:4)
                 v
          in
          let rec await k tagw v =
            if not (settled k tagw v) then begin
              Sim.Proc.wait (Sim.Time.us 1);
              await k tagw v
            end
          in
          Sim.Ivar.read w1_done;
          (* W1's blind deposits must all have landed, so phase 2
             starts from a rigid, replicated 10. *)
          for k = 0 to 2 do
            await k old_tag 10l
          done;
          Sim.Ivar.fill go_w2 ();
          (* Replica 0 holds the committed half of W2's write... *)
          await 0 (Dds.Tag.pack { Dds.Tag.ts = 2; wr = 2 }) 42l;
          Sim.Ivar.fill go_r1 ();
          Sim.Ivar.read r1_done;
          (* ...and these two wake-ups land at the same instant: under
             FIFO W2's replica-1 claim is served before R2's collect
             READ; exploration gets to flip them. *)
          Sim.Ivar.fill go_claim1 ();
          Sim.Ivar.fill go_r2 ());
      Sim.Ivar.read done_)

let prepare name =
  match name with
  | "kv_store" -> kv_store ()
  | "producer_consumer" -> producer_consumer ()
  | "file_service" -> file_service ~fence:true ()
  | "file_service_nofence" -> file_service ~fence:false ()
  | "name_service" -> name_service ()
  | "racy" -> racy ()
  | "torn_record" -> torn_record ()
  | "cas_missing_release" -> cas_missing_release ()
  | "cas_double_apply" -> cas_double_apply ()
  | "frame_overrun" -> frame_overrun ()
  | "dds_register_no_writeback" -> dds_register_no_writeback ()
  | name -> invalid_arg ("Scenarios.prepare: " ^ name)

(* The declared access program of each scenario, for the static
   verifier; the @protocheck cross-validation holds these declarations
   against what exploration observes. *)
let program = Workload.Programs.scenario

let run name =
  let prep = prepare name in
  Fun.protect ~finally:prep.teardown (fun () ->
      Sim.Engine.run (Cluster.Testbed.engine prep.testbed));
  prep.monitor

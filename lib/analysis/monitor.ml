(* The instrumentation hub.  See the .mli for the clock model; the
   mechanics here are:

   - one agent (vector-clock component) per node address, registered on
     first sight;
   - per (issuer, segment, op) FIFO queues pairing Issued events with
     their Served (and, for READ/CAS, Completed) events, so an access
     recorded at the destination carries the issuer's issue-time clock —
     serve time alone would let a later synchronization falsely order an
     in-flight unacknowledged WRITE;
   - per (issuer, destination-node) lists of served-but-unwitnessed
     WRITE accesses, flushed into visibility by the next genuine reply
     the issuer receives from that node (links are FIFO);
   - per-segment FIFO channels carrying (stamp, accesses-to-witness)
     from notify-serves to the matching notification deliveries;
   - per (segment, word) lock clocks implementing CAS release/acquire. *)

type agent = {
  id : int;
  name : string;
  mutable clock : Vclock.t;
}

(* One issued meta-instruction in flight.  [remaining] counts data bytes
   still to be served (a large WRITE is served in bursts, one event per
   chunk); READ and CAS are served in one event. *)
type flight = {
  snapshot : Vclock.t;
  policied : bool; (* issued under a Recovery policy (or a pipeline
                      flush retrying through one): its failed CAS serves
                      must not extend an unbounded-retry chain *)
  issued_at : Sim.Time.t; (* the history event's invocation time *)
  cas : (int32 * int32) option; (* CAS (expected, desired) arguments *)
  batch : int option; (* pipeline window cycle carrying the issue *)
  mutable remaining : int;
  mutable accesses : Access.t list;
  mutable acquired : Vclock.t option; (* CAS: lock clock captured at serve *)
  mutable hist : History.handle; (* serve-time events awaiting their resp *)
}

(* One run of consecutive failed CAS attempts by one agent on one word.
   [len] is the current run, [worst] the longest seen; a success, an
   intervening non-CAS access to the segment by the same agent, or a
   pause longer than [retry_backoff_floor] resets [len].  Reissues
   sharing one pipeline batch (one window cycle) are one logical
   attempt: they extend the run once, not per issue. *)
type retry_chain = {
  mutable len : int;
  mutable last : Sim.Time.t;
  mutable last_batch : int option;
  mutable worst : int;
}

type rejection = {
  site : [ `Issue | `Serve ];
  agent_name : string;
  key : Access.seg_key;
  op : Rmem.Rights.op;
  off : int;
  count : int;
  status : Rmem.Status.t;
  time : Sim.Time.t;
}

type t = {
  engine : Sim.Engine.t;
  agents : (int, agent) Hashtbl.t; (* node address -> agent *)
  mutable agent_count : int;
  mutable accesses : Access.t list; (* newest first *)
  mutable next_access_id : int;
  issue_q : (int * Access.seg_key * Rmem.Rights.op, flight Queue.t) Hashtbl.t;
  completion_q :
    (int * Access.seg_key * Rmem.Rights.op, flight Queue.t) Hashtbl.t;
  unflushed : (int * int, Access.t list ref) Hashtbl.t;
  (* (agent id, destination node) -> served WRITEs awaiting a witness *)
  channels : (Access.seg_key, (Vclock.t * Access.t list) Queue.t) Hashtbl.t;
  locks : (Access.seg_key * int, Vclock.t) Hashtbl.t;
  declared_sync : (Access.seg_key * int, unit) Hashtbl.t;
  policies : (Access.seg_key, Rmem.Segment.notify_policy) Hashtbl.t;
  retries : (string * Access.seg_key * int, retry_chain) Hashtbl.t;
  (* (agent name, segment, word offset) -> failed-CAS run lengths *)
  unpolicied : (string * Access.seg_key * Rmem.Rights.op, int ref) Hashtbl.t;
  (* issues seen outside any recovery policy, per (agent, segment, op) *)
  unpolicied_batch : (string * Access.seg_key * Rmem.Rights.op, int) Hashtbl.t;
  (* last pipeline batch already counted in [unpolicied] per key: a
     windowed group of issues is one logical attempt *)
  history : History.t;
  mutable rejections : rejection list;
  mutable nacks : int;
  mutable lrpc_calls : int;
  lrpc_monitor_baseline : int;
      (* live add_monitor registrations when this monitor was created;
         anything above it at check time was leaked by the workload *)
}

let create engine =
  {
    engine;
    agents = Hashtbl.create 8;
    agent_count = 0;
    accesses = [];
    next_access_id = 0;
    issue_q = Hashtbl.create 32;
    completion_q = Hashtbl.create 32;
    unflushed = Hashtbl.create 8;
    channels = Hashtbl.create 8;
    locks = Hashtbl.create 8;
    declared_sync = Hashtbl.create 8;
    policies = Hashtbl.create 8;
    retries = Hashtbl.create 8;
    unpolicied = Hashtbl.create 8;
    unpolicied_batch = Hashtbl.create 8;
    history = History.create ();
    rejections = [];
    nacks = 0;
    lrpc_calls = 0;
    lrpc_monitor_baseline = Cluster.Lrpc.live_monitor_count ();
  }

let leaked_lrpc_monitors t =
  max 0 (Cluster.Lrpc.live_monitor_count () - t.lrpc_monitor_baseline)

let now t = Sim.Engine.now t.engine

let agent_for t addr =
  match Hashtbl.find_opt t.agents addr with
  | Some a -> a
  | None ->
      let a =
        {
          id = t.agent_count;
          name = Printf.sprintf "node%d" addr;
          clock = Vclock.empty;
        }
      in
      t.agent_count <- t.agent_count + 1;
      Hashtbl.replace t.agents addr a;
      a

let tick a = a.clock <- Vclock.tick a.clock a.id

let key_of_desc desc =
  {
    Access.home = Atm.Addr.to_int (Rmem.Descriptor.remote desc);
    seg = Rmem.Descriptor.segment_id desc;
    gen = Rmem.Generation.to_int (Rmem.Descriptor.generation desc);
  }

let key_of_segment ~home segment =
  {
    Access.home;
    seg = Rmem.Segment.id segment;
    gen = Rmem.Generation.to_int (Rmem.Segment.generation segment);
  }

let push q k v =
  let queue =
    match Hashtbl.find_opt q k with
    | Some queue -> queue
    | None ->
        let queue = Queue.create () in
        Hashtbl.replace q k queue;
        queue
  in
  Queue.push v queue

let peek q k =
  match Hashtbl.find_opt q k with
  | Some queue when not (Queue.is_empty queue) -> Some (Queue.peek queue)
  | _ -> None

let pop q k =
  match Hashtbl.find_opt q k with
  | Some queue when not (Queue.is_empty queue) -> Some (Queue.pop queue)
  | _ -> None

let record_access t ~agent ~key ~seg_name ~kind ~off ~count ~stamp ~vis ~origin
    =
  let access =
    {
      Access.id = t.next_access_id;
      agent = agent.id;
      agent_name = agent.name;
      key;
      seg_name;
      kind;
      off;
      count;
      time = now t;
      stamp;
      vis;
      origin;
    }
  in
  t.next_access_id <- t.next_access_id + 1;
  t.accesses <- access :: t.accesses;
  access

let unflushed_list t ~agent_id ~home =
  match Hashtbl.find_opt t.unflushed (agent_id, home) with
  | Some l -> l
  | None ->
      let l = ref [] in
      Hashtbl.replace t.unflushed (agent_id, home) l;
      l

let witness accesses clock =
  List.iter (fun (a : Access.t) -> a.vis <- clock :: a.vis) accesses

let kind_of_op = function
  | Rmem.Rights.Read_op -> Access.Load
  | Rmem.Rights.Write_op -> Access.Store
  | Rmem.Rights.Cas_op -> Access.Atomic

(* A CAS retried after at least this pause counts as backing off; only
   faster retries extend a failed-CAS run. *)
let retry_backoff_floor = Sim.Time.us 150

let note_cas_retry t ~agent_name ~key ~off ~policied ~batch ~success =
  let chain_key = (agent_name, key, off) in
  let chain =
    match Hashtbl.find_opt t.retries chain_key with
    | Some c -> c
    | None ->
        let c =
          { len = 0; last = Sim.Time.zero; last_batch = None; worst = 0 }
        in
        Hashtbl.replace t.retries chain_key c;
        c
  in
  if success then chain.len <- 0
  else if policied then begin
    (* A policy-governed reissue already backs off and bounds its
       attempts; counting it here would double-report the same retry
       as an unbounded chain. *)
    chain.len <- 0;
    chain.last <- now t
  end
  else begin
    let same_batch =
      match (batch, chain.last_batch) with
      | Some b, Some b' -> b = b'
      | _ -> false
    in
    if same_batch && chain.len > 0 then
      (* Another failure out of the same pipeline window cycle: the
         caller made one logical attempt, however many issues the
         window carried. *)
      chain.last <- now t
    else begin
      let gap = Sim.Time.diff (now t) chain.last in
      chain.len <-
        (if chain.len > 0 && Sim.Time.(gap <= retry_backoff_floor) then
           chain.len + 1
         else 1);
      chain.last <- now t;
      chain.last_batch <- batch;
      if chain.len > chain.worst then chain.worst <- chain.len
    end
  end

let break_cas_retries t ~agent_name ~key =
  Hashtbl.iter
    (fun (a, k, _) chain -> if a = agent_name && k = key then chain.len <- 0)
    t.retries

(* A notification record became visible to user code on the segment's
   home node: join the sender's stamp, and witness the accesses the
   serve-side end of the channel captured. *)
let on_delivery t ~key (_ : Rmem.Notification.record) =
  let dest = agent_for t key.Access.home in
  (match pop t.channels key with
  | Some (stamp, to_witness) ->
      dest.clock <- Vclock.join dest.clock stamp;
      tick dest;
      witness to_witness dest.clock
  | None -> tick dest)

let on_export t ~home segment =
  let key = key_of_segment ~home segment in
  Hashtbl.replace t.policies key (Rmem.Segment.policy segment);
  (* Libraries that mutate their own exported memory locally, outside
     any hook (the name-service clerk's well-known segments, the
     replica store), produce incomplete operation histories; checking
     those would report phantom violations, so they are excluded by
     name. *)
  let locally_mutated =
    List.exists
      (fun prefix -> String.starts_with ~prefix (Rmem.Segment.name segment))
      [ "wk:"; "replica:" ]
  in
  if locally_mutated then History.exclude t.history ~key
  else History.note_export t.history ~key segment;
  Rmem.Notification.set_monitor
    (Rmem.Segment.notification segment)
    (Some (fun record -> on_delivery t ~key record))

let on_rmem_event t ~self_addr event =
  let self () = agent_for t self_addr in
  match event with
  | Rmem.Remote_memory.Exported segment -> on_export t ~home:self_addr segment
  | Rmem.Remote_memory.Issued
      { op; desc; off = _; count; notify = _; policied; cas; batch } ->
      let a = self () in
      tick a;
      let key = key_of_desc desc in
      (if not policied then
         let uk = (a.name, key, op) in
         let counted_already =
           (* Issues sharing a pipeline batch are one logical attempt:
              count the batch once, not each windowed issue. *)
           match batch with
           | None -> false
           | Some b -> Hashtbl.find_opt t.unpolicied_batch uk = Some b
         in
         Option.iter (Hashtbl.replace t.unpolicied_batch uk) batch;
         if not counted_already then
           match Hashtbl.find_opt t.unpolicied uk with
           | Some n -> incr n
           | None -> Hashtbl.replace t.unpolicied uk (ref 1));
      let flight =
        {
          snapshot = a.clock;
          policied;
          issued_at = now t;
          cas;
          batch;
          remaining = (if op = Rmem.Rights.Write_op then Stdlib.max count 1 else 1);
          accesses = [];
          acquired = None;
          hist = History.no_handle;
        }
      in
      push t.issue_q (a.id, key, op) flight;
      if op <> Rmem.Rights.Write_op then
        push t.completion_q (a.id, key, op) flight
  | Rmem.Remote_memory.Issue_rejected { op; desc; off; count; status } ->
      let a = self () in
      tick a;
      t.rejections <-
        {
          site = `Issue;
          agent_name = a.name;
          key = key_of_desc desc;
          op;
          off;
          count;
          status;
          time = now t;
        }
        :: t.rejections
  | Rmem.Remote_memory.Served
      { op; src; segment; off; count; notified; cas_success } ->
      let key = key_of_segment ~home:self_addr segment in
      let issuer = agent_for t (Atm.Addr.to_int src) in
      let flight = peek t.issue_q (issuer.id, key, op) in
      let stamp =
        match flight with Some f -> f.snapshot | None -> issuer.clock
      in
      let access =
        record_access t ~agent:issuer ~key
          ~seg_name:(Rmem.Segment.name segment) ~kind:(kind_of_op op) ~off
          ~count ~stamp ~vis:[] ~origin:(Access.Meta op)
      in
      (match op with
      | Rmem.Rights.Cas_op ->
          note_cas_retry t ~agent_name:issuer.name ~key ~off
            ~policied:(match flight with Some f -> f.policied | None -> false)
            ~batch:(match flight with Some f -> f.batch | None -> None)
            ~success:(cas_success = Some true)
      | Rmem.Rights.Read_op | Rmem.Rights.Write_op ->
          break_cas_retries t ~agent_name:issuer.name ~key);
      (let inv =
         match flight with Some f -> f.issued_at | None -> now t
       in
       let handle =
         History.record_serve t.history ~agent:issuer.name ~key ~segment ~op
           ~off ~count
           ~cas:(match flight with Some f -> f.cas | None -> None)
           ~cas_success ~inv ~now:(now t)
       in
       match flight with
       | Some f when op <> Rmem.Rights.Write_op -> f.hist <- handle
       | _ -> ());
      (match flight with
      | None -> ()
      | Some f -> (
          f.accesses <- access :: f.accesses;
          (match op with
          | Rmem.Rights.Write_op ->
              f.remaining <- f.remaining - Stdlib.max count 1;
              if f.remaining <= 0 then
                ignore (pop t.issue_q (issuer.id, key, op))
          | Rmem.Rights.Read_op | Rmem.Rights.Cas_op ->
              ignore (pop t.issue_q (issuer.id, key, op)));
          match cas_success with
          | Some true ->
              (* Lock-word release/acquire: remember the previous
                 publication for the issuer's completion, then publish
                 the issuer's issue-time clock. *)
              let lock_key = (key, off) in
              let held =
                Option.value
                  (Hashtbl.find_opt t.locks lock_key)
                  ~default:Vclock.empty
              in
              f.acquired <- Some held;
              Hashtbl.replace t.locks lock_key (Vclock.join held f.snapshot)
          | Some false | None -> ()));
      if op = Rmem.Rights.Write_op then begin
        let l = unflushed_list t ~agent_id:issuer.id ~home:key.Access.home in
        l := access :: !l
      end;
      if notified then
        let to_witness =
          if op = Rmem.Rights.Write_op then
            !(unflushed_list t ~agent_id:issuer.id ~home:key.Access.home)
          else [ access ]
        in
        push t.channels key (stamp, to_witness)
  | Rmem.Remote_memory.Serve_rejected { op; src; seg; gen; off; count; status }
    ->
      t.rejections <-
        {
          site = `Serve;
          agent_name = (agent_for t (Atm.Addr.to_int src)).name;
          key =
            {
              Access.home = self_addr;
              seg;
              gen = Rmem.Generation.to_int gen;
            };
          op;
          off;
          count;
          status;
          time = now t;
        }
        :: t.rejections
  | Rmem.Remote_memory.Nacked _ -> t.nacks <- t.nacks + 1
  | Rmem.Remote_memory.Completed { op; desc; off; count = _; status = _; cas_success }
    ->
      (* A genuine reply reached the issuer: everything it sent this
         remote earlier has been processed (FIFO links). *)
      let a = self () in
      tick a;
      let key = key_of_desc desc in
      let flight = pop t.completion_q (a.id, key, op) in
      (match flight with
      | Some f -> History.complete t.history f.hist ~now:(now t)
      | None -> ());
      (match (op, cas_success, flight) with
      | Rmem.Rights.Cas_op, Some true, Some { acquired = Some held; _ } ->
          a.clock <- Vclock.join a.clock held
      | _ -> ());
      let w = a.clock in
      (match flight with Some f -> witness f.accesses w | None -> ());
      let l = unflushed_list t ~agent_id:a.id ~home:key.Access.home in
      witness !l w;
      l := [];
      ignore off

let attach_rmem t rmem =
  let node = Rmem.Remote_memory.node rmem in
  let self_addr = Atm.Addr.to_int (Cluster.Node.addr node) in
  ignore (agent_for t self_addr);
  List.iter
    (fun segment -> on_export t ~home:self_addr segment)
    (Rmem.Remote_memory.exports rmem);
  Rmem.Remote_memory.set_monitor rmem
    (Some (fun event -> on_rmem_event t ~self_addr event))

let attach_svm t svm =
  let self_addr = Atm.Addr.to_int (Cluster.Node.addr (Svm.node svm)) in
  let key =
    { Access.home = Atm.Addr.to_int (Svm.manager svm); seg = -1; gen = 0 }
  in
  Svm.set_monitor svm
    (Some
       (fun { Svm.kind; addr; len } ->
         let a = agent_for t self_addr in
         tick a;
         History.record_local t.history ~agent:a.name ~key ~kind ~off:addr
           ~count:len ~now:(now t) ();
         let kind =
           match kind with `Load -> Access.Load | `Store -> Access.Store
         in
         ignore
           (record_access t ~agent:a ~key ~seg_name:"svm region" ~kind
              ~off:addr ~count:len ~stamp:a.clock ~vis:[ a.clock ]
              ~origin:Access.Svm)))

let attach_lrpc t =
  Cluster.Lrpc.set_monitor
    (Some
       (fun node ->
         let a = agent_for t (Atm.Addr.to_int (Cluster.Node.addr node)) in
         tick a;
         t.lrpc_calls <- t.lrpc_calls + 1))

let local_access t ~node ~segment ~kind ~off ~count ?value () =
  let home = Atm.Addr.to_int (Cluster.Node.addr node) in
  let a = agent_for t home in
  tick a;
  let key = key_of_segment ~home segment in
  History.record_local t.history ~agent:a.name ~key
    ~kind:(match kind with Access.Store -> `Store | _ -> `Load)
    ~off ~count ?value ~now:(now t) ();
  ignore
    (record_access t ~agent:a ~key ~seg_name:(Rmem.Segment.name segment) ~kind
       ~off ~count ~stamp:a.clock ~vis:[ a.clock ] ~origin:Access.Local)

let history t = t.history

let logical_begin t ~agent_name =
  History.scope_begin t.history ~agent:agent_name ~now:(now t)

let logical_commit t ~agent_name ~cell ~op =
  History.scope_end t.history ~agent:agent_name ~cell ~op ~now:(now t)

let declare_sync_word t ~key ~off =
  Hashtbl.replace t.declared_sync (key, off) ()

(* Adapter for the distributed data structures' instrumentation hooks:
   every client operation becomes one logical event on the structure's
   designated cell, with the physical traffic suppressed inside the
   scope. *)
let dds_hook t : Dds.Hook.t = function
  | Dds.Hook.Begin { node } ->
      logical_begin t ~agent_name:(Printf.sprintf "node%d" node)
  | Dds.Hook.Commit { node; home; seg; gen; word; op } ->
      let cell = { History.key = { Access.home; seg; gen }; word } in
      let op =
        match op with
        | Dds.Hook.Read v -> History.Read (History.Known v)
        | Dds.Hook.Write v -> History.Write (History.Known v)
        | Dds.Hook.Sync -> History.Read History.Unknown
      in
      logical_commit t ~agent_name:(Printf.sprintf "node%d" node) ~cell ~op

let accesses t = List.rev t.accesses
let access_count t = t.next_access_id

let accesses_from t ~id =
  let rec take acc = function
    | (a : Access.t) :: rest when a.id >= id -> take (a :: acc) rest
    | _ -> acc
  in
  take [] t.accesses

let worst_cas_retries t =
  Hashtbl.fold
    (fun (agent, key, off) chain acc ->
      if chain.worst > 0 then ((agent, key, off), chain.worst) :: acc else acc)
    t.retries []
  |> List.sort Stdlib.compare

let unpolicied_issues t =
  Hashtbl.fold
    (fun (agent, key, op) n acc -> ((agent, key, op), !n) :: acc)
    t.unpolicied []
  |> List.sort Stdlib.compare

let rejections t = List.rev t.rejections
let nacks t = t.nacks
let policy_of t key = Hashtbl.find_opt t.policies key
let is_declared_sync t ~key ~off = Hashtbl.mem t.declared_sync (key, off)
let agent_count t = t.agent_count
let lrpc_calls t = t.lrpc_calls

(** The happens-before race checker.

    Two accesses race when they touch overlapping bytes of the same
    region, come from different agents, at least one writes, and
    neither's memory effect is ordered before the other's issue by the
    recorded happens-before relation. Pairs whose overlap is confined
    to synchronization words — words only ever stored by CAS, or
    declared via {!Monitor.declare_sync_word} — are exempt: polling a
    lock word and CAS contention are the model's intended idioms, not
    data races. *)

type t = {
  key : Access.seg_key;
  seg_name : string;
  a : Access.t;
  b : Access.t;
}

val find : Monitor.t -> t list
(** All race pairs, deduplicated per (region, agent pair, overlap
    start), in discovery order. *)

val describe : t -> string

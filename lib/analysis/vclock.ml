(* Immutable vector clocks as int arrays indexed by agent id; missing
   components read as zero so clocks grow as agents appear. *)

type t = int array

let empty = [||]

let get c i = if i < Array.length c then c.(i) else 0

let tick c i =
  let out = Array.make (Stdlib.max (Array.length c) (i + 1)) 0 in
  Array.blit c 0 out 0 (Array.length c);
  out.(i) <- out.(i) + 1;
  out

let join a b =
  let n = Stdlib.max (Array.length a) (Array.length b) in
  Array.init n (fun i -> Stdlib.max (get a i) (get b i))

let leq a b =
  let rec go i = i >= Array.length a || (a.(i) <= get b i && go (i + 1)) in
  go 0

type order = Equal | Before | After | Concurrent

let compare a b =
  match (leq a b, leq b a) with
  | true, true -> Equal
  | true, false -> Before
  | false, true -> After
  | false, false -> Concurrent

let to_string c =
  "["
  ^ String.concat ";" (Array.to_list (Array.map string_of_int c))
  ^ "]"

(** Schedule certificates: one decision per same-instant choice point.

    A decision records the index picked out of the FIFO-ordered enabled
    list, plus how many events were enabled (for replay validation).
    The empty certificate is the default FIFO schedule. The textual
    form is ["index/count"] pairs joined by commas — ["1/3,0/2"] — or
    ["-"] for the empty schedule; it round-trips through
    {!to_string}/{!of_string} and is what [bin/modelcheck] prints and
    [--replay] accepts. *)

type decision = { index : int; count : int }
type t = decision list

val empty : t
val is_empty : t -> bool
val length : t -> int
val to_string : t -> string

val of_string : string -> t
(** Raises [Invalid_argument] on malformed input (including an index
    out of range of its count, or a count below 2 — a one-event instant
    is not a choice point). *)

(* Wing–Gong linearizability search, P-compositional by cell.

   Per-cell events are small integers into an array; the DFS linearizes
   one precedence-minimal, specification-consistent event at a time,
   memoizing failed (remaining-set, register-value) states.  Candidates
   are tried in capture order: the capture order IS the effect order
   (serves read their values in the same atomic step that deposited
   them), so for purely physical histories the first DFS path succeeds
   without backtracking — violations require a logical operation whose
   claimed result disagrees with its physical effects. *)

type mode = Linearizable | Sequential

type cell_verdict = Cell_ok of int | Cell_violation of int | Cell_budget of int

type stats = { cells : int; events : int; explored : int; skipped : int }

type verdict =
  | Pass of stats
  | Fail of {
      cell : History.cell;
      init : History.value;
      witness : History.event list;
      cell_events : History.event list;
      stats : stats;
    }

let default_budget = 200_000

let partition events =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (e : History.event) ->
      match Hashtbl.find_opt tbl e.History.cell with
      | Some l -> l := e :: !l
      | None ->
          Hashtbl.replace tbl e.History.cell (ref [ e ]);
          order := e.History.cell :: !order)
    events;
  List.rev_map
    (fun cell -> (cell, List.rev !(Hashtbl.find tbl cell)))
    !order

(* The sequential register+CAS specification: one transition per event,
   over Known/Unknown values.  Unknown reads constrain nothing; Unknown
   writes clobber the register to an unconstrained state. *)
let step (state : History.value) (op : History.operation) :
    History.value option =
  match (op, state) with
  | History.Read History.Unknown, _ -> Some state
  | History.Read (History.Known v), History.Known s ->
      if Int32.equal s v then Some state else None
  | History.Read (History.Known v), History.Unknown ->
      Some (History.Known v)
  | History.Write v, _ -> Some v
  | History.Cas { success = true; expected; desired; _ }, History.Known s ->
      if Int32.equal s expected then Some (History.Known desired) else None
  | History.Cas { success = true; desired; _ }, History.Unknown ->
      Some (History.Known desired)
  | History.Cas { success = false; expected; witness; _ }, History.Known s ->
      if Int32.equal s expected then None
      else (
        match witness with
        | History.Known w -> if Int32.equal s w then Some state else None
        | History.Unknown -> Some state)
  | History.Cas { success = false; expected; witness; _ }, History.Unknown -> (
      match witness with
      | History.Known w ->
          if Int32.equal w expected then None else Some (History.Known w)
      | History.Unknown -> Some state)

(* Program order: an agent is sequential, so its events are totally
   ordered by invocation time (capture order breaking ties).  This holds
   per cell even under a pipelined window — all of one agent's requests
   for one cell ride the same FIFO link. *)
let program_before (a : History.event) (b : History.event) =
  String.equal a.History.agent b.History.agent
  && (Sim.Time.(a.History.inv < b.History.inv)
     || (Sim.Time.equal a.History.inv b.History.inv
        && a.History.id < b.History.id))

let precedes mode (a : History.event) (b : History.event) =
  program_before a b
  || (mode = Linearizable
     &&
     match a.History.resp with
     | Some r -> Sim.Time.(r < b.History.inv)
     | None -> false)

exception Budget_hit of int

let check_cell ?(mode = Linearizable) ?(budget = default_budget) ~init events
    =
  let evs =
    Array.of_list
      (List.sort
         (fun (a : History.event) b -> compare a.History.id b.History.id)
         events)
  in
  let n = Array.length evs in
  if n = 0 then Cell_ok 0
  else begin
    (* Precedence successors and open-predecessor counts. *)
    let succs = Array.make n [] in
    let npred = Array.make n 0 in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j && precedes mode evs.(i) evs.(j) then begin
          succs.(i) <- j :: succs.(i);
          npred.(j) <- npred.(j) + 1
        end
      done
    done;
    let mask = Bytes.make ((n + 7) / 8) '\000' in
    let set i =
      let b = Char.code (Bytes.get mask (i / 8)) in
      Bytes.set mask (i / 8) (Char.chr (b lor (1 lsl (i mod 8))))
    in
    let unset i =
      let b = Char.code (Bytes.get mask (i / 8)) in
      Bytes.set mask (i / 8) (Char.chr (b land lnot (1 lsl (i mod 8))))
    in
    let taken = Array.make n false in
    let failed = Hashtbl.create 64 in
    let encode (state : History.value) =
      match state with
      | History.Unknown -> "?"
      | History.Known v -> Int32.to_string v
    in
    let explored = ref 0 in
    let rec dfs remaining state =
      if remaining = 0 then true
      else begin
        incr explored;
        if !explored > budget then raise (Budget_hit !explored);
        let key = Bytes.to_string mask ^ "/" ^ encode state in
        if Hashtbl.mem failed key then false
        else begin
          let ok = ref false in
          let i = ref 0 in
          while (not !ok) && !i < n do
            let c = !i in
            (if (not taken.(c)) && npred.(c) = 0 then
               match step state evs.(c).History.op with
               | None -> ()
               | Some state' ->
                   taken.(c) <- true;
                   set c;
                   List.iter (fun j -> npred.(j) <- npred.(j) - 1) succs.(c);
                   if dfs (remaining - 1) state' then ok := true;
                   List.iter (fun j -> npred.(j) <- npred.(j) + 1) succs.(c);
                   unset c;
                   taken.(c) <- false);
            incr i
          done;
          if not !ok then Hashtbl.replace failed key ();
          !ok
        end
      end
    in
    match dfs n init with
    | true -> Cell_ok !explored
    | false -> Cell_violation !explored
    | exception Budget_hit k -> Cell_budget k
  end

let minimize ?(mode = Linearizable) ?(budget = default_budget) ~init events =
  let violates evs =
    match check_cell ~mode ~budget ~init evs with
    | Cell_violation _ -> true
    | Cell_ok _ | Cell_budget _ -> false
  in
  if not (violates events) then events
  else begin
    (* Greedy 1-minimization to a fixpoint: drop any event whose removal
       keeps the violation, until no single removal does. *)
    let current = ref events in
    let progress = ref true in
    while !progress do
      progress := false;
      let rec try_drop kept = function
        | [] -> ()
        | (e : History.event) :: rest ->
            let without = List.rev_append kept rest in
            if violates without then begin
              current := without;
              progress := true
            end
            else try_drop (e :: kept) rest
      in
      try_drop [] !current
    done;
    List.sort
      (fun (a : History.event) b -> compare a.History.id b.History.id)
      !current
  end

let check ?(mode = Linearizable) ?(budget = default_budget) history =
  let cells = partition (History.events history) in
  let stats = ref { cells = 0; events = 0; explored = 0; skipped = 0 } in
  let rec go = function
    | [] -> Pass !stats
    | (cell, events) :: rest -> (
        let init = History.init_value history cell in
        let verdict = check_cell ~mode ~budget ~init events in
        let count skipped explored =
          stats :=
            {
              cells = !stats.cells + 1;
              events = !stats.events + List.length events;
              explored = !stats.explored + explored;
              skipped = !stats.skipped + skipped;
            }
        in
        match verdict with
        | Cell_ok explored ->
            count 0 explored;
            go rest
        | Cell_budget explored ->
            count 1 explored;
            go rest
        | Cell_violation explored ->
            count 0 explored;
            let witness = minimize ~mode ~budget ~init events in
            Fail { cell; init; witness; cell_events = events; stats = !stats })
  in
  go cells

let mode_to_string = function
  | Linearizable -> "linearizable"
  | Sequential -> "sequential"

let describe = function
  | Pass { cells; events; explored; skipped } ->
      Printf.sprintf "ok: %d cells, %d events, %d states explored%s" cells
        events explored
        (if skipped > 0 then Printf.sprintf " (%d cells skipped)" skipped
         else "")
  | Fail { cell; init; witness; cell_events; stats } ->
      Printf.sprintf
        "cell %s (init %s): no valid linearization; witness [%s] (%d of %d \
         events; %d states explored)"
        (History.cell_to_string cell)
        (History.value_to_string init)
        (String.concat "; " (List.map History.event_to_string witness))
        (List.length witness) (List.length cell_events) stats.explored

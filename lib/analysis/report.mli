(** Plain-text rendering of an analysis run, via {!Metrics.Table}. *)

val races_table : Race.t list -> string
val findings_table : Lint.finding list -> string

val summary : Monitor.t -> races:Race.t list -> findings:Lint.finding list -> string
(** One-line totals: agents, accesses, races, findings. *)

val print :
  title:string -> Monitor.t -> races:Race.t list -> findings:Lint.finding list -> unit

val json_escape : string -> string
(** Escape a string for inclusion inside a JSON string literal (without
    the surrounding quotes). *)

val schema_version : int
(** Version of the JSON shapes the analysis CLIs emit ([racecheck],
    [modelcheck], [chaoscheck], [lincheck]); every top-level object
    carries it as ["schema"]. Bump on any incompatible change. *)

val json :
  title:string -> Monitor.t -> races:Race.t list -> findings:Lint.finding list -> string
(** One JSON object per workload run: totals plus full race and finding
    lists. No trailing newline. *)

(** Writer combinators for the CLIs' hand-emitted JSON, so racecheck,
    modelcheck, lincheck, protocheck and obsreport all assemble their
    output the same way. Values are already-serialized fragments. *)
module Json : sig
  type t

  val str : string -> t
  val int : int -> t
  val bool : bool -> t
  val raw : string -> t
  (** An already-valid JSON fragment, included verbatim. *)

  val list : t list -> t
  val obj : (string * t) list -> t
  val to_string : t -> string
end

val emit : tool:string -> string -> unit
(** Self-validate [line] with {!Metrics.Json.parse} (exit 1 with a
    diagnostic on [tool]'s behalf if it fails) and print it. Every CLI
    [--json] line goes through here. *)

(** Plain-text rendering of an analysis run, via {!Metrics.Table}. *)

val races_table : Race.t list -> string
val findings_table : Lint.finding list -> string

val summary : Monitor.t -> races:Race.t list -> findings:Lint.finding list -> string
(** One-line totals: agents, accesses, races, findings. *)

val print :
  title:string -> Monitor.t -> races:Race.t list -> findings:Lint.finding list -> unit

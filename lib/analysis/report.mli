(** Plain-text rendering of an analysis run, via {!Metrics.Table}. *)

val races_table : Race.t list -> string
val findings_table : Lint.finding list -> string

val summary : Monitor.t -> races:Race.t list -> findings:Lint.finding list -> string
(** One-line totals: agents, accesses, races, findings. *)

val print :
  title:string -> Monitor.t -> races:Race.t list -> findings:Lint.finding list -> unit

val json_escape : string -> string
(** Escape a string for inclusion inside a JSON string literal (without
    the surrounding quotes). *)

val schema_version : int
(** Version of the JSON shapes the analysis CLIs emit ([racecheck],
    [modelcheck], [chaoscheck], [lincheck]); every top-level object
    carries it as ["schema"]. Bump on any incompatible change. *)

val json :
  title:string -> Monitor.t -> races:Race.t list -> findings:Lint.finding list -> string
(** One JSON object per workload run: totals plus full race and finding
    lists. No trailing newline. *)

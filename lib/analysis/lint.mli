(** Protocol-conformance lint over the monitor's event trace: uses of
    the remote-memory protocol that "work" in the sense that the kernel
    emulation tolerates them, but indicate a broken workload. *)

type finding = {
  rule : string;
      (** one of: ["stale-generation"], ["revoked-segment"], ["rights"],
          ["bounds"], ["write-inhibit"], ["unpinned"], ["poll-never"],
          ["notify-storm"], ["unbounded-retry"], ["no-retry-policy"] *)
  agent : string;  (** the offending agent *)
  key : Access.seg_key;
  detail : string;
}

val poll_threshold : int
(** Repeated identical READs of one location before ["poll-never"]
    fires (8). *)

val check : ?fault_capable:bool -> Monitor.t -> finding list
(** One finding per (rule, agent, region), in first-occurrence order.
    With [fault_capable] (default false — the reliable-fabric rules are
    unchanged), additionally fires ["no-retry-policy"] for every
    (agent, segment, op) that issued meta-instructions outside any
    {!Rmem.Recovery} policy: on a path where the fault plane may drop
    frames, a bare blocking op is a hang waiting to happen. *)

val describe : finding -> string

type t = {
  key : Access.seg_key;
  seg_name : string;
  a : Access.t;
  b : Access.t;
}

(* Byte-granular classification of a region's synchronization words: a
   byte is "sync" when some CAS touched it and no plain store ever did.
   Built per region from the access list itself, so an optimistic CAS
   retry loop never needs declaring. *)
let sync_bytes accesses =
  let atomic = Hashtbl.create 64 and plain = Hashtbl.create 64 in
  List.iter
    (fun (a : Access.t) ->
      let table =
        match a.kind with
        | Access.Atomic -> Some atomic
        | Access.Store -> Some plain
        | Access.Load -> None
      in
      match table with
      | None -> ()
      | Some table ->
          for b = a.off to a.off + a.count - 1 do
            Hashtbl.replace table b ()
          done)
    accesses;
  fun b -> Hashtbl.mem atomic b && not (Hashtbl.mem plain b)

let overlap_range (a : Access.t) (b : Access.t) =
  (Stdlib.max a.off b.off, Stdlib.min (a.off + a.count) (b.off + b.count))

let exempt monitor ~key ~is_sync (a : Access.t) (b : Access.t) =
  (a.kind = Access.Atomic && b.kind = Access.Atomic)
  ||
  let lo, hi = overlap_range a b in
  let covered byte =
    is_sync byte
    || Monitor.is_declared_sync monitor ~key ~off:(byte land lnot 3)
  in
  let rec all byte = byte >= hi || (covered byte && all (byte + 1)) in
  all lo

let find monitor =
  let by_key = Hashtbl.create 8 in
  List.iter
    (fun (a : Access.t) ->
      let l =
        match Hashtbl.find_opt by_key a.key with
        | Some l -> l
        | None ->
            let l = ref [] in
            Hashtbl.replace by_key a.key l;
            l
      in
      l := a :: !l)
    (Monitor.accesses monitor);
  let races = ref [] in
  let seen = Hashtbl.create 16 in
  Hashtbl.iter
    (fun key l ->
      let accesses = List.rev !l in
      let is_sync = sync_bytes accesses in
      let arr = Array.of_list accesses in
      for i = 0 to Array.length arr - 1 do
        for j = i + 1 to Array.length arr - 1 do
          let a = arr.(i) and b = arr.(j) in
          if
            a.Access.agent <> b.Access.agent
            && Access.overlaps a b
            && (Access.is_write a || Access.is_write b)
            && (not (exempt monitor ~key ~is_sync a b))
            && (not (Access.ordered_before a b))
            && not (Access.ordered_before b a)
          then begin
            let lo, _ = overlap_range a b in
            let dedup = (key, a.Access.agent, b.Access.agent, lo) in
            if not (Hashtbl.mem seen dedup) then begin
              Hashtbl.replace seen dedup ();
              races :=
                { key; seg_name = a.Access.seg_name; a; b } :: !races
            end
          end
        done
      done)
    by_key;
  List.rev !races

let describe r =
  Printf.sprintf "race on %s (%s): %s || %s" r.seg_name
    (Access.key_to_string r.key)
    (Access.describe r.a) (Access.describe r.b)

type t = {
  rule : string;
  program : string;
  node : int;
  node_name : string;
  seg : string;
  detail : string;
}

let rules =
  [
    "static-bounds";
    "static-rights";
    "static-unknown-segment";
    "static-unbound-var";
    "static-unfenced-release";
    "static-unfenced-publish";
    "static-cas-reissue";
    "static-unbounded-retry";
    "static-lock-leak";
  ]

let make ~rule ~program ~node ~node_name ~seg detail =
  assert (List.mem rule rules);
  { rule; program; node; node_name; seg; detail }

let describe f =
  Printf.sprintf "[%s] %s node %d (%s) on %s: %s" f.rule f.program f.node
    f.node_name f.seg f.detail

(** Closed integer intervals — the abstract domain for segment offsets
    and extents in the static verifier. *)

type t = { lo : int; hi : int }

val make : int -> int -> t
(** Raises [Invalid_argument] when [lo > hi]. *)

val exact : int -> t
val add : t -> t -> t
val mul : t -> t -> t
(** Exact interval product (all four endpoint products considered). *)

val join : t -> t -> t
val contains : t -> int -> bool
val overlaps : t -> t -> bool
val is_exact : t -> bool
val to_string : t -> string

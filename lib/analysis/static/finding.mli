(** One static protocol violation, proven from a program's text and its
    manifest — no execution involved. *)

type t = {
  rule : string;
      (** one of: ["static-bounds"], ["static-rights"],
          ["static-unknown-segment"], ["static-unbound-var"],
          ["static-unfenced-release"], ["static-unfenced-publish"],
          ["static-cas-reissue"], ["static-unbounded-retry"],
          ["static-lock-leak"] *)
  program : string;
  node : int;
  node_name : string;  (** the node program's role label *)
  seg : string;  (** offending segment (["-"] for program-level rules) *)
  detail : string;
}

val rules : string list
(** Every rule name the verifier can emit. *)

val make :
  rule:string ->
  program:string ->
  node:int ->
  node_name:string ->
  seg:string ->
  string ->
  t
(** Asserts [rule] is a known rule name. *)

val describe : t -> string

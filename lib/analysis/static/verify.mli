(** The abstract interpreter: proves rights, bounds, fence ordering and
    retry-combinator discipline over a {!Workload.Program} without
    executing it.

    Offsets and extents evaluate in an interval domain ({!Interval})
    against the program's export manifest; a fence-order automaton
    tracks each node's unflushed remote WRITEs per exporter (a blocking
    reply witnesses earlier writes on the same FIFO link); retry
    combinators are checked structurally for the lost-reply CAS
    double-apply class, unbounded blind spinning, and leaked
    acquire-role locks. *)

val check : Workload.Program.t -> Finding.t list
(** All findings over every node program, in program order, deduplicated
    by (rule, node, segment). Empty means statically clean. *)

(* Pipelining-safety classifier.

   The pipelined issue engine (PR 5) stages WRITEs and flushes a batch
   at the next ordering point.  A program is batch-equivalent exactly
   when no instruction *observes* a staged write before an intervening
   fence: replies to blocking ops would witness writes the batch has
   not sent yet, and a doorbell could overtake the data it announces.

   The walk mirrors the engine's staging rule — Writes stage, only a
   Fence (or the engine's own flush at a blocking op) drains — and
   reports every ordering obligation it finds.  [Ordered] is not a
   defect: it tells the runtime which programs must run with batching
   off (or with the engine's conservative flush-on-sync), while
   [Batchable] programs may enjoy the full pipelining win. *)

module P = Workload.Program

type verdict = Batchable | Ordered of string list

let classify (p : P.t) =
  let reasons = ref [] in
  let note node_name fmt =
    Printf.ksprintf
      (fun s ->
        let line = Printf.sprintf "%s: %s" node_name s in
        if not (List.mem line !reasons) then reasons := line :: !reasons)
      fmt
  in
  let exporter_of seg =
    match Rmem.Manifest.exporter p.P.manifest seg with
    | Some e -> e
    | None -> -1
  in
  List.iter
    (fun (np : P.node_program) ->
      (* staged: (seg, exporter) of writes the batch still holds *)
      let staged = ref [] in
      let drain exporter =
        staged := List.filter (fun (_, e) -> e <> exporter) !staged
      in
      let rec walk (i : P.instr) =
        match i with
        | P.Write { seg; notify; _ } ->
            let e = exporter_of seg in
            if notify && List.exists (fun (_, x) -> x <> e) !staged then
              note np.P.name
                "doorbell on %s may overtake staged writes to %s" seg
                (String.concat ", "
                   (List.sort_uniq compare
                      (List.filter_map
                         (fun (s, x) -> if x <> e then Some s else None)
                         !staged)));
            staged := (seg, e) :: !staged
        | P.Read { seg; _ } | P.Read_word { seg; _ } ->
            let e = exporter_of seg in
            if np.P.node <> e then begin
              if List.exists (fun (s, _) -> s = seg) !staged then
                note np.P.name
                  "reads %s while its own write to it is still staged" seg;
              drain e
            end
        | P.Cas { seg; _ } ->
            let e = exporter_of seg in
            if !staged <> [] then
              note np.P.name
                "atomic op on %s must order staged writes to %s" seg
                (String.concat ", "
                   (List.sort_uniq compare (List.map fst !staged)));
            drain e
        | P.Fence { seg } -> drain (exporter_of seg)
        | P.Wait _ | P.Local_read _ | P.Local_write _ -> ()
        | P.For { body; _ } ->
            (* twice, as in {!Verify}: catch cross-iteration staging *)
            List.iter walk body;
            List.iter walk body
        | P.Retry { body; _ } -> List.iter walk body
      in
      List.iter walk np.P.body)
    p.P.nodes;
  match List.rev !reasons with [] -> Batchable | rs -> Ordered rs

let verdict_to_string = function
  | Batchable -> "batchable"
  | Ordered _ -> "ordered"

(* Closed integer intervals — the abstract domain for segment offsets
   and extents.  Every program expression (constants, loop variables,
   declared-range word reads, sums and products of those) evaluates to
   one of these; bounds checks compare interval endpoints against
   manifest extents. *)

type t = { lo : int; hi : int }

let make lo hi =
  if lo > hi then invalid_arg "Interval.make: lo > hi";
  { lo; hi }

let exact n = { lo = n; hi = n }

let add a b = { lo = a.lo + b.lo; hi = a.hi + b.hi }

let mul a b =
  let products = [ a.lo * b.lo; a.lo * b.hi; a.hi * b.lo; a.hi * b.hi ] in
  {
    lo = List.fold_left min max_int products;
    hi = List.fold_left max min_int products;
  }

let join a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

let contains t n = t.lo <= n && n <= t.hi

let overlaps a b = a.lo <= b.hi && b.lo <= a.hi

let is_exact t = t.lo = t.hi

let to_string t =
  if is_exact t then string_of_int t.lo
  else Printf.sprintf "[%d,%d]" t.lo t.hi

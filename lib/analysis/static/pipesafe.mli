(** Pipelining-safety classifier: is a program equivalent under the
    batched issue engine's write staging?

    [Batchable] programs never observe their own staged writes before a
    fence, so the engine may coalesce their WRITEs freely. [Ordered]
    carries the list of ordering obligations — each names the node and
    the instruction that would witness a staged write — and means the
    program must run with batching off or rely on the engine's
    conservative flush at every sync point. *)

type verdict = Batchable | Ordered of string list

val classify : Workload.Program.t -> verdict
val verdict_to_string : verdict -> string

(* The abstract interpreter over {!Workload.Program}.

   Three analyses share one walk of each node program:

   - an interval evaluation of offset/extent expressions (loop
     variables and declared-range word reads bound in an environment),
     checked against the manifest's extents and per-importer rights —
     the map-time pre-validation story;
   - a fence-order automaton tracking this node's unflushed remote
     WRITEs per exporter: a release-role CAS issued while any remain is
     the paper's missing-fence hazard (the release publishes the
     *issue-time* clock, so in-flight writes are unwitnessed even
     though the CAS itself blocks), and a doorbell raised while writes
     to a *different* exporter are unflushed may overtake the data it
     announces.  A completed blocking reply from an exporter witnesses
     every earlier write to it (links are FIFO), so reads and CAS
     clear that exporter's pending set;
   - structural checks on the retry combinators: a reply-trusting
     reissue wrapper around a CAS (the lost-reply double-apply class),
     a blind unbounded spin with neither backoff nor a fresh
     observation in its body, and an acquire-role CAS never matched by
     a release (lock leak).

   Loop bodies are interpreted twice so cross-iteration hazards (an
   unflushed write from iteration [i] meeting a sync point in [i+1])
   are seen; retry bodies once — a retried acquire still acquires
   exactly once. *)

module P = Workload.Program

type state = {
  mutable env : (string * Interval.t) list;
  mutable unflushed : (string * int) list;
      (* (segment, exporter) of own WRITEs not yet witnessed *)
  mutable held : (string * string) list; (* (segment, offset) locks *)
}

type ctx = {
  program : string;
  node : int;
  node_name : string;
  manifest : Rmem.Manifest.t;
  mutable findings : Finding.t list;
  seen : (string * string * string, unit) Hashtbl.t;
}

let report ctx ~rule ~seg detail =
  if not (Hashtbl.mem ctx.seen (rule, ctx.node_name, seg)) then begin
    Hashtbl.replace ctx.seen (rule, ctx.node_name, seg) ();
    ctx.findings <-
      Finding.make ~rule ~program:ctx.program ~node:ctx.node
        ~node_name:ctx.node_name ~seg detail
      :: ctx.findings
  end

let rec eval ctx st (e : P.expr) =
  match e with
  | P.Const n -> Some (Interval.exact n)
  | P.Var x -> (
      match List.assoc_opt x st.env with
      | Some i -> Some i
      | None ->
          report ctx ~rule:"static-unbound-var" ~seg:"-"
            (Printf.sprintf "expression uses undeclared variable %s" x);
          None)
  | P.Add (a, b) -> (
      match (eval ctx st a, eval ctx st b) with
      | Some a, Some b -> Some (Interval.add a b)
      | _ -> None)
  | P.Mul (a, b) -> (
      match (eval ctx st a, eval ctx st b) with
      | Some a, Some b -> Some (Interval.mul a b)
      | _ -> None)

let export_of ctx seg =
  match Rmem.Manifest.find ctx.manifest seg with
  | Some e -> Some e
  | None ->
      report ctx ~rule:"static-unknown-segment" ~seg
        "segment is not in the export manifest";
      None

let check_bounds ctx ~seg ~extent off len =
  match (off, len) with
  | Some (off : Interval.t), Some (len : Interval.t) ->
      if off.Interval.lo < 0 || off.Interval.hi + len.Interval.hi > extent
      then
        report ctx ~rule:"static-bounds" ~seg
          (Printf.sprintf
             "access at %s of %s byte(s) can reach [%d..%d), outside the \
              %d-byte extent"
             (Interval.to_string off) (Interval.to_string len)
             (min 0 off.Interval.lo)
             (off.Interval.hi + len.Interval.hi)
             extent)
  | _ -> ()

let check_rights ctx (e : Rmem.Manifest.export) op op_name =
  if ctx.node <> e.Rmem.Manifest.exporter then
    match
      Rmem.Manifest.rights_for ctx.manifest ~seg:e.Rmem.Manifest.seg
        ~importer:ctx.node
    with
    | Some r when Rmem.Rights.allows r op -> ()
    | _ ->
        report ctx ~rule:"static-rights" ~seg:e.Rmem.Manifest.seg
          (Printf.sprintf "%s issued without the %s right (holds %s)" op_name
             op_name
             (match
                Rmem.Manifest.rights_for ctx.manifest
                  ~seg:e.Rmem.Manifest.seg ~importer:ctx.node
              with
             | Some r -> Rmem.Manifest.rights_to_string r
             | None -> "none"))

(* A completed reply from an exporter witnesses every earlier write
   this node sent it: FIFO links deposit them first. *)
let witness st exporter =
  st.unflushed <- List.filter (fun (_, e) -> e <> exporter) st.unflushed

let require_local ctx (e : Rmem.Manifest.export) what =
  if ctx.node <> e.Rmem.Manifest.exporter then
    report ctx ~rule:"static-rights" ~seg:e.Rmem.Manifest.seg
      (Printf.sprintf
         "%s of a segment exported by node %d — home-node accesses only"
         what e.Rmem.Manifest.exporter)

let rec has_observation body =
  List.exists
    (fun (i : P.instr) ->
      match i with
      | P.Read _ | P.Read_word _ | P.Local_read _ | P.Wait _ -> true
      | P.For { body; _ } | P.Retry { body; _ } -> has_observation body
      | _ -> false)
    body

let rec first_cas_seg body =
  List.find_map
    (fun (i : P.instr) ->
      match i with
      | P.Cas { seg; _ } -> Some seg
      | P.For { body; _ } | P.Retry { body; _ } -> first_cas_seg body
      | _ -> None)
    body

let rec instr ctx st (i : P.instr) =
  match i with
  | P.Read { seg; off; len } ->
      Option.iter
        (fun (e : Rmem.Manifest.export) ->
          check_bounds ctx ~seg ~extent:e.Rmem.Manifest.len (eval ctx st off)
            (eval ctx st len);
          check_rights ctx e Rmem.Rights.Read_op "READ";
          witness st e.Rmem.Manifest.exporter)
        (export_of ctx seg)
  | P.Read_word { seg; off; var; lo; hi } ->
      Option.iter
        (fun (e : Rmem.Manifest.export) ->
          check_bounds ctx ~seg ~extent:e.Rmem.Manifest.len (eval ctx st off)
            (Some (Interval.exact P.word));
          if ctx.node <> e.Rmem.Manifest.exporter then begin
            check_rights ctx e Rmem.Rights.Read_op "READ";
            witness st e.Rmem.Manifest.exporter
          end)
        (export_of ctx seg);
      if lo <= hi then st.env <- (var, Interval.make lo hi) :: st.env
  | P.Write { seg; off; len; notify } ->
      Option.iter
        (fun (e : Rmem.Manifest.export) ->
          check_bounds ctx ~seg ~extent:e.Rmem.Manifest.len (eval ctx st off)
            (eval ctx st len);
          check_rights ctx e Rmem.Rights.Write_op "WRITE";
          if notify then begin
            let elsewhere =
              List.filter (fun (_, x) -> x <> e.Rmem.Manifest.exporter)
                st.unflushed
            in
            if elsewhere <> [] then
              report ctx ~rule:"static-unfenced-publish" ~seg
                (Printf.sprintf
                   "doorbell raised while writes to %s are unfenced — the \
                    notification may overtake the data it announces"
                   (String.concat ", " (List.map fst elsewhere)))
          end;
          st.unflushed <- (seg, e.Rmem.Manifest.exporter) :: st.unflushed)
        (export_of ctx seg)
  | P.Cas { seg; off; role } ->
      Option.iter
        (fun (e : Rmem.Manifest.export) ->
          check_bounds ctx ~seg ~extent:e.Rmem.Manifest.len (eval ctx st off)
            (Some (Interval.exact P.word));
          check_rights ctx e Rmem.Rights.Cas_op "CAS";
          let off_name =
            match eval ctx st off with
            | Some i -> Interval.to_string i
            | None -> P.expr_to_string off
          in
          (match role with
          | P.Release ->
              if st.unflushed <> [] then
                report ctx ~rule:"static-unfenced-release" ~seg
                  (Printf.sprintf
                     "release CAS issued with writes to %s unfenced — the \
                      release publishes its issue-time clock, so those \
                      writes are unwitnessed when the lock moves on"
                     (String.concat ", "
                        (List.sort_uniq compare (List.map fst st.unflushed))));
              st.held <-
                (match st.held with
                | (s, o) :: rest when s = seg && o = off_name -> rest
                | held -> List.filter (fun (s, o) -> not (s = seg && o = off_name)) held)
          | P.Acquire -> st.held <- (seg, off_name) :: st.held
          | P.Plain -> ());
          witness st e.Rmem.Manifest.exporter)
        (export_of ctx seg)
  | P.Fence { seg } ->
      Option.iter
        (fun (e : Rmem.Manifest.export) ->
          witness st e.Rmem.Manifest.exporter)
        (export_of ctx seg)
  | P.Wait { seg } -> ignore (export_of ctx seg)
  | P.Local_read { seg; off; len } ->
      Option.iter
        (fun (e : Rmem.Manifest.export) ->
          require_local ctx e "local read";
          check_bounds ctx ~seg ~extent:e.Rmem.Manifest.len (eval ctx st off)
            (eval ctx st len))
        (export_of ctx seg)
  | P.Local_write { seg; off; len } ->
      Option.iter
        (fun (e : Rmem.Manifest.export) ->
          require_local ctx e "local write";
          check_bounds ctx ~seg ~extent:e.Rmem.Manifest.len (eval ctx st off)
            (eval ctx st len))
        (export_of ctx seg)
  | P.For { var; lo; hi; body } ->
      if lo <= hi then begin
        st.env <- (var, Interval.make lo hi) :: st.env;
        (* Twice: cross-iteration hazards (iteration i's unflushed
           writes meeting iteration i+1's sync points). *)
        List.iter (instr ctx st) body;
        List.iter (instr ctx st) body
      end
  | P.Retry { attempts; backoff; verified; body } ->
      let cas_seg = first_cas_seg body in
      (if (not verified) && attempts <> Some 1 then
         match cas_seg with
         | Some seg ->
             report ctx ~rule:"static-cas-reissue" ~seg
               "reply-trusting CAS reissue: a lost reply makes two \
                applications look like one win — verify against the word \
                instead"
         | None -> ());
      if attempts = None && (not backoff) && not (has_observation body) then
        report ctx ~rule:"static-unbounded-retry"
          ~seg:(Option.value cas_seg ~default:"-")
          "unbounded retry with no backoff and no fresh observation in its \
           body";
      (* Once: a retried acquire still acquires exactly once. *)
      List.iter (instr ctx st) body

let check_node ~program ~manifest seen (np : P.node_program) =
  let ctx =
    {
      program;
      node = np.P.node;
      node_name = np.P.name;
      manifest;
      findings = [];
      seen;
    }
  in
  let st = { env = []; unflushed = []; held = [] } in
  List.iter (instr ctx st) np.P.body;
  List.iter
    (fun (seg, off) ->
      report ctx ~rule:"static-lock-leak" ~seg
        (Printf.sprintf
           "lock word %s[%s] acquired but never released on this path" seg off))
    st.held;
  List.rev ctx.findings

let check (p : P.t) =
  let seen = Hashtbl.create 16 in
  List.concat_map (check_node ~program:p.P.name ~manifest:p.P.manifest seen)
    p.P.nodes

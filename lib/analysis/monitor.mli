(** The dynamic instrumentation hub: attaches to the hooks exposed by
    {!Rmem.Remote_memory}, {!Rmem.Notification}, {!Svm.Svm} and
    {!Cluster.Lrpc}, maintains a vector clock per node agent, and
    records every shared-memory access with its happens-before stamps.

    The clock model, briefly: each node is one agent (the simulator's
    cooperative scheduling makes a node's activities sequential). Every
    recorded event ticks the acting agent. An access carries the
    issuer's clock at {e issue} time as its stamp; its memory effect
    becomes a visibility witness only when the issuer can {e know} the
    serve happened — a READ/CAS reply on the same link (FIFO flushes
    earlier writes), or a notification delivered to the destination
    user. Synchronization edges: a successful CAS publishes the
    issuer's issue-time clock into a per-word lock clock at serve and
    joins the previous holder's publication at completion
    (release/acquire); a delivered notification joins the sender's
    stamp into the destination agent. *)

type t

val create : Sim.Engine.t -> t

val attach_rmem : t -> Rmem.Remote_memory.t -> unit
(** Subscribe to a node's remote-memory events (and, transitively, to
    the notification descriptors of every segment it exports). *)

val attach_svm : t -> Svm.t -> unit
val attach_lrpc : t -> unit
(** Count same-node LRPC control transfers (ticks the calling agent).
    The hook is global to {!Cluster.Lrpc}; the latest attached monitor
    wins. *)

val local_access :
  t ->
  node:Cluster.Node.t ->
  segment:Rmem.Segment.t ->
  kind:Access.kind ->
  off:int ->
  count:int ->
  ?value:int32 ->
  unit ->
  unit
(** Record a direct touch of exported memory on its home node (the
    address-space loads/stores the hooks cannot see). Call it where the
    workload touches the segment. With [value] and a single fully
    covered word, the history records the known word value; without it
    the touched cells record {!History.Unknown}. *)

(** {1 Operation history (linearizability)} *)

val history : t -> History.t
(** The client-observed operation history captured alongside the access
    trace — {!Linearize} checks it. *)

val logical_begin : t -> agent_name:string -> unit
(** Open a {!History.scope_begin} logical-operation scope for an agent
    (names are ["node<addr>"]): its physical operations are suppressed
    until {!logical_commit} replaces them with one logical event. *)

val logical_commit :
  t -> agent_name:string -> cell:History.cell -> op:History.operation -> unit
(** Close the scope with the wrapper's client-facing result. *)

val dds_hook : t -> Dds.Hook.t
(** Adapter for {!Dds.Hook}: [Begin] opens a logical-operation scope
    for agent ["node<addr>"], [Commit] closes it with the operation's
    designated cell and result. *)

val declare_sync_word : t -> key:Access.seg_key -> off:int -> unit
(** Mark the aligned word at [off] as a synchronization word: races
    confined to it are exempt (in addition to the inferred CAS-only
    words). *)

(** {1 Results} *)

val accesses : t -> Access.t list
(** All recorded accesses, in recording order. *)

val access_count : t -> int
(** Number of accesses recorded so far (ids are dense from 0). *)

val accesses_from : t -> id:int -> Access.t list
(** Accesses with id at least [id], in recording order — the model
    checker's per-event delta, without rescanning the whole trace. *)

val retry_backoff_floor : Sim.Time.t
(** A failed CAS retried after at least this pause counts as backing
    off; only faster retries extend a consecutive-failure run. *)

val worst_cas_retries : t -> ((string * Access.seg_key * int) * int) list
(** Per (agent, segment, word offset): the longest run of consecutive
    failed CAS attempts with no backoff pause and no intervening
    non-CAS access to the segment by that agent. Sorted. *)

val unpolicied_issues :
  t -> ((string * Access.seg_key * Rmem.Rights.op) * int) list
(** Per (agent, segment, op): meta-instructions issued outside any
    {!Rmem.Recovery} policy execution. Sorted. Feeds the
    [no-retry-policy] lint on fault-capable paths. *)

type rejection = {
  site : [ `Issue | `Serve ];
  agent_name : string;  (** the offending issuer *)
  key : Access.seg_key;
  op : Rmem.Rights.op;
  off : int;
  count : int;
  status : Rmem.Status.t;
  time : Sim.Time.t;
}

val rejections : t -> rejection list
val nacks : t -> int
(** Write nacks observed back at issuers. *)

val policy_of : t -> Access.seg_key -> Rmem.Segment.notify_policy option
val is_declared_sync : t -> key:Access.seg_key -> off:int -> bool
val agent_count : t -> int
val lrpc_calls : t -> int

val leaked_lrpc_monitors : t -> int
(** LRPC monitors registered via {!Cluster.Lrpc.add_monitor} since this
    monitor was created and never removed — the monitor-leak lint's
    evidence. *)

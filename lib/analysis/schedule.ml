(* Compact schedule certificates.

   A run is fully determined by what the explorer picked at each
   same-instant choice point: the index into the FIFO-ordered enabled
   list.  The enabled count rides along so a certificate can be sanity
   checked against the run it directs — a replay that sees a different
   enabled count diverged from the certified execution. *)

type decision = { index : int; count : int }
type t = decision list

let empty = []
let is_empty t = t = []
let length = List.length

let to_string = function
  | [] -> "-"
  | t ->
      String.concat ","
        (List.map (fun d -> Printf.sprintf "%d/%d" d.index d.count) t)

let of_string s =
  let s = String.trim s in
  if s = "" || s = "-" then []
  else
    String.split_on_char ',' s
    |> List.map (fun part ->
           match String.split_on_char '/' (String.trim part) with
           | [ index; count ] -> (
               match (int_of_string_opt index, int_of_string_opt count) with
               | Some index, Some count
                 when count >= 2 && index >= 0 && index < count ->
                   { index; count }
               | _ ->
                   invalid_arg
                     (Printf.sprintf "Schedule.of_string: bad decision %S" part))
           | _ ->
               invalid_arg
                 (Printf.sprintf "Schedule.of_string: bad decision %S" part))

(** Wing–Gong linearizability checking over captured {!History}s.

    The checker is {e P-compositional}: a word-granular history is
    linearizable iff every per-cell sub-history is (Horn & Kroening's
    P-compositionality; locality in Herlihy & Wing), so {!partition}
    splits the history per (segment, word) cell and each cell is
    searched independently against the sequential register+CAS
    specification. Within a cell the search enumerates linearization
    points in Wing–Gong style: repeatedly pick a precedence-minimal
    remaining event whose result is consistent with the current
    register value, memoizing (remaining-set, value) states.

    Two precedence relations select the memory model:

    - {!Linearizable} — same-agent program order plus real time: [e]
      precedes [f] when [e]'s response is before [f]'s invocation.
    - {!Sequential} — program order only, the just-in-time fallback for
      checking the weaker model. Per Golab et al. (arXiv:1109.5153)
      sequential consistency is {e not} compositional, so per-cell SC
      (= cache coherence) is a necessary condition only; a per-cell SC
      violation still refutes whole-history SC.

    A violation is reported with a witness sub-history minimized to a
    local minimum: removing {e any} single event from the witness makes
    it linearizable again. *)

type mode = Linearizable | Sequential

type cell_verdict =
  | Cell_ok of int  (** search states explored *)
  | Cell_violation of int
  | Cell_budget of int
      (** search budget exhausted before a verdict — the cell is
          reported skipped, never as a violation *)

type stats = {
  cells : int;  (** cells checked *)
  events : int;  (** events across all cells *)
  explored : int;  (** total search states *)
  skipped : int;  (** cells abandoned on budget *)
}

type verdict =
  | Pass of stats
  | Fail of {
      cell : History.cell;
      init : History.value;
      witness : History.event list;  (** minimal, in capture order *)
      cell_events : History.event list;  (** the full cell history *)
      stats : stats;
    }

val partition :
  History.event list -> (History.cell * History.event list) list
(** Group events per cell, capture order preserved within each cell,
    cells in first-touch order. Precedence edges are preserved: two
    events of one cell are related in the sub-history exactly as in the
    whole history (precedence is defined pointwise on intervals and
    agents). *)

val check_cell :
  ?mode:mode -> ?budget:int -> init:History.value ->
  History.event list -> cell_verdict
(** Check one cell's events (any order; sorted internally) against the
    sequential specification starting from [init]. [budget] bounds
    explored search states (default 200k). *)

val minimize :
  ?mode:mode -> ?budget:int -> init:History.value ->
  History.event list -> History.event list
(** Given a violating cell history, greedily drop events while the rest
    still violates, to a 1-minimal witness: removing any remaining
    event yields a linearizable history. Returns the input unchanged if
    it does not violate. *)

val check : ?mode:mode -> ?budget:int -> History.t -> verdict
(** Check a whole history cell by cell; the first violating cell (in
    first-touch order) is reported with a minimized witness. *)

val describe : verdict -> string
val mode_to_string : mode -> string

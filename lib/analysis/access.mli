(** One recorded touch of shared memory, with everything the race
    checker needs: who, where, what kind, and its happens-before
    stamps. *)

type seg_key = { home : int; seg : int; gen : int }
(** Identity of a shared region: exporting node address, segment id,
    and export generation — two generations of the same id are
    different memories. The SVM comparator's region uses [seg = -1]
    under its manager's address. *)

type kind =
  | Load  (** remote READ, or a plain local load *)
  | Store  (** remote WRITE, or a plain local store *)
  | Atomic  (** CAS (successful or not: the word is accessed atomically) *)

type origin =
  | Meta of Rmem.Rights.op  (** a served meta-instruction, attributed to its issuer *)
  | Local  (** direct touch of exported memory on its home node *)
  | Svm  (** load/store through the shared-virtual-memory comparator *)

type t = {
  id : int;
  agent : int;  (** issuing / touching agent *)
  agent_name : string;
  key : seg_key;
  seg_name : string;
  kind : kind;
  off : int;
  count : int;
  time : Sim.Time.t;  (** simulation time the memory was touched *)
  stamp : Vclock.t;
      (** the agent's clock when the operation was issued: a lower bound
          on everything the touch happens-after *)
  mutable vis : Vclock.t list;
      (** visibility witnesses: clocks at moments where the touch was
          {e known} to have reached memory (read/CAS completion flushes,
          notification delivery). An event whose stamp dominates any
          witness happens-after this access. Empty until witnessed. *)
  origin : origin;
}

val is_write : t -> bool
val overlaps : t -> t -> bool
(** Same region and intersecting byte ranges (empty ranges never overlap). *)

val ordered_before : t -> t -> bool
(** [ordered_before a b]: some visibility witness of [a] is dominated by
    [b]'s issue stamp, so [a]'s memory effect happens-before [b]'s. *)

val key_to_string : seg_key -> string
val kind_to_string : kind -> string
val describe : t -> string

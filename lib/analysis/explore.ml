(* Stateless model checking over the sim engine's same-instant choice
   points.

   A run is re-executed from scratch for every schedule: a branch is a
   prefix of decisions (indices into the FIFO-ordered enabled list at
   each choice point) and everything beyond the prefix falls back to
   FIFO.  Exploration is depth-first over branches, pruned three ways:

   - dynamic partial-order reduction: an alternative is deferred only
     if the memory accesses of its causal cone (the event plus
     everything it transitively schedules, from the observed run)
     conflict with another enabled event's cone — commuting
     alternatives yield Mazurkiewicz-equivalent traces;
   - sleep sets: an alternative already explored at a choice point
     stays asleep in sibling branches until a conflicting access fires;
   - trace-equivalence hashing: a completed run whose Foata normal form
     (the canonical layering of its access trace by the conflict
     relation) was already seen is redundant and is neither checked nor
     expanded.

   Dependence is the PR-1 relation: two accesses conflict when they
   overlap in the same segment and are not both loads.  Interactions
   not mediated by monitored memory (pure mailbox traffic, say) are
   deliberately invisible to the reduction — same scope as the race
   detector — which the cone-wide conflict test compensates for in
   practice.

   Each executed schedule is checked for: engine-level deadlock (queue
   drained, workload unfinished), uncaught exceptions, divergence (per
   -run event bound), workload invariant violations, and — relative to
   the FIFO baseline — new races and new lint findings. *)

type config = { budget : int; max_depth : int; max_events : int }

let default_config = { budget = 2000; max_depth = 64; max_events = 50_000 }

type failure =
  | Deadlock of string
  | Exception of string
  | Diverged
  | Invariant_violated of string
  | Non_linearizable of string
  | New_race of string
  | New_finding of string

let describe_failure = function
  | Deadlock report -> report
  | Exception msg -> "uncaught exception: " ^ msg
  | Diverged -> "diverged: per-run event bound exceeded (livelock?)"
  | Invariant_violated name -> "invariant violated: " ^ name
  | Non_linearizable desc -> "history not linearizable: " ^ desc
  | New_race desc -> "race not present under FIFO: " ^ desc
  | New_finding desc -> "finding not present under FIFO: " ^ desc

let failure_kind = function
  | Deadlock _ -> "deadlock"
  | Exception _ -> "exception"
  | Diverged -> "diverged"
  | Invariant_violated _ -> "invariant"
  | Non_linearizable _ -> "linearizability"
  | New_race _ -> "race"
  | New_finding _ -> "finding"

type outcome = {
  schedule : Schedule.t;
  choice_points : int;
  failure : failure option;
}

type stats = {
  mutable executed : int;
  mutable distinct : int;
  mutable redundant : int;
  mutable pruned_dpor : int;
  mutable pruned_sleep : int;
  mutable deferred : int;
  mutable failing : int;
  mutable max_choice_points : int;
  mutable budget_exhausted : bool;
}

type result = {
  workload : string;
  stats : stats;
  baseline : outcome;
  failures : outcome list;  (* capped at [max_reported]; see stats.failing *)
}

let max_reported = 16

(* ---------------- access summaries and conflicts ---------------- *)

(* What DPOR needs of an access: where and whether it can write, plus
   the acting agent and kind — not for the conflict relation, but as
   the event label in trace hashing: two traces are Mazurkiewicz
   -equivalent only as permutations of the same *labeled* events, and
   without the agent two different agents' CASes on one word would
   alias, collapsing genuinely different serve orders into one
   "redundant" class. *)
type touch = {
  key : Access.seg_key;
  agent : int;
  kind : Access.kind;
  writes : bool;
  off : int;
  count : int;
}

type summary = touch list

let summarize accesses =
  List.map
    (fun (a : Access.t) ->
      {
        key = a.key;
        agent = a.agent;
        kind = a.kind;
        writes = (match a.kind with Access.Load -> false | _ -> true);
        off = a.off;
        count = a.count;
      })
    accesses

let touches_conflict a b =
  (a.writes || b.writes)
  && a.key = b.key
  && a.count > 0 && b.count > 0
  && a.off < b.off + b.count
  && b.off < a.off + a.count

let summaries_conflict s1 s2 =
  List.exists (fun a -> List.exists (touches_conflict a) s2) s1

(* ---------------- per-run recording ---------------- *)

type event = { seq : int; own : summary }

type cp = {
  position : int;
  enabled : int list;  (* FIFO order *)
  chosen : int;  (* index into [enabled] *)
  asleep : (int * summary) list;  (* still-sleeping alternatives *)
}

type run_status =
  | Completed
  | Deadlocked of string
  | Raised of string
  | Ran_off  (* exceeded max_events *)

type run = {
  decisions : Schedule.t;
  cps : cp list;  (* in choice-point order *)
  events : event list;  (* in firing order *)
  cones : (int, summary) Hashtbl.t;  (* seq -> causal-cone accesses *)
  status : run_status;
  invariant_failures : string list;
  lin_failure : string option;  (* Linearize verdict on the history *)
  races : Race.t list;
  findings : Lint.finding list;
}

exception Certificate_mismatch of string

(* Execute one schedule from scratch.  [directed] pins the first
   choice points; [sleep] (active from the last directed choice point
   on) suppresses already-explored siblings until a conflicting access
   wakes them. *)
let execute name ~directed ~sleep:branch_sleep ~max_events =
  let prep = Scenarios.prepare name in
  Fun.protect ~finally:prep.teardown (fun () ->
      let engine = Cluster.Testbed.engine prep.testbed in
      Sim.Engine.set_parent_tracking engine true;
      Sim.Engine.set_deadlock_detection engine false;
      let monitor = prep.monitor in
      let directed = Array.of_list directed in
      let decisions = ref [] in
      let cps = ref [] in
      let events = ref [] in
      let sleep = ref (if Array.length directed = 0 then branch_sleep else []) in
      let fired = ref 0 in
      let status = ref Completed in
      (try
         let running = ref true in
         while !running do
           if !fired >= max_events then begin
             status := Ran_off;
             running := false
           end
           else
             match Sim.Engine.next_enabled engine with
             | None ->
                 if not (prep.finished ()) then
                   status :=
                     Deadlocked
                       (Sim.Engine.deadlock_report (Sim.Engine.blocked engine));
                 running := false
             | Some { Sim.Engine.enabled; _ } ->
                 let seq =
                   match enabled with
                   | [ seq ] -> seq
                   | _ ->
                       let position = List.length !cps in
                       let count = List.length enabled in
                       let index =
                         if position < Array.length directed then begin
                           let d = directed.(position) in
                           if d.Schedule.count <> count || d.Schedule.index >= count
                           then
                             raise
                               (Certificate_mismatch
                                  (Printf.sprintf
                                     "choice point %d: certificate says %d/%d, \
                                      run offers %d enabled events"
                                     position d.Schedule.index d.Schedule.count
                                     count));
                           d.Schedule.index
                         end
                         else 0
                       in
                       (* The sleep set belongs to the branch point: it
                          starts mattering at the last directed choice. *)
                       if position = Array.length directed - 1 then
                         sleep := branch_sleep;
                       cps :=
                         { position; enabled; chosen = index; asleep = !sleep }
                         :: !cps;
                       decisions := { Schedule.index; count } :: !decisions;
                       List.nth enabled index
                 in
                 let before = Monitor.access_count monitor in
                 let stepped = Sim.Engine.step_seq engine seq in
                 assert stepped;
                 let own =
                   summarize (Monitor.accesses_from monitor ~id:before)
                 in
                 if own <> [] then
                   sleep :=
                     List.filter
                       (fun (_, cone) -> not (summaries_conflict own cone))
                       !sleep;
                 events := { seq; own } :: !events;
                 incr fired
         done
       with
      | Certificate_mismatch _ as exn -> raise exn
      | exn -> status := Raised (Printexc.to_string exn));
      let events = List.rev !events in
      (* Causal cones: every access charges the event that recorded it
         and all its scheduling ancestors. *)
      let cones = Hashtbl.create 64 in
      List.iter
        (fun e ->
          if e.own <> [] then begin
            let rec charge seq =
              let cur = Option.value (Hashtbl.find_opt cones seq) ~default:[] in
              Hashtbl.replace cones seq (e.own @ cur);
              match Sim.Engine.parent engine seq with
              | Some p -> charge p
              | None -> ()
            in
            charge e.seq
          end)
        events;
      let races, findings, invariant_failures, lin_failure =
        match !status with
        | Completed ->
            ( Race.find monitor,
              Lint.check monitor,
              List.filter_map
                (fun (name, check) -> if check () then None else Some name)
                prep.invariants,
              match Linearize.check (Monitor.history monitor) with
              | Linearize.Pass _ -> None
              | Linearize.Fail _ as verdict ->
                  Some (Linearize.describe verdict) )
        | _ -> ([], [], [], None)
      in
      {
        decisions = List.rev !decisions;
        cps = List.rev !cps;
        events;
        cones;
        status = !status;
        invariant_failures;
        lin_failure;
        races;
        findings;
      })

(* ---------------- trace-equivalence hashing ---------------- *)

(* FNV-style fold; Hashtbl.hash is avoided because its node/depth
   limits would make distinct deep traces collide systematically. *)
let mix h x = ((h * 16777619) lxor x) land max_int

let hash_touch h t =
  let h = mix h t.key.Access.home in
  let h = mix h t.key.Access.seg in
  let h = mix h t.key.Access.gen in
  let h = mix h t.agent in
  let h =
    mix h
      (match t.kind with Access.Load -> 3 | Access.Store -> 7 | Access.Atomic -> 11)
  in
  let h = mix h t.off in
  mix h t.count

let fingerprint own = List.fold_left hash_touch 0x811c9dc5 own

let hash_string h s =
  String.fold_left (fun h c -> mix h (Char.code c)) h s

(* Canonical hash of the run: the Foata normal form of its access
   trace — each access-bearing event at one more than the highest
   layer of an earlier conflicting event — hashed as the sorted
   multiset of (layer, fingerprint), plus the run status.  Equivalent
   interleavings (only independent events reordered) produce the same
   layers and so the same hash. *)
let canonical_hash run =
  let layered = ref [] in
  (* (layer, fingerprint, summary) for access-bearing events *)
  List.iter
    (fun e ->
      if e.own <> [] then begin
        let layer =
          List.fold_left
            (fun acc (l, _, summary) ->
              if summaries_conflict e.own summary then Stdlib.max acc l else acc)
            0 !layered
          + 1
        in
        layered := (layer, fingerprint e.own, e.own) :: !layered
      end)
    run.events;
  let shape =
    List.map (fun (l, fp, _) -> (l, fp)) !layered
    |> List.sort Stdlib.compare
  in
  let h = List.fold_left (fun h (l, fp) -> mix (mix h l) fp) 0x811c9dc5 shape in
  match run.status with
  | Completed -> mix h 0
  | Deadlocked report -> hash_string (mix h 1) report
  | Raised msg -> hash_string (mix h 2) msg
  | Ran_off -> mix h 3

(* ---------------- classification ---------------- *)

let classify run ~baseline_races ~baseline_rules =
  match run.status with
  | Deadlocked report -> Some (Deadlock report)
  | Raised msg -> Some (Exception msg)
  | Ran_off -> Some Diverged
  | Completed -> (
      match run.invariant_failures with
      | name :: _ -> Some (Invariant_violated name)
      | [] -> (
          match run.lin_failure with
          | Some desc -> Some (Non_linearizable desc)
          | None -> (
          match
            if baseline_races then []
            else run.races
          with
          | race :: _ -> Some (New_race (Race.describe race))
          | [] -> (
              match
                List.filter
                  (fun (f : Lint.finding) ->
                    not (List.mem f.rule baseline_rules))
                  run.findings
              with
              | f :: _ -> Some (New_finding (Lint.describe f))
              | [] -> None))))

let outcome_of run ~baseline_races ~baseline_rules =
  {
    schedule = run.decisions;
    choice_points = List.length run.cps;
    failure = classify run ~baseline_races ~baseline_rules;
  }

(* ---------------- the DFS driver ---------------- *)

type branch = {
  directed : Schedule.t;
  br_sleep : (int * summary) list;
}

let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let explore ?(config = default_config) name =
  let stats =
    {
      executed = 0;
      distinct = 0;
      redundant = 0;
      pruned_dpor = 0;
      pruned_sleep = 0;
      deferred = 0;
      failing = 0;
      max_choice_points = 0;
      budget_exhausted = false;
    }
  in
  let seen = Hashtbl.create 256 in
  let stack = ref [ { directed = Schedule.empty; br_sleep = [] } ] in
  let failures = ref [] in
  let baseline = ref None in
  let baseline_races = ref false in
  let baseline_rules = ref [] in
  while !stack <> [] && stats.executed < config.budget do
    match !stack with
    | [] -> assert false
    | branch :: rest ->
        stack := rest;
        let run =
          execute name ~directed:branch.directed ~sleep:branch.br_sleep
            ~max_events:config.max_events
        in
        stats.executed <- stats.executed + 1;
        if !baseline = None then begin
          (* First run is the FIFO baseline: its races and finding
             rules are the single-schedule detector's view, and new
             ones found elsewhere count as schedule-dependent. *)
          baseline_races := run.races <> [];
          baseline_rules :=
            List.map (fun (f : Lint.finding) -> f.rule) run.findings;
          baseline :=
            Some
              (outcome_of run ~baseline_races:!baseline_races
                 ~baseline_rules:!baseline_rules)
        end;
        let cp_count = List.length run.cps in
        if cp_count > stats.max_choice_points then
          stats.max_choice_points <- cp_count;
        let h = canonical_hash run in
        if Hashtbl.mem seen h then stats.redundant <- stats.redundant + 1
        else begin
          Hashtbl.add seen h ();
          stats.distinct <- stats.distinct + 1;
          let outcome =
            outcome_of run ~baseline_races:!baseline_races
              ~baseline_rules:!baseline_rules
          in
          (match outcome.failure with
          | Some _ ->
              stats.failing <- stats.failing + 1;
              if List.length !failures < max_reported then
                failures := outcome :: !failures
          | None -> ());
          (* Expand: defer conflicting alternatives at every choice
             point beyond this branch's own prefix. *)
          let n_directed = Schedule.length branch.directed in
          List.iter
            (fun cp ->
              if cp.position >= n_directed && cp.position < config.max_depth
              then begin
                let enabled = Array.of_list cp.enabled in
                let count = Array.length enabled in
                let cone_of seq =
                  Option.value (Hashtbl.find_opt run.cones seq) ~default:[]
                in
                let chosen_seq = enabled.(cp.chosen) in
                let sleep_acc =
                  ref ((chosen_seq, cone_of chosen_seq) :: cp.asleep)
                in
                Array.iteri
                  (fun i seq ->
                    if i <> cp.chosen then
                      if List.mem_assoc seq cp.asleep then
                        stats.pruned_sleep <- stats.pruned_sleep + 1
                      else begin
                        let fired = Hashtbl.mem run.cones seq in
                        let dependent =
                          (* Never fired (deadlock/divergence cut the
                             run short): nothing known, stay
                             conservative. *)
                          (not fired)
                          ||
                          let cone = cone_of seq in
                          Array.exists
                            (fun other ->
                              other <> seq
                              && summaries_conflict cone (cone_of other))
                            enabled
                        in
                        if not dependent then
                          stats.pruned_dpor <- stats.pruned_dpor + 1
                        else begin
                          stats.deferred <- stats.deferred + 1;
                          stack :=
                            {
                              directed =
                                take cp.position run.decisions
                                @ [ { Schedule.index = i; count } ];
                              br_sleep = !sleep_acc;
                            }
                            :: !stack;
                          sleep_acc := (seq, cone_of seq) :: !sleep_acc
                        end
                      end)
                  enabled
              end)
            run.cps
        end
  done;
  if !stack <> [] then stats.budget_exhausted <- true;
  let baseline =
    match !baseline with Some b -> b | None -> assert false
  in
  { workload = name; stats; baseline; failures = List.rev !failures }

(* ---------------- deterministic replay ---------------- *)

let replay ?(config = default_config) name certificate =
  let base = execute name ~directed:[] ~sleep:[] ~max_events:config.max_events in
  let baseline_races = base.races <> [] in
  let baseline_rules =
    List.map (fun (f : Lint.finding) -> f.rule) base.findings
  in
  let run =
    execute name ~directed:certificate ~sleep:[]
      ~max_events:config.max_events
  in
  outcome_of run ~baseline_races ~baseline_rules

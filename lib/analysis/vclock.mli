(** Vector clocks over a dense space of agent ids.

    Values are immutable; missing components read as zero, so clocks
    grow transparently as agents register. *)

type t

val empty : t

val get : t -> int -> int
(** Component for agent [i] (0 when never ticked). *)

val tick : t -> int -> t
(** Advance agent [i]'s component by one. *)

val join : t -> t -> t
(** Component-wise maximum. *)

val leq : t -> t -> bool
(** [leq a b] iff every component of [a] is <= the one in [b]:
    the happens-before-or-equal order. *)

type order = Equal | Before | After | Concurrent

val compare : t -> t -> order
val to_string : t -> string

(** Ivy-style shared virtual memory (fixed manager, write-invalidate) —
    the §6 related-work comparator the paper argues against: page-grain
    sharing invites false sharing, and every fault costs control
    transfer at the faulting machine, the manager and the owner. *)

val page_bytes : int
(** 4096. *)

type page_state = Invalid | Read_shared | Write_owned

type t

val attach : Rpckit.Transport.t -> manager:Atm.Addr.t -> pages:int -> t
(** Join the shared region. The node whose address equals [manager]
    becomes the manager and initially owns every page. All participants
    must use the same [manager] and [pages]. *)

val read : t -> addr:int -> len:int -> bytes
(** Read from the shared region, faulting pages in as needed (each
    fault is a manager RPC plus a 4 KB page transfer). *)

val write : t -> addr:int -> bytes -> unit
(** Write to the shared region, acquiring ownership first (invalidating
    every cached copy). *)

type access = { kind : [ `Load | `Store ]; addr : int; len : int }

val set_monitor : t -> (access -> unit) option -> unit
(** Instrumentation hook for the analysis layer, invoked once per
    {!read} / {!write} at the instant the local copy is touched (after
    any faulting). No-cost no-op when unset. *)

(** {1 Introspection} *)

val state : t -> page:int -> page_state
val read_faults : t -> int
val write_faults : t -> int
val invalidations_received : t -> int
val pages_fetched : t -> int
val node : t -> Cluster.Node.t
val manager : t -> Atm.Addr.t
val is_manager_node : t -> bool

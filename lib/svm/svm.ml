(* Ivy-style shared virtual memory [Li & Hudak 1989] — the related-work
   comparator of §6.

   A fixed manager tracks, per shared page, the owner and the copyset.
   Reads of an invalid page fault to the manager, which fetches the page
   from its owner (4 KB moves, plus control transfer at the manager and
   the owner); writes invalidate every cached copy first.  This is the
   structure the paper criticizes: page-granularity sharing invites
   false sharing, and every fault requires "non-trivial processing and
   control transfer at the machine that faults the page in".

   Built over the RPC stack, which is exactly how such systems were
   built; the remote-memory model needs none of this machinery. *)

let page_bytes = 4096

type page_state = Invalid | Read_shared | Write_owned

type access = { kind : [ `Load | `Store ]; addr : int; len : int }

type t = {
  node : Cluster.Node.t;
  transport : Rpckit.Transport.t;
  manager : Atm.Addr.t;
  pages : int;
  space : Cluster.Address_space.t;
  states : page_state array;
  (* manager-only state *)
  owners : Atm.Addr.t array;
  copysets : (int, unit) Hashtbl.t array; (* page -> set of node addrs *)
  mutable read_faults : int;
  mutable write_faults : int;
  mutable invalidations_received : int;
  mutable pages_fetched : int;
  mutable monitor : (access -> unit) option;
}

let set_monitor t monitor = t.monitor <- monitor

let observed t access =
  match t.monitor with None -> () | Some f -> f access

let manager_prog = 0x2001
let agent_prog = 0x2002

let proc_read_fault = 1
let proc_write_fault = 2
let proc_fetch = 1
let proc_invalidate = 2

let is_manager t = Atm.Addr.equal (Cluster.Node.addr t.node) t.manager

let page_addr page = page * page_bytes

let read_local_page t page =
  Cluster.Address_space.read t.space ~addr:(page_addr page) ~len:page_bytes

let install_page t page data =
  Cluster.Address_space.write t.space ~addr:(page_addr page) data

(* ------------------------------------------------------------------ *)
(* Server-side handlers.                                               *)

let agent_handler t ~src:_ ~proc reader =
  let page = Rpckit.Xdr.read_int reader in
  let reply = Rpckit.Xdr.create () in
  if proc = proc_fetch then begin
    (* Relinquish write ownership; keep a read copy. *)
    if t.states.(page) = Write_owned then t.states.(page) <- Read_shared;
    Rpckit.Xdr.opaque reply (read_local_page t page)
  end
  else if proc = proc_invalidate then begin
    t.states.(page) <- Invalid;
    t.invalidations_received <- t.invalidations_received + 1;
    Rpckit.Xdr.bool reply true
  end
  else invalid_arg "Svm.agent_handler: unknown proc";
  reply

(* Fetch the current contents of [page] from its owner (which may be
   the manager itself). *)
let fetch_from_owner t page =
  let owner = t.owners.(page) in
  if Atm.Addr.equal owner (Cluster.Node.addr t.node) then begin
    if t.states.(page) = Write_owned then t.states.(page) <- Read_shared;
    read_local_page t page
  end
  else begin
    let args = Rpckit.Xdr.create () in
    Rpckit.Xdr.int args page;
    let reply =
      Rpckit.Client.call ~category:Cluster.Cpu.cat_procedure t.transport
        ~dst:owner ~prog:agent_prog ~proc:proc_fetch ~label:"svm fetch" args
    in
    Rpckit.Xdr.read_opaque reply
  end

let invalidate_copies t page ~except =
  let members =
    Hashtbl.fold (fun addr () acc -> addr :: acc) t.copysets.(page) []
  in
  List.iter
    (fun addr_int ->
      let addr = Atm.Addr.of_int addr_int in
      if not (Atm.Addr.equal addr except) then
        if Atm.Addr.equal addr (Cluster.Node.addr t.node) then
          t.states.(page) <- Invalid
        else begin
          let args = Rpckit.Xdr.create () in
          Rpckit.Xdr.int args page;
          let (_ : Rpckit.Xdr.reader) =
            Rpckit.Client.call ~category:Cluster.Cpu.cat_procedure t.transport
              ~dst:addr ~prog:agent_prog ~proc:proc_invalidate
              ~label:"svm invalidate" args
          in
          ()
        end)
    members;
  Hashtbl.reset t.copysets.(page)

let manager_handler t ~src ~proc reader =
  let page = Rpckit.Xdr.read_int reader in
  let reply = Rpckit.Xdr.create () in
  if proc = proc_read_fault then begin
    let data = fetch_from_owner t page in
    Hashtbl.replace t.copysets.(page) (Atm.Addr.to_int src) ();
    Hashtbl.replace t.copysets.(page) (Atm.Addr.to_int t.owners.(page)) ();
    Rpckit.Xdr.opaque reply data
  end
  else if proc = proc_write_fault then begin
    let data = fetch_from_owner t page in
    invalidate_copies t page ~except:src;
    (* The previous owner loses the page too (it was not in [except]
       unless it is the requester; handle the owner explicitly). *)
    let previous = t.owners.(page) in
    if
      (not (Atm.Addr.equal previous src))
      && Atm.Addr.equal previous (Cluster.Node.addr t.node)
    then t.states.(page) <- Invalid;
    t.owners.(page) <- src;
    Hashtbl.replace t.copysets.(page) (Atm.Addr.to_int src) ();
    Rpckit.Xdr.opaque reply data
  end
  else invalid_arg "Svm.manager_handler: unknown proc";
  reply

(* ------------------------------------------------------------------ *)
(* Construction.                                                       *)

let attach transport ~manager ~pages =
  let node = Rpckit.Transport.node transport in
  let t =
    {
      node;
      transport;
      manager;
      pages;
      space = Cluster.Node.new_address_space node;
      states = Array.make pages Invalid;
      owners = Array.make pages manager;
      copysets = Array.init pages (fun _ -> Hashtbl.create 4);
      read_faults = 0;
      write_faults = 0;
      invalidations_received = 0;
      pages_fetched = 0;
      monitor = None;
    }
  in
  let (_ : Rpckit.Server.t) =
    Rpckit.Server.create transport ~prog:agent_prog ~threads:1
      ~handler:(fun ~src ~proc reader -> agent_handler t ~src ~proc reader)
      ()
  in
  if Atm.Addr.equal (Cluster.Node.addr node) manager then begin
    (* The manager starts owning every page, readable and writable. *)
    Array.fill t.states 0 pages Write_owned;
    let (_ : Rpckit.Server.t) =
      Rpckit.Server.create transport ~prog:manager_prog ~threads:1
        ~handler:(fun ~src ~proc reader -> manager_handler t ~src ~proc reader)
        ()
    in
    ()
  end;
  t

(* ------------------------------------------------------------------ *)
(* Faulting accesses.                                                  *)

let fault t page ~proc =
  (* The paper's complaint, charged for real: the faulting machine pays
     a trap plus fault-handler work before any communication happens. *)
  let c = Cluster.Node.costs t.node in
  Cluster.Cpu.use (Cluster.Node.cpu t.node) ~category:Cluster.Cpu.cat_client
    (Sim.Time.add c.Cluster.Costs.trap c.Cluster.Costs.syscall);
  let me = Cluster.Node.addr t.node in
  let data =
    if is_manager t then begin
      (* The manager consults its own tables directly (no self-RPC). *)
      let data = fetch_from_owner t page in
      if proc = proc_write_fault then begin
        invalidate_copies t page ~except:me;
        t.owners.(page) <- me
      end;
      Hashtbl.replace t.copysets.(page) (Atm.Addr.to_int me) ();
      data
    end
    else begin
      let args = Rpckit.Xdr.create () in
      Rpckit.Xdr.int args page;
      let label =
        if proc = proc_read_fault then "svm read fault" else "svm write fault"
      in
      let reply =
        Rpckit.Client.call t.transport ~dst:t.manager ~prog:manager_prog ~proc
          ~label args
      in
      Rpckit.Xdr.read_opaque reply
    end
  in
  install_page t page data;
  t.pages_fetched <- t.pages_fetched + 1

let ensure_readable t page =
  match t.states.(page) with
  | Read_shared | Write_owned -> ()
  | Invalid ->
      t.read_faults <- t.read_faults + 1;
      fault t page ~proc:proc_read_fault;
      t.states.(page) <- Read_shared

let ensure_writable t page =
  match t.states.(page) with
  | Write_owned -> ()
  | Read_shared | Invalid ->
      t.write_faults <- t.write_faults + 1;
      fault t page ~proc:proc_write_fault;
      t.states.(page) <- Write_owned

let check_range t ~addr ~len =
  if addr < 0 || len < 0 || addr + len > t.pages * page_bytes then
    invalid_arg "Svm: access outside the shared region"

let read t ~addr ~len =
  check_range t ~addr ~len;
  let first = addr / page_bytes and last = (addr + max 0 (len - 1)) / page_bytes in
  for page = first to last do
    ensure_readable t page
  done;
  observed t { kind = `Load; addr; len };
  Cluster.Address_space.read t.space ~addr ~len

let write t ~addr data =
  check_range t ~addr ~len:(Bytes.length data);
  let len = Bytes.length data in
  let first = addr / page_bytes and last = (addr + max 0 (len - 1)) / page_bytes in
  for page = first to last do
    ensure_writable t page
  done;
  observed t { kind = `Store; addr; len };
  Cluster.Address_space.write t.space ~addr data

(* ------------------------------------------------------------------ *)
(* Introspection.                                                      *)

let state t ~page = t.states.(page)
let read_faults t = t.read_faults
let write_faults t = t.write_faults
let invalidations_received t = t.invalidations_received
let pages_fetched t = t.pages_fetched
let node t = t.node
let manager t = t.manager
let is_manager_node = is_manager

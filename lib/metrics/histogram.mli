(** Geometric-bucket histograms with approximate percentiles, suited to
    latency distributions spanning microseconds to seconds. *)

type t

val create : ?least:float -> ?growth:float -> ?buckets:int -> unit -> t
(** [least] is the smallest resolvable value (default 0.1), [growth] the
    geometric bucket ratio (default 1.15, i.e. ~15% relative error). *)

val add : t -> float -> unit
val count : t -> int

val summary : t -> Summary.t
(** Exact streaming summary of everything added. *)

val underflow : t -> int
(** Samples below [least] (kept out of the bucket array). *)

val params : t -> float * float * int
(** [(least, growth, buckets)] — the bucket layout. *)

val buckets : t -> (float * int) list
(** Non-empty buckets as [(upper_edge, count)], ascending — the raw
    material a registry needs to aggregate per-node histograms. *)

val merge : t -> t -> t
(** Histogram of the concatenation of the two streams. Requires
    identical bucket layouts; raises [Invalid_argument] otherwise. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [\[0,100\]]: upper edge of the bucket
    containing the p-th percentile (approximate by bucket resolution). *)

val median : t -> float

(** A minimal RFC 8259 JSON reader, so tests and CLIs can round-trip the
    hand-emitted artifacts (Chrome traces, bench bands, obsreport
    output) and assert on their content, not just their shape.

    Numbers are read as floats; string escapes decode per the RFC, with
    BMP [\uXXXX] kept as UTF-8. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Whole-input parse; [Error] carries a byte position and reason. *)

(** {1 Accessors} — all total, [None] on kind/shape mismatch. *)

val member : string -> t -> t option
val index : int -> t -> t option
val to_list : t -> t list option
val to_string : t -> string option
val to_number : t -> float option
val to_bool : t -> bool option

val find : t -> string list -> t option
(** [find json path] walks nested object members. *)

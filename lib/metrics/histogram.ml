(* Fixed-resolution latency histograms with approximate percentiles.

   Buckets grow geometrically from [least] so that relative resolution is
   constant across the (microsecond .. second) range the experiments span. *)

type t = {
  least : float;
  growth : float;
  counts : int array;
  mutable underflow : int;
  mutable n : int;
  summary : Summary.t;
}

let default_buckets = 128

let create ?(least = 0.1) ?(growth = 1.15) ?(buckets = default_buckets) () =
  if least <= 0. then invalid_arg "Histogram.create: least must be positive";
  if growth <= 1. then invalid_arg "Histogram.create: growth must exceed 1";
  {
    least;
    growth;
    counts = Array.make buckets 0;
    underflow = 0;
    n = 0;
    summary = Summary.create ();
  }

let bucket_of t x =
  if x < t.least then -1
  else
    let b = int_of_float (Float.log (x /. t.least) /. Float.log t.growth) in
    Stdlib.min b (Array.length t.counts - 1)

let bucket_upper t i = t.least *. (t.growth ** float_of_int (i + 1))

let add t x =
  t.n <- t.n + 1;
  Summary.add t.summary x;
  match bucket_of t x with
  | -1 -> t.underflow <- t.underflow + 1
  | b -> t.counts.(b) <- t.counts.(b) + 1

let count t = t.n
let summary t = t.summary
let underflow t = t.underflow
let params t = (t.least, t.growth, Array.length t.counts)

let buckets t =
  let acc = ref [] in
  for i = Array.length t.counts - 1 downto 0 do
    if t.counts.(i) > 0 then acc := (bucket_upper t i, t.counts.(i)) :: !acc
  done;
  !acc

let merge a b =
  if
    a.least <> b.least || a.growth <> b.growth
    || Array.length a.counts <> Array.length b.counts
  then invalid_arg "Histogram.merge: incompatible bucket layouts";
  {
    least = a.least;
    growth = a.growth;
    counts = Array.mapi (fun i c -> c + b.counts.(i)) a.counts;
    underflow = a.underflow + b.underflow;
    n = a.n + b.n;
    summary = Summary.merge a.summary b.summary;
  }

let percentile t p =
  if p < 0. || p > 100. then invalid_arg "Histogram.percentile";
  if t.n = 0 then nan
  else begin
    let target = int_of_float (Float.round (p /. 100. *. float_of_int t.n)) in
    let target = Stdlib.max 1 (Stdlib.min t.n target) in
    let seen = ref t.underflow in
    if !seen >= target then t.least
    else begin
      let result = ref (Summary.max t.summary) in
      let last = Array.length t.counts - 1 in
      (try
         for i = 0 to last do
           seen := !seen + t.counts.(i);
           if !seen >= target then begin
             (* The final bucket also holds the overflow beyond the
                representable range; its true upper edge is the max. *)
             result :=
               (if i = last then Summary.max t.summary else bucket_upper t i);
             raise Exit
           end
         done
       with Exit -> ());
      !result
    end
  end

let median t = percentile t 50.

(* A minimal RFC 8259 JSON reader.

   Every tool in this repository emits JSON by hand; until now the only
   check on those bytes was a structural validator that proved they
   *parse* without saying what they contain.  This module parses them
   into a value tree so tests can round-trip an artifact (Chrome traces,
   bench bands, obsreport output) and assert on its actual content —
   with no external dependency.

   Numbers are all read as floats (JSON has one number type); strings
   decode the standard escapes, with \uXXXX kept as UTF-8 for the BMP
   (surrogate pairs are out of scope for our artifacts and decode to
   U+FFFD). *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

type state = { text : string; mutable pos : int }

let error state fmt =
  Printf.ksprintf
    (fun msg ->
      raise (Parse_error (Printf.sprintf "at byte %d: %s" state.pos msg)))
    fmt

let peek s = if s.pos < String.length s.text then Some s.text.[s.pos] else None

let skip_ws s =
  while
    s.pos < String.length s.text
    &&
    match s.text.[s.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    s.pos <- s.pos + 1
  done

let expect s c =
  match peek s with
  | Some d when Char.equal c d -> s.pos <- s.pos + 1
  | Some d -> error s "expected %C, found %C" c d
  | None -> error s "expected %C, found end of input" c

let keyword s word value =
  let l = String.length word in
  if
    s.pos + l <= String.length s.text
    && String.equal (String.sub s.text s.pos l) word
  then begin
    s.pos <- s.pos + l;
    value
  end
  else error s "bad keyword"

(* UTF-8 encode one BMP code point. *)
let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string s =
  expect s '"';
  let buf = Buffer.create 16 in
  let rec scan () =
    match peek s with
    | None -> error s "unterminated string"
    | Some '"' -> s.pos <- s.pos + 1
    | Some '\\' ->
        s.pos <- s.pos + 1;
        (match peek s with
        | None -> error s "unterminated escape"
        | Some c ->
            s.pos <- s.pos + 1;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if s.pos + 4 > String.length s.text then
                  error s "truncated \\u escape";
                let hex = String.sub s.text s.pos 4 in
                s.pos <- s.pos + 4;
                let code =
                  try int_of_string ("0x" ^ hex)
                  with Failure _ -> error s "bad \\u escape %S" hex
                in
                (* Surrogates: not produced by our emitters; replace. *)
                if code >= 0xD800 && code <= 0xDFFF then add_utf8 buf 0xFFFD
                else add_utf8 buf code
            | c -> error s "bad escape \\%C" c));
        scan ()
    | Some c ->
        s.pos <- s.pos + 1;
        Buffer.add_char buf c;
        scan ()
  in
  scan ();
  Buffer.contents buf

let parse_number s =
  let start = s.pos in
  let numeric c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while
    s.pos < String.length s.text && numeric s.text.[s.pos]
  do
    s.pos <- s.pos + 1
  done;
  let lexeme = String.sub s.text start (s.pos - start) in
  match float_of_string_opt lexeme with
  | Some f -> f
  | None -> error s "bad number %S" lexeme

let rec parse_value s =
  skip_ws s;
  match peek s with
  | Some '{' -> parse_obj s
  | Some '[' -> parse_list s
  | Some '"' -> String (parse_string s)
  | Some 't' -> keyword s "true" (Bool true)
  | Some 'f' -> keyword s "false" (Bool false)
  | Some 'n' -> keyword s "null" Null
  | Some ('-' | '0' .. '9') -> Number (parse_number s)
  | Some c -> error s "unexpected %C" c
  | None -> error s "unexpected end of input"

and parse_obj s =
  expect s '{';
  skip_ws s;
  if peek s = Some '}' then begin
    s.pos <- s.pos + 1;
    Obj []
  end
  else begin
    let members = ref [] in
    let rec next () =
      skip_ws s;
      let key = parse_string s in
      skip_ws s;
      expect s ':';
      let value = parse_value s in
      members := (key, value) :: !members;
      skip_ws s;
      match peek s with
      | Some ',' ->
          s.pos <- s.pos + 1;
          next ()
      | _ -> expect s '}'
    in
    next ();
    Obj (List.rev !members)
  end

and parse_list s =
  expect s '[';
  skip_ws s;
  if peek s = Some ']' then begin
    s.pos <- s.pos + 1;
    List []
  end
  else begin
    let elements = ref [] in
    let rec next () =
      elements := parse_value s :: !elements;
      skip_ws s;
      match peek s with
      | Some ',' ->
          s.pos <- s.pos + 1;
          next ()
      | _ -> expect s ']'
    in
    next ();
    List (List.rev !elements)
  end

let parse text =
  let s = { text; pos = 0 } in
  match parse_value s with
  | v ->
      skip_ws s;
      if s.pos <> String.length text then
        Error (Printf.sprintf "trailing bytes at %d" s.pos)
      else Ok v
  | exception Parse_error msg -> Error msg

(* ---------------- Accessors ---------------- *)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let index i = function
  | List items -> List.nth_opt items i
  | _ -> None

let to_list = function List items -> Some items | _ -> None
let to_string = function String s -> Some s | _ -> None
let to_number = function Number f -> Some f | _ -> None
let to_bool = function Bool b -> Some b | _ -> None

let rec find json = function
  | [] -> Some json
  | key :: rest -> (
      match member key json with
      | Some v -> find v rest
      | None -> None)

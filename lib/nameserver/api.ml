(* The user-facing kernel interface to the name service.

   Each call mirrors the paper's structure exactly: the user makes a
   kernel call, which the kernel turns into a *local* RPC to the clerk
   on the same machine.  No cross-machine control transfer occurs on
   these paths (the clerk itself uses remote reads); the only exception
   is the explicit [import_with_control_transfer] variant. *)

let export clerk ~space ~base ~len ?(rights = Rmem.Rights.read_only) ?policy
    ~name () =
  let node = Clerk.node clerk in
  Cluster.Kernel.syscall node ~name:"export_segment" (fun () ->
      let segment =
        Rmem.Remote_memory.export (Clerk.rmem clerk) ~space ~base ~len ?policy
          ~rights ~name ()
      in
      let record =
        Record.make ~name
          ~node:(Atm.Addr.to_int (Cluster.Node.addr node))
          ~segment_id:(Rmem.Segment.id segment)
          ~generation:(Rmem.Segment.generation segment)
          ~size:len ~rights
      in
      Cluster.Lrpc.call node (fun () -> Clerk.add_name clerk record) ();
      segment)

let import_record clerk record ~name =
  let desc =
    Rmem.Remote_memory.import (Clerk.rmem clerk)
      ~remote:(Atm.Addr.of_int record.Record.node)
      ~segment_id:record.Record.segment_id
      ~generation:record.Record.generation ~size:record.Record.size
      ~rights:record.Record.rights ()
  in
  Clerk.register_descriptor clerk ~name desc;
  desc

let import ?force ?hint clerk name =
  let node = Clerk.node clerk in
  Cluster.Kernel.syscall node ~name:"import_segment" (fun () ->
      let record =
        Cluster.Lrpc.call node (fun () -> Clerk.lookup ?force ?hint clerk name) ()
      in
      import_record clerk record ~name)

let import_with_control_transfer ~hint clerk name =
  (* Force the clerk onto the control-transfer path for this one lookup:
     the Table 3 "LOOKUP with notification" row. *)
  let node = Clerk.node clerk in
  Cluster.Kernel.syscall node ~name:"import_segment" (fun () ->
      let record =
        Cluster.Lrpc.call node
          (fun () ->
            let saved = Clerk.Probe_until_found in
            ignore saved;
            Clerk.set_probe_policy clerk Clerk.Control_immediately;
            Fun.protect
              ~finally:(fun () ->
                Clerk.set_probe_policy clerk Clerk.Probe_until_found)
              (fun () -> Clerk.lookup ~force:true ~hint clerk name))
          ()
      in
      import_record clerk record ~name)

(* A descriptor revalidator for recovery policies (§3.7): on a
   Stale_generation / Bad_segment failure, force a fresh lookup of the
   name and refresh the descriptor in place with the generation the
   exporter now advertises.  Returns whether another attempt is
   worthwhile: yes after a successful refresh, and also after a
   transient lookup failure (the probe itself timed out — the next
   attempt revalidates again); no when the name is gone or now names a
   different segment. *)
let revalidator ?hint clerk name desc =
  match Clerk.lookup ~force:true ?hint clerk name with
  | record ->
      if
        record.Record.node = Atm.Addr.to_int (Rmem.Descriptor.remote desc)
        && record.Record.segment_id = Rmem.Descriptor.segment_id desc
      then begin
        Rmem.Descriptor.refresh desc ~generation:record.Record.generation;
        true
      end
      else false
  | exception Clerk.Name_not_found _ -> false
  | exception (Rmem.Status.Timeout | Rmem.Status.Remote_error _) -> true

let revoke clerk segment =
  let node = Clerk.node clerk in
  Cluster.Kernel.syscall node ~name:"revoke_segment" (fun () ->
      Cluster.Lrpc.call node
        (fun () -> Clerk.delete_name clerk (Rmem.Segment.name segment))
        ();
      Rmem.Remote_memory.revoke (Clerk.rmem clerk) segment)

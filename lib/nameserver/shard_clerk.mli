(** The sharded clerk: client-side routing over the shard map.

    Lookups are pure data transfer end to end — fetch and cache the map
    segment with a remote READ, hash to a bucket, import the owning
    shard straight from the map entry (the map is the directory), and
    walk the probe chain with slot-sized READs. Staleness heals by
    retry: a miss is believed only after the map's epoch word re-reads
    unchanged; forwarding tombstones patch the cached map in place,
    bare tombstones and stale/revoked shard descriptors force a map
    refetch — the revalidation chain with the map as revalidator.
    Registration is control transfer through the reconciler. *)

type t

val create : map_hint:Atm.Addr.t -> reconciler_hint:Atm.Addr.t -> Clerk.t -> t
(** Wrap a node's clerk with sharded routing. [map_hint] is the map
    host's address, [reconciler_hint] the reconciler's. *)

val lookup : t -> string -> Record.t
(** Sharded LOOKUPNAME. Raises {!Clerk.Name_not_found} only after a
    miss is confirmed under a current map epoch (bounded stale-retry
    rounds in between). Raises {!Rmem.Status.Timeout} if the fabric
    eats the probes and no recovery policy is set. *)

val register : ?attempts:int -> t -> Record.t -> unit
(** Register through the reconciler: remote WRITE with notification
    into the request segment, ack awaited on this clerk's scratch
    segment; lost exchanges are reissued (idempotent) up to [attempts]
    (default 4) before {!Rmem.Status.Timeout} escapes. Raises [Failure]
    if the reconciler refuses (shard full). *)

val report_load : t -> unit
(** Write this client's per-map-entry lookup counts (since the last
    report) into the reconciler's load segment, tagged with the cached
    epoch; resets the counts. *)

val set_recovery : t -> Rmem.Recovery.policy option -> unit
(** Run every remote READ under the policy, with the map refetch wired
    in as the revalidator for stale shard descriptors. *)

val set_probe_timeout : t -> Sim.Time.t option -> unit
(** Bound each remote READ when no recovery policy is set. *)

val clerk : t -> Clerk.t

val epoch : t -> int
(** Epoch of the cached map (0 before the first fetch). *)

val lookups : t -> int

val stale_refetches : t -> int
(** Map refetch rounds forced by tombstones, stale descriptors, or
    epoch changes observed mid-lookup. *)

val forward_patches : t -> int
(** Lookups healed in place from a forwarding tombstone — the cached
    map patched locally with the destination shard's coordinates, no
    refetch from the map host. *)

val refreshes : t -> (int * Sim.Time.t) list
(** (epoch, adoption time) pairs, oldest first — the convergence
    measurement's raw data. *)

val stats : t -> Metrics.Account.t

(** Well-known constants that let the name service bootstrap itself.

    Every clerk is the first exporter on its node and always exports the
    same three segments in the same order, so their ids {e and}
    generation numbers are cluster-wide constants — this is what
    "certain well-known segment names have been reserved on each
    machine" amounts to. *)

val registry_segment_id : int
val request_segment_id : int
val scratch_segment_id : int

val registry_generation : Rmem.Generation.t
val request_generation : Rmem.Generation.t
val scratch_generation : Rmem.Generation.t

val default_slots : int
(** Registry slots per clerk. *)

val max_nodes : int
(** Bound on cluster size implied by the request table layout. *)

val request_slot_bytes : int
(** [name 32][reply node 4][reply offset 4][pad 8]; the useful 40 bytes
    ride in a single ATM cell. *)

val scratch_slots : int

val scratch_slot_bytes : int
(** [flag 4][record 64][pad 4]. *)

(** Scratch-slot reply flags. *)

val reply_pending : int32
val reply_found : int32
val reply_absent : int32

(** Clerk address-space layout. *)

val registry_base : int
val request_base : int
val scratch_base : int
val probe_buffer_base : int
val probe_buffer_bytes : int

(* The shard map: the name service's scale-out directory.

   The 30-bit FNV hash space every clerk already uses is folded into a
   fixed bucket space; the map carves that space into contiguous,
   inclusive, gap-free bucket ranges, each owned by one registry shard
   segment on some node.  The whole map serializes into one small
   exported segment whose first word is the epoch — the reconciler
   publishes a new map by writing the body first and the epoch word last
   (with notification), so a remote reader that fetches the segment and
   finds a well-formed, total map under some epoch can trust it; a torn
   fetch simply fails [decode] and is retried.

   Everything here is pure layout and arithmetic: no I/O, so the clerk
   (client side) and the reconciler (control side) agree by
   construction. *)

let buckets = 65536

(* FNV clusters similar names: two names differing in the last byte land
   403 (= FNV prime mod 2^16) buckets apart, so a family of consecutive
   service names — exactly the keys a Zipf workload makes hot together —
   would pile into one contiguous range and hence one shard.  An
   avalanche finalizer (xor-shift/multiply rounds) decorrelates the low
   bucket bits from any single input byte before the fold, scattering
   hot families across shards.  The registries' probe chains keep using
   the raw hash — within one table only within-table scatter matters. *)
let bucket_of_name name =
  let h = Record.fnv_hash name in
  let h = h lxor (h lsr 16) in
  let h = h * 0x7feb352d land 0x3FFFFFFF in
  let h = h lxor (h lsr 15) in
  let h = h * 0x846ca68b land 0x3FFFFFFF in
  let h = h lxor (h lsr 16) in
  h land (buckets - 1)

let map_name = "shard.map"

let header_bytes = 8
(* [epoch 4][entry count 4] *)

let entry_bytes = 24
(* [lo 4][hi 4][node 4][segment id 4][generation 4][slots 4] *)

let max_entries = 64
let segment_bytes = header_bytes + (max_entries * entry_bytes)

let body_off = 4
(* Publication order: everything from [body_off] first, then the epoch
   word at offset 0 — the doorbell. *)

type entry = {
  lo : int;
  hi : int;  (* inclusive bucket range *)
  node : int;  (* shard host's network address *)
  segment_id : int;
  generation : Rmem.Generation.t;
  slots : int;  (* registry slots serialized in the shard segment *)
}

type t = { epoch : int; entries : entry list (* sorted by [lo] *) }

(* Sorted, gap-free, and covering the whole bucket space. *)
let total entries =
  let rec go expect = function
    | [] -> expect = buckets
    | e :: rest ->
        e.lo = expect && e.hi >= e.lo && e.hi < buckets && go (e.hi + 1) rest
  in
  go 0 entries

let owner_index t bucket =
  let rec go i = function
    | [] -> None
    | e :: rest ->
        if e.lo <= bucket && bucket <= e.hi then Some (i, e) else go (i + 1) rest
  in
  go 0 t.entries

let owner t bucket = Option.map snd (owner_index t bucket)

let slot_index ~slots name probe =
  Dds.Probe.slot_index ~slots ~hash:(Record.fnv_hash name) probe

let encode_entry b off e =
  let w i v = Bytes.set_int32_le b (off + (4 * i)) (Int32.of_int v) in
  w 0 e.lo;
  w 1 e.hi;
  w 2 e.node;
  w 3 e.segment_id;
  w 4 (Rmem.Generation.to_int e.generation);
  w 5 e.slots

let decode_entry b off =
  let f i = Int32.to_int (Bytes.get_int32_le b (off + (4 * i))) in
  {
    lo = f 0;
    hi = f 1;
    node = f 2;
    segment_id = f 3;
    generation = Rmem.Generation.of_int (f 4);
    slots = f 5;
  }

let encode t =
  let n = List.length t.entries in
  if n > max_entries then invalid_arg "Shardmap.encode: too many entries";
  let b = Bytes.make segment_bytes '\000' in
  Bytes.set_int32_le b 0 (Int32.of_int t.epoch);
  Bytes.set_int32_le b 4 (Int32.of_int n);
  List.iteri
    (fun i e -> encode_entry b (header_bytes + (i * entry_bytes)) e)
    t.entries;
  b

let encode_body t =
  let b = encode t in
  Bytes.sub b body_off (segment_bytes - body_off)

let decode b =
  if Bytes.length b < segment_bytes then None
  else begin
    let epoch = Int32.to_int (Bytes.get_int32_le b 0) in
    let n = Int32.to_int (Bytes.get_int32_le b 4) in
    if epoch <= 0 || n <= 0 || n > max_entries then None
    else begin
      let entries =
        List.init n (fun i -> decode_entry b (header_bytes + (i * entry_bytes)))
      in
      let sane e =
        e.node >= 0 && e.segment_id >= 0 && e.slots > 0
        && e.slots land (e.slots - 1) = 0
      in
      if total entries && List.for_all sane entries then Some { epoch; entries }
      else None
    end
  end

(* The open-addressed hash table serialized into a registry segment.

   All operations here are *local* memory operations performed by the
   clerk that owns the segment; remote clerks access the same bytes with
   remote READs and decode them with {!Record}.  Linear probing; every
   clerk uses the same hash function, so a name usually sits at the same
   slot index on whichever registry holds it. *)

type t = {
  space : Cluster.Address_space.t;
  base : int;
  slots : int;
  mutable live : int;
}

let segment_bytes ~slots = slots * Record.slot_bytes

let create ~space ~base ~slots =
  if slots <= 0 || slots land (slots - 1) <> 0 then
    invalid_arg "Registry.create: slots must be a positive power of two";
  { space; base; slots; live = 0 }

let slots t = t.slots
let live t = t.live

let slot_index t name probe =
  Dds.Probe.slot_index ~slots:t.slots ~hash:(Record.fnv_hash name) probe

let slot_offset (_ : t) index = index * Record.slot_bytes

let read_slot t index =
  Cluster.Address_space.read t.space
    ~addr:(t.base + slot_offset t index)
    ~len:Record.slot_bytes

(* The shared probe walk ({!Dds.Probe}), classified over local slots:
   an invalid slot is free (chain-ending), a moved tombstone is skipped
   but reusable, and only a decodable record holding [name] is a hit. *)
let walk t name =
  Dds.Probe.walk ~slots:t.slots ~hash:(Record.fnv_hash name)
    ~classify:(fun ~index ~probe:_ ->
      let slot = read_slot t index in
      let flag = Record.flag_of_slot slot in
      if Int32.equal flag Record.flag_invalid then Dds.Probe.Free
      else if Int32.equal flag Record.flag_moved then Dds.Probe.Tombstone None
      else
        match Record.decode slot with
        | Some existing when String.equal existing.Record.name name ->
            Dds.Probe.Hit
        | Some _ | None -> Dds.Probe.Other)

(* Insert: a valid slot already holding this name is overwritten
   (re-export replaces); otherwise the first tombstone along the chain
   is preferred over the chain-ending free slot.  Write the body first,
   flag last. *)
let insert t record =
  let name = record.Record.name in
  match
    match walk t name with
    | Dds.Probe.Found { index; _ } -> Ok index
    | Dds.Probe.Absent { reusable = Some index; _ }
    | Dds.Probe.Absent { reusable = None; free = Some index; _ } ->
        Ok index
    | Dds.Probe.Absent { reusable = None; free = None; _ } -> Error `Full
  with
  | Error `Full -> Error `Full
  | Ok index ->
      let slot = Record.encode record in
      let body = Bytes.sub slot 4 (Record.slot_bytes - 4) in
      let was_valid = Record.is_valid (read_slot t index) in
      (* Invalidate, fill body, then set the flag word — the remote
         readers' consistency contract. *)
      Cluster.Address_space.write_word t.space
        ~addr:(t.base + slot_offset t index)
        Record.flag_invalid;
      Cluster.Address_space.write t.space
        ~addr:(t.base + slot_offset t index + 4)
        body;
      Cluster.Address_space.write_word t.space
        ~addr:(t.base + slot_offset t index)
        Record.flag_valid;
      if not was_valid then t.live <- t.live + 1;
      Ok index

let lookup t name =
  match walk t name with
  | Dds.Probe.Found { index; probes } -> (
      match Record.decode (read_slot t index) with
      | Some record -> Some (record, probes)
      | None -> None)
  | Dds.Probe.Absent _ -> None

let well_formed t =
  let valid = ref 0 in
  let sane = ref true in
  for index = 0 to t.slots - 1 do
    match Record.decode (read_slot t index) with
    | None -> ()
    | Some record ->
        incr valid;
        if String.length record.Record.name = 0 then sane := false
  done;
  !sane && !valid = t.live

let delete t name =
  match lookup t name with
  | None -> false
  | Some (_, i) ->
      let index = slot_index t name i in
      Cluster.Address_space.write_word t.space
        ~addr:(t.base + slot_offset t index)
        Record.flag_invalid;
      t.live <- t.live - 1;
      true

(* The sharding layer's deletion: mark the slot moved rather than
   invalid, so probe chains running past it stay intact and remote
   readers learn the record migrated.  Returns the slot index so the
   caller can mirror the single flag word remotely. *)
let tombstone t name =
  match lookup t name with
  | None -> None
  | Some (_, i) ->
      let index = slot_index t name i in
      Cluster.Address_space.write_word t.space
        ~addr:(t.base + slot_offset t index)
        Record.flag_moved;
      t.live <- t.live - 1;
      Some index

let iter t f =
  for index = 0 to t.slots - 1 do
    match Record.decode (read_slot t index) with
    | None -> ()
    | Some record -> f index record
  done

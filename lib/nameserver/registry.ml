(* The open-addressed hash table serialized into a registry segment.

   All operations here are *local* memory operations performed by the
   clerk that owns the segment; remote clerks access the same bytes with
   remote READs and decode them with {!Record}.  Linear probing; every
   clerk uses the same hash function, so a name usually sits at the same
   slot index on whichever registry holds it. *)

type t = {
  space : Cluster.Address_space.t;
  base : int;
  slots : int;
  mutable live : int;
}

let segment_bytes ~slots = slots * Record.slot_bytes

let create ~space ~base ~slots =
  if slots <= 0 || slots land (slots - 1) <> 0 then
    invalid_arg "Registry.create: slots must be a positive power of two";
  { space; base; slots; live = 0 }

let slots t = t.slots
let live t = t.live

let slot_index t name probe = (Record.fnv_hash name + probe) land (t.slots - 1)

let slot_offset (_ : t) index = index * Record.slot_bytes

let read_slot t index =
  Cluster.Address_space.read t.space
    ~addr:(t.base + slot_offset t index)
    ~len:Record.slot_bytes

(* Insert: find the first invalid slot along the probe sequence (or a
   valid slot already holding this name, which is overwritten — re-export
   replaces).  A moved tombstone is reusable but does not end the chain,
   so the scan must keep going in case the name lives further on; the
   first tombstone seen is remembered and used only if the chain ends
   without finding the name.  Write the body first, flag last. *)
let insert t record =
  let name = record.Record.name in
  let rec probe i reuse =
    if i >= t.slots then
      match reuse with None -> Error `Full | Some index -> Ok index
    else begin
      let index = slot_index t name i in
      let slot = read_slot t index in
      let flag = Record.flag_of_slot slot in
      if Int32.equal flag Record.flag_invalid then
        Ok (match reuse with Some r -> r | None -> index)
      else if Int32.equal flag Record.flag_moved then
        probe (i + 1) (match reuse with None -> Some index | some -> some)
      else
        match Record.decode slot with
        | Some existing when String.equal existing.Record.name name -> Ok index
        | Some _ | None -> probe (i + 1) reuse
    end
  in
  match probe 0 None with
  | Error `Full -> Error `Full
  | Ok index ->
      let slot = Record.encode record in
      let body = Bytes.sub slot 4 (Record.slot_bytes - 4) in
      let was_valid = Record.is_valid (read_slot t index) in
      (* Invalidate, fill body, then set the flag word — the remote
         readers' consistency contract. *)
      Cluster.Address_space.write_word t.space
        ~addr:(t.base + slot_offset t index)
        Record.flag_invalid;
      Cluster.Address_space.write t.space
        ~addr:(t.base + slot_offset t index + 4)
        body;
      Cluster.Address_space.write_word t.space
        ~addr:(t.base + slot_offset t index)
        Record.flag_valid;
      if not was_valid then t.live <- t.live + 1;
      Ok index

let lookup t name =
  let rec probe i =
    if i >= t.slots then None
    else begin
      let index = slot_index t name i in
      let slot = read_slot t index in
      if Int32.equal (Record.flag_of_slot slot) Record.flag_moved then
        probe (i + 1) (* a tombstone is skipped, not chain-ending *)
      else
        match Record.decode slot with
        | None -> None (* an invalid slot ends the probe chain *)
        | Some record ->
            if String.equal record.Record.name name then Some (record, i)
            else probe (i + 1)
    end
  in
  probe 0

let well_formed t =
  let valid = ref 0 in
  let sane = ref true in
  for index = 0 to t.slots - 1 do
    match Record.decode (read_slot t index) with
    | None -> ()
    | Some record ->
        incr valid;
        if String.length record.Record.name = 0 then sane := false
  done;
  !sane && !valid = t.live

let delete t name =
  match lookup t name with
  | None -> false
  | Some (_, i) ->
      let index = slot_index t name i in
      Cluster.Address_space.write_word t.space
        ~addr:(t.base + slot_offset t index)
        Record.flag_invalid;
      t.live <- t.live - 1;
      true

(* The sharding layer's deletion: mark the slot moved rather than
   invalid, so probe chains running past it stay intact and remote
   readers learn the record migrated.  Returns the slot index so the
   caller can mirror the single flag word remotely. *)
let tombstone t name =
  match lookup t name with
  | None -> None
  | Some (_, i) ->
      let index = slot_index t name i in
      Cluster.Address_space.write_word t.space
        ~addr:(t.base + slot_offset t index)
        Record.flag_moved;
      t.live <- t.live - 1;
      Some index

let iter t f =
  for index = 0 to t.slots - 1 do
    match Record.decode (read_slot t index) with
    | None -> ()
    | Some record -> f index record
  done

(* The sharded clerk: client-side routing over the shard map.

   A lookup is pure data transfer end to end: fetch (and cache) the map
   segment with a remote READ, hash the name to a bucket, import the
   owning shard segment straight from the map entry's coordinates — the
   map IS the directory, no name probing — and walk the linear probe
   chain with slot-sized remote READs.

   Staleness heals by retry: a miss is only believed after a 4-byte
   re-read of the map's epoch word confirms the cached epoch is still
   current; a forwarding tombstone patches the cached map in place
   (never touching the map host); a bare tombstone or a stale/revoked
   shard descriptor forces a map refetch and another round — the PR 4
   revalidation chain, with the map (not a name lookup) as the
   revalidator.  Registration goes through the reconciler: a remote
   WRITE with notification into the request segment, answered by a
   remote WRITE into this clerk's scratch segment. *)

(* Client address-space layout. *)
let map_base = 0
let probe_base = 0x1000
let epoch_base = 0x2000

type t = {
  clerk : Clerk.t;
  rmem : Rmem.Remote_memory.t;
  node : Cluster.Node.t;
  space : Cluster.Address_space.t;
  map_hint : Atm.Addr.t;
  reconciler_hint : Atm.Addr.t;
  mutable map_desc : Rmem.Descriptor.t option;
  mutable req_desc : Rmem.Descriptor.t option;
  mutable load_desc : Rmem.Descriptor.t option;
  mutable map : Shardmap.t option;
  shard_descs : (int * int, Rmem.Descriptor.t) Hashtbl.t;
  mutable policy : Rmem.Recovery.policy option;
  mutable probe_timeout : Sim.Time.t option;
  counts : int array;  (* lookups per map-entry index since last report *)
  mutable lookups : int;
  mutable stale_refetches : int;
  mutable forward_patches : int;
  mutable refreshes : (int * Sim.Time.t) list;  (* newest first *)
  stats : Metrics.Account.t;
}

let create ~map_hint ~reconciler_hint clerk =
  let node = Clerk.node clerk in
  {
    clerk;
    rmem = Clerk.rmem clerk;
    node;
    space = Cluster.Node.new_address_space node;
    map_hint;
    reconciler_hint;
    map_desc = None;
    req_desc = None;
    load_desc = None;
    map = None;
    shard_descs = Hashtbl.create 16;
    policy = None;
    probe_timeout = None;
    counts = Array.make Shardmap.max_entries 0;
    lookups = 0;
    stale_refetches = 0;
    forward_patches = 0;
    refreshes = [];
    stats = Metrics.Account.create ~name:"shard clerk" ();
  }

let now t = Sim.Engine.now (Cluster.Node.engine t.node)

let rd t desc ~soff ~count ~doff =
  let buf = Rmem.Remote_memory.buffer ~space:t.space ~base:doff ~len:count in
  match t.policy with
  | Some policy ->
      Rmem.Remote_memory.read_with t.rmem ~policy desc ~soff ~count ~dst:buf
        ~doff:0 ()
  | None ->
      Rmem.Remote_memory.read_wait ?timeout:t.probe_timeout t.rmem desc ~soff
        ~count ~dst:buf ~doff:0 ()

(* The well-known imports happen once per client; under the fault plane
   a lost probe frame surfaces as Timeout and the import is simply
   retried — same discipline as the campaign layer's [retrying]. *)
let rec importing ?(attempts = 12) f =
  match f () with
  | v -> v
  | exception (Rmem.Status.Timeout | Rmem.Status.Remote_error _)
    when attempts > 1 ->
      Sim.Proc.wait (Sim.Time.us 400);
      importing ~attempts:(attempts - 1) f

let map_descriptor t =
  match t.map_desc with
  | Some desc -> desc
  | None ->
      let desc =
        importing (fun () -> Api.import ~hint:t.map_hint t.clerk Shardmap.map_name)
      in
      t.map_desc <- Some desc;
      desc

(* Map remote READ, issued one burst frame at a time so each chunk
   recovers independently under loss — a single multi-frame READ would
   need every reply frame to survive in one attempt.  The first chunk
   carries the header, so the fetch reads exactly as many further
   chunks as the advertised entry count occupies: a small map (the
   common case) costs one READ, which keeps an epoch-change stampede
   of healing clients cheap at the map host.  A torn image (publish
   racing the fetch, or chunks straddling one) fails [Shardmap.decode]
   and is simply refetched — the epoch word travels last, so a
   decodable map is trustworthy. *)
let fetch_map ?(tries = 8) t =
  let desc = map_descriptor t in
  let chunk =
    (Cluster.Node.costs t.node).Cluster.Costs.burst_cells
    * Rmem.Wire.data_bytes_per_cell
  in
  let rec go tries =
    rd t desc ~soff:0 ~count:(Stdlib.min chunk Shardmap.segment_bytes)
      ~doff:map_base;
    let count =
      Int32.to_int (Cluster.Address_space.read_word t.space ~addr:(map_base + 4))
    in
    let needed =
      if count <= 0 || count > Shardmap.max_entries then Shardmap.segment_bytes
      else Shardmap.header_bytes + (count * Shardmap.entry_bytes)
    in
    let pos = ref chunk in
    while !pos < needed do
      let n = Stdlib.min chunk (Shardmap.segment_bytes - !pos) in
      rd t desc ~soff:!pos ~count:n ~doff:(map_base + !pos);
      pos := !pos + n
    done;
    Metrics.Account.add t.stats ~category:"map fetches" 1.;
    match
      Shardmap.decode
        (Cluster.Address_space.read t.space ~addr:map_base
           ~len:Shardmap.segment_bytes)
    with
    | Some m ->
        (match t.map with
        | Some old when old.Shardmap.epoch = m.Shardmap.epoch -> ()
        | _ -> t.refreshes <- (m.Shardmap.epoch, now t) :: t.refreshes);
        t.map <- Some m;
        m
    | None ->
        if tries <= 1 then raise Rmem.Status.Timeout
        else begin
          Sim.Proc.wait (Sim.Time.us 5);
          go (tries - 1)
        end
  in
  go tries

let remote_epoch t =
  rd t (map_descriptor t) ~soff:0 ~count:4 ~doff:epoch_base;
  Int32.to_int (Cluster.Address_space.read_word t.space ~addr:epoch_base)

(* The map-as-revalidator: on a Stale_generation / Bad_segment failure
   refetch the map and refresh the descriptor with the generation the
   current epoch advertises — the shard-layer analogue of
   {!Api.revalidator}. *)
let revalidate t desc =
  match fetch_map t with
  | m -> (
      match
        List.find_opt
          (fun e ->
            e.Shardmap.node = Atm.Addr.to_int (Rmem.Descriptor.remote desc)
            && e.Shardmap.segment_id = Rmem.Descriptor.segment_id desc)
          m.Shardmap.entries
      with
      | Some e ->
          Rmem.Descriptor.refresh desc ~generation:e.Shardmap.generation;
          true
      | None -> false (* the shard is gone (merged away): give up *))
  | exception (Rmem.Status.Timeout | Rmem.Status.Remote_error _) -> true

let set_recovery t policy =
  t.policy <-
    Option.map
      (fun p -> Rmem.Recovery.with_revalidate p (fun d -> revalidate t d))
      policy

let set_probe_timeout t timeout = t.probe_timeout <- timeout

let shard_desc t e =
  let key = (e.Shardmap.node, e.Shardmap.segment_id) in
  match Hashtbl.find_opt t.shard_descs key with
  | Some d
    when Rmem.Generation.equal (Rmem.Descriptor.generation d)
           e.Shardmap.generation ->
      d
  | _ ->
      let d =
        Rmem.Remote_memory.import t.rmem
          ~remote:(Atm.Addr.of_int e.Shardmap.node)
          ~segment_id:e.Shardmap.segment_id ~generation:e.Shardmap.generation
          ~size:(e.Shardmap.slots * Record.slot_bytes)
          ~rights:Rmem.Rights.read_only ()
      in
      Hashtbl.replace t.shard_descs key d;
      d

type probe_outcome =
  | Found of Record.t
  | Absent
  | Inconclusive of Record.forward option
      (* the record migrated; the forwarding tombstone (when decodable)
         names the destination shard, so the caller can heal in place *)

(* Walk the probe chain with slot READs — the shared {!Dds.Probe} walk
   classified over remote slots.  An invalid slot ends the chain; a
   moved tombstone is skipped but remembered — absence after a
   tombstone is inconclusive (the record migrated; the map may be
   stale), and the first decodable forwarding record along the chain
   names where. *)
let probe_shard t e name =
  let desc = shard_desc t e in
  let found = ref None in
  let outcome =
    Dds.Probe.walk ~slots:e.Shardmap.slots ~hash:(Record.fnv_hash name)
      ~classify:(fun ~index ~probe:_ ->
        rd t desc
          ~soff:(index * Record.slot_bytes)
          ~count:Record.slot_bytes ~doff:probe_base;
        Metrics.Account.add t.stats ~category:"remote probes" 1.;
        let slot =
          Cluster.Address_space.read t.space ~addr:probe_base
            ~len:Record.slot_bytes
        in
        let flag = Record.flag_of_slot slot in
        if Int32.equal flag Record.flag_invalid then Dds.Probe.Free
        else if Int32.equal flag Record.flag_moved then
          Dds.Probe.Tombstone (Record.decode_forward slot)
        else
          match Record.decode slot with
          | Some r when String.equal r.Record.name name ->
              found := Some r;
              Dds.Probe.Hit
          | Some _ -> Dds.Probe.Other
          | None -> Dds.Probe.Free)
  in
  match outcome with
  | Dds.Probe.Found _ -> (
      match !found with Some r -> Found r | None -> Absent)
  | Dds.Probe.Absent { reusable = None; _ } -> Absent
  | Dds.Probe.Absent { reusable = Some _; note; _ } -> Inconclusive note

(* Heal from a forwarding tombstone without touching the map host:
   carve the destination shard's bucket range out of the cached entries,
   insert the forwarded entry, and adopt its epoch.  Only a forward
   newer than the cached map can patch it; a stale or range-breaking
   forward returns [false] and the caller falls back to a refetch. *)
let patch_map t (f : Record.forward) =
  match t.map with
  | Some m when f.Record.fwd_epoch > m.Shardmap.epoch ->
      let forwarded =
        {
          Shardmap.lo = f.Record.fwd_lo;
          hi = f.Record.fwd_hi;
          node = f.Record.fwd_node;
          segment_id = f.Record.fwd_segment_id;
          generation = f.Record.fwd_generation;
          slots = f.Record.fwd_slots;
        }
      in
      let carved =
        List.concat_map
          (fun e ->
            if e.Shardmap.hi < forwarded.Shardmap.lo
               || e.Shardmap.lo > forwarded.Shardmap.hi
            then [ e ]
            else
              (* keep whatever of [e] sticks out either side *)
              (if e.Shardmap.lo < forwarded.Shardmap.lo then
                 [ { e with Shardmap.hi = forwarded.Shardmap.lo - 1 } ]
               else [])
              @
              if e.Shardmap.hi > forwarded.Shardmap.hi then
                [ { e with Shardmap.lo = forwarded.Shardmap.hi + 1 } ]
              else [])
          m.Shardmap.entries
      in
      let entries =
        List.sort
          (fun a b -> compare a.Shardmap.lo b.Shardmap.lo)
          (forwarded :: carved)
      in
      if List.length entries <= Shardmap.max_entries && Shardmap.total entries
      then begin
        t.map <- Some { Shardmap.epoch = f.Record.fwd_epoch; entries };
        t.forward_patches <- t.forward_patches + 1;
        t.refreshes <- (f.Record.fwd_epoch, now t) :: t.refreshes;
        Metrics.Account.add t.stats ~category:"forward patches" 1.;
        true
      end
      else false
  | _ -> false

let lookup t name =
  Metrics.Account.add t.stats ~category:"lookup" 1.;
  t.lookups <- t.lookups + 1;
  let bucket = Shardmap.bucket_of_name name in
  let rec attempt rounds ~fresh =
    let m =
      match t.map with Some m when not fresh -> m | _ -> fetch_map t
    in
    match Shardmap.owner_index m bucket with
    | None -> raise (Clerk.Name_not_found name) (* decode guarantees total *)
    | Some (ei, e) -> (
        if ei < Array.length t.counts then t.counts.(ei) <- t.counts.(ei) + 1;
        let retry () =
          if rounds <= 0 then raise (Clerk.Name_not_found name)
          else begin
            t.stale_refetches <- t.stale_refetches + 1;
            Metrics.Account.add t.stats ~category:"stale refetches" 1.;
            Sim.Proc.wait (Sim.Time.us 5);
            attempt (rounds - 1) ~fresh:true
          end
        in
        match probe_shard t e name with
        | Found record -> record
        | Absent ->
            (* Believe a miss only under a current map: one 4-byte READ
               of the epoch word distinguishes absent from stale. *)
            if remote_epoch t = m.Shardmap.epoch then
              raise (Clerk.Name_not_found name)
            else retry ()
        | Inconclusive fwd -> (
            (* Prefer healing in place from the forwarding tombstone —
               it keeps a post-rebalance stampede of stale clients off
               the map host entirely. *)
            match fwd with
            | Some f when patch_map t f ->
                if rounds <= 0 then raise (Clerk.Name_not_found name)
                else attempt (rounds - 1) ~fresh:false
            | _ -> retry ())
        | exception Rmem.Status.Remote_error _ ->
            (* Stale or revoked shard descriptor: drop it, heal by map
               refetch. *)
            Hashtbl.remove t.shard_descs
              (e.Shardmap.node, e.Shardmap.segment_id);
            retry ())
  in
  attempt 4 ~fresh:false

(* ------------------------------------------------------------------ *)
(* Control plane: registration and load reporting.                     *)

let control_descriptor t cache name =
  match !cache with
  | Some desc -> desc
  | None ->
      let desc =
        importing (fun () -> Api.import ~hint:t.reconciler_hint t.clerk name)
      in
      cache := Some desc;
      desc

let request_descriptor t =
  let cache = ref t.req_desc in
  let desc = control_descriptor t cache Reconciler.request_segment_name in
  t.req_desc <- !cache;
  desc

let load_descriptor t =
  let cache = ref t.load_desc in
  let desc = control_descriptor t cache Reconciler.load_segment_name in
  t.load_desc <- !cache;
  desc

let register ?(attempts = 4) t record =
  Metrics.Account.add t.stats ~category:"register" 1.;
  let req = request_descriptor t in
  let my = Atm.Addr.to_int (Cluster.Node.addr t.node) in
  let rec go n =
    let slot = Clerk.alloc_scratch_slot t.clerk in
    let request = Bytes.make Reconciler.request_slot_bytes '\000' in
    Bytes.blit (Record.encode record) 0 request 0 Record.slot_bytes;
    Bytes.set_int32_le request Record.slot_bytes
      (Int32.of_int (slot * Bootstrap.scratch_slot_bytes));
    Rmem.Remote_memory.write t.rmem req
      ~off:(my * Reconciler.request_slot_bytes)
      ~notify:true request;
    match Clerk.await_scratch_reply t.clerk ~slot with
    | Some _ -> ()
    | None -> failwith "shard clerk: registration refused (shard full)"
    | exception Rmem.Status.Timeout when n > 1 ->
        (* The request or the ack was lost; registration is idempotent,
           reissue. *)
        Metrics.Account.add t.stats ~category:"register retries" 1.;
        go (n - 1)
  in
  go attempts

let report_load t =
  match t.map with
  | None -> ()
  | Some m ->
      let load = load_descriptor t in
      let row = Bytes.make Reconciler.load_row_bytes '\000' in
      Bytes.set_int32_le row 0 (Int32.of_int m.Shardmap.epoch);
      Array.iteri
        (fun i c -> Bytes.set_int32_le row (8 + (4 * i)) (Int32.of_int c))
        t.counts;
      Rmem.Remote_memory.write t.rmem load
        ~off:(Atm.Addr.to_int (Cluster.Node.addr t.node) * Reconciler.load_row_bytes)
        row;
      Array.fill t.counts 0 (Array.length t.counts) 0

let clerk t = t.clerk
let epoch t = match t.map with Some m -> m.Shardmap.epoch | None -> 0
let lookups t = t.lookups
let stale_refetches t = t.stale_refetches
let forward_patches t = t.forward_patches
let refreshes t = List.rev t.refreshes
let stats t = t.stats

(* The reconciler: the sharded name service's control plane.

   A single low-QPS process owns the shard map.  It keeps a local mirror
   of every shard's registry, applies registrations to the mirror, and
   pushes each affected 64-byte slot to the owning shard segment with
   plain remote WRITEs — so the data plane that clients read is only
   ever written by this one process, and lookups stay pure data
   transfer.

   Publication follows the fence-then-doorbell discipline the static
   verifier checks: migrated slots are written to the destination shard
   and FENCEd there (a different exporter than the map host), then the
   map body is written, then the epoch word goes out last with the
   notify bit — the doorbell.  Only after the new map is out are the
   migrated records tombstoned ([Record.flag_moved]) in the old owner,
   so at every instant a client holding either epoch finds every
   record somewhere its map points.  The tombstones are *forwarding*
   tombstones: they carry the destination shard's coordinates, so the
   stale readers heal in place rather than convoying at the map host.

   Registration is control transfer by design (the paper's §4.2
   fallback as the common case): a client remote-WRITEs an encoded
   record into its slot of the reconciler's request segment with
   notification; the handler spawns a worker that applies the insert,
   fences the shard, and remote-WRITEs an ack into the client clerk's
   scratch segment. *)

let request_segment_name = "shard.req"
let load_segment_name = "shard.load"

let request_slot_bytes = 80
(* [record 64][reply offset 4][pad 12]; the requester is identified by
   its slot index (= its network address). *)

let load_row_bytes = 8 + (4 * Shardmap.max_entries)
(* [epoch 4][pad 4][per-entry-index lookup counts]; rows from other
   epochs are ignored, so entry indices never cross epochs. *)

(* Reconciler address-space layout. *)
let request_base = 0
let load_base = 0x40000
let mirrors_base = 0x100000

type shard = {
  id : int;
  host : Clerk.t;
  segment : Rmem.Segment.t;
  desc : Rmem.Descriptor.t;  (* the reconciler's write handle *)
  mirror : Registry.t;
  mirror_base : int;
  lo : int;  (* a shard's low bound is fixed; splits and merges move [hi] *)
  mutable hi : int;
}

type t = {
  clerk : Clerk.t;
  rmem : Rmem.Remote_memory.t;
  node : Cluster.Node.t;
  space : Cluster.Address_space.t;
  map_desc : Rmem.Descriptor.t;
  request_segment : Rmem.Segment.t;
  slots : int;
  shard_bytes : int;
  max_clients : int;
  hosts : Clerk.t array;
  mutable next_host : int;
  mutable next_shard : int;
  mutable spares : (Clerk.t * Rmem.Segment.t * Rmem.Descriptor.t) list;
      (* pre-exported shard segments, one pool entry per host: a split
         draws its destination segment here instead of paying the
         kernel export (page pinning busies the destination CPU for
         hundreds of microseconds) in the middle of live traffic *)
  mutable shards : shard list;  (* sorted by [lo] *)
  mutable epoch : int;
  mutable publishes : int;
  mutable doorbells : int;  (* consumed at the map host *)
  mutable splits : int;
  mutable merges : int;
  mutable moves : int;  (* records migrated across shards *)
  mutable policy : Rmem.Recovery.policy option;
  pace : Sim.Time.t option;
      (* spacing between background migration writes, so a split's slot
         pushes and tombstones interleave with foreground probes instead
         of monopolizing the destination host's ingress link *)
  stats : Metrics.Account.t;
}

type verdict = Balanced | Split of int

let wr ?notify t desc ~off bytes =
  match t.policy with
  | Some policy ->
      Rmem.Remote_memory.write_with t.rmem ~policy desc ~off ?notify bytes
  | None -> Rmem.Remote_memory.write t.rmem desc ~off ?notify bytes

let fence t desc =
  match t.policy with
  | Some policy -> Rmem.Remote_memory.fence_with t.rmem ~policy desc
  | None -> Rmem.Remote_memory.fence t.rmem desc

let sort_shards shards = List.sort (fun a b -> compare a.lo b.lo) shards
let paced t = match t.pace with Some d -> Sim.Proc.wait d | None -> ()

let entry_of_shard t s =
  {
    Shardmap.lo = s.lo;
    hi = s.hi;
    node = Atm.Addr.to_int (Cluster.Node.addr (Clerk.node s.host));
    segment_id = Rmem.Segment.id s.segment;
    generation = Rmem.Segment.generation s.segment;
    slots = t.slots;
  }

let map t =
  { Shardmap.epoch = t.epoch; entries = List.map (entry_of_shard t) t.shards }

(* Push one mirror slot (or just its flag word) to the owning shard
   segment: the mirror is the source of truth, the segment its replica. *)
let push_slot t s index =
  let off = index * Record.slot_bytes in
  let bytes =
    Cluster.Address_space.read t.space ~addr:(s.mirror_base + off)
      ~len:Record.slot_bytes
  in
  wr t s.desc ~off bytes

(* Tombstone a migrated slot with a forwarding image: the destination
   shard's coordinates ride in the moved slot's spare bytes, so a stale
   reader patches its map in place instead of refetching it. *)
let push_forward t s index fwd =
  wr t s.desc ~off:(index * Record.slot_bytes) (Record.encode_forward fwd)

(* Sum the per-entry-index lookup counts clients report for the current
   epoch; entry indices are positions in the sorted shard list. *)
let loads t =
  let sorted = t.shards in
  let n = List.length sorted in
  let acc = Array.make (max n 1) 0 in
  for c = 0 to t.max_clients - 1 do
    let row = load_base + (c * load_row_bytes) in
    let epoch = Int32.to_int (Cluster.Address_space.read_word t.space ~addr:row) in
    if epoch = t.epoch then
      for i = 0 to n - 1 do
        acc.(i) <-
          acc.(i)
          + Int32.to_int
              (Cluster.Address_space.read_word t.space ~addr:(row + 8 + (4 * i)))
      done
  done;
  List.mapi (fun i s -> (s, acc.(i))) sorted

let host_index t h =
  let addr = Atm.Addr.to_int (Cluster.Node.addr (Clerk.node h)) in
  let rec go i =
    if i >= Array.length t.hosts then -1
    else if Atm.Addr.to_int (Cluster.Node.addr (Clerk.node t.hosts.(i))) = addr
    then i
    else go (i + 1)
  in
  go 0

(* Destination choice for a new shard: the least-loaded host — by the
   clients' reported lookup counts summed per host, then by hosted
   shard count, then round robin — so a split actually sheds the hot
   host's load instead of handing the new shard straight back to it. *)
let pick_host t =
  let nh = Array.length t.hosts in
  let shards_on = Array.make nh 0 in
  let load_on = Array.make nh 0 in
  List.iter
    (fun s ->
      let i = host_index t s.host in
      if i >= 0 then shards_on.(i) <- shards_on.(i) + 1)
    t.shards;
  List.iter
    (fun (s, l) ->
      let i = host_index t s.host in
      if i >= 0 then load_on.(i) <- load_on.(i) + l)
    (loads t);
  let best = ref (t.next_host mod nh) in
  for k = 1 to nh - 1 do
    let i = (t.next_host + k) mod nh in
    if (load_on.(i), shards_on.(i)) < (load_on.(!best), shards_on.(!best)) then
      best := i
  done;
  t.next_host <- !best + 1;
  t.hosts.(!best)

(* Export one shard-sized segment on [host] and import it at the
   reconciler.  This is the expensive part of growing the shard set:
   the kernel export pins the segment's pages, busying the host's CPU
   for hundreds of microseconds. *)
let export_shard_segment t host ~name =
  let host_space = Cluster.Node.new_address_space (Clerk.node host) in
  let segment =
    Api.export host ~space:host_space ~base:0 ~len:t.shard_bytes
      ~rights:Rmem.Rights.all ~name ()
  in
  let desc =
    Rmem.Remote_memory.import t.rmem
      ~remote:(Cluster.Node.addr (Clerk.node host))
      ~segment_id:(Rmem.Segment.id segment)
      ~generation:(Rmem.Segment.generation segment)
      ~size:t.shard_bytes ~rights:Rmem.Rights.all ()
  in
  (segment, desc)

let stock_spare t host =
  let spare = export_shard_segment t host ~name:"shard.reg.spare" in
  t.spares <- (host, fst spare, snd spare) :: t.spares

let take_spare t host =
  let addr h = Atm.Addr.to_int (Cluster.Node.addr (Clerk.node h)) in
  let rec go acc = function
    | [] -> None
    | (h, seg, desc) :: rest when addr h = addr host ->
        t.spares <- List.rev_append acc rest;
        Some (seg, desc)
    | entry :: rest -> go (entry :: acc) rest
  in
  go [] t.spares

let create_shard t ~lo ~hi =
  let id = t.next_shard in
  if id >= Shardmap.max_entries then failwith "reconciler: shard limit reached";
  t.next_shard <- id + 1;
  let host = pick_host t in
  (* Prefer a pooled spare: a split must not stall the destination
     host's foreground probes behind a synchronous kernel export. *)
  let segment, desc =
    match take_spare t host with
    | Some sd -> sd
    | None ->
        export_shard_segment t host ~name:(Printf.sprintf "shard.reg.%d" id)
  in
  let mirror_base = mirrors_base + (id * t.shard_bytes) in
  let mirror = Registry.create ~space:t.space ~base:mirror_base ~slots:t.slots in
  { id; host; segment; desc; mirror; mirror_base; lo; hi }

(* Fence-then-doorbell: body from [body_off] first, the epoch word last
   with notification.  Callers fence migrated data at its (distinct)
   exporter before calling; the map host itself needs no fence between
   body and bell — the link is FIFO. *)
let publish t =
  t.epoch <- t.epoch + 1;
  Metrics.Account.add t.stats ~category:"publishes" 1.;
  let body = Shardmap.encode_body (map t) in
  (* One burst frame per policy-backed write: a multi-frame body would
     need every frame of the deposit AND the verify read-back to survive
     in a single attempt, which a lossy multi-hop fabric makes
     vanishingly rare.  Framed chunks recover independently. *)
  let costs = Cluster.Node.costs t.node in
  let chunk = costs.Cluster.Costs.burst_cells * Rmem.Wire.data_bytes_per_cell in
  let len = Bytes.length body in
  let pos = ref 0 in
  while !pos < len do
    let n = Stdlib.min chunk (len - !pos) in
    wr t t.map_desc ~off:(Shardmap.body_off + !pos) (Bytes.sub body !pos n);
    pos := !pos + n
  done;
  let bell = Bytes.create 4 in
  Bytes.set_int32_le bell 0 (Int32.of_int t.epoch);
  wr ~notify:true t t.map_desc ~off:0 bell;
  t.publishes <- t.publishes + 1

let shard_for t bucket =
  List.find_opt (fun s -> s.lo <= bucket && bucket <= s.hi) t.shards

let register t record =
  Metrics.Account.add t.stats ~category:"registrations" 1.;
  Cluster.Cpu.use (Cluster.Node.cpu t.node) ~category:"reconciler"
    (Cluster.Node.costs t.node).Cluster.Costs.hash_insert;
  let bucket = Shardmap.bucket_of_name record.Record.name in
  match shard_for t bucket with
  | None -> Error `Full (* unreachable: the map is total *)
  | Some s -> (
      match Registry.insert s.mirror record with
      | Error `Full -> Error `Full
      | Ok index ->
          push_slot t s index;
          fence t s.desc;
          Ok ())

(* Migrate every record of [src] whose bucket falls in [lo, hi] into
   [dst]: insert into the destination mirror, push the slots, fence the
   destination.  Tombstoning the source happens only after the caller
   publishes the new map. *)
let move_records t ~src ~dst ~lo ~hi =
  let moved = ref [] in
  Registry.iter src.mirror (fun _ record ->
      let bucket = Shardmap.bucket_of_name record.Record.name in
      if lo <= bucket && bucket <= hi then moved := record :: !moved);
  List.iter
    (fun record ->
      (match Registry.insert dst.mirror record with
      | Ok index -> push_slot t dst index
      | Error `Full -> failwith "reconciler: destination shard full");
      paced t)
    !moved;
  if !moved <> [] then fence t dst.desc;
  !moved

let retire t ~src ~dst moved =
  let fwd =
    {
      Record.fwd_epoch = t.epoch;
      fwd_lo = dst.lo;
      fwd_hi = dst.hi;
      fwd_node = Atm.Addr.to_int (Cluster.Node.addr (Clerk.node dst.host));
      fwd_segment_id = Rmem.Segment.id dst.segment;
      fwd_generation = Rmem.Segment.generation dst.segment;
      fwd_slots = t.slots;
    }
  in
  List.iter
    (fun record ->
      (match Registry.tombstone src.mirror record.Record.name with
      | Some index -> push_forward t src index fwd
      | None -> ());
      paced t)
    moved;
  if moved <> [] then fence t src.desc;
  t.moves <- t.moves + List.length moved;
  Metrics.Account.add t.stats ~category:"moves" (float_of_int (List.length moved))

let find_shard t id = List.find_opt (fun s -> s.id = id) t.shards

let split t id =
  match find_shard t id with
  | None -> None
  | Some s when s.hi <= s.lo -> None (* a single bucket cannot split *)
  | Some s ->
      let mid = (s.lo + s.hi) / 2 in
      let d = create_shard t ~lo:(mid + 1) ~hi:s.hi in
      let moved = move_records t ~src:s ~dst:d ~lo:d.lo ~hi:d.hi in
      s.hi <- mid;
      t.shards <- sort_shards (d :: t.shards);
      publish t;
      retire t ~src:s ~dst:d moved;
      t.splits <- t.splits + 1;
      (* Restock the consumed spare only after the migrated range's
         heal traffic has moved on — the export's page pinning would
         otherwise stall the very probes the split just redirected. *)
      stock_spare t d.host;
      Some d.id

let merge t =
  match t.shards with
  | [] | [ _ ] -> None
  | shards ->
      let rec pairs = function
        | a :: (b :: _ as rest) -> (a, b) :: pairs rest
        | _ -> []
      in
      let a, b =
        List.fold_left
          (fun ((xa, xb) as best) ((ya, yb) as cand) ->
            if
              Registry.live ya.mirror + Registry.live yb.mirror
              < Registry.live xa.mirror + Registry.live xb.mirror
            then cand
            else best)
          (List.hd (pairs shards))
          (pairs shards)
      in
      let moved = move_records t ~src:b ~dst:a ~lo:b.lo ~hi:b.hi in
      a.hi <- b.hi;
      t.shards <- List.filter (fun s -> s.id <> b.id) t.shards;
      publish t;
      (* Revoking the absorbed segment makes every stale client
         descriptor fail cleanly; the map refetch heals them. *)
      Api.revoke b.host b.segment;
      t.moves <- t.moves + List.length moved;
      t.merges <- t.merges + 1;
      Some (b.id, a.id)

let rebalance_once t =
  let ls = loads t in
  let total = List.fold_left (fun acc (_, l) -> acc + l) 0 ls in
  if total = 0 then Balanced
  else begin
    let n = List.length ls in
    let hot, hot_load =
      List.fold_left
        (fun ((_, bl) as best) ((_, l) as cand) ->
          if l > bl then cand else best)
        (List.hd ls) ls
    in
    (* Split when one shard draws at least twice its fair share. *)
    if hot_load * n >= 2 * total && hot.hi > hot.lo then
      match split t hot.id with Some id -> Split id | None -> Balanced
    else Balanced
  end

(* Exporter-side registration handler: bounded interrupt work only — the
   insert, the slot push, the fence, and the ack all happen in a spawned
   worker process. *)
let serve_registrations t =
  Rmem.Notification.set_signal_handler
    (Rmem.Segment.notification t.request_segment)
    (Some
       (fun record ->
         let slot_off = record.Rmem.Notification.off in
         Cluster.Node.spawn t.node ~name:"reconciler" (fun () ->
             let requester = slot_off / request_slot_bytes in
             let request =
               Cluster.Address_space.read t.space
                 ~addr:(request_base + slot_off)
                 ~len:request_slot_bytes
             in
             let reply_off =
               Int32.to_int (Bytes.get_int32_le request Record.slot_bytes)
             in
             let reply = Bytes.make Bootstrap.scratch_slot_bytes '\000' in
             (match Record.decode (Bytes.sub request 0 Record.slot_bytes) with
             | None -> Bytes.set_int32_le reply 0 Bootstrap.reply_absent
             | Some record -> (
                 match register t record with
                 | Ok () ->
                     Bytes.set_int32_le reply 0 Bootstrap.reply_found;
                     Bytes.blit (Record.encode record) 0 reply 4
                       Record.slot_bytes
                 | Error `Full ->
                     Bytes.set_int32_le reply 0 Bootstrap.reply_absent));
             let scratch =
               Clerk.scratch_descriptor t.clerk
                 ~remote:(Atm.Addr.of_int requester)
             in
             (* Fire-and-forget: the scratch segment is write-only, so
                the ack cannot be read back or fenced.  A lost ack is
                healed end to end — the requester times out and
                reissues the (idempotent) registration. *)
             Rmem.Remote_memory.write t.rmem scratch ~off:reply_off reply)))

let create ?(slots = Bootstrap.default_slots) ?(max_clients = 128) ?policy
    ?pace ~map_clerk ~hosts clerk =
  if Array.length hosts = 0 then invalid_arg "Reconciler.create: no hosts";
  let rmem = Clerk.rmem clerk in
  let node = Clerk.node clerk in
  let space = Cluster.Node.new_address_space node in
  let request_segment =
    Api.export clerk ~space ~base:request_base
      ~len:(max_clients * request_slot_bytes)
      ~rights:Rmem.Rights.write_only ~policy:Rmem.Segment.Conditional
      ~name:request_segment_name ()
  in
  let (_ : Rmem.Segment.t) =
    Api.export clerk ~space ~base:load_base
      ~len:(max_clients * load_row_bytes)
      ~rights:Rmem.Rights.write_only ~name:load_segment_name ()
  in
  let map_space = Cluster.Node.new_address_space (Clerk.node map_clerk) in
  let map_segment =
    Api.export map_clerk ~space:map_space ~base:0 ~len:Shardmap.segment_bytes
      ~rights:Rmem.Rights.all ~policy:Rmem.Segment.Conditional
      ~name:Shardmap.map_name ()
  in
  let map_desc =
    Rmem.Remote_memory.import rmem
      ~remote:(Cluster.Node.addr (Clerk.node map_clerk))
      ~segment_id:(Rmem.Segment.id map_segment)
      ~generation:(Rmem.Segment.generation map_segment)
      ~size:Shardmap.segment_bytes ~rights:Rmem.Rights.all ()
  in
  let t =
    {
      clerk;
      rmem;
      node;
      space;
      map_desc;
      request_segment;
      slots;
      shard_bytes = Registry.segment_bytes ~slots;
      max_clients;
      hosts;
      next_host = 0;
      next_shard = 0;
      spares = [];
      shards = [];
      epoch = 0;
      publishes = 0;
      doorbells = 0;
      splits = 0;
      merges = 0;
      moves = 0;
      policy;
      pace;
      stats = Metrics.Account.create ~name:"reconciler" ();
    }
  in
  (* The map host consumes epoch doorbells — the only control transfer
     on the publication path. *)
  Rmem.Notification.set_signal_handler
    (Rmem.Segment.notification map_segment)
    (Some (fun (_ : Rmem.Notification.record) -> t.doorbells <- t.doorbells + 1));
  let s0 = create_shard t ~lo:0 ~hi:(Shardmap.buckets - 1) in
  t.shards <- [ s0 ];
  publish t;
  (* Stock one spare segment per host while nothing is in flight:
     a mid-campaign split draws from this pool, so the export's page
     pinning never lands on a host serving foreground probes. *)
  Array.iter (fun h -> stock_spare t h) t.hosts;
  t

let shard_id_of_bucket t bucket =
  Option.map (fun s -> s.id) (shard_for t bucket)

let set_recovery t policy = t.policy <- policy
let clerk t = t.clerk
let epoch t = t.epoch
let publishes t = t.publishes
let doorbells t = t.doorbells
let splits t = t.splits
let merges t = t.merges
let moves t = t.moves
let shard_count t = List.length t.shards
let stats t = t.stats

let live t =
  List.fold_left (fun acc s -> acc + Registry.live s.mirror) 0 t.shards

let well_formed t =
  List.for_all (fun s -> Registry.well_formed s.mirror) t.shards
  && Shardmap.total (List.map (entry_of_shard t) t.shards)

(** The open-addressed (linear-probing) hash table a clerk serializes
    into its registry segment. Local operations only; remote clerks read
    the same bytes with remote READs.

    Deletion simply invalidates the slot. Because an invalid slot ends
    every probe chain, a deletion can orphan colliding names that probed
    past it; the paper's name service tolerates this the same way —
    generation numbers and periodic refresh make stale or missed entries
    recoverable, and re-export re-inserts. *)

type t

val segment_bytes : slots:int -> int
(** Bytes of segment memory a table of [slots] slots occupies. *)

val create : space:Cluster.Address_space.t -> base:int -> slots:int -> t
(** [slots] must be a positive power of two. *)

val slots : t -> int
val live : t -> int

val slot_index : t -> string -> int -> int
(** [slot_index t name i] — the i-th probe location for [name]; the same
    on every clerk (shared hash function). *)

val slot_offset : t -> int -> int
(** Byte offset of a slot within the registry segment. *)

val insert : t -> Record.t -> (int, [ `Full ]) result
(** Returns the slot index used. Re-inserting a live name overwrites it.
    The flag word is written last (single-writer / multi-reader
    consistency, as in the paper). *)

val lookup : t -> string -> (Record.t * int) option
(** Returns the record and the number of probes taken to reach it. *)

val delete : t -> string -> bool

val tombstone : t -> string -> int option
(** Mark a name's slot moved ({!Record.flag_moved}) instead of invalid:
    probe chains skip the slot (nothing is orphaned) and remote readers
    that meet it know the record migrated to another shard. Returns the
    slot index tombstoned so the caller can mirror the flag word
    remotely, or [None] if the name is absent. *)

val iter : t -> (int -> Record.t -> unit) -> unit
(** Apply to every live (decodable) slot, in slot order. *)

val well_formed : t -> bool
(** Structural consistency of the serialized table: the live counter
    matches the number of decodable slots and no valid slot carries a
    torn (empty-name) record. Orphaned-but-valid entries after a
    deletion are tolerated, as in the paper's name service. *)

(** The name-service clerk: one per machine, no central server.

    Clerks communicate only through remote memory. Each clerk's registry
    is an open-addressed hash table inside its well-known exported
    segment; importers probe it with remote READs, falling back to a
    control-transfer lookup (remote WRITE with notification, answered by
    a remote WRITE of the result) according to the probe policy —
    exactly the three options §4.2 of the paper weighs. *)

type t

exception Name_not_found of string

type probe_policy =
  | Probe_until_found  (** keep probing remotely (the paper's choice) *)
  | Probe_then_control of int  (** probe [n] times, then transfer control *)
  | Control_immediately

val create : ?slots:int -> ?probe_policy:probe_policy -> Rmem.Remote_memory.t -> t
(** Create the clerk on a node. Must be the node's first exporter (the
    well-known generation contract); call from within a process. *)

val node : t -> Cluster.Node.t
val rmem : t -> Rmem.Remote_memory.t
val registry : t -> Registry.t
val set_probe_policy : t -> probe_policy -> unit

val set_probe_timeout : t -> Sim.Time.t option -> unit
(** Bound each remote probe READ. The default [None] waits forever —
    correct on a reliable fabric and bit-identical to the legacy
    schedule; under the fault plane a lost probe must surface as
    {!Rmem.Status.Timeout} so lookups (and the recovery layer's
    revalidation) can retry instead of hanging. *)

val set_pipeline : t -> Rmem.Pipeline.t option -> unit
(** Route lookup probe chains through a pipelined issue engine: up to
    [window] probe READs go out concurrently into distinct probe-buffer
    slots and are scanned in probe order, overlapping the round trips
    the serial path pays one by one. Chain semantics are unchanged; a
    short chain may cost a few probes past its end (the price of the
    overlap). [None] or a disabled engine keeps the serial path. *)

(** {1 Service procedures (reached via local RPC from the kernel)} *)

val add_name : t -> Record.t -> unit
(** ADDNAME: insert into the local registry (local memory ops only). *)

val delete_name : t -> string -> unit
(** DELETENAME: invalidate the local slot; remote clerks discover the
    deletion on refresh or through generation mismatch. *)

val lookup : ?force:bool -> ?hint:Atm.Addr.t -> t -> string -> Record.t
(** LOOKUPNAME: local cache, then the local registry, then remote
    probing of [hint]'s registry per the probe policy. [force] skips the
    cache (the paper's explicit-remote-lookup escape hatch). Raises
    {!Name_not_found}. *)

val register_descriptor : t -> name:string -> Rmem.Descriptor.t -> unit
(** Associate a kernel descriptor with a cached name so refresh can mark
    it stale when the name disappears or changes generation. *)

val serve_lookup_requests : t -> unit
(** Install the exporter-side signal handler answering control-transfer
    lookups on this clerk's request segment. *)

(** {1 Scratch-slot rendezvous}

    The clerk's well-known scratch segment is the reply channel for any
    control-plane exchange answered by a remote WRITE — its own
    control-transfer lookups, and the sharding layer's registrations. *)

val alloc_scratch_slot : t -> int
(** Claim the next scratch slot (round-robin), arming its flag word to
    pending; the returned index times {!Bootstrap.scratch_slot_bytes} is
    the reply offset a request should advertise. *)

val await_scratch_reply : ?timeout:Sim.Time.t -> t -> slot:int -> Record.t option
(** Spin (5 us steps, default 50 ms deadline) on the slot's flag word
    until a reply lands: [Some record] on a found reply carrying a
    decodable record, [None] on an absent/refused reply. Raises
    {!Rmem.Status.Timeout} at the deadline. *)

val scratch_descriptor : t -> remote:Atm.Addr.t -> Rmem.Descriptor.t
(** Import (lazily, cached) the well-known scratch segment of [remote]'s
    clerk — where a server writes its reply for {!await_scratch_reply}
    to observe. *)

(** {1 Cache refresh} *)

val refresh_once : t -> unit
(** Revalidate every cached imported name against its home registry;
    purge the gone/re-exported ones and mark their descriptors stale. *)

val reannounce : t -> unit
(** After a crash/restart re-exported this node's segments under fresh
    generations ({!Rmem.Remote_memory.restart_exports}), rewrite the
    local registry records that still advertise the old generations, so
    remote lookups and forced re-imports see the new ones. *)

val start_refresh_daemon : t -> period:Sim.Time.t -> unit
val cached_names : t -> string list

val stats : t -> Metrics.Account.t

(** The shard map: the sharded name service's directory.

    Key-hash buckets are carved into contiguous, inclusive, gap-free
    ranges, each owned by one registry shard segment on some node. The
    map serializes into one small exported segment whose first word is a
    generation-numbered epoch: the reconciler publishes body first, then
    the epoch word last with notification (fence-then-doorbell), so a
    fetched map that decodes is trustworthy and a torn fetch fails
    {!decode} and retries. Pure layout and arithmetic — the client and
    control planes agree by construction. *)

type entry = {
  lo : int;
  hi : int;  (** inclusive bucket range *)
  node : int;  (** shard host's network address *)
  segment_id : int;
  generation : Rmem.Generation.t;
  slots : int;  (** registry slots serialized in the shard segment *)
}

type t = { epoch : int; entries : entry list (** sorted by [lo] *) }

val buckets : int
(** 65536 — the bucket space the hash folds into. *)

val bucket_of_name : string -> int
(** {!Record.fnv_hash} folded into the bucket space; identical on every
    client and on the reconciler. *)

val map_name : string
(** ["shard.map"] — the map segment's name-service registration. *)

val header_bytes : int
val entry_bytes : int
val max_entries : int

val segment_bytes : int
(** Fixed size of the map segment (header + [max_entries] entries). *)

val body_off : int
(** Offset of everything but the epoch word: the body is written first,
    the epoch word at offset 0 last — the doorbell. *)

val total : entry list -> bool
(** Sorted, gap-free, covering the whole bucket space. *)

val owner : t -> int -> entry option
val owner_index : t -> int -> (int * entry) option
(** The entry owning a bucket (with its position in the sorted list —
    the index load reports are keyed by). *)

val slot_index : slots:int -> string -> int -> int
(** The i-th probe location for a name inside a shard of [slots] slots;
    same linear-probing discipline as {!Registry.slot_index}. *)

val encode : t -> bytes
(** The full segment image. Raises [Invalid_argument] past
    [max_entries]. *)

val encode_body : t -> bytes
(** The image from [body_off] on — what a publish writes before ringing
    the epoch doorbell. *)

val decode : bytes -> t option
(** [None] on a torn or ill-formed image (bad counts, non-total ranges,
    non-power-of-two slots). *)

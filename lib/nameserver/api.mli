(** The user-facing kernel interface to the name service.

    Every call is: user → kernel call → local RPC to the same-machine
    clerk, matching the paper's structure. Cross-machine traffic is pure
    data transfer inside the clerk, except for the explicit
    control-transfer import variant (Table 3's last row). *)

val export :
  Clerk.t ->
  space:Cluster.Address_space.t ->
  base:int ->
  len:int ->
  ?rights:Rmem.Rights.t ->
  ?policy:Rmem.Segment.notify_policy ->
  name:string ->
  unit ->
  Rmem.Segment.t
(** Export a segment and register its name (ADDNAME). *)

val import :
  ?force:bool -> ?hint:Atm.Addr.t -> Clerk.t -> string -> Rmem.Descriptor.t
(** Import by name (LOOKUPNAME): clerk cache, local registry, then
    remote probing of [hint]. Installs and returns a kernel descriptor.
    Raises {!Clerk.Name_not_found}. *)

val import_with_control_transfer :
  hint:Atm.Addr.t -> Clerk.t -> string -> Rmem.Descriptor.t
(** The lookup-with-notification variant: remote WRITE of the arguments
    with notify, remote WRITE of the result back, requester spinning. *)

val revoke : Clerk.t -> Rmem.Segment.t -> unit
(** DELETENAME then kernel revocation. *)

val revalidator :
  ?hint:Atm.Addr.t -> Clerk.t -> string -> Rmem.Descriptor.t -> bool
(** [revalidator ?hint clerk name] is a {!Rmem.Recovery.policy}
    revalidate function: a forced LOOKUPNAME of [name], refreshing the
    descriptor in place with the generation the exporter now advertises
    (so an op that failed [Stale_generation] after a crash/restart
    succeeds on retry). Returns false — give up — when the name is gone
    or now names a different segment; a transient lookup failure returns
    true so the policy retries. *)

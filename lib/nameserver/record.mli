(** Fixed-size (64-byte) registry records with a valid-flag word written
    last, so remote readers see slots either invalid or complete. *)

type t = {
  name : string;
  node : int;  (** exporter's network address *)
  segment_id : int;
  generation : Rmem.Generation.t;
  size : int;
  rights : Rmem.Rights.t;
}

val slot_bytes : int
(** 64. *)

val name_bytes : int
(** 32 — maximum name length. *)

val flag_invalid : int32
val flag_valid : int32

val flag_moved : int32
(** The sharding layer's tombstone: the record migrated to another shard
    segment. Probe chains skip (rather than end at) a moved slot, and a
    remote reader that meets one knows its shard map may be stale. *)

val flag_of_slot : bytes -> int32
(** The slot's leading flag word ([flag_invalid] on a short slot). *)

val make :
  name:string ->
  node:int ->
  segment_id:int ->
  generation:Rmem.Generation.t ->
  size:int ->
  rights:Rmem.Rights.t ->
  t
(** Raises [Invalid_argument] on over-long names or embedded NULs. *)

val fnv_hash : string -> int
(** The hash every clerk uses, so a name lands in the same slot on all
    registries — the paper's single-remote-read optimization. *)

val encode : t -> bytes
val decode : bytes -> t option
(** [None] when the slot is invalid (never exported or deleted). *)

val is_valid : bytes -> bool
val invalid_slot : unit -> bytes

type forward = {
  fwd_epoch : int;  (** the epoch that published the migration *)
  fwd_lo : int;
  fwd_hi : int;  (** inclusive bucket range of the destination shard *)
  fwd_node : int;
  fwd_segment_id : int;
  fwd_generation : Rmem.Generation.t;
  fwd_slots : int;
}
(** A forwarding tombstone: a moved slot's spare 60 bytes carry the
    destination shard's coordinates, so a reader that trips on one can
    patch its cached shard map locally and retry against the new owner
    directly — no convoy at the map host after a rebalance. *)

val encode_forward : forward -> bytes
(** A full 64-byte slot image, flag word [flag_moved]. *)

val decode_forward : bytes -> forward option
(** [None] unless the slot is a well-formed forwarding tombstone — in
    particular a bare flag-only tombstone (epoch 0) yields [None] and
    the reader falls back to a map refetch. *)

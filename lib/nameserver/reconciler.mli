(** The reconciler: the sharded name service's control plane.

    One low-QPS process owns the shard map. It mirrors every shard's
    registry locally, applies registrations to the mirror, and pushes
    affected 64-byte slots to the owning shard segments with remote
    WRITEs — the data plane clients read has a single writer, and
    lookups stay pure data transfer.

    Publication is fence-then-doorbell: migrated slots are written and
    FENCEd at the destination shard (a different exporter than the map
    host), the map body is written, and the epoch word goes last with
    the notify bit. Migrated records are tombstoned in the old owner
    only after the new map is out, so a client holding either epoch
    finds every record somewhere its map points. *)

type t

type verdict = Balanced | Split of int  (** the new shard's id *)

val request_segment_name : string
(** ["shard.req"] — registration inbox, one slot per client address. *)

val load_segment_name : string
(** ["shard.load"] — per-client lookup-count rows, one per address. *)

val request_slot_bytes : int
(** [[record 64][reply offset 4][pad]] = 80; the requester is its slot
    index. *)

val load_row_bytes : int
(** [[epoch 4][pad 4][per-entry-index counts]]; rows from other epochs
    are ignored. *)

val create :
  ?slots:int ->
  ?max_clients:int ->
  ?policy:Rmem.Recovery.policy ->
  ?pace:Sim.Time.t ->
  map_clerk:Clerk.t ->
  hosts:Clerk.t array ->
  Clerk.t ->
  t
(** Export the request/load segments on the reconciler's node and the
    map segment via [map_clerk]'s node, place one initial shard covering
    the whole bucket space on the first host, and publish epoch 1. Call
    from within a process. [slots] is registry slots per shard (default
    {!Bootstrap.default_slots}); [max_clients] bounds client addresses
    (default 128); [policy] runs every remote operation under recovery
    (write-verify — required for convergence under loss); [pace] spaces
    the background migration writes of a split or merge so foreground
    probes interleave instead of queueing behind the whole burst.

    Also pre-exports one spare shard segment per host: segment export
    pins pages synchronously on the exporting host's CPU, so a split
    that exported its destination segment in-line would block that
    host's foreground probes for the whole pinning burst. Splits draw
    from the pool and restock it only after the source-side retire
    completes. *)

val serve_registrations : t -> unit
(** Install the request-segment signal handler: each notified slot
    spawns a worker that inserts the record, pushes and fences the
    shard slot, and remote-WRITEs an ack into the requester clerk's
    scratch segment. *)

val register : t -> Record.t -> (unit, [ `Full ]) result
(** Apply one registration directly (the in-process control-plane
    path). *)

val split : t -> int -> int option
(** Split a shard at its range midpoint onto the next host: copy + fence
    the upper half, publish, then tombstone the migrated records in the
    source. Returns the new shard's id; [None] on an unknown id or a
    single-bucket shard. *)

val merge : t -> (int * int) option
(** Merge the adjacent pair with the fewest live records: absorb the
    right shard into the left, publish, then revoke the absorbed
    segment (stale client descriptors fail cleanly and heal by map
    refetch). Returns [(absorbed, into)]. *)

val rebalance_once : t -> verdict
(** Read the load rows for the current epoch and split the hottest
    shard if it draws at least twice its fair share. *)

val shard_id_of_bucket : t -> int -> int option
(** The id of the shard currently owning a bucket — what {!split}
    wants when the caller has picked a bucket, not an id. *)

val set_recovery : t -> Rmem.Recovery.policy option -> unit

val map : t -> Shardmap.t
(** The authoritative map (what the next publish would carry). *)

val clerk : t -> Clerk.t
val epoch : t -> int
val shard_count : t -> int

val publishes : t -> int
(** Epochs published (body-then-doorbell sequences issued). *)

val doorbells : t -> int
(** Epoch doorbells consumed at the map host. *)

val splits : t -> int
val merges : t -> int

val moves : t -> int
(** Records migrated across shards over all splits and merges. *)

val live : t -> int
(** Live records across all shard mirrors. *)

val well_formed : t -> bool
(** Every mirror structurally consistent and the ranges total. *)

val stats : t -> Metrics.Account.t

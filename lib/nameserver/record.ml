(* Fixed-size registry records.

   Each record occupies one 64-byte slot of a clerk's registry segment.
   The valid flag is a single word written last by the (single) local
   writer, so remote readers — who fetch whole slots with remote READs —
   can rely on the paper's word-atomicity argument: a slot is either
   visibly invalid or completely, consistently filled. *)

let slot_bytes = 64
let name_bytes = 32

let flag_invalid = 0l
let flag_valid = 1l

let flag_moved = 2l
(* The sharding layer's tombstone: the record migrated to another shard
   segment.  Unlike [flag_invalid] — which ends every probe chain — a
   moved slot is skipped, so tombstoning one name cannot orphan
   colliding names that probed past it, and a remote reader that meets
   one knows its shard map may be stale. *)

let flag_of_slot slot =
  if Bytes.length slot < 4 then flag_invalid else Bytes.get_int32_le slot 0

type t = {
  name : string;
  node : int;  (* exporter's network address *)
  segment_id : int;
  generation : Rmem.Generation.t;
  size : int;
  rights : Rmem.Rights.t;
}

let make ~name ~node ~segment_id ~generation ~size ~rights =
  if String.length name > name_bytes then
    invalid_arg "Record.make: name too long";
  if String.contains name '\000' then
    invalid_arg "Record.make: name contains NUL";
  { name; node; segment_id; generation; size; rights }

(* Layout: [flag 4][hash 4][name 32][node 4][seg 4][gen 4][size 4][rights 4]
   [spare 4] = 64 bytes. *)

let fnv_hash name =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun ch ->
      h := !h lxor Char.code ch;
      h := !h * 0x01000193 land 0x3FFFFFFF)
    name;
  !h

let encode t =
  let b = Bytes.make slot_bytes '\000' in
  Bytes.set_int32_le b 0 flag_valid;
  Bytes.set_int32_le b 4 (Int32.of_int (fnv_hash t.name));
  Bytes.blit_string t.name 0 b 8 (String.length t.name);
  Bytes.set_int32_le b 40 (Int32.of_int t.node);
  Bytes.set_int32_le b 44 (Int32.of_int t.segment_id);
  Bytes.set_int32_le b 48 (Int32.of_int (Rmem.Generation.to_int t.generation));
  Bytes.set_int32_le b 52 (Int32.of_int t.size);
  Bytes.set_int32_le b 56 (Int32.of_int (Rmem.Rights.to_code t.rights));
  b

let is_valid slot =
  Bytes.length slot >= 4 && Int32.equal (Bytes.get_int32_le slot 0) flag_valid

let decode slot =
  if Bytes.length slot < slot_bytes then None
  else if not (is_valid slot) then None
  else begin
    let raw_name = Bytes.sub_string slot 8 name_bytes in
    let name =
      match String.index_opt raw_name '\000' with
      | Some i -> String.sub raw_name 0 i
      | None -> raw_name
    in
    let field off = Int32.to_int (Bytes.get_int32_le slot off) in
    Some
      {
        name;
        node = field 40;
        segment_id = field 44;
        generation = Rmem.Generation.of_int (field 48);
        size = field 52;
        rights = Rmem.Rights.of_code (field 56);
      }
  end

let invalid_slot () = Bytes.make slot_bytes '\000'

(* A forwarding tombstone: the 60 bytes a moved slot no longer needs
   carry the destination shard's coordinates, its bucket range, and the
   epoch that published the migration.  A reader that trips on one can
   patch its cached shard map locally and retry against the new owner
   directly — no round trip to the map host, so an epoch change never
   convoys the healing clients behind one segment.

   Layout: [flag=moved 4][epoch 4][lo 4][hi 4][node 4][seg 4][gen 4]
   [slots 4] = 32 bytes, rest zero.  A bare 4-byte tombstone (epoch 0)
   decodes to [None] and the reader falls back to a map refetch. *)

type forward = {
  fwd_epoch : int;
  fwd_lo : int;
  fwd_hi : int;  (* inclusive bucket range of the destination shard *)
  fwd_node : int;
  fwd_segment_id : int;
  fwd_generation : Rmem.Generation.t;
  fwd_slots : int;
}

let encode_forward f =
  let b = Bytes.make slot_bytes '\000' in
  Bytes.set_int32_le b 0 flag_moved;
  Bytes.set_int32_le b 4 (Int32.of_int f.fwd_epoch);
  Bytes.set_int32_le b 8 (Int32.of_int f.fwd_lo);
  Bytes.set_int32_le b 12 (Int32.of_int f.fwd_hi);
  Bytes.set_int32_le b 16 (Int32.of_int f.fwd_node);
  Bytes.set_int32_le b 20 (Int32.of_int f.fwd_segment_id);
  Bytes.set_int32_le b 24 (Int32.of_int (Rmem.Generation.to_int f.fwd_generation));
  Bytes.set_int32_le b 28 (Int32.of_int f.fwd_slots);
  b

let decode_forward slot =
  if Bytes.length slot < 32 then None
  else if not (Int32.equal (Bytes.get_int32_le slot 0) flag_moved) then None
  else begin
    let field off = Int32.to_int (Bytes.get_int32_le slot off) in
    let f =
      {
        fwd_epoch = field 4;
        fwd_lo = field 8;
        fwd_hi = field 12;
        fwd_node = field 16;
        fwd_segment_id = field 20;
        fwd_generation = Rmem.Generation.of_int (field 24);
        fwd_slots = field 28;
      }
    in
    if
      f.fwd_epoch > 0 && f.fwd_lo >= 0 && f.fwd_hi >= f.fwd_lo && f.fwd_node >= 0
      && f.fwd_segment_id >= 0 && f.fwd_slots > 0
      && f.fwd_slots land (f.fwd_slots - 1) = 0
    then Some f
    else None
  end

(* The name-service clerk: one per machine, no central server.

   The service is logically centralized but physically a collection of
   clerks that communicate *only* through remote memory operations.
   Each clerk owns a registry segment holding its node's exports; an
   importer's clerk locates a remote name with remote READs that probe
   the exporter's registry directly (identical hash functions make the
   first probe usually suffice).  The clerk also implements the paper's
   control-transfer fallback: a remote WRITE of the lookup arguments
   with the notify bit set, answered by a remote WRITE of the result
   into the requester's scratch segment. *)

type probe_policy =
  | Probe_until_found
  | Probe_then_control of int
  | Control_immediately

type cached_import = {
  mutable record : Record.t;
  mutable descriptors : Rmem.Descriptor.t list;
}

type t = {
  rmem : Rmem.Remote_memory.t;
  node : Cluster.Node.t;
  space : Cluster.Address_space.t;
  registry : Registry.t;
  request_segment : Rmem.Segment.t;
  mutable probe_policy : probe_policy;
  mutable probe_timeout : Sim.Time.t option;
  (* bound each remote probe READ under the fault plane; None (the
     default) keeps the legacy unbounded wait and its exact schedule *)
  mutable pipeline : Rmem.Pipeline.t option;
  (* when set (and enabled), lookup probe chains issue a window of
     concurrent probe READs instead of one round trip per probe *)
  import_cache : (string, cached_import) Hashtbl.t;
  remote_registries : (int, Rmem.Descriptor.t) Hashtbl.t;
  remote_requests : (int, Rmem.Descriptor.t) Hashtbl.t;
  remote_scratches : (int, Rmem.Descriptor.t) Hashtbl.t;
  mutable next_scratch_slot : int;
  stats : Metrics.Account.t;
}

exception Name_not_found of string

let costs t = Cluster.Node.costs t.node
let cpu t = Cluster.Node.cpu t.node

let charge t cost = Cluster.Cpu.use (cpu t) ~category:"name clerk" cost

let create ?(slots = Bootstrap.default_slots)
    ?(probe_policy = Probe_until_found) rmem =
  let node = Rmem.Remote_memory.node rmem in
  let space = Cluster.Node.new_address_space node in
  let registry =
    Registry.create ~space ~base:Bootstrap.registry_base ~slots
  in
  let clerk_rights = Rmem.Rights.make ~read:true ~write:true () in
  let registry_segment =
    Rmem.Remote_memory.export rmem ~space ~base:Bootstrap.registry_base
      ~len:(Registry.segment_bytes ~slots)
      ~id:Bootstrap.registry_segment_id ~rights:clerk_rights
      ~name:"wk:registry" ()
  in
  let request_segment =
    Rmem.Remote_memory.export rmem ~space ~base:Bootstrap.request_base
      ~len:(Bootstrap.max_nodes * Bootstrap.request_slot_bytes)
      ~id:Bootstrap.request_segment_id ~rights:Rmem.Rights.write_only
      ~policy:Rmem.Segment.Conditional ~name:"wk:request" ()
  in
  let scratch_segment =
    Rmem.Remote_memory.export rmem ~space ~base:Bootstrap.scratch_base
      ~len:(Bootstrap.scratch_slots * Bootstrap.scratch_slot_bytes)
      ~id:Bootstrap.scratch_segment_id ~rights:Rmem.Rights.write_only
      ~name:"wk:scratch" ()
  in
  (* The well-known generation contract: the clerk must be the node's
     first exporter. *)
  assert (
    Rmem.Generation.equal
      (Rmem.Segment.generation registry_segment)
      Bootstrap.registry_generation);
  assert (
    Rmem.Generation.equal
      (Rmem.Segment.generation scratch_segment)
      Bootstrap.scratch_generation);
  let t =
    {
      rmem;
      node;
      space;
      registry;
      request_segment;
      probe_policy;
      probe_timeout = None;
      pipeline = None;
      import_cache = Hashtbl.create 64;
      remote_registries = Hashtbl.create 8;
      remote_requests = Hashtbl.create 8;
      remote_scratches = Hashtbl.create 8;
      next_scratch_slot = 0;
      stats = Metrics.Account.create ~name:"name clerk" ();
    }
  in
  t

let node t = t.node
let rmem t = t.rmem
let registry t = t.registry
let stats t = t.stats
let set_probe_policy t policy = t.probe_policy <- policy
let set_probe_timeout t timeout = t.probe_timeout <- timeout
let set_pipeline t pipeline = t.pipeline <- pipeline

(* ------------------------------------------------------------------ *)
(* Lazy import of other clerks' well-known segments.                   *)

let well_known ?(rights = Rmem.Rights.make ~read:true ~write:true ()) t table
    ~remote ~segment_id ~generation ~size =
  let key = Atm.Addr.to_int remote in
  match Hashtbl.find_opt table key with
  | Some desc -> desc
  | None ->
      let desc =
        Rmem.Remote_memory.import t.rmem ~remote ~segment_id ~generation ~size
          ~rights ()
      in
      Hashtbl.replace table key desc;
      desc

let registry_descriptor t ~remote =
  well_known t t.remote_registries ~remote
    ~segment_id:Bootstrap.registry_segment_id
    ~generation:Bootstrap.registry_generation
    ~size:(Registry.segment_bytes ~slots:(Registry.slots t.registry))

let request_descriptor t ~remote =
  well_known t t.remote_requests ~remote
    ~segment_id:Bootstrap.request_segment_id
    ~generation:Bootstrap.request_generation
    ~size:(Bootstrap.max_nodes * Bootstrap.request_slot_bytes)

let scratch_descriptor t ~remote =
  (* The exporter grants write-only; claiming read locally would make
     policied writes attempt a verify read-back the remote rejects.
     Loss of an unverifiable ack heals by the requester's reissue. *)
  well_known ~rights:Rmem.Rights.write_only t t.remote_scratches ~remote
    ~segment_id:Bootstrap.scratch_segment_id
    ~generation:Bootstrap.scratch_generation
    ~size:(Bootstrap.scratch_slots * Bootstrap.scratch_slot_bytes)

(* ------------------------------------------------------------------ *)
(* Local service procedures (reached by local RPC from the kernel).    *)

let add_name t record =
  charge t (costs t).Cluster.Costs.hash_insert;
  Metrics.Account.add t.stats ~category:"addname" 1.;
  match Registry.insert t.registry record with
  | Ok (_ : int) -> ()
  | Error `Full -> failwith "name clerk: registry full"

let delete_name t name =
  charge t (costs t).Cluster.Costs.hash_delete;
  Metrics.Account.add t.stats ~category:"deletename" 1.;
  Hashtbl.remove t.import_cache name;
  ignore (Registry.delete t.registry name : bool)

let cache_record t record =
  match Hashtbl.find_opt t.import_cache record.Record.name with
  | Some entry ->
      (* Keep the registered descriptors: refresh must still be able to
         mark them stale later. *)
      entry.record <- record
  | None ->
      Hashtbl.replace t.import_cache record.Record.name
        { record; descriptors = [] }

let register_descriptor t ~name desc =
  match Hashtbl.find_opt t.import_cache name with
  | Some entry -> entry.descriptors <- desc :: entry.descriptors
  | None -> ()

(* One remote probe: read the candidate slot and decode it. *)
let remote_probe t desc ~probe_index ~name =
  let index = Registry.slot_index t.registry name probe_index in
  let buf =
    Rmem.Remote_memory.buffer ~space:t.space
      ~base:Bootstrap.probe_buffer_base ~len:Bootstrap.probe_buffer_bytes
  in
  Rmem.Remote_memory.read_wait ?timeout:t.probe_timeout t.rmem desc
    ~soff:(Registry.slot_offset t.registry index)
    ~count:Record.slot_bytes ~dst:buf ~doff:0 ();
  Metrics.Account.add t.stats ~category:"remote probes" 1.;
  charge t (costs t).Cluster.Costs.hash_lookup;
  Record.decode
    (Cluster.Address_space.read t.space ~addr:Bootstrap.probe_buffer_base
       ~len:Record.slot_bytes)

(* Windowed probing: instead of one blocked round trip per probe, issue
   a window of concurrent probe READs into distinct probe-buffer slots,
   drain, and scan the results in probe order.  The chain semantics are
   unchanged — an empty slot still terminates the chain, a foreign
   record still moves to the next probe — the window only overlaps the
   wire latency of probes the serial path would have issued one by one
   (probing a few slots past the end of a short chain is the price of
   the overlap).

   Under fault pressure the overlap inverts into a liability: a batch
   issues a window of round trips where a short chain needed one or
   two, so the chance that at least one frame is lost grows with the
   window, not the chain.  When a batch drain fails we therefore fall
   back to serial probing for the rest of the lookup — one round trip
   of exposure per probe, the same as the unpipelined path. *)
let by_probing_serial t desc ~name ~start limit =
  let rec go i =
    if i >= limit then None
    else
      match remote_probe t desc ~probe_index:i ~name with
      | None -> Some None (* chain ended: definitely absent *)
      | Some record ->
          if String.equal record.Record.name name then Some (Some record)
          else go (i + 1)
  in
  go start

let by_probing_windowed t pipeline desc ~name limit =
  let window = (Rmem.Pipeline.config pipeline).Rmem.Pipeline.window in
  let slot_cap = Bootstrap.probe_buffer_bytes / Record.slot_bytes in
  let batch_size = Stdlib.max 1 (Stdlib.min window slot_cap) in
  let buf =
    Rmem.Remote_memory.buffer ~space:t.space
      ~base:Bootstrap.probe_buffer_base ~len:Bootstrap.probe_buffer_bytes
  in
  let rec batch start =
    if start >= limit then None
    else begin
      let n = Stdlib.min batch_size (limit - start) in
      match
        for j = 0 to n - 1 do
          let index = Registry.slot_index t.registry name (start + j) in
          Rmem.Pipeline.read_submit ?timeout:t.probe_timeout pipeline desc
            ~soff:(Registry.slot_offset t.registry index)
            ~count:Record.slot_bytes ~dst:buf
            ~doff:(j * Record.slot_bytes)
            ();
          Metrics.Account.add t.stats ~category:"remote probes" 1.
        done;
        Rmem.Pipeline.drain pipeline
      with
      | exception (Rmem.Status.Timeout | Rmem.Status.Remote_error _) ->
          (* A lost probe invalidates the whole batch (the buffer slot it
             owned is stale); the drain above left the window empty, so
             serial probing resumes from this batch's first slot. *)
          by_probing_serial t desc ~name ~start limit
      | () ->
      let rec scan j =
        if j >= n then batch (start + n)
        else begin
          charge t (costs t).Cluster.Costs.hash_lookup;
          match
            Record.decode
              (Cluster.Address_space.read t.space
                 ~addr:(Bootstrap.probe_buffer_base + (j * Record.slot_bytes))
                 ~len:Record.slot_bytes)
          with
          | None -> Some None (* chain ended: definitely absent *)
          | Some record ->
              if String.equal record.Record.name name then Some (Some record)
              else scan (j + 1)
        end
      in
      scan 0
    end
  in
  batch 0

(* Scratch-slot rendezvous, shared by this clerk's control-transfer
   lookup and any other control-plane exchange (the sharding layer's
   registration path) whose reply is a remote WRITE into our scratch
   segment: allocate a slot (arming its flag word to pending), then spin
   on the flag until the reply lands or the deadline passes. *)
let alloc_scratch_slot t =
  let slot = t.next_scratch_slot in
  t.next_scratch_slot <- (slot + 1) mod Bootstrap.scratch_slots;
  Cluster.Address_space.write_word t.space
    ~addr:(Bootstrap.scratch_base + (slot * Bootstrap.scratch_slot_bytes))
    Bootstrap.reply_pending;
  slot

let await_scratch_reply ?(timeout = Sim.Time.ms 50) t ~slot =
  let reply_off = slot * Bootstrap.scratch_slot_bytes in
  (* User-level spin wait on the flag word. *)
  let deadline =
    Sim.Time.add (Sim.Engine.now (Cluster.Node.engine t.node)) timeout
  in
  let rec spin () =
    let flag =
      Cluster.Address_space.read_word t.space
        ~addr:(Bootstrap.scratch_base + reply_off)
    in
    if Int32.equal flag Bootstrap.reply_pending then begin
      if Sim.Time.(Sim.Engine.now (Cluster.Node.engine t.node) > deadline)
      then raise Rmem.Status.Timeout;
      Sim.Proc.wait (Sim.Time.us 5);
      spin ()
    end
    else if Int32.equal flag Bootstrap.reply_found then
      Record.decode
        (Cluster.Address_space.read t.space
           ~addr:(Bootstrap.scratch_base + reply_off + 4)
           ~len:Record.slot_bytes)
    else None
  in
  spin ()

(* The control-transfer fallback: write the lookup arguments (with
   notification) into the exporter clerk's request segment and spin on a
   local scratch slot until the exporter's reply write lands. *)
let lookup_by_control_transfer t ~remote name =
  Metrics.Account.add t.stats ~category:"control-transfer lookups" 1.;
  let slot = alloc_scratch_slot t in
  let reply_off = slot * Bootstrap.scratch_slot_bytes in
  let request = Bytes.make 40 '\000' in
  Bytes.blit_string name 0 request 0 (String.length name);
  Bytes.set_int32_le request 32
    (Int32.of_int (Atm.Addr.to_int (Cluster.Node.addr t.node)));
  Bytes.set_int32_le request 36 (Int32.of_int reply_off);
  let req_desc = request_descriptor t ~remote in
  let my_slot =
    Atm.Addr.to_int (Cluster.Node.addr t.node) * Bootstrap.request_slot_bytes
  in
  Rmem.Remote_memory.write t.rmem req_desc ~off:my_slot ~notify:true request;
  await_scratch_reply t ~slot

(* Exporter-side handler for control-transfer lookups, attached to the
   request segment's notification descriptor as a signal handler. *)
let serve_lookup_requests t =
  Rmem.Notification.set_signal_handler
    (Rmem.Segment.notification t.request_segment)
    (Some
       (fun record ->
         let off = record.Rmem.Notification.off in
         let request =
           Cluster.Address_space.read t.space
             ~addr:(Bootstrap.request_base + off)
             ~len:40
         in
         let raw_name = Bytes.sub_string request 0 32 in
         let name =
           match String.index_opt raw_name '\000' with
           | Some i -> String.sub raw_name 0 i
           | None -> raw_name
         in
         let reply_node =
           Atm.Addr.of_int (Int32.to_int (Bytes.get_int32_le request 32))
         in
         let reply_off = Int32.to_int (Bytes.get_int32_le request 36) in
         charge t (costs t).Cluster.Costs.hash_lookup;
         Metrics.Account.add t.stats ~category:"lookups served" 1.;
         let reply = Bytes.make Bootstrap.scratch_slot_bytes '\000' in
         (match Registry.lookup t.registry name with
         | Some (found, _) ->
             Bytes.set_int32_le reply 0 Bootstrap.reply_found;
             Bytes.blit (Record.encode found) 0 reply 4 Record.slot_bytes
         | None -> Bytes.set_int32_le reply 0 Bootstrap.reply_absent);
         let scratch = scratch_descriptor t ~remote:reply_node in
         (* Record body first, flag word implicitly included: the whole
            reply travels in one frame, so the spinner sees it atomically. *)
         Rmem.Remote_memory.write t.rmem scratch ~off:reply_off reply))

(* ------------------------------------------------------------------ *)
(* Lookup: the LOOKUPNAME service procedure.                           *)

let lookup ?(force = false) ?hint t name =
  Metrics.Account.add t.stats ~category:"lookup" 1.;
  let cached =
    if force then None
    else
      match Hashtbl.find_opt t.import_cache name with
      | Some entry -> Some entry.record
      | None -> (
          (* The name may be a local export. *)
          match Registry.lookup t.registry name with
          | Some (record, _) -> Some record
          | None -> None)
  in
  match cached with
  | Some record ->
      (* A hit pays the full retrieve-and-copy; a miss only the cheaper
         absence check below. *)
      charge t (costs t).Cluster.Costs.hash_lookup;
      Metrics.Account.add t.stats ~category:"lookup hits" 1.;
      record
  | None -> (
      if not force then charge t (costs t).Cluster.Costs.hash_miss;
      match hint with
      | None -> raise (Name_not_found name)
      | Some remote -> (
          let desc = registry_descriptor t ~remote in
          let by_probing limit =
            match t.pipeline with
            | Some p when (Rmem.Pipeline.config p).Rmem.Pipeline.enabled ->
                by_probing_windowed t p desc ~name limit
            | Some _ | None -> by_probing_serial t desc ~name ~start:0 limit
          in
          let result =
            match t.probe_policy with
            | Probe_until_found -> (
                match by_probing (Registry.slots t.registry) with
                | Some outcome -> outcome
                | None -> None)
            | Control_immediately -> lookup_by_control_transfer t ~remote name
            | Probe_then_control n -> (
                match by_probing n with
                | Some outcome -> outcome
                | None -> lookup_by_control_transfer t ~remote name)
          in
          match result with
          | None -> raise (Name_not_found name)
          | Some record ->
              cache_record t record;
              record))

(* ------------------------------------------------------------------ *)
(* Cache refresh.                                                      *)

let refresh_once t =
  let entries =
    Hashtbl.fold (fun name entry acc -> (name, entry) :: acc) t.import_cache []
  in
  List.iter
    (fun (name, entry) ->
      let remote = Atm.Addr.of_int entry.record.Record.node in
      let desc = registry_descriptor t ~remote in
      let rec go i =
        if i >= Registry.slots t.registry then None
        else
          match remote_probe t desc ~probe_index:i ~name with
          | None -> None
          | Some record ->
              if String.equal record.Record.name name then Some record
              else go (i + 1)
      in
      let still_valid =
        match go 0 with
        | Some record ->
            Rmem.Generation.equal record.Record.generation
              entry.record.Record.generation
        | None -> false
      in
      if not still_valid then begin
        Metrics.Account.add t.stats ~category:"purged on refresh" 1.;
        List.iter Rmem.Descriptor.mark_stale entry.descriptors;
        Hashtbl.remove t.import_cache name
      end)
    entries

(* After a crash/restart re-exported this node's segments under fresh
   generations, the registry still advertises the old ones.  Rewrite
   each affected record in place so remote lookups (and the recovery
   layer's forced re-imports) obtain the new generation — the paper's
   re-export-re-inserts recovery step, done wholesale. *)
let reannounce t =
  List.iter
    (fun segment ->
      match Registry.lookup t.registry (Rmem.Segment.name segment) with
      | None -> ()
      | Some (record, _)
        when record.Record.node = Atm.Addr.to_int (Cluster.Node.addr t.node)
             && record.Record.segment_id = Rmem.Segment.id segment ->
          if
            not
              (Rmem.Generation.equal record.Record.generation
                 (Rmem.Segment.generation segment))
          then begin
            charge t (costs t).Cluster.Costs.hash_insert;
            Metrics.Account.add t.stats ~category:"reannounced" 1.;
            match
              Registry.insert t.registry
                {
                  record with
                  Record.generation = Rmem.Segment.generation segment;
                }
            with
            | Ok (_ : int) -> ()
            | Error `Full -> failwith "name clerk: registry full"
          end
      | Some _ -> ())
    (Rmem.Remote_memory.exports t.rmem)

let start_refresh_daemon t ~period =
  Cluster.Node.spawn t.node (fun () ->
      while true do
        Sim.Proc.wait period;
        refresh_once t
      done)

let cached_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.import_cache []

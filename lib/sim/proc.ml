(* Cooperative simulation processes built on OCaml effects.

   A process is ordinary direct-style code; [wait] and [suspend] perform
   effects that the scheduler installed by [spawn] interprets against the
   engine's event queue.  Continuations are one-shot: [suspend]'s resume
   callback guards against double resumption.

   Every process carries a name and knows its engine (the [Info]
   effect); [suspend_on] uses both to register the blocked process with
   the engine's waiter registry, which is what makes engine-level
   deadlock reports name processes and resources. *)

open Effect
open Effect.Deep

type _ Effect.t +=
  | Wait : Time.t -> unit Effect.t
  | Suspend : (('a -> unit) -> unit) -> 'a Effect.t
  | Info : (Engine.t * string) Effect.t

exception Not_in_process

let wait span = perform (Wait span)

let yield () = perform (Wait Time.zero)

let suspend register = perform (Suspend register)

let self_name () =
  match perform Info with
  | _, name -> name
  | exception Effect.Unhandled _ -> raise Not_in_process

let suspend_on ?(daemon = false) ~resource register =
  match perform Info with
  | exception Effect.Unhandled _ -> suspend register
  | engine, process ->
      let token = Engine.register_blocked engine ~process ~resource ~daemon in
      suspend (fun resume ->
          register (fun v ->
              Engine.clear_blocked engine token;
              resume v))

let spawn ?(after = Time.zero) ?name engine body =
  let name =
    match name with
    | Some name -> name
    | None -> Printf.sprintf "proc%d" (Engine.next_spawn_id engine)
  in
  let run () =
    match_with body ()
      {
        retc = (fun () -> ());
        exnc = (fun exn -> raise exn);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Wait span ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    Engine.schedule ~after:span engine (fun () ->
                        continue k ()))
            | Suspend register ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    let resumed = ref false in
                    let resume v =
                      if !resumed then
                        invalid_arg "Proc: continuation resumed twice";
                      resumed := true;
                      Engine.schedule engine (fun () -> continue k v)
                    in
                    register resume)
            | Info ->
                Some
                  (fun (k : (a, unit) continuation) -> continue k (engine, name))
            | _ -> None);
      }
  in
  Engine.schedule ~after engine run

let run engine body =
  let result = ref None in
  let failure = ref None in
  spawn ~name:"main" engine (fun () ->
      match body () with
      | v -> result := Some v
      | exception exn -> failure := Some exn);
  Engine.run engine;
  match (!result, !failure) with
  | Some v, _ -> v
  | None, Some exn -> raise exn
  | None, None ->
      raise (Engine.Deadlock (Engine.now engine, Engine.blocked engine))

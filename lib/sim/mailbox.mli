(** Unbounded FIFO message queues with blocking receive.

    Messages are delivered in send order; blocked receivers are woken in
    blocking order. *)

type 'a t

val create : ?name:string -> ?daemon:bool -> unit -> 'a t
(** [name] labels the mailbox in deadlock reports. [daemon] marks a
    queue whose blocked receivers idle between requests by design (a
    NIC receive FIFO, a server request queue): they are excluded from
    deadlock detection. *)

val name : 'a t -> string

val send : 'a t -> 'a -> unit
(** Never blocks. Wakes the oldest blocked receiver, if any. *)

val recv : 'a t -> 'a
(** Dequeue the oldest message, blocking the current process if empty. *)

val try_recv : 'a t -> 'a option
val length : 'a t -> int
val is_empty : 'a t -> bool
